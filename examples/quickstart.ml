(* Quickstart: build a small design directly against the CFG/DFG API, run
   the slack-based flow, and inspect the result.

   The design: a 3-state loop computing y = (a*b + c*d) over port reads,
   writing the result on the last state.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Control flow: a loop whose body spans three control steps. *)
  let cfg = Cfg.create () in
  let loop_top = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg (Cfg.start cfg) loop_top);
  let s1 = Cfg.add_node cfg Cfg.State in
  let s2 = Cfg.add_node cfg Cfg.State in
  let s3 = Cfg.add_node cfg Cfg.State in
  let loop_bottom = Cfg.add_node cfg Cfg.Plain in
  let e1 = Cfg.add_edge cfg loop_top s1 in
  let _e2 = Cfg.add_edge cfg s1 s2 in
  let e3 = Cfg.add_edge cfg s2 s3 in
  ignore (Cfg.add_edge cfg s3 loop_bottom);
  ignore (Cfg.add_edge cfg loop_bottom loop_top);
  Cfg.seal cfg;

  (* 2. Data flow: reads feed two multiplies feeding an add and a write.
     Everything except the I/O may move across the three steps. *)
  let dfg = Dfg.create cfg in
  let read name = Dfg.add_op dfg ~kind:(Dfg.Read name) ~width:16 ~birth:e1 ~name () in
  let a = read "a" and b = read "b" and c = read "c" and d = read "d" in
  let mul name x y =
    let m = Dfg.add_op dfg ~kind:Dfg.Mul ~width:16 ~birth:e1 ~name () in
    Dfg.add_dep dfg ~src:x ~dst:m ();
    Dfg.add_dep dfg ~src:y ~dst:m ();
    m
  in
  let ab = mul "ab" a b and cd = mul "cd" c d in
  let sum = Dfg.add_op dfg ~kind:Dfg.Add ~width:16 ~birth:e1 ~name:"sum" () in
  Dfg.add_dep dfg ~src:ab ~dst:sum ();
  Dfg.add_dep dfg ~src:cd ~dst:sum ();
  let wr = Dfg.add_op dfg ~kind:(Dfg.Write "y") ~width:16 ~birth:e3 ~name:"wr" () in
  Dfg.add_dep dfg ~src:sum ~dst:wr ();
  Dfg.validate dfg;

  (* 3. Run the paper's slack-based flow and a conventional baseline. *)
  let design = Hls.design ~name:"quickstart" ~clock:2000.0 dfg in
  let show flow =
    match Hls.run flow design with
    | Ok r ->
      Format.printf "--- %s ---@.%a@.area: %a@.@."
        (Flows.flow_name flow) Schedule.pp r.Hls.report.Flows.schedule
        Area_model.pp_breakdown r.Hls.area
    | Error e -> Format.printf "%s failed: %s@." (Flows.flow_name flow) (Flows.error_message e)
  in
  show Flows.Conventional;
  show Flows.Slack_based
