(* Design-space exploration on the IDCT kernel (the paper's Table 4
   experiment, reduced to a handful of points for a quick run).

     dune exec examples/idct_exploration.exe *)

let () =
  let points =
    List.map
      (fun latency ->
        let d = Idct.build ~latency ~passes:1 () in
        ( Printf.sprintf "L%d" latency,
          Hls.design ~name:d.Idct.name ~clock:2500.0 d.Idct.dfg ))
      [ 24; 16; 12; 10 ]
  in
  print_endline "IDCT 8-point kernel (16 muls, 26 add/subs), clock 2.5 ns:";
  let rows = Hls.explore points in
  print_string (Hls.render_dse rows);
  print_newline ();
  (* Show where the savings come from at one point: the allocation. *)
  let d = Idct.build ~latency:12 ~passes:1 () in
  let design = Hls.design ~name:d.Idct.name ~clock:2500.0 d.Idct.dfg in
  match (Hls.run Flows.Conventional design, Hls.run Flows.Slack_based design) with
  | Ok conv, Ok slack ->
    Format.printf "@.conventional allocation:@.%a@." Alloc.pp
      conv.Hls.report.Flows.schedule.Schedule.alloc;
    Format.printf "slack-based allocation:@.%a@." Alloc.pp
      slack.Hls.report.Flows.schedule.Schedule.alloc;
    Format.printf "conventional area: %a@." Area_model.pp_breakdown conv.Hls.area;
    Format.printf "slack-based  area: %a@." Area_model.pp_breakdown slack.Hls.area
  | Error e, _ | _, Error e -> print_endline ("flow failed: " ^ Flows.error_message e)
