(* The paper's motivating example (§II): the interpolation kernel under
   three scheduling policies.

   Fastest-first (the RTL methodology) and slowest-first both land far from
   the optimum; the slack-budgeting flow finds the paper's 550 ps schedule
   (Figure 2(d)), cutting multiplier+adder area by roughly a third.

     dune exec examples/interpolation_tradeoff.exe *)

let () =
  let lib = Library.idealized in
  Printf.printf "interpolation kernel, clock %.0f ps, paper Table 2:\n"
    Interpolation.clock;
  Printf.printf "  paper: Case1 3408, Case2 3419, optimum 2180 (mul+add area)\n\n";
  List.iter
    (fun (label, flow) ->
      let ip = Interpolation.unrolled () in
      match Flows.run flow ip.Interpolation.dfg ~lib ~clock:Interpolation.clock with
      | Error e -> Printf.printf "%-22s FAILED: %s\n" label (Flows.error_message e)
      | Ok r ->
        let sched = r.Flows.schedule in
        let mul = Area_model.fu_of_kind sched Resource_kind.Multiplier in
        let add = Area_model.fu_of_kind sched Resource_kind.Adder in
        Printf.printf "%-22s mult %6.0f  add %6.0f  total %6.0f\n" label mul add
          (mul +. add);
        (* Show the multiplier grades the flow settled on. *)
        List.iter
          (fun i ->
            if i.Alloc.rk = Resource_kind.Multiplier then
              Printf.printf "    multiplier @ %.0f ps / %.0f area\n"
                i.Alloc.point.Curve.delay i.Alloc.point.Curve.area)
          (Alloc.instances sched.Schedule.alloc))
    [
      ("fastest-first (Case1)", Flows.Conventional);
      ("slowest-first (Case2)", Flows.Slowest_first);
      ("slack-based (optimum)", Flows.Slack_based);
    ];
  print_newline ();
  (* The mechanism: aligned slack budgeting discovers that two chained
     multiplies must share each 1100 ps cycle, i.e. 550 ps each. *)
  let ip = Interpolation.unrolled () in
  let spans = Dfg.compute_spans ip.Interpolation.dfg in
  let tdfg = Timed_dfg.build ip.Interpolation.dfg ~spans in
  let check mul_delay =
    let del o =
      match (Dfg.op ip.Interpolation.dfg o).Dfg.kind with
      | Dfg.Mul -> mul_delay
      | Dfg.Add -> 550.0
      | _ -> 0.0
    in
    let res = Slack.analyze ~aligned:true tdfg ~clock:Interpolation.clock ~del in
    Printf.printf "  multipliers at %.0f ps: %s (min aligned slack %.0f)\n" mul_delay
      (if Slack.feasible res then "feasible" else "infeasible")
      res.Slack.min_slack
  in
  print_endline "aligned-slack feasibility of uniform multiplier grades:";
  List.iter check [ 430.0; 550.0; 560.0; 610.0 ]
