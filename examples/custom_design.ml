(* A design written in the textual behavioral language, compiled by the
   full front end (lex -> parse -> unroll -> elaborate), scheduled, and
   rendered to Verilog.

     dune exec examples/custom_design.exe *)

let source = {|
// A small complex-multiply-accumulate kernel:
//   (ar + i*ai) * (br + i*bi), accumulated over 2 unrolled iterations.
process cmac {
  port in ar : 16;
  port in ai : 16;
  port in br : 16;
  port in bi : 16;
  port out yr : 18;
  port out yi : 18;
  var accr : 18;
  var acci : 18;
  var xr : 16;
  var xi : 16;
  loop {
    for (k = 0; k < 2; k++) {
      xr = read(ar) * read(br) - read(ai) * read(bi);
      xi = read(ar) * read(bi) + read(ai) * read(br);
      accr = accr + xr;
      acci = acci + xi;
      wait;
    }
    wait;
    write(yr, accr);
    write(yi, acci);
  }
}
|}

let () =
  let p = Parser.parse source in
  Printf.printf "parsed process %S: %d statement(s), %d state(s) per iteration\n"
    p.Ast.proc_name
    (Transform.count_statements p.Ast.body)
    (Transform.states_in p.Ast.body);
  let e = Elaborate.elaborate p in
  Printf.printf "elaborated: %d CFG nodes, %d CFG edges, %d DFG ops\n"
    (Cfg.node_count e.Elaborate.cfg)
    (Cfg.edge_count e.Elaborate.cfg)
    (Dfg.op_count e.Elaborate.dfg);
  let design = Hls.design ~name:p.Ast.proc_name ~clock:3000.0 e.Elaborate.dfg in
  (match Hls.feasibility_check design with
  | Ok () -> print_endline "feasibility (Prop. 1): ok at fastest grades"
  | Error critical ->
    Printf.printf "infeasible; critical ops: %s\n"
      (String.concat ", "
         (List.map (fun o -> (Dfg.op e.Elaborate.dfg o).Dfg.name) critical)));
  let c = Hls.compare_flows design in
  (match (c.Hls.conventional, c.Hls.slack_based, c.Hls.saving_pct) with
  | Ok conv, Ok slack, Some s ->
    Printf.printf "conventional %.0f vs slack-based %.0f: %.1f%% saved\n"
      (Hls.total_area conv) (Hls.total_area slack) s
  | _ -> print_endline "a flow failed");
  match Hls.run Flows.Slack_based design with
  | Error e -> print_endline ("slack flow failed: " ^ Flows.error_message e)
  | Ok r ->
    let path = Filename.concat (Filename.get_temp_dir_name ()) "cmac.v" in
    Verilog.write_file ~module_name:"cmac" r.Hls.netlist ~path;
    Printf.printf "wrote %s (%d lines)\n" path
      (String.split_on_char '\n' (Verilog.emit r.Hls.netlist) |> List.length)
