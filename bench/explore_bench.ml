(* Design-space exploration section: paper-style area/delay tradeoff
   curves (Fig. 9 / Table 4 territory) for all four shipped workloads,
   produced by the lib/explore engine, plus a worker-scaling measurement
   and a cache effectiveness check. *)

open Bench_common

let workloads =
  [
    ("fir8", 2500.0, fun () -> (Fir.build ~taps:8 ~latency:6 ()).Fir.dfg);
    ("idct", 2500.0, fun () -> (Idct.build ~latency:12 ~passes:1 ()).Idct.dfg);
    ( "interpolation",
      Interpolation.clock,
      fun () -> (Interpolation.unrolled ()).Interpolation.dfg );
    ("resizer", 4000.0, fun () -> (Resizer.full ()).Resizer.dfg);
  ]

let grid_for base_clock ~quick =
  let n = if quick then 4 else 8 in
  let clocks = List.init n (fun k -> base_clock *. (0.8 +. (0.1 *. float_of_int k))) in
  match
    Explore_grid.make ~clocks
      ~flows:[ Flows.Conventional; Flows.Slack_based ]
      ()
  with
  | Ok g -> g
  | Error m -> failwith m

let config = Flows.default_config

let tradeoff_curves ~quick () =
  section "Exploration: area/delay Pareto frontiers (paper Fig. 9 territory)";
  List.iter
    (fun (name, base_clock, build) ->
      let grid = grid_for base_clock ~quick in
      let outcome = Explore.run ~lib:realistic ~config ~name ~build grid in
      subsection
        (Printf.sprintf "%s: %d points, frontier %d, failed %d" name
           outcome.Explore.total
           (List.length outcome.Explore.frontier)
           outcome.Explore.failed);
      print_string (Explore.render_summary outcome))
    workloads

let scaling ~quick () =
  subsection "worker scaling (one idct sweep per jobs setting)";
  let _, base_clock, build = (fun (a, b, c) -> (a, b, c)) (List.nth workloads 1) in
  let n = if quick then 6 else 15 in
  let clocks =
    List.init n (fun k -> base_clock *. (0.8 +. (0.05 *. float_of_int k)))
  in
  let grid =
    match
      Explore_grid.make ~clocks
        ~flows:[ Flows.Conventional; Flows.Slowest_first; Flows.Slack_based ]
        ()
    with
    | Ok g -> g
    | Error m -> failwith m
  in
  let time_jobs jobs =
    let t0 = Obs.now_ns () in
    let outcome = Explore.run ~jobs ~lib:realistic ~config ~name:"idct" ~build grid in
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) in
    (dt, outcome)
  in
  let t1, o1 = time_jobs 1 in
  let recommended = Domain_pool.default_jobs () in
  let tn, on = time_jobs (max 2 recommended) in
  Printf.printf "  jobs=1: %s   jobs=%d: %s   speedup %.2fx (on %d cores)\n"
    (pp_ns t1) (max 2 recommended) (pp_ns tn) (t1 /. tn) recommended;
  (* Whatever the hardware, the sweep itself must be identical. *)
  if Explore.to_csv o1 <> Explore.to_csv on then
    failwith "exploration results differ across worker counts"

let cache_effect () =
  subsection "evaluation cache (same sweep twice)";
  let _, base_clock, build = (fun (a, b, c) -> (a, b, c)) (List.hd workloads) in
  let grid = grid_for base_clock ~quick:false in
  let cache = Eval_cache.create () in
  let run () =
    let t0 = Obs.now_ns () in
    let o = Explore.run ~cache ~lib:realistic ~config ~name:"fir8" ~build grid in
    (Int64.to_float (Int64.sub (Obs.now_ns ()) t0), o)
  in
  let t_cold, o_cold = run () in
  let t_warm, o_warm = run () in
  Printf.printf "  cold: %s (%d evaluated)   warm: %s (%d evaluated, %d hits)\n"
    (pp_ns t_cold) o_cold.Explore.evaluated (pp_ns t_warm) o_warm.Explore.evaluated
    o_warm.Explore.hits;
  if o_warm.Explore.evaluated <> 0 then failwith "warm sweep re-evaluated points"

let journal_overhead () =
  subsection "checkpoint journal overhead (fsync per completed point)";
  let _, base_clock, build = (fun (a, b, c) -> (a, b, c)) (List.hd workloads) in
  let grid = grid_for base_clock ~quick:false in
  let time_run ?journal () =
    let t0 = Obs.now_ns () in
    let o = Explore.run ?journal ~lib:realistic ~config ~name:"fir8" ~build grid in
    (Int64.to_float (Int64.sub (Obs.now_ns ()) t0), o)
  in
  let t_bare, o_bare = time_run () in
  let path = Filename.temp_file "explore_bench" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = Journal.start ~path ~fresh:true in
      let t_journaled, o_journaled =
        Fun.protect ~finally:(fun () -> Journal.close w) (fun () -> time_run ~journal:w ())
      in
      Printf.printf
        "  bare: %s   journaled: %s (%.1f%% overhead, %d records fsync'd)\n"
        (pp_ns t_bare) (pp_ns t_journaled)
        ((t_journaled -. t_bare) /. t_bare *. 100.0)
        o_journaled.Explore.total;
      (* The journal must not perturb the sweep itself. *)
      if Explore.to_csv o_bare <> Explore.to_csv o_journaled then
        failwith "journaled sweep differs from bare sweep")

let run ~quick () =
  tradeoff_curves ~quick ();
  scaling ~quick ();
  cache_effect ();
  journal_overhead ()
