(* Reproduction of every table and figure in the paper's evaluation.  Each
   section prints the paper's reported values next to our measured ones;
   absolute areas come from our virtual library and area model, so the
   comparison targets the *shape* (who wins, by roughly what factor). *)

open Bench_common

(* ------------------------------------------------------------------ *)
(* Table 1: area/delay tradeoffs of the characterised resources.      *)

let table1 () =
  section "Table 1: area/delay trade-offs for multiplier and adder";
  let render name curve =
    let pts = Curve.points curve in
    let t =
      Text_table.create
        ~headers:(name :: List.map (fun (p : Curve.point) -> Printf.sprintf "%.0f" p.Curve.delay) pts)
    in
    Text_table.add_row t
      ("area" :: List.map (fun (p : Curve.point) -> Printf.sprintf "%.0f" p.Curve.area) pts);
    Text_table.print t
  in
  print_endline "(embedded verbatim from the paper; delays in ps)";
  render "Mul 8*8bit delay" Library.table1_multiplier_8x8;
  print_newline ();
  render "Add 16bit delay" Library.table1_adder_16;
  print_newline ();
  print_endline "Derived width-scaled curves (our characterisation model):";
  List.iter
    (fun (rk, w) ->
      Format.printf "  %-10s w%-3d: %a@." (Resource_kind.name rk) w Curve.pp
        (Library.curve realistic rk ~width:w))
    [ (Resource_kind.Multiplier, 16); (Resource_kind.Adder, 32); (Resource_kind.Divider, 16) ]

(* ------------------------------------------------------------------ *)
(* Figure 2 + Table 2: interpolation example, three scheduling styles. *)

let flow_fu_areas flow =
  let ip = Interpolation.unrolled () in
  match Flows.run flow ip.Interpolation.dfg ~lib:ideal ~clock:Interpolation.clock with
  | Error e -> Error (Flows.error_message e)
  | Ok r ->
    let sched = r.Flows.schedule in
    let mul = Area_model.fu_of_kind sched Resource_kind.Multiplier in
    let add = Area_model.fu_of_kind sched Resource_kind.Adder in
    Ok (sched, mul, add)

let table2 () =
  section "Table 2: comparison of scheduling solutions (interpolation, T=1100ps)";
  let t =
    Text_table.create
      ~headers:[ "Impl"; "Mult area"; "Add area"; "Mul+Add"; "Paper"; "Delta" ]
  in
  let paper = [ ("Case1 (conventional)", Flows.Conventional, 3408.0);
                ("Case2 (slowest-first)", Flows.Slowest_first, 3419.0);
                ("Opt (slack-based)", Flows.Slack_based, 2180.0) ] in
  let schedules = ref [] in
  List.iter
    (fun (label, flow, paper_area) ->
      match flow_fu_areas flow with
      | Error m -> Text_table.add_row t [ label; "FAILED: " ^ m ]
      | Ok (sched, mul, add) ->
        let total = mul +. add in
        schedules := (label, sched) :: !schedules;
        Text_table.add_row t
          [
            label;
            Printf.sprintf "%.0f" mul;
            Printf.sprintf "%.0f" add;
            Printf.sprintf "%.0f" total;
            Printf.sprintf "%.0f" paper_area;
            Printf.sprintf "%+.1f%%" (100.0 *. (total -. paper_area) /. paper_area);
          ])
    paper;
  Text_table.print t;
  print_newline ();
  print_endline
    "Figure 2 (b)-(d): the schedules behind the three rows (states x ops):";
  List.iter
    (fun (label, sched) -> Format.printf "@.%s:@.%a@." label Schedule.pp sched)
    (List.rev !schedules)

(* ------------------------------------------------------------------ *)
(* Table 3: symbolic sequential slack on the resizer main computation. *)

let table3 () =
  section "Table 3: sequential slack computation (resizer, symbolic in T, D, d)";
  let r = Resizer.table3 () in
  let spans = Dfg.compute_spans r.Resizer.dfg in
  let tdfg = Timed_dfg.build r.Resizer.dfg ~spans in
  let tT = Affine.param "T" and dD = Affine.param "D" and dd = Affine.param "d" in
  let is_io o =
    List.exists (Dfg.Op_id.equal o) [ r.Resizer.rd_a; r.Resizer.rd_b; r.Resizer.wr ]
  in
  let del o = if is_io o then dd else dD in
  let res = Parametric.analyze tdfg ~clock:tT ~del ~samples:Resizer.table3_samples in
  let t = Text_table.create ~headers:[ "Op"; "Arr(op)"; "Req(op)"; "slack(op)"; "Paper slack"; "Match" ] in
  Text_table.set_align t 1 Text_table.Left;
  Text_table.set_align t 2 Text_table.Left;
  Text_table.set_align t 3 Text_table.Left;
  let order = [ "T"; "D"; "d" ] in
  let paper_slack =
    [
      (r.Resizer.rd_a, "2T - 4D - d", (2., -4., -1.));
      (r.Resizer.add, "2T - 4D - d", (2., -4., -1.));
      (r.Resizer.div, "2T - 4D - d", (2., -4., -1.));
      (r.Resizer.sub, "2T - 4D - d", (2., -4., -1.));
      (r.Resizer.rd_b, "T - 2D - d", (1., -2., -1.));
      (r.Resizer.mul, "T - 2D - d", (1., -2., -1.));
      (r.Resizer.mux, "2T - 4D - d", (2., -4., -1.));
      (r.Resizer.wr, "3T - 4D - 2d", (3., -4., -2.));
    ]
  in
  List.iter
    (fun (o, paper, (ct, cd_, cdd)) ->
      let i = Dfg.Op_id.to_int o in
      let expected =
        Affine.add (Affine.add (Affine.scale ct tT) (Affine.scale cd_ dD)) (Affine.scale cdd dd)
      in
      let ok = Affine.equal expected res.Parametric.slack.(i) in
      Text_table.add_row t
        [
          (Dfg.op r.Resizer.dfg o).Dfg.name;
          Affine.to_string ~order res.Parametric.arr.(i);
          Affine.to_string ~order res.Parametric.req.(i);
          Affine.to_string ~order res.Parametric.slack.(i);
          paper;
          (if ok then "yes" else "NO");
        ])
    paper_slack;
  Text_table.print t;
  let critical = Parametric.critical_ops tdfg res ~samples:Resizer.table3_samples in
  Printf.printf "\nCritical path (equal minimal slack): %s\n"
    (String.concat " -> "
       (List.map (fun o -> (Dfg.op r.Resizer.dfg o).Dfg.name) critical));
  print_endline "Paper: rd_a -> add -> div -> sub -> mux"

(* ------------------------------------------------------------------ *)
(* Table 4: IDCT design-space exploration.                             *)

let paper_table4 =
  [ ("D1", 0.1); ("D2", 2.3); ("D3", 17.3); ("D4", 17.2); ("D5", -5.5); ("D6", -3.0);
    ("D7", -4.7); ("D8", 10.7); ("D9", 16.0); ("D10", 16.4); ("D11", 14.2); ("D12", 2.3);
    ("D13", 26.2); ("D14", 8.0); ("D15", 16.0) ]

let table4 () =
  section "Table 4: area savings for the slack-based approach (IDCT exploration)";
  let t =
    Text_table.create
      ~headers:[ "Des"; "Lat"; "Kernel"; "A_conv"; "A_slack"; "Save %"; "Paper save %" ]
  in
  let savings = ref [] in
  List.iter
    (fun (p : Idct.design_point) ->
      let run flow =
        let d = Idct.instantiate p in
        match Flows.run ?ii:p.Idct.ii flow d.Idct.dfg ~lib:realistic ~clock:p.Idct.clock with
        | Ok r -> Some (Area_model.of_schedule r.Flows.schedule).Area_model.total
        | Error _ -> None
      in
      let a_conv = run Flows.Conventional and a_slack = run Flows.Slack_based in
      let save =
        match (a_conv, a_slack) with
        | Some c, Some s -> Some (100.0 *. (c -. s) /. c)
        | _ -> None
      in
      (match save with Some s -> savings := s :: !savings | None -> ());
      let paper = List.assoc p.Idct.id paper_table4 in
      let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "fail" in
      Text_table.add_row t
        [
          p.Idct.id;
          string_of_int p.Idct.latency;
          (match p.Idct.ii with
          | None -> "1-D"
          | Some ii -> Printf.sprintf "II=%d" ii);
          cell a_conv;
          cell a_slack;
          (match save with Some s -> Printf.sprintf "%.1f" s | None -> "-");
          Printf.sprintf "%.1f" paper;
        ])
    Idct.table4_points;
  Text_table.add_separator t;
  let avg = List.fold_left ( +. ) 0.0 !savings /. float_of_int (max 1 (List.length !savings)) in
  Text_table.add_row t [ "Average"; ""; ""; ""; ""; Printf.sprintf "%.1f" avg; "8.9" ];
  Text_table.print t;
  (* The paper frames the exploration as covering a 20x power range, a 7x
     throughput range and a 1.5x area range; measure the same spreads over
     our slack-based implementations of the 15 points. *)
  let metrics =
    List.filter_map
      (fun (p : Idct.design_point) ->
        let d = Idct.instantiate p in
        match Flows.run ?ii:p.Idct.ii Flows.Slack_based d.Idct.dfg ~lib:realistic ~clock:p.Idct.clock with
        | Error _ -> None
        | Ok r ->
          let cycles = Option.value ~default:p.Idct.latency p.Idct.ii in
          let sched = r.Flows.schedule in
          Some
            ( Area_model.power sched ~cycles_per_sample:cycles,
              1.0 /. (float_of_int cycles *. p.Idct.clock),
              (Area_model.of_schedule sched).Area_model.total ))
      Idct.table4_points
  in
  let spread f =
    let vs = List.map f metrics in
    List.fold_left Float.max neg_infinity vs /. List.fold_left Float.min infinity vs
  in
  Printf.printf
    "\nexploration ranges (paper: ~20x power, 7x throughput, 1.5x area):\n\
    \  measured: %.1fx power, %.1fx throughput, %.1fx area\n"
    (spread (fun (p, _, _) -> p))
    (spread (fun (_, t, _) -> t))
    (spread (fun (_, _, a) -> a))

(* ------------------------------------------------------------------ *)
(* Customer-design surrogate (paper §VII, ~5% average).                *)

let customer ?(count = 100) () =
  section
    (Printf.sprintf
       "Customer-design surrogate: %d seeded random behavioral designs (paper: ~5%% mean)"
       count);
  let designs = Random_design.suite ~count ~seed:20120312 () in
  let savings = ref [] and fails = ref 0 in
  List.iter
    (fun (d : Random_design.t) ->
      let hd =
        Hls.design ~name:d.Random_design.name ~clock:d.Random_design.suggested_clock
          d.Random_design.dfg
      in
      match (Hls.compare_flows ~lib:realistic hd).Hls.saving_pct with
      | Some s -> savings := s :: !savings
      | None -> incr fails)
    designs;
  let n = List.length !savings in
  let avg = List.fold_left ( +. ) 0.0 !savings /. float_of_int (max 1 n) in
  let neg = List.length (List.filter (fun s -> s < 0.0) !savings) in
  Printf.printf
    "designs completed by both flows: %d/%d\naverage saving: %.1f%% (min %.1f%%, max %.1f%%)\n\
     designs where slack-based lost: %d (paper also reports such cases: D5-D7)\n"
    n count avg
    (List.fold_left Float.min infinity !savings)
    (List.fold_left Float.max neg_infinity !savings)
    neg;
  ignore fails

(* ------------------------------------------------------------------ *)
(* Table 5: relative scheduling execution times.                       *)

let table5 () =
  section "Table 5: relative scheduling execution times (design D1)";
  let p = List.hd Idct.table4_points in
  let run_with flow config () =
    let d = Idct.instantiate p in
    match Flows.run ~config flow d.Idct.dfg ~lib:realistic ~clock:p.Idct.clock with
    | Ok _ -> ()
    | Error e -> failwith (Flows.error_message e)
  in
  let base_cfg = Flows.default_config in
  let bf_cfg =
    {
      base_cfg with
      Flows.budget_config =
        { base_cfg.Flows.budget_config with Budget.engine = Budget.Bellman_ford_baseline };
      rebudget_config =
        Option.map
          (fun c -> { c with Budget.engine = Budget.Bellman_ford_baseline })
          base_cfg.Flows.rebudget_config;
    }
  in
  Printf.printf "measuring (bechamel, monotonic clock)...\n%!";
  let t_conv = measure_ns ~quota:2.0 "conventional" (run_with Flows.Conventional base_cfg) in
  let t_slack = measure_ns ~quota:2.0 "slack" (run_with Flows.Slack_based base_cfg) in
  let t_bf = measure_ns ~quota:3.0 "slack-bf" (run_with Flows.Slack_based bf_cfg) in
  let t = Text_table.create ~headers:[ ""; "Conventional"; "Sequential slack"; "Bellman-Ford" ] in
  Text_table.add_row t [ "time/run"; pp_ns t_conv; pp_ns t_slack; pp_ns t_bf ];
  Text_table.add_row t
    [
      "relative";
      "1.00";
      Printf.sprintf "%.2f" (t_slack /. t_conv);
      Printf.sprintf "%.2f" (t_bf /. t_conv);
    ];
  Text_table.add_row t [ "paper"; "1"; "1.18"; "10.2" ];
  Text_table.print t;
  (* The raw engine gap, isolated from scheduling. *)
  subsection "timing-analysis engines in isolation (same timed DFG)";
  let d = Idct.instantiate p in
  let spans = Dfg.compute_spans d.Idct.dfg in
  let tdfg = Timed_dfg.build d.Idct.dfg ~spans in
  let del o =
    let op = Dfg.op d.Idct.dfg o in
    match Library.op_curve realistic op.Dfg.kind ~width:op.Dfg.width with
    | Some c -> Curve.min_delay c
    | None -> 0.0
  in
  let two = measure_ns "two-pass" (fun () -> ignore (Slack.analyze tdfg ~clock:p.Idct.clock ~del)) in
  let bf = measure_ns "bellman-ford" (fun () -> ignore (Bf_timing.analyze tdfg ~clock:p.Idct.clock ~del)) in
  Printf.printf "two-pass %s vs bellman-ford %s: %.1fx\n" (pp_ns two) (pp_ns bf) (bf /. two);
  (* The asymptotic O(V*E) vs O(E) gap needs larger/deeper graphs to show
     (the paper's industrial D1 is far larger than our kernel); sweep the
     IDCT pass count to expose the divergence. *)
  subsection "engine scaling with design size (chained IDCT passes)";
  let t2 = Text_table.create ~headers:[ "passes"; "ops"; "two-pass"; "bellman-ford"; "ratio" ] in
  List.iter
    (fun passes ->
      let d = Idct.build ~latency:(8 * passes) ~passes () in
      let spans = Dfg.compute_spans d.Idct.dfg in
      let tdfg = Timed_dfg.build d.Idct.dfg ~spans in
      let del o =
        let op = Dfg.op d.Idct.dfg o in
        match Library.op_curve realistic op.Dfg.kind ~width:op.Dfg.width with
        | Some c -> Curve.min_delay c
        | None -> 0.0
      in
      let two = measure_ns ~quota:0.5 "two" (fun () -> ignore (Slack.analyze tdfg ~clock:2500.0 ~del)) in
      let bf = measure_ns ~quota:0.5 "bf" (fun () -> ignore (Bf_timing.analyze tdfg ~clock:2500.0 ~del)) in
      Text_table.add_row t2
        [ string_of_int passes; string_of_int (Dfg.op_count d.Idct.dfg);
          pp_ns two; pp_ns bf; Printf.sprintf "%.1fx" (bf /. two) ])
    [ 1; 2; 4; 8; 16 ];
  Text_table.print t2
