(* Corpus & sharding section: plan the 100-design manifest population,
   partition the grid x corpus key space, and merge per-shard journals —
   the distribution machinery timed at the paper's §VII scale.  Counters
   (corpus.generated, shard.planned/merged/duplicates) land in the
   baseline snapshot, so the work totals are gated exactly. *)

open Bench_common

let time f =
  let t0 = Obs.now_ns () in
  let r = f () in
  (Int64.to_float (Int64.sub (Obs.now_ns ()) t0), r)

let summ =
  {
    Eval_cache.status = Eval_cache.Success;
    area = 1000.0;
    steps = 4;
    delay_ps = 10000.0;
    relaxations = 0;
    regrades = 0;
    recoveries = 0;
    error = "";
  }

let run ~quick () =
  section "Corpus & sharding (100-design manifest, paper-scale population)";
  let t_plan, entries = time (fun () -> Corpus.plan ~count:100 ~seed:42 ()) in
  let total_ops =
    List.fold_left (fun n (e : Corpus.entry) -> n + e.Corpus.ops) 0 entries
  in
  Printf.printf "  corpus plan: %d designs, %d ops total, in %s\n"
    (List.length entries) total_ops (pp_ns t_plan);
  (* The key space `hlsc sweep --corpus --shards N` partitions: every
     (design, grid point) pair under one configuration fingerprint. *)
  let grid =
    match Explore_grid.of_specs ~clocks:"2000:2700:100" ~flows:"conv,slack" () with
    | Ok g -> g
    | Error m -> failwith m
  in
  let pkeys = List.map Explore_grid.point_key (Explore_grid.points grid) in
  let config = Explore.config_fingerprint Flows.default_config in
  let keys =
    List.concat_map
      (fun (e : Corpus.entry) ->
        List.map
          (fun pk ->
            Eval_cache.key ~digest:e.Corpus.digest ~lib:"default" ~config
              ~point_key:pk)
          pkeys)
      entries
  in
  let shards = if quick then 3 else 8 in
  let t_part, buckets = time (fun () -> Shard.plan ~shards keys) in
  Printf.printf "  shard plan: %d keys -> %d contiguous ranges in %s\n"
    (List.length keys) shards (pp_ns t_part);
  (* One journal per shard (plus one duplicated record in shard 0 — a
     resume artifact the merge must collapse), then reassemble. *)
  let dir = Filename.temp_file "corpus_bench" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let t_write, paths =
        time (fun () ->
            Array.mapi
              (fun i bucket ->
                let path = Filename.concat dir (Printf.sprintf "shard-%d.jnl" i) in
                let w = Journal.start ~path ~fresh:true in
                Fun.protect
                  ~finally:(fun () -> Journal.close w)
                  (fun () ->
                    List.iter (fun key -> Journal.record w ~key summ) bucket;
                    match bucket with
                    | key :: _ when i = 0 -> Journal.record w ~key summ
                    | _ -> ());
                path)
              buckets)
      in
      let output = Filename.concat dir "merged.jnl" in
      let t_merge, stats =
        time (fun () ->
            match Shard.merge_journals ~inputs:(Array.to_list paths) ~output with
            | Ok s -> s
            | Error m -> failwith m)
      in
      Printf.printf
        "  journals: %d records fsync'd in %s   merge: %d journals -> %d \
         records (%d duplicate collapsed) in %s\n"
        (List.length keys + 1)
        (pp_ns t_write) stats.Shard.journals stats.Shard.entries
        stats.Shard.duplicates (pp_ns t_merge);
      if stats.Shard.entries <> List.length keys then
        failwith "merge lost or invented records";
      if stats.Shard.duplicates <> 1 then
        failwith "merge missed the planted duplicate")
