(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), then runs the
   ablation sweeps.  `dune exec bench/main.exe` prints everything;
   `dune exec bench/main.exe -- --quick` skips the slow sections;
   `--json FILE` additionally dumps per-section wall clock and the full
   telemetry counter snapshot as JSON.

   Regression gate: `--baseline FILE` diffs the current snapshot against a
   committed one (BENCH_BASELINE.json).  Counters are deterministic event
   counts, so any delta on a counter both runs know is a regression (0%
   tolerance) — except the machine-dependent `explore.pool.*` family.
   Per-section wall clock fails past `--wall-threshold PCT` (default 20;
   0 disables the wall check, for CI machines with unknown speed).
   Per-section GC allocation (minor/major words, deterministic on one
   compiler version) fails past `--alloc-threshold PCT` (default 10;
   0 disables); sections below 1024 baseline words are exempt, so tiny
   sections can't alarm on rounding.  `--diff FILE` skips benching and
   diffs an existing snapshot file instead — the fast path for build
   rules.  Exit codes: 0 clean, 1 regression, 2 usage (including a
   quick/full mode mismatch). *)

type opts = {
  quick : bool;
  json : string option;
  baseline : string option;
  diff : string option;
  wall_threshold : float;
  alloc_threshold : float;
}

let usage () =
  prerr_endline
    "usage: bench [--quick] [--json FILE] [--baseline FILE] [--diff FILE] \
     [--wall-threshold PCT] [--alloc-threshold PCT]";
  exit 2

let parse_opts () =
  let o =
    ref
      {
        quick = false;
        json = None;
        baseline = None;
        diff = None;
        wall_threshold = 20.0;
        alloc_threshold = 10.0;
      }
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      o := { !o with quick = true };
      go rest
    | "--json" :: path :: rest ->
      o := { !o with json = Some path };
      go rest
    | "--baseline" :: path :: rest ->
      o := { !o with baseline = Some path };
      go rest
    | "--diff" :: path :: rest ->
      o := { !o with diff = Some path };
      go rest
    | "--wall-threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0.0 ->
        o := { !o with wall_threshold = t };
        go rest
      | _ ->
        prerr_endline "bench: --wall-threshold needs a non-negative number";
        exit 2)
    | "--alloc-threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0.0 ->
        o := { !o with alloc_threshold = t };
        go rest
      | _ ->
        prerr_endline "bench: --alloc-threshold needs a non-negative number";
        exit 2)
    | [ ("--json" | "--baseline" | "--diff" | "--wall-threshold"
        | "--alloc-threshold") as flag ] ->
      Printf.eprintf "bench: %s requires an argument\n" flag;
      exit 2
    | arg :: _ ->
      Printf.eprintf "bench: unknown argument %s\n" arg;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  !o

(* ------------------------------------------------------------------ *)
(* Snapshots: the profile document written by --json and diffed by the
   baseline gate now lives in Obs.Prof (shared with any other harness);
   it carries per-section GC/alloc telemetry alongside wall clock. *)

let load_snapshot ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m ->
    Printf.eprintf "bench: %s\n" m;
    exit 2
  | text -> (
    match Obs.Json.parse text with
    | Error m ->
      Printf.eprintf "bench: %s: %s\n" path m;
      exit 2
    | Ok doc -> (
      match Obs.Prof.snapshot_of_json doc with
      | Error m ->
        Printf.eprintf "bench: %s: %s\n" path m;
        exit 2
      | Ok s -> s))

let write_json ~path doc =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Counters whose values legitimately vary across machines: the pool sizes
   itself on Domain.recommended_domain_count, so spawn/task bookkeeping is
   hardware-dependent even though sweep results are not. *)
let volatile_counter name = String.starts_with ~prefix:"explore.pool." name

(* Sections below this many baseline words are exempt from the alloc gate:
   at tiny volumes a single extra boxed value is a huge percentage. *)
let alloc_floor_words = 1024.0

let diff_snapshots ~wall_threshold ~alloc_threshold
    ~(baseline : Obs.Prof.snapshot) ~(current : Obs.Prof.snapshot) =
  if not (String.equal baseline.Obs.Prof.mode current.Obs.Prof.mode) then begin
    Printf.eprintf
      "bench: baseline mode %S does not match current mode %S (regenerate the \
       baseline with the same --quick setting)\n"
      baseline.Obs.Prof.mode current.Obs.Prof.mode;
    exit 2
  end;
  let regressions = ref 0 in
  List.iter
    (fun (name, bv) ->
      if not (volatile_counter name) then
        match List.assoc_opt name current.Obs.Prof.counters with
        | Some cv when cv = bv -> ()
        | Some cv ->
          incr regressions;
          Printf.printf "REGRESSION counter %s: baseline %d, current %d (%+d)\n" name
            bv cv (cv - bv)
        | None ->
          incr regressions;
          Printf.printf "REGRESSION counter %s: baseline %d, missing from current\n"
            name bv)
    baseline.Obs.Prof.counters;
  List.iter
    (fun (name, cv) ->
      if
        (not (volatile_counter name))
        && List.assoc_opt name baseline.Obs.Prof.counters = None
      then Printf.printf "note: new counter %s = %d (not in baseline)\n" name cv)
    current.Obs.Prof.counters;
  let current_row path =
    List.find_opt
      (fun (r : Obs.Prof.row) -> String.equal r.Obs.Prof.path path)
      current.Obs.Prof.sections
  in
  List.iter
    (fun (b : Obs.Prof.row) ->
      match current_row b.Obs.Prof.path with
      | None -> ()
      | Some c ->
        (if wall_threshold > 0.0 && b.Obs.Prof.total_ns > 0.0 then begin
           let pct =
             (c.Obs.Prof.total_ns -. b.Obs.Prof.total_ns)
             /. b.Obs.Prof.total_ns *. 100.0
           in
           if pct > wall_threshold then begin
             incr regressions;
             Printf.printf
               "REGRESSION wall %s: %.2f ms -> %.2f ms (+%.1f%%, threshold %.1f%%)\n"
               b.Obs.Prof.path
               (b.Obs.Prof.total_ns /. 1e6)
               (c.Obs.Prof.total_ns /. 1e6)
               pct wall_threshold
           end
         end);
        if alloc_threshold > 0.0 then
          List.iter
            (fun (what, bw, cw) ->
              (* Only increases regress: less allocation is an improvement,
                 and the next baseline refresh absorbs it. *)
              if bw >= alloc_floor_words && cw > bw then begin
                let pct = (cw -. bw) /. bw *. 100.0 in
                if pct > alloc_threshold then begin
                  incr regressions;
                  Printf.printf
                    "REGRESSION alloc %s (%s): %.0f -> %.0f words (+%.1f%%, \
                     threshold %.1f%%)\n"
                    b.Obs.Prof.path what bw cw pct alloc_threshold
                end
              end)
            [
              ("minor", b.Obs.Prof.minor_words, c.Obs.Prof.minor_words);
              ("major", b.Obs.Prof.major_words, c.Obs.Prof.major_words);
            ])
    baseline.Obs.Prof.sections;
  if !regressions = 0 then begin
    Printf.printf
      "baseline check: OK (%d counters, %d sections, wall threshold %s, alloc \
       threshold %s)\n"
      (List.length baseline.Obs.Prof.counters)
      (List.length baseline.Obs.Prof.sections)
      (if wall_threshold > 0.0 then Printf.sprintf "%.0f%%" wall_threshold
       else "disabled")
      (if alloc_threshold > 0.0 then Printf.sprintf "%.0f%%" alloc_threshold
       else "disabled");
    0
  end
  else begin
    Printf.printf "baseline check: %d regression%s\n" !regressions
      (if !regressions = 1 then "" else "s");
    1
  end

(* The null-sink note (tentpole invariant): with events disabled,
   Obs.Events.emit must stay a single flag test.  Measured, not assumed —
   the measured body bumps no counters, so --quick determinism holds. *)
let events_null_sink_note () =
  Bench_common.subsection "events null-sink overhead (disabled emit = flag test)";
  Obs.Events.disable ();
  let payload =
    Obs.Events.Budget_round { round = 0; updates = 0 }
  in
  let t =
    Bench_common.measure_ns ~quota:0.25 "events.emit.off" (fun () ->
        Obs.Events.emit payload)
  in
  Printf.printf "  disabled Obs.Events.emit: %.1f ns/call (flag test + branch)\n" t

let () =
  let opts = parse_opts () in
  match opts.diff with
  | Some path ->
    (* Diff-only mode: no benching, compare two snapshot files. *)
    let baseline =
      match opts.baseline with
      | Some b -> load_snapshot ~path:b
      | None ->
        prerr_endline "bench: --diff requires --baseline FILE";
        exit 2
    in
    let current = load_snapshot ~path in
    exit
      (diff_snapshots ~wall_threshold:opts.wall_threshold
         ~alloc_threshold:opts.alloc_threshold ~baseline ~current)
  | None ->
    let quick = opts.quick in
    if opts.json <> None || opts.baseline <> None then begin
      Obs.enable_stats ();
      Obs.Prof.enable ()
    end;
    let sec name f = Obs.span ("bench." ^ name) f in
    print_endline "slackhls benchmark harness";
    print_endline "reproducing: Kondratyev et al., 'Exploiting area/delay tradeoffs";
    print_endline "in high-level synthesis', DATE 2012";
    sec "table1" Tables.table1;
    sec "table2" Tables.table2;
    sec "table3" Tables.table3;
    sec "table4" Tables.table4;
    sec "customer" (Tables.customer ~count:(if quick then 20 else 100));
    sec "explore" (Explore_bench.run ~quick);
    sec "corpus" (Corpus_bench.run ~quick);
    sec "attribution" Attribution.run;
    sec "fleet" (Fleet_bench.run ~quick);
    if not quick then sec "table5" Tables.table5
    else print_endline "\n(table 5 timing skipped in --quick mode)";
    if not quick then sec "ablations" Ablations.run
    else print_endline "(ablations skipped in --quick mode)";
    events_null_sink_note ();
    print_newline ();
    let current = Obs.Prof.snapshot ~mode:(if quick then "quick" else "full") in
    let doc = Obs.Prof.snapshot_to_json ~harness:"slackhls-bench" current in
    (match opts.json with Some path -> write_json ~path doc | None -> ());
    let code =
      match opts.baseline with
      | None -> 0
      | Some bpath ->
        let baseline = load_snapshot ~path:bpath in
        diff_snapshots ~wall_threshold:opts.wall_threshold
          ~alloc_threshold:opts.alloc_threshold ~baseline ~current
    in
    print_endline "done.";
    exit code
