(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), then runs the
   ablation sweeps.  `dune exec bench/main.exe` prints everything;
   `dune exec bench/main.exe -- --quick` skips the slow sections;
   `--json FILE` additionally dumps per-section wall clock and the full
   telemetry counter snapshot as JSON. *)

let json_path () =
  let rec find = function
    | [ "--json" ] ->
      prerr_endline "bench: --json requires a FILE argument";
      exit 2
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let write_json ~path =
  let open Obs.Json in
  let sections =
    List.map
      (fun (p, calls, total_ns) ->
        Obj
          [
            ("span", String p);
            ("calls", Int calls);
            ("total_ns", Float total_ns);
          ])
      (Obs.span_stats ())
  in
  let counters =
    List.map (fun (name, v) -> (name, Int v)) (Obs.counters_snapshot ())
  in
  let doc =
    Obj
      [
        ("harness", String "slackhls-bench");
        ("sections", List sections);
        ("counters", Obj counters);
      ]
  in
  let oc = open_out path in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let json = json_path () in
  if json <> None then Obs.enable_stats ();
  let sec name f = Obs.span ("bench." ^ name) f in
  print_endline "slackhls benchmark harness";
  print_endline "reproducing: Kondratyev et al., 'Exploiting area/delay tradeoffs";
  print_endline "in high-level synthesis', DATE 2012";
  sec "table1" Tables.table1;
  sec "table2" Tables.table2;
  sec "table3" Tables.table3;
  sec "table4" Tables.table4;
  sec "customer" (Tables.customer ~count:(if quick then 20 else 100));
  sec "explore" (Explore_bench.run ~quick);
  if not quick then sec "table5" Tables.table5
  else print_endline "\n(table 5 timing skipped in --quick mode)";
  if not quick then sec "ablations" Ablations.run
  else print_endline "(ablations skipped in --quick mode)";
  print_newline ();
  (match json with Some path -> write_json ~path | None -> ());
  print_endline "done."
