(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), then runs the
   ablation sweeps.  `dune exec bench/main.exe` prints everything;
   `dune exec bench/main.exe -- --quick` skips the slow sections;
   `--json FILE` additionally dumps per-section wall clock and the full
   telemetry counter snapshot as JSON.

   Regression gate: `--baseline FILE` diffs the current snapshot against a
   committed one (BENCH_BASELINE.json).  Counters are deterministic event
   counts, so any delta on a counter both runs know is a regression (0%
   tolerance) — except the machine-dependent `explore.pool.*` family.
   Per-section wall clock fails past `--wall-threshold PCT` (default 20;
   0 disables the wall check, for CI machines with unknown speed).
   `--diff FILE` skips benching and diffs an existing snapshot file
   instead — the fast path for build rules.  Exit codes: 0 clean,
   1 regression, 2 usage (including a quick/full mode mismatch). *)

type opts = {
  quick : bool;
  json : string option;
  baseline : string option;
  diff : string option;
  wall_threshold : float;
}

let usage () =
  prerr_endline
    "usage: bench [--quick] [--json FILE] [--baseline FILE] [--diff FILE] \
     [--wall-threshold PCT]";
  exit 2

let parse_opts () =
  let o =
    ref { quick = false; json = None; baseline = None; diff = None; wall_threshold = 20.0 }
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      o := { !o with quick = true };
      go rest
    | "--json" :: path :: rest ->
      o := { !o with json = Some path };
      go rest
    | "--baseline" :: path :: rest ->
      o := { !o with baseline = Some path };
      go rest
    | "--diff" :: path :: rest ->
      o := { !o with diff = Some path };
      go rest
    | "--wall-threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0.0 ->
        o := { !o with wall_threshold = t };
        go rest
      | _ ->
        prerr_endline "bench: --wall-threshold needs a non-negative number";
        exit 2)
    | [ ("--json" | "--baseline" | "--diff" | "--wall-threshold") as flag ] ->
      Printf.eprintf "bench: %s requires an argument\n" flag;
      exit 2
    | arg :: _ ->
      Printf.eprintf "bench: unknown argument %s\n" arg;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  !o

(* ------------------------------------------------------------------ *)
(* Snapshots: the JSON document written by --json, and its parsed form
   used on both sides of a baseline diff. *)

type snapshot = {
  mode : string;  (* "quick" | "full": only like-for-like runs compare *)
  sections : (string * float) list;  (* span path -> total_ns *)
  counters : (string * int) list;
}

let snapshot_doc ~quick =
  let open Obs.Json in
  let sections =
    List.map
      (fun (p, calls, total_ns) ->
        Obj [ ("span", String p); ("calls", Int calls); ("total_ns", Float total_ns) ])
      (Obs.span_stats ())
  in
  let counters = List.map (fun (name, v) -> (name, Int v)) (Obs.counters_snapshot ()) in
  Obj
    [
      ("harness", String "slackhls-bench");
      ("mode", String (if quick then "quick" else "full"));
      ("sections", List sections);
      ("counters", Obj counters);
    ]

let snapshot_of_json doc =
  let open Obs.Json in
  match doc with
  | Obj fields ->
    let mode =
      match List.assoc_opt "mode" fields with Some (String m) -> m | _ -> "full"
    in
    let num = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None in
    let sections =
      match List.assoc_opt "sections" fields with
      | Some (List rows) ->
        List.filter_map
          (function
            | Obj row -> (
              match (List.assoc_opt "span" row, List.assoc_opt "total_ns" row) with
              | Some (String span), Some ns -> Option.map (fun v -> (span, v)) (num ns)
              | _ -> None)
            | _ -> None)
          rows
      | _ -> []
    in
    let counters =
      match List.assoc_opt "counters" fields with
      | Some (Obj rows) ->
        List.filter_map
          (function name, Int v -> Some (name, v) | _ -> None)
          rows
      | _ -> []
    in
    Ok { mode; sections; counters }
  | _ -> Error "snapshot is not a JSON object"

let load_snapshot ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m ->
    Printf.eprintf "bench: %s\n" m;
    exit 2
  | text -> (
    match Obs.Json.parse text with
    | Error m ->
      Printf.eprintf "bench: %s: %s\n" path m;
      exit 2
    | Ok doc -> (
      match snapshot_of_json doc with
      | Error m ->
        Printf.eprintf "bench: %s: %s\n" path m;
        exit 2
      | Ok s -> s))

let write_json ~path doc =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Counters whose values legitimately vary across machines: the pool sizes
   itself on Domain.recommended_domain_count, so spawn/task bookkeeping is
   hardware-dependent even though sweep results are not. *)
let volatile_counter name = String.starts_with ~prefix:"explore.pool." name

let diff_snapshots ~wall_threshold ~(baseline : snapshot) ~(current : snapshot) =
  if not (String.equal baseline.mode current.mode) then begin
    Printf.eprintf
      "bench: baseline mode %S does not match current mode %S (regenerate the \
       baseline with the same --quick setting)\n"
      baseline.mode current.mode;
    exit 2
  end;
  let regressions = ref 0 in
  List.iter
    (fun (name, bv) ->
      if not (volatile_counter name) then
        match List.assoc_opt name current.counters with
        | Some cv when cv = bv -> ()
        | Some cv ->
          incr regressions;
          Printf.printf "REGRESSION counter %s: baseline %d, current %d (%+d)\n" name
            bv cv (cv - bv)
        | None ->
          incr regressions;
          Printf.printf "REGRESSION counter %s: baseline %d, missing from current\n"
            name bv)
    baseline.counters;
  List.iter
    (fun (name, cv) ->
      if (not (volatile_counter name)) && List.assoc_opt name baseline.counters = None
      then Printf.printf "note: new counter %s = %d (not in baseline)\n" name cv)
    current.counters;
  if wall_threshold > 0.0 then
    List.iter
      (fun (name, bns) ->
        match List.assoc_opt name current.sections with
        | Some cns when bns > 0.0 ->
          let pct = (cns -. bns) /. bns *. 100.0 in
          if pct > wall_threshold then begin
            incr regressions;
            Printf.printf
              "REGRESSION wall %s: %.2f ms -> %.2f ms (+%.1f%%, threshold %.1f%%)\n"
              name (bns /. 1e6) (cns /. 1e6) pct wall_threshold
          end
        | Some _ | None -> ())
      baseline.sections;
  if !regressions = 0 then begin
    Printf.printf "baseline check: OK (%d counters, %d sections, wall threshold %s)\n"
      (List.length baseline.counters)
      (List.length baseline.sections)
      (if wall_threshold > 0.0 then Printf.sprintf "%.0f%%" wall_threshold
       else "disabled");
    0
  end
  else begin
    Printf.printf "baseline check: %d regression%s\n" !regressions
      (if !regressions = 1 then "" else "s");
    1
  end

(* The null-sink note (tentpole invariant): with events disabled,
   Obs.Events.emit must stay a single flag test.  Measured, not assumed —
   the measured body bumps no counters, so --quick determinism holds. *)
let events_null_sink_note () =
  Bench_common.subsection "events null-sink overhead (disabled emit = flag test)";
  Obs.Events.disable ();
  let payload =
    Obs.Events.Budget_round { round = 0; updates = 0 }
  in
  let t =
    Bench_common.measure_ns ~quota:0.25 "events.emit.off" (fun () ->
        Obs.Events.emit payload)
  in
  Printf.printf "  disabled Obs.Events.emit: %.1f ns/call (flag test + branch)\n" t

let () =
  let opts = parse_opts () in
  match opts.diff with
  | Some path ->
    (* Diff-only mode: no benching, compare two snapshot files. *)
    let baseline =
      match opts.baseline with
      | Some b -> load_snapshot ~path:b
      | None ->
        prerr_endline "bench: --diff requires --baseline FILE";
        exit 2
    in
    let current = load_snapshot ~path in
    exit (diff_snapshots ~wall_threshold:opts.wall_threshold ~baseline ~current)
  | None ->
    let quick = opts.quick in
    if opts.json <> None || opts.baseline <> None then Obs.enable_stats ();
    let sec name f = Obs.span ("bench." ^ name) f in
    print_endline "slackhls benchmark harness";
    print_endline "reproducing: Kondratyev et al., 'Exploiting area/delay tradeoffs";
    print_endline "in high-level synthesis', DATE 2012";
    sec "table1" Tables.table1;
    sec "table2" Tables.table2;
    sec "table3" Tables.table3;
    sec "table4" Tables.table4;
    sec "customer" (Tables.customer ~count:(if quick then 20 else 100));
    sec "explore" (Explore_bench.run ~quick);
    if not quick then sec "table5" Tables.table5
    else print_endline "\n(table 5 timing skipped in --quick mode)";
    if not quick then sec "ablations" Ablations.run
    else print_endline "(ablations skipped in --quick mode)";
    events_null_sink_note ();
    print_newline ();
    let doc = snapshot_doc ~quick in
    (match opts.json with Some path -> write_json ~path doc | None -> ());
    let code =
      match opts.baseline with
      | None -> 0
      | Some bpath ->
        let baseline = load_snapshot ~path:bpath in
        let current =
          match snapshot_of_json doc with
          | Ok s -> s
          | Error m ->
            Printf.eprintf "bench: internal: %s\n" m;
            exit 2
        in
        diff_snapshots ~wall_threshold:opts.wall_threshold ~baseline ~current
    in
    print_endline "done.";
    exit code
