(* Fleet observability overhead (companion to the fleet telemetry PR):
   the cost of shipping a worker's telemetry — event emission, JSONL
   serialization, Telemetry.capture + to_json, Prometheus rendering —
   plus the enabled-vs-disabled wall-clock delta on a real flow, which
   is the number the "<2% of sweep wall clock" claim rests on.

   Every row uses fixed iteration counts (not quota-driven sampling),
   so the counters the measured bodies bump — obs.telemetry.captures,
   flow counters from the workload runs — stay deterministic and the
   baseline gate can keep its 0% counter tolerance. *)

let fixed_n n f =
  let t0 = Obs.Telemetry.uptime_ns () in
  for _ = 1 to n do
    f ()
  done;
  let t1 = Obs.Telemetry.uptime_ns () in
  float_of_int (t1 - t0) /. float_of_int n

let fir_design () =
  let f = Fir.build ~taps:8 ~latency:6 () in
  Hls.design ~name:"fir8" ~clock:2500.0 f.Fir.dfg

let run_flow d =
  match Hls.run Flows.Slack_based d with
  | Ok _ -> ()
  | Error e -> Printf.printf "  fir8 FAILED: %s\n" (Flows.error_message e)

let run ~quick () =
  Bench_common.section "Fleet observability: telemetry shipping overhead";
  let prof_was = Obs.Prof.enabled () in
  let stats_was = Obs.collecting () in
  (* Mirror `hlsc serve --telemetry`: events + trace + profiling on, then
     one real flow so the rings hold representative content before the
     capture rows run over them. *)
  Obs.enable_trace ();
  Obs.Events.enable ();
  Obs.Prof.enable ();
  let d = fir_design () in
  run_flow d;
  let payload =
    Obs.Events.Slack_computed
      { op = "a0"; phase = "bench"; round = 1; slack_ps = 12.5 }
  in
  let sample_ev = { Obs.Events.seq = 0; payload } in
  let emit_on = fixed_n 10_000 (fun () -> Obs.Events.emit payload) in
  let jsonl =
    fixed_n 10_000 (fun () ->
        ignore (Obs.Events.tagged_to_jsonl_line ~stream:"L0" sample_ev))
  in
  let cap_light =
    fixed_n 200 (fun () ->
        ignore
          (Obs.Json.to_string
             (Obs.Telemetry.to_json
                (Obs.Telemetry.capture ~events_limit:0 ~include_trace:false ()))))
  in
  let cap_full =
    fixed_n 50 (fun () ->
        ignore
          (Obs.Json.to_string
             (Obs.Telemetry.to_json
                (Obs.Telemetry.capture ~events_limit:256 ()))))
  in
  let expo = fixed_n 500 (fun () -> ignore (Obs.Expo.render ())) in
  Obs.Events.disable ();
  let emit_off = fixed_n 10_000 (fun () -> Obs.Events.emit payload) in
  Printf.printf "%-46s %12s\n" "path" "per call";
  List.iter
    (fun (name, ns) -> Printf.printf "%-46s %12s\n" name (Bench_common.pp_ns ns))
    [
      ("events.emit (enabled, ring at default size)", emit_on);
      ("events.emit (disabled: flag test)", emit_off);
      ("events.tagged_to_jsonl_line", jsonl);
      ("telemetry.capture+to_json (counters only)", cap_light);
      ("telemetry.capture+to_json (trace + 256 events)", cap_full);
      ("expo.render (/metrics scrape)", expo);
    ];
  (* The headline number.  Shipping a lease's provenance costs one
     [emit] per decision event while the flow runs plus one JSONL line
     per event in the reply; everything else (capture, expo) is
     per-poll, not per-point.  Count the events one flow actually emits
     (deterministic), price them at the measured per-event rates, and
     compare against the bare flow's wall clock.  The on/off wall delta
     is also printed for context — it includes Chrome-trace buffering
     and span profiling, which a sweep worker only pays under
     [--telemetry]. *)
  let reps = if quick then 6 else 20 in
  Obs.enable_trace ();
  Obs.Events.enable ();
  let m = Obs.Events.mark () in
  run_flow d;
  let events_per_run = List.length (Obs.Events.since ~mark:m) in
  let on_ns = fixed_n reps (fun () -> run_flow d) in
  Obs.disable ();
  Obs.Events.disable ();
  Obs.Prof.disable ();
  let off_ns = fixed_n reps (fun () -> run_flow d) in
  let ship_ns = float_of_int events_per_run *. (emit_on +. jsonl) in
  Printf.printf
    "\nfir8 slack flow, %d reps: telemetry on %s/run, off %s/run (%+.1f%%\n\
     full instrumentation: trace + spans + events)\n"
    reps
    (Bench_common.pp_ns on_ns)
    (Bench_common.pp_ns off_ns)
    ((on_ns -. off_ns) /. off_ns *. 100.0);
  Printf.printf
    "shipping (%d events/point emitted + serialized): %s/point — stays\n\
     under the 2%% sweep-wall budget whenever a point costs over %s of\n\
     wall on the distributed path (protocol + evaluation; a 2-worker\n\
     fir8 sweep measures ~85 ms/point, putting shipping near 0.3%%)\n"
    events_per_run
    (Bench_common.pp_ns ship_ns)
    (Bench_common.pp_ns (ship_ns /. 0.02));
  if prof_was then Obs.Prof.enable ();
  if stats_was then Obs.enable_stats ()
