(* Wasted-work attribution table (tentpole observability PR; companion to
   Table 5): for each kernel, run the slack-based flow and report how much
   of the timing engine's edge-relaxation work an incremental engine could
   have skipped — the full-analysis cost actually paid (touched), the
   would-be dirty cone (the incident edges of ops whose arrival/required
   times changed since the previous analysis), and the ops whose slack
   moved to a different budgeting bin.  All four numbers come from the
   global Attrib counters, read as before/after deltas per kernel, so the
   table is deterministic and the same counters feed the baseline gate. *)

let kernels =
  [
    ("interpolation", (fun () ->
         let ip = Interpolation.unrolled () in
         ip.Interpolation.dfg),
     Interpolation.clock);
    ("resizer", (fun () ->
         let r = Resizer.full () in
         r.Resizer.dfg),
     4000.0);
    ("idct", (fun () ->
         let d = Idct.build ~latency:12 ~passes:1 () in
         d.Idct.dfg),
     2500.0);
    ("fir8", (fun () ->
         let f = Fir.build ~taps:8 ~latency:6 () in
         f.Fir.dfg),
     2500.0);
  ]

let run () =
  Bench_common.section
    "Work attribution: wasted-work ratio of full timing re-analysis";
  Printf.printf "%-14s %9s %10s %10s %12s %8s\n" "kernel" "analyses" "touched"
    "cone" "changed-bin" "wasted";
  List.iter
    (fun (name, build, clock) ->
      let before = Attrib.totals () in
      (match Hls.run Flows.Slack_based (Hls.design ~name ~clock (build ())) with
      | Ok _ -> ()
      | Error e -> Printf.printf "  %s FAILED: %s\n" name (Flows.error_message e));
      let after = Attrib.totals () in
      let d =
        {
          Attrib.analyses = after.Attrib.analyses - before.Attrib.analyses;
          touched = after.Attrib.touched - before.Attrib.touched;
          cone = after.Attrib.cone - before.Attrib.cone;
          changed_bin = after.Attrib.changed_bin - before.Attrib.changed_bin;
        }
      in
      Printf.printf "%-14s %9d %10d %10d %12d %7.1f%%\n" name d.Attrib.analyses
        d.Attrib.touched d.Attrib.cone d.Attrib.changed_bin
        (100.0 *. Attrib.wasted_ratio d))
    kernels;
  Printf.printf
    "\n(wasted = 1 - cone/touched: the fraction of edge relaxations whose\n\
    \ inputs had not changed since the previous analysis)\n"
