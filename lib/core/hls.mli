(** Top-level façade: run an HLS flow on a design and collect every result
    a user typically wants (schedule, allocation, area breakdown, netlist
    statistics), plus side-by-side flow comparison and design-space
    exploration drivers.

    This is the paper's system end to end: behavioral timing analysis
    (sequential/aligned slack on the timed DFG), slack budgeting, the
    slack-guided scheduler with per-edge re-budgeting, binding, and the
    logic-synthesis-surrogate area model. *)

type design = {
  design_name : string;
  dfg : Dfg.t;      (** validated, over a sealed CFG *)
  clock : float;    (** clock period, ps *)
  ii : int option;  (** pipelining initiation interval *)
}

val design : ?ii:int -> name:string -> clock:float -> Dfg.t -> design

type result = {
  design : design;
  report : Flows.report;
  area : Area_model.breakdown;
  netlist : Netlist.t;
}

val run :
  ?lib:Library.t -> ?config:Flows.config -> ?cancel:Cancel.t -> Flows.flow ->
  design -> (result, Flows.error) Stdlib.result
(** [lib] defaults to {!Library.default}.  Errors are structured
    ({!Flows.error}): render them with {!Flows.pp_error} or
    {!Flows.error_message}.  [cancel] is a cooperative deadline polled at
    the pipeline's phase boundaries ({!Flows.run}); a fired token yields
    [Error (Flows.Timed_out _)].

    Under [config.validate = Check.Paranoid] the netlist and area
    breakdown are additionally cross-checked against the schedule
    ([Audit]); error-severity findings become
    [Error (Flows.Validation_failed _)]. *)

val fu_area : result -> float
val total_area : result -> float

(** {1 Flow comparison (the paper's Table 4 columns)} *)

type comparison = {
  cdesign : design;
  conventional : (result, Flows.error) Stdlib.result;
  slack_based : (result, Flows.error) Stdlib.result;
  saving_pct : float option;
      (** [(A_conv - A_slack) / A_conv * 100] when both flows succeeded *)
}

val compare_flows :
  ?lib:Library.t -> ?config:Flows.config -> design -> comparison

(** {1 Design-space exploration} *)

type dse_row = {
  point_name : string;
  a_conv : float option;
  a_slack : float option;
  save_pct : float option;
}

val explore :
  ?lib:Library.t -> ?config:Flows.config -> (string * design) list -> dse_row list

val average_saving : dse_row list -> float option
(** Mean saving over rows where both flows succeeded. *)

val render_dse : dse_row list -> string
(** Paper-Table-4-style text table. *)

(** {1 Timing analysis entry points} *)

val analyze_slack :
  ?aligned:bool -> design -> del:(Dfg.Op_id.t -> float) -> Slack.result
(** Sequential slack of the design's pre-schedule DFG. *)

val feasibility_check : ?lib:Library.t -> design -> (unit, Dfg.Op_id.t list) Stdlib.result
(** The paper's Proposition 1 quick check: with every op at its fastest
    library implementation, is the aligned slack non-negative?  [Error]
    carries the critical operations. *)
