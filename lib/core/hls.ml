type design = {
  design_name : string;
  dfg : Dfg.t;
  clock : float;
  ii : int option;
}

let design ?ii ~name ~clock dfg =
  if clock <= 0.0 then invalid_arg "Hls.design: clock must be positive";
  (match ii with
  | Some k when k <= 0 -> invalid_arg "Hls.design: ii must be positive"
  | Some _ | None -> ());
  { design_name = name; dfg; clock; ii }

type result = {
  design : design;
  report : Flows.report;
  area : Area_model.breakdown;
  netlist : Netlist.t;
}

let run ?(lib = Library.default) ?config ?cancel flow d =
  Obs.span "hls.run"
    ~attrs:[ ("design", d.design_name); ("flow", Flows.flow_name flow) ]
  @@ fun () ->
  match Flows.run ?config ?cancel ?ii:d.ii flow d.dfg ~lib ~clock:d.clock with
  | Error e -> Error e
  | Ok report ->
    let sched = report.Flows.schedule in
    let area = Obs.span "hls.area_model" (fun () -> Area_model.of_schedule sched) in
    let netlist = Obs.span "hls.netlist" (fun () -> Netlist.build sched) in
    (* The RTL-side phase boundary: cross-check the netlist and the area
       breakdown against the schedule they were derived from. *)
    let level =
      (Option.value ~default:Flows.default_config config).Flows.validate
    in
    let audit =
      if Check.ge level Check.Paranoid then
        Check.record (Audit.check_netlist netlist @ Audit.check_area sched area)
      else []
    in
    if Check.has_errors audit then
      Error
        (Flows.Validation_failed
           {
             failed_flow = flow;
             violations = Check.errors audit;
             recovery_log = report.Flows.recovery_log;
           })
    else
      let report = { report with Flows.violations = report.Flows.violations @ audit } in
      Ok { design = d; report; area; netlist }

let fu_area r = r.area.Area_model.fu
let total_area r = r.area.Area_model.total

type comparison = {
  cdesign : design;
  conventional : (result, Flows.error) Stdlib.result;
  slack_based : (result, Flows.error) Stdlib.result;
  saving_pct : float option;
}

let compare_flows ?lib ?config d =
  let conventional = run ?lib ?config Flows.Conventional d in
  let slack_based = run ?lib ?config Flows.Slack_based d in
  let saving_pct =
    match (conventional, slack_based) with
    | Ok c, Ok s ->
      let ac = total_area c and asl = total_area s in
      if ac > 0.0 then Some (100.0 *. (ac -. asl) /. ac) else None
    | _ -> None
  in
  { cdesign = d; conventional; slack_based; saving_pct }

type dse_row = {
  point_name : string;
  a_conv : float option;
  a_slack : float option;
  save_pct : float option;
}

let explore ?lib ?config points =
  List.map
    (fun (point_name, d) ->
      let c = compare_flows ?lib ?config d in
      {
        point_name;
        a_conv = (match c.conventional with Ok r -> Some (total_area r) | Error _ -> None);
        a_slack = (match c.slack_based with Ok r -> Some (total_area r) | Error _ -> None);
        save_pct = c.saving_pct;
      })
    points

let average_saving rows =
  let savings = List.filter_map (fun r -> r.save_pct) rows in
  match savings with
  | [] -> None
  | _ ->
    Some (List.fold_left ( +. ) 0.0 savings /. float_of_int (List.length savings))

let render_dse rows =
  let t = Text_table.create ~headers:[ "Des"; "A_conv"; "A_slack"; "Save %" ] in
  let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "fail" in
  let pct = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
  List.iter
    (fun r -> Text_table.add_row t [ r.point_name; cell r.a_conv; cell r.a_slack; pct r.save_pct ])
    rows;
  Text_table.add_separator t;
  (match average_saving rows with
  | Some avg -> Text_table.add_row t [ "Average"; ""; ""; Printf.sprintf "%.1f" avg ]
  | None -> ());
  Text_table.render t

let analyze_slack ?aligned d ~del =
  Obs.span "hls.analyze_slack" ~attrs:[ ("design", d.design_name) ]
  @@ fun () ->
  let spans = Dfg.compute_spans d.dfg in
  let tdfg = Timed_dfg.build d.dfg ~spans in
  Slack.analyze ?aligned tdfg ~clock:d.clock ~del

let feasibility_check ?(lib = Library.default) d =
  let spans = Dfg.compute_spans d.dfg in
  let tdfg = Timed_dfg.build d.dfg ~spans in
  let clock = d.clock -. Library.register_overhead lib in
  let del o =
    let op = Dfg.op d.dfg o in
    match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
    | Some c -> Curve.min_delay c
    | None -> 0.0
  in
  let res = Slack.analyze ~aligned:true tdfg ~clock ~del in
  if Slack.feasible res then Ok () else Error (Slack.critical_ops tdfg res)
