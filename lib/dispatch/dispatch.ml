(* Shard dispatch supervisor: lease key-ranges to remote hlsc serve
   workers, detect the ways workers die, salvage what they durably
   reported, and reassign the rest — relying on the determinism contract
   (canonical keys, byte-exact records) to make duplicated or salvaged
   work indistinguishable from a single-process sweep. *)

module J = Obs.Json

let c_leases = Obs.counter "dispatch.leases"
let c_reassigned = Obs.counter "dispatch.reassigned"
let c_stolen = Obs.counter "dispatch.stolen"
let c_salvaged = Obs.counter "dispatch.salvaged_points"
let c_fallback = Obs.counter "dispatch.fallback_local"
let c_duplicates = Obs.counter "dispatch.duplicate_replies"
let c_workers_lost = Obs.counter "dispatch.workers_lost"

let note_fallback_local () = Obs.incr c_fallback

type job = {
  design : string;
  clocks : string;
  flows : string;
  iis : string;
  recover : string;
  point_deadline : float option;
  keys : string list;
  key_of : string -> string;
}

type config = {
  workers : (string * Client.addr) list;
  lease_points : int;
  lease_deadline : float;
  heartbeat : float;
  heartbeat_misses : int;
  retry_budget : int;
  worker_strikes : int;
  backoff : float;
  steal : bool;
  trace_id : string option;
}

let default_config =
  {
    workers = [];
    lease_points = 8;
    lease_deadline = 60.0;
    heartbeat = 1.0;
    heartbeat_misses = 3;
    retry_budget = 5;
    worker_strikes = 3;
    backoff = 0.05;
    steal = false;
    trace_id = None;
  }

type outcome = {
  records : (string * Eval_cache.summary) list;
  complete : bool;
  abort : string option;
  leases : int;
  reassigned : int;
  stolen : int;
  salvaged_points : int;
  duplicate_replies : int;
  workers_lost : int;
  responses : (string * string) list;
  lease_events : (string * string list) list;
  lost_telemetry : (string * string) list;
}

(* -- internal state ------------------------------------------------- *)

type lease = {
  l_id : string;
  l_job : job;
  mutable l_keys : string list;  (* point keys chartered to this lease *)
  mutable l_attempt : int;
  mutable l_eligible : float;  (* backoff gate: not grantable before *)
  mutable l_last_worker : string option;
  mutable l_stolen : bool;  (* tail already split off once *)
}

type worker = {
  w_name : string;
  w_addr : Client.addr;
  mutable w_alive : bool;
  mutable w_strikes : int;  (* consecutive failed leases *)
  mutable w_misses : int;  (* consecutive missed heartbeats *)
  mutable w_hb_killed : bool;  (* the heartbeat detector fired *)
  mutable w_fd : Unix.file_descr option;  (* data connection, for shutdown *)
  mutable w_telemetry : string option;
      (* last telemetry snapshot a health reply carried — the flight
         recorder's remote half: archived when this worker is lost *)
}

type st = {
  cfg : config;
  mu : Mutex.t;
  workers : worker list;
  expected : (string, unit) Hashtbl.t;  (* full cache keys of the sweep *)
  table : (string, Eval_cache.summary) Hashtbl.t;  (* completed records *)
  mutable queue : lease list;
  mutable active : (lease * worker) list;
  salvage : (string, string list) Hashtbl.t;  (* lease id -> record lines *)
  lease_events : (string, string list) Hashtbl.t;
      (* lease id -> decision-event JSONL lines from the completing reply;
         first completion wins (duplicates are byte-identical anyway) *)
  mutable responses : (string * string) list;  (* newest first *)
  mutable next_id : int;
  mutable n_leases : int;
  mutable n_reassigned : int;
  mutable n_stolen : int;
  mutable n_salvaged : int;
  mutable n_duplicates : int;
  mutable n_lost : int;
  mutable abort : string option;
  mutable stop : bool;
}

let now () = Unix.gettimeofday ()

let with_mu st f =
  Mutex.lock st.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mu) f

let contain st detector response = st.responses <- (detector, response) :: st.responses

let fresh_id st =
  let n = st.next_id in
  st.next_id <- n + 1;
  Printf.sprintf "L%d" n

let undone st l =
  List.filter (fun pk -> not (Hashtbl.mem st.table (l.l_job.key_of pk))) l.l_keys

(* Fold worker-reported record lines into the result table.  Lines are
   full journal/cache entries; anything unparseable or outside the
   expected key set is dropped.  Returns how many new points landed. *)
let absorb_locked st lines ~salvaged =
  List.fold_left
    (fun acc line ->
      match Eval_cache.parse_line line with
      | Some (ck, s) when Hashtbl.mem st.expected ck && not (Hashtbl.mem st.table ck) ->
          Hashtbl.replace st.table ck s;
          if salvaged then begin
            st.n_salvaged <- st.n_salvaged + 1;
            Obs.incr c_salvaged
          end;
          acc + 1
      | _ -> acc)
    0 lines

let other_live st w = List.exists (fun ow -> ow != w && ow.w_alive) st.workers

(* Pop the first grantable lease: past its backoff gate, and not one this
   worker just failed while another live worker could take it instead.
   Leases whose keys all completed in the meantime (salvage, duplicates)
   are retired on the spot. *)
let rec take_lease st w =
  let t = now () in
  let grantable l =
    l.l_eligible <= t && (l.l_last_worker <> Some w.w_name || not (other_live st w))
  in
  match List.partition grantable st.queue with
  | [], _ -> None
  | l :: more, rest -> (
      st.queue <- more @ rest;
      match undone st l with
      | [] -> take_lease st w (* finished elsewhere; retire *)
      | remaining ->
          l.l_keys <- remaining;
          st.active <- (l, w) :: st.active;
          st.n_leases <- st.n_leases + 1;
          Obs.incr c_leases;
          Some l)

(* Work stealing: an idle worker splits the unfinished tail off the
   largest straggler lease.  The straggler keeps computing its full
   range — duplicated evaluations are byte-identical, so whichever copy
   reports first wins. *)
let try_steal st w =
  if not st.cfg.steal then None
  else
    with_mu st (fun () ->
        if st.queue <> [] || st.stop then None
        else
          let candidates =
            List.filter_map
              (fun (l, ow) ->
                if ow == w || not ow.w_alive || l.l_stolen then None
                else
                  match undone st l with
                  | u when List.length u >= 2 -> Some (l, u)
                  | _ -> None)
              st.active
          in
          match
            List.sort
              (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
              candidates
          with
          | [] -> None
          | (victim, u) :: _ ->
              let n = List.length u in
              let tail = List.filteri (fun i _ -> i >= n - (n / 2)) u in
              victim.l_stolen <- true;
              let nl =
                {
                  l_id = fresh_id st;
                  l_job = victim.l_job;
                  l_keys = tail;
                  l_attempt = 0;
                  l_eligible = 0.0;
                  l_last_worker = None;
                  l_stolen = true;
                }
              in
              st.active <- (nl, w) :: st.active;
              st.n_stolen <- st.n_stolen + 1;
              Obs.incr c_stolen;
              st.n_leases <- st.n_leases + 1;
              Obs.incr c_leases;
              contain st "straggler" "steal_tail";
              Some nl)

(* A lease ended without (full) success.  Salvage whatever the worker
   durably reported (health probes kept the lines), requeue only the
   lost tail with backoff, and strike the worker if the failure is its
   fault.  [log = false] when the detector already logged (the heartbeat
   thread) or the supervisor itself is stopping. *)
let fail_lease ?(log = true) ~detector ~response ~strike st w l =
  with_mu st (fun () ->
      st.active <- List.filter (fun (al, _) -> al != l) st.active;
      let lines = Option.value ~default:[] (Hashtbl.find_opt st.salvage l.l_id) in
      Hashtbl.remove st.salvage l.l_id;
      ignore (absorb_locked st lines ~salvaged:true);
      if log && not st.stop then contain st detector response;
      (match undone st l with
      | [] -> ()
      | remaining when not st.stop ->
          l.l_keys <- remaining;
          l.l_attempt <- l.l_attempt + 1;
          if l.l_attempt > st.cfg.retry_budget then
            st.abort <-
              Some
                (Printf.sprintf "lease %s exhausted its retry budget (%d)" l.l_id
                   st.cfg.retry_budget)
          else begin
            l.l_eligible <-
              now () +. (st.cfg.backoff *. (2.0 ** float_of_int (l.l_attempt - 1)));
            l.l_last_worker <- Some w.w_name;
            st.queue <- st.queue @ [ l ];
            st.n_reassigned <- st.n_reassigned + 1;
            Obs.incr c_reassigned
          end
      | _ -> ());
      if strike && w.w_alive then begin
        w.w_strikes <- w.w_strikes + 1;
        if w.w_strikes >= st.cfg.worker_strikes then begin
          w.w_alive <- false;
          st.n_lost <- st.n_lost + 1;
          Obs.incr c_workers_lost
        end
      end)

(* Requeue without blame: the worker answered [overloaded]/[draining] —
   back off briefly and let another worker take it. *)
let requeue_busy st w l ~eligible_in =
  with_mu st (fun () ->
      st.active <- List.filter (fun (al, _) -> al != l) st.active;
      (match undone st l with
      | [] -> ()
      | remaining when not st.stop ->
          l.l_keys <- remaining;
          l.l_eligible <- now () +. eligible_in;
          l.l_last_worker <- Some w.w_name;
          st.queue <- st.queue @ [ l ];
          contain st "worker_busy" "requeue"
      | _ -> ()))

let finish_lease st w l ?(events = []) lines =
  with_mu st (fun () ->
      ignore (absorb_locked st lines ~salvaged:false);
      if events <> [] && not (Hashtbl.mem st.lease_events l.l_id) then
        Hashtbl.replace st.lease_events l.l_id events;
      st.active <- List.filter (fun (al, _) -> al != l) st.active;
      Hashtbl.remove st.salvage l.l_id;
      w.w_strikes <- 0;
      match undone st l with
      | [] -> ()
      | remaining when not st.stop ->
          (* an [ok] reply that somehow missed keys: requeue the gap *)
          l.l_keys <- remaining;
          l.l_eligible <- now ();
          l.l_last_worker <- Some w.w_name;
          st.queue <- st.queue @ [ l ]
      | _ -> ())

let set_abort st msg = with_mu st (fun () -> if st.abort = None then st.abort <- Some msg)

(* -- the per-worker sender ------------------------------------------ *)

(* Stamp the supervisor's trace context on every lease: the worker opens
   its request span with these attributes, which is what links its lane to
   this sweep in the merged fleet trace. *)
let trace_ctx st ~lease =
  Option.map
    (fun tid -> { Protocol.trace_id = tid; parent = "dispatch"; lease })
    st.cfg.trace_id

let lease_request st l =
  let j = l.l_job in
  Protocol.request_to_json
    {
      Protocol.id = l.l_id;
      deadline_s = Some st.cfg.lease_deadline;
      trace = trace_ctx st ~lease:(Some l.l_id);
      req =
        Protocol.Shard_explore
          {
            design = j.design;
            clocks = j.clocks;
            flows = j.flows;
            iis = j.iis;
            recover = j.recover;
            point_deadline = j.point_deadline;
            lease = l.l_id;
            keys = l.l_keys;
          };
    }
  |> J.to_string

let close_client st w client =
  (match !client with Some c -> ( try Client.close c with _ -> ()) | None -> ());
  client := None;
  with_mu st (fun () -> w.w_fd <- None)

let run_lease st w client l =
  let conn_res =
    match !client with
    | Some c -> Ok c
    | None -> (
        match Client.connect w.w_addr with
        | Ok c ->
            client := Some c;
            with_mu st (fun () -> w.w_fd <- Some (Protocol.fd (Client.conn c)));
            Ok c
        | Error e -> Error e)
  in
  match conn_res with
  | Error _ -> fail_lease ~detector:"connect_failed" ~response:"reassign" ~strike:true st w l
  | Ok c -> (
      let sent =
        try
          Protocol.write_frame (Protocol.fd (Client.conn c)) (lease_request st l);
          true
        with _ -> false
      in
      if not sent then begin
        close_client st w client;
        fail_lease ~detector:"connect_failed" ~response:"reassign" ~strike:true st w l
      end
      else
        (* The server cancels the lease at [lease_deadline] and answers
           [timed_out] with its partial records; we wait a little past
           that so a live worker's deadline reply can arrive. *)
        let deadline = now () +. st.cfg.lease_deadline +. 1.0 in
        let should_stop () = st.stop || (not w.w_alive) || now () > deadline in
        let rec read_reply () =
          match Protocol.read_frame ~stall:5.0 ~should_stop (Client.conn c) with
          | Protocol.Stopped ->
              close_client st w client;
              if st.stop then fail_lease ~log:false ~detector:"stop" ~response:"stop" ~strike:false st w l
              else if w.w_hb_killed then
                (* the heartbeat thread already logged and killed *)
                fail_lease ~log:false ~detector:"missed_heartbeats" ~response:"salvage_reassign"
                  ~strike:false st w l
              else
                fail_lease ~detector:"lease_expired" ~response:"salvage_reassign" ~strike:true st
                  w l
          | Protocol.Eof | Protocol.Stalled ->
              close_client st w client;
              fail_lease
                ~log:((not w.w_hb_killed) && not st.stop)
                ~detector:"torn_response" ~response:"salvage_reassign" ~strike:true st w l
          | Protocol.Too_big _ ->
              close_client st w client;
              fail_lease ~detector:"oversized_response" ~response:"salvage_reassign" ~strike:true
                st w l
          | Protocol.Frame body -> handle_reply body
        and handle_reply body =
          match Protocol.response_status body with
          | Error _ ->
              close_client st w client;
              fail_lease ~detector:"torn_response" ~response:"salvage_reassign" ~strike:true st w
                l
          | Ok (status, json) -> (
              let fields = match json with J.Obj f -> f | _ -> [] in
              let reply_lease =
                match List.assoc_opt "lease" fields with Some (J.String s) -> s | _ -> ""
              in
              if reply_lease <> l.l_id then begin
                (* a completion for a lease we are not waiting on — a
                   replay or a stale worker; progress is keyed, so
                   dropping it is always safe *)
                with_mu st (fun () ->
                    st.n_duplicates <- st.n_duplicates + 1;
                    Obs.incr c_duplicates;
                    contain st "duplicate_reply" "drop");
                read_reply ()
              end
              else
                let lines =
                  match Protocol.str_list_field fields "records" with
                  | Ok ls -> ls
                  | Error _ -> []
                in
                let events =
                  match Protocol.str_list_field fields "events" with
                  | Ok es -> es
                  | Error _ -> []
                in
                match status with
                | "ok" ->
                  (* Only a completed lease ships its events: a partial
                     window depends on where the cancel landed and would
                     break the merged file's byte-identity. *)
                  finish_lease st w l ~events lines
                | "partial" ->
                    (* graceful drain mid-lease: the reply is the durable
                       journal payload — salvage it, requeue the rest *)
                    with_mu st (fun () -> Hashtbl.replace st.salvage l.l_id lines);
                    close_client st w client;
                    fail_lease ~detector:"worker_drained" ~response:"salvage_reassign"
                      ~strike:false st w l
                | "timed_out" ->
                    with_mu st (fun () -> Hashtbl.replace st.salvage l.l_id lines);
                    fail_lease ~detector:"lease_expired" ~response:"salvage_reassign"
                      ~strike:false st w l
                | "overloaded" | "draining" ->
                    if status = "draining" then close_client st w client;
                    requeue_busy st w l ~eligible_in:(st.cfg.backoff *. 2.0)
                | "error" ->
                    let msg =
                      match List.assoc_opt "error" fields with
                      | Some (J.String e) -> e
                      | _ -> "worker rejected the lease"
                    in
                    with_mu st (fun () ->
                        st.active <- List.filter (fun (al, _) -> al != l) st.active;
                        contain st "worker_error" "abort");
                    set_abort st (Printf.sprintf "%s: %s" w.w_name msg)
                | other ->
                    with_mu st (fun () ->
                        st.active <- List.filter (fun (al, _) -> al != l) st.active);
                    set_abort st (Printf.sprintf "%s: unexpected lease status %S" w.w_name other))
        in
        read_reply ())

let sender st w =
  let client = ref None in
  let rec loop () =
    if st.stop || not w.w_alive then ()
    else begin
      let next =
        match with_mu st (fun () -> take_lease st w) with
        | Some _ as l -> l
        | None -> try_steal st w
      in
      match next with
      | None ->
          Thread.delay 0.03;
          loop ()
      | Some l ->
          run_lease st w client l;
          loop ()
    end
  in
  loop ();
  close_client st w client

(* -- the per-worker heartbeat --------------------------------------- *)

let record_salvage st fields =
  match List.assoc_opt "leases" fields with
  | Some (J.List ls) ->
      List.iter
        (fun entry ->
          match entry with
          | J.Obj lf ->
              let id =
                match List.assoc_opt "lease" lf with Some (J.String s) -> s | _ -> ""
              in
              let lines =
                match Protocol.str_list_field lf "records" with Ok x -> x | Error _ -> []
              in
              if id <> "" then Hashtbl.replace st.salvage id lines
          | _ -> ())
        ls
  | _ -> ()

let heartbeater st w =
  if st.cfg.heartbeat > 0.0 then begin
    let payload =
      J.to_string
        (Protocol.request_to_json
           {
             Protocol.id = "hb";
             deadline_s = None;
             trace = trace_ctx st ~lease:None;
             req = Protocol.Health;
           })
    in
    let rec loop () =
      if st.stop || not w.w_alive then ()
      else begin
        Thread.delay st.cfg.heartbeat;
        if st.stop || not w.w_alive then ()
        else begin
          (match Client.one_shot ~deadline_s:(st.cfg.heartbeat +. 0.5) w.w_addr payload with
          | Ok body -> (
              w.w_misses <- 0;
              match Protocol.response_status body with
              | Ok (_, J.Obj fields) ->
                  with_mu st (fun () ->
                      record_salvage st fields;
                      (* keep the newest heartbeat-sized snapshot — the
                         postmortem artifact if this worker dies *)
                      match List.assoc_opt "telemetry" fields with
                      | Some tj -> w.w_telemetry <- Some (J.to_string tj)
                      | None -> ())
              | _ -> ())
          | Error _ ->
              w.w_misses <- w.w_misses + 1;
              if w.w_misses >= st.cfg.heartbeat_misses then
                with_mu st (fun () ->
                    if w.w_alive then begin
                      (* alive on the wire, or not even that — either way
                         unresponsive: log once, declare the worker lost,
                         and shut its data connection down so the sender
                         blocked on a reply wakes and salvages *)
                      w.w_hb_killed <- true;
                      w.w_alive <- false;
                      st.n_lost <- st.n_lost + 1;
                      Obs.incr c_workers_lost;
                      contain st "missed_heartbeats" "salvage_reassign";
                      match w.w_fd with
                      | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
                      | None -> ()
                    end));
          loop ()
        end
      end
    in
    loop ()
  end

(* -- the supervisor ------------------------------------------------- *)

let run (cfg : config) jobs =
  if cfg.workers = [] then Error "no workers configured"
  else if cfg.lease_points < 1 then invalid_arg "Dispatch.run: lease_points < 1"
  else if
    not
      (List.exists
         (fun (_, addr) ->
           match Client.connect addr with
           | Ok c ->
               Client.close c;
               true
           | Error _ -> false)
         cfg.workers)
  then
    Error
      (Printf.sprintf "no worker reachable (%d configured)" (List.length cfg.workers))
  else begin
    (* A worker dying mid-write must surface as EPIPE on that send, not
       kill the supervisor. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let workers =
      List.map
        (fun (name, addr) ->
          {
            w_name = name;
            w_addr = addr;
            w_alive = true;
            w_strikes = 0;
            w_misses = 0;
            w_hb_killed = false;
            w_fd = None;
            w_telemetry = None;
          })
        cfg.workers
    in
    let st =
      {
        cfg;
        mu = Mutex.create ();
        workers;
        expected = Hashtbl.create 256;
        table = Hashtbl.create 256;
        queue = [];
        active = [];
        salvage = Hashtbl.create 16;
        lease_events = Hashtbl.create 16;
        responses = [];
        next_id = 0;
        n_leases = 0;
        n_reassigned = 0;
        n_stolen = 0;
        n_salvaged = 0;
        n_duplicates = 0;
        n_lost = 0;
        abort = None;
        stop = false;
      }
    in
    List.iter
      (fun j ->
        let keys = List.sort_uniq String.compare j.keys in
        List.iter (fun pk -> Hashtbl.replace st.expected (j.key_of pk) ()) keys;
        let total = List.length keys in
        if total > 0 then begin
          let shards = (total + cfg.lease_points - 1) / cfg.lease_points in
          Array.iter
            (fun range ->
              if range <> [] then
                st.queue <-
                  st.queue
                  @ [
                      {
                        l_id = fresh_id st;
                        l_job = j;
                        l_keys = range;
                        l_attempt = 0;
                        l_eligible = 0.0;
                        l_last_worker = None;
                        l_stolen = false;
                      };
                    ])
            (Shard.plan ~shards keys)
        end)
      jobs;
    let total = Hashtbl.length st.expected in
    let emit () =
      if Obs.Events.enabled () then
        with_mu st (fun () ->
            Obs.Events.emit
              (Obs.Events.Dispatch_sample
                 {
                   workers = List.length (List.filter (fun w -> w.w_alive) st.workers);
                   leases = List.length st.active;
                   done_points = Hashtbl.length st.table;
                   total_points = total;
                   reassigned = st.n_reassigned;
                   stolen = st.n_stolen;
                   salvaged = st.n_salvaged;
                 }))
    in
    let threads =
      List.concat_map
        (fun w -> [ Thread.create (sender st) w; Thread.create (heartbeater st) w ])
        workers
    in
    let last_emit = ref 0.0 in
    let finished () =
      with_mu st (fun () ->
          Hashtbl.length st.table >= total
          || st.abort <> None
          || not (List.exists (fun w -> w.w_alive) st.workers))
    in
    while not (finished ()) do
      Thread.delay 0.05;
      let t = now () in
      if t -. !last_emit >= 0.2 then begin
        last_emit := t;
        emit ()
      end
    done;
    st.stop <- true;
    List.iter Thread.join threads;
    emit ();
    let done_n = Hashtbl.length st.table in
    let abort =
      match st.abort with
      | Some _ as a -> a
      | None when done_n < total -> Some "all workers lost"
      | None -> None
    in
    let records =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    (* Lease ids are L0, L1, … minted in plan order — sorting the event
       streams by that deterministic id (numerically, so L10 follows L9)
       is what makes the merged provenance file independent of which
       worker happened to run which lease. *)
    let lease_order a b =
      let num s =
        if String.length s > 1 && s.[0] = 'L' then
          int_of_string_opt (String.sub s 1 (String.length s - 1))
        else None
      in
      match (num a, num b) with
      | Some x, Some y -> compare x y
      | _ -> String.compare a b
    in
    let lease_events =
      Hashtbl.fold (fun id evs acc -> (id, evs) :: acc) st.lease_events []
      |> List.sort (fun (a, _) (b, _) -> lease_order a b)
    in
    let lost_telemetry =
      List.filter_map
        (fun w ->
          if w.w_alive then None
          else Option.map (fun tj -> (w.w_name, tj)) w.w_telemetry)
        st.workers
    in
    Ok
      {
        records;
        complete = done_n >= total && st.abort = None;
        abort;
        leases = st.n_leases;
        reassigned = st.n_reassigned;
        stolen = st.n_stolen;
        salvaged_points = st.n_salvaged;
        duplicate_replies = st.n_duplicates;
        workers_lost = st.n_lost;
        responses = List.rev st.responses;
        lease_events;
        lost_telemetry;
      }
  end
