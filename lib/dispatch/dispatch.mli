(** Fault-tolerant shard dispatch: drive a sweep by leasing key-ranges to
    a pool of remote [hlsc serve] workers.

    The determinism contract does the heavy lifting: every grid point has
    a canonical cache key, evaluations are pure, and journal/cache lines
    are byte-exact — so the supervisor may freely re-run, duplicate or
    salvage work and still assemble the exact record set a single-process
    sweep would have produced.  Distribution then reduces to bookkeeping:

    - {b leases}: the sorted key list of each job is split (via
      {!Shard.plan}) into contiguous ranges of at most [lease_points]
      keys; each lease is granted to one worker as a [shard_explore]
      request with a server-side deadline.
    - {b detection}: a worker is failed by the first detector that fires —
      a refused/reset connect ([connect_failed]), a response frame torn or
      cut mid-read ([torn_response]), the lease deadline expiring with no
      reply ([lease_expired]), or [heartbeat_misses] consecutive
      unanswered health probes ([missed_heartbeats], which also shuts the
      data connection down to unblock the waiting sender).
    - {b salvage}: health probes carry each lease's durably recorded
      lines; when a lease's worker fails, those records are folded into
      the result table first, and only the genuinely lost tail is
      requeued — completed points are never re-evaluated.
    - {b reassignment}: a failed lease re-enters the queue with
      exponential backoff and a bounded [retry_budget]; a worker that
      fails [worker_strikes] leases in a row is declared lost.  A lease
      completion for an id the supervisor is not waiting on is dropped
      ([duplicate_reply]) — replays are harmless by construction.
    - {b stealing}: an idle worker with an empty queue may split the
      unfinished tail off the largest straggler lease ([steal_tail]);
      the straggler is not revoked, and whichever copy reports first wins
      byte-identically.

    Every containment action is logged as a [(detector, response)] pair in
    {!outcome}[.responses]; [test/test_dispatch.ml] binds each
    {!Inject.fake_worker} fault class to exactly the pair
    {!Inject.intended_dispatch_response} promises.

    Counters: [dispatch.leases] (grants), [dispatch.reassigned],
    [dispatch.stolen], [dispatch.salvaged_points],
    [dispatch.duplicate_replies], [dispatch.workers_lost],
    [dispatch.fallback_local] (bumped by {!note_fallback_local} when the
    CLI falls back to local child processes).  Progress is sampled as
    [Obs.Events.Dispatch_sample] roughly every 200ms while running. *)

type job = {
  design : string;  (** name the workers can resolve *)
  clocks : string;  (** full grid axes, {!Explore_grid} syntax *)
  flows : string;
  iis : string;
  recover : string;
  point_deadline : float option;
  keys : string list;  (** every point key of this job's grid *)
  key_of : string -> string;
      (** point key -> full cache key (the supervisor tracks completion
          and validates worker records by full key) *)
}

type config = {
  workers : (string * Client.addr) list;  (** display name, address *)
  lease_points : int;  (** max keys per lease (>= 1) *)
  lease_deadline : float;  (** seconds per lease, server- and client-side *)
  heartbeat : float;  (** health-probe period; [<= 0.] disables probing *)
  heartbeat_misses : int;  (** consecutive misses before declaring a stall *)
  retry_budget : int;  (** reassignments per lease before aborting *)
  worker_strikes : int;  (** consecutive lease failures before a worker is lost *)
  backoff : float;  (** base of the exponential reassignment backoff *)
  steal : bool;  (** split straggler tails to idle workers *)
  trace_id : string option;
      (** when set, every lease and health probe is stamped with this
          {!Protocol.trace_ctx} id (parent ["dispatch"], lease id on
          leases) so worker request spans link under the supervisor's
          trace in the merged fleet view *)
}

val default_config : config
(** No workers, 8 points per lease, 60s lease deadline, 1s heartbeat with
    3 misses, retry budget 5, 3 strikes, 50ms backoff, stealing off. *)

type outcome = {
  records : (string * Eval_cache.summary) list;
      (** every completed point, sorted by full cache key — byte-wise the
          same set a single-process sweep produces *)
  complete : bool;
      (** whether every expected key is present; [false] means resume *)
  abort : string option;  (** why the sweep stopped early, if it did *)
  leases : int;
  reassigned : int;
  stolen : int;
  salvaged_points : int;
  duplicate_replies : int;
  workers_lost : int;
  responses : (string * string) list;
      (** containment log, oldest first: [(detector, response)] pairs *)
  lease_events : (string * string list) list;
      (** per-lease decision-event JSONL lines shipped by completing [ok]
          replies, sorted by lease id (numerically: L0, L1, …, L10).  At
          worker [--jobs 1] each stream is a pure function of the leased
          keys, so the supervisor's merged provenance file is
          byte-identical across re-runs regardless of lease placement. *)
  lost_telemetry : (string * string) list;
      (** [(worker name, telemetry JSON)] — the last heartbeat-carried
          {!Obs.Telemetry} snapshot of each worker declared lost; the
          supervisor archives these as postmortem artifacts *)
}

val run : config -> job list -> (outcome, string) result
(** Drive the jobs to completion across the configured workers.  [Error]
    only when no worker is reachable at startup — the caller falls back
    to a local sweep ({!note_fallback_local}).  Otherwise always [Ok]:
    worker deaths mid-sweep are contained, and total loss surfaces as
    [complete = false] with the salvageable records present. *)

val note_fallback_local : unit -> unit
(** Count a degraded local-children fallback on [dispatch.fallback_local]. *)
