
module Op_id = Id.Make ()

type cmp = Lt | Le | Eq | Ne | Ge | Gt

type op_kind =
  | Add
  | Sub
  | Mul
  | Div
  | Modulo
  | Shl
  | Shr
  | Land
  | Lor
  | Lxor
  | Lnot
  | Cmp of cmp
  | Mux
  | Read of string
  | Write of string
  | Const of int

let op_kind_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Modulo -> "mod"
  | Shl -> "shl"
  | Shr -> "shr"
  | Land -> "and"
  | Lor -> "or"
  | Lxor -> "xor"
  | Lnot -> "not"
  | Cmp Lt -> "lt"
  | Cmp Le -> "le"
  | Cmp Eq -> "eq"
  | Cmp Ne -> "ne"
  | Cmp Ge -> "ge"
  | Cmp Gt -> "gt"
  | Mux -> "mux"
  | Read p -> "read:" ^ p
  | Write p -> "write:" ^ p
  | Const v -> "const:" ^ string_of_int v

let pp_op_kind ppf k = Format.pp_print_string ppf (op_kind_name k)

let default_fixed = function
  | Read _ | Write _ | Mux -> true
  | Add | Sub | Mul | Div | Modulo | Shl | Shr | Land | Lor | Lxor | Lnot | Cmp _ | Const _
    -> false

type op = {
  id : Op_id.t;
  kind : op_kind;
  width : int;
  birth : Cfg.Edge_id.t;
  fixed : bool;
  name : string;
}

type dep = { src : int; dst : int; loop_carried : bool }

type t = {
  cfg : Cfg.t;
  ops_v : op Vec.t;
  deps : dep Vec.t;
  mutable adj : adj option; (* invalidated on mutation *)
}

and adj = {
  fwd_succ : int list array;
  fwd_pred : int list array;
  all_succ : (int * bool) list array;
  all_pred : (int * bool) list array;
}

exception Malformed of string

let create cfg = { cfg; ops_v = Vec.create (); deps = Vec.create (); adj = None }
let cfg t = t.cfg

let add_op t ~kind ~width ~birth ?fixed ?name () =
  if width <= 0 then invalid_arg "Dfg.add_op: width must be positive";
  let fixed = match fixed with Some f -> f | None -> default_fixed kind in
  let idx = Vec.length t.ops_v in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "%s_%d" (op_kind_name kind) idx
  in
  let id = Op_id.of_int idx in
  ignore (Vec.push t.ops_v { id; kind; width; birth; fixed; name });
  t.adj <- None;
  id

let op t id = Vec.get t.ops_v (Op_id.to_int id)

let fix_op t id =
  let i = Op_id.to_int id in
  let o = Vec.get t.ops_v i in
  Vec.set t.ops_v i { o with fixed = true }
let op_count t = Vec.length t.ops_v
let dep_count t = Vec.length t.deps

let add_dep t ~src ~dst ?(loop_carried = false) () =
  let s = Op_id.to_int src and d = Op_id.to_int dst in
  let n = op_count t in
  if s < 0 || s >= n || d < 0 || d >= n then invalid_arg "Dfg.add_dep: op out of range";
  if s = d && not loop_carried then
    invalid_arg "Dfg.add_dep: self dependency must be loop-carried";
  ignore (Vec.push t.deps { src = s; dst = d; loop_carried });
  t.adj <- None

let ops t = List.init (op_count t) Op_id.of_int
let iter_ops t f = Vec.iter f t.ops_v

let adjacency t =
  match t.adj with
  | Some a -> a
  | None ->
    let n = op_count t in
    let fwd_succ = Array.make n [] and fwd_pred = Array.make n [] in
    let all_succ = Array.make n [] and all_pred = Array.make n [] in
    (* Iterate in reverse so the resulting lists are in insertion order. *)
    let ds = Vec.to_array t.deps in
    for i = Array.length ds - 1 downto 0 do
      let { src; dst; loop_carried } = ds.(i) in
      all_succ.(src) <- (dst, loop_carried) :: all_succ.(src);
      all_pred.(dst) <- (src, loop_carried) :: all_pred.(dst);
      if not loop_carried then begin
        fwd_succ.(src) <- dst :: fwd_succ.(src);
        fwd_pred.(dst) <- src :: fwd_pred.(dst)
      end
    done;
    let a = { fwd_succ; fwd_pred; all_succ; all_pred } in
    t.adj <- Some a;
    a

let preds t id = List.map Op_id.of_int (adjacency t).fwd_pred.(Op_id.to_int id)
let succs t id = List.map Op_id.of_int (adjacency t).fwd_succ.(Op_id.to_int id)

let all_preds t id =
  List.map (fun (i, lc) -> (Op_id.of_int i, lc)) (adjacency t).all_pred.(Op_id.to_int id)

let all_succs t id =
  List.map (fun (i, lc) -> (Op_id.of_int i, lc)) (adjacency t).all_succ.(Op_id.to_int id)

exception Cyclic of Op_id.t list

(* Mirror of the forward-dependency relation as a Digraph, for the
   structural queries in Traverse. *)
let fwd_digraph t =
  let a = adjacency t in
  let g = Digraph.create ~initial_capacity:(op_count t) () in
  for _ = 1 to op_count t do
    ignore (Digraph.add_node g)
  done;
  Array.iteri (fun u succs -> List.iter (fun v -> Digraph.add_edge g u v) succs) a.fwd_succ;
  g

let forward_cycle t =
  Option.map (List.map Op_id.of_int) (Traverse.find_cycle (fwd_digraph t))

let topo_order t =
  let a = adjacency t in
  let n = op_count t in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- List.length a.fwd_pred.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] and count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr count;
    order := u :: !order;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      a.fwd_succ.(u)
  done;
  if !count <> n then
    raise (Cyclic (match forward_cycle t with Some path -> path | None -> []));
  List.rev_map Op_id.of_int !order

let cycle_message t path =
  Printf.sprintf "forward dependencies are cyclic: %s"
    (String.concat " -> " (List.map (fun o -> (op t o).name) path))

let validate t =
  if not (Cfg.is_sealed t.cfg) then invalid_arg "Dfg.validate: CFG not sealed";
  (match topo_order t with
  | _ -> ()
  | exception Cyclic path -> raise (Malformed (cycle_message t path)));
  iter_ops t (fun o ->
      if Cfg.is_backward t.cfg o.birth then
        raise (Malformed (Printf.sprintf "op %s born on a backward CFG edge" o.name)));
  Vec.iter
    (fun { src; dst; loop_carried } ->
      if not loop_carried then begin
        let po = Vec.get t.ops_v src and so = Vec.get t.ops_v dst in
        if not (Cfg.reaches t.cfg po.birth so.birth) then
          raise
            (Malformed
               (Printf.sprintf "dependency %s -> %s crosses no forward CFG path" po.name
                  so.name))
      end)
    t.deps

type span = { early : Cfg.Edge_id.t; late : Cfg.Edge_id.t }

let span_edges t { early; late } =
  List.filter
    (fun e -> Cfg.reaches t.cfg early e && Cfg.reaches t.cfg e late)
    (Cfg.forward_edges_topo t.cfg)

let is_const o = match o.kind with Const _ -> true | _ -> false

(* Spans are computed in two sweeps over the forward-topological order of
   operations: earlies forward, lates backward.  Candidate edges are scanned
   in CFG edge-topological order; graphs are small enough that the O(ops *
   edges) scan with O(1) reachability queries is cheap. *)
let compute_spans ?(pin = fun _ -> None) t =
  let cfg = t.cfg in
  if not (Cfg.is_sealed cfg) then invalid_arg "Dfg.compute_spans: CFG not sealed";
  let n = op_count t in
  let order = topo_order t in
  let edges_topo = Cfg.forward_edges_topo cfg in
  let early = Array.make n None and late = Array.make n None in
  let get_early i = match early.(i) with Some e -> e | None -> assert false in
  let get_late i = match late.(i) with Some e -> e | None -> assert false in
  let a = adjacency t in
  (* Earlies, forward. *)
  List.iter
    (fun id ->
      let i = Op_id.to_int id in
      let o = Vec.get t.ops_v i in
      let e =
        match pin id with
        | Some pinned -> pinned
        | None ->
          if o.fixed || is_const o then o.birth
          else begin
            let ps =
              List.filter (fun p -> not (is_const (Vec.get t.ops_v p))) a.fwd_pred.(i)
            in
            if ps = [] then o.birth
            else begin
              let ok e =
                Cfg.edge_dominates cfg e o.birth
                && List.for_all (fun p -> Cfg.reaches cfg (get_early p) e) ps
              in
              match List.find_opt ok edges_topo with
              | Some e -> e
              | None -> o.birth
            end
          end
      in
      early.(i) <- Some e)
    order;
  (* Lates, backward. *)
  List.iter
    (fun id ->
      let i = Op_id.to_int id in
      let o = Vec.get t.ops_v i in
      let e =
        match pin id with
        | Some pinned -> pinned
        | None ->
          if o.fixed || is_const o then o.birth
          else if List.exists (fun (_, lc) -> lc) a.all_succ.(i) then
            (* Loop-carried producers must execute on every iteration path:
               sinking them into a conditional branch would skip the update
               on the other branch.  Keep them on their birth edge. *)
            o.birth
          else begin
            let ss = a.fwd_succ.(i) in
            let ok e =
              Cfg.sink_reaches cfg o.birth e
              && List.for_all (fun s -> Cfg.reaches cfg e (get_late s)) ss
            in
            match List.find_opt ok (List.rev edges_topo) with
            | Some e -> e
            | None -> o.birth
          end
      in
      late.(i) <- Some e)
    (List.rev order);
  Array.init n (fun i ->
      let e = get_early i and l = get_late i in
      (* A span must be internally consistent; fall back to the birth edge
         if pinning produced an inverted window. *)
      if Cfg.reaches cfg e l then { early = e; late = l }
      else begin
        let b = (Vec.get t.ops_v i).birth in
        { early = b; late = b }
      end)

let pp_op ppf o =
  Format.fprintf ppf "%s(%a, w%d, e%d%s)" o.name pp_op_kind o.kind o.width
    (Cfg.Edge_id.to_int o.birth)
    (if o.fixed then ", fixed" else "")

let pp ppf t =
  Format.fprintf ppf "@[<v>DFG: %d ops, %d deps@," (op_count t) (dep_count t);
  iter_ops t (fun o ->
      let ss = succs t o.id in
      Format.fprintf ppf "  %a ->%a@," pp_op o
        (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf s ->
             Format.fprintf ppf " %s" (op t s).name))
        ss);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Content digest *)

let digest t =
  let buf = Buffer.create 4096 in
  let c = t.cfg in
  Buffer.add_string buf
    (Printf.sprintf "cfg %d %d\n" (Cfg.node_count c) (Cfg.edge_count c));
  for n = 0 to Cfg.node_count c - 1 do
    Buffer.add_string buf
      (Format.asprintf "n%d %a\n" n Cfg.pp_node_kind
         (Cfg.node_kind c (Cfg.Node_id.of_int n)))
  done;
  Cfg.iter_edges c (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "e%d %d %d\n" (Cfg.Edge_id.to_int e)
           (Cfg.Node_id.to_int (Cfg.edge_src c e))
           (Cfg.Node_id.to_int (Cfg.edge_dst c e))));
  Vec.iteri
    (fun i o ->
      Buffer.add_string buf
        (Printf.sprintf "o%d %s w%d b%d f%b %s\n" i (op_kind_name o.kind) o.width
           (Cfg.Edge_id.to_int o.birth) o.fixed o.name))
    t.ops_v;
  (* Dependency insertion order is a construction detail, not content:
     sort so equal graphs built in different orders digest equally. *)
  let deps = Vec.to_array t.deps in
  Array.sort
    (fun a b -> compare (a.src, a.dst, a.loop_carried) (b.src, b.dst, b.loop_carried))
    deps;
  Array.iter
    (fun d ->
      Buffer.add_string buf (Printf.sprintf "d %d %d %b\n" d.src d.dst d.loop_carried))
    deps;
  Digest.to_hex (Digest.string (Buffer.contents buf))
