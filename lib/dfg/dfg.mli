(** Data flow graph (paper Definition 2) and operation spans (Definition 4).

    DFG vertices are operations; edges are data dependencies.  Every
    operation is associated with a {e birth} CFG edge — the edge implied by
    its position in the source code.  Loop-carried dependencies (those whose
    value travels along a backward CFG edge) are kept but flagged: the timed
    DFG excludes them, as the paper's Definition 2 (§V) step 1 prescribes.

    The {e span} of an operation is the topologically ordered set of CFG
    edges on which it may legally be scheduled, delimited by its early and
    late edges:

    - [early o] is the first edge that (a) dominates the birth edge, so the
      operation still executes on every control path that needs it, and
      (b) is forward-reachable from the early edge of every DFG
      predecessor;
    - [late o] is the last edge that (a) is join-free-reachable from the
      birth edge (moving an operation down past a join would speculate it
      on merged control flow) and (b) reaches the late edge of every DFG
      successor.

    Fixed operations (I/O, control-merge muxes, branch conditions) span
    exactly their birth edge. *)

module Op_id : Id.S

type cmp = Lt | Le | Eq | Ne | Ge | Gt

type op_kind =
  | Add
  | Sub
  | Mul
  | Div
  | Modulo
  | Shl
  | Shr
  | Land
  | Lor
  | Lxor
  | Lnot
  | Cmp of cmp
  | Mux       (** control-flow merge (phi); fixed at its join edge *)
  | Read of string   (** blocking channel/port read; fixed *)
  | Write of string  (** blocking channel/port write; fixed *)
  | Const of int     (** constant; excluded from timing analysis *)

val pp_op_kind : Format.formatter -> op_kind -> unit
val op_kind_name : op_kind -> string

val default_fixed : op_kind -> bool
(** [Read], [Write] and [Mux] default to fixed. *)

type op = {
  id : Op_id.t;
  kind : op_kind;
  width : int;  (** datapath width in bits *)
  birth : Cfg.Edge_id.t;
  fixed : bool;
  name : string;
}

type t

val create : Cfg.t -> t
(** The CFG may be sealed later, but must be sealed before {!compute_spans}
    or {!validate}. *)

val cfg : t -> Cfg.t

val add_op :
  t ->
  kind:op_kind ->
  width:int ->
  birth:Cfg.Edge_id.t ->
  ?fixed:bool ->
  ?name:string ->
  unit ->
  Op_id.t

val add_dep : t -> src:Op_id.t -> dst:Op_id.t -> ?loop_carried:bool -> unit -> unit
(** Adds the data dependency [src -> dst].  Self-dependencies must be
    loop-carried. *)

val op : t -> Op_id.t -> op

val fix_op : t -> Op_id.t -> unit
(** Mark an operation fixed after creation; used by the front end to pin
    freshly created branch conditions to their fork edge. *)

val op_count : t -> int
val dep_count : t -> int
val ops : t -> Op_id.t list
val iter_ops : t -> (op -> unit) -> unit

val preds : t -> Op_id.t -> Op_id.t list
(** Forward (non-loop-carried) predecessors. *)

val succs : t -> Op_id.t -> Op_id.t list

val all_preds : t -> Op_id.t -> (Op_id.t * bool) list
(** Predecessors with their [loop_carried] flag. *)

val all_succs : t -> Op_id.t -> (Op_id.t * bool) list

exception Cyclic of Op_id.t list
(** A concrete forward-dependency cycle [o1; ...; ok] (each op depends on
    the previous one, [o1] on [ok]) — the acyclicity witness validators
    report. *)

val topo_order : t -> Op_id.t list
(** Topological order over forward dependencies.  Raises {!Cyclic} (with
    the offending op path) when the forward DFG is cyclic. *)

val forward_cycle : t -> Op_id.t list option
(** [None] iff the forward dependencies are acyclic; otherwise one concrete
    cycle in the {!Cyclic} path convention.  Never raises. *)

val cycle_message : t -> Op_id.t list -> string
(** Renders a cycle witness with op names. *)

exception Malformed of string

val validate : t -> unit
(** Checks: forward dependencies acyclic; every birth edge is a forward CFG
    edge; every forward dependency is realisable (the producer's birth can
    reach the consumer's birth).  Raises {!Malformed} otherwise. *)

(** {1 Spans} *)

type span = { early : Cfg.Edge_id.t; late : Cfg.Edge_id.t }

val span_edges : t -> span -> Cfg.Edge_id.t list
(** All forward edges [e] with [early ->* e ->(join-free)* late]
    membership, in topological order. *)

val compute_spans : ?pin:(Op_id.t -> Cfg.Edge_id.t option) -> t -> span array
(** Indexed by [Op_id.to_int].  [pin] fixes already-scheduled operations on
    their scheduled edge, shrinking the spans of the remaining ones (used
    when budgeting is re-run during scheduling).  Requires a sealed CFG and
    a validated DFG. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

(** {1 Content digest} *)

val digest : t -> string
(** Hex MD5 of a canonical dump of the graph: CFG nodes and edges, every
    operation (kind, width, birth edge, fixedness, name) in id order, and
    the dependency set sorted by endpoints.  Two structurally identical
    designs digest equally regardless of dependency insertion order; the
    explore subsystem uses this as the content address of its evaluation
    cache. *)
