type breakdown = {
  fu : float;
  mux : float;
  registers : float;
  fsm : float;
  total : float;
}

let used_instances sched =
  List.filter
    (fun i -> Schedule.ops_of_inst sched i.Alloc.id <> [])
    (Alloc.instances sched.Schedule.alloc)

let fu_only sched =
  List.fold_left (fun acc i -> acc +. i.Alloc.point.Curve.area) 0.0 (used_instances sched)

let fu_of_kind sched rk =
  List.fold_left
    (fun acc i ->
      if Resource_kind.equal i.Alloc.rk rk then acc +. i.Alloc.point.Curve.area else acc)
    0.0 (used_instances sched)

(* A value needs a register when it outlives its control step: some
   consumer executes in a later step, the value feeds a loop-carried
   dependency, or it is an I/O-visible result held at a boundary. *)
let needs_register sched op =
  let dfg = sched.Schedule.dfg in
  match Schedule.placement sched op.Dfg.id with
  | None -> false
  | Some p ->
    (match op.Dfg.kind with
    | Dfg.Const _ -> false
    | _ ->
      List.exists
        (fun (c, loop_carried) ->
          loop_carried
          ||
          match Schedule.placement sched c with
          | Some pc -> pc.Schedule.step > p.Schedule.step
          | None -> false)
        (Dfg.all_succs dfg op.Dfg.id))

let c_evals = Obs.counter "area.evaluations"
let d_total = Obs.dist "area.total"
let d_fu = Obs.dist "area.fu"
let d_mux = Obs.dist "area.mux"

let of_schedule sched =
  Obs.incr c_evals;
  let lib = Alloc.library sched.Schedule.alloc in
  let dfg = sched.Schedule.dfg in
  let fu = fu_only sched in
  let mux =
    List.fold_left
      (fun acc i ->
        let fanin = List.length (Schedule.ops_of_inst sched i.Alloc.id) in
        if fanin >= 2 then
          acc +. (2.0 *. Library.mux_area lib ~inputs:fanin ~width:i.Alloc.width)
        else acc)
      0.0 (used_instances sched)
  in
  let registers = ref 0.0 in
  Dfg.iter_ops dfg (fun op ->
      if needs_register sched op then
        registers := !registers +. Library.register_area lib ~width:op.Dfg.width);
  let fsm =
    float_of_int (Schedule.steps_used sched) *. Library.fsm_area_per_state lib
  in
  let registers = !registers in
  let total = fu +. mux +. registers +. fsm in
  Obs.observe d_total total;
  Obs.observe d_fu fu;
  Obs.observe d_mux mux;
  { fu; mux; registers; fsm; total }

let power sched ~cycles_per_sample =
  if cycles_per_sample <= 0 then invalid_arg "Area_model.power: cycles must be positive";
  let dfg = sched.Schedule.dfg in
  let energy = ref 0.0 in
  Dfg.iter_ops dfg (fun op ->
      match Schedule.placement sched op.Dfg.id with
      | Some { Schedule.inst = Some id; _ } ->
        energy := !energy +. (Alloc.instance sched.Schedule.alloc id).Alloc.point.Curve.area
      | Some _ | None -> ());
  let b = of_schedule sched in
  let sample_period = float_of_int cycles_per_sample *. sched.Schedule.clock in
  (* Dynamic: one toggle of each executing unit per sample; leakage: 2% of
     total area per unit time (arbitrary consistent constants). *)
  (1e3 *. !energy /. sample_period) +. (0.02 *. b.total)

let pp_breakdown ppf b =
  Format.fprintf ppf "fu %.0f + mux %.0f + reg %.0f + fsm %.0f = %.0f" b.fu b.mux
    b.registers b.fsm b.total
