type fu = { inst : Alloc.inst; ops : Dfg.Op_id.t list }

type register = {
  reg_name : string;
  reg_width : int;
  source : Dfg.Op_id.t;
  written_in_step : int;
}

type port = { port_name : string; port_width : int; input : bool }

type t = {
  schedule : Schedule.t;
  fus : fu list;
  registers : register list;
  ports : port list;
  n_states : int;
}

let c_builds = Obs.counter "rtl.netlists"
let c_fus = Obs.counter "rtl.fu_instances"
let c_regs = Obs.counter "rtl.registers"
let c_mux_inputs = Obs.counter "rtl.mux_inputs"
let d_fanin = Obs.dist "rtl.mux_fanin"

let build schedule =
  let dfg = schedule.Schedule.dfg in
  let fus =
    Alloc.instances schedule.Schedule.alloc
    |> List.filter_map (fun inst ->
           match Schedule.ops_of_inst schedule inst.Alloc.id with
           | [] -> None
           | ops -> Some { inst; ops })
  in
  let registers = ref [] in
  Dfg.iter_ops dfg (fun op ->
      match (op.Dfg.kind, Schedule.placement schedule op.Dfg.id) with
      | Dfg.Const _, _ | _, None -> ()
      | _, Some p ->
        let crosses =
          List.exists
            (fun (c, loop_carried) ->
              loop_carried
              ||
              match Schedule.placement schedule c with
              | Some pc -> pc.Schedule.step > p.Schedule.step
              | None -> false)
            (Dfg.all_succs dfg op.Dfg.id)
        in
        if crosses then
          registers :=
            {
              reg_name = "r_" ^ op.Dfg.name;
              reg_width = op.Dfg.width;
              source = op.Dfg.id;
              written_in_step = p.Schedule.step;
            }
            :: !registers);
  let ports = ref [] in
  let seen = Hashtbl.create 8 in
  Dfg.iter_ops dfg (fun op ->
      let add name input =
        if not (Hashtbl.mem seen (name, input)) then begin
          Hashtbl.replace seen (name, input) ();
          ports := { port_name = name; port_width = op.Dfg.width; input } :: !ports
        end
      in
      match op.Dfg.kind with
      | Dfg.Read p -> add p true
      | Dfg.Write p -> add p false
      | Dfg.Add | Dfg.Sub | Dfg.Mul | Dfg.Div | Dfg.Modulo | Dfg.Shl | Dfg.Shr
      | Dfg.Land | Dfg.Lor | Dfg.Lxor | Dfg.Lnot | Dfg.Cmp _ | Dfg.Mux | Dfg.Const _ ->
        ());
  Obs.incr c_builds;
  Obs.add c_fus (List.length fus);
  Obs.add c_regs (List.length !registers);
  List.iter
    (fun f ->
      let k = List.length f.ops in
      if k >= 2 then begin
        Obs.add c_mux_inputs k;
        Obs.observe d_fanin (float_of_int k)
      end)
    fus;
  {
    schedule;
    fus;
    registers = List.rev !registers;
    ports = List.rev !ports;
    n_states = Schedule.steps_used schedule;
  }

type stats = {
  n_fus : int;
  n_registers : int;
  n_ports : int;
  total_mux_inputs : int;
  states : int;
}

let stats t =
  {
    n_fus = List.length t.fus;
    n_registers = List.length t.registers;
    n_ports = List.length t.ports;
    total_mux_inputs =
      List.fold_left
        (fun acc f ->
          let k = List.length f.ops in
          if k >= 2 then acc + k else acc)
        0 t.fus;
    states = t.n_states;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d FU(s), %d register(s), %d port(s), %d shared mux input(s), %d state(s)"
    s.n_fus s.n_registers s.n_ports s.total_mux_inputs s.states
