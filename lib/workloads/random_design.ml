type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  name : string;
  latency : int;
  suggested_clock : float;
}

type profile = {
  min_ops : int;
  max_ops : int;
  min_states : int;
  max_states : int;
  mul_bias : float;
}

let default_profile =
  { min_ops = 24; max_ops = 80; min_states = 4; max_states = 12; mul_bias = 0.35 }

let pick_kind rng bias : Dfg.op_kind =
  let r = Splitmix.float rng 1.0 in
  if r < bias then Dfg.Mul
  else if r < bias +. 0.35 then Dfg.Add
  else if r < bias +. 0.5 then Dfg.Sub
  else if r < bias +. 0.6 then Dfg.Cmp Dfg.Lt
  else if r < bias +. 0.75 then Dfg.Shl
  else Dfg.Lxor

let generate ?(profile = default_profile) ~seed () =
  let rng = Splitmix.create seed in
  let n_ops = profile.min_ops + Splitmix.int rng (profile.max_ops - profile.min_ops + 1) in
  let n_states =
    profile.min_states + Splitmix.int rng (profile.max_states - profile.min_states + 1)
  in
  let width = [| 8; 12; 16; 24; 32 |].(Splitmix.int rng 5) in
  let cfg = Cfg.create () in
  let loop_top = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg (Cfg.start cfg) loop_top);
  let step_edges = Array.make n_states (Cfg.Edge_id.of_int 0) in
  let prev = ref loop_top in
  for s = 0 to n_states - 1 do
    let st = Cfg.add_node cfg Cfg.State in
    step_edges.(s) <- Cfg.add_edge cfg !prev st;
    prev := st
  done;
  let loop_bottom = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg !prev loop_bottom);
  ignore (Cfg.add_edge cfg loop_bottom loop_top);
  Cfg.seal cfg;
  let dfg = Dfg.create cfg in
  let first = step_edges.(0) and last = step_edges.(n_states - 1) in
  (* Sources: a handful of port reads. *)
  let n_reads = 2 + Splitmix.int rng 4 in
  let values = ref [] in
  for i = 0 to n_reads - 1 do
    let rd =
      Dfg.add_op dfg
        ~kind:(Dfg.Read (Printf.sprintf "p%d" i))
        ~width ~birth:first
        ~name:(Printf.sprintf "rd_%d" i)
        ()
    in
    values := rd :: !values
  done;
  (* Layered random ops: each draws 1-2 producers among earlier values
     (recent values preferred, giving chains a realistic depth). *)
  let value_arr () = Array.of_list !values in
  for i = 0 to n_ops - 1 do
    let kind = pick_kind rng profile.mul_bias in
    let w = if kind = Dfg.Cmp Dfg.Lt then 1 else width in
    let op =
      Dfg.add_op dfg ~kind ~width:w ~birth:first ~name:(Printf.sprintf "op_%d" i) ()
    in
    let vals = value_arr () in
    let n = Array.length vals in
    let pick_recent () =
      (* Triangular bias toward recent values. *)
      let a = Splitmix.int rng n and b = Splitmix.int rng n in
      vals.(min a b)
    in
    let p1 = pick_recent () in
    Dfg.add_dep dfg ~src:p1 ~dst:op ();
    if Splitmix.float rng 1.0 < 0.8 then begin
      let p2 = pick_recent () in
      if not (Dfg.Op_id.equal p2 p1) then Dfg.add_dep dfg ~src:p2 ~dst:op ()
    end;
    values := op :: !values
  done;
  (* Sinks: write a few of the most recent values. *)
  let n_writes = 1 + Splitmix.int rng 3 in
  let vals = value_arr () in
  for i = 0 to n_writes - 1 do
    let wr =
      Dfg.add_op dfg
        ~kind:(Dfg.Write (Printf.sprintf "q%d" i))
        ~width ~birth:last
        ~name:(Printf.sprintf "wr_%d" i)
        ()
    in
    Dfg.add_dep dfg ~src:vals.(min i (Array.length vals - 1)) ~dst:wr ()
  done;
  Dfg.validate dfg;
  (* Clock: a mid-grade multiplier plus margin, so designs have real
     tradeoff room without being trivially loose. *)
  let suggested_clock = 1500.0 +. (float_of_int width *. 40.0) in
  {
    cfg;
    dfg;
    name = Printf.sprintf "rand-%d" seed;
    latency = n_states;
    suggested_clock;
  }

(* Stable content digest: everything the HLS result can depend on.  The
   generator draws every structural choice from the seeded Splitmix stream
   and builds the graph through Vec-backed containers, so two [generate]
   calls with equal seeds produce byte-identical dumps — asserted in
   test/test_explore.ml.  Keep it that way: no Hashtbl iteration, no
   physical-equality ordering in the generator above. *)
let digest t =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            t.name;
            string_of_int t.latency;
            Printf.sprintf "%.3f" t.suggested_clock;
            Dfg.digest t.dfg;
          ]))

let suite ?profile ~count ~seed () =
  let master = Splitmix.create seed in
  List.init count (fun i ->
      ignore i;
      generate ?profile ~seed:(Int64.to_int (Splitmix.next_int64 master) land 0xFFFFFF) ())
