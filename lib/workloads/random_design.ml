type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  name : string;
  latency : int;
  suggested_clock : float;
}

type profile = {
  min_ops : int;
  max_ops : int;
  min_states : int;
  max_states : int;
  mul_bias : float;
}

let default_profile =
  { min_ops = 24; max_ops = 80; min_states = 4; max_states = 12; mul_bias = 0.35 }

type shape = Line | Diamond | Loop | Nest

let shape_name = function
  | Line -> "line"
  | Diamond -> "diamond"
  | Loop -> "loop"
  | Nest -> "nest"

let shape_of_name = function
  | "line" -> Some Line
  | "diamond" -> Some Diamond
  | "loop" -> Some Loop
  | "nest" -> Some Nest
  | _ -> None

let all_shapes = [ Line; Diamond; Loop; Nest ]

(* Append [k] state nodes after node [from]; returns the entry edge of each
   state (the edges operations are born on) and the last state node. *)
let state_chain cfg from k =
  let edges = Array.make k (Cfg.Edge_id.of_int 0) in
  let prev = ref from in
  for s = 0 to k - 1 do
    let st = Cfg.add_node cfg Cfg.State in
    edges.(s) <- Cfg.add_edge cfg !prev st;
    prev := st
  done;
  (edges, !prev)

(* Build the control skeleton for [shape] around [n] state nodes; returns
   the CFG, the edge sources and ops are born on (entering the first
   state), the edge sinks are born on (entering the final state — forward-
   reachable from the first on every shape), and the path latency in
   states.  Construction draws nothing from the RNG, so adding shapes
   cannot perturb the seeded op stream of any other shape. *)
let build_cfg shape n =
  let cfg = Cfg.create () in
  match shape with
  | Loop ->
    (* The original generator: a linear multi-state loop body. *)
    let top = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg (Cfg.start cfg) top);
    let edges, last_st = state_chain cfg top n in
    let bottom = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg last_st bottom);
    ignore (Cfg.add_edge cfg bottom top);
    Cfg.seal cfg;
    (cfg, edges.(0), edges.(n - 1), n)
  | Line ->
    (* Straight-line dataflow: the same chain, no loop back. *)
    let pre = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg (Cfg.start cfg) pre);
    let edges, last_st = state_chain cfg pre n in
    let post = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg last_st post);
    Cfg.seal cfg;
    (cfg, edges.(0), edges.(n - 1), n)
  | Diamond ->
    (* Fork/join: a state chain, a two-arm conditional (one state per
       arm), and a merged tail — ops can speculate into arms only as far
       as spans allow (never past the join). *)
    let a = max 1 ((n - 1) / 2) in
    let b = max 1 (n - 1 - a) in
    let pre = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg (Cfg.start cfg) pre);
    let pre_edges, last_pre = state_chain cfg pre a in
    let fork = Cfg.add_node cfg Cfg.Fork in
    ignore (Cfg.add_edge cfg last_pre fork);
    let join = Cfg.add_node cfg Cfg.Join in
    List.iter
      (fun () ->
        let arm = Cfg.add_node cfg Cfg.State in
        ignore (Cfg.add_edge cfg fork arm);
        ignore (Cfg.add_edge cfg arm join))
      [ (); () ];
    let post_edges, _last_post = state_chain cfg join b in
    Cfg.seal cfg;
    (cfg, pre_edges.(0), post_edges.(b - 1), a + 1 + b)
  | Nest ->
    (* Two nested loops: outer prologue, an inner loop body, outer
       epilogue — the loop-nest skeleton of the paper's DSP kernels. *)
    let a = max 1 (n / 3) in
    let i = max 1 (n / 3) in
    let b = max 1 (n - a - i) in
    let outer_top = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg (Cfg.start cfg) outer_top);
    let pre_edges, last_pre = state_chain cfg outer_top a in
    let inner_top = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg last_pre inner_top);
    let _inner_edges, last_inner = state_chain cfg inner_top i in
    let inner_bottom = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg last_inner inner_bottom);
    ignore (Cfg.add_edge cfg inner_bottom inner_top);
    let post_edges, last_post = state_chain cfg inner_bottom b in
    let outer_bottom = Cfg.add_node cfg Cfg.Plain in
    ignore (Cfg.add_edge cfg last_post outer_bottom);
    ignore (Cfg.add_edge cfg outer_bottom outer_top);
    Cfg.seal cfg;
    (cfg, pre_edges.(0), post_edges.(b - 1), a + i + b)

let pick_kind rng bias : Dfg.op_kind =
  let r = Splitmix.float rng 1.0 in
  if r < bias then Dfg.Mul
  else if r < bias +. 0.35 then Dfg.Add
  else if r < bias +. 0.5 then Dfg.Sub
  else if r < bias +. 0.6 then Dfg.Cmp Dfg.Lt
  else if r < bias +. 0.75 then Dfg.Shl
  else Dfg.Lxor

let generate ?(profile = default_profile) ?(shape = Loop) ~seed () =
  let rng = Splitmix.create seed in
  let n_ops = profile.min_ops + Splitmix.int rng (profile.max_ops - profile.min_ops + 1) in
  let n_states =
    profile.min_states + Splitmix.int rng (profile.max_states - profile.min_states + 1)
  in
  let width = [| 8; 12; 16; 24; 32 |].(Splitmix.int rng 5) in
  let cfg, first, last, latency = build_cfg shape n_states in
  let dfg = Dfg.create cfg in
  (* Sources: a handful of port reads. *)
  let n_reads = 2 + Splitmix.int rng 4 in
  let values = ref [] in
  for i = 0 to n_reads - 1 do
    let rd =
      Dfg.add_op dfg
        ~kind:(Dfg.Read (Printf.sprintf "p%d" i))
        ~width ~birth:first
        ~name:(Printf.sprintf "rd_%d" i)
        ()
    in
    values := rd :: !values
  done;
  (* Layered random ops: each draws 1-2 producers among earlier values
     (recent values preferred, giving chains a realistic depth). *)
  let value_arr () = Array.of_list !values in
  for i = 0 to n_ops - 1 do
    let kind = pick_kind rng profile.mul_bias in
    let w = if kind = Dfg.Cmp Dfg.Lt then 1 else width in
    let op =
      Dfg.add_op dfg ~kind ~width:w ~birth:first ~name:(Printf.sprintf "op_%d" i) ()
    in
    let vals = value_arr () in
    let n = Array.length vals in
    let pick_recent () =
      (* Triangular bias toward recent values. *)
      let a = Splitmix.int rng n and b = Splitmix.int rng n in
      vals.(min a b)
    in
    let p1 = pick_recent () in
    Dfg.add_dep dfg ~src:p1 ~dst:op ();
    if Splitmix.float rng 1.0 < 0.8 then begin
      let p2 = pick_recent () in
      if not (Dfg.Op_id.equal p2 p1) then Dfg.add_dep dfg ~src:p2 ~dst:op ()
    end;
    values := op :: !values
  done;
  (* Sinks: write a few of the most recent values. *)
  let n_writes = 1 + Splitmix.int rng 3 in
  let vals = value_arr () in
  for i = 0 to n_writes - 1 do
    let wr =
      Dfg.add_op dfg
        ~kind:(Dfg.Write (Printf.sprintf "q%d" i))
        ~width ~birth:last
        ~name:(Printf.sprintf "wr_%d" i)
        ()
    in
    Dfg.add_dep dfg ~src:vals.(min i (Array.length vals - 1)) ~dst:wr ()
  done;
  Dfg.validate dfg;
  (* Clock: a mid-grade multiplier plus margin, so designs have real
     tradeoff room without being trivially loose. *)
  let suggested_clock = 1500.0 +. (float_of_int width *. 40.0) in
  let name =
    (* Loop keeps the historical name so existing seeds stay stable. *)
    match shape with
    | Loop -> Printf.sprintf "rand-%d" seed
    | s -> Printf.sprintf "rand-%s-%d" (shape_name s) seed
  in
  { cfg; dfg; name; latency; suggested_clock }

(* Stable content digest: everything the HLS result can depend on.  The
   generator draws every structural choice from the seeded Splitmix stream
   and builds the graph through Vec-backed containers, so two [generate]
   calls with equal seeds produce byte-identical dumps — asserted in
   test/test_explore.ml.  Keep it that way: no Hashtbl iteration, no
   physical-equality ordering in the generator above. *)
let digest t =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            t.name;
            string_of_int t.latency;
            Printf.sprintf "%.3f" t.suggested_clock;
            Dfg.digest t.dfg;
          ]))

let suite ?profile ~count ~seed () =
  let master = Splitmix.create seed in
  List.init count (fun i ->
      ignore i;
      generate ?profile ~seed:(Int64.to_int (Splitmix.next_int64 master) land 0xFFFFFF) ())
