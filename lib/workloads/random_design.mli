(** Seeded random behavioral designs — the surrogate for the paper's "over
    100 customer designs" (confidential, so unavailable; §VII).

    Each design is a layered random DAG of arithmetic/logic operations over
    a control skeleton chosen from four shapes (straight-line, fork/join
    diamond, single loop, two-level loop nest), with reads feeding the
    first layer and writes consuming final values.  Sizes, widths,
    operation mix and latency are drawn from the given seed, so the whole
    suite is reproducible. *)

type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  name : string;
  latency : int;
  suggested_clock : float;
}

type profile = {
  min_ops : int;
  max_ops : int;
  min_states : int;
  max_states : int;
  mul_bias : float;  (** probability weight of multipliers vs adders *)
}

val default_profile : profile

type shape =
  | Line  (** straight-line: one pass through a state chain, no loop *)
  | Diamond  (** fork/join conditional between a prologue and an epilogue *)
  | Loop  (** a single multi-state loop body (the historical default) *)
  | Nest  (** an inner loop nested inside an outer loop *)

val shape_name : shape -> string
(** Lowercase stable name ("line", "diamond", "loop", "nest"). *)

val shape_of_name : string -> shape option

val all_shapes : shape list

val generate : ?profile:profile -> ?shape:shape -> seed:int -> unit -> t
(** Defaults to [Loop]; a given [(profile, seed)] pair draws the same
    operation stream for every shape (the CFG skeleton consumes no RNG
    draws), so shape only changes the control structure. *)

val suite : ?profile:profile -> count:int -> seed:int -> unit -> t list
(** [count] independent designs derived from one master seed. *)

val digest : t -> string
(** Stable content digest (hex MD5) over the design's name, latency,
    suggested clock and {!Dfg.digest} of its graph.  Equal seeds yield
    equal digests across runs and processes — the explore subsystem uses
    this as the design half of its evaluation-cache key. *)
