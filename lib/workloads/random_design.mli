(** Seeded random behavioral designs — the surrogate for the paper's "over
    100 customer designs" (confidential, so unavailable; §VII).

    Each design is a layered random DAG of arithmetic/logic operations over
    a linear multi-state loop body, with reads feeding the first layer and
    writes consuming final values, optionally with one fork/join diamond.
    Sizes, widths, operation mix and latency are drawn from the given seed,
    so the whole suite is reproducible. *)

type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  name : string;
  latency : int;
  suggested_clock : float;
}

type profile = {
  min_ops : int;
  max_ops : int;
  min_states : int;
  max_states : int;
  mul_bias : float;  (** probability weight of multipliers vs adders *)
}

val default_profile : profile

val generate : ?profile:profile -> seed:int -> unit -> t

val suite : ?profile:profile -> count:int -> seed:int -> unit -> t list
(** [count] independent designs derived from one master seed. *)

val digest : t -> string
(** Stable content digest (hex MD5) over the design's name, latency,
    suggested clock and {!Dfg.digest} of its graph.  Equal seeds yield
    equal digests across runs and processes — the explore subsystem uses
    this as the design half of its evaluation-cache key. *)
