let eps = 1e-6

let latest_starts sched =
  let dfg = sched.Schedule.dfg in
  let budget = Schedule.step_budget sched in
  let n = Dfg.op_count dfg in
  let ls = Array.make n nan in
  let order = List.rev (Dfg.topo_order dfg) in
  List.iter
    (fun oid ->
      let i = Dfg.Op_id.to_int oid in
      match Schedule.placement sched oid with
      | None -> ()
      | Some p ->
        (match (Dfg.op dfg oid).Dfg.kind with
        | Dfg.Const _ -> ()
        | _ ->
          let bound = ref (budget -. p.Schedule.eff_delay) in
          List.iter
            (fun c ->
              match Schedule.placement sched c with
              | Some pc when pc.Schedule.step = p.Schedule.step ->
                let lc = ls.(Dfg.Op_id.to_int c) in
                if not (Float.is_nan lc) then
                  bound := Float.min !bound (lc -. p.Schedule.eff_delay)
              | Some _ | None -> ())
            (Dfg.succs dfg oid);
          ls.(i) <- !bound))
    order;
  ls

(* Telemetry: area-recovery slowdowns are the paper's "conventional flow"
   cost centre the slack budget tries to make unnecessary. *)
let c_sweeps = Obs.counter "recovery.sweeps"
let c_regrades = Obs.counter "recovery.regrades"
let c_rollbacks = Obs.counter "recovery.rollbacks"

let run ?(max_iters = 20) sched =
  let alloc = sched.Schedule.alloc in
  let dfg = sched.Schedule.dfg in
  let regrades = ref 0 in
  let frozen = Hashtbl.create 8 in
  let sweep_no = ref 0 in
  let rec sweep k =
    if k <= 0 then ()
    else begin
      Obs.incr c_sweeps;
      incr sweep_no;
      (match Schedule.retime sched with
      | Ok () -> ()
      | Error v ->
        invalid_arg ("Area_recovery.run: infeasible input schedule: " ^ v.Schedule.detail));
      let ls = latest_starts sched in
      let changed = ref false in
      List.iter
        (fun inst ->
          let id = inst.Alloc.id in
          if not (Hashtbl.mem frozen id) then begin
            let ops = Schedule.ops_of_inst sched id in
            if ops <> [] then begin
              let headroom =
                List.fold_left
                  (fun acc o ->
                    match Schedule.placement sched o with
                    | Some p ->
                      let l = ls.(Dfg.Op_id.to_int o) in
                      if Float.is_nan l then acc else Float.min acc (l -. p.Schedule.start)
                    | None -> acc)
                  infinity ops
              in
              if headroom > 1.0 && headroom < infinity then begin
                let old = inst.Alloc.point in
                Alloc.set_grade alloc id ~delay:(old.Curve.delay +. headroom);
                let now = (Alloc.instance alloc id).Alloc.point in
                if now.Curve.delay > old.Curve.delay +. eps then begin
                  match Schedule.retime sched with
                  | Ok () ->
                    incr regrades;
                    Obs.incr c_regrades;
                    (* Every op bound to the regraded instance got slower. *)
                    if Obs.Events.enabled () then
                      List.iter
                        (fun o ->
                          Obs.Events.emit
                            (Obs.Events.Delay_update
                               {
                                 op = (Dfg.op dfg o).Dfg.name;
                                 phase = "recovery";
                                 round = !sweep_no;
                                 from_ps = old.Curve.delay;
                                 to_ps = now.Curve.delay;
                               }))
                        ops;
                    changed := true
                  | Error _ ->
                    Obs.incr c_rollbacks;
                    Alloc.set_grade alloc id ~delay:old.Curve.delay;
                    (match Schedule.retime sched with
                    | Ok () -> ()
                    | Error v ->
                      invalid_arg
                        ("Area_recovery.run: rollback failed: " ^ v.Schedule.detail));
                    Hashtbl.replace frozen id ()
                end
                else Alloc.set_grade alloc id ~delay:old.Curve.delay
              end
            end
          end)
        (Alloc.instances alloc);
      if !changed then sweep (k - 1)
    end
  in
  sweep max_iters;
  (match Schedule.retime sched with
  | Ok () -> ()
  | Error v -> invalid_arg ("Area_recovery.run: final retime failed: " ^ v.Schedule.detail));
  !regrades
