type flow = Conventional | Slowest_first | Slack_based

let flow_name = function
  | Conventional -> "conventional"
  | Slowest_first -> "slowest-first"
  | Slack_based -> "slack-based"

type recovery_step = Relax_budget | Force_fast_grades | Bump_ii

let recovery_step_name = function
  | Relax_budget -> "relax-budget"
  | Force_fast_grades -> "force-fast-grades"
  | Bump_ii -> "bump-ii"

type recovery_outcome = Recovered | Still_failing of string

type recovery_attempt = { step : recovery_step; outcome : recovery_outcome }

let pp_recovery_attempt ppf a =
  match a.outcome with
  | Recovered -> Format.fprintf ppf "%s: recovered" (recovery_step_name a.step)
  | Still_failing m ->
    Format.fprintf ppf "%s: still failing (%s)" (recovery_step_name a.step) m

type report = {
  flow : flow;
  schedule : Schedule.t;
  relaxations : int;
  regrades : int;
  targets : float array option;
  recovery_log : recovery_attempt list;
  violations : Check.violation list;
}

type error =
  | Invalid of string
  | Validation_failed of {
      failed_flow : flow;
      violations : Check.violation list;
      recovery_log : recovery_attempt list;
    }
  | Sched_failed of {
      failed_flow : flow;
      failure : Sched_core.failure;
      recovery_log : recovery_attempt list;
    }
  | Timed_out of {
      failed_flow : flow;
      phase : string;
      recovery_log : recovery_attempt list;
    }

let pp_recovery_log ppf = function
  | [] -> ()
  | log ->
    List.iter (fun a -> Format.fprintf ppf "@.  recovery %a" pp_recovery_attempt a) log

let pp_error ppf = function
  | Invalid m -> Format.pp_print_string ppf m
  | Validation_failed { failed_flow; violations; recovery_log } ->
    Format.fprintf ppf "%s: pipeline invariants violated:@.%s" (flow_name failed_flow)
      (Check.summary violations);
    pp_recovery_log ppf recovery_log
  | Sched_failed { failed_flow; failure; recovery_log } ->
    Format.fprintf ppf "%s: %a" (flow_name failed_flow) Sched_core.pp_failure failure;
    pp_recovery_log ppf recovery_log
  | Timed_out { failed_flow; phase; recovery_log } ->
    Format.fprintf ppf "%s: deadline exceeded (at %s)" (flow_name failed_flow) phase;
    pp_recovery_log ppf recovery_log

let error_message e = Format.asprintf "%a" pp_error e

(* Telemetry: the relaxation loop is the paper's "expert system"; its event
   counts say how hard the allocator had to fight for a feasible schedule. *)
let c_attempts = Obs.counter "flow.attempts"
let c_relaxations = Obs.counter "flow.relaxations"
let c_resource_adds = Obs.counter "flow.resource_additions"
let c_gamma_decays = Obs.counter "flow.gamma_decays"
let c_rebudget_runs = Obs.counter "sched.rebudget.runs"
let c_rebudget_infeasible = Obs.counter "sched.rebudget.infeasible"

(* Per-edge attribution (instance totals, not global counter deltas, so the
   numbers stay race-free when explore evaluates flows concurrently). *)
let d_edge_cone = Obs.dist "sched.rebudget.cone_relaxations"
let d_edge_waste = Obs.dist "sched.rebudget.wasted_pct"
let c_recoveries = Obs.counter "flow.recovery.attempts"

type sharing = {
  merge_add_sub : bool;
  width_buckets : bool;
}

type config = {
  grading : Alloc.grading;
  recover_area : bool;
  max_relaxations : int;
  budget_config : Budget.config;
  rebudget_config : Budget.config option;
  sharing : sharing;
  validate : Check.level;
  max_recoveries : int;
  allow_ii_bump : bool;
}

let default_config =
  {
    grading = Alloc.Continuous;
    recover_area = true;
    max_relaxations = 128;
    budget_config = Budget.default_config;
    rebudget_config =
      Some { Budget.default_config with max_rounds = 4; bisection_steps = 12 };
    sharing = { merge_add_sub = false; width_buckets = false };
    validate = Check.Boundary;
    max_recoveries = 3;
    allow_ii_bump = false;
  }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let op_curve lib (op : Dfg.op) = Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width

(* Delay range of an op, upper end clamped to the step budget so scheduled
   operations can always fit a cycle. *)
let op_range lib budget dfg o =
  let op = Dfg.op dfg o in
  match op_curve lib op with
  | Some c ->
    let lo = Curve.min_delay c in
    Interval.make lo (Float.max lo (Float.min (Curve.max_delay c) budget))
  | None -> Interval.point 0.0

let op_sensitivity lib dfg o d =
  let op = Dfg.op dfg o in
  match op_curve lib op with Some c -> Curve.sensitivity c d | None -> 0.0

let active_ops dfg =
  List.filter
    (fun o -> match (Dfg.op dfg o).Dfg.kind with Dfg.Const _ -> false | _ -> true)
    (Dfg.ops dfg)

let group_key sharing dfg o =
  let op = Dfg.op dfg o in
  match Resource_kind.of_op_kind op.Dfg.kind with
  | Some rk ->
    let rk =
      if
        sharing.merge_add_sub
        && (Resource_kind.equal rk Resource_kind.Adder
           || Resource_kind.equal rk Resource_kind.Subtractor)
      then Resource_kind.Add_sub
      else rk
    in
    let width = if sharing.width_buckets then next_pow2 op.Dfg.width 4 else op.Dfg.width in
    Some (rk, width)
  | None -> None

let groups sharing dfg =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun o ->
      match group_key sharing dfg o with
      | Some key ->
        Hashtbl.replace tbl key (o :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
      | None -> ())
    (active_ops dfg);
  Hashtbl.fold (fun key ops acc -> (key, List.rev ops) :: acc) tbl []
  |> List.sort compare

let median l =
  match List.sort Float.compare l with
  | [] -> 0.0
  | sorted -> List.nth sorted (List.length sorted / 2)

(* Peak-demand estimate for the initial allocation of the slack flow: the
   ops of a group spread over the steps their spans cover. *)
let slack_instance_count ?ii cfg spans ops =
  let span_steps o =
    let s = spans.(Dfg.Op_id.to_int o) in
    let a = Cfg.state_of_edge cfg s.Dfg.early and b = Cfg.state_of_edge cfg s.Dfg.late in
    let w = max 1 (b - a + 1) in
    match ii with Some k -> min w k | None -> w
  in
  let total = List.length ops in
  let mean_span =
    float_of_int (List.fold_left (fun acc o -> acc + span_steps o) 0 ops)
    /. float_of_int (max 1 total)
  in
  max 1 (int_of_float (ceil (float_of_int total /. Float.max 1.0 mean_span)))

(* Failures of one ladder attempt, before they are dressed up as {!error}
   (which additionally carries the ladder transcript). *)
type once_failure =
  | F_invalid of string
  | F_check of Check.violation list
  | F_sched of Sched_core.failure
  | F_timeout of string  (* phase at which the cancel token fired *)

exception Check_failed_exn of Check.violation list
exception Cancelled_exn of string

let run_once config ii flow dfg ~lib ~clock ~gamma0 ~cancel =
  let cfg = Dfg.cfg dfg in
  let ops = active_ops dfg in
  let n = Dfg.op_count dfg in
  (* Cooperative deadline polls at phase boundaries: a stuck attempt — a
     runaway budgeting loop, an endless relaxation spiral — surfaces as
     [F_timeout] instead of hanging the caller's worker domain. *)
  let poll phase = if Cancel.cancelled cancel then raise (Cancelled_exn phase) in
  (* Violations recorded this attempt; [Error]-severity ones abort the
     attempt through {!Check_failed_exn}, warnings ride on the report. *)
  let collected = ref [] in
  let guard ~at vs =
    poll "validate";
    if Check.ge config.validate at && vs <> [] then begin
      let vs = Check.record vs in
      collected := !collected @ vs;
      if Check.has_errors vs then raise (Check_failed_exn (Check.errors vs))
    end
  in
  let budget_clock = clock -. Library.register_overhead lib in
  if budget_clock <= 0.0 then Error (F_invalid "clock period below register overhead")
  else begin
    try
    let ranges o = op_range lib budget_clock dfg o in
    let sensitivity o d = op_sensitivity lib dfg o d in
    (* Delay targets. *)
    let targets = Array.make n 0.0 in
    let priorities = Array.make n 0.0 in
    let set_targets_from del =
      List.iter (fun o -> targets.(Dfg.Op_id.to_int o) <- del o) ops
    in
    let set_priorities_slack tdfg =
      let res =
        Slack.analyze ~aligned:true tdfg ~clock:budget_clock ~del:(fun o ->
            targets.(Dfg.Op_id.to_int o))
      in
      List.iter
        (fun o -> priorities.(Dfg.Op_id.to_int o) <- Slack.op_slack res o)
        ops
    in
    let spans0 = Dfg.compute_spans dfg in
    let mobility o =
      let s = spans0.(Dfg.Op_id.to_int o) in
      float_of_int
        (Cfg.state_of_edge cfg s.Dfg.late - Cfg.state_of_edge cfg s.Dfg.early)
    in
    let pre_budget_error = ref None in
    (match flow with
    | Conventional ->
      set_targets_from (fun o -> Interval.lo (ranges o));
      List.iter (fun o -> priorities.(Dfg.Op_id.to_int o) <- mobility o) ops
    | Slowest_first ->
      set_targets_from (fun o -> Interval.hi (ranges o));
      List.iter (fun o -> priorities.(Dfg.Op_id.to_int o) <- mobility o) ops
    | Slack_based -> (
      let tdfg = Timed_dfg.build dfg ~spans:spans0 in
      guard ~at:Check.Boundary (Check.timed_dfg tdfg);
      match
        Obs.span "flow.budget" (fun () ->
            Budget.run ~config:config.budget_config tdfg ~clock:budget_clock ~ranges
              ~sensitivity)
      with
      | Budget.Feasible delays ->
        guard ~at:Check.Boundary (Check.budget dfg ~targets:delays ~ranges);
        guard ~at:Check.Paranoid
          (Check.slack tdfg ~clock:budget_clock ~del:(fun o ->
               delays.(Dfg.Op_id.to_int o)));
        Array.blit delays 0 targets 0 n;
        set_priorities_slack tdfg
      | Budget.Infeasible _ ->
        (* Fall back to fastest targets; the schedule pass will tell the
           caller whether the design truly needs more states. *)
        pre_budget_error := Some "pre-schedule budgeting infeasible";
        set_targets_from (fun o -> Interval.lo (ranges o));
        List.iter (fun o -> priorities.(Dfg.Op_id.to_int o) <- mobility o) ops));
    ignore !pre_budget_error;
    (* Instance counts per (kind, width) group, learned across relaxation
       attempts; the allocation is rebuilt from them before every pass. *)
    let counts : (Resource_kind.t * int, int ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun ((rk, width), gops) ->
        let c =
          match flow with
          | Conventional | Slowest_first -> 1
          | Slack_based -> slack_instance_count ?ii cfg spans0 gops
        in
        Hashtbl.replace counts (rk, width) (ref c))
      (groups config.sharing dfg);
    (* Grade-decay knob: when a pass fails on timing (a slow producer
       exhausted a consumer's window) and adding resources cannot help,
       every target is pulled toward the fast end and the pass restarts —
       for the slowest-first flow this is the paper's "reduce their delays
       on the fly" (§II Case 2); for the slack flow it is a last-resort
       fallback when sharing effects defeat the pre-schedule budget. *)
    let gamma = ref gamma0 in
    let eff_target o =
      let i = Dfg.Op_id.to_int o in
      let lo = Interval.lo (ranges o) in
      lo +. (!gamma *. (targets.(i) -. lo))
    in
    let refresh_slowest_targets () =
      set_targets_from (fun o -> Interval.hi (ranges o))
    in
    let build_alloc () =
      let alloc = Alloc.create ~grading:config.grading lib in
      List.iter
        (fun ((rk, width), gops) ->
          let grade =
            match flow with
            | Conventional -> 0.0
            | Slowest_first | Slack_based -> median (List.map eff_target gops)
          in
          let c = !(Hashtbl.find counts (rk, width)) in
          for _ = 1 to c do
            ignore (Alloc.add_instance alloc ~rk ~width ~delay:grade)
          done)
        (groups config.sharing dfg);
      alloc
    in
    (* Per-edge re-budgeting hook (slack flow). *)
    let rebudget =
      match (flow, config.rebudget_config) with
      | Slack_based, Some bcfg ->
        Some
          (fun sched pin ->
            let unplaced =
              List.filter (fun o -> not (Schedule.is_placed sched o)) ops
            in
            if unplaced <> [] then begin
              poll "rebudget";
              let spans' = Dfg.compute_spans ~pin dfg in
              match Timed_dfg.build dfg ~spans:spans' with
              | exception Timed_dfg.Unrealizable _ -> ()
              | tdfg' ->
                let ranges' o =
                  match Schedule.placement sched o with
                  | Some p -> Interval.point p.Schedule.eff_delay
                  | None -> ranges o
                in
                let sens' o d = if Schedule.is_placed sched o then 0.0 else sensitivity o d in
                Obs.incr c_rebudget_runs;
                let attrib = Attrib.create tdfg' in
                (match
                   Budget.run ~config:bcfg ~event_phase:"rebudget" ~attrib tdfg'
                     ~clock:budget_clock ~ranges:ranges' ~sensitivity:sens'
                 with
                | Budget.Feasible delays ->
                  List.iter
                    (fun o ->
                      let i = Dfg.Op_id.to_int o in
                      if not (Schedule.is_placed sched o) then targets.(i) <- delays.(i))
                    ops;
                  let res =
                    Slack.analyze ~aligned:true tdfg' ~clock:budget_clock ~del:(fun o ->
                        targets.(Dfg.Op_id.to_int o))
                  in
                  List.iter
                    (fun o -> priorities.(Dfg.Op_id.to_int o) <- Slack.op_slack res o)
                    ops
                | Budget.Infeasible _ ->
                  (* Sharing created violations: demand the fastest grades
                     for what remains (paper: "fixed by decreasing the
                     delays of operations"). *)
                  Obs.incr c_rebudget_infeasible;
                  List.iter
                    (fun o ->
                      let i = Dfg.Op_id.to_int o in
                      if not (Schedule.is_placed sched o) then
                        targets.(i) <- Interval.lo (ranges o))
                    ops);
                let tt = Attrib.instance_totals attrib in
                if tt.Attrib.touched > 0 then begin
                  Obs.observe d_edge_cone (float_of_int tt.Attrib.cone);
                  Obs.observe d_edge_waste (100.0 *. Attrib.wasted_ratio tt)
                end
            end)
      | (Conventional | Slowest_first | Slack_based), _ -> None
    in
    let make_params alloc =
      ignore alloc;
      {
        Sched_core.clock;
        ii;
        priority = (fun o -> priorities.(Dfg.Op_id.to_int o));
        target = eff_target;
        upgrade_on_miss = (match flow with Conventional -> false | _ -> true);
        respan = (match flow with Slack_based -> true | _ -> false);
        rebudget;
      }
    in
    (* Relaxation loop (the paper's expert system, resource additions plus
       the slowest-first grade decay; adding states is the caller's
       decision). *)
    let rec attempt relaxations =
      poll "schedule";
      if flow = Slowest_first && relaxations = 0 then refresh_slowest_targets ();
      Obs.incr c_attempts;
      let alloc = build_alloc () in
      match Obs.span "flow.schedule" (fun () -> Sched_core.run dfg ~alloc (make_params alloc)) with
      | Ok sched -> Ok (sched, relaxations)
      | Error f when relaxations < config.max_relaxations -> (
        Obs.incr c_relaxations;
        match f.Sched_core.reason with
        | Sched_core.No_resource { op; _ } -> (
          match group_key config.sharing dfg op with
          | Some key ->
            (match Hashtbl.find_opt counts key with
            | Some c -> incr c
            | None -> Hashtbl.replace counts key (ref 1));
            Obs.incr c_resource_adds;
            attempt (relaxations + 1)
          | None -> Error f)
        | Sched_core.Retime_failed _ ->
          (* Mux fan-in pushed a chain over the budget: widen every group
             by one instance to dilute sharing. *)
          Hashtbl.iter (fun _ c -> incr c) counts;
          Obs.incr c_resource_adds;
          attempt (relaxations + 1)
        | Sched_core.Too_slow { op; blame; _ } | Sched_core.No_time { op; blame } ->
          if flow = Slowest_first && !gamma > 0.02 then begin
            gamma := !gamma *. 0.8;
            Obs.incr c_gamma_decays;
            attempt (relaxations + 1)
          end
          else begin
            (* Timing starvation is displaced resource pressure: the op's
               producers were deferred until its window closed.  Widen the
               blamed group (the starved one several links upstream), or
               the op's own group when no blame was identified; once a
               group is saturated, fall back to decaying every delay
               target toward the fast end. *)
            let decay () =
              if !gamma > 0.1 then begin
                gamma := !gamma *. 0.75;
                Obs.incr c_gamma_decays;
                attempt (relaxations + 1)
              end
              else Error f
            in
            let key =
              match blame with
              | Some (rk, width) -> (
                (* Map the blamed natural kind through the sharing policy. *)
                match
                  List.find_opt
                    (fun ((_, _), gops) ->
                      List.exists
                        (fun o ->
                          let bop = Dfg.op dfg o in
                          bop.Dfg.width = width
                          && Resource_kind.of_op_kind bop.Dfg.kind = Some rk)
                        gops)
                    (groups config.sharing dfg)
                with
                | Some (key, _) -> Some key
                | None -> group_key config.sharing dfg op)
              | None -> group_key config.sharing dfg op
            in
            match key with
            | Some key ->
              let group_size =
                List.length
                  (List.filter (fun o -> group_key config.sharing dfg o = Some key) ops)
              in
              let c =
                match Hashtbl.find_opt counts key with
                | Some c -> c
                | None ->
                  let c = ref 0 in
                  Hashtbl.replace counts key c;
                  c
              in
              if !c < group_size then begin
                incr c;
                Obs.incr c_resource_adds;
                attempt (relaxations + 1)
              end
              else decay ()
            | None -> decay ()
          end)
      | Error f -> Error f
    in
    match attempt 0 with
    | Error failure -> Error (F_sched failure)
    | Ok (schedule, relaxations) ->
      let regrades =
        if config.recover_area then
          Obs.span "flow.recovery" (fun () -> Area_recovery.run schedule)
        else 0
      in
      (if Check.ge config.validate Check.Paranoid then
         match Schedule.validate schedule with
         | Ok () -> ()
         | Error msgs ->
           guard ~at:Check.Paranoid
             (List.map (fun m -> Check.violation ~check:"schedule.legality" m) msgs));
      Ok
        {
          flow;
          schedule;
          relaxations;
          regrades;
          targets = (match flow with Slack_based -> Some (Array.copy targets) | _ -> None);
          recovery_log = [];
          violations = !collected;
        }
    with
    | Check_failed_exn vs -> Error (F_check vs)
    | Cancelled_exn phase -> Error (F_timeout phase)
    | Timed_dfg.Unrealizable m -> Error (F_invalid ("timed DFG unrealizable: " ^ m))
  end

(* The self-healing retry ladder.  Each rung is cumulative — a later rung
   keeps the earlier rungs' concessions — and bounded by [max_recoveries]:

   + {b relax-budget}: re-run with a more persistent budgeting
     configuration ({!Budget.relax}) and a relaxation allowance of at
     least 16 passes;
   + {b force-fast-grades}: pull every delay target to the fast end of its
     curve ([gamma0 = 0]), the strongest answer to timing starvation;
   + {b bump-ii} (opt-in, pipelined designs only): trade throughput for
     schedulability by raising the initiation interval by one. *)
let apply_rung (config, ii, gamma0) = function
  | Relax_budget ->
    ( {
        config with
        budget_config = Budget.relax config.budget_config;
        rebudget_config = Option.map Budget.relax config.rebudget_config;
        max_relaxations = max 16 (2 * config.max_relaxations);
      },
      ii,
      gamma0 )
  | Force_fast_grades -> (config, ii, 0.0)
  | Bump_ii -> (config, Option.map (fun k -> k + 1) ii, gamma0)

let once_failure_message = function
  | F_invalid m -> m
  | F_check vs -> Check.summary vs
  | F_sched f -> Format.asprintf "%a" Sched_core.pp_failure f
  | F_timeout phase -> "deadline exceeded (at " ^ phase ^ ")"

let run ?(config = default_config) ?(cancel = Cancel.never) ?ii flow dfg ~lib ~clock =
  match ii with
  | Some k when k <= 0 -> Error (Invalid "ii must be positive")
  | _ when Cancel.cancelled cancel ->
    (* The token can expire before we start (a sweep point whose builder
       overran the deadline): report the timeout, skip the work. *)
    Error (Timed_out { failed_flow = flow; phase = "entry"; recovery_log = [] })
  | _ -> (
    let entry =
      if Check.ge config.validate Check.Boundary then Check.record (Check.dfg dfg)
      else []
    in
    if Check.has_errors entry then
      (* Structural corruption of the input: no amount of re-scheduling
         repairs a cyclic or dangling DFG, so fail without the ladder. *)
      Error
        (Validation_failed
           { failed_flow = flow; violations = Check.errors entry; recovery_log = [] })
    else
      let ladder =
        let rungs =
          [ Relax_budget; Force_fast_grades ]
          @ (if config.allow_ii_bump && ii <> None then [ Bump_ii ] else [])
        in
        List.filteri (fun i _ -> i < config.max_recoveries) rungs
      in
      let fail last log =
        let recovery_log = List.rev log in
        match last with
        | F_invalid m -> Error (Invalid m)
        | F_check violations ->
          Error (Validation_failed { failed_flow = flow; violations; recovery_log })
        | F_sched failure ->
          Error (Sched_failed { failed_flow = flow; failure; recovery_log })
        | F_timeout phase -> Error (Timed_out { failed_flow = flow; phase; recovery_log })
      in
      let rec escalate state last log = function
        | [] -> fail last log
        | rung :: rest -> (
          match last with
          | F_invalid _ | F_timeout _ ->
            (* Config problems make retrying futile; an expired deadline
               makes it forbidden — every further rung would also time out
               at its first poll. *)
            fail last log
          | F_check _ | F_sched _ ->
            Obs.incr c_recoveries;
            let state = apply_rung state rung in
            let config', ii', gamma0 = state in
            let emit_rung outcome =
              if Obs.Events.enabled () then
                Obs.Events.emit
                  (Obs.Events.Recovery_step
                     { rung = recovery_step_name rung; outcome })
            in
            (match run_once config' ii' flow dfg ~lib ~clock ~gamma0 ~cancel with
            | Ok report ->
              emit_rung "recovered";
              Ok
                {
                  report with
                  recovery_log = List.rev ({ step = rung; outcome = Recovered } :: log);
                }
            | Error f ->
              emit_rung "still-failing";
              escalate state f
                ({ step = rung; outcome = Still_failing (once_failure_message f) }
                :: log)
                rest))
      in
      match run_once config ii flow dfg ~lib ~clock ~gamma0:1.0 ~cancel with
      | Ok report -> Ok report
      | Error (F_invalid m) -> Error (Invalid m)
      | Error f -> escalate (config, ii, 1.0) f [] ladder)
