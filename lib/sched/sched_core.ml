type failure_reason =
  | No_resource of { op : Dfg.Op_id.t; rk : Resource_kind.t; width : int }
  | Too_slow of { op : Dfg.Op_id.t; window : float; blame : (Resource_kind.t * int) option }
  | No_time of { op : Dfg.Op_id.t; blame : (Resource_kind.t * int) option }
  | Retime_failed of string

type failure = { reason : failure_reason; message : string }

let pp_failure ppf f = Format.pp_print_string ppf f.message

type params = {
  clock : float;
  ii : int option;
  priority : Dfg.Op_id.t -> float;
  target : Dfg.Op_id.t -> float;
  upgrade_on_miss : bool;
  respan : bool;
  rebudget : (Schedule.t -> (Dfg.Op_id.t -> Cfg.Edge_id.t option) -> unit) option;
}

exception Fail of failure

let eps = 1e-6

type attempt = Placed | Defer of failure_reason

(* Telemetry (paper §VI, Fig. 8): per-CFG-edge scheduler events.  Deferral
   counters split by reason so a failing run's event stream shows whether
   the bottleneck was resources, windows, or ready-time starvation. *)
let c_runs = Obs.counter "sched.runs"
let c_edges = Obs.counter "sched.edges"
let c_sweeps = Obs.counter "sched.ready_sweeps"
let c_ready = Obs.counter "sched.ready_ops"
let c_placements = Obs.counter "sched.placements"
let c_defer_res = Obs.counter "sched.defer.no_resource"
let c_defer_slow = Obs.counter "sched.defer.too_slow"
let c_defer_time = Obs.counter "sched.defer.no_time"
let c_upgrades = Obs.counter "sched.upgrades_on_miss"
let c_respans = Obs.counter "sched.respans"
let c_failures = Obs.counter "sched.failures"
let c_retime_repairs = Obs.counter "sched.retime_repairs"

let count_defer = function
  | No_resource _ -> Obs.incr c_defer_res
  | Too_slow _ -> Obs.incr c_defer_slow
  | No_time _ -> Obs.incr c_defer_time
  | Retime_failed _ -> ()

let run dfg ~alloc params =
  Obs.incr c_runs;
  let cfg = Dfg.cfg dfg in
  let sched = Schedule.create ?ii:params.ii dfg ~clock:params.clock ~alloc in
  let budget = Schedule.step_budget sched in
  let pin o =
    Option.map (fun p -> p.Schedule.edge) (Schedule.placement sched o)
  in
  let spans = ref (Dfg.compute_spans dfg) in
  let fanin : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let fanin_of id =
    Option.value ~default:0 (Hashtbl.find_opt fanin (Alloc.Inst_id.to_int id))
  in
  let active o =
    match (Dfg.op dfg o).Dfg.kind with Dfg.Const _ -> false | _ -> true
  in
  let span_of o = (!spans).(Dfg.Op_id.to_int o) in
  let mux_pen inputs = Library.mux_delay (Alloc.library alloc) ~inputs in
  (* When an operation starves (its producers finish too late for any
     window to remain), the actionable bottleneck is usually a resource
     group several chain links upstream.  Walk the latest-finishing
     producer chain: move to the latest pred while it shares the failing
     step or finishes late in its own step; blame where the walk stops. *)
  let blame_for o fail_step =
    let latest_pred o =
      List.fold_left
        (fun acc p ->
          match Schedule.placement sched p with
          | None -> acc
          | Some pp -> (
            let fin = pp.Schedule.start +. pp.Schedule.eff_delay in
            match acc with
            | Some (_, bs, bf) when (bs, bf) >= (pp.Schedule.step, fin) -> acc
            | Some _ | None -> Some (p, pp.Schedule.step, fin)))
        None (Dfg.preds dfg o)
    in
    let budget_late = 0.7 *. budget in
    let rec walk o step =
      match latest_pred o with
      | Some (p, ps, fin) when ps = step || fin > budget_late -> walk p ps
      | Some _ | None -> o
    in
    let culprit = walk o fail_step in
    let op = Dfg.op dfg culprit in
    match Resource_kind.of_op_kind op.Dfg.kind with
    | Some rk -> Some (rk, op.Dfg.width)
    | None -> None
  in
  (* Readiness of [o] on edge [e]: the edge lies in o's span, every
     forward predecessor is placed with its value available here, and
     under pipelining no already-placed loop-carried partner's recurrence
     window is violated by this step. *)
  let lc_ok o step =
    List.for_all
      (fun (p, lc) ->
        (not lc)
        ||
        match Schedule.placement sched p with
        | Some pp -> Schedule.lc_step_ok sched ~producer_step:pp.Schedule.step ~consumer_step:step
        | None -> true)
      (Dfg.all_preds dfg o)
    && List.for_all
         (fun (c, lc) ->
           (not lc)
           ||
           match Schedule.placement sched c with
           | Some pc -> Schedule.lc_step_ok sched ~producer_step:step ~consumer_step:pc.Schedule.step
           | None -> true)
         (Dfg.all_succs dfg o)
  in
  let ready_on o e step =
    let s = span_of o in
    Cfg.reaches cfg s.Dfg.early e
    && Cfg.reaches cfg e s.Dfg.late
    && List.for_all
         (fun p ->
           match Schedule.placement sched p with
           | None -> false
           | Some pp -> pp.Schedule.step < step || Cfg.reaches cfg pp.Schedule.edge e)
         (Dfg.preds dfg o)
    && lc_ok o step
  in
  let ready_time o step =
    List.fold_left
      (fun acc p ->
        match Schedule.placement sched p with
        | Some pp when pp.Schedule.step = step ->
          Float.max acc (pp.Schedule.start +. pp.Schedule.eff_delay)
        | Some _ | None -> acc)
      0.0 (Dfg.preds dfg o)
  in
  let try_place_raw o e step =
    let op = Dfg.op dfg o in
    let rt = ready_time o step in
    let window = budget -. rt in
    if window < -.eps then Defer (No_time { op = o; blame = blame_for o step })
    else begin
      let rk =
        match Resource_kind.of_op_kind op.Dfg.kind with
        | Some rk -> rk
        | None -> assert false (* constants never reach try_place *)
      in
      let candidates = Alloc.candidates alloc ~op_kind:op.Dfg.kind ~width:op.Dfg.width in
      let free = List.filter (fun c -> not (Schedule.conflicts sched c.Alloc.id ~edge:e)) candidates in
      (* Cheapest (slowest) grade first; among equal grades prefer the
         emptiest instance so sharing — and its mux penalty — spreads. *)
      let free =
        List.stable_sort
          (fun a b ->
            match Float.compare b.Alloc.point.Curve.delay a.Alloc.point.Curve.delay with
            | 0 -> Int.compare (fanin_of a.Alloc.id) (fanin_of b.Alloc.id)
            | c -> c)
          free
      in
      let eff_of c = c.Alloc.point.Curve.delay +. mux_pen (fanin_of c.Alloc.id + 1) in
      let fitting = List.filter (fun c -> eff_of c <= window +. eps) free in
      let do_place c =
        let eff = eff_of c in
        Schedule.place sched o ~edge:e ~start:rt ~eff_delay:eff ~inst:(Some c.Alloc.id);
        Hashtbl.replace fanin
          (Alloc.Inst_id.to_int c.Alloc.id)
          (fanin_of c.Alloc.id + 1);
        Placed
      in
      match fitting with
      | _ :: _ ->
        (* Prefer the slowest instance not slower than the budgeted target
           (cheapest honouring the plan); if every fitting instance is
           slower than the target, take the fastest fitting one to leave
           room for chained consumers. *)
        let target = params.target o in
        let near = List.filter (fun c -> c.Alloc.point.Curve.delay <= target +. 1.0) fitting in
        (match near with
        | c :: _ -> do_place c
        | [] -> do_place (List.nth fitting (List.length fitting - 1)))
      | [] ->
        if params.upgrade_on_miss then begin
          let viable =
            List.filter
              (fun c ->
                Curve.min_delay c.Alloc.curve +. mux_pen (fanin_of c.Alloc.id + 1)
                <= window +. eps)
              free
          in
          match viable with
          | [] ->
            if free = [] then Defer (No_resource { op = o; rk; width = op.Dfg.width })
            else if window <= eps then Defer (No_time { op = o; blame = blame_for o step })
            else Defer (Too_slow { op = o; window; blame = blame_for o step })
          | _ :: _ ->
            (* Upgrade the instance whose area damage is smallest. *)
            let cost c =
              let needed = window -. mux_pen (fanin_of c.Alloc.id + 1) in
              Curve.area_at c.Alloc.curve needed -. c.Alloc.point.Curve.area
            in
            let best =
              List.fold_left
                (fun acc c ->
                  match acc with
                  | None -> Some c
                  | Some b -> if cost c < cost b then Some c else acc)
                None viable
            in
            (match best with
            | Some c ->
              let needed = window -. mux_pen (fanin_of c.Alloc.id + 1) in
              if Alloc.upgrade_to_fit alloc c.Alloc.id ~max_delay:needed then begin
                Obs.incr c_upgrades;
                do_place c
              end
              else Defer (Too_slow { op = o; window; blame = blame_for o step })
            | None -> Defer (Too_slow { op = o; window; blame = blame_for o step }))
        end
        else if free = [] then Defer (No_resource { op = o; rk; width = op.Dfg.width })
        else if window <= eps then Defer (No_time { op = o; blame = blame_for o step })
        else Defer (Too_slow { op = o; window; blame = blame_for o step })
    end
  in
  let try_place o e step =
    match try_place_raw o e step with
    | Placed ->
      Obs.incr c_placements;
      Placed
    | Defer reason as d ->
      count_defer reason;
      d
  in
  let fail op_name reason =
    let message =
      match reason with
      | No_resource { rk; width; _ } ->
        Printf.sprintf "op %s: no free %s (w%d) instance on its last span edge" op_name
          (Resource_kind.name rk) width
      | Too_slow { window; _ } ->
        Printf.sprintf "op %s: no instance fits the %.0f ps window on its last span edge"
          op_name window
      | No_time _ ->
        Printf.sprintf "op %s: ready time exhausts the step budget; more states needed"
          op_name
      | Retime_failed m -> m
    in
    Obs.incr c_failures;
    raise (Fail { reason; message })
  in
  let ev_on () = Obs.Events.enabled () in
  let emit_pick o e step ~ready_set_size =
    Obs.Events.emit
      (Obs.Events.Op_picked
         {
           op = (Dfg.op dfg o).Dfg.name;
           edge = Cfg.Edge_id.to_int e;
           step;
           priority = params.priority o;
           ready_set_size;
         })
  in
  try
    List.iter
      (fun e ->
        Obs.incr c_edges;
        let step = Cfg.state_of_edge cfg e in
        let placed_here = ref 0 in
        let deferred_here = ref 0 in
        let progress = ref true in
        while !progress do
          progress := false;
          Obs.incr c_sweeps;
          let ready =
            Dfg.ops dfg
            |> List.filter (fun o ->
                   active o && (not (Schedule.is_placed sched o)) && ready_on o e step)
            |> List.sort (fun a b ->
                   (* Ops whose span ends here go first, then by priority. *)
                   let late_idx o = Cfg.edge_topo_index cfg (span_of o).Dfg.late in
                   match Int.compare (late_idx a) (late_idx b) with
                   | 0 -> (
                     match Float.compare (params.priority a) (params.priority b) with
                     | 0 -> Dfg.Op_id.compare a b
                     | c -> c)
                   | c -> c)
          in
          let nready = List.length ready in
          Obs.add c_ready nready;
          List.iter
            (fun o ->
              if not (Schedule.is_placed sched o) then
                match try_place o e step with
                | Placed ->
                  progress := true;
                  incr placed_here;
                  if ev_on () then emit_pick o e step ~ready_set_size:nready
                | Defer _ -> incr deferred_here)
            ready
        done;
        (* Paper step (b): an op whose span ends here must be placed.  The
           sweep follows dependency order so that when a chain is stuck the
           blocking producer reports its own (actionable) failure before a
           merely-waiting consumer reports a misleading one. *)
        List.iter
          (fun o ->
            if
              active o
              && (not (Schedule.is_placed sched o))
              && Cfg.Edge_id.equal (span_of o).Dfg.late e
            then begin
              match
                if ready_on o e step then try_place o e step
                else Defer (No_time { op = o; blame = blame_for o step })
              with
              | Placed ->
                incr placed_here;
                (* Span-end forced placement: the op was the only candidate. *)
                if ev_on () then emit_pick o e step ~ready_set_size:1
              | Defer reason ->
                if Sys.getenv_opt "HLS_DEBUG" <> None then begin
                  let sp = span_of o in
                  Printf.eprintf "DEBUG fail %s at e%d step %d: span e%d..e%d rt=%.1f ready=%b\n"
                    (Dfg.op dfg o).Dfg.name (Cfg.Edge_id.to_int e) step
                    (Cfg.Edge_id.to_int sp.Dfg.early) (Cfg.Edge_id.to_int sp.Dfg.late)
                    (ready_time o step) (ready_on o e step);
                  List.iter
                    (fun pr ->
                      match Schedule.placement sched pr with
                      | Some pp ->
                        Printf.eprintf "  pred %s: e%d step %d %.1f..%.1f\n"
                          (Dfg.op dfg pr).Dfg.name (Cfg.Edge_id.to_int pp.Schedule.edge)
                          pp.Schedule.step pp.Schedule.start
                          (pp.Schedule.start +. pp.Schedule.eff_delay)
                      | None ->
                        Printf.eprintf "  pred %s: UNPLACED\n" (Dfg.op dfg pr).Dfg.name)
                    (Dfg.preds dfg o)
                end;
                fail (Dfg.op dfg o).Dfg.name reason
            end)
          (Dfg.topo_order dfg);
        if ev_on () then
          Obs.Events.emit
            (Obs.Events.Edge_scheduled
               {
                 edge = Cfg.Edge_id.to_int e;
                 step;
                 placed = !placed_here;
                 deferred = !deferred_here;
               });
        if params.respan then begin
          Obs.incr c_respans;
          spans := Dfg.compute_spans ~pin dfg
        end;
        match params.rebudget with Some f -> f sched pin | None -> ())
      (Cfg.forward_edges_topo cfg);
    (* Everything must be placed by now. *)
    List.iter
      (fun o ->
        if active o && not (Schedule.is_placed sched o) then
          fail (Dfg.op dfg o).Dfg.name (No_time { op = o; blame = None }))
      (Dfg.ops dfg);
    (* Final retiming with exact mux fan-ins.  Binding charged each op a
       fan-in-at-bind-time penalty; later arrivals on the same instance can
       push earlier chains past the budget.  Repair by speeding up the
       slowest instance on the violating chain until the schedule verifies
       (a bounded, delay-decreasing loop). *)
    let chain_instances culprit =
      let seen = Hashtbl.create 8 in
      let insts = ref [] in
      let rec walk o =
        if not (Hashtbl.mem seen (Dfg.Op_id.to_int o)) then begin
          Hashtbl.replace seen (Dfg.Op_id.to_int o) ();
          match Schedule.placement sched o with
          | None -> ()
          | Some p ->
            (match p.Schedule.inst with
            | Some id -> insts := id :: !insts
            | None -> ());
            List.iter
              (fun pr ->
                match Schedule.placement sched pr with
                | Some pp when pp.Schedule.step = p.Schedule.step -> walk pr
                | Some _ | None -> ())
              (Dfg.preds dfg o)
        end
      in
      walk culprit;
      List.sort_uniq Alloc.Inst_id.compare !insts
    in
    let rec repair tries =
      match Schedule.retime sched with
      | Ok () -> Ok sched
      | Error v when tries > 0 -> (
        match v.Schedule.culprit with
        | None ->
          Error
            { reason = Retime_failed v.Schedule.detail;
              message = "final retiming failed: " ^ v.Schedule.detail }
        | Some culprit -> (
          let candidates =
            chain_instances culprit
            |> List.map (fun id -> Alloc.instance alloc id)
            |> List.filter (fun i ->
                   i.Alloc.point.Curve.delay > Curve.min_delay i.Alloc.curve +. eps)
            |> List.sort (fun a b ->
                   Float.compare b.Alloc.point.Curve.delay a.Alloc.point.Curve.delay)
          in
          match candidates with
          | [] ->
            Error
              { reason = Retime_failed v.Schedule.detail;
                message = "final retiming failed (chain already fastest): " ^ v.Schedule.detail }
          | i :: _ ->
            Obs.incr c_retime_repairs;
            let want = i.Alloc.point.Curve.delay -. v.Schedule.overshoot -. 1.0 in
            Alloc.set_grade alloc i.Alloc.id
              ~delay:(Float.max (Curve.min_delay i.Alloc.curve) want);
            repair (tries - 1)))
      | Error v ->
        Error
          { reason = Retime_failed v.Schedule.detail;
            message = "final retiming failed: " ^ v.Schedule.detail }
    in
    repair 200
  with Fail f -> Error f
