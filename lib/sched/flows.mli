(** End-to-end scheduling flows.

    - {b Conventional}: the RTL-methodology baseline the paper compares
      against — allocate the fastest resources, list-schedule, then recover
      area within single states (paper §II Case 1).
    - {b Slowest-first}: start from the slowest resources and upgrade
      grades on the fly when operations miss their windows (paper §II
      Case 2; shown to also be sub-optimal).
    - {b Slack-based}: the paper's contribution (Figure 8 with the bold
      steps): budget sequential slack on the pre-schedule DFG to pick each
      operation's delay target, allocate instances at those grades,
      schedule critical-first, re-running span computation and budgeting
      after every CFG edge; then final area recovery.

    All flows share the relaxation loop: when the schedule pass fails for
    lack of a resource, an instance is added (at the flow's preferred
    grade) and the pass restarts — the paper's "expert system" step. *)

type flow = Conventional | Slowest_first | Slack_based

val flow_name : flow -> string

(** {1 Recovery ladder}

    When an attempt fails with a scheduler failure or a boundary-check
    violation, [run] escalates through bounded recovery rungs (cumulative,
    in this order): re-budget with a relaxed {!Budget.config}; force every
    delay target to its curve's fast end; opt-in, bump the initiation
    interval.  Each rung tried is recorded in the report's
    [recovery_log] — also attached to the error when the whole ladder
    fails — and counted by the [flow.recovery.attempts] telemetry
    counter. *)

type recovery_step = Relax_budget | Force_fast_grades | Bump_ii

val recovery_step_name : recovery_step -> string

type recovery_outcome =
  | Recovered           (** this rung's attempt produced a schedule *)
  | Still_failing of string  (** the failure message of this rung's attempt *)

type recovery_attempt = { step : recovery_step; outcome : recovery_outcome }

val pp_recovery_attempt : Format.formatter -> recovery_attempt -> unit

type report = {
  flow : flow;
  schedule : Schedule.t;
  relaxations : int;       (** schedule-pass restarts *)
  regrades : int;          (** area-recovery re-grades applied *)
  targets : float array option;  (** budgeted delay per op (slack flow) *)
  recovery_log : recovery_attempt list;
      (** ladder transcript; [[]] when the first attempt succeeded *)
  violations : Check.violation list;
      (** warnings recorded by the boundary validators during the
          successful attempt *)
}

type sharing = {
  merge_add_sub : bool;
      (** allocate combined adder/subtractors serving both op kinds — the
          paper's §II example of resource-type flexibility *)
  width_buckets : bool;
      (** round allocation widths up to the next power of two so
          near-width operations share units (the paper's add(6,6) /
          add(3,8) grouping question) *)
}

type config = {
  grading : Alloc.grading;
  recover_area : bool;
  max_relaxations : int;
  budget_config : Budget.config;   (** pre-schedule budgeting *)
  rebudget_config : Budget.config option;
      (** per-edge re-budgeting; [None] disables the paper's step (d)
          (ablation) *)
  sharing : sharing;
  validate : Check.level;
      (** phase-boundary invariant checking: [Off] none, [Boundary]
          (default) the cheap per-phase validators, [Paranoid] adds the
          post-budget slack audit and a full schedule audit on success *)
  max_recoveries : int;
      (** recovery-ladder length bound (default 3, the full ladder); [0]
          restores fail-fast behaviour *)
  allow_ii_bump : bool;
      (** let the ladder's last rung raise the initiation interval of a
          pipelined design (default false: II is a throughput contract) *)
}

val default_config : config

(** Structured flow errors: [Invalid] for configuration problems,
    [Validation_failed] when a phase-boundary validator found
    [Error]-severity violations, and [Sched_failed] carrying the
    scheduler's {!Sched_core.failure} so callers (the CLI in particular)
    can surface the actionable diagnosis — which operation starved, which
    resource group is to blame — instead of a flattened string.  The
    latter two carry the recovery-ladder transcript. *)
type error =
  | Invalid of string
  | Validation_failed of {
      failed_flow : flow;
      violations : Check.violation list;
      recovery_log : recovery_attempt list;
    }
  | Sched_failed of {
      failed_flow : flow;
      failure : Sched_core.failure;
      recovery_log : recovery_attempt list;
    }
  | Timed_out of {
      failed_flow : flow;
      phase : string;  (** boundary at which the cancel token fired *)
      recovery_log : recovery_attempt list;
    }
      (** The caller's {!Cancel.t} fired.  A timeout is terminal: the
          ladder never retries it (every further rung would also be over
          the deadline), and sweep drivers treat it as data — the point
          was too expensive, not the pipeline broken. *)

val pp_error : Format.formatter -> error -> unit
(** Renders [Sched_failed] through {!Sched_core.pp_failure}, followed by
    the ladder transcript when recovery was attempted. *)

val error_message : error -> string

val run :
  ?config:config -> ?cancel:Cancel.t -> ?ii:int -> flow -> Dfg.t ->
  lib:Library.t -> clock:float -> (report, error) result
(** Requires a validated DFG on a sealed CFG.  [ii] pipelines the loop at
    the given initiation interval (modulo resource folding plus the
    loop-carried recurrence constraint).  The returned schedule is retimed
    and passes {!Schedule.validate}.

    [cancel] (default {!Cancel.never}) is polled cooperatively at every
    phase boundary — validator guards, each relaxation attempt, each
    per-edge re-budget, each ladder rung — and a fired token turns the
    attempt into [Error (Timed_out _)] carrying the boundary name and the
    ladder transcript so far.

    Never raises: an invalid [ii] is reported as [Error (Invalid _)], and
    boundary-check violations as [Error (Validation_failed _)] after the
    recovery ladder is exhausted. *)
