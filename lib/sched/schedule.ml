type placement = {
  edge : Cfg.Edge_id.t;
  step : int;
  mutable start : float;
  mutable eff_delay : float;
  inst : Alloc.Inst_id.t option;
}

type t = {
  dfg : Dfg.t;
  clock : float;
  alloc : Alloc.t;
  ii : int option;
  placements : placement option array;
}

let eps = 1e-6

let create ?ii dfg ~clock ~alloc =
  (match ii with
  | Some k when k <= 0 -> invalid_arg "Schedule.create: ii must be positive"
  | Some _ | None -> ());
  let n = Dfg.op_count dfg in
  let placements = Array.make n None in
  let cfg = Dfg.cfg dfg in
  Dfg.iter_ops dfg (fun o ->
      match o.Dfg.kind with
      | Dfg.Const _ ->
        placements.(Dfg.Op_id.to_int o.Dfg.id) <-
          Some
            {
              edge = o.Dfg.birth;
              step = Cfg.state_of_edge cfg o.Dfg.birth;
              start = 0.0;
              eff_delay = 0.0;
              inst = None;
            }
      | _ -> ());
  { dfg; clock; alloc; ii; placements }

let placement t o = t.placements.(Dfg.Op_id.to_int o)
let is_placed t o = placement t o <> None

let place t o ~edge ~start ~eff_delay ~inst =
  let i = Dfg.Op_id.to_int o in
  if t.placements.(i) <> None then invalid_arg "Schedule.place: op already placed";
  let step = Cfg.state_of_edge (Dfg.cfg t.dfg) edge in
  t.placements.(i) <- Some { edge; step; start; eff_delay; inst }

let step_budget t = t.clock -. Library.register_overhead (Alloc.library t.alloc)

let ops_of_inst t inst_id =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Some { inst = Some id; _ } when Alloc.Inst_id.equal id inst_id ->
        acc := Dfg.Op_id.of_int i :: !acc
      | Some _ | None -> ())
    t.placements;
  List.rev !acc

(* Two ops double-book an instance iff they are in the same control step and
   their edges are not mutually exclusive (one reaches the other, or they
   are the same edge).  Ops on exclusive branches may share freely. *)
let edges_conflict cfg e1 e2 =
  Cfg.Edge_id.equal e1 e2 || Cfg.reaches cfg e1 e2 || Cfg.reaches cfg e2 e1

let steps_overlap t a b =
  a = b || (match t.ii with Some k -> a mod k = b mod k | None -> false)

let conflicts t inst_id ~edge =
  let cfg = Dfg.cfg t.dfg in
  let step = Cfg.state_of_edge cfg edge in
  List.exists
    (fun o ->
      match placement t o with
      | Some p ->
        if p.step = step then edges_conflict cfg p.edge edge
        else steps_overlap t p.step step
      | None -> false)
    (ops_of_inst t inst_id)

let lc_step_ok t ~producer_step ~consumer_step =
  match t.ii with Some k -> producer_step < consumer_step + k | None -> true

let effective_delay t ~inst ~fanin =
  inst.Alloc.point.Curve.delay
  +. Library.mux_delay (Alloc.library t.alloc) ~inputs:fanin

type violation = {
  culprit : Dfg.Op_id.t option;
  overshoot : float;
  detail : string;
}

(* Recompute starts in dependency order using final fan-ins. *)
let retime t =
  let cfg = Dfg.cfg t.dfg in
  let budget = step_budget t in
  let order = Dfg.topo_order t.dfg in
  let fanin = Hashtbl.create 16 in
  Array.iter
    (function
      | Some { inst = Some id; _ } ->
        Hashtbl.replace fanin id (1 + Option.value ~default:0 (Hashtbl.find_opt fanin id))
      | Some { inst = None; _ } | None -> ())
    t.placements;
  let result = ref (Ok ()) in
  List.iter
    (fun oid ->
      match (!result, placement t oid) with
      | Error _, _ -> ()
      | Ok (), None -> () (* unplaced ops are the caller's concern *)
      | Ok (), Some p ->
        let op = Dfg.op t.dfg oid in
        (match op.Dfg.kind with
        | Dfg.Const _ -> ()
        | _ ->
          let eff =
            match p.inst with
            | None -> 0.0
            | Some id ->
              let inst = Alloc.instance t.alloc id in
              effective_delay t ~inst
                ~fanin:(Option.value ~default:1 (Hashtbl.find_opt fanin id))
          in
          let ready = ref 0.0 in
          List.iter
            (fun pid ->
              match placement t pid with
              | None -> () (* missing preds are reported by validate *)
              | Some pp ->
                if pp.step = p.step then begin
                  if Cfg.reaches cfg pp.edge p.edge then
                    ready := Float.max !ready (pp.start +. pp.eff_delay)
                  else
                    result :=
                      Error
                        {
                          culprit = None;
                          overshoot = 0.0;
                          detail =
                            Printf.sprintf "op %s chained from unreachable edge" op.Dfg.name;
                        }
                end
                else if pp.step > p.step then
                  result :=
                    Error
                      {
                        culprit = None;
                        overshoot = 0.0;
                        detail =
                          Printf.sprintf "op %s depends on later-step producer %s"
                            op.Dfg.name (Dfg.op t.dfg pid).Dfg.name;
                      })
            (Dfg.preds t.dfg oid);
          (match !result with
          | Error _ -> ()
          | Ok () ->
            p.start <- !ready;
            p.eff_delay <- eff;
            if !ready +. eff > budget +. eps then
              result :=
                Error
                  {
                    culprit = Some oid;
                    overshoot = !ready +. eff -. budget;
                    detail =
                      Printf.sprintf "op %s misses the step budget: %.1f + %.1f > %.1f"
                        op.Dfg.name !ready eff budget;
                  })))
    order;
  !result

let steps_used t =
  Array.fold_left
    (fun acc p -> match p with Some { step; _ } -> max acc (step + 1) | None -> acc)
    0 t.placements

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let cfg = Dfg.cfg t.dfg in
  (* Every active op placed. *)
  Dfg.iter_ops t.dfg (fun o ->
      if placement t o.Dfg.id = None then err "op %s unplaced" o.Dfg.name);
  if !errors = [] then begin
    (* Recorded control step consistent with the placement edge. *)
    Dfg.iter_ops t.dfg (fun o ->
        match placement t o.Dfg.id with
        | None -> ()
        | Some p ->
          let expect = Cfg.state_of_edge cfg p.edge in
          if p.step <> expect then
            err "op %s records step %d but its edge is in step %d" o.Dfg.name p.step
              expect);
    (* Placements inside (unpinned) spans. *)
    let spans = Dfg.compute_spans t.dfg in
    Dfg.iter_ops t.dfg (fun o ->
        match placement t o.Dfg.id with
        | None -> ()
        | Some p ->
          let s = spans.(Dfg.Op_id.to_int o.Dfg.id) in
          if not (Cfg.reaches cfg s.Dfg.early p.edge && Cfg.reaches cfg p.edge s.Dfg.late)
          then err "op %s placed outside its span" o.Dfg.name);
    (* Dependencies: producer finishes before consumer starts. *)
    Dfg.iter_ops t.dfg (fun o ->
        List.iter
          (fun pid ->
            match (placement t pid, placement t o.Dfg.id) with
            | Some pp, Some pc ->
              if pp.step > pc.step then
                err "dep %s -> %s goes backward in steps" (Dfg.op t.dfg pid).Dfg.name
                  o.Dfg.name
              else if pp.step = pc.step && pp.start +. pp.eff_delay > pc.start +. eps then
                err "dep %s -> %s violates chaining time" (Dfg.op t.dfg pid).Dfg.name
                  o.Dfg.name
            | None, _ | _, None -> ())
          (Dfg.preds t.dfg o.Dfg.id));
    (* Pipelining recurrences: loop-carried producers must land within II
       steps of their next-iteration consumers. *)
    Dfg.iter_ops t.dfg (fun o ->
        List.iter
          (fun (pid, lc) ->
            if lc then
              match (placement t pid, placement t o.Dfg.id) with
              | Some pp, Some pc ->
                if not (lc_step_ok t ~producer_step:pp.step ~consumer_step:pc.step) then
                  err "loop-carried dep %s -> %s violates the initiation interval"
                    (Dfg.op t.dfg pid).Dfg.name o.Dfg.name
              | None, _ | _, None -> ())
          (Dfg.all_preds t.dfg o.Dfg.id));
    (* Resource booking: pairwise conflicts on shared instances. *)
    List.iter
      (fun inst ->
        let ops = ops_of_inst t inst.Alloc.id in
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
            List.iter
              (fun b ->
                match (placement t a, placement t b) with
                | Some pa, Some pb ->
                  if
                    (pa.step = pb.step && edges_conflict cfg pa.edge pb.edge)
                    || (pa.step <> pb.step && steps_overlap t pa.step pb.step)
                  then
                    err "instance %d double-booked by %s and %s"
                      (Alloc.Inst_id.to_int inst.Alloc.id)
                      (Dfg.op t.dfg a).Dfg.name (Dfg.op t.dfg b).Dfg.name
                | None, _ | _, None -> ())
              rest;
            pairs rest
        in
        pairs ops;
        (* Kind/width compatibility. *)
        List.iter
          (fun o ->
            let op = Dfg.op t.dfg o in
            if not (Alloc.compatible inst ~op_kind:op.Dfg.kind ~width:op.Dfg.width) then
              err "op %s bound to incompatible instance" op.Dfg.name)
          ops)
      (Alloc.instances t.alloc);
    (* Timing: retime must succeed. *)
    (match retime t with Ok () -> () | Error v -> err "%s" v.detail)
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp ppf t =
  let by_step = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      match p with
      | Some pl ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_step pl.step) in
        Hashtbl.replace by_step pl.step ((Dfg.Op_id.of_int i, pl) :: prev)
      | None -> ())
    t.placements;
  Format.fprintf ppf "@[<v>schedule (%d steps):@," (steps_used t);
  for s = 0 to steps_used t - 1 do
    match Hashtbl.find_opt by_step s with
    | None -> Format.fprintf ppf "  step %d: (empty)@," s
    | Some ops ->
      Format.fprintf ppf "  step %d:@," s;
      List.iter
        (fun (o, pl) ->
          let op = Dfg.op t.dfg o in
          match op.Dfg.kind with
          | Dfg.Const _ -> ()
          | _ ->
            Format.fprintf ppf "    %-12s %6.0f..%6.0f ps%s@," op.Dfg.name pl.start
              (pl.start +. pl.eff_delay)
              (match pl.inst with
              | Some id -> Printf.sprintf "  on fu%d" (Alloc.Inst_id.to_int id)
              | None -> ""))
        (List.sort
           (fun (_, a) (_, b) -> Float.compare a.start b.start)
           (List.rev ops))
  done;
  Format.fprintf ppf "@]"
