let c_generated = Obs.counter "corpus.generated"

type klass = Tiny | Medium | Large | Mulheavy

let klass_name = function
  | Tiny -> "tiny"
  | Medium -> "medium"
  | Large -> "large"
  | Mulheavy -> "mulheavy"

let klass_of_name = function
  | "tiny" -> Some Tiny
  | "medium" -> Some Medium
  | "large" -> Some Large
  | "mulheavy" -> Some Mulheavy
  | _ -> None

let all_klasses = [ Tiny; Medium; Large; Mulheavy ]

let profile_of_klass : klass -> Random_design.profile = function
  | Tiny ->
    { min_ops = 8; max_ops = 24; min_states = 3; max_states = 6; mul_bias = 0.25 }
  | Medium -> Random_design.default_profile
  | Large ->
    { min_ops = 80; max_ops = 160; min_states = 8; max_states = 16; mul_bias = 0.30 }
  | Mulheavy ->
    { min_ops = 24; max_ops = 64; min_states = 4; max_states = 10; mul_bias = 0.65 }

type entry = {
  name : string;
  seed : int;
  shape : Random_design.shape;
  klass : klass;
  ii : int;
  clock_ps : float;
  ops : int;
  digest : string;
}

let default_count = 100

let design e =
  Random_design.generate
    ~profile:(profile_of_klass e.klass)
    ~shape:e.shape ~seed:e.seed ()

(* Class weights: the paper's population skews toward mid-size designs;
   Large stays rare so corpus-wide sweeps remain tractable. *)
let draw_klass rng =
  match Splitmix.int rng 10 with
  | 0 | 1 | 2 -> Tiny
  | 3 | 4 | 5 | 6 -> Medium
  | 7 -> Large
  | _ -> Mulheavy

(* II constraints: most designs unconstrained, the rest pinned to a
   realistic throughput target. *)
let draw_ii rng = [| 0; 0; 0; 2; 4; 8 |].(Splitmix.int rng 6)

let plan ?(count = default_count) ~seed () =
  let master = Splitmix.create seed in
  List.init count (fun i ->
      (* Shapes cycle so every class×shape cell is populated even for
         small counts; everything else is drawn from the master stream. *)
      let shape = List.nth Random_design.all_shapes (i mod 4) in
      let dseed = Int64.to_int (Splitmix.next_int64 master) land 0xFFFFFF in
      let klass = draw_klass master in
      let ii = draw_ii master in
      let d = Random_design.generate ~profile:(profile_of_klass klass) ~shape ~seed:dseed () in
      Obs.incr c_generated;
      {
        name = Printf.sprintf "c%03d-%s-%s" i (Random_design.shape_name shape) (klass_name klass);
        seed = dseed;
        shape;
        klass;
        ii;
        clock_ps = d.Random_design.suggested_clock;
        ops = Dfg.op_count d.Random_design.dfg;
        digest = Random_design.digest d;
      })

let magic = "slackhls-corpus v1"

let entry_line e =
  (* %h floats round-trip bit-exactly through parse_line below. *)
  Printf.sprintf "%s\t%d\t%s\t%s\t%d\t%h\t%d\t%s" e.name e.seed
    (Random_design.shape_name e.shape)
    (klass_name e.klass) e.ii e.clock_ps e.ops e.digest

let parse_entry line =
  match String.split_on_char '\t' line with
  | [ name; seed; shape; klass; ii; clock_ps; ops; digest ] -> (
    try
      match (Random_design.shape_of_name shape, klass_of_name klass) with
      | Some shape, Some klass ->
        Ok
          {
            name;
            seed = int_of_string seed;
            shape;
            klass;
            ii = int_of_string ii;
            clock_ps = float_of_string clock_ps;
            ops = int_of_string ops;
            digest;
          }
      | None, _ -> Error (Printf.sprintf "unknown shape %S" shape)
      | _, None -> Error (Printf.sprintf "unknown class %S" klass)
    with Failure _ -> Error "malformed numeric field")
  | _ -> Error "wrong column count"

let save ~path ~seed entries =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# %s\tseed=%d\tcount=%d\n" magic seed (List.length entries);
      output_string oc "name\tseed\tshape\tclass\tii\tclock_ps\tops\tdigest\n";
      List.iter (fun e -> output_string oc (entry_line e ^ "\n")) entries)

let parse_header line =
  match String.split_on_char '\t' line with
  | [ m; s; c ]
    when m = "# " ^ magic
         && String.length s > 5
         && String.sub s 0 5 = "seed="
         && String.length c > 6
         && String.sub c 0 6 = "count=" -> (
    try
      Ok
        ( int_of_string (String.sub s 5 (String.length s - 5)),
          int_of_string (String.sub c 6 (String.length c - 6)) )
    with Failure _ -> Error "malformed header numerals")
  | _ -> Error (Printf.sprintf "bad manifest header (want %S)" magic)

let load ~path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | [] -> Error "empty manifest"
  | header :: rest -> (
    match parse_header header with
    | Error e -> Error e
    | Ok (seed, count) ->
      let rows = List.filter (fun l -> l <> "" && l.[0] <> '#') rest in
      let rows =
        match rows with
        | first :: tl when String.length first >= 4 && String.sub first 0 4 = "name" -> tl
        | rows -> rows
      in
      let rec go acc i = function
        | [] ->
          let entries = List.rev acc in
          if List.length entries <> count then
            Error
              (Printf.sprintf "manifest declares %d entries but carries %d" count
                 (List.length entries))
          else Ok (seed, entries)
        | line :: tl -> (
          match parse_entry line with
          | Ok e -> go (e :: acc) (i + 1) tl
          | Error e -> Error (Printf.sprintf "entry %d: %s" i e))
      in
      go [] 0 rows)

let verify ~path =
  match load ~path with
  | Error e -> Error e
  | Ok (seed, recorded) -> (
    let fresh = plan ~count:(List.length recorded) ~seed () in
    let mismatch =
      List.find_opt
        (fun (a, b) -> entry_line a <> entry_line b)
        (List.combine recorded fresh)
    in
    match mismatch with
    | None -> Ok (List.length recorded)
    | Some (a, b) ->
      Error
        (Printf.sprintf "digest drift at %s:\n  manifest: %s\n  regenerated: %s" a.name
           (entry_line a) (entry_line b)))
