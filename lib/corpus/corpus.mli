(** The 100-design validation corpus.

    The paper reports results "on over 100 customer designs" (§VII); those
    are confidential, so this module grows a surrogate: a seeded, digest-
    stable population of {!Random_design} instances covering mixed CFG
    shapes (straight-line, diamond, loop, loop nest), size classes,
    operation mixes and II constraints.  The population is fully determined
    by [(seed, count)]; every entry's {!Random_design.digest} is recorded
    in a committed manifest ([corpus/manifest.tsv]) so that any drift in
    the generator — intentional or not — is caught by [hlsc corpus
    --verify] in CI rather than silently changing every frontier. *)

type klass = Tiny | Medium | Large | Mulheavy

val klass_name : klass -> string
(** Lowercase stable name ("tiny", "medium", "large", "mulheavy"). *)

val klass_of_name : string -> klass option
val all_klasses : klass list

val profile_of_klass : klass -> Random_design.profile

type entry = {
  name : string;  (** stable corpus name, e.g. ["c017-diamond-medium"] *)
  seed : int;  (** per-design generator seed (derived from the master) *)
  shape : Random_design.shape;
  klass : klass;
  ii : int;  (** initiation-interval constraint; 0 = unconstrained *)
  clock_ps : float;  (** the design's suggested clock period *)
  ops : int;  (** operation count of the generated DFG *)
  digest : string;  (** {!Random_design.digest} of the generated design *)
}

val default_count : int
(** 100 — the paper's corpus size. *)

val plan : ?count:int -> seed:int -> unit -> entry list
(** Deterministically derive [count] entries from [seed].  Generates each
    design once to record its op count and digest; bumps the
    [corpus.generated] counter per design. *)

val design : entry -> Random_design.t
(** Re-generate the design behind an entry (pure function of the entry's
    seed/shape/klass). *)

val save : path:string -> seed:int -> entry list -> unit
(** Write the manifest TSV (header line carries [seed] and [count] so
    {!verify} can regenerate without external knowledge). *)

val load : path:string -> (int * entry list, string) result
(** Parse a manifest; returns the master seed and the entries. *)

val verify : path:string -> (int, string) result
(** Regenerate the population from the manifest's own header and compare
    every field of every entry.  [Ok n] means all [n] entries reproduce
    bit-exactly; [Error _] names the first divergence. *)
