let c_requests = Obs.counter "serve.requests"
let c_admitted = Obs.counter "serve.admitted"
let c_shed = Obs.counter "serve.shed"
let c_completed = Obs.counter "serve.completed"
let d_inflight = Obs.dist "serve.inflight"

type decision = Admitted | Shed | Draining

type t = {
  hw : int;
  queue_depth : unit -> int;
  m : Mutex.t;
  mutable inflight : int;
  mutable draining : bool;
}

let create ~high_water ~queue_depth =
  {
    hw = max 1 high_water;
    queue_depth;
    m = Mutex.create ();
    inflight = 0;
    draining = false;
  }

let high_water t = t.hw

(* Called with [t.m] held.  Events.emit takes the events mutex inside; no
   hook in this codebase takes admission locks, so the order is safe. *)
let sample t =
  Obs.observe d_inflight (float_of_int t.inflight);
  Obs.Events.emit
    (Obs.Events.Serve_sample
       {
         queue_depth = t.queue_depth ();
         inflight = t.inflight;
         admitted = Obs.value c_admitted;
         shed = Obs.value c_shed;
       })

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let try_admit t =
  Obs.incr c_requests;
  locked t (fun () ->
      let d =
        if t.draining then Draining
        else if t.inflight >= t.hw then begin
          Obs.incr c_shed;
          Shed
        end
        else begin
          t.inflight <- t.inflight + 1;
          Obs.incr c_admitted;
          Admitted
        end
      in
      sample t;
      d)

let finish t =
  locked t (fun () ->
      t.inflight <- t.inflight - 1;
      Obs.incr c_completed;
      sample t)

let inflight t = locked t (fun () -> t.inflight)
let start_drain t = locked t (fun () -> t.draining <- true)
let draining t = locked t (fun () -> t.draining)

let wait_idle t ~deadline_s =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    if inflight t = 0 then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()
