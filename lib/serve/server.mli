(** The synthesis daemon: one process, one warm {!Eval_cache}, one
    persistent {!Domain_pool}, many concurrent connections.

    Requests arrive as {!Protocol} frames on a Unix or loopback TCP
    socket; each connection gets a systhread that parses requests and
    executes them inline, submitting evaluation batches to the shared
    pool.  [run] requests are singleton sweeps, so both request kinds go
    through {!Explore.run} and share the cache, the journal and the
    determinism guarantees.

    Supervision, in the paper's graceful-degradation spirit:
    - {b deadlines}: each request runs under
      [Cancel.any [drain; Cancel.after deadline]] — its own budget plus
      the daemon's drain token.  Fired request deadlines yield
      [timed_out]/[partial] responses, never a wedged connection.
    - {b admission control}: past [high_water] requests in flight new
      work is shed with [overloaded] + a retry-after hint ({!Admission}).
    - {b crash containment}: a crashed evaluation is data
      ([Eval_cache.Crash]); the daemon retries the request's crashed
      points up to [request_retries] times with exponential backoff
      ([Explore.run ~recheck_crashes]) and keeps serving either way.
    - {b graceful drain}: on SIGTERM/SIGINT (the CLI calls {!drain}), a
      shutdown request, or [drain_after_points], the daemon stops
      accepting, lets in-flight requests finish under [drain_deadline],
      journals completed points, saves the cache, and exits 5 if any
      sweep was left resumable — the same exit-5/[--resume] contract as
      [hlsc explore].

    As a {e distributed-sweep worker} the daemon additionally executes
    [shard_explore] leases (evaluate exactly the leased point keys, answer
    with the completed records framed as a journal payload) and answers
    [health] probes — control requests that bypass admission and carry
    per-lease progress plus the already-durable record lines, which is
    what lets a dispatch supervisor salvage a worker that dies
    mid-lease. *)

type address = Unix_sock of string | Tcp of int  (** loopback only *)

type config = {
  address : address;
  jobs : int;  (** worker domains in the shared pool *)
  high_water : int;  (** max requests in flight before shedding *)
  drain_deadline : float;  (** seconds to wait for in-flight work on drain *)
  read_timeout : float;  (** per-connection mid-frame stall budget *)
  default_deadline : float option;  (** per-request deadline fallback *)
  point_deadline : float option;
  request_retries : int;  (** re-runs of a request's crashed points *)
  backoff : float;  (** base of the exponential retry/retry-after hint *)
  max_frame_bytes : int;
  lib : Library.t;
  flow_config : Flows.config;
  designs : (string * (unit -> Dfg.t * float)) list;
      (** name -> (pure builder, default clock); the CLI passes its
          builtin designs *)
  resolver : (string -> (unit -> Dfg.t * float) option) option;
      (** fallback lookup for design names not in [designs] — the CLI
          injects a parser for self-describing names (corpus entries) so
          distributed corpus sweeps need no pre-registration *)
  journal_path : string option;
  cache_path : string option;  (** loaded at start, saved on drain *)
  drain_after_points : int option;
      (** test hook: trigger the drain token after this many completed
          point evaluations — the deterministic mid-sweep-drain used by
          the dune rules and CI *)
  telemetry : bool;
      (** attach a heartbeat-sized {!Obs.Telemetry} snapshot to [health]
          replies (the full snapshot always answers the [telemetry] op) *)
  metrics_port : int option;
      (** serve {!Obs.Expo.render} over loopback HTTP on this port — a
          Prometheus scrape endpoint that lives and dies with the daemon *)
}

val default_config : config
(** Unix socket ["hlsc.sock"], jobs 2, high water 4, drain deadline 30s,
    read timeout 5s, no deadlines, 1 retry, backoff 50ms, default
    library and flow config, no designs, no journal/cache. *)

type t

val start : config -> (t, string) result
(** Bind and listen; load the cache; open the journal; spawn the worker
    pool.  No connection is accepted until {!serve}. *)

val drain : reason:string -> t -> unit
(** Trigger the drain token (idempotent; first reason wins).  Safe from
    signal handlers and hooks — a single atomic write. *)

val serve : t -> int
(** Accept/dispatch until the drain token fires, then run the drain
    sequence and return the process exit code: 5 when resumable work was
    left behind (an interrupted sweep, or the drain deadline expired with
    requests still in flight), 0 otherwise. *)

val once :
  config -> request_json:string -> ((string * int) list * int, string) result
(** Self-test mode, [hlsc serve --once]: start on a private socket in a
    temp directory, run a scripted in-process client that sends each
    newline-separated request in [request_json] in order, drain, and
    return the response payloads (paired with their
    {!Protocol.exit_code_of_status}) plus the daemon's own exit code. *)
