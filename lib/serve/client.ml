type addr = Unix_path of string | Tcp of string * int

type t = { conn : Protocol.conn }

(* Every transparent retry (shed/draining response or a refused/reset
   connect), across all clients in the process. *)
let c_retries = Obs.counter "serve.client.retries"

let addr_name = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* A refused or reset connect is the signature of a daemon mid-restart —
   transient, worth the same bounded backoff as a shed request.  Anything
   else (bad path, unroutable host, permissions) is config, not timing. *)
let transient_connect_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT -> true
  | _ -> false

let connect_classified addr =
  match
    match addr with
    | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path) with e -> Unix.close fd; raise e);
      fd
    | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (ip, port)) with e -> Unix.close fd; raise e);
      fd
  with
  | fd -> Ok { conn = Protocol.make fd }
  | exception Unix.Unix_error (e, _, _) ->
    Error
      ( transient_connect_error e,
        Printf.sprintf "%s: cannot connect: %s" (addr_name addr)
          (Unix.error_message e) )
  | exception Not_found ->
    Error (false, Printf.sprintf "%s: cannot resolve host" (addr_name addr))

let connect addr = Result.map_error snd (connect_classified addr)

let conn t = t.conn

let close t = try Unix.close (Protocol.fd t.conn) with Unix.Unix_error _ -> ()

let request ?deadline_s t payload =
  match Protocol.write_frame (Protocol.fd t.conn) payload with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
  | () -> (
    let should_stop =
      match deadline_s with
      | None -> fun () -> false
      | Some s ->
        let deadline = Unix.gettimeofday () +. s in
        fun () -> Unix.gettimeofday () >= deadline
    in
    (* The response may legitimately take a whole sweep to arrive: that is
       the idle wait, which [should_stop] bounds.  The stall budget only
       covers a response torn mid-frame. *)
    match Protocol.read_frame ~stall:30.0 ~should_stop t.conn with
    | Protocol.Frame r -> Ok r
    | Protocol.Eof -> Error "daemon closed the connection before responding"
    | Protocol.Stalled -> Error "response stalled mid-frame"
    | Protocol.Too_big n -> Error (Printf.sprintf "oversized response (%d bytes)" n)
    | Protocol.Stopped -> Error "deadline expired waiting for response")

let one_shot_classified ?deadline_s addr payload =
  match connect_classified addr with
  | Error _ as e -> e
  | Ok t ->
    Fun.protect ~finally:(fun () -> close t) (fun () ->
        (* Failures past the connect are fail-fast: a torn or oversized
           response on an established connection is not a restart. *)
        Result.map_error (fun m -> (false, m)) (request ?deadline_s t payload))

let one_shot ?deadline_s addr payload =
  Result.map_error snd (one_shot_classified ?deadline_s addr payload)

let retry_after_of body =
  match Protocol.response_status body with
  | Error _ -> None
  | Ok (status, json) -> (
    (* [overloaded] is a shed with a headroom hint; [draining] means this
       daemon instance is going away, but under a supervisor it restarts —
       both are worth the same bounded retry.  Everything else ([partial]
       needs --resume, [error] needs a fixed request) is final. *)
    if status <> "overloaded" && status <> "draining" then None
    else
      match json with
      | Obs.Json.Obj fields -> (
        match List.assoc_opt "retry_after_s" fields with
        | Some (Obs.Json.Float s) -> Some s
        | Some (Obs.Json.Int s) -> Some (float_of_int s)
        | _ -> Some 0.05)
      | _ -> Some 0.05)

let one_shot_retry ?deadline_s ?(retries = 0) ?on_retry addr payload =
  let rec go attempt =
    let retry wait =
      (match on_retry with
      | Some f -> f ~attempt:(attempt + 1) ~wait
      | None -> ());
      Obs.incr c_retries;
      if wait > 0.0 then Unix.sleepf wait;
      go (attempt + 1)
    in
    match one_shot_classified ?deadline_s addr payload with
    | Error (true, _) when attempt < retries ->
      (* No server to supply a hint: exponential client-side backoff. *)
      retry (0.05 *. (2.0 ** float_of_int attempt))
    | Error (_, m) -> Error m
    | Ok body -> (
      match retry_after_of body with
      | Some wait when attempt < retries ->
        (* The server told us when it expects headroom; honoring the hint
           beats a client-side guess. *)
        retry wait
      | Some _ | None -> Ok body)
  in
  go 0
