(** Admission control and load shedding for the synthesis daemon.

    One gauge matters: requests in the system (admitted, not yet
    finished).  Past [high_water] the daemon sheds — an immediate
    [overloaded] response with a retry hint — rather than queueing
    unboundedly in front of the shared domain pool; once a drain starts,
    new work gets [draining] instead.  Control-plane requests (ping,
    stats, shutdown) bypass admission entirely.

    Telemetry: counters [serve.requests], [serve.admitted], [serve.shed],
    [serve.completed]; distribution [serve.inflight]; and one
    [Serve_sample] event per transition (admit, shed, finish) carrying
    the queue-depth and inflight gauges — the serving counterpart of the
    pool's [Worker_sample]. *)

type t

type decision =
  | Admitted
  | Shed  (** at or above high water — answer [overloaded] *)
  | Draining  (** drain in progress — answer [draining] *)

val create : high_water:int -> queue_depth:(unit -> int) -> t
(** [queue_depth] samples the backlog gauge for events and stats —
    the daemon passes {!Domain_pool.pending} of its shared pool. *)

val try_admit : t -> decision
(** Also the counting point: every call bumps [serve.requests], and the
    decision bumps [serve.admitted] or [serve.shed]. *)

val finish : t -> unit
(** Release one admitted slot.  Must be called exactly once per
    [Admitted] (the server wraps execution in [Fun.protect]). *)

val inflight : t -> int
val high_water : t -> int

val start_drain : t -> unit
(** All subsequent {!try_admit} calls return [Draining]. *)

val draining : t -> bool

val wait_idle : t -> deadline_s:float -> bool
(** Block until every admitted request has finished, or [deadline_s]
    elapses; [true] iff fully drained.  Polling (50ms), which is fine for
    a once-per-shutdown wait. *)
