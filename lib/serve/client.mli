(** Minimal client for the synthesis daemon — what [hlsc request] and the
    [--once] self-test speak.  One connection, sequential
    request/response pairs; concurrency is many clients, not pipelining. *)

type addr = Unix_path of string | Tcp of string * int

type t

val connect : addr -> (t, string) result
(** [Error] carries the address in the message. *)

val conn : t -> Protocol.conn
(** The underlying framed connection, for callers that need to drive
    {!Protocol.read_frame} with their own stall/stop policy (the dispatch
    supervisor's lease reader). *)

val close : t -> unit

val request : ?deadline_s:float -> t -> string -> (string, string) result
(** Send one request payload, block for the one response payload.
    [deadline_s] bounds the whole wait (the server may legitimately take
    a sweep's worth of time; default: wait forever).  Transport failures
    — daemon gone, torn response frame, oversized response — are
    [Error]. *)

val one_shot : ?deadline_s:float -> addr -> string -> (string, string) result
(** Connect, {!request}, close. *)

val one_shot_retry :
  ?deadline_s:float ->
  ?retries:int ->
  ?on_retry:(attempt:int -> wait:float -> unit) ->
  addr ->
  string ->
  (string, string) result
(** {!one_shot}, but transient conditions are retried with bounded
    backoff, up to [retries] extra attempts (default 0 = behave like
    {!one_shot}).  Transient means: an [overloaded] response (shed — sleep
    for its [retry_after_s] hint), a [draining] response, or a
    refused/reset connect ([ECONNREFUSED]/[ECONNRESET]/[ENOENT] — a
    daemon mid-restart; exponential client-side backoff, no server hint
    available).  Each fresh attempt is a fresh connection, counted on
    [serve.client.retries]; [on_retry] fires before each backoff sleep —
    the CLI logs it.  Everything else stays fail-fast: [partial] work
    needs [explore --resume] and a torn or oversized response on an
    established connection is not a restart. *)
