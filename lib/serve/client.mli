(** Minimal client for the synthesis daemon — what [hlsc request] and the
    [--once] self-test speak.  One connection, sequential
    request/response pairs; concurrency is many clients, not pipelining. *)

type addr = Unix_path of string | Tcp of string * int

type t

val connect : addr -> (t, string) result
(** [Error] carries the address in the message. *)

val close : t -> unit

val request : ?deadline_s:float -> t -> string -> (string, string) result
(** Send one request payload, block for the one response payload.
    [deadline_s] bounds the whole wait (the server may legitimately take
    a sweep's worth of time; default: wait forever).  Transport failures
    — daemon gone, torn response frame, oversized response — are
    [Error]. *)

val one_shot : ?deadline_s:float -> addr -> string -> (string, string) result
(** Connect, {!request}, close. *)
