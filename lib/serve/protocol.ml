module J = Obs.Json

let c_frames = Obs.counter "serve.frames"
let c_malformed = Obs.counter "serve.malformed"

let default_max_frame = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Framing (pure) *)

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type split =
  | Complete of string * string
  | Incomplete
  | Oversized of int

let split ?(max_bytes = default_max_frame) buf =
  let len = String.length buf in
  if len < 4 then Incomplete
  else
    let n = Int32.to_int (String.get_int32_be buf 0) in
    if n < 0 || n > max_bytes then Oversized n
    else if len < 4 + n then Incomplete
    else Complete (String.sub buf 4 n, String.sub buf (4 + n) (len - 4 - n))

(* ------------------------------------------------------------------ *)
(* Framed connections *)

type conn = { cfd : Unix.file_descr; mutable pending : string }

let make cfd = { cfd; pending = "" }
let fd c = c.cfd

type read_result =
  | Frame of string
  | Eof
  | Stalled
  | Too_big of int
  | Stopped

(* The poll tick bounds both the should_stop latency while idle and the
   stall-detection granularity mid-frame. *)
let tick = 0.2

let read_frame ?(max_bytes = default_max_frame) ?(stall = 30.0)
    ?(should_stop = fun () -> false) c =
  let chunk = Bytes.create 4096 in
  let rec wait stall_deadline =
    match split ~max_bytes c.pending with
    | Complete (payload, rest) ->
      c.pending <- rest;
      Obs.incr c_frames;
      Frame payload
    | Oversized n -> Too_big n
    | Incomplete ->
      let mid = c.pending <> "" in
      if mid && Unix.gettimeofday () > stall_deadline then Stalled
      else if (not mid) && should_stop () then Stopped
      else begin
        match Unix.select [ c.cfd ] [] [] tick with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait stall_deadline
        | [], _, _ -> wait stall_deadline
        | _ -> (
          match Unix.read c.cfd chunk 0 (Bytes.length chunk) with
          | 0 -> if mid then Stalled else Eof
          | k ->
            c.pending <- c.pending ^ Bytes.sub_string chunk 0 k;
            wait (Unix.gettimeofday () +. stall)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait stall_deadline
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            if mid then Stalled else Eof)
      end
  in
  wait (Unix.gettimeofday () +. stall)

let write_frame fd payload =
  let b = frame payload in
  let n = String.length b in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd b off (n - off))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Requests *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Run of { design : string; clock : float option; flow : string }
  | Explore of {
      design : string;
      clocks : string;
      flows : string;
      iis : string;
      recover : string;
      point_deadline : float option;
    }
  | Shard_explore of {
      design : string;
      clocks : string;
      flows : string;
      iis : string;
      recover : string;
      point_deadline : float option;
      lease : string;
      keys : string list;
    }
  | Health
  | Telemetry

type trace_ctx = {
  trace_id : string;
  parent : string;
  lease : string option;
}

type envelope = {
  id : string;
  deadline_s : float option;
  trace : trace_ctx option;
  req : request;
}

let ( let* ) = Result.bind

let obj_fields = function
  | J.Obj fields -> Ok fields
  | _ -> Error "request must be a JSON object"

let str_field ?default fields name =
  match (List.assoc_opt name fields, default) with
  | Some (J.String s), _ -> Ok s
  | Some _, _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing field %S" name)

let float_field_opt fields name =
  match List.assoc_opt name fields with
  | None | Some J.Null -> Ok None
  | Some (J.Float f) -> Ok (Some f)
  | Some (J.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let str_list_field fields name =
  match List.assoc_opt name fields with
  | Some (J.List items) ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | J.String s -> Ok (s :: acc)
        | _ ->
          Error (Printf.sprintf "field %S must be a list of strings" name))
      (Ok []) items
    |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "field %S must be a list of strings" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let trace_of_fields fields =
  match List.assoc_opt "trace" fields with
  | None | Some J.Null -> Ok None
  | Some j ->
    let* tf = obj_fields j in
    let* trace_id = str_field tf "id" in
    let* parent = str_field ~default:"" tf "parent" in
    let* lease =
      match List.assoc_opt "lease" tf with
      | None | Some J.Null -> Ok None
      | Some (J.String s) -> Ok (Some s)
      | Some _ -> Error "trace field \"lease\" must be a string"
    in
    Ok (Some { trace_id; parent; lease })

let trace_to_json { trace_id; parent; lease } =
  J.Obj
    ([ ("id", J.String trace_id); ("parent", J.String parent) ]
    @ match lease with Some l -> [ ("lease", J.String l) ] | None -> [])

let parse_request payload =
  match J.parse payload with
  | Error m ->
    Obs.incr c_malformed;
    Error ("malformed JSON: " ^ m)
  | Ok json ->
    let r =
      let* fields = obj_fields json in
      let* id = str_field ~default:"" fields "id" in
      let* deadline_s = float_field_opt fields "deadline_s" in
      let* trace = trace_of_fields fields in
      let* op = str_field fields "op" in
      let* req =
        match op with
        | "ping" -> Ok Ping
        | "stats" -> Ok Stats
        | "shutdown" -> Ok Shutdown
        | "health" -> Ok Health
        | "telemetry" -> Ok Telemetry
        | "run" ->
          let* design = str_field fields "design" in
          let* clock = float_field_opt fields "clock" in
          let* flow = str_field ~default:"slack" fields "flow" in
          Ok (Run { design; clock; flow })
        | "explore" ->
          let* design = str_field fields "design" in
          let* clocks = str_field fields "clocks" in
          let* flows = str_field ~default:"slack" fields "flows" in
          let* iis = str_field ~default:"none" fields "iis" in
          let* recover = str_field ~default:"on" fields "recover" in
          let* point_deadline = float_field_opt fields "point_deadline_s" in
          Ok (Explore { design; clocks; flows; iis; recover; point_deadline })
        | "shard_explore" ->
          let* design = str_field fields "design" in
          let* clocks = str_field fields "clocks" in
          let* flows = str_field ~default:"slack" fields "flows" in
          let* iis = str_field ~default:"none" fields "iis" in
          let* recover = str_field ~default:"on" fields "recover" in
          let* point_deadline = float_field_opt fields "point_deadline_s" in
          let* lease = str_field fields "lease" in
          let* keys = str_list_field fields "keys" in
          Ok
            (Shard_explore
               { design; clocks; flows; iis; recover; point_deadline; lease; keys })
        | op ->
          Error
            (Printf.sprintf
               "unknown op %S (try: ping, stats, shutdown, health, telemetry, \
                run, explore, shard_explore)" op)
      in
      Ok { id; deadline_s; trace; req }
    in
    (match r with Error _ -> Obs.incr c_malformed | Ok _ -> ());
    r

let request_to_json { id; deadline_s; trace; req } =
  let common = [ ("id", J.String id) ] in
  let deadline =
    match deadline_s with Some s -> [ ("deadline_s", J.Float s) ] | None -> []
  in
  let trace_fields =
    match trace with Some t -> [ ("trace", trace_to_json t) ] | None -> []
  in
  let op_fields =
    match req with
    | Ping -> [ ("op", J.String "ping") ]
    | Stats -> [ ("op", J.String "stats") ]
    | Shutdown -> [ ("op", J.String "shutdown") ]
    | Health -> [ ("op", J.String "health") ]
    | Telemetry -> [ ("op", J.String "telemetry") ]
    | Run { design; clock; flow } ->
      [ ("op", J.String "run"); ("design", J.String design);
        ("flow", J.String flow) ]
      @ (match clock with Some c -> [ ("clock", J.Float c) ] | None -> [])
    | Explore { design; clocks; flows; iis; recover; point_deadline } ->
      [ ("op", J.String "explore"); ("design", J.String design);
        ("clocks", J.String clocks); ("flows", J.String flows);
        ("iis", J.String iis); ("recover", J.String recover) ]
      @ (match point_deadline with
        | Some s -> [ ("point_deadline_s", J.Float s) ]
        | None -> [])
    | Shard_explore { design; clocks; flows; iis; recover; point_deadline; lease; keys }
      ->
      [ ("op", J.String "shard_explore"); ("design", J.String design);
        ("clocks", J.String clocks); ("flows", J.String flows);
        ("iis", J.String iis); ("recover", J.String recover) ]
      @ (match point_deadline with
        | Some s -> [ ("point_deadline_s", J.Float s) ]
        | None -> [])
      @ [ ("lease", J.String lease);
          ("keys", J.List (List.map (fun k -> J.String k) keys)) ]
  in
  J.Obj (common @ deadline @ trace_fields @ op_fields)

(* ------------------------------------------------------------------ *)
(* Responses *)

let response ~id ~status fields =
  J.to_string
    (J.Obj (("id", J.String id) :: ("status", J.String status) :: fields))

let error_response ~id msg = response ~id ~status:"error" [ ("error", J.String msg) ]

let response_status payload =
  match J.parse payload with
  | Error m -> Error ("malformed response JSON: " ^ m)
  | Ok json -> (
    let* fields = obj_fields json in
    match List.assoc_opt "status" fields with
    | Some (J.String s) -> Ok (s, json)
    | Some _ | None -> Error "response has no string \"status\" field")

let exit_code_of_status = function
  | "ok" -> 0
  | "error" -> 2
  | "failed" | "timed_out" -> 4
  | "crashed" -> 1
  | "overloaded" | "draining" | "partial" -> 5
  | _ -> 1
