module J = Obs.Json

let c_connections = Obs.counter "serve.connections"
let c_slow_clients = Obs.counter "serve.slow_clients"
let c_oversized = Obs.counter "serve.oversized"
let c_retried = Obs.counter "serve.request_retries"
let c_interrupted = Obs.counter "serve.interrupted"
let c_metrics_scrapes = Obs.counter "serve.metrics.scrapes"

let op_name = function
  | Protocol.Ping -> "ping"
  | Protocol.Stats -> "stats"
  | Protocol.Shutdown -> "shutdown"
  | Protocol.Health -> "health"
  | Protocol.Telemetry -> "telemetry"
  | Protocol.Run _ -> "run"
  | Protocol.Explore _ -> "explore"
  | Protocol.Shard_explore _ -> "shard_explore"

(* Per-op request latency: counts alone show overload only once the queue
   is already deep; the p95 moves first. *)
let latency_dist op = Obs.dist ("serve.latency." ^ op)

let latency_ops =
  [ "ping"; "stats"; "shutdown"; "health"; "telemetry"; "run"; "explore";
    "shard_explore" ]

type address = Unix_sock of string | Tcp of int

type config = {
  address : address;
  jobs : int;
  high_water : int;
  drain_deadline : float;
  read_timeout : float;
  default_deadline : float option;
  point_deadline : float option;
  request_retries : int;
  backoff : float;
  max_frame_bytes : int;
  lib : Library.t;
  flow_config : Flows.config;
  designs : (string * (unit -> Dfg.t * float)) list;
  resolver : (string -> (unit -> Dfg.t * float) option) option;
  journal_path : string option;
  cache_path : string option;
  drain_after_points : int option;
  telemetry : bool;
  metrics_port : int option;
}

let default_config =
  {
    address = Unix_sock "hlsc.sock";
    jobs = 2;
    high_water = 4;
    drain_deadline = 30.0;
    read_timeout = 5.0;
    default_deadline = None;
    point_deadline = None;
    request_retries = 1;
    backoff = 0.05;
    max_frame_bytes = Protocol.default_max_frame;
    lib = Library.default;
    flow_config = Flows.default_config;
    designs = [];
    resolver = None;
    journal_path = None;
    cache_path = None;
    drain_after_points = None;
    telemetry = false;
    metrics_port = None;
  }

(* Inflight progress of one shard lease, updated from worker domains via
   [Explore.run ~on_point] and snapshotted by the Health probe: the lines
   here are already fsync'd in the daemon's journal, so a supervisor that
   saw them in a heartbeat may salvage them when this daemon dies. *)
type lease_progress = {
  l_total : int;
  l_mu : Mutex.t;
  l_records : (string, string) Hashtbl.t;  (* cache key -> entry line *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  metrics_fd : Unix.file_descr option;
  pool : Domain_pool.pool;
  cache : Eval_cache.t;
  journal : Journal.writer option;
  admission : Admission.t;
  drain_tok : Cancel.t;
  interrupted : bool Atomic.t;
  leases : (string, lease_progress) Hashtbl.t;
  leases_mu : Mutex.t;
  note_point : unit -> unit;  (* drain-after-points bookkeeping *)
}

let drain ~reason t = Cancel.trigger ~reason t.drain_tok
let draining t = Cancel.reason t.drain_tok <> None

(* ------------------------------------------------------------------ *)
(* Startup *)

let bind_listener = function
  | Unix_sock path ->
    (* A stale socket file from a killed daemon would make bind fail;
       removing it is safe because a live daemon holds the fd, not the
       name. *)
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd

let ( let* ) = Result.bind

let start cfg =
  let* cache =
    match cfg.cache_path with
    | None -> Ok (Eval_cache.create ())
    | Some path -> Eval_cache.load ~path
  in
  let* journal =
    match cfg.journal_path with
    | None -> Ok None
    | Some path -> (
      match Journal.start ~path ~fresh:false with
      | w -> Ok (Some w)
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  in
  let* listen_fd =
    match bind_listener cfg.address with
    | fd -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      Error ("cannot bind socket: " ^ Unix.error_message e)
    | exception Sys_error m -> Error m
  in
  Unix.listen listen_fd 64;
  let* metrics_fd =
    match cfg.metrics_port with
    | None -> Ok None
    | Some port -> (
      match bind_listener (Tcp port) with
      | fd ->
        Unix.listen fd 16;
        Ok (Some fd)
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot bind metrics port %d: %s" port
             (Unix.error_message e)))
  in
  (* A client that dies mid-response must cost one EPIPE, not the whole
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let pool = Domain_pool.create ~jobs:(max 1 cfg.jobs) in
  let drain_tok = Cancel.manual () in
  (* Deterministic mid-sweep drain for tests: every completed point in
     this daemon funnels through [sweep_with_retries]'s on_point, so the
     counter fires the drain token after exactly [k] evaluations — and
     only this daemon's, which matters when several servers share a
     process (in-process tests). *)
  let note_point =
    match cfg.drain_after_points with
    | None -> fun () -> ()
    | Some k ->
      let count = Atomic.make 0 in
      fun () ->
        if Atomic.fetch_and_add count 1 + 1 = k then
          Cancel.trigger ~reason:"drain-after-points" drain_tok
  in
  let t =
    {
      cfg;
      listen_fd;
      metrics_fd;
      pool;
      cache;
      journal;
      admission =
        Admission.create ~high_water:cfg.high_water
          ~queue_depth:(fun () -> Domain_pool.pending pool);
      drain_tok;
      interrupted = Atomic.make false;
      leases = Hashtbl.create 8;
      leases_mu = Mutex.create ();
      note_point;
    }
  in
  Ok t

(* ------------------------------------------------------------------ *)
(* Request execution *)

let flow_of_name = function
  | "conventional" | "conv" -> Ok Flows.Conventional
  | "slowest" | "slowest-first" -> Ok Flows.Slowest_first
  | "slack" | "slack-based" -> Ok Flows.Slack_based
  | s ->
    Error (Printf.sprintf "unknown flow %S (try: conventional, slowest, slack)" s)

let lookup_design t name =
  let found =
    match List.assoc_opt name t.cfg.designs with
    | Some _ as mk -> mk
    | None ->
      (* The resolver hook lets the embedding CLI answer self-describing
         design names (e.g. corpus entries) without this library knowing
         how to parse them. *)
      Option.bind t.cfg.resolver (fun f -> f name)
  in
  match found with
  | Some mk ->
    let _, default_clock = mk () in
    Ok (default_clock, fun () -> fst (mk ()))
  | None ->
    Error
      (Printf.sprintf "unknown design %S (try: %s)" name
         (String.concat ", " (List.map fst t.cfg.designs)))

(* Run the sweep under the request's cancel token, re-running crashed
   points with exponential backoff: a crash may be transient, and
   [recheck_crashes] makes the re-run treat recorded crashes as misses
   while every completed point still comes from the warm cache. *)
let sweep_with_retries ?select ?on_point t ~cancel ~point_deadline ~name ~build
    grid =
  let on_point ck summary =
    t.note_point ();
    Option.iter (fun f -> f ck summary) on_point
  in
  let rec attempt n recheck =
    let outcome =
      Explore.run ~pool:t.pool ~recheck_crashes:recheck ?point_deadline
        ~cancel ~cache:t.cache ?journal:t.journal ?select ~on_point
        ~lib:t.cfg.lib ~config:t.cfg.flow_config ~name ~build grid
    in
    if
      outcome.Explore.crashed > 0
      && n < t.cfg.request_retries
      && Cancel.reason cancel = None
    then begin
      Obs.incr c_retried;
      Thread.delay (t.cfg.backoff *. (2.0 ** float_of_int n));
      attempt (n + 1) true
    end
    else outcome
  in
  attempt 0 false

let request_cancel t deadline_s =
  let deadline =
    match (deadline_s, t.cfg.default_deadline) with
    | Some s, _ | None, Some s -> Cancel.after ~seconds:s
    | None, None -> Cancel.never
  in
  (* Drain first: when both fire, the drain reason wins and the response
     is [partial] (resumable), not [timed_out]. *)
  Cancel.any [ t.drain_tok; deadline ]

(* A response must expose only what is deterministic across cache state:
   statuses, areas and delays are; evaluated/hit/resumed counts are not.
   The concurrent-vs-sequential byte-identity test depends on this. *)
let summary_fields (s : Eval_cache.summary) =
  [
    ("area", J.Float s.Eval_cache.area);
    ("steps", J.Int s.Eval_cache.steps);
    ("delay_ps", J.Float s.Eval_cache.delay_ps);
    ("recoveries", J.Int s.Eval_cache.recoveries);
  ]
  @
  if s.Eval_cache.error = "" then []
  else [ ("point_error", J.String s.Eval_cache.error) ]

let frontier_json (outcome : Explore.outcome) =
  J.List
    (List.map
       (fun (e : Explore.point_result Pareto.entry) ->
         let r = e.Pareto.tag in
         J.Obj
           (("key", J.String r.Explore.pkey)
           :: summary_fields r.Explore.summary))
       outcome.Explore.frontier)

let note_interrupted t ~cancel (outcome : Explore.outcome) =
  if outcome.Explore.pending > 0 && Cancel.reason cancel <> Some "deadline"
  then begin
    (* Drained mid-sweep: the journal holds the completed prefix, so the
       daemon owes its caller an exit 5. *)
    Atomic.set t.interrupted true;
    Obs.incr c_interrupted
  end

let explore_status ~cancel (outcome : Explore.outcome) =
  if outcome.Explore.pending > 0 then
    if Cancel.reason cancel = Some "deadline" then "timed_out" else "partial"
  else if outcome.Explore.total > 0 && outcome.Explore.frontier = [] then
    "failed"
  else "ok"

let counts_fields (outcome : Explore.outcome) =
  [
    ("total", J.Int outcome.Explore.total);
    ("failed", J.Int outcome.Explore.failed);
    ("timed_out_points", J.Int outcome.Explore.timed_out);
    ("crashed", J.Int outcome.Explore.crashed);
    ("pending", J.Int outcome.Explore.pending);
  ]

let execute_explore t ~id ~deadline_s ~design ~clocks ~flows ~iis ~recover
    ~point_deadline =
  match lookup_design t design with
  | Error m -> Protocol.error_response ~id m
  | Ok (_, build) -> (
    match Explore_grid.of_specs ~clocks ~flows ~iis ~recover () with
    | Error m -> Protocol.error_response ~id m
    | Ok grid ->
      let cancel = request_cancel t deadline_s in
      let point_deadline =
        match point_deadline with Some s -> Some s | None -> t.cfg.point_deadline
      in
      let outcome =
        sweep_with_retries t ~cancel ~point_deadline ~name:design ~build grid
      in
      note_interrupted t ~cancel outcome;
      Protocol.response ~id ~status:(explore_status ~cancel outcome)
        (("design", J.String design)
        :: (counts_fields outcome @ [ ("frontier", frontier_json outcome) ])))

(* One lease of a distributed sweep: evaluate exactly the leased point
   keys, report per-point progress into the lease registry (where the
   Health probe can see it), and answer with every completed record framed
   as a journal payload — full cache keys, so the supervisor can validate
   the configuration fingerprint and merge without re-deriving anything. *)
let execute_shard_explore t ~id ~deadline_s ~design ~clocks ~flows ~iis
    ~recover ~point_deadline ~lease ~keys =
  match lookup_design t design with
  | Error m -> Protocol.error_response ~id m
  | Ok (_, build) -> (
    match Explore_grid.of_specs ~clocks ~flows ~iis ~recover () with
    | Error m -> Protocol.error_response ~id m
    | Ok grid ->
      let mine = Hashtbl.create (List.length keys) in
      List.iter (fun k -> Hashtbl.replace mine k ()) keys;
      let progress =
        {
          l_total = List.length keys;
          l_mu = Mutex.create ();
          l_records = Hashtbl.create 64;
        }
      in
      Mutex.lock t.leases_mu;
      Hashtbl.replace t.leases lease progress;
      Mutex.unlock t.leases_mu;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.leases_mu;
          Hashtbl.remove t.leases lease;
          Mutex.unlock t.leases_mu)
      @@ fun () ->
      let cancel = request_cancel t deadline_s in
      let point_deadline =
        match point_deadline with Some s -> Some s | None -> t.cfg.point_deadline
      in
      let on_point ck summary =
        Mutex.lock progress.l_mu;
        Hashtbl.replace progress.l_records ck (Eval_cache.entry_line ck summary);
        Mutex.unlock progress.l_mu
      in
      (* Pin the event-ring cursor so the reply can ship exactly this
         lease's decision events.  Only deterministic payloads, renumbered
         from 0: the shipped stream is then a pure function of the leased
         keys, independent of which daemon ran it or what it served
         before — the property the supervisor's byte-identical merged
         provenance file rests on. *)
      let ev_mark = Obs.Events.mark () in
      let outcome =
        sweep_with_retries t
          ~select:(fun pkey -> Hashtbl.mem mine pkey)
          ~on_point ~cancel ~point_deadline ~name:design ~build grid
      in
      note_interrupted t ~cancel outcome;
      let lease_events =
        Obs.Events.since ~mark:ev_mark
        |> List.filter Obs.Events.deterministic
        |> Obs.Events.renumber
        |> List.map (fun e -> J.String (Obs.Events.to_jsonl_line e))
      in
      let digest = outcome.Explore.digest in
      let fingerprint = Explore.config_fingerprint t.cfg.flow_config in
      let records =
        List.map
          (fun (r : Explore.point_result) ->
            let ck =
              Eval_cache.key ~digest ~lib:(Library.name t.cfg.lib)
                ~config:fingerprint ~point_key:r.Explore.pkey
            in
            J.String (Eval_cache.entry_line ck r.Explore.summary))
          outcome.Explore.results
      in
      let status =
        if outcome.Explore.pending > 0 then
          if Cancel.reason cancel = Some "deadline" then "timed_out"
          else "partial"
        else "ok"
      in
      Protocol.response ~id ~status
        [
          ("design", J.String design);
          ("lease", J.String lease);
          ("total", J.Int outcome.Explore.total);
          ("done", J.Int (List.length outcome.Explore.results));
          ("pending", J.Int outcome.Explore.pending);
          ("records", J.List records);
          ("events", J.List lease_events);
        ])

(* Liveness probe: answered even while draining or saturated (it bypasses
   admission), carrying per-lease progress plus the already-durable record
   lines so a supervisor can salvage a worker that dies mid-lease. *)
let health_response t ~id =
  Mutex.lock t.leases_mu;
  let snapshot =
    Hashtbl.fold
      (fun lease p acc ->
        Mutex.lock p.l_mu;
        let lines = Hashtbl.fold (fun _ line acc -> line :: acc) p.l_records [] in
        Mutex.unlock p.l_mu;
        (lease, p.l_total, List.sort String.compare lines) :: acc)
      t.leases []
  in
  Mutex.unlock t.leases_mu;
  let leases_json =
    J.List
      (List.map
         (fun (lease, total, lines) ->
           J.Obj
             [
               ("lease", J.String lease);
               ("total", J.Int total);
               ("done", J.Int (List.length lines));
               ("records", J.List (List.map (fun l -> J.String l) lines));
             ])
         (List.sort compare snapshot))
  in
  let telemetry_field =
    if not t.cfg.telemetry then []
    else
      (* Heartbeat-sized: counters + a short event tail, no trace buffer —
         health fires once a second per worker and must not ship the whole
         ledger each time.  The full snapshot travels on the [telemetry]
         op. *)
      [
        ( "telemetry",
          Obs.Telemetry.to_json
            (Obs.Telemetry.capture ~events_limit:64 ~include_trace:false ()) );
      ]
  in
  Protocol.response ~id ~status:"ok"
    ([
       ("draining", J.Bool (draining t));
       ("inflight", J.Int (Admission.inflight t.admission));
       ("leases", leases_json);
     ]
    @ telemetry_field)

let execute_run t ~id ~deadline_s ~design ~clock ~flow =
  match lookup_design t design with
  | Error m -> Protocol.error_response ~id m
  | Ok (default_clock, build) -> (
    match flow_of_name flow with
    | Error m -> Protocol.error_response ~id m
    | Ok flow -> (
      let clock = Option.value ~default:default_clock clock in
      match Explore_grid.make ~clocks:[ clock ] ~flows:[ flow ] () with
      | Error m -> Protocol.error_response ~id m
      | Ok grid -> (
        let cancel = request_cancel t deadline_s in
        let outcome =
          sweep_with_retries t ~cancel ~point_deadline:t.cfg.point_deadline
            ~name:design ~build grid
        in
        note_interrupted t ~cancel outcome;
        match outcome.Explore.results with
        | [ r ] ->
          let s = r.Explore.summary in
          let status =
            match s.Eval_cache.status with
            | Eval_cache.Success -> "ok"
            | Eval_cache.Infeasible -> "failed"
            | Eval_cache.Timeout -> "timed_out"
            | Eval_cache.Crash -> "crashed"
          in
          Protocol.response ~id ~status
            (("design", J.String design) :: ("key", J.String r.Explore.pkey)
            :: summary_fields s)
        | _ ->
          (* Never claimed: the drain (or deadline) won the race. *)
          Protocol.response
            ~id
            ~status:
              (if Cancel.reason cancel = Some "deadline" then "timed_out"
               else "partial")
            [ ("design", J.String design) ])))

let latency_json () =
  J.Obj
    (List.filter_map
       (fun op ->
         match Obs.dist_stats (latency_dist op) with
         | None -> None
         | Some s ->
           Some
             ( op,
               J.Obj
                 [
                   ("n", J.Int s.Obs.n);
                   ("min_ms", J.Float s.Obs.dmin);
                   ("max_ms", J.Float s.Obs.dmax);
                   ("mean_ms", J.Float s.Obs.mean);
                   ("p50_ms", J.Float s.Obs.p50);
                   ("p95_ms", J.Float s.Obs.p95);
                 ] ))
       latency_ops)

let stats_response t ~id =
  let v name = J.Int (Obs.value (Obs.counter name)) in
  Protocol.response ~id ~status:"ok"
    [
      ("inflight", J.Int (Admission.inflight t.admission));
      ("high_water", J.Int (Admission.high_water t.admission));
      ("queue_depth", J.Int (Domain_pool.pending t.pool));
      ("pool_jobs", J.Int (Domain_pool.pool_jobs t.pool));
      ("requests", v "serve.requests");
      ("admitted", v "serve.admitted");
      ("shed", v "serve.shed");
      ("completed", v "serve.completed");
      ("connections", v "serve.connections");
      ("slow_clients", v "serve.slow_clients");
      ("malformed", v "serve.malformed");
      ("request_retries", v "serve.request_retries");
      ("cache_entries", J.Int (Eval_cache.size t.cache));
      ("cache_hits", v "explore.cache.hits");
      ("cache_misses", v "explore.cache.misses");
      ("evaluations", v "explore.evaluations");
      ("wasted_cone", v "timing.wasted_work_ratio.cone");
      ("wasted_touched", v "timing.wasted_work_ratio.touched");
      ("journal_records", v "explore.journal.records");
      ("journal_quarantined", v "journal.quarantined");
      ("journal_salvaged", v "journal.salvaged");
      ("active_leases", J.Int (Hashtbl.length t.leases));
      ("draining", J.Bool (draining t));
      ("latency_ms", latency_json ());
    ]

(* Full-ledger control reply: the typed snapshot plus its Prometheus
   rendering, so one op serves both the fleet merger and ad-hoc scrapes
   over the existing socket. *)
let telemetry_response ~id =
  Protocol.response ~id ~status:"ok"
    [
      ("telemetry", Obs.Telemetry.to_json (Obs.Telemetry.capture ()));
      ("expo", J.String (Obs.Expo.render ()));
    ]

let control t (env : Protocol.envelope) =
  let id = env.Protocol.id in
  match env.Protocol.req with
  | Protocol.Ping ->
    Protocol.response ~id ~status:"ok" [ ("pong", J.Bool true) ]
  | Protocol.Stats -> stats_response t ~id
  | Protocol.Shutdown ->
    drain ~reason:"shutdown request" t;
    Protocol.response ~id ~status:"ok" [ ("draining", J.Bool true) ]
  | Protocol.Health -> health_response t ~id
  | Protocol.Telemetry -> telemetry_response ~id
  | Protocol.Run _ | Protocol.Explore _ | Protocol.Shard_explore _ ->
    assert false (* dispatched below *)

let execute t (env : Protocol.envelope) =
  let id = env.Protocol.id in
  let deadline_s = env.Protocol.deadline_s in
  match env.Protocol.req with
  | Protocol.Run { design; clock; flow } ->
    execute_run t ~id ~deadline_s ~design ~clock ~flow
  | Protocol.Explore { design; clocks; flows; iis; recover; point_deadline } ->
    execute_explore t ~id ~deadline_s ~design ~clocks ~flows ~iis ~recover
      ~point_deadline
  | Protocol.Shard_explore
      { design; clocks; flows; iis; recover; point_deadline; lease; keys } ->
    execute_shard_explore t ~id ~deadline_s ~design ~clocks ~flows ~iis
      ~recover ~point_deadline ~lease ~keys
  | Protocol.Ping | Protocol.Stats | Protocol.Shutdown | Protocol.Health
  | Protocol.Telemetry ->
    assert false

(* ------------------------------------------------------------------ *)
(* Connections *)

let handle_conn t fd =
  Obs.incr c_connections;
  let conn = Protocol.make fd in
  let alive = ref true in
  let send payload =
    try Protocol.write_frame fd payload
    with Unix.Unix_error _ -> alive := false
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rec loop () =
    if !alive then
      match
        Protocol.read_frame ~max_bytes:t.cfg.max_frame_bytes
          ~stall:t.cfg.read_timeout
          ~should_stop:(fun () -> draining t)
          conn
      with
      | Protocol.Eof | Protocol.Stopped -> ()
      | Protocol.Stalled ->
        (* A request that started and stopped flowing: the stalled-client
           containment path.  One error frame (best effort), then close —
           the reader thread must not stay pinned to a dead peer. *)
        Obs.incr c_slow_clients;
        send
          (Protocol.error_response ~id:""
             (Printf.sprintf "request stalled mid-frame for %.1fs; closing"
                t.cfg.read_timeout))
      | Protocol.Too_big n ->
        Obs.incr c_oversized;
        send
          (Protocol.error_response ~id:""
             (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
                t.cfg.max_frame_bytes))
      | Protocol.Frame payload ->
        (match Protocol.parse_request payload with
        | Error m -> send (Protocol.error_response ~id:"" m)
        | Ok env ->
          let op = op_name env.Protocol.req in
          let t0 = Obs.now_ns () in
          (* Close the request span even on a write failure: connection
             handlers are systhreads sharing one domain, so the span is
             recorded as a closed interval ([note_span]) rather than via
             the domain-local nesting stack, carrying the remote trace
             context as attributes — that is what parents this request
             under the supervisor's trace after a fleet merge. *)
          let finally () =
            let t1 = Obs.now_ns () in
            Obs.observe (latency_dist op)
              (Int64.to_float (Int64.sub t1 t0) /. 1e6);
            let attrs =
              match env.Protocol.trace with
              | None -> []
              | Some tc ->
                [
                  ("trace_id", tc.Protocol.trace_id);
                  ("parent", tc.Protocol.parent);
                ]
                @ (match tc.Protocol.lease with
                  | Some l -> [ ("lease", l) ]
                  | None -> [])
            in
            Obs.note_span ~attrs ~name:("serve." ^ op) ~t0_ns:t0 ~t1_ns:t1 ()
          in
          Fun.protect ~finally @@ fun () ->
          (match env.Protocol.req with
          | Protocol.Ping | Protocol.Stats | Protocol.Shutdown
          | Protocol.Health | Protocol.Telemetry ->
            send (control t env)
          | Protocol.Run _ | Protocol.Explore _ | Protocol.Shard_explore _ -> (
            match Admission.try_admit t.admission with
            | Admission.Shed ->
              send
                (Protocol.response ~id:env.Protocol.id ~status:"overloaded"
                   [
                     ("retry_after_s", J.Float t.cfg.backoff);
                     ("inflight", J.Int (Admission.inflight t.admission));
                   ])
            | Admission.Draining ->
              send
                (Protocol.response ~id:env.Protocol.id ~status:"draining" [])
            | Admission.Admitted ->
              (* finish only after the response bytes are out: the drain
                 sequence waits on inflight reaching zero, so responses to
                 in-flight requests cannot race process exit. *)
              Fun.protect
                ~finally:(fun () -> Admission.finish t.admission)
                (fun () -> send (execute t env)))));
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Metrics exposition *)

(* Minimal HTTP/1.0 scrape endpoint on loopback: read whatever request
   head the scraper sends (ignored — every path answers the same
   payload), write one Prometheus text rendering, close.  Runs until the
   drain token fires; no keep-alive, no parsing, nothing a scraper can
   wedge. *)
let metrics_loop t fd =
  let rec go () =
    if not (draining t) then begin
      (match Unix.select [ fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept fd with
        | exception Unix.Unix_error _ -> ()
        | cfd, _ ->
          Obs.incr c_metrics_scrapes;
          (try
             let buf = Bytes.create 2048 in
             ignore (Unix.read cfd buf 0 (Bytes.length buf))
           with Unix.Unix_error _ -> ());
          let body = Obs.Expo.render () in
          let resp =
            Printf.sprintf
              "HTTP/1.0 200 OK\r\n\
               Content-Type: text/plain; version=0.0.4\r\n\
               Content-Length: %d\r\n\
               \r\n\
               %s"
              (String.length body) body
          in
          (try
             let n = String.length resp in
             let rec w off =
               if off < n then
                 w (off + Unix.write_substring cfd resp off (n - off))
             in
             w 0
           with Unix.Unix_error _ -> ());
          (try Unix.close cfd with Unix.Unix_error _ -> ())));
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Accept loop and drain sequence *)

let accept_loop t =
  let rec go () =
    if not (draining t) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error (_, _, _) -> ()
        | fd, _ -> ignore (Thread.create (handle_conn t) fd)));
      go ()
    end
  in
  go ()

let serve t =
  let metrics_th =
    Option.map (fun fd -> Thread.create (metrics_loop t) fd) t.metrics_fd
  in
  accept_loop t;
  Admission.start_drain t.admission;
  Option.iter Thread.join metrics_th;
  Option.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.metrics_fd;
  let reason = Option.value ~default:"drain" (Cancel.reason t.drain_tok) in
  Printf.eprintf "hlsc serve: draining (%s), %d request(s) in flight\n%!"
    reason
    (Admission.inflight t.admission);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
  | Unix_sock p -> ( try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ());
  let drained =
    Admission.wait_idle t.admission ~deadline_s:t.cfg.drain_deadline
  in
  (* Only a clean drain joins the worker domains: past the deadline a
     wedged evaluation must not also wedge the exit path — the fsync'd
     journal already holds every completed point. *)
  if drained then Domain_pool.shutdown t.pool
  else
    Printf.eprintf
      "hlsc serve: drain deadline (%.1fs) expired with %d request(s) in \
       flight\n\
       %!"
      t.cfg.drain_deadline
      (Admission.inflight t.admission);
  Option.iter Journal.close t.journal;
  (match t.cfg.cache_path with
  | None -> ()
  | Some path -> (
    try Eval_cache.save t.cache ~path
    with Sys_error m ->
      Printf.eprintf "hlsc serve: cache save failed: %s\n%!" m));
  let interrupted = Atomic.get t.interrupted || not drained in
  if interrupted then begin
    (match t.cfg.journal_path with
    | Some p ->
      Printf.eprintf
        "hlsc serve: interrupted sweeps journaled; resume with hlsc explore \
         --resume %s\n\
         %!"
        p
    | None -> ());
    5
  end
  else 0

(* ------------------------------------------------------------------ *)
(* --once self-test *)

let once cfg ~request_json =
  let dir = Filename.temp_file "hlsc-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "once.sock" in
  let cfg = { cfg with address = Unix_sock sock } in
  match start cfg with
  | Error m -> Error m
  | Ok t ->
    let requests =
      String.split_on_char '\n' request_json
      |> List.filter (fun s -> String.trim s <> "")
    in
    let results = ref [] in
    let client () =
      let rs =
        match Client.connect (Client.Unix_path sock) with
        | Error m -> [ (Protocol.error_response ~id:"" m, 1) ]
        | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          List.map
            (fun r ->
              match Client.request c r with
              | Error m -> (Protocol.error_response ~id:"" m, 1)
              | Ok body ->
                let code =
                  match Protocol.response_status body with
                  | Ok (status, _) -> Protocol.exit_code_of_status status
                  | Error _ -> 1
                in
                (body, code))
            requests
      in
      results := rs;
      drain ~reason:"once" t
    in
    let th = Thread.create client () in
    let daemon_code = serve t in
    Thread.join th;
    (try Sys.remove sock with Sys_error _ -> ());
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    Ok (!results, daemon_code)
