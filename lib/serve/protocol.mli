(** Wire protocol of the synthesis daemon: length-prefixed JSON frames
    over a stream socket.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON ({!Obs.Json} — the repo's own emitter/parser, so the
    daemon adds no dependency).  One request frame yields exactly one
    response frame; a connection carries any number of request/response
    pairs in sequence.

    The framing layer is split so it can be tested without sockets:
    {!frame} and {!split} are pure string functions; {!read_frame} adds
    the fd loop, the size guard and the idle/stall distinction on top.
    Malformed input is data, never an exception: an unparseable frame
    becomes an [Error] the server answers with a structured
    [status = "error"] response. *)

val default_max_frame : int
(** 1 MiB — far above any legitimate request, far below a memory risk. *)

(** {1 Framing (pure)} *)

val frame : string -> string
(** [frame payload] is the on-wire bytes: big-endian length, then
    [payload]. *)

type split =
  | Complete of string * string
      (** decoded payload and the unconsumed remainder of the buffer *)
  | Incomplete  (** not enough bytes yet — keep reading *)
  | Oversized of int
      (** declared length (or a negative/garbage prefix) beyond the
          limit; the connection cannot resynchronise and must close *)

val split : ?max_bytes:int -> string -> split
(** Decode the first frame of a byte buffer. *)

(** {1 Framed connections} *)

type conn
(** An fd plus the bytes read past the last complete frame. *)

val make : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

type read_result =
  | Frame of string  (** one complete payload *)
  | Eof  (** peer closed cleanly between frames *)
  | Stalled
      (** mid-frame and no byte for [stall] seconds, or the peer died
          mid-frame — a torn or deliberately dribbled request *)
  | Too_big of int  (** {!Oversized} frame; connection must close *)
  | Stopped  (** [should_stop] fired while idle between frames *)

val read_frame :
  ?max_bytes:int ->
  ?stall:float ->
  ?should_stop:(unit -> bool) ->
  conn ->
  read_result
(** Block until one of the outcomes above.  The clock only runs {e inside}
    a frame: an idle connection (no bytes of the next frame yet) waits
    indefinitely — that is the client-waiting-for-a-slow-sweep case — but
    once the first byte of a frame arrives the rest must keep flowing, one
    byte at least every [stall] (default 30) seconds.  [should_stop]
    (default never) is polled roughly every 200ms while idle; the server
    passes its drain token so quiescent keep-alive connections fold
    during a drain. *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame and write the whole payload (looping over short writes).
    Raises [Unix.Unix_error] if the peer is gone — callers treat that as
    the connection closing. *)

(** {1 Requests} *)

type request =
  | Ping
  | Stats
  | Shutdown  (** ask the daemon to drain and exit *)
  | Run of { design : string; clock : float option; flow : string }
      (** one synthesis run — a singleton sweep *)
  | Explore of {
      design : string;
      clocks : string;  (** grid specs, {!Explore_grid} syntax *)
      flows : string;
      iis : string;
      recover : string;
      point_deadline : float option;
    }
  | Shard_explore of {
      design : string;
      clocks : string;  (** full grid axes — must cover every leased key *)
      flows : string;
      iis : string;
      recover : string;
      point_deadline : float option;
      lease : string;  (** lease id, echoed in the response *)
      keys : string list;
          (** the leased point keys; the worker evaluates exactly these *)
    }
      (** one lease of a distributed sweep: evaluate the named key-range
          subset of the grid and answer with the completed records framed
          as a journal payload *)
  | Health
      (** liveness/progress probe — a control request that bypasses
          admission, answered even while draining or saturated; carries
          per-lease inflight progress and the durably recorded lines so a
          supervisor can salvage a worker that dies mid-lease *)
  | Telemetry
      (** ship the daemon's full {!Obs.Telemetry} snapshot (span tree,
          counters, distributions, trace slices, event-ring tail) plus a
          Prometheus rendering — a control request like [Health] *)

(** Cross-process trace context.  A supervisor stamps every request it
    sends with its own trace id and the span it is under; the server opens
    its request span with these as attributes, so the merged fleet trace
    links worker spans causally under the supervisor's sweep. *)
type trace_ctx = {
  trace_id : string;  (** one id per sweep/session, minted by the root *)
  parent : string;  (** the sender's span under which this request runs *)
  lease : string option;  (** lease id when the request executes a lease *)
}

type envelope = {
  id : string;  (** echoed verbatim in the response *)
  deadline_s : float option;  (** whole-request deadline *)
  trace : trace_ctx option;  (** absent for untraced/interactive clients *)
  req : request;
}

val parse_request : string -> (envelope, string) result
(** Parse one frame payload.  Never raises: malformed JSON, a missing or
    unknown ["op"], and wrongly-typed fields all come back [Error] with a
    one-line reason. *)

val request_to_json : envelope -> Obs.Json.t
(** Inverse of {!parse_request} (for clients and tests). *)

val trace_to_json : trace_ctx -> Obs.Json.t

(** {2 Field helpers}

    Exposed for response decoding on the dispatch side: responses are
    plain JSON objects, and the supervisor needs the same tolerant field
    accessors the request parser uses. *)

val obj_fields : Obs.Json.t -> ((string * Obs.Json.t) list, string) result

val str_field :
  ?default:string -> (string * Obs.Json.t) list -> string -> (string, string) result

val str_list_field :
  (string * Obs.Json.t) list -> string -> (string list, string) result

(** {1 Responses} *)

val response :
  id:string -> status:string -> (string * Obs.Json.t) list -> string
(** [{"id":..,"status":..,fields...}] marshalled.  Statuses: [ok],
    [error] (bad request), [failed] (all points infeasible), [timed_out],
    [crashed], [overloaded] (shed — retry after backoff), [draining]
    (daemon is shutting down), [partial] (drain interrupted the sweep;
    resume from the daemon's journal). *)

val error_response : id:string -> string -> string

val response_status : string -> (string * Obs.Json.t, string) result
(** Parse a response payload; returns its [status] and the whole object. *)

val exit_code_of_status : string -> int
(** The CLI contract mapping for [hlsc request] / [hlsc serve --once]:
    [ok] 0, [crashed] 1, [error] 2, [failed]/[timed_out] 4,
    [overloaded]/[draining]/[partial] 5 (retryable / resumable), anything
    unrecognised 1. *)
