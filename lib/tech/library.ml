type overheads = {
  mux_delay_base : float;
  mux_delay_per_log_input : float;
  mux_area_per_bit_per_input : float;
  reg_area_per_bit : float;
  reg_overhead : float;
  fsm_area_per_state : float;
}

(* The curve memo is per domain (DLS): curve construction is pure, so each
   explore worker rebuilding its own curves gives identical results with
   zero cross-domain traffic — a shared table behind a mutex serialised
   the schedulers' hottest query. *)
type t = {
  lib_name : string;
  ov : overheads;
  memo : (Resource_kind.t * int, Curve.t) Hashtbl.t Domain.DLS.key;
}

let table1_multiplier_8x8 =
  Curve.of_pairs
    [ (430., 878.); (470., 662.); (510., 618.); (540., 575.); (570., 545.); (610., 510.) ]

let table1_adder_16 =
  Curve.of_pairs
    [ (220., 556.); (400., 254.); (580., 225.); (760., 216.); (940., 210.); (1220., 206.) ]

let realistic =
  {
    mux_delay_base = 25.0;
    mux_delay_per_log_input = 20.0;
    mux_area_per_bit_per_input = 2.5;
    reg_area_per_bit = 5.0;
    reg_overhead = 60.0;
    fsm_area_per_state = 40.0;
  }

let ideal =
  {
    mux_delay_base = 0.0;
    mux_delay_per_log_input = 0.0;
    mux_area_per_bit_per_input = 0.0;
    reg_area_per_bit = 0.0;
    reg_overhead = 0.0;
    fsm_area_per_state = 0.0;
  }

let default =
  { lib_name = "virt90"; ov = realistic;
    memo = Domain.DLS.new_key (fun () -> Hashtbl.create 32) }

let idealized =
  { lib_name = "virt90-ideal"; ov = ideal;
    memo = Domain.DLS.new_key (fun () -> Hashtbl.create 32) }
let name t = t.lib_name

let log2 x = log x /. log 2.0

(* Blend between logarithmic-depth scaling (fast implementations) and
   linear-depth scaling (slow implementations) along the curve. *)
let width_scaled ~base ~base_width ~area_exp ~fast_area_bonus ~width =
  let pts = Curve.points base in
  let n = List.length pts in
  let w = float_of_int width and w0 = float_of_int base_width in
  let lin = w /. w0 in
  let lg = if width = 1 || base_width = 1 then lin else log2 w /. log2 w0 in
  let scaled =
    List.mapi
      (fun i (p : Curve.point) ->
        let mix = if n = 1 then 0.5 else float_of_int i /. float_of_int (n - 1) in
        let dfac = ((1.0 -. mix) *. lg) +. (mix *. lin) in
        let afac = lin ** (area_exp +. (fast_area_bonus *. (1.0 -. mix))) in
        { Curve.delay = p.Curve.delay *. Float.max dfac 0.05;
          area = p.Curve.area *. Float.max afac 0.01 })
      pts
  in
  (* Width scaling can make consecutive delays collide for tiny widths; keep
     the curve strictly increasing by nudging. *)
  let rec fix prev = function
    | [] -> []
    | (p : Curve.point) :: rest ->
      let d = if p.Curve.delay <= prev then prev +. 1.0 else p.Curve.delay in
      { p with Curve.delay = d } :: fix d rest
  in
  let rec mono_area prev = function
    | [] -> []
    | (p : Curve.point) :: rest ->
      let a = Float.min p.Curve.area prev in
      { p with Curve.area = a } :: mono_area a rest
  in
  Curve.make (mono_area infinity (fix 0.0 scaled))

let shifter_base = Curve.of_pairs [ (150., 300.); (260., 190.); (420., 150.) ]
let logic_base = Curve.of_pairs [ (80., 120.); (160., 88.) ]

let build_curve rk width =
  match (rk : Resource_kind.t) with
  | Resource_kind.Adder ->
    width_scaled ~base:table1_adder_16 ~base_width:16 ~area_exp:1.0 ~fast_area_bonus:0.25
      ~width
  | Resource_kind.Subtractor ->
    Curve.scale ~delay:1.0 ~area:1.02
      (width_scaled ~base:table1_adder_16 ~base_width:16 ~area_exp:1.0 ~fast_area_bonus:0.25
         ~width)
  | Resource_kind.Add_sub ->
    Curve.scale ~delay:1.05 ~area:1.15
      (width_scaled ~base:table1_adder_16 ~base_width:16 ~area_exp:1.0 ~fast_area_bonus:0.25
         ~width)
  | Resource_kind.Multiplier ->
    width_scaled ~base:table1_multiplier_8x8 ~base_width:8 ~area_exp:2.0
      ~fast_area_bonus:0.15 ~width
  | Resource_kind.Divider ->
    Curve.scale ~delay:3.2 ~area:1.6
      (width_scaled ~base:table1_multiplier_8x8 ~base_width:8 ~area_exp:2.0
         ~fast_area_bonus:0.15 ~width)
  | Resource_kind.Shifter ->
    width_scaled ~base:shifter_base ~base_width:16 ~area_exp:1.2 ~fast_area_bonus:0.1 ~width
  | Resource_kind.Logic_unit ->
    width_scaled ~base:logic_base ~base_width:16 ~area_exp:1.0 ~fast_area_bonus:0.0 ~width
  | Resource_kind.Comparator ->
    Curve.scale ~delay:0.9 ~area:0.55
      (width_scaled ~base:table1_adder_16 ~base_width:16 ~area_exp:1.0 ~fast_area_bonus:0.2
         ~width)
  | Resource_kind.Mux_unit ->
    let w = float_of_int width in
    Curve.of_pairs [ (60., 2.8 *. w) ]
  | Resource_kind.Io_port ->
    (* Channel reads/writes latch at the cycle boundary; no combinational
       cost (callers that model finite I/O delay, like the paper's Table 3
       example, pass explicit delay functions to the analyses). *)
    let w = float_of_int width in
    Curve.of_pairs [ (0., 1.5 *. w) ]

let curve t rk ~width =
  if width < 1 || width > 512 then invalid_arg "Library.curve: width out of range";
  let memo = Domain.DLS.get t.memo in
  match Hashtbl.find_opt memo (rk, width) with
  | Some c -> c
  | None ->
    let c = build_curve rk width in
    Hashtbl.add memo (rk, width) c;
    c

let op_curve t k ~width =
  Option.map (fun rk -> curve t rk ~width) (Resource_kind.of_op_kind k)

let op_delay_range t k ~width = Option.map Curve.delay_range (op_curve t k ~width)

let mux_delay t ~inputs =
  if inputs <= 1 then 0.0
  else t.ov.mux_delay_base +. (t.ov.mux_delay_per_log_input *. log2 (float_of_int inputs))

let mux_area t ~inputs ~width =
  if inputs <= 1 then 0.0
  else
    t.ov.mux_area_per_bit_per_input *. float_of_int width *. float_of_int (inputs - 1)

let register_area t ~width = t.ov.reg_area_per_bit *. float_of_int width
let register_overhead t = t.ov.reg_overhead
let fsm_area_per_state t = t.ov.fsm_area_per_state
