(** Append-only, fsync'd checkpoint journal for exploration sweeps.

    While a sweep runs, every completed point is appended as one
    {!Eval_cache.entry_line} record — full cache key (so a stale journal
    from another design or configuration can never poison a resume) plus
    the point summary — and fsync'd before the worker moves on.  After a
    crash, a kill, or a sweep-level deadline, [hlsc explore --resume]
    loads the journal and skips every recorded point; the resumed sweep's
    CSV/JSON output is byte-identical to an uninterrupted run.

    Records are written from pool worker domains under an internal mutex;
    record order is completion order (nondeterministic), which is fine —
    resume folds the records into a table.

    Telemetry: [explore.journal.records] per append,
    [explore.journal.quarantined] (and its short alias
    [journal.quarantined], which the serve daemon's stats report) per
    corrupt line skipped on load. *)

type writer

val start : path:string -> fresh:bool -> writer
(** Open [path] for appending ([fresh] truncates first — a new sweep;
    resume passes [fresh:false] to keep the interrupted run's records).
    Writes and fsyncs the header when the file is empty.  Raises
    [Unix.Unix_error] on I/O failure. *)

val record : writer -> key:string -> Eval_cache.summary -> unit
(** Append one completed point and fsync.  Thread/domain-safe; a no-op
    after {!close}. *)

val close : writer -> unit

val load : path:string -> ((string * Eval_cache.summary) list * int, string) result
(** All well-formed records in file order (last write wins on duplicate
    keys when folded into a table) and the number of quarantined (torn or
    corrupt) lines.  A missing file, an empty file (killed before the
    header fsync) and a torn header (a strict prefix of the magic) are all
    an empty journal, the latter counting as one quarantined line.  An
    unreadable file or a foreign header is [Error]; every error message
    starts with [path]. *)
