(** Append-only, fsync'd checkpoint journal for exploration sweeps.

    While a sweep runs, every completed point is appended as one
    {!Eval_cache.entry_line} record — full cache key (so a stale journal
    from another design or configuration can never poison a resume) plus
    the point summary — and fsync'd before the worker moves on.  After a
    crash, a kill, or a sweep-level deadline, [hlsc explore --resume]
    loads the journal and skips every recorded point; the resumed sweep's
    CSV/JSON output is byte-identical to an uninterrupted run.

    Records are written from pool worker domains under an internal mutex;
    record order is completion order (nondeterministic), which is fine —
    resume folds the records into a table.

    Telemetry: [explore.journal.records] per append,
    [explore.journal.quarantined] (and its short alias
    [journal.quarantined], which the serve daemon's stats report) per
    corrupt mid-file line skipped on load, [journal.salvaged] per torn
    final record truncated or dropped (the mid-append crash signature —
    salvaged, not quarantined, so resume re-evaluates only the lost tail
    point). *)

type writer

val start : path:string -> fresh:bool -> writer
(** Open [path] for appending ([fresh] truncates first — a new sweep;
    resume passes [fresh:false] to keep the interrupted run's records,
    after {!salvage} has dropped any torn final record so the next append
    cannot splice onto it).  Writes and fsyncs the header when the file is
    empty.  Raises [Unix.Unix_error] on I/O failure. *)

val salvage : path:string -> int
(** Truncate a torn final record (no terminating newline — the signature
    of a crash mid-append) back to the last record boundary.  Returns the
    number of bytes dropped (0 when the file is missing, empty, unreadable
    or cleanly terminated) and bumps [journal.salvaged] when it
    truncates. *)

val record : writer -> key:string -> Eval_cache.summary -> unit
(** Append one completed point and fsync.  Thread/domain-safe; a no-op
    after {!close}. *)

val close : writer -> unit

val load : path:string -> ((string * Eval_cache.summary) list * int, string) result
(** All well-formed records in file order (last write wins on duplicate
    keys when folded into a table) and the number of quarantined (corrupt
    mid-file) lines.  A torn {e final} record — an unterminated last line —
    is salvaged, not quarantined: the valid prefix is returned and
    [journal.salvaged] is bumped.  A missing file, an empty file (killed
    before the header fsync) and a torn header (a strict prefix of the
    magic) are all an empty journal, the latter counting as one
    quarantined line.  An unreadable file or a foreign header is [Error];
    every error message starts with [path]. *)
