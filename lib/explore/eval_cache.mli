(** Content-addressed evaluation cache for design-space sweeps.

    A key is [design digest | library | base config | point key]
    (see {!key}); the value is the {!summary} a full pipeline run would
    produce for that point.  Repeated or overlapping sweeps — and sweeps
    resumed after an interrupt — skip every point whose key is already
    present.  Hits and misses are counted on [lib/obs]
    ([explore.cache.hits] / [explore.cache.misses]).

    The on-disk format is a versioned, line-oriented TSV.  Floats are
    stored as hex literals ([%h]) so a round-trip through the file is
    bit-exact: a cached sweep renders byte-identically to the sweep that
    populated it.  Individually corrupt records are {e quarantined} on
    load (skipped and counted on [cache.quarantined]) — only an unreadable
    header condemns the file.

    A cache is thread- and domain-safe: entry access is serialised on an
    internal mutex, so the serve daemon can keep one warm cache shared by
    every connection. *)

(** How a point's evaluation ended.  Everything but [Success] is data in
    the infeasible region of the tradeoff space: [Infeasible] is a
    scheduling/validation failure, [Timeout] a fired point deadline,
    [Crash] a worker exception quarantined by the pool. *)
type status = Success | Infeasible | Timeout | Crash

val status_name : status -> string
(** [ok], [infeasible], [timed_out] or [crashed] — the CSV/JSON rendering
    and the on-disk tag. *)

val status_of_name : string -> status option

type summary = {
  status : status;
  area : float;       (** total area; [0.] when the point failed *)
  steps : int;        (** control steps of the final schedule *)
  delay_ps : float;   (** steps x clock period — the latency objective *)
  relaxations : int;
  regrades : int;
  recoveries : int;   (** recovery-ladder rungs tried *)
  error : string;     (** [""] on [Success] *)
}

val ok : summary -> bool
(** [status = Success]. *)

type t

val create : unit -> t
val size : t -> int

val quarantined : t -> int
(** Corrupt records skipped when this cache was loaded ([0] for a fresh
    cache). *)

val key : digest:string -> lib:string -> config:string -> point_key:string -> string
(** The four components joined with ['|'].  [config] fingerprints the
    sweep-constant flow configuration (validation level, ladder bound...);
    [point_key] is [Explore_grid.point_key]. *)

val find : t -> string -> summary option
(** Bumps [explore.cache.hits] or [explore.cache.misses]. *)

val add : t -> string -> summary -> unit
(** Last write wins; keys never contain tabs or newlines by construction. *)

val entry_line : string -> summary -> string
(** One key/summary pair as the on-disk TSV record (no newline).  Shared
    with the checkpoint journal ([Journal]) so a journal line and a cache
    line are the same format. *)

val parse_line : string -> (string * summary) option
(** Inverse of {!entry_line}; [None] on any malformation. *)

val load : path:string -> (t, string) result
(** A missing file is an empty cache ([Ok]); an unreadable file or a bad
    header is [Error] (the CLI treats that as a usage error).  Malformed
    entry lines are quarantined, not fatal: the valid records load,
    {!quarantined} reports how many were dropped, and each bumps the
    [cache.quarantined] counter. *)

val save : t -> path:string -> unit
(** Entries sorted by key — the file is reproducible.  Raises [Sys_error]
    on I/O failure. *)
