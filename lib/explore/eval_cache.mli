(** Content-addressed evaluation cache for design-space sweeps.

    A key is [design digest | library | base config | point key]
    (see {!key}); the value is the {!summary} a full pipeline run would
    produce for that point.  Repeated or overlapping sweeps — and sweeps
    resumed after an interrupt — skip every point whose key is already
    present.  Hits and misses are counted on [lib/obs]
    ([explore.cache.hits] / [explore.cache.misses]).

    The on-disk format is a versioned, line-oriented TSV.  Floats are
    stored as hex literals ([%h]) so a round-trip through the file is
    bit-exact: a cached sweep renders byte-identically to the sweep that
    populated it. *)

type summary = {
  ok : bool;
  area : float;       (** total area; [0.] when the point failed *)
  steps : int;        (** control steps of the final schedule *)
  delay_ps : float;   (** steps x clock period — the latency objective *)
  relaxations : int;
  regrades : int;
  recoveries : int;   (** recovery-ladder rungs tried *)
  error : string;     (** [""] when [ok] *)
}

type t

val create : unit -> t
val size : t -> int

val key : digest:string -> lib:string -> config:string -> point_key:string -> string
(** The four components joined with ['|'].  [config] fingerprints the
    sweep-constant flow configuration (validation level, ladder bound...);
    [point_key] is {!Explore_grid.point_key}. *)

val find : t -> string -> summary option
(** Bumps [explore.cache.hits] or [explore.cache.misses]. *)

val add : t -> string -> summary -> unit
(** Last write wins; keys never contain tabs or newlines by construction. *)

val load : path:string -> (t, string) result
(** A missing file is an empty cache ([Ok]); an unreadable or malformed
    one is [Error] (the CLI treats that as a usage error). *)

val save : t -> path:string -> unit
(** Entries sorted by key — the file is reproducible.  Raises [Sys_error]
    on I/O failure. *)
