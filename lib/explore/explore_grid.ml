type point = { flow : Flows.flow; clock : float; ii : int option; recover : bool }

type t = {
  clocks : float list;        (* ascending, deduplicated *)
  flows : Flows.flow list;    (* first-occurrence order *)
  iis : int option list;
  recover : bool list;
}

let max_points = 100_000

let flow_short = function
  | Flows.Conventional -> "conv"
  | Flows.Slowest_first -> "slowest"
  | Flows.Slack_based -> "slack"

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let make ~clocks ~flows ?(iis = [ None ]) ?(recover = [ true ]) () =
  let clocks = List.sort_uniq Float.compare clocks in
  let flows = dedup flows and iis = dedup iis and recover = dedup recover in
  if clocks = [] then Error "empty clock axis"
  else if flows = [] then Error "empty flow axis"
  else if iis = [] then Error "empty initiation-interval axis"
  else if recover = [] then Error "empty recovery axis"
  else if List.exists (fun c -> not (Float.is_finite c) || c <= 0.0) clocks then
    Error "clock periods must be finite and positive"
  else if List.exists (function Some ii -> ii < 1 | None -> false) iis then
    Error "initiation intervals must be at least 1"
  else
    let size =
      List.length clocks * List.length flows * List.length iis * List.length recover
    in
    if size > max_points then
      Error (Printf.sprintf "grid has %d points (max %d)" size max_points)
    else Ok { clocks; flows; iis; recover }

let size t =
  List.length t.clocks * List.length t.flows * List.length t.iis
  * List.length t.recover

let points t =
  List.concat_map
    (fun flow ->
      List.concat_map
        (fun clock ->
          List.concat_map
            (fun ii -> List.map (fun recover -> { flow; clock; ii; recover }) t.recover)
            t.iis)
        t.clocks)
    t.flows

let point_key p =
  Printf.sprintf "flow=%s,clock=%.3f,ii=%s,recover=%s" (flow_short p.flow) p.clock
    (match p.ii with Some i -> string_of_int i | None -> "none")
    (if p.recover then "on" else "off")

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let ( let* ) = Result.bind

let split_commas s =
  List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s))

let rec map_items f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_items f rest in
    Ok (y :: ys)

let float_item s =
  match float_of_string_opt (String.trim s) with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "bad number %S" s)

(* Grid specs are user input straight from the command line: every parser
   bounds the expansion so "1:1e9:1" is a usage error, not a hang. *)
let parse_clocks spec =
  let expand item =
    match String.split_on_char ':' item with
    | [ single ] ->
      let* c = float_item single in
      Ok [ c ]
    | [ lo; hi; step ] ->
      let* lo = float_item lo in
      let* hi = float_item hi in
      let* step = float_item step in
      if step <= 0.0 then Error (Printf.sprintf "bad range %S: step must be positive" item)
      else if lo > hi then Error (Printf.sprintf "bad range %S: lo > hi" item)
      else if (hi -. lo) /. step > float_of_int max_points then
        Error (Printf.sprintf "range %S expands past %d points" item max_points)
      else begin
        let out = ref [] in
        let c = ref lo in
        (* Half-a-step tolerance so "2000:3000:250" includes 3000 despite
           float accumulation. *)
        while !c <= hi +. (step /. 2.0) do
          out := Float.min !c hi :: !out;
          c := !c +. step
        done;
        Ok (List.rev !out)
      end
    | _ -> Error (Printf.sprintf "bad clock item %S (want PS or LO:HI:STEP)" item)
  in
  match split_commas spec with
  | [] -> Error "empty clock spec"
  | items ->
    let* groups = map_items expand items in
    Ok (List.concat groups)

let parse_flows spec =
  match String.trim spec with
  | "all" -> Ok [ Flows.Conventional; Flows.Slowest_first; Flows.Slack_based ]
  | _ -> (
    let flow_item s =
      match String.trim s with
      | "conv" | "conventional" -> Ok Flows.Conventional
      | "slowest" | "slowest-first" -> Ok Flows.Slowest_first
      | "slack" | "slack-based" -> Ok Flows.Slack_based
      | other ->
        Error (Printf.sprintf "unknown flow %S (try: conv, slowest, slack, all)" other)
    in
    match split_commas spec with
    | [] -> Error "empty flow spec"
    | items -> map_items flow_item items)

let parse_iis spec =
  let int_item s =
    match int_of_string_opt (String.trim s) with
    | Some i when i >= 1 -> Ok i
    | _ -> Error (Printf.sprintf "bad initiation interval %S" s)
  in
  let expand item =
    match String.trim item with
    | "none" | "off" -> Ok [ None ]
    | item -> (
      match String.split_on_char ':' item with
      | [ single ] ->
        let* i = int_item single in
        Ok [ Some i ]
      | [ lo; hi ] | [ lo; hi; _ ] as parts ->
        let* lo = int_item lo in
        let* hi = int_item hi in
        let* step =
          match parts with [ _; _; s ] -> int_item s | _ -> Ok 1
        in
        if lo > hi then Error (Printf.sprintf "bad range %S: lo > hi" item)
        else if (hi - lo) / step > max_points then
          Error (Printf.sprintf "range %S expands past %d points" item max_points)
        else begin
          let out = ref [] in
          let i = ref lo in
          while !i <= hi do
            out := Some !i :: !out;
            i := !i + step
          done;
          Ok (List.rev !out)
        end
      | _ -> Error (Printf.sprintf "bad ii item %S (want none, N or LO:HI[:STEP])" item))
  in
  match split_commas spec with
  | [] -> Error "empty ii spec"
  | items ->
    let* groups = map_items expand items in
    Ok (List.concat groups)

let parse_recover spec =
  match String.trim spec with
  | "on" -> Ok [ true ]
  | "off" -> Ok [ false ]
  | "both" -> Ok [ true; false ]
  | other -> Error (Printf.sprintf "bad recovery spec %S (try: on, off, both)" other)

let of_specs ~clocks ~flows ?(iis = "none") ?(recover = "on") () =
  let* clocks = parse_clocks clocks in
  let* flows = parse_flows flows in
  let* iis = parse_iis iis in
  let* recover = parse_recover recover in
  make ~clocks ~flows ~iis ~recover ()
