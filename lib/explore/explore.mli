(** Parallel design-space exploration: enumerate a configuration grid over
    one design, evaluate every point through the full HLS pipeline on a
    domain pool, and fold the survivors into an area/delay Pareto frontier
    — the paper's Fig. 9 / Table 4 experiments as a subsystem.

    Determinism guarantee: for a fixed design, grid and configuration, the
    [results] list, the frontier and every rendering below are
    byte-identical whatever [jobs] is and whether points came from the
    cache or fresh evaluation.  Points are keyed canonically
    ({!Explore_grid.point_key}), evaluated independently (each worker
    rebuilds its own graph from [build]) and folded in key order into an
    insertion-order-independent frontier ({!Pareto}). *)

type point_result = {
  point : Explore_grid.point;
  pkey : string;                   (** {!Explore_grid.point_key} *)
  summary : Eval_cache.summary;
  cached : bool;
}

type outcome = {
  design_name : string;
  digest : string;                 (** {!Dfg.digest} of the design *)
  results : point_result list;     (** sorted by [pkey] *)
  frontier : point_result Pareto.entry list;  (** successes only; area asc *)
  total : int;
  evaluated : int;                 (** points run through the pipeline *)
  hits : int;                      (** points answered by the cache *)
  failed : int;                    (** points whose flow failed *)
}

val run :
  ?jobs:int ->
  ?cache:Eval_cache.t ->
  lib:Library.t ->
  config:Flows.config ->
  name:string ->
  build:(unit -> Dfg.t) ->
  Explore_grid.t ->
  outcome
(** [build] must be a pure constructor: it is called once in the calling
    domain (for the digest) and once per evaluated point inside a worker,
    so no DFG is ever shared between domains.  [config] supplies the
    sweep-constant flow settings; each point overrides [recover_area] and
    the design's clock and initiation interval.  Scheduling failures are
    data (the infeasible region of the space), not errors.  When [cache]
    is given, hits skip evaluation and fresh results are added to it.
    [jobs] defaults to {!Domain_pool.default_jobs}. *)

(** {1 Renderings} *)

val csv_header : string
(** [key,flow,clock_ps,ii,recover,status,area,steps,delay_ps,relaxations,regrades,recoveries,cached,frontier] *)

val to_csv : outcome -> string
(** One row per point, in [results] order. *)

val to_json : outcome -> string
(** Sweep stats plus the frontier, via {!Obs.Json}. *)

val render_summary : outcome -> string
(** Text summary: counts line, failure lines, and the frontier as a
    {!Text_table} — what [hlsc explore] prints. *)
