(** Parallel design-space exploration: enumerate a configuration grid over
    one design, evaluate every point through the full HLS pipeline on a
    domain pool, and fold the survivors into an area/delay Pareto frontier
    — the paper's Fig. 9 / Table 4 experiments as a subsystem.

    Determinism guarantee: for a fixed design, grid and configuration, the
    [results] list, the frontier and every rendering below are
    byte-identical whatever [jobs] is, whether points came from the cache,
    a resume journal or fresh evaluation.  Points are keyed canonically
    ({!Explore_grid.point_key}), evaluated independently (each worker
    rebuilds its own graph from [build]) and folded in key order into an
    insertion-order-independent frontier ({!Pareto}).

    Supervision: each point can carry a deadline (cooperatively polled at
    the pipeline's phase boundaries — see {!Flows.run}); a point whose
    evaluation raises is retried and then quarantined; a sweep-level
    cancel token drains in-flight points and leaves the rest [pending].
    All of it is data: a point ends [ok], [infeasible], [timed_out] or
    [crashed] ({!Eval_cache.status}), and only [ok] points reach the
    frontier. *)

(** Where a point's summary came from.  [Resumed] points were evaluated by
    an earlier, interrupted run of the {e same} sweep and replayed from
    its journal — they count as evaluated and render as uncached, so a
    resumed run's output is byte-identical to an uninterrupted one. *)
type origin = Fresh | Cached | Resumed

type point_result = {
  point : Explore_grid.point;
  pkey : string;                   (** {!Explore_grid.point_key} *)
  summary : Eval_cache.summary;
  origin : origin;
}

type outcome = {
  design_name : string;
  digest : string;                 (** {!Dfg.digest} of the design *)
  results : point_result list;     (** completed points, sorted by [pkey] *)
  frontier : point_result Pareto.entry list;  (** successes only; area asc *)
  total : int;                     (** grid size, including pending points *)
  evaluated : int;                 (** pipeline runs: fresh + resumed *)
  hits : int;                      (** points answered by the cache *)
  resumed : int;                   (** points answered by the resume journal *)
  failed : int;                    (** [Infeasible] points *)
  timed_out : int;                 (** [Timeout] points *)
  crashed : int;                   (** [Crash] points *)
  pending : int;                   (** never claimed — sweep was cancelled *)
}

val partial : outcome -> bool
(** [pending > 0]: the sweep was interrupted and can be resumed. *)

val config_fingerprint : Flows.config -> string
(** The sweep-constant configuration fingerprint — the [config] component
    of every cache/journal key this sweep writes.  Exposed so sharding
    drivers can reconstruct full keys ({!Eval_cache.key}) for a
    grid-x-corpus partition without running anything. *)

val run :
  ?jobs:int ->
  ?pool:Domain_pool.pool ->
  ?retries:int ->
  ?strict:bool ->
  ?recheck_crashes:bool ->
  ?point_deadline:float ->
  ?cancel:Cancel.t ->
  ?cache:Eval_cache.t ->
  ?journal:Journal.writer ->
  ?resume:(string * Eval_cache.summary) list ->
  ?select:(string -> bool) ->
  ?on_point:(string -> Eval_cache.summary -> unit) ->
  lib:Library.t ->
  config:Flows.config ->
  name:string ->
  build:(unit -> Dfg.t) ->
  Explore_grid.t ->
  outcome
(** [build] must be a pure constructor: it is called once in the calling
    domain (for the digest) and once per evaluated point inside a worker,
    so no DFG is ever shared between domains.  [config] supplies the
    sweep-constant flow settings; each point overrides [recover_area] and
    the design's clock and initiation interval.  Scheduling failures are
    data (the infeasible region of the space), not errors.  When [cache]
    is given, hits skip evaluation and fresh results are added to it.
    [jobs] defaults to {!Domain_pool.default_jobs}.

    Supervision knobs:
    - [point_deadline] (seconds) wraps each evaluation in
      {!Cancel.after}; a fired deadline yields status [Timeout].
    - [retries] (default 0) re-runs a raising evaluation in place; when
      every attempt raised the point becomes status [Crash] (with the
      final exception's message) — unless [strict] is set, in which case
      the lowest-keyed crash is re-raised {e after} all completed points
      have been journaled.
    - [cancel] is the sweep-level token: once it fires, workers stop
      claiming points (in-flight ones finish, bounded by their own
      deadlines) and the unclaimed remainder is reported as [pending].
    - [journal] records every completed point — fresh, crashed, or cache
      hit — as an fsync'd {!Journal} entry keyed by the full cache key.
    - [resume] (the entries of {!Journal.load}) answers matching points
      without re-evaluating them; they return as origin [Resumed].
    - [pool]: evaluate on a shared persistent {!Domain_pool.pool} instead
      of spawning domains for this sweep.  [run] is re-entrant: many
      threads may sweep concurrently against one pool and one (mutex-
      guarded) cache — the serve daemon's warm-state path.
    - [recheck_crashes]: a [Crash] recorded in the cache or resume journal
      does not answer its point; the point is re-evaluated (transient
      crashes get a second chance — the daemon's retry-with-backoff
      policy re-enters [run] with this set).
    - [select] filters the canonically-sorted point keys before anything
      else happens; [total] counts only selected points.  This is the
      sharding hook: [hlsc explore --shard i/N] passes the membership
      predicate of shard [i] of a {!Shard.plan}-style range partition, so
      N processes cover the grid disjointly and their journals merge back
      into the single-process result.
    - [on_point] is called with the full cache key and summary at every
      site that durably records a point (cache hits at partition time,
      fresh results inside workers, crash summaries) — the serve daemon's
      shard handler feeds its lease-progress registry from it so
      heartbeats can report durable work.  Called from worker domains:
      must be thread-safe and fast.

    Telemetry: [explore.timeouts], [explore.crashes] and
    [explore.resumed], beyond the existing point/evaluation/failure
    counters. *)

(** {1 Renderings} *)

val csv_header : string
(** [key,flow,clock_ps,ii,recover,status,area,steps,delay_ps,relaxations,regrades,recoveries,cached,frontier].
    [status] is {!Eval_cache.status_name}; [cached] is 1 only for cache
    hits (resumed points render 0, as they did in the interrupted run). *)

val to_csv : outcome -> string
(** One row per completed point, in [results] order. *)

val to_json : outcome -> string
(** Sweep stats (including [timed_out], [crashed], [pending], [partial])
    plus the frontier, via {!Obs.Json}.  Deliberately excludes the
    [resumed] count — it is the one number that differs between a resumed
    run and an uninterrupted one. *)

val render_summary : outcome -> string
(** Text summary: counts line (carries [resumed=%d]), supervision and
    partial-sweep lines when relevant, per-point failure lines, and the
    frontier as a {!Text_table} — what [hlsc explore] prints. *)
