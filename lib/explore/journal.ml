let c_records = Obs.counter "explore.journal.records"
let c_quarantined = Obs.counter "explore.journal.quarantined"

let magic = "slackhls-explore-journal v1"

type writer = {
  oc : out_channel;
  fd : Unix.file_descr;
  lock : Mutex.t;  (* pool workers append concurrently *)
  mutable closed : bool;
}

let start ~path ~fresh =
  let fd =
    Unix.openfile path
      (Unix.O_WRONLY :: Unix.O_CREAT :: Unix.O_APPEND
      :: (if fresh then [ Unix.O_TRUNC ] else []))
      0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  if (Unix.fstat fd).Unix.st_size = 0 then begin
    output_string oc magic;
    output_char oc '\n';
    flush oc;
    Unix.fsync fd
  end;
  { oc; fd; lock = Mutex.create (); closed = false }

let record w ~key summary =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        output_string w.oc (Eval_cache.entry_line key summary);
        output_char w.oc '\n';
        flush w.oc;
        (* The fsync is the crash-containment contract: once [record]
           returns, a kill -9 cannot lose this point. *)
        Unix.fsync w.fd;
        Obs.incr c_records
      end)

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        (* close_out flushes and closes the underlying fd. *)
        close_out_noerr w.oc
      end)

let load ~path =
  if not (Sys.file_exists path) then Ok ([], 0)
  else
    match open_in path with
    | exception Sys_error m -> Error m
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Error (path ^ ": empty journal file")
          | first when first <> magic ->
            Error (Printf.sprintf "%s: not a %S file" path magic)
          | _ ->
            (* A torn final record (the process died mid-append, before the
               fsync) is expected after a crash: quarantine it, keep the
               valid prefix. *)
            let quarantined = ref 0 in
            let rec go acc =
              match input_line ic with
              | exception End_of_file -> Ok (List.rev acc, !quarantined)
              | "" -> go acc
              | ln -> (
                match Eval_cache.parse_line ln with
                | Some entry -> go (entry :: acc)
                | None ->
                  incr quarantined;
                  Obs.incr c_quarantined;
                  go acc)
            in
            go [])
