let c_records = Obs.counter "explore.journal.records"
let c_quarantined = Obs.counter "explore.journal.quarantined"

(* Short alias kept in lockstep with the legacy counter: the serve daemon's
   --stats reads [journal.quarantined]; the bench baseline gate pins the
   long name, so both are bumped. *)
let c_quarantined_short = Obs.counter "journal.quarantined"

let quarantine_line () =
  Obs.incr c_quarantined;
  Obs.incr c_quarantined_short

let magic = "slackhls-explore-journal v1"

type writer = {
  oc : out_channel;
  fd : Unix.file_descr;
  lock : Mutex.t;  (* pool workers append concurrently *)
  mutable closed : bool;
}

let start ~path ~fresh =
  let fd =
    Unix.openfile path
      (Unix.O_WRONLY :: Unix.O_CREAT :: Unix.O_APPEND
      :: (if fresh then [ Unix.O_TRUNC ] else []))
      0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  if (Unix.fstat fd).Unix.st_size = 0 then begin
    output_string oc magic;
    output_char oc '\n';
    flush oc;
    Unix.fsync fd
  end;
  { oc; fd; lock = Mutex.create (); closed = false }

let record w ~key summary =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        output_string w.oc (Eval_cache.entry_line key summary);
        output_char w.oc '\n';
        flush w.oc;
        (* The fsync is the crash-containment contract: once [record]
           returns, a kill -9 cannot lose this point. *)
        Unix.fsync w.fd;
        Obs.incr c_records
      end)

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        (* close_out flushes and closes the underlying fd. *)
        close_out_noerr w.oc
      end)

let load ~path =
  if not (Sys.file_exists path) then Ok ([], 0)
  else
    match open_in path with
    | exception Sys_error m -> Error (Printf.sprintf "%s: %s" path m)
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (* [open_in] on e.g. a directory succeeds on Linux; the Sys_error
             only surfaces at the first read.  Map it to the same
             path-prefixed error as an open failure. *)
          match input_line ic with
          | exception Sys_error m -> Error (Printf.sprintf "%s: %s" path m)
          | exception End_of_file ->
            (* A zero-byte journal is what a kill leaves when it lands
               between openfile and the header fsync: nothing was recorded,
               so there is nothing to resume — not an error. *)
            Ok ([], 0)
          | first when first <> magic ->
            (* Same race, one write later: a torn header (a strict prefix
               of the magic) means the journal never recorded a point.
               Anything else is a foreign file — refuse to resume from it. *)
            if String.length first < String.length magic
               && String.starts_with ~prefix:first magic
            then begin
              quarantine_line ();
              Ok ([], 1)
            end
            else Error (Printf.sprintf "%s: not a %S file" path magic)
          | _ ->
            (* A torn final record (the process died mid-append, before the
               fsync) is expected after a crash: quarantine it, keep the
               valid prefix. *)
            let quarantined = ref 0 in
            let rec go acc =
              match input_line ic with
              | exception End_of_file -> Ok (List.rev acc, !quarantined)
              | exception Sys_error m ->
                Error (Printf.sprintf "%s: %s" path m)
              | "" -> go acc
              | ln -> (
                match Eval_cache.parse_line ln with
                | Some entry -> go (entry :: acc)
                | None ->
                  incr quarantined;
                  quarantine_line ();
                  go acc)
            in
            go [])
