let c_records = Obs.counter "explore.journal.records"
let c_quarantined = Obs.counter "explore.journal.quarantined"

(* Short alias kept in lockstep with the legacy counter: the serve daemon's
   --stats reads [journal.quarantined]; the bench baseline gate pins the
   long name, so both are bumped. *)
let c_quarantined_short = Obs.counter "journal.quarantined"

let quarantine_line () =
  Obs.incr c_quarantined;
  Obs.incr c_quarantined_short

(* A torn *final* record — the process died mid-append, between the write
   and the newline/fsync — is the expected crash signature, not corruption:
   it is salvaged (valid prefix kept, tail dropped) rather than
   quarantined, so resume re-evaluates only the lost tail point. *)
let c_salvaged = Obs.counter "journal.salvaged"

let magic = "slackhls-explore-journal v1"

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let salvage ~path =
  if not (Sys.file_exists path) then 0
  else
    match read_all path with
    | exception Sys_error _ -> 0
    | s ->
      let n = String.length s in
      if n = 0 || s.[n - 1] = '\n' then 0
      else begin
        (* Unterminated tail: truncate back to the last record boundary so
           a subsequent append cannot splice two records together. *)
        let keep =
          match String.rindex_opt s '\n' with Some i -> i + 1 | None -> 0
        in
        Unix.truncate path keep;
        Obs.incr c_salvaged;
        n - keep
      end

type writer = {
  oc : out_channel;
  fd : Unix.file_descr;
  lock : Mutex.t;  (* pool workers append concurrently *)
  mutable closed : bool;
}

let start ~path ~fresh =
  (* Appending after a crash: drop any torn final record first, or the
     next append would splice onto it and corrupt two records. *)
  if not fresh then ignore (salvage ~path);
  let fd =
    Unix.openfile path
      (Unix.O_WRONLY :: Unix.O_CREAT :: Unix.O_APPEND
      :: (if fresh then [ Unix.O_TRUNC ] else []))
      0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  if (Unix.fstat fd).Unix.st_size = 0 then begin
    output_string oc magic;
    output_char oc '\n';
    flush oc;
    Unix.fsync fd
  end;
  { oc; fd; lock = Mutex.create (); closed = false }

let record w ~key summary =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        output_string w.oc (Eval_cache.entry_line key summary);
        output_char w.oc '\n';
        flush w.oc;
        (* The fsync is the crash-containment contract: once [record]
           returns, a kill -9 cannot lose this point. *)
        Unix.fsync w.fd;
        Obs.incr c_records
      end)

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        (* close_out flushes and closes the underlying fd. *)
        close_out_noerr w.oc
      end)

let load ~path =
  if not (Sys.file_exists path) then Ok ([], 0)
  else
    (* [open_in] on e.g. a directory succeeds on Linux; the Sys_error only
       surfaces at the first read.  Reading the whole file (rather than
       line-by-line) lets us see whether the final record has its
       terminating newline — [input_line] cannot. *)
    match read_all path with
    | exception Sys_error m -> Error (Printf.sprintf "%s: %s" path m)
    | "" ->
      (* A zero-byte journal is what a kill leaves when it lands between
         openfile and the header fsync: nothing was recorded, so there is
         nothing to resume — not an error. *)
      Ok ([], 0)
    | contents -> (
      let terminated = contents.[String.length contents - 1] = '\n' in
      let lines =
        let ls = String.split_on_char '\n' contents in
        (* split_on_char leaves one empty element after a trailing '\n'. *)
        if terminated then
          let n = List.length ls - 1 in
          List.filteri (fun i _ -> i < n) ls
        else ls
      in
      match lines with
      | [] -> Ok ([], 0)
      | first :: rest when first <> magic ->
        (* Same crash race, one write later: a torn header (a strict prefix
           of the magic) means the journal never recorded a point.
           Anything else is a foreign file — refuse to resume from it. *)
        if rest = []
           && String.length first < String.length magic
           && String.starts_with ~prefix:first magic
        then begin
          quarantine_line ();
          Ok ([], 1)
        end
        else Error (Printf.sprintf "%s: not a %S file" path magic)
      | _ :: rest ->
        let quarantined = ref 0 in
        let rec go acc = function
          | [] -> List.rev acc
          | [ tail ] when not terminated ->
            (* Torn final record from a crash mid-append: salvage the valid
               prefix; only this one point is re-evaluated on resume.  The
               tail is dropped even if it happens to parse — without its
               newline the flush may have stopped mid-field. *)
            if tail <> "" then Obs.incr c_salvaged;
            List.rev acc
          | "" :: tl -> go acc tl
          | ln :: tl -> (
            match Eval_cache.parse_line ln with
            | Some entry -> go (entry :: acc) tl
            | None ->
              (* Mid-file garbage cannot come from a clean crash: this is
                 real corruption, quarantined. *)
              incr quarantined;
              quarantine_line ();
              go acc tl)
        in
        Ok (go [] rest, !quarantined))
