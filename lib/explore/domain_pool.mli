(** A small fixed-size worker pool over OCaml 5 domains.

    Work distribution is a shared atomic cursor over the task array; each
    domain drains tasks into a private result buffer, and buffers are
    merged after every domain has joined, so no two domains ever write the
    same location.  The pool is oblivious to task semantics — the explore
    engine gives it pure evaluation closures (each worker rebuilds its own
    design, so no graph state is shared). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] applies [f] to every task and returns results in
    task order.  [jobs] defaults to {!default_jobs}; values [<= 1] (or a
    single task) run sequentially in the calling domain with no spawns.
    If any task raises, the exception of the lowest-indexed failing task
    is re-raised (with its backtrace) after all domains have joined —
    deterministic regardless of worker interleaving. *)
