(** A small fixed-size worker pool over OCaml 5 domains, with crash
    containment.

    Work distribution is a shared atomic cursor over the task array; each
    domain drains tasks into a private result buffer, and buffers are
    merged after every domain has joined, so no two domains ever write the
    same location.  The pool is oblivious to task semantics — the explore
    engine gives it pure evaluation closures (each worker rebuilds its own
    design, so no graph state is shared).

    A raising task never takes the pool down: {!run} retries it up to
    [retries] times in the same worker, then quarantines it as a
    {!Crashed} outcome.  {!map} keeps the original strict semantics on
    top of {!run}. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

type crash = {
  attempts : int;  (** how many times the task ran (1 + retries) *)
  message : string;  (** [Printexc.to_string] of the final exception *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

type 'b outcome =
  | Done of 'b
  | Crashed of crash  (** every attempt raised; quarantined *)
  | Skipped  (** never claimed — [should_stop] fired first *)

(** {1 Persistent pools}

    A fixed set of worker domains pulling jobs off one shared FIFO queue.
    Spawn-per-batch ({!run} without [?pool]) is right for a CLI sweep;
    a long-running daemon instead creates one pool at startup and
    multiplexes every request's batches onto it — concurrent batches
    interleave in the queue, and no request ever spawns a domain. *)

type pool

val create : jobs:int -> pool
(** Spawn [max 1 jobs] worker domains, idle until work arrives. *)

val pool_jobs : pool -> int

val pending : pool -> int
(** Jobs currently queued (claimed-but-running jobs not included) — the
    backlog gauge admission control reads. *)

val shutdown : pool -> unit
(** Stop the workers and join their domains.  Already-queued jobs drain
    first (so no in-flight batch is left waiting), then the domains exit.
    Idempotent; {!run} on a shut-down pool raises [Invalid_argument]. *)

val run :
  ?jobs:int ->
  ?pool:pool ->
  ?retries:int ->
  ?should_stop:(unit -> bool) ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
(** [run ~jobs ~retries ~should_stop f tasks] applies [f] to every task
    and returns outcomes in task order.  [jobs] defaults to
    {!default_jobs}; values [<= 1] (or a single task) run sequentially in
    the calling domain with no spawns.  When [pool] is given, [jobs] is
    ignored: the tasks are enqueued on the shared pool and the call blocks
    until every one has executed (tasks of a stopped batch drain as
    [Skipped] no-ops).  [run] with a pool may be called concurrently from
    many threads.

    A task that raises is retried immediately, in the same worker, up to
    [retries] (default 0) more times; each retry bumps
    [explore.pool.retries].  When every attempt raised the task's outcome
    is [Crashed] with the {e final} exception and backtrace — the pool
    keeps running.

    [should_stop] (default: never) is polled before {e claiming} each
    task: once it returns [true], workers stop taking new work and drain
    what is already in flight, and unclaimed tasks come back [Skipped].
    It is called concurrently from every worker domain and must be
    domain-safe (e.g. read an [Atomic] or a deadline clock). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] applies [f] to every task and returns results in
    task order — [run] with no retries and no stop predicate.  If any
    task raises, the exception of the lowest-indexed failing task is
    re-raised (with its backtrace) after all domains have joined —
    deterministic regardless of worker interleaving. *)
