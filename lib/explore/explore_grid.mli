(** Configuration grids for design-space exploration.

    A grid is the cross product of four axes the paper's experiments vary:
    clock period (Table 1 / Fig. 9 x-axis), scheduling flow (Table 4
    columns), pipelining initiation interval (Table 4 D9–D15) and the
    area-recovery policy (§VI step f on/off).  Enumeration order — and the
    canonical per-point key — is fixed, so sweeps are reproducible and
    cacheable. *)

type point = {
  flow : Flows.flow;
  clock : float;    (** clock period, ps *)
  ii : int option;  (** pipelining initiation interval; [None] = unpipelined *)
  recover : bool;   (** run final area recovery *)
}

type t

val make :
  clocks:float list ->
  flows:Flows.flow list ->
  ?iis:int option list ->
  ?recover:bool list ->
  unit ->
  (t, string) result
(** Validates the axes: every list non-empty after deduplication, clocks
    finite and positive, initiation intervals at least 1, and the grid no
    larger than {!max_points}. *)

val max_points : int
(** Upper bound on [size], a guard against runaway range specs. *)

val size : t -> int

val points : t -> point list
(** Cross product in a fixed order: flows (outermost), clocks ascending,
    initiation intervals, recovery policy. *)

val flow_short : Flows.flow -> string
(** ["conv"], ["slowest"] or ["slack"] — the names grid specs and point
    keys use. *)

val point_key : point -> string
(** Canonical key, e.g. ["flow=slack,clock=2500.000,ii=4,recover=on"].
    Injective on points (clocks compare equal iff their keys do at ps
    resolution), stable across runs — the config half of the evaluation
    cache key and the determinism sort key. *)

(** {1 Grid-spec parsing (CLI surface)}

    All parsers return [Error msg] rather than raising; the CLI maps that
    to a usage error (exit code 2). *)

val parse_clocks : string -> (float list, string) result
(** Comma-separated items; each item is a single period ["2500"] or an
    inclusive range ["2000:3000:250"] (lo:hi:step, step > 0). *)

val parse_flows : string -> (Flows.flow list, string) result
(** Comma-separated flow names ([conv]/[conventional], [slowest],
    [slack]), or ["all"]. *)

val parse_iis : string -> (int option list, string) result
(** Comma-separated items: ["none"], a single interval ["4"], or an
    inclusive integer range ["2:8"] / ["2:8:2"]. *)

val parse_recover : string -> (bool list, string) result
(** ["on"], ["off"] or ["both"]. *)

val of_specs :
  clocks:string ->
  flows:string ->
  ?iis:string ->
  ?recover:string ->
  unit ->
  (t, string) result
(** All four parsers plus {!make} in one step — the shared entry point for
    the CLI and the grid fuzzer.  [iis] defaults to ["none"], [recover] to
    ["on"]. *)
