type summary = {
  ok : bool;
  area : float;
  steps : int;
  delay_ps : float;
  relaxations : int;
  regrades : int;
  recoveries : int;
  error : string;
}

type t = (string, summary) Hashtbl.t

let c_hits = Obs.counter "explore.cache.hits"
let c_misses = Obs.counter "explore.cache.misses"

let magic = "slackhls-explore-cache v1"

let create () : t = Hashtbl.create 64
let size = Hashtbl.length

let key ~digest ~lib ~config ~point_key =
  String.concat "|" [ digest; lib; config; point_key ]

let find t k =
  match Hashtbl.find_opt t k with
  | Some _ as hit ->
    Obs.incr c_hits;
    hit
  | None ->
    Obs.incr c_misses;
    None

let add t k s = Hashtbl.replace t k s

(* One entry per line:
     key \t ok \t area \t steps \t delay \t relax \t regrades \t recov \t error
   [%h] floats round-trip exactly; the error message is [String.escaped]
   so it can carry anything the flow printer produced. *)
let entry_line k s =
  Printf.sprintf "%s\t%b\t%h\t%d\t%h\t%d\t%d\t%d\t%s" k s.ok s.area s.steps
    s.delay_ps s.relaxations s.regrades s.recoveries (String.escaped s.error)

let parse_line ln =
  match String.split_on_char '\t' ln with
  | [ k; ok; area; steps; delay; relax; regrades; recov; error ] -> (
    match
      ( bool_of_string_opt ok,
        float_of_string_opt area,
        int_of_string_opt steps,
        float_of_string_opt delay,
        int_of_string_opt relax,
        int_of_string_opt regrades,
        int_of_string_opt recov )
    with
    | Some ok, Some area, Some steps, Some delay_ps, Some relaxations,
      Some regrades, Some recoveries ->
      let error = try Scanf.unescaped error with Scanf.Scan_failure _ -> error in
      Some
        (k, { ok; area; steps; delay_ps; relaxations; regrades; recoveries; error })
    | _ -> None)
  | _ -> None

let load ~path =
  if not (Sys.file_exists path) then Ok (create ())
  else
    match open_in path with
    | exception Sys_error m -> Error m
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Error (path ^ ": empty cache file")
          | first when first <> magic ->
            Error (Printf.sprintf "%s: not a %S file" path magic)
          | _ ->
            let t = create () in
            let rec go lineno =
              match input_line ic with
              | exception End_of_file -> Ok t
              | "" -> go (lineno + 1)
              | ln -> (
                match parse_line ln with
                | Some (k, s) ->
                  Hashtbl.replace t k s;
                  go (lineno + 1)
                | None ->
                  Error (Printf.sprintf "%s: malformed cache entry at line %d" path lineno))
            in
            go 2)

let save t ~path =
  let entries =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_char oc '\n';
      List.iter
        (fun (k, s) ->
          output_string oc (entry_line k s);
          output_char oc '\n')
        entries)
