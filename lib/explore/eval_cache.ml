type status = Success | Infeasible | Timeout | Crash

let status_name = function
  | Success -> "ok"
  | Infeasible -> "infeasible"
  | Timeout -> "timed_out"
  | Crash -> "crashed"

let status_of_name = function
  | "ok" -> Some Success
  | "infeasible" -> Some Infeasible
  | "timed_out" -> Some Timeout
  | "crashed" -> Some Crash
  | _ -> None

type summary = {
  status : status;
  area : float;
  steps : int;
  delay_ps : float;
  relaxations : int;
  regrades : int;
  recoveries : int;
  error : string;
}

let ok s = s.status = Success

(* The table is shared state: the CLI touches it from one thread, but the
   serve daemon keeps one warm cache across concurrent connection threads,
   so every entry access goes through [lock]. *)
type t = {
  entries : (string, summary) Hashtbl.t;
  lock : Mutex.t;
  mutable quarantined : int;
}

let c_hits = Obs.counter "explore.cache.hits"
let c_misses = Obs.counter "explore.cache.misses"
let c_quarantined = Obs.counter "cache.quarantined"

(* v2: the boolean ok column became a four-valued status
   (ok|infeasible|timed_out|crashed) when sweeps grew supervision. *)
let magic = "slackhls-explore-cache v2"

let create () =
  { entries = Hashtbl.create 64; lock = Mutex.create (); quarantined = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let size t = locked t (fun () -> Hashtbl.length t.entries)
let quarantined t = t.quarantined

let key ~digest ~lib ~config ~point_key =
  String.concat "|" [ digest; lib; config; point_key ]

let find t k =
  match locked t (fun () -> Hashtbl.find_opt t.entries k) with
  | Some _ as hit ->
    Obs.incr c_hits;
    hit
  | None ->
    Obs.incr c_misses;
    None

let add t k s = locked t (fun () -> Hashtbl.replace t.entries k s)

(* One entry per line:
     key \t status \t area \t steps \t delay \t relax \t regrades \t recov \t error
   [%h] floats round-trip exactly; the error message is [String.escaped]
   so it can carry anything the flow printer produced.  The same record
   format is the checkpoint journal's payload ([Journal]). *)
let entry_line k s =
  Printf.sprintf "%s\t%s\t%h\t%d\t%h\t%d\t%d\t%d\t%s" k (status_name s.status)
    s.area s.steps s.delay_ps s.relaxations s.regrades s.recoveries
    (String.escaped s.error)

let parse_line ln =
  match String.split_on_char '\t' ln with
  | [ k; status; area; steps; delay; relax; regrades; recov; error ] -> (
    match
      ( status_of_name status,
        float_of_string_opt area,
        int_of_string_opt steps,
        float_of_string_opt delay,
        int_of_string_opt relax,
        int_of_string_opt regrades,
        int_of_string_opt recov )
    with
    | Some status, Some area, Some steps, Some delay_ps, Some relaxations,
      Some regrades, Some recoveries ->
      let error = try Scanf.unescaped error with Scanf.Scan_failure _ -> error in
      Some
        ( k,
          { status; area; steps; delay_ps; relaxations; regrades; recoveries; error }
        )
    | _ -> None)
  | _ -> None

let load ~path =
  if not (Sys.file_exists path) then Ok (create ())
  else
    match open_in path with
    | exception Sys_error m -> Error m
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Error (path ^ ": empty cache file")
          | first when first <> magic ->
            Error (Printf.sprintf "%s: not a %S file" path magic)
          | _ ->
            (* Individually corrupt records (a torn write, a partial fsync)
               are quarantined — counted and skipped — so one bad line
               costs one evaluation, not the whole file. *)
            let t = create () in
            let rec go () =
              match input_line ic with
              | exception End_of_file -> Ok t
              | "" -> go ()
              | ln ->
                (match parse_line ln with
                | Some (k, s) -> Hashtbl.replace t.entries k s
                | None ->
                  t.quarantined <- t.quarantined + 1;
                  Obs.incr c_quarantined);
                go ()
            in
            go ())

let save t ~path =
  let entries =
    locked t (fun () -> Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.entries [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_char oc '\n';
      List.iter
        (fun (k, s) ->
          output_string oc (entry_line k s);
          output_char oc '\n')
        entries)
