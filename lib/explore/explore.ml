type point_result = {
  point : Explore_grid.point;
  pkey : string;
  summary : Eval_cache.summary;
  cached : bool;
}

type outcome = {
  design_name : string;
  digest : string;
  results : point_result list;
  frontier : point_result Pareto.entry list;
  total : int;
  evaluated : int;
  hits : int;
  failed : int;
}

let c_points = Obs.counter "explore.points"
let c_evals = Obs.counter "explore.evaluations"
let c_failures = Obs.counter "explore.failures"

(* Sweep-constant configuration fingerprint: everything outside the grid
   axes that can change a point's result must appear here, or stale cache
   entries would be served across configurations. *)
let config_fingerprint (c : Flows.config) =
  Printf.sprintf "validate=%s,maxrec=%d,maxrelax=%d,iibump=%b,merge=%b,buckets=%b"
    (Check.level_name c.Flows.validate)
    c.Flows.max_recoveries c.Flows.max_relaxations c.Flows.allow_ii_bump
    c.Flows.sharing.Flows.merge_add_sub c.Flows.sharing.Flows.width_buckets

let evaluate ~lib ~config ~name ~build (p : Explore_grid.point) =
  let dfg = build () in
  let design =
    Hls.design ?ii:p.Explore_grid.ii ~name ~clock:p.Explore_grid.clock dfg
  in
  let config = { config with Flows.recover_area = p.Explore_grid.recover } in
  match Hls.run ~lib ~config p.Explore_grid.flow design with
  | Ok r ->
    let steps = Schedule.steps_used r.Hls.report.Flows.schedule in
    {
      Eval_cache.ok = true;
      area = Hls.total_area r;
      steps;
      delay_ps = float_of_int steps *. p.Explore_grid.clock;
      relaxations = r.Hls.report.Flows.relaxations;
      regrades = r.Hls.report.Flows.regrades;
      recoveries = List.length r.Hls.report.Flows.recovery_log;
      error = "";
    }
  | Error e ->
    {
      Eval_cache.ok = false;
      area = 0.0;
      steps = 0;
      delay_ps = 0.0;
      relaxations = 0;
      regrades = 0;
      recoveries =
        (match e with
        | Flows.Validation_failed { recovery_log; _ } | Flows.Sched_failed { recovery_log; _ }
          -> List.length recovery_log
        | Flows.Invalid _ -> 0);
      error = Flows.error_message e;
    }

let run ?jobs ?cache ~lib ~config ~name ~build grid =
  Obs.span "explore.run" @@ fun () ->
  let digest = Dfg.digest (build ()) in
  let fingerprint = config_fingerprint config in
  let keyed =
    Explore_grid.points grid
    |> List.map (fun p -> (Explore_grid.point_key p, p))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Obs.add c_points (List.length keyed);
  let cache_key pkey =
    Eval_cache.key ~digest ~lib:(Library.name lib) ~config:fingerprint ~point_key:pkey
  in
  (* Split into cache hits and points that need a pipeline run. *)
  let hits, misses =
    List.partition_map
      (fun (pkey, p) ->
        match Option.bind cache (fun c -> Eval_cache.find c (cache_key pkey)) with
        | Some s -> Left { point = p; pkey; summary = s; cached = true }
        | None -> Right (pkey, p))
      keyed
  in
  let fresh =
    Obs.span "explore.evaluate" (fun () ->
        Domain_pool.map ?jobs
          (fun (pkey, p) ->
            { point = p; pkey; summary = evaluate ~lib ~config ~name ~build p;
              cached = false })
          (Array.of_list misses))
    |> Array.to_list
  in
  Obs.add c_evals (List.length fresh);
  (match cache with
  | Some c ->
    List.iter (fun r -> Eval_cache.add c (cache_key r.pkey) r.summary) fresh
  | None -> ());
  let results =
    List.sort (fun a b -> String.compare a.pkey b.pkey) (hits @ fresh)
  in
  let failed = List.length (List.filter (fun r -> not r.summary.Eval_cache.ok) results) in
  Obs.add c_failures failed;
  let frontier =
    List.fold_left
      (fun acc r ->
        if r.summary.Eval_cache.ok then
          Pareto.add
            {
              Pareto.key = r.pkey;
              area = r.summary.Eval_cache.area;
              delay = r.summary.Eval_cache.delay_ps;
              tag = r;
            }
            acc
        else acc)
      Pareto.empty results
    |> Pareto.frontier
  in
  {
    design_name = name;
    digest;
    results;
    frontier;
    total = List.length results;
    evaluated = List.length fresh;
    hits = List.length hits;
    failed;
  }

(* ------------------------------------------------------------------ *)
(* Renderings *)

let csv_header =
  "key,flow,clock_ps,ii,recover,status,area,steps,delay_ps,relaxations,regrades,recoveries,cached,frontier"

let on_frontier outcome r =
  List.exists (fun (e : point_result Pareto.entry) -> e.Pareto.key = r.pkey)
    outcome.frontier

let csv_row outcome r =
  let p = r.point and s = r.summary in
  Printf.sprintf "%s,%s,%.3f,%s,%s,%s,%.1f,%d,%.1f,%d,%d,%d,%d,%d"
    r.pkey
    (Explore_grid.flow_short p.Explore_grid.flow)
    p.Explore_grid.clock
    (match p.Explore_grid.ii with Some i -> string_of_int i | None -> "none")
    (if p.Explore_grid.recover then "on" else "off")
    (if s.Eval_cache.ok then "ok" else "fail")
    s.Eval_cache.area s.Eval_cache.steps s.Eval_cache.delay_ps
    s.Eval_cache.relaxations s.Eval_cache.regrades s.Eval_cache.recoveries
    (if r.cached then 1 else 0)
    (if on_frontier outcome r then 1 else 0)

let to_csv outcome =
  String.concat "\n" (csv_header :: List.map (csv_row outcome) outcome.results) ^ "\n"

let to_json outcome =
  let open Obs.Json in
  let point_obj (r : point_result) =
    let p = r.point and s = r.summary in
    Obj
      [
        ("key", String r.pkey);
        ("flow", String (Explore_grid.flow_short p.Explore_grid.flow));
        ("clock_ps", Float p.Explore_grid.clock);
        ("ii", match p.Explore_grid.ii with Some i -> Int i | None -> Null);
        ("recover", Bool p.Explore_grid.recover);
        ("area", Float s.Eval_cache.area);
        ("steps", Int s.Eval_cache.steps);
        ("delay_ps", Float s.Eval_cache.delay_ps);
      ]
  in
  to_string
    (Obj
       [
         ("design", String outcome.design_name);
         ("digest", String outcome.digest);
         ("total", Int outcome.total);
         ("evaluated", Int outcome.evaluated);
         ("cache_hits", Int outcome.hits);
         ("failed", Int outcome.failed);
         ( "frontier",
           List
             (List.map
                (fun (e : point_result Pareto.entry) -> point_obj e.Pareto.tag)
                outcome.frontier) );
       ])

let render_summary outcome =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "explore: design %s (digest %s)\n" outcome.design_name
       (String.sub outcome.digest 0 12));
  Buffer.add_string buf
    (Printf.sprintf "%d points: %d evaluated, %d cached, %d failed\n" outcome.total
       outcome.evaluated outcome.hits outcome.failed);
  let failures =
    List.filter (fun r -> not r.summary.Eval_cache.ok) outcome.results
  in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  infeasible %s: %s\n" r.pkey
           (match String.index_opt r.summary.Eval_cache.error '\n' with
           | Some i -> String.sub r.summary.Eval_cache.error 0 i
           | None -> r.summary.Eval_cache.error)))
    failures;
  Buffer.add_string buf
    (Printf.sprintf "frontier (%d points):\n" (List.length outcome.frontier));
  if outcome.frontier <> [] then begin
    let t =
      Text_table.create
        ~headers:[ "flow"; "clock ps"; "ii"; "recover"; "area"; "delay ps"; "steps" ]
    in
    List.iter
      (fun (e : point_result Pareto.entry) ->
        let r = e.Pareto.tag in
        let p = r.point and s = r.summary in
        Text_table.add_row t
          [
            Explore_grid.flow_short p.Explore_grid.flow;
            Printf.sprintf "%.0f" p.Explore_grid.clock;
            (match p.Explore_grid.ii with Some i -> string_of_int i | None -> "-");
            (if p.Explore_grid.recover then "on" else "off");
            Text_table.cell_float ~decimals:1 s.Eval_cache.area;
            Text_table.cell_float ~decimals:1 s.Eval_cache.delay_ps;
            string_of_int s.Eval_cache.steps;
          ])
      outcome.frontier;
    Buffer.add_string buf (Text_table.render t)
  end;
  Buffer.contents buf
