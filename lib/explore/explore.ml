type origin = Fresh | Cached | Resumed

type point_result = {
  point : Explore_grid.point;
  pkey : string;
  summary : Eval_cache.summary;
  origin : origin;
}

type outcome = {
  design_name : string;
  digest : string;
  results : point_result list;
  frontier : point_result Pareto.entry list;
  total : int;
  evaluated : int;
  hits : int;
  resumed : int;
  failed : int;
  timed_out : int;
  crashed : int;
  pending : int;
}

let partial o = o.pending > 0

let c_points = Obs.counter "explore.points"
let c_evals = Obs.counter "explore.evaluations"
let c_failures = Obs.counter "explore.failures"
let c_timeouts = Obs.counter "explore.timeouts"
let c_crashes = Obs.counter "explore.crashes"
let c_resumed = Obs.counter "explore.resumed"

(* Sweep-constant configuration fingerprint: everything outside the grid
   axes that can change a point's result must appear here, or stale cache
   entries would be served across configurations. *)
let config_fingerprint (c : Flows.config) =
  Printf.sprintf "validate=%s,maxrec=%d,maxrelax=%d,iibump=%b,merge=%b,buckets=%b"
    (Check.level_name c.Flows.validate)
    c.Flows.max_recoveries c.Flows.max_relaxations c.Flows.allow_ii_bump
    c.Flows.sharing.Flows.merge_add_sub c.Flows.sharing.Flows.width_buckets

let evaluate ?deadline ~lib ~config ~name ~build (p : Explore_grid.point) =
  (* The deadline clock starts when the point starts, not when the sweep
     does: a point stuck in a validator or the recovery ladder trips its
     own budget regardless of queue position. *)
  let cancel =
    match deadline with
    | Some seconds -> Cancel.after ~seconds
    | None -> Cancel.never
  in
  let dfg = build () in
  let design =
    Hls.design ?ii:p.Explore_grid.ii ~name ~clock:p.Explore_grid.clock dfg
  in
  let config = { config with Flows.recover_area = p.Explore_grid.recover } in
  match Hls.run ~lib ~config ~cancel p.Explore_grid.flow design with
  | Ok r ->
    let steps = Schedule.steps_used r.Hls.report.Flows.schedule in
    {
      Eval_cache.status = Eval_cache.Success;
      area = Hls.total_area r;
      steps;
      delay_ps = float_of_int steps *. p.Explore_grid.clock;
      relaxations = r.Hls.report.Flows.relaxations;
      regrades = r.Hls.report.Flows.regrades;
      recoveries = List.length r.Hls.report.Flows.recovery_log;
      error = "";
    }
  | Error e ->
    {
      Eval_cache.status =
        (match e with
        | Flows.Timed_out _ -> Eval_cache.Timeout
        | Flows.Validation_failed _ | Flows.Sched_failed _ | Flows.Invalid _ ->
          Eval_cache.Infeasible);
      area = 0.0;
      steps = 0;
      delay_ps = 0.0;
      relaxations = 0;
      regrades = 0;
      recoveries =
        (match e with
        | Flows.Validation_failed { recovery_log; _ }
        | Flows.Sched_failed { recovery_log; _ }
        | Flows.Timed_out { recovery_log; _ } -> List.length recovery_log
        | Flows.Invalid _ -> 0);
      error = Flows.error_message e;
    }

let crash_summary (c : Domain_pool.crash) =
  {
    Eval_cache.status = Eval_cache.Crash;
    area = 0.0;
    steps = 0;
    delay_ps = 0.0;
    relaxations = 0;
    regrades = 0;
    recoveries = 0;
    error = Printf.sprintf "%s (after %d attempts)" c.Domain_pool.message
        c.Domain_pool.attempts;
  }

let count_status st results =
  List.length
    (List.filter (fun r -> r.summary.Eval_cache.status = st) results)

let run ?jobs ?pool ?(retries = 0) ?(strict = false) ?(recheck_crashes = false)
    ?point_deadline ?(cancel = Cancel.never) ?cache ?journal ?(resume = [])
    ?select ?on_point ~lib ~config ~name ~build grid =
  Obs.span "explore.run" @@ fun () ->
  let digest = Dfg.digest (build ()) in
  let fingerprint = config_fingerprint config in
  let keyed =
    Explore_grid.points grid
    |> List.map (fun p -> (Explore_grid.point_key p, p))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* Shard filter: applied to the canonically sorted key list, so the
     same predicate partitions identically in every process. *)
  let keyed =
    match select with
    | None -> keyed
    | Some f -> List.filter (fun (pkey, _) -> f pkey) keyed
  in
  let total = List.length keyed in
  Obs.add c_points total;
  let cache_key pkey =
    Eval_cache.key ~digest ~lib:(Library.name lib) ~config:fingerprint ~point_key:pkey
  in
  (* Journal records carry the full cache key, so entries from another
     design, library or sweep configuration can never match here. *)
  let journal_tbl = Hashtbl.create 64 in
  List.iter (fun (k, s) -> Hashtbl.replace journal_tbl k s) resume;
  let record_journal ck s =
    (match journal with Some w -> Journal.record w ~key:ck s | None -> ());
    (* Completion hook, fired with the full cache key at every site that
       durably records a point (cache hits, fresh results, crash
       summaries) — the dispatch lease registry feeds heartbeat salvage
       from it.  Runs in worker domains: must be thread-safe. *)
    match on_point with Some f -> f ck s | None -> ()
  in
  (* Three-way split: points the resume journal answers, points the cache
     answers, and points that need a pipeline run.  With [recheck_crashes]
     a recorded [Crash] never answers a point — a crash may have been
     transient (the serve daemon's request-level retry policy re-runs the
     sweep with this set after a backoff), so the point is re-evaluated
     and its fresh summary overwrites the quarantined one. *)
  let usable (s : Eval_cache.summary) =
    not (recheck_crashes && s.Eval_cache.status = Eval_cache.Crash)
  in
  let prior, misses =
    List.partition_map
      (fun (pkey, p) ->
        let ck = cache_key pkey in
        match Hashtbl.find_opt journal_tbl ck with
        | Some s when usable s ->
          Left { point = p; pkey; summary = s; origin = Resumed }
        | Some _ | None -> (
          match Option.bind cache (fun c -> Eval_cache.find c ck) with
          | Some s when usable s ->
            Left { point = p; pkey; summary = s; origin = Cached }
          | Some _ | None -> Right (pkey, p)))
      keyed
  in
  let n_resumed =
    List.length (List.filter (fun r -> r.origin = Resumed) prior)
  in
  Obs.add c_resumed n_resumed;
  (* Cache hits are completed points too: journal them so a later resume
     does not depend on the cache file still being around.  Resumed points
     are already in the journal being appended to. *)
  List.iter
    (fun r ->
      if r.origin = Cached then record_journal (cache_key r.pkey) r.summary)
    prior;
  let miss_arr = Array.of_list misses in
  let outcomes =
    Obs.span "explore.evaluate" (fun () ->
        Domain_pool.run ?jobs ?pool ~retries
          ~should_stop:(fun () -> Cancel.cancelled cancel)
          (fun (pkey, p) ->
            let summary = evaluate ?deadline:point_deadline ~lib ~config ~name ~build p in
            (* Journal inside the worker, before the point is reported
               done: once the fsync returns this point survives any kill. *)
            record_journal (cache_key pkey) summary;
            { point = p; pkey; summary; origin = Fresh })
          miss_arr)
  in
  let fresh = ref [] in
  let pending = ref 0 in
  let first_crash = ref None in
  Array.iteri
    (fun i o ->
      let pkey, p = miss_arr.(i) in
      match o with
      | Domain_pool.Done r -> fresh := r :: !fresh
      | Domain_pool.Crashed c ->
        if !first_crash = None then first_crash := Some c;
        let summary = crash_summary c in
        record_journal (cache_key pkey) summary;
        fresh := { point = p; pkey; summary; origin = Fresh } :: !fresh
      | Domain_pool.Skipped -> incr pending)
    outcomes;
  let fresh = List.rev !fresh in
  Obs.add c_evals (List.length fresh);
  (* Strict mode re-raises after the journal has every completed point:
     the sweep dies loudly but resumably.  The lowest-indexed crash wins —
     deterministic whatever the worker interleaving was. *)
  (match !first_crash with
  | Some c when strict ->
    Printexc.raise_with_backtrace c.Domain_pool.exn c.Domain_pool.backtrace
  | Some _ | None -> ());
  (match cache with
  | Some c ->
    List.iter (fun r -> Eval_cache.add c (cache_key r.pkey) r.summary) fresh
  | None -> ());
  let results =
    List.sort (fun a b -> String.compare a.pkey b.pkey) (prior @ fresh)
  in
  let failed = count_status Eval_cache.Infeasible results in
  let timed_out = count_status Eval_cache.Timeout results in
  let crashed = count_status Eval_cache.Crash results in
  Obs.add c_failures (count_status Eval_cache.Infeasible fresh);
  Obs.add c_timeouts (count_status Eval_cache.Timeout fresh);
  Obs.add c_crashes (count_status Eval_cache.Crash fresh);
  let frontier =
    List.fold_left
      (fun acc r ->
        if Eval_cache.ok r.summary then
          Pareto.add
            {
              Pareto.key = r.pkey;
              area = r.summary.Eval_cache.area;
              delay = r.summary.Eval_cache.delay_ps;
              tag = r;
            }
            acc
        else acc)
      Pareto.empty results
    |> Pareto.frontier
  in
  {
    design_name = name;
    digest;
    results;
    frontier;
    total;
    (* Resumed points were evaluated by the same logical sweep — counting
       them here is what makes a resumed run's renderings byte-identical
       to an uninterrupted one. *)
    evaluated = List.length fresh + n_resumed;
    hits = List.length prior - n_resumed;
    resumed = n_resumed;
    failed;
    timed_out;
    crashed;
    pending = !pending;
  }

(* ------------------------------------------------------------------ *)
(* Renderings *)

let csv_header =
  "key,flow,clock_ps,ii,recover,status,area,steps,delay_ps,relaxations,regrades,recoveries,cached,frontier"

let on_frontier outcome r =
  List.exists (fun (e : point_result Pareto.entry) -> e.Pareto.key = r.pkey)
    outcome.frontier

let csv_row outcome r =
  let p = r.point and s = r.summary in
  Printf.sprintf "%s,%s,%.3f,%s,%s,%s,%.1f,%d,%.1f,%d,%d,%d,%d,%d"
    r.pkey
    (Explore_grid.flow_short p.Explore_grid.flow)
    p.Explore_grid.clock
    (match p.Explore_grid.ii with Some i -> string_of_int i | None -> "none")
    (if p.Explore_grid.recover then "on" else "off")
    (Eval_cache.status_name s.Eval_cache.status)
    s.Eval_cache.area s.Eval_cache.steps s.Eval_cache.delay_ps
    s.Eval_cache.relaxations s.Eval_cache.regrades s.Eval_cache.recoveries
    (* A resumed point renders exactly as it did in the run that journaled
       it (where it was fresh), so cached=1 means cache hit only. *)
    (if r.origin = Cached then 1 else 0)
    (if on_frontier outcome r then 1 else 0)

let to_csv outcome =
  String.concat "\n" (csv_header :: List.map (csv_row outcome) outcome.results) ^ "\n"

let to_json outcome =
  let open Obs.Json in
  let point_obj (r : point_result) =
    let p = r.point and s = r.summary in
    Obj
      [
        ("key", String r.pkey);
        ("flow", String (Explore_grid.flow_short p.Explore_grid.flow));
        ("clock_ps", Float p.Explore_grid.clock);
        ("ii", match p.Explore_grid.ii with Some i -> Int i | None -> Null);
        ("recover", Bool p.Explore_grid.recover);
        ("area", Float s.Eval_cache.area);
        ("steps", Int s.Eval_cache.steps);
        ("delay_ps", Float s.Eval_cache.delay_ps);
      ]
  in
  (* No [resumed] field: a resumed run must render byte-identically to an
     uninterrupted one, and the resumed count is the one number that
     differs between them.  The text summary carries it instead. *)
  to_string
    (Obj
       [
         ("design", String outcome.design_name);
         ("digest", String outcome.digest);
         ("total", Int outcome.total);
         ("evaluated", Int outcome.evaluated);
         ("cache_hits", Int outcome.hits);
         ("failed", Int outcome.failed);
         ("timed_out", Int outcome.timed_out);
         ("crashed", Int outcome.crashed);
         ("pending", Int outcome.pending);
         ("partial", Bool (partial outcome));
         ( "frontier",
           List
             (List.map
                (fun (e : point_result Pareto.entry) -> point_obj e.Pareto.tag)
                outcome.frontier) );
       ])

let render_summary outcome =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "explore: design %s (digest %s)\n" outcome.design_name
       (String.sub outcome.digest 0 12));
  Buffer.add_string buf
    (Printf.sprintf "%d points: %d evaluated, %d cached, resumed=%d, %d failed\n"
       outcome.total outcome.evaluated outcome.hits outcome.resumed
       outcome.failed);
  if outcome.timed_out > 0 || outcome.crashed > 0 then
    Buffer.add_string buf
      (Printf.sprintf "supervision: %d timed out, %d crashed\n"
         outcome.timed_out outcome.crashed);
  if partial outcome then
    Buffer.add_string buf
      (Printf.sprintf
         "partial sweep: %d points pending (re-run with --resume to finish)\n"
         outcome.pending);
  let failures =
    List.filter (fun r -> not (Eval_cache.ok r.summary)) outcome.results
  in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s: %s\n"
           (Eval_cache.status_name r.summary.Eval_cache.status)
           r.pkey
           (match String.index_opt r.summary.Eval_cache.error '\n' with
           | Some i -> String.sub r.summary.Eval_cache.error 0 i
           | None -> r.summary.Eval_cache.error)))
    failures;
  Buffer.add_string buf
    (Printf.sprintf "frontier (%d points):\n" (List.length outcome.frontier));
  if outcome.frontier <> [] then begin
    let t =
      Text_table.create
        ~headers:[ "flow"; "clock ps"; "ii"; "recover"; "area"; "delay ps"; "steps" ]
    in
    List.iter
      (fun (e : point_result Pareto.entry) ->
        let r = e.Pareto.tag in
        let p = r.point and s = r.summary in
        Text_table.add_row t
          [
            Explore_grid.flow_short p.Explore_grid.flow;
            Printf.sprintf "%.0f" p.Explore_grid.clock;
            (match p.Explore_grid.ii with Some i -> string_of_int i | None -> "-");
            (if p.Explore_grid.recover then "on" else "off");
            Text_table.cell_float ~decimals:1 s.Eval_cache.area;
            Text_table.cell_float ~decimals:1 s.Eval_cache.delay_ps;
            string_of_int s.Eval_cache.steps;
          ])
      outcome.frontier;
    Buffer.add_string buf (Text_table.render t)
  end;
  Buffer.contents buf
