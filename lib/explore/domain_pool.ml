let c_tasks = Obs.counter "explore.pool.tasks"
let c_spawns = Obs.counter "explore.pool.domains"
let c_retries = Obs.counter "explore.pool.retries"
let c_crashes = Obs.counter "explore.pool.crashes"
let c_skipped = Obs.counter "explore.pool.skipped"

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type crash = {
  attempts : int;
  message : string;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

type 'b outcome = Done of 'b | Crashed of crash | Skipped

(* Run one task under the retry policy.  Retries happen immediately, in
   the same worker, so the schedule of attempts is deterministic per
   task. *)
let attempt_task ~retries f x =
  let rec go attempt =
    match f x with
    | v -> Done v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if attempt <= retries then begin
        Obs.incr c_retries;
        go (attempt + 1)
      end
      else begin
        Obs.incr c_crashes;
        Crashed
          { attempts = attempt; message = Printexc.to_string e; exn = e;
            backtrace = bt }
      end
  in
  go 1

let no_stop () = false

let run ?jobs ?(retries = 0) ?(should_stop = no_stop) f tasks =
  let n = Array.length tasks in
  let jobs = min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n in
  Obs.add c_tasks n;
  (* Worker provenance: one [Worker_sample] per completed task, carrying
     the worker's index (stable across runs, unlike domain ids) and its
     busy/elapsed utilization.  All timing reads are skipped when events
     are off. *)
  let ev_on = Obs.Events.enabled () in
  let timed_task w ~t0 ~busy ~tasks_done x =
    let s = Obs.now_ns () in
    (* Gc counters are domain-local: the delta is this task's own churn. *)
    let g0 = Obs.Prof.sample () in
    let r = attempt_task ~retries f x in
    let g = Obs.Prof.delta ~before:g0 ~after:(Obs.Prof.sample ()) in
    busy := !busy +. Int64.to_float (Int64.sub (Obs.now_ns ()) s);
    incr tasks_done;
    let elapsed = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) in
    let utilization =
      if elapsed <= 0.0 then 1.0 else Float.min 1.0 (!busy /. elapsed)
    in
    Obs.Events.emit
      (Obs.Events.Worker_sample
         {
           domain = w;
           tasks_done = !tasks_done;
           utilization;
           minor_words = g.Obs.Prof.minor_words;
           major_words = g.Obs.Prof.major_words;
         });
    r
  in
  let results =
    if jobs <= 1 || n <= 1 then begin
      let t0 = Obs.now_ns () in
      let busy = ref 0.0 in
      let tasks_done = ref 0 in
      Array.map
        (fun x ->
          if should_stop () then Skipped
          else if ev_on then timed_task 0 ~t0 ~busy ~tasks_done x
          else attempt_task ~retries f x)
        tasks
    end
    else begin
      let next = Atomic.make 0 in
      let worker w () =
        let t0 = Obs.now_ns () in
        let busy = ref 0.0 in
        let tasks_done = ref 0 in
        let buf = ref [] in
        let rec loop () =
          (* The stop poll gates task claiming only: in-flight tasks drain
             to completion (bounded by their own point deadlines), so a
             cancelled sweep still journals everything it finished. *)
          if not (should_stop ()) then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (if ev_on then buf := (i, timed_task w ~t0 ~busy ~tasks_done tasks.(i)) :: !buf
               else buf := (i, attempt_task ~retries f tasks.(i)) :: !buf);
              loop ()
            end
          end
        in
        loop ();
        !buf
      in
      Obs.add c_spawns jobs;
      let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
      let merged = Array.make n Skipped in
      Array.iter
        (fun d -> List.iter (fun (i, r) -> merged.(i) <- r) (Domain.join d))
        domains;
      merged
    end
  in
  Array.iter (function Skipped -> Obs.incr c_skipped | Done _ | Crashed _ -> ()) results;
  results

let map ?jobs f tasks =
  let results = run ?jobs ~retries:0 f tasks in
  (* Strict semantics: re-raise the lowest-indexed crash (deterministic
     regardless of worker interleaving); with no stop predicate nothing is
     ever Skipped. *)
  Array.iter
    (function
      | Crashed c -> Printexc.raise_with_backtrace c.exn c.backtrace
      | Done _ | Skipped -> ())
    results;
  Array.map
    (function
      | Done v -> v
      | Crashed _ | Skipped -> assert false (* raised / impossible above *))
    results
