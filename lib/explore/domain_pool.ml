let c_tasks = Obs.counter "explore.pool.tasks"
let c_spawns = Obs.counter "explore.pool.domains"
let c_retries = Obs.counter "explore.pool.retries"
let c_crashes = Obs.counter "explore.pool.crashes"
let c_skipped = Obs.counter "explore.pool.skipped"

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type crash = {
  attempts : int;
  message : string;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

type 'b outcome = Done of 'b | Crashed of crash | Skipped

(* Run one task under the retry policy.  Retries happen immediately, in
   the same worker, so the schedule of attempts is deterministic per
   task. *)
let attempt_task ~retries f x =
  let rec go attempt =
    match f x with
    | v -> Done v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if attempt <= retries then begin
        Obs.incr c_retries;
        go (attempt + 1)
      end
      else begin
        Obs.incr c_crashes;
        Crashed
          { attempts = attempt; message = Printexc.to_string e; exn = e;
            backtrace = bt }
      end
  in
  go 1

let no_stop () = false

(* Per-worker provenance context: one [Worker_sample] per completed task,
   carrying the worker's index (stable across runs, unlike domain ids) and
   its busy/elapsed utilization.  A persistent pool's workers keep one
   context across batches, so their utilization spans the pool's life. *)
type wctx = { w : int; t0 : int64; busy : float ref; tasks_done : int ref }

let new_wctx w = { w; t0 = Obs.now_ns (); busy = ref 0.0; tasks_done = ref 0 }

let timed_task ctx ~retries f x =
  let s = Obs.now_ns () in
  (* Gc counters are domain-local: the delta is this task's own churn. *)
  let g0 = Obs.Prof.sample () in
  let r = attempt_task ~retries f x in
  let g = Obs.Prof.delta ~before:g0 ~after:(Obs.Prof.sample ()) in
  ctx.busy := !(ctx.busy) +. Int64.to_float (Int64.sub (Obs.now_ns ()) s);
  incr ctx.tasks_done;
  let elapsed = Int64.to_float (Int64.sub (Obs.now_ns ()) ctx.t0) in
  let utilization =
    if elapsed <= 0.0 then 1.0 else Float.min 1.0 (!(ctx.busy) /. elapsed)
  in
  Obs.Events.emit
    (Obs.Events.Worker_sample
       {
         domain = ctx.w;
         tasks_done = !(ctx.tasks_done);
         utilization;
         minor_words = g.Obs.Prof.minor_words;
         major_words = g.Obs.Prof.major_words;
       });
  r

(* All timing reads are skipped when events are off. *)
let exec_task ctx ~retries f x =
  if Obs.Events.enabled () then timed_task ctx ~retries f x
  else attempt_task ~retries f x

(* ------------------------------------------------------------------ *)
(* Persistent pools

   A fixed set of worker domains pulling jobs off one shared queue.  Batch
   submitters ({!run} with [?pool]) enqueue their tasks and block until
   every one has been executed; concurrent batches interleave in FIFO
   order, which is what lets the serve daemon multiplex many requests onto
   one set of domains instead of spawning per request. *)

type job = wctx -> unit

type pool = {
  pool_jobs : int;
  q : job Queue.t;
  m : Mutex.t;
  work_cv : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
}

let pool_jobs p = p.pool_jobs

let pending p =
  Mutex.lock p.m;
  let n = Queue.length p.q in
  Mutex.unlock p.m;
  n

let create ~jobs =
  let jobs = max 1 jobs in
  let p =
    {
      pool_jobs = jobs;
      q = Queue.create ();
      m = Mutex.create ();
      work_cv = Condition.create ();
      stopping = false;
      domains = [||];
    }
  in
  Obs.add c_spawns jobs;
  let worker w () =
    let ctx = new_wctx w in
    let rec loop () =
      Mutex.lock p.m;
      while Queue.is_empty p.q && not p.stopping do
        Condition.wait p.work_cv p.m
      done;
      (* Shutdown drains: a worker only exits once the queue is empty, so
         no submitted batch can be left waiting forever. *)
      if Queue.is_empty p.q then Mutex.unlock p.m
      else begin
        let job = Queue.pop p.q in
        Mutex.unlock p.m;
        job ctx;
        loop ()
      end
    in
    loop ()
  in
  p.domains <- Array.init jobs (fun w -> Domain.spawn (worker w));
  p

let shutdown p =
  Mutex.lock p.m;
  if p.stopping then Mutex.unlock p.m
  else begin
    p.stopping <- true;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
  end

(* Submit a batch and wait for it.  [results] writes happen in worker
   domains; the batch mutex/condvar pair orders them before the waiting
   thread reads the array.  Jobs never raise: [attempt_task] catches
   everything, so [remaining] always reaches zero. *)
let run_on_pool p ~retries ~should_stop f tasks =
  let n = Array.length tasks in
  let results = Array.make n Skipped in
  if n > 0 then begin
    let bm = Mutex.create () in
    let bcv = Condition.create () in
    let remaining = ref n in
    let job i ctx =
      (* The stop poll gates execution only: a stopped batch's queued jobs
         drain as fast no-ops and report [Skipped]. *)
      if not (should_stop ()) then
        results.(i) <- exec_task ctx ~retries f tasks.(i);
      Mutex.lock bm;
      decr remaining;
      if !remaining = 0 then Condition.broadcast bcv;
      Mutex.unlock bm
    in
    Mutex.lock p.m;
    if p.stopping then begin
      Mutex.unlock p.m;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (job i) p.q
    done;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    Mutex.lock bm;
    while !remaining > 0 do
      Condition.wait bcv bm
    done;
    Mutex.unlock bm
  end;
  results

(* ------------------------------------------------------------------ *)
(* Batch runs *)

let run ?jobs ?pool ?(retries = 0) ?(should_stop = no_stop) f tasks =
  let n = Array.length tasks in
  Obs.add c_tasks n;
  let results =
    match pool with
    | Some p -> run_on_pool p ~retries ~should_stop f tasks
    | None ->
      let jobs =
        min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
      in
      if jobs <= 1 || n <= 1 then begin
        let ctx = new_wctx 0 in
        Array.map
          (fun x ->
            if should_stop () then Skipped else exec_task ctx ~retries f x)
          tasks
      end
      else begin
        let next = Atomic.make 0 in
        let worker w () =
          let ctx = new_wctx w in
          let buf = ref [] in
          let rec loop () =
            (* The stop poll gates task claiming only: in-flight tasks drain
               to completion (bounded by their own point deadlines), so a
               cancelled sweep still journals everything it finished. *)
            if not (should_stop ()) then begin
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                buf := (i, exec_task ctx ~retries f tasks.(i)) :: !buf;
                loop ()
              end
            end
          in
          loop ();
          !buf
        in
        Obs.add c_spawns jobs;
        let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
        let merged = Array.make n Skipped in
        Array.iter
          (fun d -> List.iter (fun (i, r) -> merged.(i) <- r) (Domain.join d))
          domains;
        merged
      end
  in
  Array.iter (function Skipped -> Obs.incr c_skipped | Done _ | Crashed _ -> ()) results;
  results

let map ?jobs f tasks =
  let results = run ?jobs ~retries:0 f tasks in
  (* Strict semantics: re-raise the lowest-indexed crash (deterministic
     regardless of worker interleaving); with no stop predicate nothing is
     ever Skipped. *)
  Array.iter
    (function
      | Crashed c -> Printexc.raise_with_backtrace c.exn c.backtrace
      | Done _ | Skipped -> ())
    results;
  Array.map
    (function
      | Done v -> v
      | Crashed _ | Skipped -> assert false (* raised / impossible above *))
    results
