let c_tasks = Obs.counter "explore.pool.tasks"
let c_spawns = Obs.counter "explore.pool.domains"

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map ?jobs f tasks =
  let n = Array.length tasks in
  let jobs = min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n in
  Obs.add c_tasks n;
  if jobs <= 1 || n <= 1 then Array.map f tasks
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let buf = ref [] in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (f tasks.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          buf := (i, r) :: !buf;
          loop ()
        end
      in
      loop ();
      !buf
    in
    Obs.add c_spawns jobs;
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    let merged = Array.make n None in
    Array.iter
      (fun d -> List.iter (fun (i, r) -> merged.(i) <- Some r) (Domain.join d))
      domains;
    Array.iteri
      (fun _ r ->
        match r with
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      merged;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false (* every slot filled above *))
      merged
  end
