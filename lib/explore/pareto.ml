type 'a entry = { key : string; area : float; delay : float; tag : 'a }

(* Sorted by (area asc, delay asc, key asc).  Frontier invariant: along
   the list, area strictly ascends and delay strictly descends, so both
   orders coincide and membership checks are a linear scan over a small
   list (frontier sizes are tens of points at most). *)
type 'a t = 'a entry list

let empty = []
let size = List.length
let is_empty t = t = []

let dominates a b =
  a.area <= b.area && a.delay <= b.delay && (a.area < b.area || a.delay < b.delay)

let same_coords a b = a.area = b.area && a.delay = b.delay

let compare_entries a b =
  match Float.compare a.area b.area with
  | 0 -> (
    match Float.compare a.delay b.delay with
    | 0 -> String.compare a.key b.key
    | c -> c)
  | c -> c

let add e t =
  if not (Float.is_finite e.area && Float.is_finite e.delay) then
    invalid_arg "Pareto.add: non-finite objective";
  let beaten =
    List.exists
      (fun x -> dominates x e || (same_coords x e && String.compare x.key e.key <= 0))
      t
  in
  if beaten then t
  else
    let survivors =
      List.filter (fun x -> not (dominates e x || same_coords e x)) t
    in
    List.sort compare_entries (e :: survivors)

let of_list es = List.fold_left (fun t e -> add e t) empty es
let frontier t = t
