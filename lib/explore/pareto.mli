(** Incremental Pareto frontier over the paper's two objectives: area and
    delay, both minimised (the Fig. 9 / Table 1 tradeoff).

    A frontier is a set of mutually non-dominated entries.  [add] prunes:
    an entry dominated by the frontier is dropped, and inserting an entry
    drops every frontier member it dominates.  Exact coordinate ties are
    broken by the entry's [key] (smallest wins), which makes the frontier a
    pure function of the entry {e set} — independent of insertion order.
    The explore engine relies on this for its determinism guarantee: the
    frontier of a sweep is byte-identical whatever the worker count. *)

type 'a entry = {
  key : string;   (** canonical config key; the determinism tie-break *)
  area : float;
  delay : float;
  tag : 'a;       (** caller payload carried through pruning *)
}

type 'a t

val empty : 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val dominates : 'a entry -> 'b entry -> bool
(** [dominates a b]: [a] is no worse on both objectives and strictly
    better on at least one. *)

val add : 'a entry -> 'a t -> 'a t
(** Raises [Invalid_argument] on non-finite coordinates. *)

val of_list : 'a entry list -> 'a t

val frontier : 'a t -> 'a entry list
(** Ascending area; delay strictly descends along the list. *)
