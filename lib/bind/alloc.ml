module Inst_id = Id.Make ()

type inst = {
  id : Inst_id.t;
  rk : Resource_kind.t;
  width : int;
  curve : Curve.t;
  mutable point : Curve.point;
}

type grading = Continuous | Discrete

type t = { lib : Library.t; mode : grading; insts : inst Vec.t }

let create ?(grading = Continuous) lib = { lib; mode = grading; insts = Vec.create () }
let library t = t.lib
let grading t = t.mode

let snap t curve delay =
  match t.mode with
  | Continuous -> Curve.point_at curve delay
  | Discrete -> Curve.snap_down curve delay

(* Telemetry: instance/grade churn quantifies the binding work each flow
   pays (the conventional flow regrades in recovery, the slowest-first
   flow upgrades on the fly, the slack flow should do little of either). *)
let c_instances = Obs.counter "bind.instances"
let c_upgrades = Obs.counter "bind.upgrades"
let c_regrades = Obs.counter "bind.regrades"

let add_instance t ~rk ~width ~delay =
  let curve = Library.curve t.lib rk ~width in
  let point = snap t curve delay in
  let id = Inst_id.of_int (Vec.length t.insts) in
  let inst = { id; rk; width; curve; point } in
  ignore (Vec.push t.insts inst);
  Obs.incr c_instances;
  inst

let instance t id = Vec.get t.insts (Inst_id.to_int id)
let instances t = Vec.to_list t.insts
let count t = Vec.length t.insts

let compatible inst ~op_kind ~width =
  Resource_kind.can_execute inst.rk op_kind && inst.width >= width

let candidates t ~op_kind ~width =
  instances t
  |> List.filter (fun i -> compatible i ~op_kind ~width)
  |> List.sort (fun a b -> Float.compare b.point.Curve.delay a.point.Curve.delay)

let set_grade t id ~delay =
  let i = instance t id in
  Obs.incr c_regrades;
  i.point <- snap t i.curve delay

let upgrade_to_fit t id ~max_delay =
  let i = instance t id in
  if i.point.Curve.delay <= max_delay then true
  else if Curve.min_delay i.curve > max_delay then false
  else begin
    i.point <- snap t i.curve max_delay;
    Obs.incr c_upgrades;
    true
  end

let fu_area t = Vec.fold_left (fun acc i -> acc +. i.point.Curve.area) 0.0 t.insts

let copy t =
  let fresh = { lib = t.lib; mode = t.mode; insts = Vec.create () } in
  Vec.iter (fun i -> ignore (Vec.push fresh.insts { i with point = i.point })) t.insts;
  fresh

let pp ppf t =
  Format.fprintf ppf "@[<v>alloc: %d instance(s)@," (count t);
  Vec.iter
    (fun i ->
      Format.fprintf ppf "  %a: %a w%d @@ %g ps / %g area@," Inst_id.pp i.id
        Resource_kind.pp i.rk i.width i.point.Curve.delay i.point.Curve.area)
    t.insts;
  Format.fprintf ppf "@]"
