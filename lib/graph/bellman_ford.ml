type edge = { src : int; dst : int; weight : float }
type result = Solution of float array | Positive_cycle of int list

(* Telemetry: the fixpoint's cost is what the paper's two-pass analysis
   avoids, so count its sweeps and per-edge scans (O(V*E) worst case). *)
let c_sweeps = Obs.counter "graph.bf.sweeps"
let c_scans = Obs.counter "graph.bf.edge_scans"

let solve ?shuffle_seed ~node_count ~edges ~sources () =
  let edges =
    match shuffle_seed with
    | None -> edges
    | Some seed ->
      let arr = Array.of_list edges in
      Splitmix.shuffle (Splitmix.create seed) arr;
      Array.to_list arr
  in
  let dist = Array.make node_count neg_infinity in
  List.iter (fun s -> dist.(s) <- 0.0) sources;
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < node_count do
    changed := false;
    incr iter;
    Obs.incr c_sweeps;
    List.iter
      (fun { src; dst; weight } ->
        Obs.incr c_scans;
        if dist.(src) > neg_infinity then begin
          let cand = dist.(src) +. weight in
          if cand > dist.(dst) +. 1e-9 then begin
            dist.(dst) <- cand;
            changed := true
          end
        end)
      edges
  done;
  if not !changed then Solution dist
  else begin
    (* One more sweep: any node still improving lies on/after a positive cycle. *)
    let witnesses = ref [] in
    List.iter
      (fun { src; dst; weight } ->
        if dist.(src) > neg_infinity && dist.(src) +. weight > dist.(dst) +. 1e-9 then
          witnesses := dst :: !witnesses)
      edges;
    Positive_cycle (List.sort_uniq Int.compare !witnesses)
  end
