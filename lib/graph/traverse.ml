type edge_class = Tree | Back | Forward_or_cross

(* Iterative DFS with explicit colour marking: white = unvisited, grey = on
   the current DFS stack, black = finished.  An edge into a grey node is a
   back edge. *)
type colour = White | Grey | Black

let dfs_classify g ~roots f =
  let n = Digraph.node_count g in
  let colour = Array.make n White in
  let rec visit u =
    colour.(u) <- Grey;
    List.iter
      (fun v ->
        match colour.(v) with
        | White ->
          f u v Tree;
          visit v
        | Grey -> f u v Back
        | Black -> f u v Forward_or_cross)
      (Digraph.succs g u);
    colour.(u) <- Black
  in
  List.iter (fun r -> if colour.(r) = White then visit r) roots

let back_edges g ~roots =
  let acc = ref [] in
  dfs_classify g ~roots (fun u v cls -> if cls = Back then acc := (u, v) :: !acc);
  List.rev !acc

let reachable g v =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter go (Digraph.succs g u)
    end
  in
  go v;
  seen

let topo_sort g =
  let n = Digraph.node_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr count;
    order := u :: !order;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (Digraph.succs g u)
  done;
  if !count = n then Ok (List.rev !order)
  else begin
    let cyc = ref [] in
    for v = n - 1 downto 0 do
      if indeg.(v) > 0 then cyc := v :: !cyc
    done;
    Error !cyc
  end

let is_dag g = match topo_sort g with Ok _ -> true | Error _ -> false

exception Cycle of int list

(* Walk predecessors restricted to the cyclic residue of Kahn's algorithm:
   a residue node kept nonzero in-degree, so it has a predecessor that is
   itself in the residue — the walk always continues and must revisit a
   node, closing a concrete cycle. *)
let find_cycle g =
  match topo_sort g with
  | Ok _ -> None
  | Error residue ->
    let in_residue = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace in_residue v ()) residue;
    let seen = Hashtbl.create 16 in
    (* [path] is most-recent-first; each path head is a successor of [v]. *)
    let rec walk path v =
      if Hashtbl.mem seen v then begin
        let rec until_v = function
          | [] -> []
          | u :: rest -> if u = v then [] else u :: until_v rest
        in
        Some (v :: until_v path)
      end
      else begin
        Hashtbl.replace seen v ();
        match
          List.find_opt (fun p -> Hashtbl.mem in_residue p) (Digraph.preds g v)
        with
        | None -> None
        | Some p -> walk (v :: path) p
      end
    in
    walk [] (List.hd residue)

let topo_sort_exn g =
  match topo_sort g with
  | Ok order -> order
  | Error residue ->
    let path = match find_cycle g with Some p -> p | None -> residue in
    raise (Cycle path)
