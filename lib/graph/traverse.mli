(** Traversals and structural queries over {!Digraph.t}. *)

type edge_class = Tree | Back | Forward_or_cross
(** Classification relative to a DFS forest rooted at given roots. *)

val dfs_classify : Digraph.t -> roots:int list -> (int -> int -> edge_class -> unit) -> unit
(** Depth-first traversal from [roots] (in order), classifying every edge
    reachable from them.  Successors are visited in insertion order. *)

val back_edges : Digraph.t -> roots:int list -> (int * int) list
(** Edges classified [Back] by {!dfs_classify}; for a reducible control-flow
    graph these are exactly the loop-back edges. *)

val reachable : Digraph.t -> int -> bool array
(** [reachable g v] marks every node reachable from [v] (including [v]). *)

val topo_sort : Digraph.t -> (int list, int list) result
(** Kahn's algorithm.  [Ok order] lists all nodes in topological order;
    [Error cyc] returns the nodes involved in at least one cycle. *)

val is_dag : Digraph.t -> bool

exception Cycle of int list
(** A concrete directed cycle: nodes [v1; ...; vk] with an edge from each
    to the next and from [vk] back to [v1].  The payload is the acyclicity
    witness consumers (e.g. the DFG validator) report to the user. *)

val find_cycle : Digraph.t -> int list option
(** [None] iff the graph is acyclic; otherwise one concrete cycle in the
    {!Cycle} path convention. *)

val topo_sort_exn : Digraph.t -> int list
(** Raises {!Cycle} (with the offending node path) when the graph is
    cyclic. *)
