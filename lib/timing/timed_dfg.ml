type node = Op of Dfg.Op_id.t | Sink of Dfg.Op_id.t

let node_equal a b =
  match (a, b) with
  | Op x, Op y | Sink x, Sink y -> Dfg.Op_id.equal x y
  | Op _, Sink _ | Sink _, Op _ -> false

let pp_node ppf = function
  | Op o -> Format.fprintf ppf "op%d" (Dfg.Op_id.to_int o)
  | Sink o -> Format.fprintf ppf "sink%d" (Dfg.Op_id.to_int o)

type t = {
  dfg : Dfg.t;
  spans : Dfg.span array;
  is_active : bool array; (* by op index *)
  topo_nodes : node list;
  pred_arr : (node * int) list array; (* 2n slots: op i at i, sink i at n+i *)
  succ_arr : (node * int) list array;
  edges : int;
}

exception Unrealizable of string

let slot n = function
  | Op o -> Dfg.Op_id.to_int o
  | Sink o -> n + Dfg.Op_id.to_int o

let c_builds = Obs.counter "timed_dfg.builds"
let c_nodes = Obs.counter "timed_dfg.nodes"
let c_edges = Obs.counter "timed_dfg.edges"

let build dfg ~spans =
  let cfg = Dfg.cfg dfg in
  let n = Dfg.op_count dfg in
  if Array.length spans <> n then invalid_arg "Timed_dfg.build: span array size mismatch";
  let is_active = Array.make n false in
  Dfg.iter_ops dfg (fun o ->
      is_active.(Dfg.Op_id.to_int o.Dfg.id) <-
        (match o.Dfg.kind with Dfg.Const _ -> false | _ -> true));
  let pred_arr = Array.make (2 * n) [] and succ_arr = Array.make (2 * n) [] in
  let edges = ref 0 in
  let add_edge src dst w =
    succ_arr.(slot n src) <- (dst, w) :: succ_arr.(slot n src);
    pred_arr.(slot n dst) <- (src, w) :: pred_arr.(slot n dst);
    incr edges
  in
  let early o = spans.(Dfg.Op_id.to_int o).Dfg.early in
  let late o = spans.(Dfg.Op_id.to_int o).Dfg.late in
  (* Dependency edges: forward deps between active ops. *)
  List.iter
    (fun oid ->
      if is_active.(Dfg.Op_id.to_int oid) then
        List.iter
          (fun sid ->
            if is_active.(Dfg.Op_id.to_int sid) then begin
              match Cfg.latency cfg (early oid) (early sid) with
              | Some w -> add_edge (Op oid) (Op sid) w
              | None ->
                raise
                  (Unrealizable
                     (Printf.sprintf "dependency %s -> %s has undefined latency"
                        (Dfg.op dfg oid).Dfg.name (Dfg.op dfg sid).Dfg.name))
            end)
          (Dfg.succs dfg oid))
    (Dfg.ops dfg);
  (* Sink edges: weight = latency(early o, late o). *)
  List.iter
    (fun oid ->
      if is_active.(Dfg.Op_id.to_int oid) then begin
        match Cfg.latency cfg (early oid) (late oid) with
        | Some w -> add_edge (Op oid) (Sink oid) w
        | None ->
          raise
            (Unrealizable
               (Printf.sprintf "op %s has a span with unreachable late edge"
                  (Dfg.op dfg oid).Dfg.name))
      end)
    (Dfg.ops dfg);
  (* Topological order: ops in DFG topo order, each immediately followed by
     its sink (sinks have no successors, so this is a valid extension). *)
  let topo_nodes =
    List.concat_map
      (fun oid ->
        if is_active.(Dfg.Op_id.to_int oid) then [ Op oid; Sink oid ] else [])
      (Dfg.topo_order dfg)
  in
  Obs.incr c_builds;
  Obs.add c_nodes (List.length topo_nodes);
  Obs.add c_edges !edges;
  { dfg; spans; is_active; topo_nodes; pred_arr; succ_arr; edges = !edges }

let dfg t = t.dfg
let spans t = t.spans
let active t o = t.is_active.(Dfg.Op_id.to_int o)

let active_ops t =
  List.filter (fun o -> active t o) (Dfg.ops t.dfg)

let topo t = t.topo_nodes
let preds t node = List.rev t.pred_arr.(slot (Dfg.op_count t.dfg) node)
let succs t node = List.rev t.succ_arr.(slot (Dfg.op_count t.dfg) node)
let edge_count t = t.edges

let latency_between t o1 o2 =
  let early o = t.spans.(Dfg.Op_id.to_int o).Dfg.early in
  Cfg.latency (Dfg.cfg t.dfg) (early o1) (early o2)

(* Fault-injection hook: a copy of the graph with one edge's latency weight
   replaced.  The result is deliberately allowed to be ill-formed (negative
   weights included) so tests can prove the timed-DFG validator fires. *)
let with_edge_weight t ~src ~dst ~weight =
  let n = Dfg.op_count t.dfg in
  let replace lst other =
    List.map (fun (nd, w) -> if node_equal nd other then (nd, weight) else (nd, w)) lst
  in
  let succ_arr = Array.copy t.succ_arr and pred_arr = Array.copy t.pred_arr in
  if not (List.exists (fun (nd, _) -> node_equal nd dst) succ_arr.(slot n src)) then
    invalid_arg "Timed_dfg.with_edge_weight: no such edge";
  succ_arr.(slot n src) <- replace succ_arr.(slot n src) dst;
  pred_arr.(slot n dst) <- replace pred_arr.(slot n dst) src;
  { t with succ_arr; pred_arr }
