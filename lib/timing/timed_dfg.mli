(** Timed DFG (paper §V, Definition 2).

    Derived from a DFG and the spans of its operations by:

    + dropping loop-carried (backward) dependencies, making the graph
      acyclic;
    + dropping constant operands (constants do not affect timing);
    + adding one sink node [s(o)] per operation with an edge [o -> s(o)]
      whose weight encodes the operation's span
      ([early s(o) = late o]);
    + weighting every edge [(o1, o2)] with
      [latency (early o1) (early o2)] — the minimum number of state nodes
      between the frames in which the two operations can begin. *)

type node = Op of Dfg.Op_id.t | Sink of Dfg.Op_id.t

val node_equal : node -> node -> bool
val pp_node : Format.formatter -> node -> unit

type t

exception Unrealizable of string
(** Raised by {!build} when some dependency has undefined latency (its
    endpoint spans are not connected by a forward CFG path). *)

val build : Dfg.t -> spans:Dfg.span array -> t
(** Requires a sealed CFG and spans as produced by {!Dfg.compute_spans}
    (one entry per op, indexed by [Op_id.to_int]). *)

val dfg : t -> Dfg.t
val spans : t -> Dfg.span array

val active : t -> Dfg.Op_id.t -> bool
(** Whether the op participates in timing (constants do not). *)

val active_ops : t -> Dfg.Op_id.t list
val topo : t -> node list
(** All active nodes (ops and sinks), topologically sorted. *)

val preds : t -> node -> (node * int) list
(** Predecessors with latency weights. *)

val succs : t -> node -> (node * int) list
val edge_count : t -> int

val latency_between : t -> Dfg.Op_id.t -> Dfg.Op_id.t -> int option
(** Latency weight that an edge between these two ops would carry:
    [Cfg.latency (early o1) (early o2)]. *)

val with_edge_weight : t -> src:node -> dst:node -> weight:int -> t
(** A copy with the [src -> dst] edge's latency weight replaced; raises
    [Invalid_argument] when no such edge exists.  Fault-injection hook: the
    copy may deliberately violate the invariants {!build} establishes
    (negative weights included), so the pipeline validators can be shown to
    catch a corrupted graph.  Not for production use. *)
