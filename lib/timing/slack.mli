(** Sequential slack of DFG operations (paper §V, Definitions 3–4, and the
    Figure 6 algorithm).

    Arrival and required times are {e start} times, normalised per
    operation frame: the [T * latency] term in the propagation rules
    re-bases values across state boundaries, so an arrival may legitimately
    be negative or exceed the clock period.

    With [~aligned:true] the propagation respects clock boundaries (the
    paper's {e aligned slack}): an operation whose in-cycle start position
    would make it cross the clock edge is pushed to the next boundary on
    the arrival side, and pulled back so that it completes within its cycle
    on the required side. *)

type result = {
  arr : float array;    (** arrival time by op index; [nan] for inactive ops *)
  req : float array;    (** required time by op index *)
  slack : float array;  (** [req - arr] *)
  min_slack : float;    (** minimum over active ops; [infinity] if none *)
}

val analyze :
  ?aligned:bool -> Timed_dfg.t -> clock:float -> del:(Dfg.Op_id.t -> float) -> result
(** [aligned] defaults to [false].  [clock] must be positive. *)

val op_slack : result -> Dfg.Op_id.t -> float

val critical_ops : ?eps:float -> Timed_dfg.t -> result -> Dfg.Op_id.t list
(** Active ops whose slack is within [eps] (default 1e-6) of [min_slack]. *)

val negative_ops : ?eps:float -> Timed_dfg.t -> result -> Dfg.Op_id.t list
(** Active ops with slack below [-eps]: the ones violating
    [arrival <= required].  Empty iff {!feasible}. *)

val feasible : ?eps:float -> result -> bool
(** All slacks non-negative: by Proposition 1, a dedicated-resource
    schedule meeting the clock exists. *)

val align_start : clock:float -> delay:float -> float -> float
(** [align_start ~clock ~delay a]: smallest [a' >= a] at a legal in-cycle
    position for an operation of this delay (pushed to the next clock
    boundary when it would cross one).  Exposed for white-box tests. *)

val align_finish_constraint : clock:float -> delay:float -> float -> float
(** Largest [r' <= r] such that starting at [r'] the operation completes
    within its cycle. *)
