type result = {
  arr : float array;
  req : float array;
  slack : float array;
  min_slack : float;
}

(* Telemetry (paper §IV–V): one analysis = one forward + one backward
   linear pass, each relaxing every timed-DFG connection exactly once —
   the counters below are the evidence for the linearity claim that the
   Bellman–Ford baseline ([Bf_timing]) cannot match. *)
let c_analyses = Obs.counter "slack.analyses"
let c_fwd = Obs.counter "slack.forward_passes"
let c_bwd = Obs.counter "slack.backward_passes"
let c_relax = Obs.counter "slack.edge_relaxations"
let c_nodes = Obs.counter "slack.node_visits"

let frac ~clock x = x -. (clock *. Float.floor (x /. clock))

let align_start ~clock ~delay a =
  let f = frac ~clock a in
  if f +. delay > clock +. 1e-9 then clock *. (Float.floor (a /. clock) +. 1.0) else a

let align_finish_constraint ~clock ~delay r =
  let f = frac ~clock r in
  if f +. delay > clock +. 1e-9 then (clock *. Float.floor (r /. clock)) +. clock -. delay
  else r

let analyze ?(aligned = false) tdfg ~clock ~del =
  if clock <= 0.0 then invalid_arg "Slack.analyze: clock must be positive";
  let dfg = Timed_dfg.dfg tdfg in
  let n = Dfg.op_count dfg in
  let arr = Array.make n nan and req = Array.make n nan in
  let sink_arr = Array.make n nan and sink_req = Array.make n nan in
  let get_arr = function
    | Timed_dfg.Op o -> arr.(Dfg.Op_id.to_int o)
    | Timed_dfg.Sink o -> sink_arr.(Dfg.Op_id.to_int o)
  in
  let get_req = function
    | Timed_dfg.Op o -> req.(Dfg.Op_id.to_int o)
    | Timed_dfg.Sink o -> sink_req.(Dfg.Op_id.to_int o)
  in
  let node_del = function Timed_dfg.Op o -> del o | Timed_dfg.Sink _ -> 0.0 in
  let order = Timed_dfg.topo tdfg in
  Obs.incr c_analyses;
  Obs.incr c_fwd;
  Obs.incr c_bwd;
  (* Each pass visits every node and relaxes every edge exactly once. *)
  Obs.add c_nodes (2 * List.length order);
  Obs.add c_relax (2 * Timed_dfg.edge_count tdfg);
  (* Forward: arrival times. *)
  List.iter
    (fun node ->
      let preds = Timed_dfg.preds tdfg node in
      let raw =
        List.fold_left
          (fun acc (p, lat) ->
            let a = get_arr p +. node_del p -. (clock *. float_of_int lat) in
            Float.max acc a)
          neg_infinity preds
      in
      let a0 = if preds = [] then 0.0 else raw in
      let a = if aligned then align_start ~clock ~delay:(node_del node) a0 else a0 in
      (match node with
      | Timed_dfg.Op o -> arr.(Dfg.Op_id.to_int o) <- a
      | Timed_dfg.Sink o -> sink_arr.(Dfg.Op_id.to_int o) <- a))
    order;
  (* Backward: required times. *)
  List.iter
    (fun node ->
      let succs = Timed_dfg.succs tdfg node in
      let d = node_del node in
      let raw =
        List.fold_left
          (fun acc (s, lat) ->
            let r = get_req s -. d +. (clock *. float_of_int lat) in
            Float.min acc r)
          infinity succs
      in
      let r0 = if succs = [] then clock else raw in
      let r = if aligned then align_finish_constraint ~clock ~delay:d r0 else r0 in
      (match node with
      | Timed_dfg.Op o -> req.(Dfg.Op_id.to_int o) <- r
      | Timed_dfg.Sink o -> sink_req.(Dfg.Op_id.to_int o) <- r))
    (List.rev order);
  let slack = Array.make n nan in
  let min_slack = ref infinity in
  List.iter
    (fun o ->
      let i = Dfg.Op_id.to_int o in
      slack.(i) <- req.(i) -. arr.(i);
      if slack.(i) < !min_slack then min_slack := slack.(i))
    (Timed_dfg.active_ops tdfg);
  { arr; req; slack; min_slack = !min_slack }

let op_slack r o = r.slack.(Dfg.Op_id.to_int o)

let critical_ops ?(eps = 1e-6) tdfg r =
  List.filter
    (fun o -> op_slack r o <= r.min_slack +. eps)
    (Timed_dfg.active_ops tdfg)

let negative_ops ?(eps = 1e-6) tdfg r =
  List.filter (fun o -> op_slack r o < -.eps) (Timed_dfg.active_ops tdfg)

let feasible ?(eps = 1e-6) r = r.min_slack >= -.eps
