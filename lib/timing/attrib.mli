(** Work attribution for the timing engine (ROADMAP: incremental timing).

    The slack flow re-runs a full two-pass analysis — 2·E edge
    relaxations — after every tentative delay change and after every
    scheduled CFG edge.  An incremental engine would only re-relax the
    edges incident to operations whose arrival or required time actually
    moved.  This module measures that gap.  Each {!observe} compares an
    analysis result against the previous one on the same tracker and
    charges three monotone counters:

    - [timing.wasted_work_ratio.touched] — edge relaxations actually
      performed (2·E per full analysis; the Bellman–Ford baseline
      additionally charges its fixpoint scans through {!charge_touched});
    - [timing.wasted_work_ratio.cone] — the would-be dirty cone: the
      incident edges of the ops whose arrival or required time changed
      since the previous analysis, i.e. what an incremental engine would
      have had to re-relax;
    - [timing.wasted_work_ratio.changed_bin] — ops whose slack moved to a
      different budgeting bin (multiples of the margin): the changes that
      can alter a budgeting decision at all.

    The wasted-work ratio is [1 - cone/touched], the fraction of edge
    relaxations whose inputs had not changed.  Ratios are derived at
    report time; only the raw counts are counters, keeping them monotone
    and exactly reproducible across identical runs. *)

type t
(** Tracker for one timed DFG (one budgeting context).  Not thread-safe:
    use one tracker per [Budget.run]. *)

val create : Timed_dfg.t -> t

val observe : t -> margin:float -> Slack.result -> unit
(** Charge one full analysis: [touched += 2·E]; [cone += incident edges
    of ops whose arr/req changed] (clamped to touched; the first analysis
    on a tracker is all-dirty); [changed_bin += ops whose
    [floor(slack/margin)] bin moved].  [margin <= 0] puts every slack in
    one bin. *)

val charge_touched : int -> unit
(** Extra relaxations performed outside {!observe} (e.g. the
    Bellman–Ford baseline's fixpoint scans); global counter only. *)

type totals = { analyses : int; touched : int; cone : int; changed_bin : int }

val instance_totals : t -> totals
(** What this tracker charged so far — race-free under concurrent
    trackers, unlike the global counters, so per-edge attribution stays
    deterministic on the explore domain pool. *)

val totals : unit -> totals
(** Process-wide totals, read from the global counters. *)

val wasted_ratio : totals -> float
(** [1 - cone/touched]; 0 when nothing was touched. *)
