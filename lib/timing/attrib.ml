(* Counter family consumed by `hlsc --stats`, the bench attribution table
   and the baseline gate; see the .mli for the semantics of each. *)
let c_analyses = Obs.counter "timing.attrib.analyses"
let c_touched = Obs.counter "timing.wasted_work_ratio.touched"
let c_cone = Obs.counter "timing.wasted_work_ratio.cone"
let c_changed_bin = Obs.counter "timing.wasted_work_ratio.changed_bin"

type t = {
  tdfg : Timed_dfg.t;
  degree : int array;  (* incident timed-DFG edges per op node *)
  edge_count : int;
  mutable prev : Slack.result option;
  mutable t_analyses : int;
  mutable t_touched : int;
  mutable t_cone : int;
  mutable t_changed_bin : int;
}

let create tdfg =
  let n = Dfg.op_count (Timed_dfg.dfg tdfg) in
  let degree = Array.make n 0 in
  List.iter
    (fun o ->
      let node = Timed_dfg.Op o in
      degree.(Dfg.Op_id.to_int o) <-
        List.length (Timed_dfg.preds tdfg node)
        + List.length (Timed_dfg.succs tdfg node))
    (Timed_dfg.active_ops tdfg);
  {
    tdfg;
    degree;
    edge_count = Timed_dfg.edge_count tdfg;
    prev = None;
    t_analyses = 0;
    t_touched = 0;
    t_cone = 0;
    t_changed_bin = 0;
  }

let eps = 1e-9

let bin ~margin s =
  if margin <= 0.0 then 0 else int_of_float (Float.floor (s /. margin))

let observe t ~margin (r : Slack.result) =
  let touched = 2 * t.edge_count in
  let cone, changed_bin =
    match t.prev with
    | None ->
      (* First analysis of this context: everything is genuinely dirty
         (no bins existed yet, so no bin changed). *)
      (touched, 0)
    | Some p ->
      let cone = ref 0 and changed_bin = ref 0 in
      List.iter
        (fun o ->
          let i = Dfg.Op_id.to_int o in
          if
            Float.abs (r.Slack.arr.(i) -. p.Slack.arr.(i)) > eps
            || Float.abs (r.Slack.req.(i) -. p.Slack.req.(i)) > eps
          then begin
            cone := !cone + t.degree.(i);
            if bin ~margin r.Slack.slack.(i) <> bin ~margin p.Slack.slack.(i) then
              incr changed_bin
          end)
        (Timed_dfg.active_ops t.tdfg);
      (* Shared edges are counted once per endpoint; clamp so the cone
         never exceeds the work actually done. *)
      (min touched !cone, !changed_bin)
  in
  t.t_analyses <- t.t_analyses + 1;
  t.t_touched <- t.t_touched + touched;
  t.t_cone <- t.t_cone + cone;
  t.t_changed_bin <- t.t_changed_bin + changed_bin;
  Obs.incr c_analyses;
  Obs.add c_touched touched;
  Obs.add c_cone cone;
  Obs.add c_changed_bin changed_bin;
  t.prev <- Some r

let charge_touched n = Obs.add c_touched n

type totals = { analyses : int; touched : int; cone : int; changed_bin : int }

let instance_totals t =
  {
    analyses = t.t_analyses;
    touched = t.t_touched;
    cone = t.t_cone;
    changed_bin = t.t_changed_bin;
  }

let totals () =
  {
    analyses = Obs.value c_analyses;
    touched = Obs.value c_touched;
    cone = Obs.value c_cone;
    changed_bin = Obs.value c_changed_bin;
  }

let wasted_ratio tt =
  if tt.touched = 0 then 0.0
  else 1.0 -. (float_of_int tt.cone /. float_of_int tt.touched)
