(* Node numbering: op i -> i, sink of op i -> n + i. *)

let slot n = function
  | Timed_dfg.Op o -> Dfg.Op_id.to_int o
  | Timed_dfg.Sink o -> n + Dfg.Op_id.to_int o

let c_analyses = Obs.counter "slack.bf_analyses"

let analyze tdfg ~clock ~del =
  Obs.incr c_analyses;
  (* The fixpoint scans each edge list at least once in both directions;
     charge the deterministic lower bound rather than the solver's scan
     counter, which races across explore domains. *)
  Attrib.charge_touched (2 * Timed_dfg.edge_count tdfg);
  if clock <= 0.0 then invalid_arg "Bf_timing.analyze: clock must be positive";
  let dfg = Timed_dfg.dfg tdfg in
  let n = Dfg.op_count dfg in
  let node_del = function Timed_dfg.Op o -> del o | Timed_dfg.Sink _ -> 0.0 in
  let nodes = Timed_dfg.topo tdfg in
  let fwd = ref [] and bwd = ref [] in
  let fwd_sources = ref [] and bwd_sources = ref [] in
  List.iter
    (fun u ->
      let preds = Timed_dfg.preds tdfg u in
      let succs = Timed_dfg.succs tdfg u in
      if preds = [] then fwd_sources := slot n u :: !fwd_sources;
      if succs = [] then bwd_sources := slot n u :: !bwd_sources;
      List.iter
        (fun (v, lat) ->
          let weight = node_del u -. (clock *. float_of_int lat) in
          fwd :=
            { Bellman_ford.src = slot n u; dst = slot n v; weight } :: !fwd;
          bwd :=
            { Bellman_ford.src = slot n v; dst = slot n u; weight } :: !bwd)
        succs)
    nodes;
  let solve edges sources =
    match Bellman_ford.solve ~shuffle_seed:0x5eed ~node_count:(2 * n) ~edges ~sources () with
    | Bellman_ford.Solution dist -> dist
    | Bellman_ford.Positive_cycle _ ->
      (* The timed DFG is acyclic by construction; a positive cycle would
         mean a structural bug upstream. *)
      failwith "Bf_timing.analyze: unexpected cycle in timed DFG"
  in
  let arr_all = solve !fwd !fwd_sources in
  let lateness = solve !bwd !bwd_sources in
  let arr = Array.make n nan and req = Array.make n nan and slack = Array.make n nan in
  let min_slack = ref infinity in
  List.iter
    (fun o ->
      let i = Dfg.Op_id.to_int o in
      arr.(i) <- arr_all.(i);
      req.(i) <- clock -. lateness.(i);
      slack.(i) <- req.(i) -. arr.(i);
      if slack.(i) < !min_slack then min_slack := slack.(i))
    (Timed_dfg.active_ops tdfg);
  { Slack.arr; req; slack; min_slack = !min_slack }
