type engine = Two_pass | Bellman_ford_baseline

type config = {
  margin_frac : float;
  aligned : bool;
  max_rounds : int;
  bisection_steps : int;
  engine : engine;
}

let default_config =
  {
    margin_frac = 0.05;
    aligned = true;
    max_rounds = 24;
    bisection_steps = 24;
    engine = Two_pass;
  }

(* The recovery ladder's "try budgeting harder" rung: a coarser slack bin
   (fewer, larger updates converge on stubborn designs), more refinement
   rounds and a finer bisection.  Idempotent enough to apply repeatedly. *)
let relax c =
  {
    c with
    margin_frac = Float.min 0.25 (c.margin_frac *. 2.0);
    max_rounds = max 8 (c.max_rounds * 2);
    bisection_steps = max 16 (c.bisection_steps + 8);
  }

type infeasible = {
  slack_at_min : Slack.result;
  critical : Dfg.Op_id.t list;
}

type outcome = Feasible of float array | Infeasible of infeasible

(* Telemetry (paper §V): phase-1 bisection steps repair negative slack,
   phase-2 rounds distribute positive slack as per-op delay updates;
   freezes bound the updates any op can trigger (the slack-binning
   argument for bounded budgeting work). *)
let c_runs = Obs.counter "budget.runs"
let c_infeasible = Obs.counter "budget.infeasible"
let c_probes = Obs.counter "budget.feasibility_probes"
let c_bisect = Obs.counter "budget.bisection_steps"
let c_rounds = Obs.counter "budget.rounds"
let c_updates = Obs.counter "budget.delay_updates"
let c_half = Obs.counter "budget.half_retries"
let c_freezes = Obs.counter "budget.freezes"

let delays_at ~lambda tdfg ~ranges =
  let dfg = Timed_dfg.dfg tdfg in
  let n = Dfg.op_count dfg in
  Array.init n (fun i ->
      let o = Dfg.Op_id.of_int i in
      let r = ranges o in
      Interval.lo r +. (lambda *. Interval.width r))

let analyze ?attrib config tdfg ~clock delays =
  let del o = delays.(Dfg.Op_id.to_int o) in
  (match config.engine with
  | Two_pass -> ()
  | Bellman_ford_baseline ->
    (* Charge the prior-work fixpoint cost; its (unaligned) result is
       discarded in favour of the aligned linear pass below. *)
    ignore (Bf_timing.analyze tdfg ~clock ~del));
  let r = Slack.analyze ~aligned:config.aligned tdfg ~clock ~del in
  (match attrib with
  | Some a -> Attrib.observe a ~margin:(config.margin_frac *. clock) r
  | None -> ());
  r

let run ?(config = default_config) ?(event_phase = "budget") ?attrib tdfg ~clock
    ~ranges ~sensitivity =
  let eps = 1e-6 in
  let margin = config.margin_frac *. clock in
  let attrib =
    match attrib with Some a -> a | None -> Attrib.create tdfg
  in
  let analyze config tdfg ~clock delays =
    analyze ~attrib config tdfg ~clock delays
  in
  let dfg = Timed_dfg.dfg tdfg in
  let op_name o = (Dfg.op dfg o).Dfg.name in
  let ev_on () = Obs.Events.enabled () in
  Obs.incr c_runs;
  let feasible_with delays =
    Obs.incr c_probes;
    Slack.feasible ~eps (analyze config tdfg ~clock delays)
  in
  (* Phase 1 (negative slack repair): find the largest uniform knob that is
     feasible.  Monotonicity: raising any delay can only lower slacks. *)
  let at lambda = delays_at ~lambda tdfg ~ranges in
  if not (feasible_with (at 0.0)) then begin
    Obs.incr c_infeasible;
    let r = analyze config tdfg ~clock (at 0.0) in
    Infeasible { slack_at_min = r; critical = Slack.critical_ops tdfg r }
  end
  else begin
    let lambda =
      if feasible_with (at 1.0) then 1.0
      else begin
        let lo = ref 0.0 and hi = ref 1.0 in
        for _ = 1 to config.bisection_steps do
          Obs.incr c_bisect;
          let mid = 0.5 *. (!lo +. !hi) in
          if feasible_with (at mid) then lo := mid else hi := mid
        done;
        !lo
      end
    in
    let delays = at lambda in
    (* The uniform raise is itself a per-op budget update for every op with
       a non-degenerate delay range. *)
    (if lambda > 0.0 then begin
       let raised =
         List.filter
           (fun o -> Interval.width (ranges o) > eps)
           (Timed_dfg.active_ops tdfg)
       in
       Obs.add c_updates (List.length raised);
       (* The uniform phase-1 raise reported as round 0. *)
       if ev_on () then
         List.iter
           (fun o ->
             let i = Dfg.Op_id.to_int o in
             Obs.Events.emit
               (Obs.Events.Delay_update
                  {
                    op = op_name o;
                    phase = event_phase;
                    round = 0;
                    from_ps = Interval.lo (ranges o);
                    to_ps = delays.(i);
                  }))
           raised
     end);
    (* Phase 2 (positive budgeting): raise individual delays up to their
       binned slack, most area-sensitive ops first, verifying after each
       tentative increase.  An op whose increase fails verification is
       frozen for the remaining rounds. *)
    let n = Array.length delays in
    let frozen = Array.make n false in
    let ops = Timed_dfg.active_ops tdfg in
    let round_no = ref 0 in
    let round () =
      Obs.incr c_rounds;
      incr round_no;
      let rn = !round_no in
      let updates_this_round = ref 0 in
      let result = ref (analyze config tdfg ~clock delays) in
      if ev_on () then
        List.iter
          (fun o ->
            Obs.Events.emit
              (Obs.Events.Slack_computed
                 {
                   op = op_name o;
                   phase = event_phase;
                   round = rn;
                   slack_ps = Slack.op_slack !result o;
                 }))
          ops;
      let by_gain =
        let gain o =
          let i = Dfg.Op_id.to_int o in
          let r = ranges o in
          let headroom = Interval.hi r -. delays.(i) in
          let s = Slack.op_slack !result o in
          if frozen.(i) || headroom <= eps || s <= margin then 0.0
          else sensitivity o delays.(i) *. Float.min s headroom
        in
        List.filter (fun o -> gain o > 0.0) ops
        |> List.map (fun o -> (gain o, o))
        |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
        |> List.map snd
      in
      let changed = ref false in
      List.iter
        (fun o ->
          let i = Dfg.Op_id.to_int o in
          if not frozen.(i) then begin
            let r = ranges o in
            let s = Slack.op_slack !result o in
            let headroom = Interval.hi r -. delays.(i) in
            (* Fair-share stepping: never grab the whole slack at once, so
               ops sharing a path converge to similar delays instead of the
               first visitor consuming everything (which snaps poorly to
               discrete curve points later). *)
            let bump = Float.min (Float.min s headroom) (Float.max margin (s /. 3.0)) in
            if bump > margin +. eps || (bump > eps && Float.abs (bump -. headroom) < eps)
            then begin
              let old = delays.(i) in
              delays.(i) <- old +. bump;
              let r' = analyze config tdfg ~clock delays in
              if Slack.feasible ~eps r' then begin
                Obs.incr c_updates;
                incr updates_this_round;
                if ev_on () then
                  Obs.Events.emit
                    (Obs.Events.Delay_update
                       {
                         op = op_name o;
                         phase = event_phase;
                         round = rn;
                         from_ps = old;
                         to_ps = delays.(i);
                       });
                result := r';
                changed := true
              end
              else begin
                (* Retry with half the bump before freezing: alignment makes
                   slack a conservative, not exact, headroom estimate. *)
                Obs.incr c_half;
                delays.(i) <- old +. (0.5 *. bump);
                let r'' = analyze config tdfg ~clock delays in
                if Slack.feasible ~eps r'' && 0.5 *. bump > margin then begin
                  Obs.incr c_updates;
                  incr updates_this_round;
                  if ev_on () then
                    Obs.Events.emit
                      (Obs.Events.Delay_update
                         {
                           op = op_name o;
                           phase = event_phase;
                           round = rn;
                           from_ps = old;
                           to_ps = delays.(i);
                         });
                  result := r'';
                  changed := true
                end
                else begin
                  delays.(i) <- old;
                  frozen.(i) <- true;
                  Obs.incr c_freezes
                end
              end
            end
          end)
        by_gain;
      if ev_on () then
        Obs.Events.emit
          (Obs.Events.Budget_round { round = rn; updates = !updates_this_round });
      !changed
    in
    let rec loop k = if k > 0 && round () then loop (k - 1) in
    loop config.max_rounds;
    Feasible delays
  end
