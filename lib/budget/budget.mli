(** Sequential-slack budgeting (paper §V, Figure 7).

    Each operation has a delay range [dmin, dmax] — the fastest and slowest
    implementations in the resource library.  Budgeting assigns each
    operation a delay inside its range such that the aligned sequential
    slack of every operation is non-negative (when possible), while pushing
    delays as high as the slack allows so that area recovery can pick
    slower, smaller resources.

    The paper prescribes two phases (Fig. 7 steps 3–4): repair negative
    aligned slack by decreasing delays, then budget the remaining positive
    slack by increasing them.  This implementation realises the phases as:

    - {e negative phase}: a bisection over a global knob [lambda], where
      every delay is [dmin + lambda * (dmax - dmin)].  Aligned slack is
      monotone in delays, so the largest feasible [lambda] is well defined;
      this both repairs negative slack and provides a fair initial spread.
    - {e positive phase}: zero-slack-style refinement.  Operations are
      visited in decreasing order of area sensitivity; each op's delay is
      raised by its (binned) slack, the increase being kept only if a full
      timing verification stays feasible.  Slack {e binning} (paper: 5% of
      the clock) treats slacks below the margin as zero and bounds the
      number of updates per operation.

    Both phases use {e aligned} slack by default, so chained operations
    that would straddle a clock boundary are accounted for — the effect
    that makes the paper's interpolation example (Fig. 2d) pick 550 ps
    multipliers. *)

type engine =
  | Two_pass
      (** the paper's contribution: one forward and one backward sweep in
          topological order, O(E) per analysis *)
  | Bellman_ford_baseline
      (** prior work (paper ref. [10], Table 5 right column): every
          analysis first runs the Bellman-Ford fixpoint over the
          constraint graph (its cost), then derives the aligned values
          from the linear sweep so results stay identical — Bellman-Ford
          cannot express clock alignment *)

type config = {
  margin_frac : float;  (** slack bin as a fraction of the clock; paper: 0.05 *)
  aligned : bool;       (** use aligned slack (default true) *)
  max_rounds : int;     (** refinement sweep bound (default 8) *)
  bisection_steps : int; (** lambda bisection iterations (default 24) *)
  engine : engine;      (** timing-analysis engine (default [Two_pass]) *)
}

val default_config : config

val relax : config -> config
(** A strictly more persistent configuration — coarser slack bin, more
    refinement rounds, finer bisection — used by the scheduling recovery
    ladder's re-budgeting rung.  Safe to apply repeatedly (every knob is
    clamped). *)

type infeasible = {
  slack_at_min : Slack.result;  (** analysis with every delay at its minimum *)
  critical : Dfg.Op_id.t list;  (** ops pinning the negative slack *)
}

type outcome =
  | Feasible of float array
      (** budgeted delay per op index (dmin of the range for inactive ops) *)
  | Infeasible of infeasible
      (** even the fastest resources miss the clock: the scheduler must
          relax (add states) or the design is overconstrained *)

val run :
  ?config:config ->
  ?event_phase:string ->
  ?attrib:Attrib.t ->
  Timed_dfg.t ->
  clock:float ->
  ranges:(Dfg.Op_id.t -> Interval.t) ->
  sensitivity:(Dfg.Op_id.t -> float -> float) ->
  outcome
(** [ranges] gives each active op's delay interval (callers typically clamp
    the upper end to the clock period); [sensitivity o d] is the area saved
    per unit of delay added at delay [d] (see {!Curve.sensitivity}).

    [attrib] is the work-attribution tracker every timing analysis of this
    run is observed into (see {!Attrib.observe}); a run-private tracker is
    created when omitted, so the global wasted-work counters are always
    charged.  Pass one explicitly to also read {!Attrib.instance_totals}
    for this run alone.

    [event_phase] (default ["budget"]) tags the provenance events this run
    emits ({!Obs.Events.Slack_computed}, {!Obs.Events.Delay_update},
    {!Obs.Events.Budget_round}) so replay can distinguish the initial
    budgeting pass from per-edge re-budgeting (["rebudget"]) and the
    recovery ladder (["recovery"]). *)

val delays_at : lambda:float -> Timed_dfg.t -> ranges:(Dfg.Op_id.t -> Interval.t) -> float array
(** The uniform-knob delay assignment used by the negative phase; exposed
    for tests and ablation benchmarks. *)
