type corruption =
  | Cycle_dfg
  | Drop_edge_latency
  | Budget_overshoot
  | Swap_placements
  | Orphan_port
  | Stall_point
  | Crash_task
  | Truncate_journal
  | Slow_client
  | Overload_burst

let all_corruptions =
  [
    Cycle_dfg; Drop_edge_latency; Budget_overshoot; Swap_placements; Orphan_port;
    Stall_point; Crash_task; Truncate_journal; Slow_client; Overload_burst;
  ]

let corruption_name = function
  | Cycle_dfg -> "cycle_dfg"
  | Drop_edge_latency -> "drop_edge_latency"
  | Budget_overshoot -> "budget_overshoot"
  | Swap_placements -> "swap_placements"
  | Orphan_port -> "orphan_port"
  | Stall_point -> "stall_point"
  | Crash_task -> "crash_task"
  | Truncate_journal -> "truncate_journal"
  | Slow_client -> "slow_client"
  | Overload_burst -> "overload_burst"

let intended_check_prefix = function
  | Cycle_dfg -> "dfg."
  | Drop_edge_latency -> "timed_dfg."
  | Budget_overshoot -> "budget."
  | Swap_placements -> "schedule."
  | Orphan_port -> "netlist."
  | Stall_point -> "cancel."
  | Crash_task -> "pool."
  | Truncate_journal -> "journal."
  | Slow_client -> "serve.stall."
  | Overload_burst -> "serve.shed."

let cycle_dfg d =
  let dep =
    List.find_map
      (fun c ->
        match Dfg.preds d c with
        | p :: _ when not (Dfg.Op_id.equal p c) -> Some (p, c)
        | _ -> None)
      (Dfg.ops d)
  in
  match dep with
  | None -> false
  | Some (p, c) ->
    Dfg.add_dep d ~src:c ~dst:p ();
    true

let drop_edge_latency tdfg =
  match Timed_dfg.active_ops tdfg with
  | [] -> None
  | o :: _ ->
    (* Every active op has at least its sink edge, so a victim exists. *)
    (match Timed_dfg.succs tdfg (Timed_dfg.Op o) with
    | [] -> None
    | (dst, _) :: _ ->
      Some (Timed_dfg.with_edge_weight tdfg ~src:(Timed_dfg.Op o) ~dst ~weight:(-1)))

let budget_overshoot d ~targets ~ranges =
  let victim =
    List.find_opt
      (fun o ->
        match (Dfg.op d o).Dfg.kind with Dfg.Const _ -> false | _ -> true)
      (Dfg.ops d)
  in
  match victim with
  | None -> None
  | Some o ->
    let t = Array.copy targets in
    let i = Dfg.Op_id.to_int o in
    t.(i) <- (2.0 *. Interval.hi (ranges o)) +. 10.0;
    Some t

let swap_placements (s : Schedule.t) =
  let placed =
    List.filter_map
      (fun o ->
        match Schedule.placement s o with
        | Some p -> Some (Dfg.Op_id.to_int o, p.Schedule.step)
        | None -> None)
      (Dfg.ops s.Schedule.dfg)
  in
  let pair =
    match placed with
    | [] -> None
    | (i0, s0) :: rest ->
      Option.map (fun (j, _) -> (i0, j)) (List.find_opt (fun (_, st) -> st <> s0) rest)
  in
  match pair with
  | None -> None
  | Some (i, j) ->
    let placements = Array.copy s.Schedule.placements in
    let tmp = placements.(i) in
    placements.(i) <- placements.(j);
    placements.(j) <- tmp;
    Some { s with Schedule.placements }

let orphan_port (nl : Netlist.t) =
  let bogus =
    { Netlist.port_name = "__injected_orphan"; port_width = 8; input = true }
  in
  { nl with Netlist.ports = bogus :: nl.Netlist.ports }

(* Supervision faults: these damage the sweep harness (a stuck evaluation,
   a raising task, a torn checkpoint file) rather than a pipeline artifact,
   and are bound to the cancellation/pool/journal machinery instead of a
   validator. *)

exception Injected_crash of string

let stall_point ~seconds build () =
  Unix.sleepf seconds;
  build ()

let crash_task ~crash_on build =
  let calls = Atomic.make 1 in
  fun () ->
    let n = Atomic.fetch_and_add calls 1 in
    if crash_on n then raise (Injected_crash (Printf.sprintf "call %d" n))
    else build ()

let truncate_journal ?(bytes = 7) path =
  let len = (Unix.stat path).Unix.st_size in
  Unix.truncate path (max 0 (len - bytes))

(* Serving faults: these damage the daemon's ingress rather than the sweep
   harness — a request that stops flowing mid-frame, and a synchronized
   burst of requests above the admission high-water mark. *)

let slow_client ~prefix_bytes frame =
  let n = min (max 0 prefix_bytes) (String.length frame) in
  String.sub frame 0 n

let overload_burst ~clients submit =
  let n = max 1 clients in
  let results = Array.make n None in
  let gate = Atomic.make 0 in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            (* Barrier: every client blocks here until all have arrived, so
               the submissions land as one burst rather than a trickle the
               daemon could absorb one at a time. *)
            Atomic.incr gate;
            while Atomic.get gate < n do
              Thread.yield ()
            done;
            results.(i) <- Some (submit i))
          ())
  in
  Array.iter Thread.join threads;
  Array.to_list results |> List.filter_map Fun.id
