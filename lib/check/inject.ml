type corruption =
  | Cycle_dfg
  | Drop_edge_latency
  | Budget_overshoot
  | Swap_placements
  | Orphan_port
  | Stall_point
  | Crash_task
  | Truncate_journal
  | Slow_client
  | Overload_burst
  | Dead_worker
  | Partitioned_worker
  | Stalled_heartbeat
  | Torn_response
  | Duplicate_lease_reply

let all_corruptions =
  [
    Cycle_dfg; Drop_edge_latency; Budget_overshoot; Swap_placements; Orphan_port;
    Stall_point; Crash_task; Truncate_journal; Slow_client; Overload_burst;
    Dead_worker; Partitioned_worker; Stalled_heartbeat; Torn_response;
    Duplicate_lease_reply;
  ]

let corruption_name = function
  | Cycle_dfg -> "cycle_dfg"
  | Drop_edge_latency -> "drop_edge_latency"
  | Budget_overshoot -> "budget_overshoot"
  | Swap_placements -> "swap_placements"
  | Orphan_port -> "orphan_port"
  | Stall_point -> "stall_point"
  | Crash_task -> "crash_task"
  | Truncate_journal -> "truncate_journal"
  | Slow_client -> "slow_client"
  | Overload_burst -> "overload_burst"
  | Dead_worker -> "dead_worker"
  | Partitioned_worker -> "partitioned_worker"
  | Stalled_heartbeat -> "stalled_heartbeat"
  | Torn_response -> "torn_response"
  | Duplicate_lease_reply -> "duplicate_lease_reply"

let intended_check_prefix = function
  | Cycle_dfg -> "dfg."
  | Drop_edge_latency -> "timed_dfg."
  | Budget_overshoot -> "budget."
  | Swap_placements -> "schedule."
  | Orphan_port -> "netlist."
  | Stall_point -> "cancel."
  | Crash_task -> "pool."
  | Truncate_journal -> "journal."
  | Slow_client -> "serve.stall."
  | Overload_burst -> "serve.shed."
  | Dead_worker | Partitioned_worker | Stalled_heartbeat | Torn_response
  | Duplicate_lease_reply ->
    "dispatch."

(* The supervisor's containment matrix: (detector, response) the dispatch
   stats must record for each injected distributed fault.  [None] for the
   in-process classes, which are bound to validator/harness families via
   {!intended_check_prefix} instead. *)
let intended_dispatch_response = function
  | Dead_worker -> Some ("connect_failed", "reassign")
  | Partitioned_worker -> Some ("lease_expired", "salvage_reassign")
  | Stalled_heartbeat -> Some ("missed_heartbeats", "salvage_reassign")
  | Torn_response -> Some ("torn_response", "salvage_reassign")
  | Duplicate_lease_reply -> Some ("duplicate_reply", "drop")
  | Cycle_dfg | Drop_edge_latency | Budget_overshoot | Swap_placements
  | Orphan_port | Stall_point | Crash_task | Truncate_journal | Slow_client
  | Overload_burst ->
    None

let cycle_dfg d =
  let dep =
    List.find_map
      (fun c ->
        match Dfg.preds d c with
        | p :: _ when not (Dfg.Op_id.equal p c) -> Some (p, c)
        | _ -> None)
      (Dfg.ops d)
  in
  match dep with
  | None -> false
  | Some (p, c) ->
    Dfg.add_dep d ~src:c ~dst:p ();
    true

let drop_edge_latency tdfg =
  match Timed_dfg.active_ops tdfg with
  | [] -> None
  | o :: _ ->
    (* Every active op has at least its sink edge, so a victim exists. *)
    (match Timed_dfg.succs tdfg (Timed_dfg.Op o) with
    | [] -> None
    | (dst, _) :: _ ->
      Some (Timed_dfg.with_edge_weight tdfg ~src:(Timed_dfg.Op o) ~dst ~weight:(-1)))

let budget_overshoot d ~targets ~ranges =
  let victim =
    List.find_opt
      (fun o ->
        match (Dfg.op d o).Dfg.kind with Dfg.Const _ -> false | _ -> true)
      (Dfg.ops d)
  in
  match victim with
  | None -> None
  | Some o ->
    let t = Array.copy targets in
    let i = Dfg.Op_id.to_int o in
    t.(i) <- (2.0 *. Interval.hi (ranges o)) +. 10.0;
    Some t

let swap_placements (s : Schedule.t) =
  let placed =
    List.filter_map
      (fun o ->
        match Schedule.placement s o with
        | Some p -> Some (Dfg.Op_id.to_int o, p.Schedule.step)
        | None -> None)
      (Dfg.ops s.Schedule.dfg)
  in
  let pair =
    match placed with
    | [] -> None
    | (i0, s0) :: rest ->
      Option.map (fun (j, _) -> (i0, j)) (List.find_opt (fun (_, st) -> st <> s0) rest)
  in
  match pair with
  | None -> None
  | Some (i, j) ->
    let placements = Array.copy s.Schedule.placements in
    let tmp = placements.(i) in
    placements.(i) <- placements.(j);
    placements.(j) <- tmp;
    Some { s with Schedule.placements }

let orphan_port (nl : Netlist.t) =
  let bogus =
    { Netlist.port_name = "__injected_orphan"; port_width = 8; input = true }
  in
  { nl with Netlist.ports = bogus :: nl.Netlist.ports }

(* Supervision faults: these damage the sweep harness (a stuck evaluation,
   a raising task, a torn checkpoint file) rather than a pipeline artifact,
   and are bound to the cancellation/pool/journal machinery instead of a
   validator. *)

exception Injected_crash of string

let stall_point ~seconds build () =
  Unix.sleepf seconds;
  build ()

let crash_task ~crash_on build =
  let calls = Atomic.make 1 in
  fun () ->
    let n = Atomic.fetch_and_add calls 1 in
    if crash_on n then raise (Injected_crash (Printf.sprintf "call %d" n))
    else build ()

let truncate_journal ?(bytes = 7) path =
  let len = (Unix.stat path).Unix.st_size in
  Unix.truncate path (max 0 (len - bytes))

(* Serving faults: these damage the daemon's ingress rather than the sweep
   harness — a request that stops flowing mid-frame, and a synchronized
   burst of requests above the admission high-water mark. *)

let slow_client ~prefix_bytes frame =
  let n = min (max 0 prefix_bytes) (String.length frame) in
  String.sub frame 0 n

(* Distributed faults: fake workers that present one failure mode each on
   a real Unix socket, so the dispatch supervisor's detectors can be
   tested without killing processes.  Each returns the socket path plus a
   stop function (idempotent) that tears the listener down. *)

(* Hand-rolled framing (4-byte big-endian length + payload): the injector
   crafts wire bytes below the protocol layer on purpose — it must be able
   to produce frames a correct implementation never would. *)
let frame_bytes payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let fake_socket_path () =
  let dir = Filename.temp_file "fake-worker" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Filename.concat dir "worker.sock"

let bind_listener path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  fd

let cleanup_path path =
  (try Sys.remove path with Sys_error _ -> ());
  try Unix.rmdir (Filename.dirname path) with Unix.Unix_error _ -> ()

(* Accept loop on a thread; [on_conn] runs inline per connection (the
   fakes are sequential on purpose — determinism beats throughput). *)
let fake_server path on_conn =
  let fd = bind_listener path in
  let stopped = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get stopped) do
          match Unix.select [ fd ] [] [] 0.05 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept fd with
            | exception Unix.Unix_error _ -> ()
            | c, _ ->
              (try on_conn stopped c with Unix.Unix_error _ -> ());
              (try Unix.close c with Unix.Unix_error _ -> ()))
        done)
      ()
  in
  fun () ->
    if not (Atomic.get stopped) then begin
      Atomic.set stopped true;
      Thread.join th;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      cleanup_path path
    end

(* Wait for at least one byte of a request (bounded by [stopped]), then
   drain whatever arrived in one read.  Returns [true] when bytes came. *)
let await_request stopped c =
  let buf = Bytes.create 65536 in
  let rec wait () =
    if Atomic.get stopped then false
    else
      match Unix.select [ c ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      | [], _, _ -> wait ()
      | _ -> ( match Unix.read c buf 0 (Bytes.length buf) with
        | 0 -> false
        | _ -> true
        | exception Unix.Unix_error _ -> false)
  in
  wait ()

let write_all c s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring c s off (n - off))
  in
  go 0

let fake_worker = function
  | Dead_worker ->
    (* Bind, listen, close — the stale socket file a kill -9 leaves: every
       connect comes back ECONNREFUSED. *)
    let path = fake_socket_path () in
    let fd = bind_listener path in
    Unix.close fd;
    let stopped = Atomic.make false in
    ( path,
      fun () ->
        if not (Atomic.get stopped) then begin
          Atomic.set stopped true;
          cleanup_path path
        end )
  | Partitioned_worker | Stalled_heartbeat ->
    (* Accepts and reads but never writes a byte — the wire signature of a
       network partition and of a wedged daemon are identical; which
       detector fires first (lease deadline vs missed heartbeats) is the
       supervisor's timing configuration, so one behavior serves both
       classes. *)
    let path = fake_socket_path () in
    let stop =
      fake_server path (fun stopped c ->
          while await_request stopped c do
            ()
          done)
    in
    (path, stop)
  | Torn_response ->
    (* Answers each request with the first 10 bytes of a valid frame, then
       dies mid-frame — the reader must classify this as a stall/tear, not
       wait forever. *)
    let path = fake_socket_path () in
    let full =
      frame_bytes
        "{\"id\":\"\",\"status\":\"ok\",\"lease\":\"torn\",\"records\":[]}"
    in
    let stop =
      fake_server path (fun stopped c ->
          if await_request stopped c then write_all c (String.sub full 0 10))
    in
    (path, stop)
  | Duplicate_lease_reply ->
    (* Answers each request twice with a completion for a lease this
       supervisor never granted — a delayed/replayed reply from an earlier
       epoch.  Both frames must be dropped by lease-id match. *)
    let path = fake_socket_path () in
    let reply =
      frame_bytes
        "{\"id\":\"\",\"status\":\"ok\",\"lease\":\"stale-dup\",\"total\":0,\
         \"done\":0,\"pending\":0,\"records\":[]}"
    in
    let stop =
      fake_server path (fun stopped c ->
          while await_request stopped c do
            write_all c reply;
            write_all c reply
          done)
    in
    (path, stop)
  | ( Cycle_dfg | Drop_edge_latency | Budget_overshoot | Swap_placements
    | Orphan_port | Stall_point | Crash_task | Truncate_journal | Slow_client
    | Overload_burst ) as c ->
    invalid_arg
      (Printf.sprintf "Inject.fake_worker: %s is not a distributed fault"
         (corruption_name c))

let overload_burst ~clients submit =
  let n = max 1 clients in
  let results = Array.make n None in
  let gate = Atomic.make 0 in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            (* Barrier: every client blocks here until all have arrived, so
               the submissions land as one burst rather than a trickle the
               daemon could absorb one at a time. *)
            Atomic.incr gate;
            while Atomic.get gate < n do
              Thread.yield ()
            done;
            results.(i) <- Some (submit i))
          ())
  in
  Array.iter Thread.join threads;
  Array.to_list results |> List.filter_map Fun.id
