type t =
  | Never
  | Tok of { deadline_ns : int64 option; flag : string option Atomic.t }
  | Any of t list

let never = Never

let after ~seconds =
  let ns = Int64.of_float (Float.max 0.0 seconds *. 1e9) in
  Tok
    {
      deadline_ns = Some (Int64.add (Obs.now_ns ()) ns);
      flag = Atomic.make None;
    }

let manual () = Tok { deadline_ns = None; flag = Atomic.make None }

(* Composite tokens collapse: [Never] children cannot fire, and a single
   child needs no wrapper.  The serve daemon links every request's own
   deadline token with the process-wide drain token this way. *)
let any ts =
  match List.filter (fun t -> t <> Never) ts with
  | [] -> Never
  | [ t ] -> t
  | ts -> Any ts

let rec trigger ?(reason = "cancelled") = function
  | Never -> ()
  | Tok t ->
    (* First reason wins; a lost race means another reason already won. *)
    ignore (Atomic.compare_and_set t.flag None (Some reason))
  | Any ts -> List.iter (fun t -> trigger ~reason t) ts

let rec reason = function
  | Never -> None
  | Tok t -> (
    match Atomic.get t.flag with
    | Some _ as r -> r
    | None -> (
      match t.deadline_ns with
      | Some d when Obs.now_ns () >= d -> Some "deadline"
      | Some _ | None -> None))
  | Any ts -> List.find_map reason ts

let cancelled t = reason t <> None
