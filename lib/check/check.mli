(** Pipeline-wide invariant checking (the "checked pipeline").

    The flow of the paper (Fig. 8) is a chain of phases — DFG construction,
    timed-DFG derivation, slack analysis, budgeting, scheduling, netlist
    generation — and a silent corruption in one phase surfaces only as a
    mysteriously bad or infeasible result many phases later.  Each validator
    here audits the artifact one phase hands to the next and returns a
    structured {!violation} list ({e never} raises), with a severity and an
    op/edge witness, so callers can degrade gracefully: record, retry
    through the recovery ladder in [Flows.run], or abort with a precise
    diagnosis.

    Validators for the post-schedule artifacts (schedule legality,
    netlist/area cross-checks) live in [Audit], one layer up, because they
    need the scheduling and RTL types.

    Every violation recorded through {!record} bumps the [check.violations]
    telemetry counter. *)

type severity = Warning | Error

type witness =
  | No_witness
  | Op of Dfg.Op_id.t
  | Dep of Dfg.Op_id.t * Dfg.Op_id.t          (** producer, consumer *)
  | Cycle of Dfg.Op_id.t list                 (** acyclicity witness *)
  | Port of string                            (** I/O port name *)

type violation = {
  check : string;      (** validator that fired, e.g. ["dfg.acyclic"] *)
  severity : severity;
  witness : witness;
  message : string;
}

val violation :
  ?severity:severity -> ?witness:witness -> check:string -> string -> violation
(** [severity] defaults to [Error], [witness] to [No_witness]. *)

val errors : violation list -> violation list
(** The [Error]-severity subset. *)

val has_errors : violation list -> bool
val pp_violation : Format.formatter -> violation -> unit
val summary : violation list -> string
(** One line per violation, for error messages and logs. *)

val record : violation list -> violation list
(** Bump the [check.violations] counter by the list length; returns the
    list unchanged.  Validators themselves never touch telemetry so they
    stay pure and re-runnable. *)

(** {1 Validation levels} *)

type level = Off | Boundary | Paranoid

val level_of_string : string -> level option
val level_name : level -> string

val ge : level -> level -> bool
(** [ge l at]: whether level [l] enables checks gated at [at]
    ([Off < Boundary < Paranoid]). *)

(** {1 Phase-boundary validators}

    All validators are total: they never raise, whatever the corruption. *)

val dfg : Dfg.t -> violation list
(** DFG well-formedness: forward dependencies acyclic (with a cycle
    witness), op widths inside the library's [1, 512] range, birth edges on
    forward CFG edges, every forward dependency realisable (producer birth
    reaches consumer birth). *)

val timed_dfg : Timed_dfg.t -> violation list
(** Timed-DFG sanity: every edge latency non-negative, and every active op
    covered by a sink node (the span-encoding edge of §V Definition 2). *)

val slack :
  Timed_dfg.t -> clock:float -> del:(Dfg.Op_id.t -> float) -> violation list
(** Slack consistency after budgeting: with the budgeted delays, aligned
    arrival must not exceed required time on any op, and every aligned
    arrival must sit at a legal in-cycle position (operations never
    straddle a clock boundary). *)

val budget :
  Dfg.t ->
  targets:float array ->
  ranges:(Dfg.Op_id.t -> Interval.t) ->
  violation list
(** Budget legality: every delay target finite and inside its op's
    area/delay-curve range [min, max]. *)
