type severity = Warning | Error

type witness =
  | No_witness
  | Op of Dfg.Op_id.t
  | Dep of Dfg.Op_id.t * Dfg.Op_id.t
  | Cycle of Dfg.Op_id.t list
  | Port of string

type violation = {
  check : string;
  severity : severity;
  witness : witness;
  message : string;
}

let violation ?(severity = Error) ?(witness = No_witness) ~check message =
  { check; severity; witness; message }

let errors vs = List.filter (fun v -> v.severity = Error) vs
let has_errors vs = List.exists (fun v -> v.severity = Error) vs

let pp_witness ppf = function
  | No_witness -> ()
  | Op o -> Format.fprintf ppf " [op %d]" (Dfg.Op_id.to_int o)
  | Dep (p, c) ->
    Format.fprintf ppf " [dep %d -> %d]" (Dfg.Op_id.to_int p) (Dfg.Op_id.to_int c)
  | Cycle path ->
    Format.fprintf ppf " [cycle %s]"
      (String.concat " -> " (List.map (fun o -> string_of_int (Dfg.Op_id.to_int o)) path))
  | Port p -> Format.fprintf ppf " [port %s]" p

let pp_violation ppf v =
  Format.fprintf ppf "%s %s: %s%a"
    (match v.severity with Error -> "error" | Warning -> "warning")
    v.check v.message pp_witness v.witness

let summary vs =
  String.concat "\n" (List.map (fun v -> Format.asprintf "%a" pp_violation v) vs)

let c_violations = Obs.counter "check.violations"

let record vs =
  Obs.add c_violations (List.length vs);
  vs

type level = Off | Boundary | Paranoid

let level_of_string = function
  | "off" -> Some Off
  | "boundary" -> Some Boundary
  | "paranoid" -> Some Paranoid
  | _ -> None

let level_name = function Off -> "off" | Boundary -> "boundary" | Paranoid -> "paranoid"

let rank = function Off -> 0 | Boundary -> 1 | Paranoid -> 2
let ge l at = rank l >= rank at

(* The width bound of Library.curve; checked structurally here so the
   corruption is caught before the library raises deep inside a flow. *)
let max_lib_width = 512

let dfg d =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  (match Dfg.forward_cycle d with
  | Some path ->
    add (violation ~check:"dfg.acyclic" ~witness:(Cycle path) (Dfg.cycle_message d path))
  | None -> ());
  Dfg.iter_ops d (fun o ->
      if o.Dfg.width < 1 || o.Dfg.width > max_lib_width then
        add
          (violation ~check:"dfg.width" ~witness:(Op o.Dfg.id)
             (Printf.sprintf "op %s has width %d outside [1, %d]" o.Dfg.name o.Dfg.width
                max_lib_width)));
  let cfg = Dfg.cfg d in
  if Cfg.is_sealed cfg then begin
    Dfg.iter_ops d (fun o ->
        if Cfg.is_backward cfg o.Dfg.birth then
          add
            (violation ~check:"dfg.birth" ~witness:(Op o.Dfg.id)
               (Printf.sprintf "op %s born on a backward CFG edge" o.Dfg.name)));
    List.iter
      (fun c ->
        List.iter
          (fun p ->
            let po = Dfg.op d p and co = Dfg.op d c in
            if not (Cfg.reaches cfg po.Dfg.birth co.Dfg.birth) then
              add
                (violation ~check:"dfg.dangling_dep" ~witness:(Dep (p, c))
                   (Printf.sprintf "dependency %s -> %s crosses no forward CFG path"
                      po.Dfg.name co.Dfg.name)))
          (Dfg.preds d c))
      (Dfg.ops d)
  end;
  List.rev !vs

let timed_dfg tdfg =
  let d = Timed_dfg.dfg tdfg in
  let name o = (Dfg.op d o).Dfg.name in
  let node_label = function
    | Timed_dfg.Op o -> name o
    | Timed_dfg.Sink o -> "sink(" ^ name o ^ ")"
  in
  let vs = ref [] in
  let add v = vs := v :: !vs in
  let nodes = Timed_dfg.topo tdfg in
  List.iter
    (fun node ->
      List.iter
        (fun (p, w) ->
          if w < 0 then
            let wit =
              match (p, node) with
              | Timed_dfg.Op a, Timed_dfg.Op b -> Dep (a, b)
              | (Timed_dfg.Op a | Timed_dfg.Sink a), _ -> Op a
            in
            add
              (violation ~check:"timed_dfg.negative_latency" ~witness:wit
                 (Printf.sprintf "edge %s -> %s carries negative latency %d"
                    (node_label p) (node_label node) w)))
        (Timed_dfg.preds tdfg node))
    nodes;
  List.iter
    (fun o ->
      let has_sink =
        List.exists
          (fun (s, _) -> Timed_dfg.node_equal s (Timed_dfg.Sink o))
          (Timed_dfg.succs tdfg (Timed_dfg.Op o))
      in
      if not has_sink then
        add
          (violation ~check:"timed_dfg.sink_coverage" ~witness:(Op o)
             (Printf.sprintf "active op %s has no sink node (span not encoded)" (name o))))
    (Timed_dfg.active_ops tdfg);
  List.rev !vs

let slack_eps = 1e-6

let slack tdfg ~clock ~del =
  if clock <= 0.0 then
    [ violation ~check:"slack.clock" "clock period must be positive" ]
  else begin
    let d = Timed_dfg.dfg tdfg in
    let res = Slack.analyze ~aligned:true tdfg ~clock ~del in
    let vs = ref [] in
    List.iter
      (fun o ->
        let s = Slack.op_slack res o in
        vs :=
          violation ~check:"slack.negative" ~witness:(Op o)
            (Printf.sprintf "op %s has negative slack %.1f (arrival past required)"
               (Dfg.op d o).Dfg.name s)
          :: !vs)
      (Slack.negative_ops ~eps:slack_eps tdfg res);
    (* Aligned arrivals are fixpoints of align_start: an op that would
       straddle a clock boundary has been pushed to the next edge. *)
    List.iter
      (fun o ->
        let i = Dfg.Op_id.to_int o in
        let a = res.Slack.arr.(i) and dd = del o in
        if dd <= clock +. slack_eps then begin
          let a' = Slack.align_start ~clock ~delay:dd a in
          if Float.abs (a' -. a) > slack_eps then
            vs :=
              violation ~check:"slack.alignment" ~witness:(Op o)
                (Printf.sprintf
                   "op %s starts at %.1f and straddles a clock boundary (delay %.1f)"
                   (Dfg.op d o).Dfg.name a dd)
              :: !vs
        end)
      (Timed_dfg.active_ops tdfg);
    List.rev !vs
  end

let budget d ~targets ~ranges =
  let vs = ref [] in
  let eps = 1e-6 in
  Dfg.iter_ops d (fun o ->
      match o.Dfg.kind with
      | Dfg.Const _ -> ()
      | _ ->
        let i = Dfg.Op_id.to_int o.Dfg.id in
        if i < Array.length targets then begin
          let t = targets.(i) in
          let r = ranges o.Dfg.id in
          if not (Float.is_finite t) then
            vs :=
              violation ~check:"budget.target_finite" ~witness:(Op o.Dfg.id)
                (Printf.sprintf "op %s has non-finite delay target" o.Dfg.name)
              :: !vs
          else if t < Interval.lo r -. eps || t > Interval.hi r +. eps then
            vs :=
              violation ~check:"budget.target_range" ~witness:(Op o.Dfg.id)
                (Printf.sprintf
                   "op %s: delay target %.1f outside its curve range [%.1f, %.1f]"
                   o.Dfg.name t (Interval.lo r) (Interval.hi r))
              :: !vs
        end
        else
          vs :=
            violation ~check:"budget.target_missing" ~witness:(Op o.Dfg.id)
              (Printf.sprintf "op %s has no delay target (array too short)" o.Dfg.name)
            :: !vs);
  List.rev !vs
