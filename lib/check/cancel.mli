(** Cooperative cancellation tokens for long-running pipeline work.

    A token is either {!never} (free to test, never fires) or carries a
    monotonic-clock deadline and/or a manually triggered flag.  Holders of
    a token poll {!cancelled} at phase boundaries — validator guards, the
    scheduler's relaxation loop, recovery-ladder rungs — so a runaway
    point in a sweep degrades to a [Timed_out] result instead of hanging
    its worker domain.  Polling never raises and costs one atomic load
    plus (when a deadline is set) one clock read.

    Tokens are domain-safe: {!trigger} may be called from any domain or
    from a signal handler (it is a single atomic store), and any number of
    domains may poll the same token. *)

type t

val never : t
(** The inert token: never cancelled, {!trigger} on it is a no-op.  Use as
    the default when no supervision is requested. *)

val after : seconds:float -> t
(** A token whose deadline is [seconds] from now on the monotonic clock.
    [seconds <= 0] is already expired.  The token can additionally be
    {!trigger}ed early. *)

val manual : unit -> t
(** A token with no deadline; fires only when {!trigger}ed (e.g. from a
    SIGINT/SIGTERM handler). *)

val any : t list -> t
(** A token that is cancelled as soon as any of its children is: the
    reason is the first child's (in list order) that has fired.
    {!trigger} on it triggers every child.  [Never] children are dropped;
    [any []] is {!never}.  Used to link a request-level deadline with a
    process-wide drain token. *)

val trigger : ?reason:string -> t -> unit
(** Cancel now.  The first reason wins ([reason] defaults to
    ["cancelled"]); on {!never} this is a no-op. *)

val cancelled : t -> bool

val reason : t -> string option
(** [Some why] once the token has fired — the {!trigger} reason, or
    ["deadline"] when the deadline passed first; [None] otherwise. *)
