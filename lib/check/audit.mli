(** Post-schedule phase-boundary validators.

    Companions to the [Check] validators for the artifacts produced after
    scheduling — the schedule itself, the netlist and the area breakdown —
    split out of [Check] because they need the scheduling/RTL types, which
    sit above the layers [Flows.run] validates in-flight.

    Same contract as [Check]: total (never raise — an internal crash while
    auditing is itself reported as a violation), structured violation lists
    with witnesses. *)

val check_schedule : Schedule.t -> Check.violation list
(** Schedule legality: the full structural audit of [Schedule.validate]
    (placements total, spans respected, dependency order with chaining,
    per-cycle delay within the clock, II-congruent sharing conflicts), plus
    a step/edge consistency cross-check: every placement's recorded control
    step equals [Cfg.state_of_edge] of its edge. *)

val check_netlist : Netlist.t -> Check.violation list
(** Netlist cross-checks against its schedule: every [Read]/[Write] op
    backed by a port and no orphan ports; every FU op placed on that very
    instance and every bound op covered by exactly one FU; registers with
    sane widths/steps and placed sources; state count consistent. *)

val check_area : Schedule.t -> Area_model.breakdown -> Check.violation list
(** Area-model consistency: components finite and non-negative, the total
    equal to the component sum, and the FU component equal to the
    independently computed [Area_model.fu_only]. *)
