let total ~check f =
  try f ()
  with exn ->
    [
      Check.violation ~check:(check ^ ".audit_crash")
        (Printf.sprintf "auditor raised %s" (Printexc.to_string exn));
    ]

let check_schedule (s : Schedule.t) =
  total ~check:"schedule" @@ fun () ->
  let vs = ref [] in
  let add v = vs := v :: !vs in
  (match Schedule.validate s with
  | Ok () -> ()
  | Error msgs ->
    List.iter (fun m -> add (Check.violation ~check:"schedule.legality" m)) msgs);
  let cfg = Dfg.cfg s.Schedule.dfg in
  Dfg.iter_ops s.Schedule.dfg (fun o ->
      match Schedule.placement s o.Dfg.id with
      | None -> ()
      | Some p ->
        let expect = Cfg.state_of_edge cfg p.Schedule.edge in
        if p.Schedule.step <> expect then
          add
            (Check.violation ~check:"schedule.step_consistency"
               ~witness:(Check.Op o.Dfg.id)
               (Printf.sprintf
                  "op %s records control step %d but its edge sits in step %d"
                  o.Dfg.name p.Schedule.step expect)));
  List.rev !vs

let check_netlist (nl : Netlist.t) =
  total ~check:"netlist" @@ fun () ->
  let vs = ref [] in
  let add v = vs := v :: !vs in
  let s = nl.Netlist.schedule in
  let dfg = s.Schedule.dfg in
  let port_exists name input =
    List.exists
      (fun p -> p.Netlist.port_name = name && p.Netlist.input = input)
      nl.Netlist.ports
  in
  let used = Hashtbl.create 8 in
  Dfg.iter_ops dfg (fun o ->
      match o.Dfg.kind with
      | Dfg.Read name ->
        Hashtbl.replace used (name, true) ();
        if not (port_exists name true) then
          add
            (Check.violation ~check:"netlist.port_coverage"
               ~witness:(Check.Port name)
               (Printf.sprintf "read op %s has no input port %s" o.Dfg.name name))
      | Dfg.Write name ->
        Hashtbl.replace used (name, false) ();
        if not (port_exists name false) then
          add
            (Check.violation ~check:"netlist.port_coverage"
               ~witness:(Check.Port name)
               (Printf.sprintf "write op %s has no output port %s" o.Dfg.name name))
      | _ -> ());
  List.iter
    (fun p ->
      if not (Hashtbl.mem used (p.Netlist.port_name, p.Netlist.input)) then
        add
          (Check.violation ~check:"netlist.orphan_port"
             ~witness:(Check.Port p.Netlist.port_name)
             (Printf.sprintf "%s port %s is driven by no operation"
                (if p.Netlist.input then "input" else "output")
                p.Netlist.port_name)))
    nl.Netlist.ports;
  (* FU binding: the ops a functional unit lists must really be placed on
     that instance, and every instance-bound op must be covered. *)
  let covered = Hashtbl.create 16 in
  List.iter
    (fun (fu : Netlist.fu) ->
      List.iter
        (fun o ->
          Hashtbl.replace covered (Dfg.Op_id.to_int o) ();
          match Schedule.placement s o with
          | None ->
            add
              (Check.violation ~check:"netlist.fu_binding" ~witness:(Check.Op o)
                 (Printf.sprintf "FU lists unplaced op %s" (Dfg.op dfg o).Dfg.name))
          | Some p ->
            if p.Schedule.inst <> Some fu.Netlist.inst.Alloc.id then
              add
                (Check.violation ~check:"netlist.fu_binding" ~witness:(Check.Op o)
                   (Printf.sprintf "FU lists op %s bound to a different instance"
                      (Dfg.op dfg o).Dfg.name)))
        fu.Netlist.ops)
    nl.Netlist.fus;
  Dfg.iter_ops dfg (fun o ->
      match Schedule.placement s o.Dfg.id with
      | Some p
        when p.Schedule.inst <> None
             && not (Hashtbl.mem covered (Dfg.Op_id.to_int o.Dfg.id)) ->
        add
          (Check.violation ~check:"netlist.fu_coverage" ~witness:(Check.Op o.Dfg.id)
             (Printf.sprintf "bound op %s appears in no functional unit" o.Dfg.name))
      | _ -> ());
  List.iter
    (fun (r : Netlist.register) ->
      if r.Netlist.reg_width < 1 then
        add
          (Check.violation ~check:"netlist.register" ~witness:(Check.Op r.Netlist.source)
             (Printf.sprintf "register %s has width %d" r.Netlist.reg_name
                r.Netlist.reg_width));
      if r.Netlist.written_in_step < 0 || r.Netlist.written_in_step >= nl.Netlist.n_states
      then
        add
          (Check.violation ~check:"netlist.register" ~witness:(Check.Op r.Netlist.source)
             (Printf.sprintf "register %s written in step %d of %d states"
                r.Netlist.reg_name r.Netlist.written_in_step nl.Netlist.n_states));
      if not (Schedule.is_placed s r.Netlist.source) then
        add
          (Check.violation ~check:"netlist.register" ~witness:(Check.Op r.Netlist.source)
             (Printf.sprintf "register %s sourced from an unplaced op"
                r.Netlist.reg_name)))
    nl.Netlist.registers;
  let states = Schedule.steps_used s in
  if nl.Netlist.n_states <> states then
    add
      (Check.violation ~check:"netlist.states"
         (Printf.sprintf "netlist records %d states but the schedule uses %d"
            nl.Netlist.n_states states));
  List.rev !vs

let check_area (s : Schedule.t) (b : Area_model.breakdown) =
  total ~check:"area" @@ fun () ->
  let vs = ref [] in
  let add v = vs := v :: !vs in
  let component name x =
    if not (Float.is_finite x) then
      add
        (Check.violation ~check:"area.finite"
           (Printf.sprintf "%s area is not finite" name))
    else if x < 0.0 then
      add
        (Check.violation ~check:"area.finite"
           (Printf.sprintf "%s area is negative (%.3f)" name x))
  in
  component "fu" b.Area_model.fu;
  component "mux" b.Area_model.mux;
  component "register" b.Area_model.registers;
  component "fsm" b.Area_model.fsm;
  component "total" b.Area_model.total;
  let sum =
    b.Area_model.fu +. b.Area_model.mux +. b.Area_model.registers +. b.Area_model.fsm
  in
  let eps = 1e-6 *. Float.max 1.0 (Float.abs sum) in
  if Float.abs (sum -. b.Area_model.total) > eps then
    add
      (Check.violation ~check:"area.breakdown_sum"
         (Printf.sprintf "breakdown total %.3f differs from component sum %.3f"
            b.Area_model.total sum));
  let fu_only = Area_model.fu_only s in
  if Float.abs (fu_only -. b.Area_model.fu) > eps then
    add
      (Check.violation ~check:"area.fu_crosscheck"
         (Printf.sprintf "breakdown FU area %.3f differs from fu_only %.3f"
            b.Area_model.fu fu_only));
  List.rev !vs
