(** Fault-injection harness for the checked pipeline.

    Each corruption class damages one pipeline artifact in a way a specific
    validator family is contractually obliged to catch; the test suite
    applies every class and asserts the intended validator — and only that
    family — fires.  Keeping the classes named and enumerable
    ({!all_corruptions}) forces the test matrix to stay in sync with the
    validator set.

    Injectors are deterministic (first eligible victim) and either return a
    corrupted copy or report that the artifact offered no injection site
    ([None] / [false]). *)

type corruption =
  | Cycle_dfg          (** close a forward-dependency cycle in the DFG *)
  | Drop_edge_latency  (** make a timed-DFG edge weight negative *)
  | Budget_overshoot   (** push a delay target past its curve maximum *)
  | Swap_placements    (** swap the placements of two ops in different steps *)
  | Orphan_port        (** add a netlist port no operation drives *)
  | Stall_point        (** an evaluation that sleeps past its deadline *)
  | Crash_task         (** a task closure that raises mid-sweep *)
  | Truncate_journal   (** tear the final record off a checkpoint journal *)
  | Slow_client        (** a request frame that stops flowing mid-frame *)
  | Overload_burst     (** simultaneous requests above the high-water mark *)
  | Dead_worker        (** a worker whose socket refuses every connect *)
  | Partitioned_worker (** reachable but silent — no reply ever arrives *)
  | Stalled_heartbeat  (** alive on the wire but health probes go unanswered *)
  | Torn_response      (** a lease reply that dies mid-frame *)
  | Duplicate_lease_reply
      (** a replayed completion for a lease this supervisor never granted *)

val all_corruptions : corruption list
val corruption_name : corruption -> string

val intended_check_prefix : corruption -> string
(** The family that must contain the class, e.g. ["timed_dfg."] for
    {!Drop_edge_latency}.  The first five classes name a validator family
    (violation [check]-name prefix); the supervision classes name the
    harness that must absorb them — ["cancel."] (deadline tokens),
    ["pool."] (worker quarantine), ["journal."] (load-time record
    quarantine/salvage), ["serve.stall."] (the daemon's mid-frame stall
    budget), ["serve.shed."] (admission-control load shedding) and
    ["dispatch."] (the distributed-sweep supervisor) for the five worker
    fault classes. *)

val intended_dispatch_response : corruption -> (string * string) option
(** The [(detector, response)] pair the dispatch supervisor's containment
    log must record for a distributed fault class — e.g.
    [("connect_failed", "reassign")] for {!Dead_worker} — and [None] for
    every in-process class.  [test/test_dispatch.ml] injects each class
    and asserts exactly this pair appears in the sweep's dispatch stats. *)

val cycle_dfg : Dfg.t -> bool
(** Add the reverse of an existing forward dependency, closing a 2-cycle.
    Mutates the DFG in place; [false] when it has no forward dependency. *)

val drop_edge_latency : Timed_dfg.t -> Timed_dfg.t option
(** Copy with the first active op's first outgoing edge re-weighted to -1;
    [None] when the graph has no active op. *)

val budget_overshoot :
  Dfg.t ->
  targets:float array ->
  ranges:(Dfg.Op_id.t -> Interval.t) ->
  float array option
(** Copy of [targets] with the first non-constant op's target pushed past
    [Interval.hi (ranges o)]; [None] when there is no such op. *)

val swap_placements : Schedule.t -> Schedule.t option
(** Copy of the schedule with the placements of the first two ops sitting
    in different control steps exchanged; [None] when all placed ops share
    one step. *)

val orphan_port : Netlist.t -> Netlist.t
(** Copy with an extra input port ["__injected_orphan"] that no operation
    reads. *)

(** {1 Supervision faults}

    These damage the sweep harness rather than a pipeline artifact: the
    tests bind each to the machinery that must absorb it (a fired deadline
    token, a [Crashed] pool outcome, a quarantined journal record). *)

exception Injected_crash of string
(** What {!crash_task} raises — distinguishable from any real failure. *)

val stall_point : seconds:float -> (unit -> 'a) -> unit -> 'a
(** Wrap a builder so every call sleeps [seconds] first — a point that
    stalls past its deadline. *)

val crash_task : crash_on:(int -> bool) -> (unit -> 'a) -> unit -> 'a
(** Wrap a task closure with a shared (domain-safe) call counter starting
    at 1; invocation [n] raises {!Injected_crash} when [crash_on n].
    [crash_on (fun n -> n = 2)] crashes exactly one evaluation (call 1 is
    the digest build); [(fun n -> n >= 2)] crashes every evaluation;
    [(fun n -> n = 2 || n = 3)] fails once and succeeds on retry. *)

val truncate_journal : ?bytes:int -> string -> unit
(** Chop the last [bytes] (default 7) off a journal file — the torn final
    record a mid-append crash leaves behind.  Raises [Unix.Unix_error] if
    the file does not exist. *)

(** {1 Serving faults}

    Ingress damage for the synthesis daemon: the tests bind each to the
    containment machinery that must absorb it (the per-connection stall
    budget, admission-control shedding). *)

val slow_client : prefix_bytes:int -> string -> string
(** The stalled-request fault as data: the first [prefix_bytes] of an
    encoded frame — what a client that dribbles a request and then hangs
    leaves on the wire.  Feed it to a daemon connection and send nothing
    further; the read-timeout must fire. *)

val overload_burst : clients:int -> (int -> 'a) -> 'a list
(** Run [clients] copies of [submit] on concurrent threads, released
    through a barrier so the calls land simultaneously — above the
    daemon's high-water mark, some must come back shed.  Returns the
    results in client order. *)

(** {1 Distributed faults}

    Fake workers: each presents one worker failure mode on a real Unix
    socket, so the dispatch supervisor's detectors (connect failures,
    lease deadlines, missed heartbeats, torn frames, lease-id mismatches)
    can be exercised without killing processes. *)

val fake_worker : corruption -> string * (unit -> unit)
(** [fake_worker class] is [(socket_path, stop)] for a distributed fault
    class; [stop] is idempotent and tears the listener down.
    {!Dead_worker} leaves a bound-then-closed socket (every connect is
    refused); {!Partitioned_worker}/{!Stalled_heartbeat} accept and read
    but never write (wire-indistinguishable — which detector fires first
    is the supervisor's timing configuration); {!Torn_response} answers
    with a 10-byte prefix of a valid frame; {!Duplicate_lease_reply}
    answers every request twice with a completion for lease
    ["stale-dup"].  Raises [Invalid_argument] for in-process classes. *)
