(** Fault-injection harness for the checked pipeline.

    Each corruption class damages one pipeline artifact in a way a specific
    validator family is contractually obliged to catch; the test suite
    applies every class and asserts the intended validator — and only that
    family — fires.  Keeping the classes named and enumerable
    ({!all_corruptions}) forces the test matrix to stay in sync with the
    validator set.

    Injectors are deterministic (first eligible victim) and either return a
    corrupted copy or report that the artifact offered no injection site
    ([None] / [false]). *)

type corruption =
  | Cycle_dfg          (** close a forward-dependency cycle in the DFG *)
  | Drop_edge_latency  (** make a timed-DFG edge weight negative *)
  | Budget_overshoot   (** push a delay target past its curve maximum *)
  | Swap_placements    (** swap the placements of two ops in different steps *)
  | Orphan_port        (** add a netlist port no operation drives *)

val all_corruptions : corruption list
val corruption_name : corruption -> string

val intended_check_prefix : corruption -> string
(** The validator family (violation [check]-name prefix) that must detect
    the class, e.g. ["timed_dfg."] for {!Drop_edge_latency}. *)

val cycle_dfg : Dfg.t -> bool
(** Add the reverse of an existing forward dependency, closing a 2-cycle.
    Mutates the DFG in place; [false] when it has no forward dependency. *)

val drop_edge_latency : Timed_dfg.t -> Timed_dfg.t option
(** Copy with the first active op's first outgoing edge re-weighted to -1;
    [None] when the graph has no active op. *)

val budget_overshoot :
  Dfg.t ->
  targets:float array ->
  ranges:(Dfg.Op_id.t -> Interval.t) ->
  float array option
(** Copy of [targets] with the first non-constant op's target pushed past
    [Interval.hi (ranges o)]; [None] when there is no such op. *)

val swap_placements : Schedule.t -> Schedule.t option
(** Copy of the schedule with the placements of the first two ops sitting
    in different control steps exchanged; [None] when all placed ops share
    one step. *)

val orphan_port : Netlist.t -> Netlist.t
(** Copy with an extra input port ["__injected_orphan"] that no operation
    reads. *)
