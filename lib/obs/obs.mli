(** Telemetry for the HLS pipeline: hierarchical spans, monotone counters,
    value distributions, and pluggable output sinks.

    The paper's claims are about {e algorithmic} efficiency — slack passes
    linear in the timed-DFG connections (§IV–V), bounded budgeting updates
    (§V), a scheduler that re-budgets after every CFG edge (§VI, Fig. 8).
    This module makes those quantities observable at runtime without
    changing any result: every probe is either a constant-time counter
    bump or a span that compiles down to a single flag test when no sink
    is enabled (the default "null sink").

    Counters are always collected — they are deterministic event counts,
    cheap enough for hot paths, and two identical runs produce identical
    {!counters_snapshot}s.  Span wall-clock aggregation and Chrome trace
    events are only recorded after {!enable_stats} / {!enable_trace}.

    The module is a process-wide singleton: the CLI, benchmark harness and
    tests all want one shared ledger.  It is domain-safe — the explore
    engine evaluates design points on a [Domain] pool: counter bumps are
    lock-free atomics, the open-span path is domain-local, and interning
    plus aggregate mutation are serialised on an internal mutex. *)

val now_ns : unit -> int64
(** Monotonic clock (CLOCK_MONOTONIC), nanoseconds. *)

(** {1 Counters}

    Named monotone counters.  Obtain the handle once (at module
    initialisation) and bump it in the hot path: a bump is one record
    mutation, no hashing. *)

type counter

val counter : string -> counter
(** Interned by name: the same name always yields the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative amount — counters are
    monotone. *)

val value : counter -> int

(** {1 Distributions}

    Named value distributions (min/max/mean/p50/p95 over all observed
    samples). *)

type dist

val dist : string -> dist
(** Interned by name, like {!counter}. *)

val observe : dist -> float -> unit

type dist_stats = {
  n : int;
  dmin : float;
  dmax : float;
  mean : float;
  p50 : float;
  p95 : float;
}

val dist_stats : dist -> dist_stats option
(** [None] until at least one sample has been observed. *)

(** {1 Spans} *)

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], timing it when stats or trace collection is
    enabled.  Nesting builds a path ("hls.run/flow.schedule/…") used for
    the hierarchical text report and the Chrome trace.  Exceptions
    propagate; the span still closes. *)

val note_span :
  ?attrs:(string * string) list ->
  name:string ->
  t0_ns:int64 ->
  t1_ns:int64 ->
  unit ->
  unit
(** Record an already-measured interval ([now_ns] values) as a closed
    span, bypassing the domain-local nesting stack.  For callers whose
    concurrency unit is a systhread sharing one domain (the serve
    daemon's connection handlers), where nested {!span}s from concurrent
    requests would corrupt each other's path.  Attrs land in the Chrome
    trace [args] — request handlers put the remote trace context there,
    which is what parents a worker's slice under the supervisor's trace
    id after a fleet merge. *)

val open_spans : unit -> string list
(** The calling domain's currently open span stack, outermost first.
    Dumped by the crash flight recorder so a postmortem names the phase
    the process died in. *)

val collecting : unit -> bool
(** Whether spans are currently being timed (stats or trace enabled). *)

(** {1 Sinks} *)

val enable_stats : unit -> unit
(** Aggregate span timings for {!report}. *)

val enable_trace : unit -> unit
(** Buffer Chrome-trace events for {!trace_json} / {!write_trace}. *)

val disable : unit -> unit
(** Back to the null sink.  Collected data is kept until {!reset}. *)

val reset : unit -> unit
(** Zero every counter, clear distributions, span aggregates, the trace
    buffer and the event ring.  Sink enablement is unchanged. *)

(** {1 Outputs} *)

val counters_snapshot : unit -> (string * int) list
(** Every interned counter with its value, sorted by name.  Deterministic
    across identical runs. *)

val span_stats : unit -> (string * int * float) list
(** Aggregated spans as [(path, count, total_ns)], sorted by path. *)

val dists_snapshot : unit -> (string * dist_stats) list
(** Every distribution with at least one sample, sorted by name. *)


val report : unit -> string
(** Human-readable text report: per-phase wall-clock (if stats were
    enabled), counters, distributions. *)

val trace_json : unit -> string
(** Chrome trace-event JSON ("X" complete events); loads in
    [chrome://tracing] and Perfetto. *)

val write_trace : path:string -> unit

(** {1 JSON}

    A minimal JSON emitter, shared by the trace sink and the benchmark
    harness (the repo deliberately has no JSON package dependency). *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val parse : string -> (t, string) result
  (** Recursive-descent parser for the subset {!to_string} emits (plus
      standard escapes); used to replay event files and diff benchmark
      snapshots.  Numbers without [./e/E] parse as [Int]. *)
end

(** {1 Work-attribution profiling}

    Per-span GC/alloc telemetry: with {!Prof.enable}, every closed span
    additionally accumulates the [Gc.quick_stat] delta of its body —
    minor/major words allocated and collections triggered.  The counters
    are domain-local, so a span's delta is its own churn even while other
    domains allocate concurrently; word counts are integers, so identical
    runs produce identical profiles.  [Prof] also owns the snapshot
    document written by [bench --json] and diffed by its baseline gate,
    so allocation regressions fail CI like wall-clock ones. *)

module Prof : sig
  type sample = {
    minor_words : float;
    major_words : float;
    promoted_words : float;
    minor_collections : int;
    major_collections : int;
  }

  val sample : unit -> sample
  (** Cumulative [Gc.quick_stat] counters of the calling domain. *)

  val delta : before:sample -> after:sample -> sample

  val enable : unit -> unit
  (** Start taking GC deltas around spans (and, when tracing, emitting
      heap-words counter events).  Effective only while a span sink is on
      ({!enable_stats} / {!enable_trace}). *)

  val disable : unit -> unit
  val enabled : unit -> bool

  type row = {
    path : string;
    calls : int;
    total_ns : float;
    minor_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
  }

  val rows : unit -> row list
  (** Aggregated spans with their alloc telemetry, sorted by path.  Alloc
      fields are zero for spans recorded while profiling was off. *)

  type snapshot = {
    mode : string;  (** "quick" | "full": only like-for-like runs compare *)
    sections : row list;
    counters : (string * int) list;
  }

  val snapshot : mode:string -> snapshot
  (** Current rows plus {!counters_snapshot}. *)

  val snapshot_to_json : ?harness:string -> snapshot -> Json.t
  val snapshot_of_json : Json.t -> (snapshot, string) result
  (** Lenient on alloc fields (default 0), so snapshots written before
      the profiler existed still load. *)
end


(** {1 Decision provenance}

    Typed events recording {e why} the pipeline did what it did: slack
    recomputation per budgeting round (§V), delay-grade updates, per-edge
    scheduling outcomes (§VI, Fig. 8), recovery-ladder steps, and explore
    worker samples.  Events live in a bounded ring buffer (oldest dropped
    first, counted in [obs.events.dropped]) and carry sequence numbers
    only — no wall-clock fields — so two identical runs write
    byte-identical JSONL files.  Disabled, {!Events.emit} is a single
    flag test, matching the null-sink discipline of spans. *)

module Events : sig
  type payload =
    | Slack_computed of { op : string; phase : string; round : int; slack_ps : float }
    | Delay_update of {
        op : string;
        phase : string;
        round : int;
        from_ps : float;
        to_ps : float;
      }
    | Budget_round of { round : int; updates : int }
    | Edge_scheduled of { edge : int; step : int; placed : int; deferred : int }
    | Op_picked of {
        op : string;
        edge : int;
        step : int;
        priority : float;
        ready_set_size : int;
      }
    | Recovery_step of { rung : string; outcome : string }
    | Worker_sample of {
        domain : int;
        tasks_done : int;
        utilization : float;
        minor_words : float;  (** allocation delta of the sampled task *)
        major_words : float;
      }
    | Serve_sample of {
        queue_depth : int;
            (** admitted requests currently in the system (queued + executing) *)
        inflight : int;  (** requests currently executing *)
        admitted : int;  (** cumulative admission decisions *)
        shed : int;  (** cumulative load-shed decisions *)
      }
    | Dispatch_sample of {
        workers : int;  (** workers currently believed alive *)
        leases : int;  (** leases currently outstanding *)
        done_points : int;  (** points durably recorded so far *)
        total_points : int;
        reassigned : int;  (** cumulative lease reassignments *)
        stolen : int;  (** cumulative tail-steal splits *)
        salvaged : int;  (** cumulative points salvaged from failed workers *)
      }

  type t = { seq : int; payload : payload }

  val enabled : unit -> bool

  val enable : ?capacity:int -> unit -> unit
  (** Start recording into a fresh ring of [capacity] slots (default
      65536, minimum 1). *)

  val disable : unit -> unit
  (** Stop recording.  Buffered events are kept until {!clear} or
      {!Obs.reset}. *)

  val clear : unit -> unit

  val emit : payload -> unit
  (** Record one event.  A single flag test when disabled. *)

  val events : unit -> t list
  (** Buffered events, oldest first. *)

  val mark : unit -> int
  (** The current sequence cursor: the seq the next emitted event will
      get.  Pins a window for {!since}. *)

  val since : mark:int -> t list
  (** Buffered events with [seq >= mark], oldest first — the events
      emitted after {!mark} returned (minus any the ring dropped). *)

  val renumber : t list -> t list
  (** Re-stamp sequence numbers from 0 in list order.  A worker ships
      each lease's event window renumbered, so the shipped stream is a
      pure function of the lease — independent of what the daemon served
      before it. *)

  val deterministic : t -> bool
  (** Whether the payload is identical across identical runs.  Sample
      payloads ([Worker_sample]/[Serve_sample]/[Dispatch_sample]) carry
      wall-clock-derived gauges and are excluded from provenance files
      that must be byte-stable. *)

  val set_hook : (t -> unit) option -> unit
  (** Called synchronously on every recorded event, under the internal
      mutex: the hook must be fast and must not call back into [Obs]
      locking operations (spans, [counter], [dist]).  Used for live
      progress reporting. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> (t, string) result

  val to_jsonl_line : t -> string

  val write_jsonl : path:string -> unit
  (** Write every buffered event as one JSON object per line. *)

  val load_jsonl : path:string -> (t list, string) result

  (** {2 Tagged multi-worker streams}

      A merged provenance file interleaves independent seq streams, one
      per lease, each line tagged with a ["worker"] field naming its
      stream.  {!of_json} tolerates the tag, so tagged files load
      anywhere; the tagged loader additionally enforces that sequence
      numbers strictly increase {e within each stream} and names the
      offending stream and line on a violation. *)

  type tagged = { stream : string option; event : t }

  val tagged_to_jsonl_line : stream:string -> t -> string
  (** {!to_jsonl_line} with a leading ["worker"] tag field. *)

  val load_tagged : path:string -> (tagged list, string) result
  (** Load a (possibly merged, possibly untagged) JSONL file, checking
      per-stream seq monotonicity.  Untagged lines form one anonymous
      stream. *)

  (** {2 Divergence localization}

      Positional comparison of two event streams that should be identical
      (e.g. a full recompute against an incremental engine's replay): the
      first mismatching event, with a per-payload field diff, is where the
      two runs' decisions split. *)

  type field_diff = { field : string; a_val : string; b_val : string }

  type divergence = {
    index : int;  (** position in the aligned streams *)
    a : t option;  (** [None]: stream A ended before B *)
    b : t option;
    fields : field_diff list;
        (** differing payload fields when both events are present,
            rendered as JSON fragments *)
  }

  val diff : t list -> t list -> divergence option
  (** [None] when the streams are identical (same length, equal events in
      order). *)

  val diff_tagged : tagged list -> tagged list -> divergence option
  (** {!diff} over tagged streams: a stream-tag mismatch diverges too,
      reported as a synthetic ["worker"] field diff. *)
end

(** {1 Shippable telemetry}

    The whole ledger of one process — span tree with GC columns, counters,
    distributions, Chrome-trace slices, and the event-ring tail as JSONL —
    as a typed, JSON-serialisable snapshot.  A worker daemon answers a
    [telemetry] request with one; the sweep supervisor merges snapshots
    from every worker into a fleet trace (one lane per worker), a
    namespaced counter snapshot, and a merged provenance file.  All
    timestamps are monotonic nanoseconds relative to the captured
    process's own epoch; cross-process alignment is the merger's job
    ({!Telemetry.lane_events} applies its clock-offset estimate). *)

module Telemetry : sig
  type trace_entry = {
    t_name : string;
    t_path : string;
    t_ts_ns : int;  (** relative to the captured process's epoch *)
    t_dur_ns : int;
    t_tid : int;
    t_attrs : (string * string) list;
  }

  type heap_entry = {
    h_ts_ns : int;
    h_tid : int;
    h_minor_w : float;
    h_major_w : float;
  }

  type snapshot = {
    pid : int;
    clock_ns : int;  (** capture time on the captured process's clock *)
    prof : Prof.snapshot;  (** span tree with GC columns + counters *)
    dists : (string * dist_stats) list;
    trace : trace_entry list;
    heap : heap_entry list;
    events : string list;  (** event-ring tail as JSONL lines, seq-stamped *)
  }

  val uptime_ns : unit -> int
  (** Monotonic nanoseconds since this process's telemetry epoch — the
      clock {!snapshot.clock_ns} and every trace timestamp are on. *)

  val capture : ?events_limit:int -> ?include_trace:bool -> unit -> snapshot
  (** Snapshot the current process ledger.  [events_limit] (default 4096)
      keeps only the event-ring tail; [include_trace:false] omits the
      trace/heap buffers (heartbeat-sized snapshots).  Bumps
      [obs.telemetry.captures]. *)

  val counters : snapshot -> (string * int) list

  val to_json : snapshot -> Json.t
  val of_json : Json.t -> (snapshot, string) result

  val lane_events :
    pid:int -> offset_ns:int -> ?process_name:string -> snapshot -> Json.t list
  (** Render one snapshot as a Chrome-trace lane: its slices and heap
      samples shifted by [offset_ns] (the merger's clock-offset estimate
      for this worker), tagged with lane id [pid], preceded by a
      [process_name] metadata record when a label is given. *)
end

(** {1 Metrics exposition} *)

module Expo : sig
  val sanitize : string -> string
  (** Metric-name sanitisation: anything outside [[a-zA-Z0-9_]] becomes
      ['_'], so [serve.requests] exposes as [serve_requests]. *)

  val render_into :
    counters:(string * int) list ->
    dists:(string * dist_stats) list ->
    string
  (** Prometheus text format: every counter as [<name>_total] with a
      [# TYPE] line, every distribution as a summary (p50/p95 quantiles,
      [_sum], [_count]). *)

  val render : unit -> string
  (** {!render_into} over the live {!counters_snapshot} and
      {!dists_snapshot} — what [serve --metrics] serves. *)
end
