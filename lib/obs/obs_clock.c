/* Monotonic clock for the telemetry layer: CLOCK_MONOTONIC nanoseconds,
   immune to wall-clock adjustments.  Kept as a local stub so lib/obs has
   no dependency beyond the OCaml runtime. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <unistd.h>

CAMLprim value hls_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}

/* Process id, for tagging telemetry snapshots and crash dumps without
   pulling the unix library into lib/obs. */
CAMLprim value hls_obs_pid(value unit)
{
  (void)unit;
  return Val_int((int)getpid());
}
