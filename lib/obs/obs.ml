external now_ns : unit -> int64 = "hls_obs_monotonic_ns"
external os_pid : unit -> int = "hls_obs_pid"

let epoch_ns = now_ns ()

(* The ledger is shared by every domain (the explore engine evaluates
   design points on a Domain pool): interning and aggregate mutation go
   through one mutex, counter bumps are lock-free atomics, and the span
   path is domain-local state.  Contention is negligible — interning
   happens at module initialisation, aggregates only when a sink is on. *)
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = Atomic.make 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

(* ------------------------------------------------------------------ *)
(* Distributions *)

type dist = {
  d_name : string;
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
  d_values : float Vec.t;
}

let dists : (string, dist) Hashtbl.t = Hashtbl.create 16

let dist name =
  locked @@ fun () ->
  match Hashtbl.find_opt dists name with
  | Some d -> d
  | None ->
    let d =
      {
        d_name = name;
        d_count = 0;
        d_sum = 0.0;
        d_min = infinity;
        d_max = neg_infinity;
        d_values = Vec.create ();
      }
    in
    Hashtbl.replace dists name d;
    d

let observe d v =
  locked @@ fun () ->
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum +. v;
  if v < d.d_min then d.d_min <- v;
  if v > d.d_max then d.d_max <- v;
  ignore (Vec.push d.d_values v)

type dist_stats = {
  n : int;
  dmin : float;
  dmax : float;
  mean : float;
  p50 : float;
  p95 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let dist_stats d =
  if d.d_count = 0 then None
  else begin
    let sorted = locked (fun () -> Vec.to_array d.d_values) in
    Array.sort Float.compare sorted;
    Some
      {
        n = d.d_count;
        dmin = d.d_min;
        dmax = d.d_max;
        mean = d.d_sum /. float_of_int d.d_count;
        p50 = percentile sorted 50.0;
        p95 = percentile sorted 95.0;
      }
  end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf

  (* Minimal recursive-descent parser for the subset this module emits —
     enough to replay event files and diff benchmark snapshots without a
     JSON package dependency. *)
  exception Parse_error of string

  let parse s =
    let incr = Stdlib.incr in
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
    in
    let string_body () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; incr pos
               | '\\' -> Buffer.add_char buf '\\'; incr pos
               | '/' -> Buffer.add_char buf '/'; incr pos
               | 'n' -> Buffer.add_char buf '\n'; incr pos
               | 'r' -> Buffer.add_char buf '\r'; incr pos
               | 't' -> Buffer.add_char buf '\t'; incr pos
               | 'b' -> Buffer.add_char buf '\b'; incr pos
               | 'f' -> Buffer.add_char buf '\012'; incr pos
               | 'u' ->
                 if !pos + 4 >= n then fail "truncated \\u escape";
                 let hex = String.sub s (!pos + 1) 4 in
                 (match int_of_string_opt ("0x" ^ hex) with
                 | Some code -> utf8 buf code; pos := !pos + 5
                 | None -> fail "bad \\u escape")
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
          | c -> Buffer.add_char buf c; incr pos; go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do incr pos done;
      let tok = String.sub s start (!pos - start) in
      let floaty =
        String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
      in
      if floaty then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok)
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ((k, v) :: acc)
            | Some '}' -> incr pos; List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; List [] end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements (v :: acc)
            | Some ']' -> incr pos; List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
      | Some '"' -> String (string_body ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some ('-' | '0' .. '9') -> number ()
      | Some c -> fail (Printf.sprintf "unexpected character %C" c)
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error m -> Error m
end

(* ------------------------------------------------------------------ *)
(* Spans and sinks *)

type span_agg = {
  mutable s_count : int;
  mutable s_total_ns : int64;
  (* GC/alloc deltas, accumulated only while profiling is enabled. *)
  mutable s_minor_w : float;
  mutable s_major_w : float;
  mutable s_minor_c : int;
  mutable s_major_c : int;
}

let new_span_agg () =
  {
    s_count = 0;
    s_total_ns = 0L;
    s_minor_w = 0.0;
    s_major_w = 0.0;
    s_minor_c = 0;
    s_major_c = 0;
  }

type trace_event = {
  ev_name : string;
  ev_path : string;
  ev_ts_ns : int64;  (* relative to [epoch_ns] *)
  ev_dur_ns : int64;
  ev_tid : int;  (* the recording domain's id: one trace lane per worker *)
  ev_attrs : (string * string) list;
}

(* One heap-pressure sample per closed span, rendered as Chrome-trace
   counter events (ph:"C"): cumulative words allocated by the recording
   domain, so traces show memory pressure alongside the span lanes. *)
type gc_trace_sample = {
  g_ts_ns : int64;  (* relative to [epoch_ns] *)
  g_tid : int;
  g_minor_w : float;
  g_major_w : float;
}

type state = {
  mutable stats_on : bool;
  mutable trace_on : bool;
  mutable prof_on : bool;  (* take Gc.quick_stat deltas around spans *)
  mutable collecting : bool;  (* stats_on || trace_on, the fast-path test *)
  span_aggs : (string, span_agg) Hashtbl.t;
  mutable trace_buf : trace_event Vec.t;
  mutable gc_buf : gc_trace_sample Vec.t;
}

let st =
  {
    stats_on = false;
    trace_on = false;
    prof_on = false;
    collecting = false;
    span_aggs = Hashtbl.create 32;
    trace_buf = Vec.create ();
    gc_buf = Vec.create ();
  }

(* The open-span path is per domain: concurrent workers each nest their
   own spans without seeing each other's stack. *)
let path_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let collecting () = st.collecting
let enable_stats () = st.stats_on <- true; st.collecting <- true
let enable_trace () = st.trace_on <- true; st.collecting <- true
let disable () = st.stats_on <- false; st.trace_on <- false; st.collecting <- false

(* ------------------------------------------------------------------ *)
(* Decision provenance: typed events in a bounded ring buffer.

   Events carry sequence numbers, never wall-clock timestamps, so two
   identical runs write byte-identical JSONL files.  The off path is a
   single flag test, matching the counter/span discipline. *)

module Events = struct
  type payload =
    | Slack_computed of { op : string; phase : string; round : int; slack_ps : float }
    | Delay_update of {
        op : string;
        phase : string;
        round : int;
        from_ps : float;
        to_ps : float;
      }
    | Budget_round of { round : int; updates : int }
    | Edge_scheduled of { edge : int; step : int; placed : int; deferred : int }
    | Op_picked of {
        op : string;
        edge : int;
        step : int;
        priority : float;
        ready_set_size : int;
      }
    | Recovery_step of { rung : string; outcome : string }
    | Worker_sample of {
        domain : int;
        tasks_done : int;
        utilization : float;
        minor_words : float;  (* allocation delta of the sampled task *)
        major_words : float;
      }
    | Serve_sample of {
        queue_depth : int;  (* admitted requests currently in the system *)
        inflight : int;  (* requests currently executing *)
        admitted : int;  (* cumulative admission decisions *)
        shed : int;  (* cumulative load-shed decisions *)
      }
    | Dispatch_sample of {
        workers : int;  (* workers currently believed alive *)
        leases : int;  (* leases currently outstanding *)
        done_points : int;  (* points durably recorded so far *)
        total_points : int;
        reassigned : int;  (* cumulative lease reassignments *)
        stolen : int;  (* cumulative tail-steal splits *)
        salvaged : int;  (* cumulative points salvaged from failed workers *)
      }

  type t = { seq : int; payload : payload }

  (* Registered at module init: [emit] may run while [mu] is held by
     nobody else, but [counter] itself takes [mu], so the lookup must
     not happen inside the ring's critical section. *)
  let c_dropped = counter "obs.events.dropped"

  let default_capacity = 65536
  let on = ref false
  let cap = ref default_capacity
  let ring : t option array ref = ref [||]
  let start = ref 0
  let len = ref 0
  let next_seq = ref 0
  let hook : (t -> unit) option ref = ref None

  let enabled () = !on

  let reset_unlocked () =
    ring := [||];
    start := 0;
    len := 0;
    next_seq := 0

  let clear () = locked reset_unlocked

  let enable ?(capacity = default_capacity) () =
    locked (fun () ->
        cap := max 1 capacity;
        reset_unlocked ();
        on := true)

  let disable () = on := false
  let set_hook h = locked (fun () -> hook := h)

  let emit payload =
    if not !on then ()
    else
      locked (fun () ->
          let seq = !next_seq in
          next_seq := seq + 1;
          let ev = { seq; payload } in
          if Array.length !ring < !cap then ring := Array.make !cap None;
          if !len = !cap then begin
            (* Full: overwrite the oldest slot and advance the window. *)
            !ring.(!start) <- Some ev;
            start := (!start + 1) mod !cap;
            incr c_dropped
          end
          else begin
            !ring.((!start + !len) mod !cap) <- Some ev;
            len := !len + 1
          end;
          match !hook with Some h -> h ev | None -> ())

  let events () =
    locked (fun () ->
        List.init !len (fun i ->
            match !ring.((!start + i) mod !cap) with
            | Some e -> e
            | None -> assert false))

  (* Windowed capture: [mark] pins the current sequence cursor; [since]
     returns only the events emitted after it.  A worker daemon uses the
     pair to ship each lease's decision events without also shipping every
     earlier request's — the ring is shared process state, the window is
     not. *)
  let mark () = locked (fun () -> !next_seq)

  let since ~mark = List.filter (fun e -> e.seq >= mark) (events ())

  let renumber evs = List.mapi (fun i e -> { e with seq = i }) evs

  (* Sample payloads carry wall-clock-derived quantities (utilization,
     queue gauges), so they differ across identical runs; everything else
     is a pure function of the input and belongs in deterministic
     provenance files. *)
  let deterministic e =
    match e.payload with
    | Worker_sample _ | Serve_sample _ | Dispatch_sample _ -> false
    | Slack_computed _ | Delay_update _ | Budget_round _ | Edge_scheduled _
    | Op_picked _ | Recovery_step _ ->
      true

  let to_json e =
    let open Json in
    let base tag fields = Obj (("type", String tag) :: ("seq", Int e.seq) :: fields) in
    match e.payload with
    | Slack_computed { op; phase; round; slack_ps } ->
      base "slack"
        [
          ("op", String op);
          ("phase", String phase);
          ("round", Int round);
          ("slack_ps", Float slack_ps);
        ]
    | Delay_update { op; phase; round; from_ps; to_ps } ->
      base "delay"
        [
          ("op", String op);
          ("phase", String phase);
          ("round", Int round);
          ("from_ps", Float from_ps);
          ("to_ps", Float to_ps);
        ]
    | Budget_round { round; updates } ->
      base "budget_round" [ ("round", Int round); ("updates", Int updates) ]
    | Edge_scheduled { edge; step; placed; deferred } ->
      base "edge"
        [
          ("edge", Int edge);
          ("step", Int step);
          ("placed", Int placed);
          ("deferred", Int deferred);
        ]
    | Op_picked { op; edge; step; priority; ready_set_size } ->
      base "pick"
        [
          ("op", String op);
          ("edge", Int edge);
          ("step", Int step);
          ("priority", Float priority);
          ("ready", Int ready_set_size);
        ]
    | Recovery_step { rung; outcome } ->
      base "recovery" [ ("rung", String rung); ("outcome", String outcome) ]
    | Worker_sample { domain; tasks_done; utilization; minor_words; major_words } ->
      base "worker"
        [
          ("domain", Int domain);
          ("done", Int tasks_done);
          ("utilization", Float utilization);
          ("minor_w", Float minor_words);
          ("major_w", Float major_words);
        ]
    | Serve_sample { queue_depth; inflight; admitted; shed } ->
      base "serve"
        [
          ("queue_depth", Int queue_depth);
          ("inflight", Int inflight);
          ("admitted", Int admitted);
          ("shed", Int shed);
        ]
    | Dispatch_sample { workers; leases; done_points; total_points; reassigned; stolen; salvaged }
      ->
      base "dispatch"
        [
          ("workers", Int workers);
          ("leases", Int leases);
          ("done", Int done_points);
          ("total", Int total_points);
          ("reassigned", Int reassigned);
          ("stolen", Int stolen);
          ("salvaged", Int salvaged);
        ]

  let of_json j =
    let fail msg = raise (Json.Parse_error msg) in
    let decode () =
      match j with
      | Json.Obj fields ->
        let str k =
          match List.assoc_opt k fields with
          | Some (Json.String s) -> s
          | _ -> fail (Printf.sprintf "missing string field %S" k)
        in
        let int k =
          match List.assoc_opt k fields with
          | Some (Json.Int i) -> i
          | _ -> fail (Printf.sprintf "missing int field %S" k)
        in
        let num k =
          match List.assoc_opt k fields with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> fail (Printf.sprintf "missing number field %S" k)
        in
        (* For fields added after a payload shipped: event files written by
           older builds decode with the default instead of failing. *)
        let num_or default k =
          match List.assoc_opt k fields with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> default
        in
        let seq = int "seq" in
        let payload =
          match str "type" with
          | "slack" ->
            Slack_computed
              {
                op = str "op";
                phase = str "phase";
                round = int "round";
                slack_ps = num "slack_ps";
              }
          | "delay" ->
            Delay_update
              {
                op = str "op";
                phase = str "phase";
                round = int "round";
                from_ps = num "from_ps";
                to_ps = num "to_ps";
              }
          | "budget_round" ->
            Budget_round { round = int "round"; updates = int "updates" }
          | "edge" ->
            Edge_scheduled
              {
                edge = int "edge";
                step = int "step";
                placed = int "placed";
                deferred = int "deferred";
              }
          | "pick" ->
            Op_picked
              {
                op = str "op";
                edge = int "edge";
                step = int "step";
                priority = num "priority";
                ready_set_size = int "ready";
              }
          | "recovery" ->
            Recovery_step { rung = str "rung"; outcome = str "outcome" }
          | "serve" ->
            Serve_sample
              {
                queue_depth = int "queue_depth";
                inflight = int "inflight";
                admitted = int "admitted";
                shed = int "shed";
              }
          | "dispatch" ->
            Dispatch_sample
              {
                workers = int "workers";
                leases = int "leases";
                done_points = int "done";
                total_points = int "total";
                reassigned = int "reassigned";
                stolen = int "stolen";
                salvaged = int "salvaged";
              }
          | "worker" ->
            Worker_sample
              {
                domain = int "domain";
                tasks_done = int "done";
                utilization = num "utilization";
                minor_words = num_or 0.0 "minor_w";
                major_words = num_or 0.0 "major_w";
              }
          | tag -> fail (Printf.sprintf "unknown event type %S" tag)
        in
        { seq; payload }
      | _ -> fail "event is not a JSON object"
    in
    match decode () with
    | e -> Ok e
    | exception Json.Parse_error m -> Error m

  let to_jsonl_line e = Json.to_string (to_json e)

  let write_jsonl ~path =
    let evs = events () in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (to_jsonl_line e);
            output_char oc '\n')
          evs)

  let load_jsonl ~path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (lineno + 1) acc
          | line -> (
            match Json.parse line with
            | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
            | Ok j -> (
              match of_json j with
              | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
              | Ok e -> go (lineno + 1) (e :: acc)))
        in
        go 1 [])

  (* ---------------------------------------------------------------- *)
  (* Tagged multi-worker streams.  A merged provenance file interleaves
     several independent seq streams, one per lease; each line carries a
     "worker" tag naming its stream.  [of_json] tolerates the extra
     field, so tagged files load anywhere — but the tagged loader also
     enforces the per-stream contract: within one stream, sequence
     numbers strictly increase.  A violation names the offending stream
     and line instead of silently replaying a corrupted merge. *)

  type tagged = { stream : string option; event : t }

  let tagged_to_json ~stream e =
    match to_json e with
    | Json.Obj fields -> Json.Obj (("worker", Json.String stream) :: fields)
    | j -> j

  let tagged_to_jsonl_line ~stream e = Json.to_string (tagged_to_json ~stream e)

  let of_json_tagged j =
    match of_json j with
    | Error _ as e -> e
    | Ok event ->
      let stream =
        match j with
        | Json.Obj fields -> (
          match List.assoc_opt "worker" fields with
          | Some (Json.String s) -> Some s
          | _ -> None)
        | _ -> None
      in
      Ok { stream; event }

  let stream_name = function
    | Some s -> Printf.sprintf "stream %S" s
    | None -> "untagged stream"

  let load_tagged ~path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (* Last seen seq per stream; the untagged stream keys as "". *)
        let last : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let key = function Some s -> "s:" ^ s | None -> "" in
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (lineno + 1) acc
          | line -> (
            match Json.parse line with
            | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
            | Ok j -> (
              match of_json_tagged j with
              | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
              | Ok te -> (
                let k = key te.stream in
                match Hashtbl.find_opt last k with
                | Some prev when te.event.seq <= prev ->
                  Error
                    (Printf.sprintf
                       "line %d: %s: seq %d after seq %d — per-stream \
                        sequence numbers must increase"
                       lineno (stream_name te.stream) te.event.seq prev)
                | _ ->
                  Hashtbl.replace last k te.event.seq;
                  go (lineno + 1) (te :: acc))))
        in
        go 1 [])

  (* Divergence localization: two runs that should be identical (the
     byte-identical-equivalence proof of an incremental engine) are
     compared positionally; the first mismatching event, with its
     per-payload field diff, is where the runs' decisions split. *)

  type field_diff = { field : string; a_val : string; b_val : string }

  type divergence = {
    index : int;  (* position in the aligned streams *)
    a : t option;  (* [None]: this stream ended before the other *)
    b : t option;
    fields : field_diff list;  (* differing payload fields, both present *)
  }

  let field_diffs ea eb =
    let flat e = match to_json e with Json.Obj kvs -> kvs | j -> [ ("event", j) ] in
    let fa = flat ea and fb = flat eb in
    let keys =
      List.fold_left
        (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
        [] (fa @ fb)
    in
    List.filter_map
      (fun k ->
        let show kvs =
          match List.assoc_opt k kvs with
          | Some v -> Json.to_string v
          | None -> "<absent>"
        in
        let va = show fa and vb = show fb in
        if String.equal va vb then None
        else Some { field = k; a_val = va; b_val = vb })
      keys

  let diff a b =
    let rec go index a b =
      match (a, b) with
      | [], [] -> None
      | ea :: _, [] -> Some { index; a = Some ea; b = None; fields = [] }
      | [], eb :: _ -> Some { index; a = None; b = Some eb; fields = [] }
      | ea :: ra, eb :: rb ->
        if ea = eb then go (index + 1) ra rb
        else Some { index; a = Some ea; b = Some eb; fields = field_diffs ea eb }
    in
    go 0 a b

  (* Tagged variant: two merged files diverge when either the event or
     the stream it belongs to differs; a stream mismatch shows up as a
     synthetic "worker" field diff. *)
  let diff_tagged a b =
    let show = function Some s -> Printf.sprintf "%S" s | None -> "<untagged>" in
    let rec go index a b =
      match (a, b) with
      | [], [] -> None
      | ta :: _, [] -> Some { index; a = Some ta.event; b = None; fields = [] }
      | [], tb :: _ -> Some { index; a = None; b = Some tb.event; fields = [] }
      | ta :: ra, tb :: rb ->
        if ta.stream = tb.stream && ta.event = tb.event then go (index + 1) ra rb
        else
          let fields =
            let base = field_diffs ta.event tb.event in
            if ta.stream = tb.stream then base
            else
              { field = "worker"; a_val = show ta.stream; b_val = show tb.stream }
              :: base
          in
          Some { index; a = Some ta.event; b = Some tb.event; fields }
    in
    go 0 a b
end

let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.reset dists;
  Hashtbl.reset st.span_aggs;
  Domain.DLS.set path_key [];
  st.trace_buf <- Vec.create ();
  st.gc_buf <- Vec.create ();
  Events.reset_unlocked ()

(* GC counters are domain-local, so a delta is the measured region's own
   churn (children included, like wall clock) even while other domains
   allocate concurrently.  [Gc.quick_stat]'s [minor_words] only counts up
   to the last minor collection in native code; [Gc.minor_words ()] adds
   the live young generation, making small deltas exact — so the minor
   count rides alongside the stat record. *)
let gc_sample () = (Gc.minor_words (), Gc.quick_stat ())

let span ?(attrs = []) name f =
  if not st.collecting then f ()
  else begin
    let outer = Domain.DLS.get path_key in
    let path = String.concat "/" (List.rev (name :: outer)) in
    Domain.DLS.set path_key (name :: outer);
    let g0 = if st.prof_on then Some (gc_sample ()) else None in
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_ns () in
        let dur = Int64.sub t1 t0 in
        let g1 = match g0 with Some _ -> Some (gc_sample ()) | None -> None in
        Domain.DLS.set path_key outer;
        locked (fun () ->
            if st.stats_on then begin
              let a =
                match Hashtbl.find_opt st.span_aggs path with
                | Some a -> a
                | None ->
                  let a = new_span_agg () in
                  Hashtbl.replace st.span_aggs path a;
                  a
              in
              a.s_count <- a.s_count + 1;
              a.s_total_ns <- Int64.add a.s_total_ns dur;
              match (g0, g1) with
              | Some (bm, b), Some (em, e) ->
                a.s_minor_w <- a.s_minor_w +. (em -. bm);
                a.s_major_w <- a.s_major_w +. (e.Gc.major_words -. b.Gc.major_words);
                a.s_minor_c <-
                  a.s_minor_c + (e.Gc.minor_collections - b.Gc.minor_collections);
                a.s_major_c <-
                  a.s_major_c + (e.Gc.major_collections - b.Gc.major_collections)
              | _ -> ()
            end;
            if st.trace_on then begin
              ignore
                (Vec.push st.trace_buf
                   {
                     ev_name = name;
                     ev_path = path;
                     ev_ts_ns = Int64.sub t0 epoch_ns;
                     ev_dur_ns = dur;
                     ev_tid = (Domain.self () :> int);
                     ev_attrs = attrs;
                   });
              match g1 with
              | Some (em, e) ->
                ignore
                  (Vec.push st.gc_buf
                     {
                       g_ts_ns = Int64.sub t1 epoch_ns;
                       g_tid = (Domain.self () :> int);
                       g_minor_w = em;
                       g_major_w = e.Gc.major_words;
                     })
              | None -> ()
            end))
      f
  end

(* A span recorded after the fact, without the domain-local nesting
   stack.  The serve daemon handles every connection on systhreads that
   share domain 0, so nested [span] calls from concurrent requests would
   corrupt each other's DLS path; request spans instead measure with
   [now_ns] and record the closed interval here.  Attrs carry the remote
   trace context, which is how a worker's request slice ends up under the
   supervisor's trace id in a merged Chrome trace. *)
let note_span ?(attrs = []) ~name ~t0_ns ~t1_ns () =
  if not st.collecting then ()
  else
    let dur = Int64.sub t1_ns t0_ns in
    locked (fun () ->
        if st.stats_on then begin
          let a =
            match Hashtbl.find_opt st.span_aggs name with
            | Some a -> a
            | None ->
              let a = new_span_agg () in
              Hashtbl.replace st.span_aggs name a;
              a
          in
          a.s_count <- a.s_count + 1;
          a.s_total_ns <- Int64.add a.s_total_ns dur
        end;
        if st.trace_on then
          ignore
            (Vec.push st.trace_buf
               {
                 ev_name = name;
                 ev_path = name;
                 ev_ts_ns = Int64.sub t0_ns epoch_ns;
                 ev_dur_ns = dur;
                 ev_tid = (Domain.self () :> int);
                 ev_attrs = attrs;
               }))

(* The calling domain's currently open span stack, outermost first — the
   flight recorder dumps it so a crash names the phase it died in. *)
let open_spans () = List.rev (Domain.DLS.get path_key)

(* ------------------------------------------------------------------ *)
(* Outputs *)

let counters_snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun _ c acc -> (c.c_name, Atomic.get c.c_value) :: acc) counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let span_stats () =
  locked (fun () ->
      Hashtbl.fold
        (fun path a acc -> (path, a.s_count, Int64.to_float a.s_total_ns) :: acc)
        st.span_aggs [])
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let dists_snapshot () =
  (* Collect handles under the lock, compute stats outside it —
     [dist_stats] takes the lock itself. *)
  locked (fun () -> Hashtbl.fold (fun _ d acc -> d :: acc) dists [])
  |> List.filter_map (fun d ->
         Option.map (fun s -> (d.d_name, s)) (dist_stats d))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Work-attribution profiling: Gc.quick_stat deltas per span, and the
   snapshot document shared by `bench --json` and its baseline gate. *)

module Prof = struct
  type sample = {
    minor_words : float;
    major_words : float;
    promoted_words : float;
    minor_collections : int;
    major_collections : int;
  }

  let sample () =
    let g = Gc.quick_stat () in
    {
      minor_words = Gc.minor_words ();
      major_words = g.Gc.major_words;
      promoted_words = g.Gc.promoted_words;
      minor_collections = g.Gc.minor_collections;
      major_collections = g.Gc.major_collections;
    }

  let delta ~before ~after =
    {
      minor_words = after.minor_words -. before.minor_words;
      major_words = after.major_words -. before.major_words;
      promoted_words = after.promoted_words -. before.promoted_words;
      minor_collections = after.minor_collections - before.minor_collections;
      major_collections = after.major_collections - before.major_collections;
    }

  let enabled () = st.prof_on
  let enable () = st.prof_on <- true
  let disable () = st.prof_on <- false

  type row = {
    path : string;
    calls : int;
    total_ns : float;
    minor_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
  }

  let rows () =
    locked (fun () ->
        Hashtbl.fold
          (fun path a acc ->
            {
              path;
              calls = a.s_count;
              total_ns = Int64.to_float a.s_total_ns;
              minor_words = a.s_minor_w;
              major_words = a.s_major_w;
              minor_collections = a.s_minor_c;
              major_collections = a.s_major_c;
            }
            :: acc)
          st.span_aggs [])
    |> List.sort (fun a b -> String.compare a.path b.path)

  type snapshot = {
    mode : string;  (* "quick" | "full": only like-for-like runs compare *)
    sections : row list;
    counters : (string * int) list;
  }

  let snapshot ~mode = { mode; sections = rows (); counters = counters_snapshot () }

  let snapshot_to_json ?(harness = "slackhls") s =
    let open Json in
    let sections =
      List.map
        (fun r ->
          Obj
            [
              ("span", String r.path);
              ("calls", Int r.calls);
              ("total_ns", Float r.total_ns);
              ("minor_words", Float r.minor_words);
              ("major_words", Float r.major_words);
              ("minor_collections", Int r.minor_collections);
              ("major_collections", Int r.major_collections);
            ])
        s.sections
    in
    Obj
      [
        ("harness", String harness);
        ("mode", String s.mode);
        ("sections", List sections);
        ("counters", Obj (List.map (fun (name, v) -> (name, Int v)) s.counters));
      ]

  let snapshot_of_json doc =
    let open Json in
    match doc with
    | Obj fields ->
      let mode =
        match List.assoc_opt "mode" fields with Some (String m) -> m | _ -> "full"
      in
      let num = function
        | Some (Float f) -> Some f
        | Some (Int i) -> Some (float_of_int i)
        | _ -> None
      in
      let sections =
        match List.assoc_opt "sections" fields with
        | Some (List rws) ->
          List.filter_map
            (function
              | Obj rw -> (
                (* Alloc fields default to 0 so snapshots written before
                   the profiler existed still load and diff. *)
                let fnum k d = Option.value ~default:d (num (List.assoc_opt k rw)) in
                let fint k d =
                  match List.assoc_opt k rw with Some (Int i) -> i | _ -> d
                in
                match (List.assoc_opt "span" rw, num (List.assoc_opt "total_ns" rw))
                with
                | Some (String span), Some total_ns ->
                  Some
                    {
                      path = span;
                      calls = fint "calls" 0;
                      total_ns;
                      minor_words = fnum "minor_words" 0.0;
                      major_words = fnum "major_words" 0.0;
                      minor_collections = fint "minor_collections" 0;
                      major_collections = fint "major_collections" 0;
                    }
                | _ -> None)
              | _ -> None)
            rws
        | _ -> []
      in
      let counters =
        match List.assoc_opt "counters" fields with
        | Some (Obj rws) ->
          List.filter_map (function name, Int v -> Some (name, v) | _ -> None) rws
        | _ -> []
      in
      Ok { mode; sections; counters }
    | _ -> Error "snapshot is not a JSON object"
end

(* ------------------------------------------------------------------ *)
(* Shippable telemetry: the whole ledger of one process as a typed,
   JSON-serialisable snapshot.  A worker daemon answers a [telemetry]
   request with one of these; the sweep supervisor merges snapshots from
   every worker into a fleet Chrome trace (one lane per worker), a
   namespaced counter snapshot and a merged provenance event file.
   Timestamps are nanoseconds on this process's monotonic clock relative
   to its own epoch — cross-process alignment is the merger's job (it
   estimates the clock offset from the request round-trip). *)

module Telemetry = struct
  type trace_entry = {
    t_name : string;
    t_path : string;
    t_ts_ns : int;  (* relative to the captured process's epoch *)
    t_dur_ns : int;
    t_tid : int;
    t_attrs : (string * string) list;
  }

  type heap_entry = {
    h_ts_ns : int;
    h_tid : int;
    h_minor_w : float;
    h_major_w : float;
  }

  type snapshot = {
    pid : int;
    clock_ns : int;  (* capture time on the captured process's clock *)
    prof : Prof.snapshot;  (* span tree with GC columns + counters *)
    dists : (string * dist_stats) list;
    trace : trace_entry list;
    heap : heap_entry list;
    events : string list;  (* event ring tail as JSONL lines, seq-stamped *)
  }

  let c_captures = counter "obs.telemetry.captures"

  let uptime_ns () = Int64.to_int (Int64.sub (now_ns ()) epoch_ns)

  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: t -> drop (k - 1) t

  let capture ?(events_limit = 4096) ?(include_trace = true) () =
    incr c_captures;
    let trace, heap =
      if not include_trace then ([], [])
      else
        locked (fun () ->
            ( Vec.fold_left
                (fun acc (ev : trace_event) ->
                  {
                    t_name = ev.ev_name;
                    t_path = ev.ev_path;
                    t_ts_ns = Int64.to_int ev.ev_ts_ns;
                    t_dur_ns = Int64.to_int ev.ev_dur_ns;
                    t_tid = ev.ev_tid;
                    t_attrs = ev.ev_attrs;
                  }
                  :: acc)
                [] st.trace_buf
              |> List.rev,
              Vec.fold_left
                (fun acc (g : gc_trace_sample) ->
                  {
                    h_ts_ns = Int64.to_int g.g_ts_ns;
                    h_tid = g.g_tid;
                    h_minor_w = g.g_minor_w;
                    h_major_w = g.g_major_w;
                  }
                  :: acc)
                [] st.gc_buf
              |> List.rev ))
    in
    let evs = Events.events () in
    let evs = drop (List.length evs - max 0 events_limit) evs in
    {
      pid = os_pid ();
      clock_ns = uptime_ns ();
      prof = Prof.snapshot ~mode:"telemetry";
      dists = dists_snapshot ();
      trace;
      heap;
      events = List.map Events.to_jsonl_line evs;
    }

  let counters s = s.prof.Prof.counters

  let dist_to_json (d : dist_stats) =
    let open Json in
    Obj
      [
        ("n", Int d.n);
        ("min", Float d.dmin);
        ("max", Float d.dmax);
        ("mean", Float d.mean);
        ("p50", Float d.p50);
        ("p95", Float d.p95);
      ]

  let to_json s =
    let open Json in
    Obj
      [
        ("pid", Int s.pid);
        ("clock_ns", Int s.clock_ns);
        ("prof", Prof.snapshot_to_json ~harness:"slackhls-telemetry" s.prof);
        ("dists", Obj (List.map (fun (n, d) -> (n, dist_to_json d)) s.dists));
        ( "trace",
          List
            (List.map
               (fun t ->
                 Obj
                   ([
                      ("name", String t.t_name);
                      ("path", String t.t_path);
                      ("ts_ns", Int t.t_ts_ns);
                      ("dur_ns", Int t.t_dur_ns);
                      ("tid", Int t.t_tid);
                    ]
                   @
                   match t.t_attrs with
                   | [] -> []
                   | attrs ->
                     [
                       ( "attrs",
                         Obj (List.map (fun (k, v) -> (k, String v)) attrs) );
                     ]))
               s.trace) );
        ( "heap",
          List
            (List.map
               (fun h ->
                 Obj
                   [
                     ("ts_ns", Int h.h_ts_ns);
                     ("tid", Int h.h_tid);
                     ("minor_w", Float h.h_minor_w);
                     ("major_w", Float h.h_major_w);
                   ])
               s.heap) );
        ("events", List (List.map (fun l -> String l) s.events));
      ]

  let of_json doc =
    let open Json in
    let fail m = raise (Parse_error m) in
    let decode () =
      match doc with
      | Obj fields ->
        let int k d =
          match List.assoc_opt k fields with Some (Int i) -> i | _ -> d
        in
        let num = function
          | Some (Float f) -> f
          | Some (Int i) -> float_of_int i
          | _ -> 0.0
        in
        let prof =
          match List.assoc_opt "prof" fields with
          | Some p -> (
            match Prof.snapshot_of_json p with
            | Ok s -> s
            | Error m -> fail (Printf.sprintf "prof: %s" m))
          | None -> { Prof.mode = "telemetry"; sections = []; counters = [] }
        in
        let dists =
          match List.assoc_opt "dists" fields with
          | Some (Obj ds) ->
            List.filter_map
              (function
                | name, Obj dv ->
                  let f k = num (List.assoc_opt k dv) in
                  let n =
                    match List.assoc_opt "n" dv with Some (Int i) -> i | _ -> 0
                  in
                  Some
                    ( name,
                      {
                        n;
                        dmin = f "min";
                        dmax = f "max";
                        mean = f "mean";
                        p50 = f "p50";
                        p95 = f "p95";
                      } )
                | _ -> None)
              ds
          | _ -> []
        in
        let trace =
          match List.assoc_opt "trace" fields with
          | Some (List ts) ->
            List.filter_map
              (function
                | Obj tv ->
                  let str k =
                    match List.assoc_opt k tv with
                    | Some (String s) -> s
                    | _ -> ""
                  in
                  let i k =
                    match List.assoc_opt k tv with Some (Int v) -> v | _ -> 0
                  in
                  let attrs =
                    match List.assoc_opt "attrs" tv with
                    | Some (Obj avs) ->
                      List.filter_map
                        (function k, String v -> Some (k, v) | _ -> None)
                        avs
                    | _ -> []
                  in
                  Some
                    {
                      t_name = str "name";
                      t_path = str "path";
                      t_ts_ns = i "ts_ns";
                      t_dur_ns = i "dur_ns";
                      t_tid = i "tid";
                      t_attrs = attrs;
                    }
                | _ -> None)
              ts
          | _ -> []
        in
        let heap =
          match List.assoc_opt "heap" fields with
          | Some (List hs) ->
            List.filter_map
              (function
                | Obj hv ->
                  let i k =
                    match List.assoc_opt k hv with Some (Int v) -> v | _ -> 0
                  in
                  Some
                    {
                      h_ts_ns = i "ts_ns";
                      h_tid = i "tid";
                      h_minor_w = num (List.assoc_opt "minor_w" hv);
                      h_major_w = num (List.assoc_opt "major_w" hv);
                    }
                | _ -> None)
              hs
          | _ -> []
        in
        let events =
          match List.assoc_opt "events" fields with
          | Some (List ls) ->
            List.filter_map (function String l -> Some l | _ -> None) ls
          | _ -> []
        in
        { pid = int "pid" 0; clock_ns = int "clock_ns" 0; prof; dists; trace; heap; events }
      | _ -> fail "telemetry snapshot is not a JSON object"
    in
    match decode () with
    | s -> Ok s
    | exception Parse_error m -> Error m

  (* One worker's lane of a merged Chrome trace: its span slices and heap
     samples shifted by the supervisor-estimated clock offset and tagged
     with a per-worker pid, plus a process_name metadata record so the
     trace viewer labels the lane. *)
  let lane_events ~pid ~offset_ns ?process_name s =
    let open Json in
    let ts ns = Float (float_of_int (ns + offset_ns) /. 1e3) in
    let meta =
      match process_name with
      | None -> []
      | Some label ->
        [
          Obj
            [
              ("name", String "process_name");
              ("ph", String "M");
              ("pid", Int pid);
              ("tid", Int 0);
              ("args", Obj [ ("name", String label) ]);
            ];
        ]
    in
    let slices =
      List.map
        (fun t ->
          Obj
            [
              ("name", String t.t_name);
              ("cat", String "hls");
              ("ph", String "X");
              ("ts", ts t.t_ts_ns);
              ("dur", Float (float_of_int t.t_dur_ns /. 1e3));
              ("pid", Int pid);
              ("tid", Int t.t_tid);
              ( "args",
                Obj
                  (("path", String t.t_path)
                  :: List.map (fun (k, v) -> (k, String v)) t.t_attrs) );
            ])
        s.trace
    in
    let heap =
      List.map
        (fun h ->
          Obj
            [
              ("name", String "heap words");
              ("cat", String "hls");
              ("ph", String "C");
              ("ts", ts h.h_ts_ns);
              ("pid", Int pid);
              ("tid", Int h.h_tid);
              ( "args",
                Obj
                  [
                    ("minor_words", Float h.h_minor_w);
                    ("major_words", Float h.h_major_w);
                  ] );
            ])
        s.heap
    in
    meta @ slices @ heap
end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition: every counter as a monotone `<name>_total`
   and every distribution as a summary with p50/p95 quantiles.  Dots and
   other non-metric characters become underscores, so `serve.requests`
   scrapes as `serve_requests_total`. *)

module Expo = struct
  let sanitize name =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

  let render_into ~counters ~dists =
    let buf = Buffer.create 2048 in
    List.iter
      (fun (name, v) ->
        let m = sanitize name ^ "_total" in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" m v))
      counters;
    List.iter
      (fun (name, (s : dist_stats)) ->
        let m = sanitize name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" m);
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"0.5\"} %g\n" m s.p50);
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"0.95\"} %g\n" m s.p95);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %g\n" m (s.mean *. float_of_int s.n));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m s.n))
      dists;
    Buffer.contents buf

  let render () =
    render_into ~counters:(counters_snapshot ()) ~dists:(dists_snapshot ())
end

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let pp_words w =
  if w >= 1e9 then Printf.sprintf "%.2f Gw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.2f Mw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1f kw" (w /. 1e3)
  else Printf.sprintf "%.0f w" w

let report () =
  let buf = Buffer.create 1024 in
  let spans = Prof.rows () in
  if spans <> [] then begin
    let with_alloc =
      List.exists
        (fun r -> r.Prof.minor_words > 0.0 || r.Prof.major_words > 0.0)
        spans
    in
    Buffer.add_string buf
      (if with_alloc then "== phases (wall clock, GC/alloc) ==\n"
       else "== phases (wall clock) ==\n");
    let headers =
      [ "span"; "calls"; "total"; "mean" ]
      @ if with_alloc then [ "minor"; "major"; "gcs" ] else []
    in
    let t = Text_table.create ~headers in
    List.iter
      (fun (r : Prof.row) ->
        let path = r.Prof.path in
        let depth =
          String.fold_left (fun acc ch -> if ch = '/' then acc + 1 else acc) 0 path
        in
        let leaf =
          match String.rindex_opt path '/' with
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
          | None -> path
        in
        Text_table.add_row t
          ([
             String.make (2 * depth) ' ' ^ leaf;
             string_of_int r.Prof.calls;
             pp_ns r.Prof.total_ns;
             pp_ns (r.Prof.total_ns /. float_of_int (max 1 r.Prof.calls));
           ]
          @
          if with_alloc then
            [
              pp_words r.Prof.minor_words;
              pp_words r.Prof.major_words;
              string_of_int (r.Prof.minor_collections + r.Prof.major_collections);
            ]
          else []))
      spans;
    Buffer.add_string buf (Text_table.render t)
  end;
  let nonzero = List.filter (fun (_, v) -> v <> 0) (counters_snapshot ()) in
  if nonzero <> [] then begin
    (* Counters grouped by subsystem prefix (the text before the first
       '.'), pipeline phases first in flow order, then the engines that sit
       around the pipeline (explore, cache, obs, ...), then anything else
       alphabetically — so sweeps and caches summarise next to the phases
       instead of dumping unsorted at the bottom. *)
    let phase_order =
      [
        "frontend"; "graph"; "timed_dfg"; "slack"; "budget"; "sched"; "flow";
        "recovery"; "bind"; "rtl"; "area"; "check"; "explore"; "cache"; "obs";
      ]
    in
    let prefix_of name =
      match String.index_opt name '.' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    let rank p =
      let rec go i = function
        | [] -> (List.length phase_order, p)
        | q :: _ when String.equal q p -> (i, p)
        | _ :: rest -> go (i + 1) rest
      in
      go 0 phase_order
    in
    let groups =
      List.fold_left
        (fun acc ((name, _) as row) ->
          let p = prefix_of name in
          match List.assoc_opt p acc with
          | Some rows ->
            rows := row :: !rows;
            acc
          | None -> (p, ref [ row ]) :: acc)
        [] nonzero
      |> List.sort (fun (a, _) (b, _) -> compare (rank a) (rank b))
    in
    Buffer.add_string buf "== counters ==\n";
    List.iter
      (fun (p, rows) ->
        let rows = List.rev !rows in
        let total = List.fold_left (fun acc (_, v) -> acc + v) 0 rows in
        Buffer.add_string buf (Printf.sprintf "  [%s] (%d events)\n" p total);
        List.iter
          (fun (name, v) ->
            Buffer.add_string buf (Printf.sprintf "    %-42s %12d\n" name v))
          rows)
      groups
  end;
  let dist_rows =
    locked (fun () -> Hashtbl.fold (fun _ d acc -> (d.d_name, d) :: acc) dists [])
    |> List.filter_map (fun (name, d) -> Option.map (fun s -> (name, s)) (dist_stats d))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if dist_rows <> [] then begin
    Buffer.add_string buf "== distributions ==\n";
    let t =
      Text_table.create ~headers:[ "dist"; "n"; "min"; "mean"; "p50"; "p95"; "max" ]
    in
    List.iter
      (fun (name, s) ->
        Text_table.add_row t
          [
            name;
            string_of_int s.n;
            Printf.sprintf "%.1f" s.dmin;
            Printf.sprintf "%.1f" s.mean;
            Printf.sprintf "%.1f" s.p50;
            Printf.sprintf "%.1f" s.p95;
            Printf.sprintf "%.1f" s.dmax;
          ])
      dist_rows;
    Buffer.add_string buf (Text_table.render t)
  end;
  if Buffer.length buf = 0 then "== no telemetry collected ==\n" else Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON *)

let trace_json () =
  let events =
    Vec.fold_left
      (fun acc ev ->
        let args =
          Json.Obj
            (("path", Json.String ev.ev_path)
            :: List.map (fun (k, v) -> (k, Json.String v)) ev.ev_attrs)
        in
        Json.Obj
          [
            ("name", Json.String ev.ev_name);
            ("cat", Json.String "hls");
            ("ph", Json.String "X");
            ("ts", Json.Float (Int64.to_float ev.ev_ts_ns /. 1e3));
            ("dur", Json.Float (Int64.to_float ev.ev_dur_ns /. 1e3));
            ("pid", Json.Int 1);
            ("tid", Json.Int ev.ev_tid);
            ("args", args);
          ]
        :: acc)
      [] st.trace_buf
    |> List.rev
  in
  (* Heap-pressure counter lane (ph:"C"): one sample per closed span while
     profiling was on; Perfetto renders these as a stacked area chart. *)
  let heap =
    Vec.fold_left
      (fun acc g ->
        Json.Obj
          [
            ("name", Json.String "heap words");
            ("cat", Json.String "hls");
            ("ph", Json.String "C");
            ("ts", Json.Float (Int64.to_float g.g_ts_ns /. 1e3));
            ("pid", Json.Int 1);
            ("tid", Json.Int g.g_tid);
            ( "args",
              Json.Obj
                [
                  ("minor_words", Json.Float g.g_minor_w);
                  ("major_words", Json.Float g.g_major_w);
                ] );
          ]
        :: acc)
      [] st.gc_buf
    |> List.rev
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (events @ heap));
         ("displayTimeUnit", Json.String "ms");
       ])

let write_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_json ()))
