external now_ns : unit -> int64 = "hls_obs_monotonic_ns"

let epoch_ns = now_ns ()

(* The ledger is shared by every domain (the explore engine evaluates
   design points on a Domain pool): interning and aggregate mutation go
   through one mutex, counter bumps are lock-free atomics, and the span
   path is domain-local state.  Contention is negligible — interning
   happens at module initialisation, aggregates only when a sink is on. *)
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = Atomic.make 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

(* ------------------------------------------------------------------ *)
(* Distributions *)

type dist = {
  d_name : string;
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
  d_values : float Vec.t;
}

let dists : (string, dist) Hashtbl.t = Hashtbl.create 16

let dist name =
  locked @@ fun () ->
  match Hashtbl.find_opt dists name with
  | Some d -> d
  | None ->
    let d =
      {
        d_name = name;
        d_count = 0;
        d_sum = 0.0;
        d_min = infinity;
        d_max = neg_infinity;
        d_values = Vec.create ();
      }
    in
    Hashtbl.replace dists name d;
    d

let observe d v =
  locked @@ fun () ->
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum +. v;
  if v < d.d_min then d.d_min <- v;
  if v > d.d_max then d.d_max <- v;
  ignore (Vec.push d.d_values v)

type dist_stats = {
  n : int;
  dmin : float;
  dmax : float;
  mean : float;
  p50 : float;
  p95 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let dist_stats d =
  if d.d_count = 0 then None
  else begin
    let sorted = locked (fun () -> Vec.to_array d.d_values) in
    Array.sort Float.compare sorted;
    Some
      {
        n = d.d_count;
        dmin = d.d_min;
        dmax = d.d_max;
        mean = d.d_sum /. float_of_int d.d_count;
        p50 = percentile sorted 50.0;
        p95 = percentile sorted 95.0;
      }
  end

(* ------------------------------------------------------------------ *)
(* Spans and sinks *)

type span_agg = { mutable s_count : int; mutable s_total_ns : int64 }

type trace_event = {
  ev_name : string;
  ev_path : string;
  ev_ts_ns : int64;  (* relative to [epoch_ns] *)
  ev_dur_ns : int64;
  ev_attrs : (string * string) list;
}

type state = {
  mutable stats_on : bool;
  mutable trace_on : bool;
  mutable collecting : bool;  (* stats_on || trace_on, the fast-path test *)
  span_aggs : (string, span_agg) Hashtbl.t;
  mutable trace_buf : trace_event Vec.t;
}

let st =
  {
    stats_on = false;
    trace_on = false;
    collecting = false;
    span_aggs = Hashtbl.create 32;
    trace_buf = Vec.create ();
  }

(* The open-span path is per domain: concurrent workers each nest their
   own spans without seeing each other's stack. *)
let path_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let collecting () = st.collecting
let enable_stats () = st.stats_on <- true; st.collecting <- true
let enable_trace () = st.trace_on <- true; st.collecting <- true
let disable () = st.stats_on <- false; st.trace_on <- false; st.collecting <- false

let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.reset dists;
  Hashtbl.reset st.span_aggs;
  Domain.DLS.set path_key [];
  st.trace_buf <- Vec.create ()

let span ?(attrs = []) name f =
  if not st.collecting then f ()
  else begin
    let outer = Domain.DLS.get path_key in
    let path = String.concat "/" (List.rev (name :: outer)) in
    Domain.DLS.set path_key (name :: outer);
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (now_ns ()) t0 in
        Domain.DLS.set path_key outer;
        locked (fun () ->
            if st.stats_on then begin
              match Hashtbl.find_opt st.span_aggs path with
              | Some a ->
                a.s_count <- a.s_count + 1;
                a.s_total_ns <- Int64.add a.s_total_ns dur
              | None ->
                Hashtbl.replace st.span_aggs path { s_count = 1; s_total_ns = dur }
            end;
            if st.trace_on then
              ignore
                (Vec.push st.trace_buf
                   {
                     ev_name = name;
                     ev_path = path;
                     ev_ts_ns = Int64.sub t0 epoch_ns;
                     ev_dur_ns = dur;
                     ev_attrs = attrs;
                   })))
      f
  end

(* ------------------------------------------------------------------ *)
(* Outputs *)

let counters_snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun _ c acc -> (c.c_name, Atomic.get c.c_value) :: acc) counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let span_stats () =
  locked (fun () ->
      Hashtbl.fold
        (fun path a acc -> (path, a.s_count, Int64.to_float a.s_total_ns) :: acc)
        st.span_aggs [])
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let report () =
  let buf = Buffer.create 1024 in
  let spans = span_stats () in
  if spans <> [] then begin
    Buffer.add_string buf "== phases (wall clock) ==\n";
    let t = Text_table.create ~headers:[ "span"; "calls"; "total"; "mean" ] in
    List.iter
      (fun (path, count, total) ->
        let depth =
          String.fold_left (fun acc ch -> if ch = '/' then acc + 1 else acc) 0 path
        in
        let leaf =
          match String.rindex_opt path '/' with
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
          | None -> path
        in
        Text_table.add_row t
          [
            String.make (2 * depth) ' ' ^ leaf;
            string_of_int count;
            pp_ns total;
            pp_ns (total /. float_of_int count);
          ])
      spans;
    Buffer.add_string buf (Text_table.render t)
  end;
  let nonzero = List.filter (fun (_, v) -> v <> 0) (counters_snapshot ()) in
  if nonzero <> [] then begin
    Buffer.add_string buf "== counters ==\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" name v))
      nonzero
  end;
  let dist_rows =
    locked (fun () -> Hashtbl.fold (fun _ d acc -> (d.d_name, d) :: acc) dists [])
    |> List.filter_map (fun (name, d) -> Option.map (fun s -> (name, s)) (dist_stats d))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if dist_rows <> [] then begin
    Buffer.add_string buf "== distributions ==\n";
    let t =
      Text_table.create ~headers:[ "dist"; "n"; "min"; "mean"; "p50"; "p95"; "max" ]
    in
    List.iter
      (fun (name, s) ->
        Text_table.add_row t
          [
            name;
            string_of_int s.n;
            Printf.sprintf "%.1f" s.dmin;
            Printf.sprintf "%.1f" s.mean;
            Printf.sprintf "%.1f" s.p50;
            Printf.sprintf "%.1f" s.p95;
            Printf.sprintf "%.1f" s.dmax;
          ])
      dist_rows;
    Buffer.add_string buf (Text_table.render t)
  end;
  if Buffer.length buf = 0 then "== no telemetry collected ==\n" else Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf
end

let trace_json () =
  let events =
    Vec.fold_left
      (fun acc ev ->
        let args =
          Json.Obj
            (("path", Json.String ev.ev_path)
            :: List.map (fun (k, v) -> (k, Json.String v)) ev.ev_attrs)
        in
        Json.Obj
          [
            ("name", Json.String ev.ev_name);
            ("cat", Json.String "hls");
            ("ph", Json.String "X");
            ("ts", Json.Float (Int64.to_float ev.ev_ts_ns /. 1e3));
            ("dur", Json.Float (Int64.to_float ev.ev_dur_ns /. 1e3));
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
            ("args", args);
          ]
        :: acc)
      [] st.trace_buf
    |> List.rev
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ])

let write_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_json ()))
