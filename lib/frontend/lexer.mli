(** Hand-written lexer for the behavioral input language. *)

type token =
  | IDENT of string
  | INT of int
  | KW_PROCESS | KW_PORT | KW_IN | KW_OUT | KW_VAR | KW_LOOP
  | KW_FOR | KW_IF | KW_ELSE | KW_WAIT | KW_READ | KW_WRITE
  | LBRACE | RBRACE | LPAREN | RPAREN
  | SEMI | COLON | COMMA | ASSIGN | PLUSPLUS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | AMP | PIPE | CARET | TILDE
  | LT | LE | EQ | NE | GE | GT
  | EOF

val token_name : token -> string

type pos = { line : int; col : int }
(** 1-based source position of a token's first character. *)

exception Error of { line : int; col : int; message : string }

val tokenize_pos : string -> (token * pos) list
(** Token stream with full source positions.  Supports [//] line comments
    and [/* */] block comments.  Raises {!Error} on illegal characters. *)

val tokenize : string -> (token * int) list
(** {!tokenize_pos} reduced to line numbers. *)
