exception Error of { line : int; col : int; message : string }

type stream = { mutable toks : (Lexer.token * Lexer.pos) list }

let peek s = match s.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let pos s =
  match s.toks with
  | (_, p) :: _ -> p
  | [] -> { Lexer.line = 0; col = 0 }

let advance s = match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let fail s fmt =
  Printf.ksprintf
    (fun message ->
      let p = pos s in
      raise (Error { line = p.Lexer.line; col = p.Lexer.col; message }))
    fmt

let expect s tok =
  if peek s = tok then advance s
  else fail s "expected %s but found %s" (Lexer.token_name tok) (Lexer.token_name (peek s))

let ident s =
  match peek s with
  | Lexer.IDENT x ->
    advance s;
    x
  | t -> fail s "expected an identifier but found %s" (Lexer.token_name t)

let int_lit s =
  match peek s with
  | Lexer.INT v ->
    advance s;
    v
  | t -> fail s "expected an integer but found %s" (Lexer.token_name t)

(* Expression parsing by precedence climbing.  Levels, loosest first:
   | ; ^ ; & ; comparisons ; shifts ; additive ; multiplicative. *)
let binop_of_token : Lexer.token -> (Ast.binop * int) option = function
  | Lexer.PIPE -> Some (Ast.Bor, 1)
  | Lexer.CARET -> Some (Ast.Bxor, 2)
  | Lexer.AMP -> Some (Ast.Band, 3)
  | Lexer.LT -> Some (Ast.Blt, 4)
  | Lexer.LE -> Some (Ast.Ble, 4)
  | Lexer.EQ -> Some (Ast.Beq, 4)
  | Lexer.NE -> Some (Ast.Bne, 4)
  | Lexer.GE -> Some (Ast.Bge, 4)
  | Lexer.GT -> Some (Ast.Bgt, 4)
  | Lexer.SHL -> Some (Ast.Bshl, 5)
  | Lexer.SHR -> Some (Ast.Bshr, 5)
  | Lexer.PLUS -> Some (Ast.Badd, 6)
  | Lexer.MINUS -> Some (Ast.Bsub, 6)
  | Lexer.STAR -> Some (Ast.Bmul, 7)
  | Lexer.SLASH -> Some (Ast.Bdiv, 7)
  | Lexer.PERCENT -> Some (Ast.Bmod, 7)
  | _ -> None

let rec expr s = binary s 1

and binary s min_prec =
  let lhs = ref (unary s) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek s) with
    | Some (op, prec) when prec >= min_prec ->
      advance s;
      let rhs = binary s (prec + 1) in
      lhs := Ast.Binop (op, !lhs, rhs)
    | Some _ | None -> continue_ := false
  done;
  !lhs

and unary s =
  match peek s with
  | Lexer.TILDE ->
    advance s;
    Ast.Unop (Ast.Unot, unary s)
  | Lexer.MINUS ->
    advance s;
    Ast.Unop (Ast.Uneg, unary s)
  | _ -> primary s

and primary s =
  match peek s with
  | Lexer.INT v ->
    advance s;
    Ast.Int v
  | Lexer.IDENT x ->
    advance s;
    Ast.Var x
  | Lexer.KW_READ ->
    advance s;
    expect s Lexer.LPAREN;
    let p = ident s in
    expect s Lexer.RPAREN;
    Ast.Read p
  | Lexer.LPAREN ->
    advance s;
    let e = expr s in
    expect s Lexer.RPAREN;
    e
  | t -> fail s "expected an expression but found %s" (Lexer.token_name t)

let rec stmt s : Ast.stmt =
  match peek s with
  | Lexer.KW_WAIT ->
    advance s;
    expect s Lexer.SEMI;
    Ast.Wait
  | Lexer.KW_WRITE ->
    advance s;
    expect s Lexer.LPAREN;
    let p = ident s in
    expect s Lexer.COMMA;
    let e = expr s in
    expect s Lexer.RPAREN;
    expect s Lexer.SEMI;
    Ast.Write (p, e)
  | Lexer.KW_IF ->
    advance s;
    expect s Lexer.LPAREN;
    let c = expr s in
    expect s Lexer.RPAREN;
    let then_b = block s in
    let else_b = if peek s = Lexer.KW_ELSE then (advance s; block s) else [] in
    Ast.If (c, then_b, else_b)
  | Lexer.KW_FOR ->
    advance s;
    expect s Lexer.LPAREN;
    let index = ident s in
    expect s Lexer.ASSIGN;
    let from_ = int_lit s in
    expect s Lexer.SEMI;
    let index2 = ident s in
    if not (String.equal index index2) then fail s "for-loop condition must test %s" index;
    expect s Lexer.LT;
    let below = int_lit s in
    expect s Lexer.SEMI;
    let index3 = ident s in
    if not (String.equal index index3) then fail s "for-loop increment must bump %s" index;
    expect s Lexer.PLUSPLUS;
    expect s Lexer.RPAREN;
    let body = block s in
    Ast.For { index; from_; below; body }
  | Lexer.IDENT _ ->
    let x = ident s in
    expect s Lexer.ASSIGN;
    let e = expr s in
    expect s Lexer.SEMI;
    Ast.Assign (x, e)
  | t -> fail s "expected a statement but found %s" (Lexer.token_name t)

and block s =
  expect s Lexer.LBRACE;
  let stmts = ref [] in
  while peek s <> Lexer.RBRACE do
    stmts := stmt s :: !stmts
  done;
  expect s Lexer.RBRACE;
  List.rev !stmts

let c_parses = Obs.counter "frontend.parses"
let c_tokens = Obs.counter "frontend.tokens"

let parse src =
  Obs.span "frontend.parse" @@ fun () ->
  let s = { toks = Lexer.tokenize_pos src } in
  Obs.incr c_parses;
  Obs.add c_tokens (List.length s.toks);
  expect s Lexer.KW_PROCESS;
  let proc_name = ident s in
  expect s Lexer.LBRACE;
  let ports = ref [] and vars = ref [] in
  let in_decls = ref true in
  while !in_decls do
    match peek s with
    | Lexer.KW_PORT ->
      advance s;
      let is_input =
        match peek s with
        | Lexer.KW_IN ->
          advance s;
          true
        | Lexer.KW_OUT ->
          advance s;
          false
        | t -> fail s "expected 'in' or 'out' but found %s" (Lexer.token_name t)
      in
      let port = ident s in
      expect s Lexer.COLON;
      let width = int_lit s in
      expect s Lexer.SEMI;
      ports := { Ast.port; width; is_input } :: !ports
    | Lexer.KW_VAR ->
      advance s;
      let var = ident s in
      expect s Lexer.COLON;
      let vwidth = int_lit s in
      expect s Lexer.SEMI;
      vars := { Ast.var; vwidth } :: !vars
    | _ -> in_decls := false
  done;
  expect s Lexer.KW_LOOP;
  let body = block s in
  expect s Lexer.RBRACE;
  expect s Lexer.EOF;
  { Ast.proc_name; ports = List.rev !ports; vars = List.rev !vars; body }

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

type diagnostic = { dline : int; dcol : int; dmessage : string }

let diagnostic_message d =
  if d.dline = 0 then d.dmessage
  else Printf.sprintf "line %d, column %d: %s" d.dline d.dcol d.dmessage

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Error { line; col; message } ->
    Stdlib.Error { dline = line; dcol = col; dmessage = message }
  | exception Lexer.Error { line; col; message } ->
    Stdlib.Error { dline = line; dcol = col; dmessage = message }

let parse_file_result path =
  match parse_file path with
  | p -> Ok p
  | exception Error { line; col; message } ->
    Stdlib.Error { dline = line; dcol = col; dmessage = message }
  | exception Lexer.Error { line; col; message } ->
    Stdlib.Error { dline = line; dcol = col; dmessage = message }
