type token =
  | IDENT of string
  | INT of int
  | KW_PROCESS | KW_PORT | KW_IN | KW_OUT | KW_VAR | KW_LOOP
  | KW_FOR | KW_IF | KW_ELSE | KW_WAIT | KW_READ | KW_WRITE
  | LBRACE | RBRACE | LPAREN | RPAREN
  | SEMI | COLON | COMMA | ASSIGN | PLUSPLUS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | AMP | PIPE | CARET | TILDE
  | LT | LE | EQ | NE | GE | GT
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT v -> Printf.sprintf "integer %d" v
  | KW_PROCESS -> "'process'"
  | KW_PORT -> "'port'"
  | KW_IN -> "'in'"
  | KW_OUT -> "'out'"
  | KW_VAR -> "'var'"
  | KW_LOOP -> "'loop'"
  | KW_FOR -> "'for'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WAIT -> "'wait'"
  | KW_READ -> "'read'"
  | KW_WRITE -> "'write'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COMMA -> "','"
  | ASSIGN -> "'='"
  | PLUSPLUS -> "'++'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | LT -> "'<'"
  | LE -> "'<='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | GE -> "'>='"
  | GT -> "'>'"
  | EOF -> "end of input"

type pos = { line : int; col : int }

exception Error of { line : int; col : int; message : string }

let keyword = function
  | "process" -> Some KW_PROCESS
  | "port" -> Some KW_PORT
  | "in" -> Some KW_IN
  | "out" -> Some KW_OUT
  | "var" -> Some KW_VAR
  | "loop" -> Some KW_LOOP
  | "for" -> Some KW_FOR
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "wait" -> Some KW_WAIT
  | "read" -> Some KW_READ
  | "write" -> Some KW_WRITE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize_pos src =
  let n = String.length src in
  let line = ref 1 in
  let bol = ref 0 in
  let tokens = ref [] in
  let i = ref 0 in
  let col_at idx = idx - !bol + 1 in
  let emit_at start t = tokens := (t, { line = !line; col = col_at start }) :: !tokens in
  let emit t = emit_at !i t in
  let error idx message = raise (Error { line = !line; col = col_at idx; message }) in
  (* Call with [!i] on the newline character. *)
  let newline () =
    incr line;
    bol := !i + 1
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      newline ();
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then newline ();
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then error !i "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      emit_at start (match keyword word with Some kw -> kw | None -> IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit_at start (INT (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let two a b t =
        if c = a && peek 1 = Some b then begin
          emit t;
          i := !i + 2;
          true
        end
        else false
      in
      if
        two '+' '+' PLUSPLUS || two '<' '<' SHL || two '>' '>' SHR || two '<' '=' LE
        || two '>' '=' GE || two '=' '=' EQ || two '!' '=' NE
      then ()
      else begin
        (match c with
        | '{' -> emit LBRACE
        | '}' -> emit RBRACE
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | ';' -> emit SEMI
        | ':' -> emit COLON
        | ',' -> emit COMMA
        | '=' -> emit ASSIGN
        | '+' -> emit PLUS
        | '-' -> emit MINUS
        | '*' -> emit STAR
        | '/' -> emit SLASH
        | '%' -> emit PERCENT
        | '&' -> emit AMP
        | '|' -> emit PIPE
        | '^' -> emit CARET
        | '~' -> emit TILDE
        | '<' -> emit LT
        | '>' -> emit GT
        | c -> error !i (Printf.sprintf "illegal character %C" c));
        incr i
      end
    end
  done;
  emit EOF;
  List.rev !tokens

let tokenize src = List.map (fun (t, p) -> (t, p.line)) (tokenize_pos src)
