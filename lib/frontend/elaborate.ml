exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type sim_operand = Sop of Dfg.Op_id.t | Sconst of int | Sprev of string

type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  process : Ast.process;
  step_edges : Cfg.Edge_id.t list;
  operands : (Dfg.Op_id.t * sim_operand list) list;
  branch_conds : (Cfg.Node_id.t * sim_operand) list;
  final_env : (string * sim_operand) list;
}

(* A value in the SSA environment: a produced operation, a compile-time
   constant, or the previous iteration's value of a named variable (not yet
   produced this iteration). *)
type value =
  | Vop of Dfg.Op_id.t * int (* op, width *)
  | Vconst of int
  | Vprev of string * int (* variable, width *)

type state = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  env : (string, value) Hashtbl.t;
  widths : (string, int) Hashtbl.t; (* declared variable widths *)
  ports : (string, Ast.port_decl) Hashtbl.t;
  (* loop-carried fixups: op consumed the previous-iteration value of var *)
  mutable fixups : (Dfg.Op_id.t * string) list;
  mutable op_operands : (Dfg.Op_id.t * sim_operand list) list;
  mutable branch_conds : (Cfg.Node_id.t * sim_operand) list;
  (* divergent variables awaiting a mux on the next opened edge:
     (var, then-value, else-value, condition) *)
  mutable pending_muxes : (string * value * value * value) list;
  mutable step_edges : Cfg.Edge_id.t list; (* reversed *)
  mutable fresh : int;
}

let value_width = function
  | Vop (_, w) -> w
  | Vconst v -> max 1 (int_of_float (ceil (log (float_of_int (abs v + 1)) /. log 2.0)) + 1)
  | Vprev (_, w) -> w

let fresh_name st base =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s_%d" base st.fresh

(* Create an op whose operands are [values]; constants are folded away from
   the dependency list (they do not affect timing), previous-iteration
   values are recorded for loop-carried fixup. *)
let sim_operand_of_value = function
  | Vop (id, _) -> Sop id
  | Vconst v -> Sconst v
  | Vprev (x, _) -> Sprev x

let make_op st ~edge ~kind ~width ?fixed ~name values =
  let id = Dfg.add_op st.dfg ~kind ~width ~birth:edge ?fixed ~name () in
  st.op_operands <- (id, List.map sim_operand_of_value values) :: st.op_operands;
  List.iter
    (fun v ->
      match v with
      | Vop (src, _) -> Dfg.add_dep st.dfg ~src ~dst:id ()
      | Vconst _ -> ()
      | Vprev (x, _) -> st.fixups <- (id, x) :: st.fixups)
    values;
  Vop (id, width)

let binop_kind : Ast.binop -> Dfg.op_kind = function
  | Ast.Badd -> Dfg.Add
  | Ast.Bsub -> Dfg.Sub
  | Ast.Bmul -> Dfg.Mul
  | Ast.Bdiv -> Dfg.Div
  | Ast.Bmod -> Dfg.Modulo
  | Ast.Bshl -> Dfg.Shl
  | Ast.Bshr -> Dfg.Shr
  | Ast.Band -> Dfg.Land
  | Ast.Bor -> Dfg.Lor
  | Ast.Bxor -> Dfg.Lxor
  | Ast.Blt -> Dfg.Cmp Dfg.Lt
  | Ast.Ble -> Dfg.Cmp Dfg.Le
  | Ast.Beq -> Dfg.Cmp Dfg.Eq
  | Ast.Bne -> Dfg.Cmp Dfg.Ne
  | Ast.Bge -> Dfg.Cmp Dfg.Ge
  | Ast.Bgt -> Dfg.Cmp Dfg.Gt

(* Constant folding must agree bit-for-bit with the runtime word semantics
   (Wordops), or folded expressions diverge from computed ones; division by
   a constant zero is still a compile-time error (better diagnostics than
   the runtime's total division). *)
let fold_binop op a b =
  match (op : Ast.binop) with
  | Ast.Bdiv when b = 0 -> err "constant division by zero"
  | Ast.Bmod when b = 0 -> err "constant modulo by zero"
  | _ -> Some (Wordops.binop op ~width:62 a b)

let is_cmp = function
  | Ast.Blt | Ast.Ble | Ast.Beq | Ast.Bne | Ast.Bge | Ast.Bgt -> true
  | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Bmod | Ast.Bshl | Ast.Bshr | Ast.Band
  | Ast.Bor | Ast.Bxor -> false

let rec eval st edge (expr : Ast.expr) : value =
  match expr with
  | Ast.Int v -> Vconst v
  | Ast.Var x -> (
    match Hashtbl.find_opt st.env x with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt st.widths x with
      | Some w -> Vprev (x, w)
      | None -> err "undeclared variable %s" x))
  | Ast.Read p -> (
    match Hashtbl.find_opt st.ports p with
    | Some d when d.Ast.is_input ->
      make_op st ~edge ~kind:(Dfg.Read p) ~width:d.Ast.width
        ~name:(fresh_name st ("rd_" ^ p))
        []
    | Some _ -> err "read from output port %s" p
    | None -> err "undeclared port %s" p)
  | Ast.Binop (op, ea, eb) -> (
    let va = eval st edge ea and vb = eval st edge eb in
    match (va, vb) with
    | Vconst a, Vconst b -> (
      match fold_binop op a b with Some v -> Vconst v | None -> assert false)
    | _ ->
      let width =
        if is_cmp op then 1 else max (value_width va) (value_width vb)
      in
      make_op st ~edge ~kind:(binop_kind op) ~width
        ~name:(fresh_name st (Dfg.op_kind_name (binop_kind op)))
        [ va; vb ])
  | Ast.Unop (Ast.Unot, ea) -> (
    let va = eval st edge ea in
    match va with
    | Vconst a -> Vconst (Wordops.unop Ast.Unot ~width:62 a)
    | _ ->
      make_op st ~edge ~kind:Dfg.Lnot ~width:(value_width va)
        ~name:(fresh_name st "not")
        [ va ])
  | Ast.Unop (Ast.Uneg, ea) -> (
    let va = eval st edge ea in
    match va with
    | Vconst a -> Vconst (Wordops.unop Ast.Uneg ~width:62 a)
    | _ ->
      make_op st ~edge ~kind:Dfg.Sub ~width:(value_width va)
        ~name:(fresh_name st "neg")
        [ Vconst 0; va ])

(* Opening an edge materializes any muxes pending since the last join. *)
let open_edge st src dst =
  let e = Cfg.add_edge st.cfg src dst in
  let muxes = List.rev st.pending_muxes in
  st.pending_muxes <- [];
  List.iter
    (fun (x, vt, vf, cond) ->
      let width = max (value_width vt) (value_width vf) in
      let v =
        make_op st ~edge:e ~kind:Dfg.Mux ~width ~fixed:true
          ~name:(fresh_name st ("mux_" ^ x))
          [ vt; vf; cond ]
      in
      Hashtbl.replace st.env x v)
    muxes;
  e

let value_equal a b =
  match (a, b) with
  | Vop (x, _), Vop (y, _) -> Dfg.Op_id.equal x y
  | Vconst x, Vconst y -> x = y
  | Vprev (x, _), Vprev (y, _) -> String.equal x y
  | (Vop _ | Vconst _ | Vprev _), _ -> false

(* Split a statement list into its leading simple segment (assignments and
   writes) and the remainder, which starts with a control statement. *)
let rec split_segment acc = function
  | ((Ast.Assign _ | Ast.Write _) as s) :: rest -> split_segment (s :: acc) rest
  | rest -> (List.rev acc, rest)

let process_simple st edge = function
  | Ast.Assign (x, e) ->
    if not (Hashtbl.mem st.widths x) then err "assignment to undeclared variable %s" x;
    Hashtbl.replace st.env x (eval st edge e)
  | Ast.Write (p, e) -> (
    match Hashtbl.find_opt st.ports p with
    | Some d when not d.Ast.is_input ->
      let v = eval st edge e in
      ignore
        (make_op st ~edge ~kind:(Dfg.Write p) ~width:d.Ast.width
           ~name:(fresh_name st ("wr_" ^ p))
           [ v ])
    | Some _ -> err "write to input port %s" p
    | None -> err "undeclared port %s" p)
  | Ast.Wait | Ast.If _ | Ast.For _ -> assert false

(* Elaborate a block from [from_node]; the trailing simple segment's edge
   targets [sink].  [main] marks the principal path whose step edges are
   recorded. *)
let rec elab_block st stmts ~from_node ~sink ~main =
  match split_segment [] stmts with
  | simple, [] ->
    let e = open_edge st from_node sink in
    if main then st.step_edges <- e :: st.step_edges;
    List.iter (process_simple st e) simple
  | simple, Ast.Wait :: rest ->
    let state = Cfg.add_node st.cfg Cfg.State in
    let e = open_edge st from_node state in
    if main then st.step_edges <- e :: st.step_edges;
    List.iter (process_simple st e) simple;
    elab_block st rest ~from_node:state ~sink ~main
  | simple, Ast.If (c, then_b, else_b) :: rest ->
    let fork = Cfg.add_node st.cfg Cfg.Fork in
    let e = open_edge st from_node fork in
    if main then st.step_edges <- e :: st.step_edges;
    List.iter (process_simple st e) simple;
    (* The branch condition must be resolved on the fork's incoming edge;
       pin it there when its top operation was created by this evaluation
       (a re-used earlier value is already anchored by its own placement). *)
    let ops_before = Dfg.op_count st.dfg in
    let cond = eval st e c in
    (match cond with
    | Vop (id, _) when Dfg.Op_id.to_int id >= ops_before -> Dfg.fix_op st.dfg id
    | Vop _ | Vconst _ | Vprev _ -> ());
    st.branch_conds <- (fork, sim_operand_of_value cond) :: st.branch_conds;
    let join = Cfg.add_node st.cfg Cfg.Join in
    let snapshot = Hashtbl.copy st.env in
    elab_block st then_b ~from_node:fork ~sink:join ~main:false;
    let env_then = Hashtbl.copy st.env in
    Hashtbl.reset st.env;
    Hashtbl.iter (Hashtbl.replace st.env) snapshot;
    elab_block st else_b ~from_node:fork ~sink:join ~main:false;
    let env_else = st.env in
    (* Merge: a variable whose two branch values differ gets a mux on the
       join's outgoing edge.  A variable untouched by a branch keeps that
       branch's incoming value — the previous iteration's if it had none. *)
    let names = Hashtbl.create 16 in
    Hashtbl.iter (fun x _ -> Hashtbl.replace names x ()) env_then;
    Hashtbl.iter (fun x _ -> Hashtbl.replace names x ()) env_else;
    let side env x =
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt st.widths x with
        | Some w -> Vprev (x, w)
        | None -> err "undeclared variable %s at join" x)
    in
    Hashtbl.iter
      (fun x () ->
        let vt = side env_then x and vf = side env_else x in
        if value_equal vt vf then Hashtbl.replace st.env x vt
        else st.pending_muxes <- (x, vt, vf, cond) :: st.pending_muxes)
      names;
    elab_block st rest ~from_node:join ~sink ~main
  | _, Ast.For _ :: _ -> err "for loops must be unrolled before elaboration"
  | _, (Ast.Assign _ | Ast.Write _) :: _ ->
    assert false (* split_segment consumed every leading simple statement *)

let c_elaborations = Obs.counter "frontend.elaborations"
let c_ast_nodes = Obs.counter "frontend.ast_nodes"
let c_dfg_ops = Obs.counter "frontend.dfg_ops"

let rec expr_nodes = function
  | Ast.Int _ | Ast.Var _ | Ast.Read _ -> 1
  | Ast.Binop (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Ast.Unop (_, e) -> 1 + expr_nodes e

let rec stmt_nodes = function
  | Ast.Assign (_, e) | Ast.Write (_, e) -> 1 + expr_nodes e
  | Ast.Wait -> 1
  | Ast.If (c, t, f) -> 1 + expr_nodes c + block_nodes t + block_nodes f
  | Ast.For { body; _ } -> 1 + block_nodes body

and block_nodes stmts = List.fold_left (fun acc s -> acc + stmt_nodes s) 0 stmts

let elaborate (p : Ast.process) =
  Obs.span "frontend.elaborate" @@ fun () ->
  let p = Transform.unroll_process p in
  Obs.incr c_elaborations;
  Obs.add c_ast_nodes (block_nodes p.Ast.body);
  let cfg = Cfg.create () in
  let dfg = Dfg.create cfg in
  let st =
    {
      cfg;
      dfg;
      env = Hashtbl.create 16;
      widths = Hashtbl.create 16;
      ports = Hashtbl.create 8;
      fixups = [];
      op_operands = [];
      branch_conds = [];
      pending_muxes = [];
      step_edges = [];
      fresh = 0;
    }
  in
  List.iter
    (fun (d : Ast.var_decl) ->
      if d.Ast.vwidth <= 0 then err "variable %s has non-positive width" d.Ast.var;
      if Hashtbl.mem st.widths d.Ast.var then err "duplicate variable %s" d.Ast.var;
      Hashtbl.replace st.widths d.Ast.var d.Ast.vwidth)
    p.Ast.vars;
  List.iter
    (fun (d : Ast.port_decl) ->
      if d.Ast.width <= 0 then err "port %s has non-positive width" d.Ast.port;
      if Hashtbl.mem st.ports d.Ast.port then err "duplicate port %s" d.Ast.port;
      Hashtbl.replace st.ports d.Ast.port d)
    p.Ast.ports;
  let loop_top = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg (Cfg.start cfg) loop_top);
  let loop_bottom = Cfg.add_node cfg Cfg.Plain in
  elab_block st p.Ast.body ~from_node:loop_top ~sink:loop_bottom ~main:true;
  ignore (Cfg.add_edge cfg loop_bottom loop_top);
  (* Loop-carried fixups: connect previous-iteration consumers to this
     iteration's producers. *)
  List.iter
    (fun (op, x) ->
      match Hashtbl.find_opt st.env x with
      | Some (Vop (src, _)) -> Dfg.add_dep st.dfg ~src ~dst:op ~loop_carried:true ()
      | Some (Vconst _) | Some (Vprev _) | None -> ())
    st.fixups;
  (match Cfg.seal cfg with
  | () -> ()
  | exception Cfg.Malformed m -> err "malformed control flow: %s" m);
  (match Dfg.validate dfg with
  | () -> ()
  | exception Dfg.Malformed m -> err "malformed data flow: %s" m);
  let final_env =
    Hashtbl.fold (fun x v acc -> (x, sim_operand_of_value v) :: acc) st.env []
  in
  Obs.add c_dfg_ops (Dfg.op_count dfg);
  {
    cfg;
    dfg;
    process = p;
    step_edges = List.rev st.step_edges;
    operands = List.rev st.op_operands;
    branch_conds = st.branch_conds;
    final_env;
  }

let operands_of (t : t) id =
  match List.assoc_opt id t.operands with Some l -> l | None -> []

let branch_cond (t : t) node =
  List.find_map
    (fun (n, c) -> if Cfg.Node_id.equal n node then Some c else None)
    t.branch_conds
