(** Recursive-descent parser for the behavioral input language.

    {v
    process resizer {
      port in  a   : 16;
      port in  b   : 16;
      port out y   : 16;
      var x : 16;  var r : 16;
      loop {
        x = read(a) + 100;
        if (x > 50) { wait; r = x / 3 - 100; }
        else        { wait; r = x * read(b); }
        wait;
        write(y, r);
      }
    }
    v} *)

exception Error of { line : int; col : int; message : string }

val parse : string -> Ast.process
(** Raises {!Error} (or {!Lexer.Error}) on malformed input. *)

val parse_file : string -> Ast.process

(** {1 Located diagnostics}

    Exception-free variants for callers that must degrade gracefully (the
    CLI): lexer and parser errors come back as a located diagnostic
    instead of an exception. *)

type diagnostic = { dline : int; dcol : int; dmessage : string }

val diagnostic_message : diagnostic -> string
(** ["line L, column C: message"] (position omitted when unknown). *)

val parse_result : string -> (Ast.process, diagnostic) result

val parse_file_result : string -> (Ast.process, diagnostic) result
(** I/O failures ([Sys_error]) still raise; only syntax errors are
    captured. *)
