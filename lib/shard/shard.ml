let c_planned = Obs.counter "shard.planned"
let c_merged = Obs.counter "shard.merged"
let c_duplicates = Obs.counter "shard.duplicates"

let owner ~shards ~total i =
  if total = 0 then 0 else i * shards / total

let plan ~shards keys =
  if shards < 1 then invalid_arg "Shard.plan: shards < 1";
  let sorted = List.sort String.compare keys in
  let total = List.length sorted in
  let buckets = Array.make shards [] in
  List.iteri
    (fun i key ->
      Obs.incr c_planned;
      let s = owner ~shards ~total i in
      buckets.(s) <- key :: buckets.(s))
    sorted;
  Array.map List.rev buckets

type merge_stats = {
  journals : int;
  entries : int;
  duplicates : int;
  quarantined : int;
}

let fingerprint_of_key key =
  match String.split_on_char '|' key with
  | [ _digest; lib; config; _point ] -> Ok (lib ^ "|" ^ config)
  | _ -> Error (Printf.sprintf "malformed cache key %S" key)

(* Fold one journal's records last-write-wins by key, preserving first-
   appearance order so error messages are stable. *)
let fold_journal records =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let dups = ref 0 in
  List.iter
    (fun (key, summary) ->
      if Hashtbl.mem tbl key then incr dups else order := key :: !order;
      Hashtbl.replace tbl key summary)
    records;
  (List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order, !dups)

let merge_journals ~inputs ~output =
  match inputs with
  | [] -> Error "merge-journals: no input journals"
  | inputs -> (
    let exception Bad of string in
    try
      let merged = Hashtbl.create 256 in
      let fingerprint = ref None in
      let quarantined = ref 0 in
      let duplicates = ref 0 in
      List.iter
        (fun path ->
          match Journal.load ~path with
          | Error e -> raise (Bad e)
          | Ok (records, q) ->
            quarantined := !quarantined + q;
            let folded, dups = fold_journal records in
            duplicates := !duplicates + dups;
            List.iter
              (fun (key, summary) ->
                (match fingerprint_of_key key with
                | Error e -> raise (Bad (Printf.sprintf "%s: %s" path e))
                | Ok fp -> (
                  match !fingerprint with
                  | None -> fingerprint := Some fp
                  | Some fp0 when fp0 = fp -> ()
                  | Some fp0 ->
                    raise
                      (Bad
                         (Printf.sprintf
                            "%s: config fingerprint %S disagrees with %S — journals \
                             come from different sweep configurations"
                            path fp fp0))));
                match Hashtbl.find_opt merged key with
                | Some (prev_path, _) ->
                  raise
                    (Bad
                       (Printf.sprintf
                          "%s: key %S already recorded by %s — shard journals must be \
                           disjoint"
                          path key prev_path))
                | None -> Hashtbl.replace merged key (path, summary))
              folded)
        inputs;
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) merged [] in
      let keys = List.sort String.compare keys in
      let w = Journal.start ~path:output ~fresh:true in
      Fun.protect
        ~finally:(fun () -> Journal.close w)
        (fun () ->
          List.iter
            (fun key ->
              let _, summary = Hashtbl.find merged key in
              Journal.record w ~key summary;
              Obs.incr c_merged)
            keys);
      Obs.add c_duplicates !duplicates;
      Ok
        {
          journals = List.length inputs;
          entries = List.length keys;
          duplicates = !duplicates;
          quarantined = !quarantined;
        }
    with
    | Bad e -> Error e
    | Unix.Unix_error (err, fn, arg) ->
      Error (Printf.sprintf "%s: %s(%s): %s" output fn arg (Unix.error_message err)))
