(** Sharded exploration: partition a sweep by canonical key range and
    provably re-assemble the result.

    The explore subsystem is deterministic in its keys: every (design,
    config, grid point) evaluation has a canonical cache key, the frontier
    fold is key-sorted, and resume replays journals byte-identically.
    That contract makes distribution trivial — split the {e sorted} key
    list into [N] contiguous ranges, run each range as an independent
    [hlsc explore --shard i/N --journal shard-i.jnl] process (any mix of
    machines), then {!merge_journals}.  The merged journal folds to a
    frontier byte-identical to the single-process run; dune rules and CI
    [cmp] that end to end.

    Telemetry: [shard.planned] per planned key, [shard.merged] per record
    written by a merge, [shard.duplicates] per within-journal duplicate
    collapsed. *)

val owner : shards:int -> total:int -> int -> int
(** [owner ~shards ~total i] is the shard owning the [i]-th key (0-based)
    of a sorted list of [total] keys: contiguous balanced ranges,
    [i * shards / total] — every key owned by exactly one shard. *)

val plan : shards:int -> string list -> string list array
(** Sort the keys canonically (ascending [String.compare]) and split them
    into [shards] contiguous, disjoint, jointly-exhaustive ranges.  Range
    sizes differ by at most one.  Raises [Invalid_argument] when
    [shards < 1].  Bumps [shard.planned] once per key. *)

type merge_stats = {
  journals : int;  (** input journals read *)
  entries : int;  (** records written to the merged journal *)
  duplicates : int;  (** within-journal duplicates collapsed (resume artifacts) *)
  quarantined : int;  (** corrupt lines skipped across all inputs *)
}

val fingerprint_of_key : string -> (string, string) result
(** The [lib|config] components of a full cache key — the part every
    journal in one merge must agree on (design digests legitimately differ
    across a corpus; the flow configuration may not). *)

val merge_journals : inputs:string list -> output:string -> (merge_stats, string) result
(** Validate and merge shard journals into one.  Within a journal,
    duplicate keys collapse last-write-wins (the resume contract) and are
    counted; {e across} journals any key overlap is an error — shards are
    disjoint by construction, so overlap means the same shard ran twice or
    the plan was wrong.  All records across all journals must agree on the
    config fingerprint.  The output is written key-sorted through
    {!Journal}, so merging is associative, commutative and idempotent on
    journal bytes.  Errors name the offending journal/key; the CLI maps
    them to exit 2. *)
