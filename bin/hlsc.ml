(* hlsc — command-line front end for the slackhls library.

   Subcommands:
     run      parse a behavioral source (or pick a built-in design), run a
              flow, print the schedule, allocation and area breakdown
     compare  run conventional and slack-based flows side by side
     slack    print the pre-schedule sequential-slack report
     emit     run a flow and write the Verilog rendering
     diff-events  align two provenance event files (JSONL) by sequence and
              report the first diverging event with context and a
              per-field payload diff
     explore  parallel design-space exploration: sweep a configuration grid
              (clocks x flows x initiation intervals x recovery policy) on
              a domain pool, fold the results into an area/delay Pareto
              frontier, optionally memoized in an on-disk evaluation cache;
              --shard i/N evaluates one key-range shard for multi-process
              or multi-machine sweeps
     corpus   generate or verify the seeded ~100-design validation corpus
              manifest (corpus/manifest.tsv); --verify exits non-zero on
              any digest drift
     sweep    sharded exploration driver: spawn N shard processes over one
              design or a whole corpus, merge their journals and fold the
              frontier a single process would have produced
     merge-journals  validate disjoint shard journals (config-fingerprint
              agreement, no cross-journal key overlap), collapse resume
              duplicates, and write one key-sorted merged journal
     fuzz     seeded random designs through every flow under validation
     dot      dump Graphviz renderings
     serve    supervised synthesis daemon: concurrent run/explore requests
              over a Unix or loopback TCP socket, sharing one warm cache
              and one domain pool, with per-request deadlines, admission
              control (load shedding past a high-water mark), crash
              containment with retry/backoff, and graceful drain on
              SIGTERM/SIGINT (exit 5 + journal, resumable by explore
              --resume)
     request  client for serve: send one request, print the response,
              exit by its status

   Every subcommand accepts --stats (per-phase telemetry report on stderr),
   --trace FILE (Chrome trace-event JSON), --validate LEVEL (phase-boundary
   invariant checking: off, boundary, paranoid) and --max-recoveries N (the
   scheduling retry-ladder bound).

   Exit codes:
     0  success
     1  internal error (I/O, trace emission; for diff-events: the streams
        diverge)
     2  usage error (bad flags, malformed source, invalid configuration —
        including a bad explore grid spec or a corrupt evaluation cache)
     3  validation failure (a pipeline invariant was violated)
     4  unrecoverable flow failure (scheduling failed after the full
        recovery ladder; for explore: every grid point failed, so the
        sweep produced an empty frontier)
     5  interrupted sweep (SIGINT/SIGTERM or --deadline fired before every
        point completed; the journal and partial renderings were flushed —
        re-run with --resume to finish)

   An explore sweep in which only some points fail exits 0: infeasible,
   timed-out and crashed points are data — the infeasible region of the
   tradeoff space — and are reported in the CSV/JSON/text outputs. *)

open Cmdliner

(* Failure classes, in increasing exit-code order; each carries the message
   printed on stderr. *)
type cli_error =
  | Internal of string
  | Usage of string
  | Validation of string
  | Flow_failed of string
  | Interrupted of string

let exit_code_of = function
  | Internal _ -> 1
  | Usage _ -> 2
  | Validation _ -> 3
  | Flow_failed _ -> 4
  | Interrupted _ -> 5

let message_of = function
  | Internal m | Usage m | Validation m | Flow_failed m | Interrupted m -> m

let classify_flow_error e =
  match e with
  | Flows.Invalid _ -> Usage (Flows.error_message e)
  | Flows.Validation_failed _ -> Validation (Flows.error_message e)
  | Flows.Sched_failed _ | Flows.Timed_out _ -> Flow_failed (Flows.error_message e)

let lib_of = function
  | "default" | "virt90" -> Ok Library.default
  | "ideal" | "idealized" -> Ok Library.idealized
  | s -> Error (Usage (Printf.sprintf "unknown library %S (try: default, ideal)" s))

let builtin_designs =
  [
    ("interpolation", fun () ->
        let ip = Interpolation.unrolled () in
        (ip.Interpolation.dfg, Interpolation.clock));
    ("resizer", fun () ->
        let r = Resizer.full () in
        (r.Resizer.dfg, 4000.0));
    ("idct", fun () ->
        let d = Idct.build ~latency:12 ~passes:1 () in
        (d.Idct.dfg, 2500.0));
    ("fir8", fun () ->
        let f = Fir.build ~taps:8 ~latency:6 () in
        (f.Fir.dfg, 2500.0));
  ]

let load_design ~source ~builtin ~clock =
  match (source, builtin) with
  | Some path, None -> (
    match Parser.parse_file_result path with
    | Error d ->
      Error
        (Usage (Printf.sprintf "%s: syntax error: %s" path (Parser.diagnostic_message d)))
    | exception Sys_error m -> Error (Internal m)
    | Ok p -> (
      match Elaborate.elaborate p with
      | e ->
        let clock = Option.value ~default:2500.0 clock in
        Ok (Hls.design ~name:p.Ast.proc_name ~clock e.Elaborate.dfg)
      | exception Elaborate.Error m ->
        Error (Usage (Printf.sprintf "%s: elaboration error: %s" path m))))
  | None, Some name -> (
    match List.assoc_opt name builtin_designs with
    | Some mk ->
      let dfg, default_clock = mk () in
      Ok (Hls.design ~name ~clock:(Option.value ~default:default_clock clock) dfg)
    | None ->
      Error
        (Usage
           (Printf.sprintf "unknown builtin %S (try: %s)" name
              (String.concat ", " (List.map fst builtin_designs)))))
  | Some _, Some _ -> Error (Usage "pass either a source file or --design, not both")
  | None, None -> Error (Usage "pass a source file or --design NAME")

let flow_of = function
  | "conventional" | "conv" -> Ok Flows.Conventional
  | "slowest" | "slowest-first" -> Ok Flows.Slowest_first
  | "slack" | "slack-based" -> Ok Flows.Slack_based
  | s ->
    Error (Usage (Printf.sprintf "unknown flow %S (try: conventional, slowest, slack)" s))

let config_of validate max_recoveries =
  match Check.level_of_string validate with
  | None ->
    Error
      (Usage
         (Printf.sprintf "unknown validation level %S (try: off, boundary, paranoid)"
            validate))
  | Some level ->
    if max_recoveries < 0 then Error (Usage "--max-recoveries must be non-negative")
    else
      Ok { Flows.default_config with Flows.validate = level; max_recoveries }

(* Common options *)

let source_arg =
  Arg.(value & pos ~rev:false 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"Behavioral source file.")

let design_arg =
  Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Built-in design: interpolation, resizer, idct, fir8.")

let clock_arg =
  Arg.(value & opt (some float) None & info [ "clock"; "c" ] ~docv:"PS"
         ~doc:"Clock period in picoseconds.")

let lib_arg =
  Arg.(value & opt string "default" & info [ "library"; "l" ] ~docv:"LIB"
         ~doc:"Technology library: default (with interconnect overheads) or ideal.")

let flow_arg =
  Arg.(value & opt string "slack" & info [ "flow"; "f" ] ~docv:"FLOW"
         ~doc:"Scheduling flow: conventional, slowest or slack (default).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print a per-phase telemetry report (timings, counters, distributions) to stderr on exit.")

let events_arg =
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
         ~doc:"Write decision-provenance events (JSONL, one typed event per line: \
               slack recomputations, delay updates, per-edge scheduling, recovery \
               steps) on exit.  Replay with $(b,hlsc explain), compare runs with \
               $(b,hlsc diff-events).  Two identical runs write byte-identical \
               files.  Refuses to overwrite an existing file unless $(b,--force) \
               is given.")

let force_arg =
  Arg.(value & flag & info [ "force" ]
         ~doc:"Allow --events to overwrite an existing file.")

let crash_arg =
  Arg.(value & flag & info [ "no-crash-dump" ]
         ~doc:"Disable the crash flight recorder.  On internal-error and \
               flow-failure exits (codes 1 and 4) hlsc normally dumps its \
               last decision events, open span stack and counter snapshot \
               to hlsc-crash-<pid>.json in the working directory, so a \
               postmortem can name the phase the process died in.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON file on exit (open in Perfetto or chrome://tracing).")

let validate_arg =
  Arg.(value & opt string "boundary" & info [ "validate" ] ~docv:"LEVEL"
         ~doc:"Phase-boundary invariant checking: off, boundary (default) or paranoid.")

let max_recoveries_arg =
  Arg.(value & opt int 3 & info [ "max-recoveries" ] ~docv:"N"
         ~doc:"Bound on the scheduling recovery ladder (0 disables recovery).")

(* The crash flight recorder: on the two "something went wrong" exit
   paths (1 internal error, 4 unrecoverable flow failure) dump whatever
   the telemetry singleton holds — the event-ring tail, the open span
   stack (which names the phase that died), counters and distributions —
   to hlsc-crash-<pid>.json.  Best-effort by design: the dump must never
   turn a diagnosable failure into a worse one. *)
let write_crash_dump code =
  let path = Printf.sprintf "hlsc-crash-%d.json" (Unix.getpid ()) in
  try
    let snap = Obs.Telemetry.capture ~events_limit:256 () in
    let j =
      Obs.Json.Obj
        [
          ( "argv",
            Obs.Json.List
              (List.map (fun a -> Obs.Json.String a) (Array.to_list Sys.argv)) );
          ("exit_code", Obs.Json.Int code);
          ( "open_spans",
            Obs.Json.List
              (List.map (fun s -> Obs.Json.String s) (Obs.open_spans ())) );
          ("telemetry", Obs.Telemetry.to_json snap);
        ]
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Obs.Json.to_string j);
        output_char oc '\n');
    Printf.eprintf "hlsc: crash flight record: %s\n" path
  with Sys_error _ | Unix.Unix_error _ -> ()

(* Enable the requested telemetry sinks, run [k], then emit the report
   and/or trace file.  Emission happens even when [k] fails, so a failing
   flow still leaves its telemetry behind for diagnosis. *)
let with_obs ~stats ~trace ~events ?(force = false) ?(no_crash = false) k =
  match events with
  | Some path when Sys.file_exists path && not force ->
    Printf.eprintf
      "hlsc: refusing to overwrite %s (an existing event file may be someone's \
       baseline); pass --force to replace it\n"
      path;
    2
  | _ ->
  if stats then Obs.enable_stats ();
  (match trace with Some _ -> Obs.enable_trace () | None -> ());
  (match events with Some _ -> Obs.Events.enable () | None -> ());
  (* GC deltas ride on the span sinks: profile whenever spans are timed. *)
  if stats || trace <> None then Obs.Prof.enable ();
  let code = k () in
  if stats then begin
    prerr_string (Obs.report ());
    let tt = Attrib.totals () in
    if tt.Attrib.touched > 0 then
      Printf.eprintf
        "attribution: %d analyses, %d edge relaxations, cone %d, bin changes %d \
         -> wasted-work ratio %.1f%%\n"
        tt.Attrib.analyses tt.Attrib.touched tt.Attrib.cone tt.Attrib.changed_bin
        (100.0 *. Attrib.wasted_ratio tt)
  end;
  let code =
    match events with
    | None -> code
    | Some path -> (
      try
        Obs.Events.write_jsonl ~path;
        Printf.eprintf "hlsc: wrote %d events to %s\n"
          (List.length (Obs.Events.events ())) path;
        code
      with Sys_error m ->
        Printf.eprintf "hlsc: cannot write events: %s\n" m;
        if code = 0 then 1 else code)
  in
  let code =
    match trace with
    | None -> code
    | Some path -> (
      try
        Obs.write_trace ~path;
        Printf.eprintf "hlsc: wrote trace to %s\n" path;
        code
      with Sys_error m ->
        Printf.eprintf "hlsc: cannot write trace: %s\n" m;
        if code = 0 then 1 else code)
  in
  if (code = 1 || code = 4) && not no_crash then write_crash_dump code;
  code

let ( let* ) = Result.bind

let finish = function
  | Ok () -> 0
  | Error err ->
    Printf.eprintf "hlsc: %s\n" (message_of err);
    exit_code_of err

let report_result r =
  let sched = r.Hls.report.Flows.schedule in
  Format.printf "design %s: flow %s, clock %.0f ps@." r.Hls.design.Hls.design_name
    (Flows.flow_name r.Hls.report.Flows.flow)
    r.Hls.design.Hls.clock;
  Format.printf "%a@." Schedule.pp sched;
  Format.printf "%a@." Alloc.pp sched.Schedule.alloc;
  Format.printf "area: %a@." Area_model.pp_breakdown r.Hls.area;
  Format.printf "netlist: %a@." Netlist.pp_stats (Netlist.stats r.Hls.netlist);
  Format.printf "relaxations: %d, recovery re-grades: %d@." r.Hls.report.Flows.relaxations
    r.Hls.report.Flows.regrades;
  List.iter
    (fun a -> Format.printf "recovery: %a@." Flows.pp_recovery_attempt a)
    r.Hls.report.Flows.recovery_log;
  List.iter
    (fun v -> Format.printf "warning: %a@." Check.pp_violation v)
    r.Hls.report.Flows.violations

let run_cmd source builtin clock lib flow validate max_recoveries stats trace events
    force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib in
     let* flow = flow_of flow in
     let* config = config_of validate max_recoveries in
     let* d = load_design ~source ~builtin ~clock in
     let* r = Result.map_error classify_flow_error (Hls.run ~lib ~config flow d) in
     Ok (report_result r))

let compare_cmd source builtin clock lib validate max_recoveries stats trace events
    force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib in
     let* config = config_of validate max_recoveries in
     let* d = load_design ~source ~builtin ~clock in
     let c = Hls.compare_flows ~lib ~config d in
     let show label = function
       | Ok r ->
         Printf.printf "%s total area %.0f\n" label (Hls.total_area r);
         None
       | Error e ->
         Printf.printf "%s FAILED\n" label;
         Format.eprintf "hlsc: %s@." (Flows.error_message e);
         Some (classify_flow_error e)
     in
     let err_c = show "conventional:" c.Hls.conventional in
     let err_s = show "slack-based: " c.Hls.slack_based in
     (match c.Hls.saving_pct with
     | Some s -> Printf.printf "saving: %.1f%%\n" s
     | None -> ());
     match (err_c, err_s) with
     | None, None -> Ok ()
     | Some (Validation _ as e), _ | _, Some (Validation _ as e) -> Error e
     | Some e, _ | _, Some e -> Error e)

let slack_cmd source builtin clock lib validate max_recoveries stats trace events
    force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib in
     let* config = config_of validate max_recoveries in
     let* d = load_design ~source ~builtin ~clock in
     let* () =
       (* The pre-schedule boundary: audit the DFG before analysing it. *)
       if Check.ge config.Flows.validate Check.Boundary then begin
         match Check.errors (Check.record (Check.dfg d.Hls.dfg)) with
         | [] -> Ok ()
         | errs -> Error (Validation (Check.summary errs))
       end
       else Ok ()
     in
     let del o =
       let op = Dfg.op d.Hls.dfg o in
       match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
       | Some c -> Curve.min_delay c
       | None -> 0.0
     in
     let res = Hls.analyze_slack ~aligned:true d ~del in
     Printf.printf "aligned sequential slack at fastest grades (clock %.0f ps):\n"
       d.Hls.clock;
     Dfg.iter_ops d.Hls.dfg (fun op ->
         match op.Dfg.kind with
         | Dfg.Const _ -> ()
         | _ ->
           let i = Dfg.Op_id.to_int op.Dfg.id in
           Printf.printf "  %-16s arr %8.1f  req %8.1f  slack %8.1f\n" op.Dfg.name
             res.Slack.arr.(i) res.Slack.req.(i) res.Slack.slack.(i));
     Printf.printf "min slack: %.1f ps -> %s\n" res.Slack.min_slack
       (if Slack.feasible res then "feasible (Prop. 1)" else "INFEASIBLE: relax latency or clock");
     Ok ())

let emit_cmd source builtin clock lib flow validate max_recoveries output stats trace
    events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib in
     let* flow = flow_of flow in
     let* config = config_of validate max_recoveries in
     let* d = load_design ~source ~builtin ~clock in
     let* r = Result.map_error classify_flow_error (Hls.run ~lib ~config flow d) in
     let path = Option.value ~default:(d.Hls.design_name ^ ".v") output in
     match Verilog.write_file ~module_name:d.Hls.design_name r.Hls.netlist ~path with
     | () ->
       Printf.printf "wrote %s\n" path;
       Ok ()
     | exception Sys_error m -> Error (Internal m))

let dot_cmd source builtin clock lib flow validate max_recoveries output stats trace
    events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib in
     let* flow = flow_of flow in
     let* config = config_of validate max_recoveries in
     let* d = load_design ~source ~builtin ~clock in
     let* r = Result.map_error classify_flow_error (Hls.run ~lib ~config flow d) in
     let sched = r.Hls.report.Flows.schedule in
     let spans = Dfg.compute_spans d.Hls.dfg in
     let base = Option.value ~default:d.Hls.design_name output in
     let dump suffix contents =
       let path = base ^ suffix in
       Dot.write_file contents ~path;
       Printf.printf "wrote %s\n" path
     in
     match
       dump ".cfg.dot" (Dot.cfg (Dfg.cfg d.Hls.dfg));
       dump ".dfg.dot" (Dot.dfg ~spans d.Hls.dfg);
       dump ".timed.dot" (Dot.timed_dfg (Timed_dfg.build d.Hls.dfg ~spans));
       dump ".sched.dot" (Dot.schedule sched)
     with
     | () -> Ok ()
     | exception Sys_error m -> Error (Internal m))

(* explore: resolve the design to a pure builder thunk — each pool worker
   rebuilds its own graph, so no DFG is shared across domains.  The first
   build happens here so configuration problems surface as usage errors
   before any domain is spawned. *)
let load_builder ~source ~builtin ~clock =
  match (source, builtin) with
  | Some path, None -> (
    match Parser.parse_file_result path with
    | Error d ->
      Error
        (Usage (Printf.sprintf "%s: syntax error: %s" path (Parser.diagnostic_message d)))
    | exception Sys_error m -> Error (Internal m)
    | Ok p -> (
      match Elaborate.elaborate p with
      | _ ->
        let build () =
          match Parser.parse_file_result path with
          | Ok p -> (Elaborate.elaborate p).Elaborate.dfg
          | Error d -> failwith (Parser.diagnostic_message d)
        in
        Ok (p.Ast.proc_name, Option.value ~default:2500.0 clock, build)
      | exception Elaborate.Error m ->
        Error (Usage (Printf.sprintf "%s: elaboration error: %s" path m))))
  | None, Some name -> (
    match List.assoc_opt name builtin_designs with
    | Some mk ->
      let _, default_clock = mk () in
      Ok (name, Option.value ~default:default_clock clock, fun () -> fst (mk ()))
    | None ->
      Error
        (Usage
           (Printf.sprintf "unknown builtin %S (try: %s)" name
              (String.concat ", " (List.map fst builtin_designs)))))
  | Some _, Some _ -> Error (Usage "pass either a source file or --design, not both")
  | None, None -> Error (Usage "pass a source file or --design NAME")

let grid_axis label parse spec = Result.map_error (fun m -> Usage (label ^ ": " ^ m)) (parse spec)

(* --shard i/N: 1-based rank over N disjoint key-range shards. *)
let parse_shard = function
  | None -> Ok None
  | Some spec -> (
    match String.split_on_char '/' spec with
    | [ i; n ] -> (
      match (int_of_string_opt i, int_of_string_opt n) with
      | Some i, Some n when n >= 1 && i >= 1 && i <= n -> Ok (Some (i, n))
      | _ ->
        Error
          (Usage
             (Printf.sprintf "--shard: %S is not i/N with 1 <= i <= N" spec)))
    | _ -> Error (Usage (Printf.sprintf "--shard: %S is not of the form i/N" spec)))

(* The membership predicate of shard [rank] (1-based) of the grid's
   canonically-sorted key ranges — every process computes the same plan
   from the same grid, so the N predicates partition it exactly. *)
let shard_select ~rank ~shards grid =
  let keys = List.map Explore_grid.point_key (Explore_grid.points grid) in
  let mine = (Shard.plan ~shards keys).(rank - 1) in
  let tbl = Hashtbl.create (List.length mine) in
  List.iter (fun k -> Hashtbl.replace tbl k ()) mine;
  (List.length mine, fun k -> Hashtbl.mem tbl k)

let write_rendering ~what path content =
  match path with
  | "-" ->
    print_string content;
    Ok ()
  | p -> (
    match
      let oc = open_out p in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)
    with
    | () ->
      Printf.printf "wrote %s %s\n" what p;
      Ok ()
    | exception Sys_error m -> Error (Internal m))

let explore_cmd source builtin clock lib validate max_recoveries clocks flows iis
    recover jobs cache_file point_deadline deadline retries strict journal_file
    resume_file shard csv json stats trace events force no_crash progress =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib in
     let* config = config_of validate max_recoveries in
     let* name, base_clock, build = load_builder ~source ~builtin ~clock in
     let* clocks =
       if clocks = "auto" then
         (* 0.8x .. 1.5x the design's base clock, 8 points. *)
         Ok (List.init 8 (fun k -> base_clock *. (0.8 +. (0.1 *. float_of_int k))))
       else grid_axis "--clocks" Explore_grid.parse_clocks clocks
     in
     let* flows = grid_axis "--flows" Explore_grid.parse_flows flows in
     let* iis = grid_axis "--ii" Explore_grid.parse_iis iis in
     let* recover = grid_axis "--recover" Explore_grid.parse_recover recover in
     let* grid =
       Result.map_error (fun m -> Usage m)
         (Explore_grid.make ~clocks ~flows ~iis ~recover ())
     in
     let* jobs =
       if jobs < 0 then Error (Usage "--jobs must be non-negative")
       else Ok (if jobs = 0 then None else Some jobs)
     in
     let* shard = parse_shard shard in
     let shard_total, select =
       match shard with
       | None -> (Explore_grid.size grid, None)
       | Some (rank, shards) ->
         let count, pred = shard_select ~rank ~shards grid in
         (count, Some pred)
     in
     let* () =
       if retries < 0 then Error (Usage "--retries must be non-negative") else Ok ()
     in
     let* () =
       match point_deadline with
       | Some s when s < 0.0 -> Error (Usage "--point-deadline must be non-negative")
       | _ -> Ok ()
     in
     let* () =
       match deadline with
       | Some s when s < 0.0 -> Error (Usage "--deadline must be non-negative")
       | _ -> Ok ()
     in
     let* cache =
       match cache_file with
       | None -> Ok None
       | Some path ->
         Result.fold
           ~ok:(fun c -> Ok (Some c))
           ~error:(fun m -> Error (Usage m))
           (Eval_cache.load ~path)
     in
     (* --journal starts a fresh checkpoint file; --resume loads an
        interrupted sweep's journal, skips its completed points and keeps
        appending to the same file. *)
     let* journal_path, fresh, resume =
       match (journal_file, resume_file) with
       | Some _, Some _ -> Error (Usage "pass --journal or --resume, not both")
       | Some path, None -> Ok (Some path, true, [])
       | None, Some path ->
         Result.fold
           ~ok:(fun (entries, quarantined) ->
             if quarantined > 0 then
               Printf.eprintf "hlsc: %s: quarantined %d corrupt journal record%s\n"
                 path quarantined (if quarantined = 1 then "" else "s");
             Ok (Some path, false, entries))
           ~error:(fun m -> Error (Usage m))
           (Journal.load ~path)
       | None, None -> Ok (None, true, [])
     in
     let* journal =
       match journal_path with
       | None -> Ok None
       | Some path -> (
         match Journal.start ~path ~fresh with
         | w -> Ok (Some w)
         | exception Unix.Unix_error (e, _, _) ->
           Error (Internal (path ^ ": " ^ Unix.error_message e)))
     in
     (* The sweep-level token: fed by --deadline and by SIGINT/SIGTERM.
        Workers poll it before claiming points, so a fired token drains
        in-flight evaluations, journals them, and leaves the rest pending. *)
     let cancel =
       match deadline with
       | Some seconds -> Cancel.after ~seconds
       | None -> Cancel.manual ()
     in
     let on_signal name =
       Sys.Signal_handle (fun _ -> Cancel.trigger ~reason:name cancel)
     in
     let prev_int = Sys.signal Sys.sigint (on_signal "SIGINT") in
     let prev_term = Sys.signal Sys.sigterm (on_signal "SIGTERM") in
     (* --progress: live lines from Worker_sample events.  The hook runs
        under the obs mutex inside worker domains, so it only formats to
        stderr — no Obs calls.  Throttled to one line per second. *)
     (if progress then begin
        let total = shard_total in
        let grid_total = Explore_grid.size grid in
        let t_start = Obs.now_ns () in
        let last_line = ref Int64.min_int in
        let points_done = ref 0 in
        Obs.Events.enable ();
        Obs.Events.set_hook
          (Some
             (fun ev ->
               match ev.Obs.Events.payload with
               | Obs.Events.Worker_sample { domain; tasks_done; utilization; _ } ->
                 (* One sample per completed task: the sample count is the
                    sweep-wide completion count. *)
                 incr points_done;
                 let now = Obs.now_ns () in
                 if
                   Int64.sub now !last_line >= 1_000_000_000L
                   || !points_done >= total
                 then begin
                   last_line := now;
                   let elapsed = Int64.to_float (Int64.sub now t_start) /. 1e9 in
                   let rate = float_of_int !points_done /. Float.max 1e-9 elapsed in
                   let eta =
                     float_of_int (max 0 (total - !points_done)) /. Float.max 1e-9 rate
                   in
                   match shard with
                   | None ->
                     Printf.eprintf
                       "hlsc: explore: %d/%d points done (worker %d: %d done, %.0f%% \
                        busy), ETA %.1fs\n%!"
                       !points_done total domain tasks_done (100.0 *. utilization) eta
                   | Some (rank, shards) ->
                     (* Merged ETA: extrapolate the whole grid finishing at
                        [shards] processes running at this shard's rate —
                        the multi-process sweep's best local estimate. *)
                     let merged_done = !points_done * shards in
                     let merged_eta =
                       float_of_int (max 0 (grid_total - merged_done))
                       /. Float.max 1e-9 (rate *. float_of_int shards)
                     in
                     Printf.eprintf
                       "hlsc: explore shard %d/%d: %d/%d points done (worker %d: \
                        %d done, %.0f%% busy), ETA %.1fs; merged %d points ETA \
                        ~%.1fs\n%!"
                       rank shards !points_done total domain tasks_done
                       (100.0 *. utilization) eta grid_total merged_eta
                 end
               | _ -> ()))
      end);
     let* outcome =
       match
         Fun.protect
           ~finally:(fun () ->
             Obs.Events.set_hook None;
             Sys.set_signal Sys.sigint prev_int;
             Sys.set_signal Sys.sigterm prev_term;
             Option.iter Journal.close journal)
           (fun () ->
             Explore.run ?jobs ~retries ~strict ?point_deadline ~cancel ?cache
               ?journal ~resume ?select ~lib ~config ~name ~build grid)
       with
       | outcome -> Ok outcome
       | exception e ->
         (* --strict re-raises the first crash after the journal has every
            completed point; surface it as an internal error. *)
         Error (Internal (Printf.sprintf "sweep crashed: %s" (Printexc.to_string e)))
     in
     let* () =
       match (cache, cache_file) with
       | Some c, Some path -> (
         match Eval_cache.save c ~path with
         | () -> Ok ()
         | exception Sys_error m -> Error (Internal m))
       | _ -> Ok ()
     in
     let* () =
       match csv with
       | Some path -> write_rendering ~what:"CSV" path (Explore.to_csv outcome)
       | None -> Ok ()
     in
     let* () =
       match json with
       | Some path -> write_rendering ~what:"JSON" path (Explore.to_json outcome)
       | None -> Ok ()
     in
     print_string (Explore.render_summary outcome);
     if Explore.partial outcome then
       Error
         (Interrupted
            (Printf.sprintf
               "sweep interrupted (%s): %d of %d points pending%s"
               (Option.value ~default:"cancelled" (Cancel.reason cancel))
               outcome.Explore.pending outcome.Explore.total
               (match journal_path with
               | Some p -> Printf.sprintf "; resume with --resume %s" p
               | None -> "")))
     else if outcome.Explore.total > 0 && outcome.Explore.frontier = [] then
       Error
         (Flow_failed
            (Printf.sprintf "all %d grid points failed; frontier is empty"
               outcome.Explore.total))
     else Ok ())

(* Grid fuzzing: random spec strings (valid, degenerate and garbage
   fragments) through the Explore_grid parsers — which must reject bad
   input with [Error], never raise — and a few of the accepted small grids
   through real sweeps under paranoid validation. *)
(* Per-axis fragment pools, weighted toward valid items (repeated entries)
   so a useful fraction of the generated grids is accepted and can be swept
   — while still covering degenerate ranges, garbage tokens and whitespace. *)
let clock_pieces =
  [|
    "2500"; "2500"; "2400:2800:200"; "2400:2800:200"; "2500:2500:1"; " 2600 ";
    "3000:2000:100"; "1:2:0"; "0"; "-1"; "1:1000000000:1"; "nan"; "inf";
    "bogus"; "";
  |]

let flow_pieces =
  [| "conv"; "slack"; "slowest"; "all"; "conv"; "slack"; "conventional"; "bogus"; "" |]

let ii_pieces =
  [| "none"; "none"; "4"; "2:8:2"; "none"; "8:2"; "0:4"; "0"; "-3"; "bogus"; "" |]

let recover_pieces = [| "on"; "off"; "both"; "on"; "off"; "bogus"; ""; "on,off" |]

let fuzz_grids ~lib ~config ~grids ~seed =
  let rng = Splitmix.create ((seed * 7919) + 17) in
  let spec pieces =
    let n = 1 + Splitmix.int rng 2 in
    String.concat "," (List.init n (fun _ -> Splitmix.choose rng pieces))
  in
  let accepted = ref 0 and rejected = ref 0 and swept = ref 0 in
  let violations = ref [] in
  for _trial = 1 to grids do
    let clocks = spec clock_pieces and flows = spec flow_pieces in
    let iis = spec ii_pieces in
    let recover = Splitmix.choose rng recover_pieces in
    match Explore_grid.of_specs ~clocks ~flows ~iis ~recover () with
    | Error _ -> incr rejected
    | Ok grid ->
      incr accepted;
      (* Sweep a handful of the small accepted grids end to end: statuses
         are data, so the only failure mode that counts is a raise. *)
      if !swept < 3 && Explore_grid.size grid <= 8 then begin
        incr swept;
        let build () =
          let f = Fir.build ~taps:4 ~latency:4 () in
          f.Fir.dfg
        in
        match
          Explore.run ~jobs:2 ~lib ~config ~name:"fuzz-grid" ~build grid
        with
        | (_ : Explore.outcome) -> ()
        | exception e ->
          violations :=
            Printf.sprintf
              "grid sweep (clocks=%S flows=%S ii=%S recover=%S) raised: %s"
              clocks flows iis recover (Printexc.to_string e)
            :: !violations
      end
    | exception e ->
      violations :=
        Printf.sprintf
          "grid parse (clocks=%S flows=%S ii=%S recover=%S) raised: %s" clocks
          flows iis recover (Printexc.to_string e)
        :: !violations
  done;
  Printf.printf
    "fuzz grids: %d specs: %d accepted, %d rejected, %d swept, %d violations\n"
    grids !accepted !rejected !swept
    (List.length !violations);
  List.rev !violations

(* Fuzz: seeded random designs through every flow.  Scheduling failures are
   tolerated (tight random designs may be legitimately infeasible — the
   ladder transcript says the system degraded gracefully); invariant
   violations and crashes are not. *)
let fuzz_cmd count seed lib validate max_recoveries grids stats trace events force
    no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib in
     let* config = config_of validate max_recoveries in
     if count <= 0 then Error (Usage "--count must be positive")
     else if grids < 0 then Error (Usage "--grids must be non-negative")
     else begin
       let designs = Random_design.suite ~count ~seed () in
       let ok = ref 0 and sched_fails = ref 0 and recovered = ref 0 in
       let violations = ref [] in
       List.iter
         (fun (d : Random_design.t) ->
           List.iter
             (fun flow ->
               let design =
                 Hls.design ~name:d.Random_design.name
                   ~clock:d.Random_design.suggested_clock d.Random_design.dfg
               in
               match Hls.run ~lib ~config flow design with
               | Ok r ->
                 incr ok;
                 if r.Hls.report.Flows.recovery_log <> [] then incr recovered
               | Error (Flows.Sched_failed _) | Error (Flows.Timed_out _) ->
                 incr sched_fails
               | Error (Flows.Invalid _ as e) | Error (Flows.Validation_failed _ as e)
                 ->
                 violations :=
                   Printf.sprintf "%s/%s: %s" d.Random_design.name
                     (Flows.flow_name flow) (Flows.error_message e)
                   :: !violations)
             [ Flows.Conventional; Flows.Slowest_first; Flows.Slack_based ])
         designs;
       Printf.printf
         "fuzz: %d designs x 3 flows: %d ok (%d via recovery), %d infeasible, %d violations\n"
         count !ok !recovered !sched_fails
         (List.length !violations);
       let grid_violations =
         if grids > 0 then fuzz_grids ~lib ~config ~grids ~seed else []
       in
       match List.rev !violations @ grid_violations with
       | [] -> Ok ()
       | vs -> Error (Validation (String.concat "\n" vs))
     end)

(* explain: replay a provenance event file into one operation's decision
   timeline — its slack history across budgeting rounds, every delay-grade
   update (with the phase that made it), and its final schedule state. *)
let explain_cmd file op_name stats trace events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let module E = Obs.Events in
     let* path =
       match file with
       | Some p -> Ok p
       | None -> Error (Usage "pass an event file (written with --events FILE)")
     in
     let* op =
       match op_name with
       | Some o -> Ok o
       | None -> Error (Usage "pass --op NAME (an operation name from the design)")
     in
     (* The tagged loader accepts plain single-process files and merged
        fleet files alike (per-stream seq monotonicity checked); explain
        then replays the flattened timeline. *)
     let* tagged =
       match E.load_tagged ~path with
       | Ok tevs -> Ok tevs
       | Error m -> Error (Usage (Printf.sprintf "%s: %s" path m))
       | exception Sys_error m -> Error (Internal m)
     in
     let streams =
       List.sort_uniq compare
         (List.filter_map (fun (te : E.tagged) -> te.E.stream) tagged)
     in
     let evs = List.map (fun (te : E.tagged) -> te.E.event) tagged in
     let seen = Hashtbl.create 64 in
     let note o = if not (Hashtbl.mem seen o) then Hashtbl.replace seen o () in
     List.iter
       (fun (e : E.t) ->
         match e.E.payload with
         | E.Slack_computed { op; _ } | E.Delay_update { op; _ } | E.Op_picked { op; _ }
           ->
           note op
         | E.Budget_round _ | E.Edge_scheduled _ | E.Recovery_step _
         | E.Worker_sample _ | E.Serve_sample _ | E.Dispatch_sample _ ->
           ())
       evs;
     if not (Hashtbl.mem seen op) then begin
       let names =
         Hashtbl.fold (fun k () acc -> k :: acc) seen []
         |> List.sort_uniq String.compare
       in
       let preview =
         match names with
         | [] -> "no op-level events in the file"
         | _ ->
           let shown = List.filteri (fun i _ -> i < 24) names in
           Printf.sprintf "%d ops seen: %s%s" (List.length names)
             (String.concat ", " shown)
             (if List.length names > 24 then ", ..." else "")
       in
       Error (Usage (Printf.sprintf "op %S not found in %s (%s)" op path preview))
     end
     else begin
       Printf.printf "timeline for op %s (from %s, %d events%s)\n" op path
         (List.length evs)
         (if streams = [] then ""
          else Printf.sprintf ", %d worker stream%s" (List.length streams)
                 (if List.length streams = 1 then "" else "s"));
       let final_delay = ref None in
       let placement = ref None in
       List.iter
         (fun (e : E.t) ->
           match e.E.payload with
           | E.Slack_computed { op = o; phase; round; slack_ps } when String.equal o op
             ->
             Printf.printf "  [%6d] %-8s round %2d: slack %8.1f ps\n" e.E.seq phase
               round slack_ps
           | E.Delay_update { op = o; phase; round; from_ps; to_ps }
             when String.equal o op ->
             final_delay := Some to_ps;
             Printf.printf "  [%6d] %-8s round %2d: delay %8.1f -> %8.1f ps\n" e.E.seq
               phase round from_ps to_ps
           | E.Op_picked { op = o; edge; step; priority; ready_set_size }
             when String.equal o op ->
             placement := Some (edge, step);
             Printf.printf
               "  [%6d] sched: picked on edge %d step %d (priority %.1f, %d ready)\n"
               e.E.seq edge step priority ready_set_size
           | E.Recovery_step { rung; outcome } ->
             (* Ladder steps reshape every op's story; always shown. *)
             Printf.printf "  [%6d] recovery ladder: %s -> %s\n" e.E.seq rung outcome
           | _ -> ())
         evs;
       (match !final_delay with
       | Some d -> Printf.printf "final grade: %.1f ps\n" d
       | None -> Printf.printf "final grade: unchanged (no delay updates for this op)\n");
       (match !placement with
       | Some (edge, step) ->
         Printf.printf "schedule state: placed on edge %d, step %d\n" edge step
       | None ->
         Printf.printf
           "schedule state: never picked (inspect Edge_scheduled deferrals)\n");
       Ok ()
     end)

(* diff-events: positional comparison of two provenance streams that should
   be identical (full recompute vs incremental replay, or two runs of the
   same configuration).  The first diverging event — shown with +-K context
   and a per-field payload diff — is where the runs' decisions split. *)
let diff_events_cmd file_a file_b context stats trace events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let module E = Obs.Events in
     let* path_a, path_b =
       match (file_a, file_b) with
       | Some a, Some b -> Ok (a, b)
       | _ -> Error (Usage "pass two event files (written with --events FILE)")
     in
     let* () =
       if context < 0 then Error (Usage "--context must be non-negative") else Ok ()
     in
     (* Tagged loading makes merged fleet provenance files first-class
        diff inputs: a stream-tag mismatch diverges like any payload
        field, and per-stream seq monotonicity is checked on load. *)
     let load path =
       match E.load_tagged ~path with
       | Ok evs -> Ok evs
       | Error m -> Error (Usage (Printf.sprintf "%s: %s" path m))
       | exception Sys_error m -> Error (Usage m)
     in
     let* evs_a = load path_a in
     let* evs_b = load path_b in
     let line (te : E.tagged) =
       match te.E.stream with
       | Some s -> E.tagged_to_jsonl_line ~stream:s te.E.event
       | None -> E.to_jsonl_line te.E.event
     in
     match E.diff_tagged evs_a evs_b with
     | None ->
       Printf.printf "identical: %d events\n" (List.length evs_a);
       Ok ()
     | Some d ->
       let arr_a = Array.of_list evs_a and arr_b = Array.of_list evs_b in
       Printf.printf "--- A: %s (%d events)\n" path_a (Array.length arr_a);
       Printf.printf "+++ B: %s (%d events)\n" path_b (Array.length arr_b);
       (* Leading context comes from A; the streams agree on it by
          construction (everything before the divergence index is equal). *)
       for i = max 0 (d.E.index - context) to d.E.index - 1 do
         Printf.printf "  [%d] %s\n" i (line arr_a.(i))
       done;
       (match d.E.a with
       | Some e -> Printf.printf "- [%d] %s\n" d.E.index (E.to_jsonl_line e)
       | None -> Printf.printf "- <A ends: %d events>\n" (Array.length arr_a));
       (match d.E.b with
       | Some e -> Printf.printf "+ [%d] %s\n" d.E.index (E.to_jsonl_line e)
       | None -> Printf.printf "+ <B ends: %d events>\n" (Array.length arr_b));
       List.iter
         (fun f ->
           Printf.printf "    field %s: %s /= %s\n" f.E.field f.E.a_val f.E.b_val)
         d.E.fields;
       (* Trailing context from whichever stream still has events: after the
          divergence the streams are unaligned, so each side is shown. *)
       let trail label arr =
         let lo = d.E.index + 1 in
         let hi = min (Array.length arr) (lo + context) in
         for i = lo to hi - 1 do
           Printf.printf "  %s[%d] %s\n" label i (line arr.(i))
         done
       in
       trail "A" arr_a;
       trail "B" arr_b;
       let seq =
         match (d.E.a, d.E.b) with
         | Some e, _ | None, Some e -> e.E.seq
         | None, None -> d.E.index
       in
       Error
         (Internal
            (Printf.sprintf "event streams diverge at seq %d (index %d, %d field%s)"
               seq d.E.index (List.length d.E.fields)
               (if List.length d.E.fields = 1 then "" else "s"))))

let diff_a_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"A"
         ~doc:"First provenance event file (JSONL) written by --events.")

let diff_b_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"B"
         ~doc:"Second provenance event file to compare against.")

let diff_context_arg =
  Arg.(value & opt int 3 & info [ "context"; "C" ] ~docv:"K"
         ~doc:"Events of context to print around the divergence (default 3).")

let explain_file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"EVENTS"
         ~doc:"Provenance event file (JSONL) written by --events.")

let explain_op_arg =
  Arg.(value & opt (some string) None & info [ "op" ] ~docv:"NAME"
         ~doc:"Operation name to explain (e.g. m_x0c4 in the idct design).")

(* ------------------------------------------------------------------ *)
(* serve / request: the synthesis daemon and its client *)

let socket_arg =
  Arg.(value & opt string "hlsc.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path to listen on (default hlsc.sock).")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Listen on loopback TCP instead of the Unix socket.")

let serve_jobs_arg =
  Arg.(value & opt int 2 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains in the shared evaluation pool (default 2); \
               every request's points are multiplexed onto it.")

let high_water_arg =
  Arg.(value & opt int 4 & info [ "high-water" ] ~docv:"N"
         ~doc:"Admission-control bound: past N requests in flight, new work \
               is shed with an 'overloaded' response and a retry-after hint \
               instead of queueing unboundedly.")

let drain_deadline_arg =
  Arg.(value & opt float 30.0 & info [ "drain-deadline" ] ~docv:"SECONDS"
         ~doc:"On SIGTERM/SIGINT or a shutdown request: stop accepting, then \
               wait up to this long for in-flight requests before exiting.")

let read_timeout_arg =
  Arg.(value & opt float 5.0 & info [ "read-timeout" ] ~docv:"SECONDS"
         ~doc:"Mid-frame stall budget per connection: a request that starts \
               arriving and then stops flowing for this long is answered \
               with an error and the connection is closed.  Idle keep-alive \
               connections are unaffected.")

let serve_deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
         ~doc:"Default per-request deadline for requests that do not carry \
               their own; a fired deadline yields a timed_out/partial \
               response, never a wedged connection.")

let serve_retries_arg =
  Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
         ~doc:"Re-run a request's crashed points up to N times with \
               exponential backoff before reporting them crashed.")

let backoff_arg =
  Arg.(value & opt float 0.05 & info [ "backoff" ] ~docv:"SECONDS"
         ~doc:"Base of the exponential retry backoff; also the retry-after \
               hint sent with 'overloaded' responses.")

let once_arg =
  Arg.(value & flag & info [ "once" ]
         ~doc:"Self-test mode: start on a private socket in a temp \
               directory, run the scripted --request(s) through an \
               in-process client, print each response, drain, and exit \
               with the combined status.")

let request_script_arg =
  Arg.(value & opt string "{\"op\":\"ping\"}" & info [ "request" ] ~docv:"JSON"
         ~doc:"Request payload(s) for --once, one JSON object per line.")

let drain_after_points_arg =
  Arg.(value & opt (some int) None & info [ "drain-after-points" ] ~docv:"K"
         ~doc:"Testing hook: trigger a drain after exactly K completed point \
               evaluations — a deterministic mid-sweep SIGTERM.")

let serve_corpus_arg =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"MANIFEST"
         ~doc:"Also resolve every design of a corpus manifest by name, so \
               this daemon can act as a worker for distributed corpus \
               sweeps (hlsc sweep --corpus ... --workers ...).")

let metrics_arg =
  Arg.(value & opt (some int) None & info [ "metrics" ] ~docv:"PORT"
         ~doc:"Expose the daemon's counters and per-op latency \
               distributions in Prometheus text format over loopback HTTP \
               on this port.  The scrape endpoint lives and dies with the \
               daemon; poll a whole fleet at once with $(b,hlsc top).")

let serve_telemetry_arg =
  Arg.(value & flag & info [ "telemetry" ]
         ~doc:"Collect shippable telemetry (request spans, decision \
               events, GC samples) and attach a heartbeat-sized snapshot \
               to health replies; the full ledger always answers the \
               telemetry op.  A sweep supervisor merges these snapshots \
               into its fleet trace, counter namespace and provenance \
               file.")

let address_name = function
  | Server.Unix_sock p -> p
  | Server.Tcp p -> Printf.sprintf "127.0.0.1:%d" p

let serve_cmd socket port lib validate max_recoveries jobs high_water
    drain_deadline read_timeout deadline point_deadline retries backoff
    journal_file cache_file corpus once request_script drain_after_points metrics
    telemetry stats trace events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  let cfg =
    let* lib = lib_of lib in
    let* config = config_of validate max_recoveries in
    (* --corpus: make every manifest design resolvable by name, so this
       daemon can serve shard_explore leases of a distributed corpus
       sweep without pre-registration.  Resolution is lazy — the design
       is only (re)generated when a lease actually names it. *)
    let* resolver =
      match corpus with
      | None -> Ok None
      | Some path ->
        let* _seed, entries =
          Result.map_error (fun m -> Usage (path ^ ": " ^ m)) (Corpus.load ~path)
        in
        let tbl = Hashtbl.create (List.length entries) in
        List.iter
          (fun (e : Corpus.entry) ->
            Hashtbl.replace tbl e.Corpus.name (fun () ->
                ((Corpus.design e).Random_design.dfg, e.Corpus.clock_ps)))
          entries;
        Ok (Some (fun name -> Hashtbl.find_opt tbl name))
    in
    let* () = if jobs < 1 then Error (Usage "--jobs must be at least 1") else Ok () in
    let* () =
      if high_water < 1 then Error (Usage "--high-water must be at least 1")
      else Ok ()
    in
    let* () =
      if retries < 0 then Error (Usage "--retries must be non-negative") else Ok ()
    in
    let address =
      match port with Some p -> Server.Tcp p | None -> Server.Unix_sock socket
    in
    Ok
      {
        Server.default_config with
        Server.address;
        jobs;
        high_water;
        drain_deadline;
        read_timeout;
        default_deadline = deadline;
        point_deadline;
        request_retries = retries;
        backoff;
        lib;
        flow_config = config;
        designs = List.map (fun (n, mk) -> (n, mk)) builtin_designs;
        resolver;
        journal_path = journal_file;
        cache_path = cache_file;
        drain_after_points;
        telemetry;
        metrics_port = metrics;
      }
  in
  (* --telemetry turns the passive sinks on: spans, decision events and GC
     samples all feed the snapshots this daemon ships to its supervisor. *)
  if telemetry then begin
    Obs.enable_trace ();
    Obs.Events.enable ();
    Obs.Prof.enable ()
  end;
  match cfg with
  | Error err ->
    Printf.eprintf "hlsc: %s\n" (message_of err);
    exit_code_of err
  | Ok cfg ->
    if once then begin
      match Server.once cfg ~request_json:request_script with
      | Error m ->
        Printf.eprintf "hlsc: %s\n" m;
        1
      | Ok (responses, daemon_code) ->
        List.iter (fun (body, _) -> print_endline body) responses;
        let worst = List.fold_left (fun acc (_, c) -> max acc c) 0 responses in
        (* A daemon that drained with resumable work owes its caller the
           exit-5 resume contract even when every response was answered. *)
        if daemon_code = 5 then 5 else worst
    end
    else begin
      match Server.start cfg with
      | Error m ->
        Printf.eprintf "hlsc: %s\n" m;
        1
      | Ok t ->
        let on_signal name =
          Sys.Signal_handle (fun _ -> Server.drain ~reason:name t)
        in
        let prev_int = Sys.signal Sys.sigint (on_signal "SIGINT") in
        let prev_term = Sys.signal Sys.sigterm (on_signal "SIGTERM") in
        Printf.eprintf
          "hlsc serve: listening on %s (%d worker domain%s, high water %d)\n%!"
          (address_name cfg.Server.address)
          cfg.Server.jobs
          (if cfg.Server.jobs = 1 then "" else "s")
          cfg.Server.high_water;
        (match cfg.Server.metrics_port with
        | Some p ->
          Printf.eprintf "hlsc serve: metrics on http://127.0.0.1:%d/metrics\n%!" p
        | None -> ());
        let code = Server.serve t in
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigterm prev_term;
        code
    end

let req_host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Daemon host when using --port.")

let req_op_arg =
  Arg.(value & pos 0 string "ping" & info [] ~docv:"OP"
         ~doc:"Request: ping, stats, telemetry, shutdown, run or explore.")

let req_json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"JSON"
         ~doc:"Send this raw payload instead of building one from the flags.")

let req_id_arg =
  Arg.(value & opt string "" & info [ "id" ] ~docv:"ID"
         ~doc:"Request id, echoed in the response.")

let req_design_arg =
  Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Built-in design name for run/explore requests.")

let request_cmd socket host port op json id design clock flow clocks flows iis
    recover deadline point_deadline retry stats trace events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  let addr =
    match port with
    | Some p -> Client.Tcp (host, p)
    | None -> Client.Unix_path socket
  in
  let payload =
    match json with
    | Some j -> Ok j
    | None ->
      let* req =
        match op with
        | "ping" -> Ok Protocol.Ping
        | "stats" -> Ok Protocol.Stats
        | "telemetry" -> Ok Protocol.Telemetry
        | "shutdown" -> Ok Protocol.Shutdown
        | "run" -> (
          match design with
          | Some d -> Ok (Protocol.Run { design = d; clock; flow })
          | None -> Error (Usage "run requests need --design"))
        | "explore" -> (
          match design with
          | Some d ->
            Ok
              (Protocol.Explore
                 {
                   design = d;
                   clocks = (if clocks = "auto" then "2000:3000:100" else clocks);
                   flows;
                   iis;
                   recover;
                   point_deadline;
                 })
          | None -> Error (Usage "explore requests need --design"))
        | s ->
          Error
            (Usage
               (Printf.sprintf
                  "unknown request %S (try: ping, stats, telemetry, shutdown, \
                   run, explore)"
                  s))
      in
      Ok
        (Obs.Json.to_string
           (Protocol.request_to_json
              { Protocol.id; deadline_s = deadline; trace = None; req }))
  in
  match payload with
  | Error err ->
    Printf.eprintf "hlsc: %s\n" (message_of err);
    exit_code_of err
  | Ok _ when retry < 0 ->
    Printf.eprintf "hlsc: --retry must be non-negative\n";
    2
  | Ok payload -> (
    (* Give the server its own deadline plus slack before the client gives
       up; with no deadline the client waits as long as the sweep takes. *)
    let client_deadline = Option.map (fun s -> s +. 30.0) deadline in
    let on_retry ~attempt ~wait =
      Printf.eprintf
        "hlsc: daemon overloaded; retrying in %.2fs (attempt %d of %d)\n%!" wait
        attempt retry
    in
    match
      Client.one_shot_retry ?deadline_s:client_deadline ~retries:retry ~on_retry
        addr payload
    with
    | Error m ->
      Printf.eprintf "hlsc: %s\n" m;
      1
    | Ok body -> (
      print_endline body;
      match Protocol.response_status body with
      | Ok (status, _) -> Protocol.exit_code_of_status status
      | Error m ->
        Printf.eprintf "hlsc: %s\n" m;
        1))

(* ------------------------------------------------------------------ *)
(* corpus / sweep / merge-journals: the 100-design corpus and sharded
   exploration *)

let corpus_cmd out seed count verify stats trace events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (if verify then
       match Corpus.verify ~path:out with
       | Ok n ->
         Printf.printf "corpus %s: OK, %d designs reproduce bit-exactly\n" out n;
         Ok ()
       | Error m ->
         (* A manifest that fails to parse/load is a usage problem; a
            manifest whose digests no longer reproduce is drift — the
            validation exit, so CI distinguishes the two. *)
         if Sys.file_exists out then Error (Validation (out ^ ": " ^ m))
         else Error (Usage (out ^ ": " ^ m))
     else if count <= 0 then Error (Usage "--count must be positive")
     else
       let entries = Corpus.plan ~count ~seed () in
       match Corpus.save ~path:out ~seed entries with
       | exception Sys_error m -> Error (Internal m)
       | () ->
         Printf.printf "wrote %s: %d designs (seed %d)\n" out count seed;
         let t =
           Text_table.create ~headers:[ "class"; "designs"; "ops (min-max)"; "shapes" ]
         in
         List.iter
           (fun k ->
             let of_k =
               List.filter (fun (e : Corpus.entry) -> e.Corpus.klass = k) entries
             in
             if of_k <> [] then begin
               let ops = List.map (fun (e : Corpus.entry) -> e.Corpus.ops) of_k in
               let shapes =
                 List.filter_map
                   (fun s ->
                     let n =
                       List.length
                         (List.filter
                            (fun (e : Corpus.entry) -> e.Corpus.shape = s)
                            of_k)
                     in
                     if n > 0 then
                       Some (Printf.sprintf "%s:%d" (Random_design.shape_name s) n)
                     else None)
                   Random_design.all_shapes
               in
               Text_table.add_row t
                 [
                   Corpus.klass_name k;
                   string_of_int (List.length of_k);
                   Printf.sprintf "%d-%d"
                     (List.fold_left min max_int ops)
                     (List.fold_left max 0 ops);
                   String.concat " " shapes;
                 ]
             end)
           Corpus.all_klasses;
         print_string (Text_table.render t);
         Ok ())

let merge_journals_cmd inputs output stats trace events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* output =
       match output with
       | Some o -> Ok o
       | None -> Error (Usage "pass -o OUTPUT for the merged journal")
     in
     let* () =
       if inputs = [] then Error (Usage "pass at least one shard journal") else Ok ()
     in
     match Shard.merge_journals ~inputs ~output with
     | Ok s ->
       Printf.printf
         "merged %d journal%s -> %s: %d entries, %d duplicate%s collapsed%s\n"
         s.Shard.journals
         (if s.Shard.journals = 1 then "" else "s")
         output s.Shard.entries s.Shard.duplicates
         (if s.Shard.duplicates = 1 then "" else "s")
         (if s.Shard.quarantined > 0 then
            Printf.sprintf ", %d corrupt lines quarantined" s.Shard.quarantined
          else "");
       Ok ()
     | Error m -> Error (Usage m))

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let spawn_child ~log argv =
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.create_process Sys.executable_name (Array.of_list argv) Unix.stdin fd fd)

let wait_child pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, Unix.WSIGNALED s | _, Unix.WSTOPPED s -> 128 + s

(* Children must see the exact float values the parent planned with, so
   clock axes are serialized as hex floats (%h round-trips bit-exactly
   through the grid parser's [float_of_string]). *)
let clocks_spec_of clocks = String.concat "," (List.map (Printf.sprintf "%h") clocks)

(* Run the shard children, tolerate the explore exit contract (0 ok, 4 all
   points infeasible — data, the merge decides), propagate interrupts. *)
let run_children children =
  let results =
    List.map (fun (i, log, argv) -> (i, log, wait_child (spawn_child ~log argv))) children
  in
  List.fold_left
    (fun acc (i, log, code) ->
      let* () = acc in
      match code with
      | 0 | 4 -> Ok ()
      | 5 ->
        Error
          (Interrupted
             (Printf.sprintf "shard %d was interrupted; its journal is resumable (log: %s)"
                i log))
      | c ->
        Error
          (Internal (Printf.sprintf "shard %d exited %d (log: %s)" i c log)))
    (Ok ()) results

(* The per-design grid of a corpus sweep: 'auto' clocks span the design's
   own suggested period, and a manifest II constraint pins the II axis. *)
let corpus_grid ~clocks_spec ~flows ~iis ~recover (e : Corpus.entry) =
  let* clocks =
    if clocks_spec = "auto" then
      Ok (List.init 8 (fun k -> e.Corpus.clock_ps *. (0.8 +. (0.1 *. float_of_int k))))
    else grid_axis "--clocks" Explore_grid.parse_clocks clocks_spec
  in
  let iis = if e.Corpus.ii > 0 then [ Some e.Corpus.ii ] else iis in
  Result.map_error (fun m -> Usage m) (Explore_grid.make ~clocks ~flows ~iis ~recover ())

let rec take_n n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take_n (n - 1) tl

(* --workers: "HOST:PORT,unix:PATH,..." — the remote hlsc serve daemons a
   distributed sweep leases shard ranges to. *)
let parse_workers spec =
  let parse_one s =
    if String.length s > 5 && String.sub s 0 5 = "unix:" then
      Ok (s, Client.Unix_path (String.sub s 5 (String.length s - 5)))
    else
      match String.rindex_opt s ':' with
      | Some i -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some port when host <> "" -> Ok (s, Client.Tcp (host, port))
        | _ -> Error (Usage (Printf.sprintf "--workers: bad port in %S" s)))
      | None ->
        Error
          (Usage (Printf.sprintf "--workers: %S is neither HOST:PORT nor unix:PATH" s))
  in
  let rec go acc = function
    | [] ->
      if acc = [] then Error (Usage "--workers: empty worker list")
      else Ok (List.rev acc)
    | s :: tl ->
      let* w = parse_one s in
      go (w :: acc) tl
  in
  go [] (List.filter (fun s -> s <> "") (String.split_on_char ',' spec))

(* top: a refreshing fleet dashboard assembled from each daemon's stats
   reply — admission state, cache effectiveness, lease activity, shard
   latency and wasted-work ratio, one line per daemon per poll. *)
let top_cmd workers interval iterations stats trace events force no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* wl =
       match workers with
       | [] ->
         Error (Usage "pass at least one daemon address (HOST:PORT or unix:PATH)")
       | l -> parse_workers (String.concat "," l)
     in
     let* () =
       if interval <= 0.0 then Error (Usage "--interval must be positive") else Ok ()
     in
     let* () =
       if iterations < 0 then Error (Usage "--iterations must be non-negative")
       else Ok ()
     in
     let open Obs.Json in
     let fnum f name =
       match List.assoc_opt name f with
       | Some (Int i) -> float_of_int i
       | Some (Float v) -> v
       | _ -> 0.0
     in
     let inum f name = int_of_float (fnum f name) in
     let shard_p95 f =
       match List.assoc_opt "latency_ms" f with
       | Some (Obj ops) -> (
         match List.assoc_opt "shard_explore" ops with
         | Some (Obj d) -> Printf.sprintf "%.1f" (fnum d "p95_ms")
         | _ -> "-")
       | _ -> "-"
     in
     let render_line name f =
       let hits = inum f "cache_hits" and misses = inum f "cache_misses" in
       let cache =
         if hits + misses = 0 then 0.0
         else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
       in
       let touched = inum f "wasted_touched" in
       let waste =
         if touched = 0 then 0.0
         else 100.0 *. fnum f "wasted_cone" /. float_of_int touched
       in
       Printf.printf "  %-24s %5d %5d %6d %6d %6d %6.1f%% %6.1f%% %9s %5s\n" name
         (inum f "inflight") (inum f "queue_depth") (inum f "shed")
         (inum f "completed") (inum f "active_leases") cache waste (shard_p95 f)
         (match List.assoc_opt "draining" f with
         | Some (Bool true) -> "yes"
         | _ -> "no")
     in
     let poll it =
       Printf.printf "hlsc top: poll %d%s, %d daemon%s\n" it
         (if iterations > 0 then Printf.sprintf " of %d" iterations else "")
         (List.length wl)
         (if List.length wl = 1 then "" else "s");
       Printf.printf "  %-24s %5s %5s %6s %6s %6s %7s %7s %9s %5s\n" "worker"
         "infl" "queue" "shed" "compl" "lease" "cache%" "waste%" "p95sh/ms"
         "drain";
       List.iter
         (fun (name, addr) ->
           match
             Client.one_shot ~deadline_s:(Float.max 5.0 interval) addr
               "{\"op\":\"stats\",\"id\":\"top\"}"
           with
           | Error m -> Printf.printf "  %-24s unreachable: %s\n" name m
           | Ok body -> (
             match
               Result.bind (Protocol.response_status body) (fun (_, j) ->
                   Protocol.obj_fields j)
             with
             | Error m -> Printf.printf "  %-24s bad reply: %s\n" name m
             | Ok f -> render_line name f))
         wl;
       flush stdout
     in
     let rec loop it =
       if iterations > 0 && it > iterations then Ok ()
       else begin
         if it > 1 then Unix.sleepf interval;
         poll it;
         loop (it + 1)
       end
     in
     loop 1)

(* Fleet observability artifacts of a distributed sweep, written next to
   the shard journals:
   - merged-events.jsonl: each completing lease's decision-event stream,
     tagged with its lease id.  Streams arrive sorted and renumbered, so
     two identical runs write byte-identical files (workers at --jobs 1).
   - fleet-trace.json: one Chrome trace with a lane per polled worker,
     its timestamps shifted onto the supervisor's clock by a midpoint
     offset estimate, next to the supervisor's own lane.
   - fleet-counters.json: worker.<name>.* counters plus fleet.* sums.
   - crash-worker-<name>.json: the last heartbeat-carried snapshot of
     each worker declared lost — the dispatcher's postmortem salvage. *)
let fleet_artifacts ~dir ~workers (o : Dispatch.outcome) =
  let module J = Obs.Json in
  let module T = Obs.Telemetry in
  let write path body =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc body)
  in
  let safe_name =
    String.map (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.') as c -> c
      | _ -> '_')
  in
  try
    let buf = Buffer.create 4096 in
    List.iter
      (fun (lease, lines) ->
        List.iter
          (fun line ->
            match Result.bind (J.parse line) Obs.Events.of_json with
            | Ok e ->
              Buffer.add_string buf
                (Obs.Events.tagged_to_jsonl_line ~stream:lease e);
              Buffer.add_char buf '\n'
            | Error _ -> ())
          lines)
      o.Dispatch.lease_events;
    write (Filename.concat dir "merged-events.jsonl") (Buffer.contents buf);
    (* Midpoint clock-offset estimate: the worker read its clock somewhere
       between our request and its reply; assume the middle.  Good to a
       few milliseconds on loopback — enough to line fleet lanes up. *)
    let polled =
      List.filter_map
        (fun (wname, addr) ->
          let t0 = T.uptime_ns () in
          match
            Client.one_shot ~deadline_s:10.0 addr
              "{\"op\":\"telemetry\",\"id\":\"fleet\"}"
          with
          | Error _ -> None
          | Ok body -> (
            let t1 = T.uptime_ns () in
            let snap =
              Result.bind (Protocol.response_status body) (fun (_, j) ->
                  Result.bind (Protocol.obj_fields j) (fun fields ->
                      match List.assoc_opt "telemetry" fields with
                      | Some tj -> T.of_json tj
                      | None -> Error "no telemetry field"))
            in
            match snap with
            | Error _ -> None
            | Ok snap ->
              let offset = ((t0 + t1) / 2) - snap.T.clock_ns in
              Some (wname, offset, snap)))
        workers
    in
    let self = T.capture () in
    let lanes =
      T.lane_events ~pid:self.T.pid ~offset_ns:0 ~process_name:"supervisor" self
      @ List.concat_map
          (fun (wname, offset, snap) ->
            T.lane_events ~pid:snap.T.pid ~offset_ns:offset ~process_name:wname
              snap)
          polled
    in
    write
      (Filename.concat dir "fleet-trace.json")
      (J.to_string (J.Obj [ ("traceEvents", J.List lanes) ]));
    let totals = Hashtbl.create 64 in
    let per_worker =
      List.concat_map
        (fun (wname, _offset, snap) ->
          List.map
            (fun (k, v) ->
              Hashtbl.replace totals k
                (v + Option.value ~default:0 (Hashtbl.find_opt totals k));
              (Printf.sprintf "worker.%s.%s" wname k, J.Int v))
            (T.counters snap))
        polled
    in
    let fleet =
      Hashtbl.fold (fun k v acc -> ("fleet." ^ k, J.Int v) :: acc) totals []
      |> List.sort compare
    in
    write
      (Filename.concat dir "fleet-counters.json")
      (J.to_string (J.Obj (per_worker @ fleet)));
    List.iter
      (fun (wname, tj) ->
        write
          (Filename.concat dir ("crash-worker-" ^ safe_name wname ^ ".json"))
          tj)
      o.Dispatch.lost_telemetry;
    Printf.printf
      "sweep: fleet telemetry: %d of %d workers polled, %d lease event \
       stream%s, %d lost-worker postmortem%s -> %s\n"
      (List.length polled) (List.length workers)
      (List.length o.Dispatch.lease_events)
      (if List.length o.Dispatch.lease_events = 1 then "" else "s")
      (List.length o.Dispatch.lost_telemetry)
      (if List.length o.Dispatch.lost_telemetry = 1 then "" else "s")
      dir;
    Ok ()
  with
  | Sys_error m -> Error (Internal m)
  | Unix.Unix_error (e, _, p) -> Error (Internal (p ^ ": " ^ Unix.error_message e))

let sweep_cmd source builtin clock lib_s validate max_recoveries clocks flows iis
    recover corpus take shards shard journal_file dir jobs workers lease_points
    lease_deadline heartbeat steal progress csv json stats trace events force
    no_crash =
  with_obs ~stats ~trace ~events ~force ~no_crash @@ fun () ->
  finish
    (let* lib = lib_of lib_s in
     let* config = config_of validate max_recoveries in
     let* flows_l = grid_axis "--flows" Explore_grid.parse_flows flows in
     let* iis_l = grid_axis "--ii" Explore_grid.parse_iis iis in
     let* recover_l = grid_axis "--recover" Explore_grid.parse_recover recover in
     let* () =
       if shards < 1 then Error (Usage "--shards must be at least 1") else Ok ()
     in
     let* () =
       if jobs < 0 then Error (Usage "--jobs must be non-negative") else Ok ()
     in
     let* shard = parse_shard shard in
     let fingerprint = Explore.config_fingerprint config in
     let lib_name = Library.name lib in
     let full_key digest pkey =
       Eval_cache.key ~digest ~lib:lib_name ~config:fingerprint ~point_key:pkey
     in
     let jnl i = Filename.concat dir (Printf.sprintf "shard-%d.jnl" i) in
     let merged_path = Filename.concat dir "merged.jnl" in
     let merge () =
       Result.map_error
         (fun m -> Usage m)
         (Shard.merge_journals
            ~inputs:(List.init shards (fun k -> jnl (k + 1)))
            ~output:merged_path)
     in
     let load_merged () =
       Result.fold
         ~ok:(fun (entries, _) -> Ok entries)
         ~error:(fun m -> Error (Internal m))
         (Journal.load ~path:merged_path)
     in
     let* workers_l =
       match workers with
       | None -> Ok None
       | Some spec ->
         let* () =
           if shard <> None then
             Error (Usage "--workers drives remote daemons; drop --shard")
           else Ok ()
         in
         let* l = parse_workers spec in
         Ok (Some l)
     in
     (* Distributed mode: lease the key ranges to remote workers, then
        journal and merge the returned records exactly as the local path
        does — the frontier fold below cannot tell who evaluated what.
        [Ok None] means no worker was reachable and the caller should
        degrade to local shard children. *)
     let dispatch_merged wl jobs_l =
       mkdir_p dir;
       let dcfg =
         {
           Dispatch.default_config with
           Dispatch.workers = wl;
           lease_points;
           lease_deadline;
           heartbeat;
           steal;
           (* One sweep, one trace: every lease and heartbeat is stamped
              with this id, so worker request spans parent under the
              supervisor in the merged fleet trace.  The id never lands in
              provenance files, so it cannot perturb byte-identity. *)
           trace_id = Some (Printf.sprintf "sweep-%d" (Unix.getpid ()));
         }
       in
       let total_points =
         List.fold_left
           (fun a (j : Dispatch.job) -> a + List.length j.Dispatch.keys)
           0 jobs_l
       in
       (if progress then begin
          Obs.Events.enable ();
          let last = ref Int64.min_int in
          Obs.Events.set_hook
            (Some
               (fun ev ->
                 match ev.Obs.Events.payload with
                 | Obs.Events.Dispatch_sample
                     {
                       workers;
                       leases;
                       done_points;
                       total_points;
                       reassigned;
                       stolen;
                       salvaged;
                     } ->
                   let now = Obs.now_ns () in
                   if
                     Int64.sub now !last >= 1_000_000_000L
                     || done_points >= total_points
                   then begin
                     last := now;
                     Printf.eprintf
                       "hlsc: sweep: %d/%d points done on %d worker%s (%d lease%s \
                        active, %d reassigned, %d stolen, %d salvaged)\n%!"
                       done_points total_points workers
                       (if workers = 1 then "" else "s")
                       leases
                       (if leases = 1 then "" else "s")
                       reassigned stolen salvaged
                   end
                 | _ -> ()))
        end);
       let result =
         Fun.protect
           ~finally:(fun () -> if progress then Obs.Events.set_hook None)
           (fun () -> Dispatch.run dcfg jobs_l)
       in
       match result with
       | Error m ->
         Printf.eprintf "hlsc: sweep: %s; falling back to local shard processes\n%!" m;
         Dispatch.note_fallback_local ();
         Ok None
       | Ok o ->
         Printf.printf
           "sweep: dispatched %d points to %d worker%s: %d leases, %d reassigned, \
            %d stolen, %d salvaged, %d lost worker%s\n"
           total_points (List.length wl)
           (if List.length wl = 1 then "" else "s")
           o.Dispatch.leases o.Dispatch.reassigned o.Dispatch.stolen
           o.Dispatch.salvaged_points o.Dispatch.workers_lost
           (if o.Dispatch.workers_lost = 1 then "" else "s");
         let tbl = Hashtbl.create 256 in
         List.iter (fun (k, s) -> Hashtbl.replace tbl k s) o.Dispatch.records;
         let keys = List.map fst o.Dispatch.records in
         let n = max 1 (min (List.length wl) (List.length keys)) in
         let* () =
           try
             Array.iteri
               (fun k range ->
                 let w = Journal.start ~path:(jnl (k + 1)) ~fresh:true in
                 Fun.protect
                   ~finally:(fun () -> Journal.close w)
                   (fun () ->
                     List.iter
                       (fun ck -> Journal.record w ~key:ck (Hashtbl.find tbl ck))
                       range))
               (Shard.plan ~shards:n keys);
             Ok ()
           with Unix.Unix_error (e, _, p) ->
             Error (Internal (p ^ ": " ^ Unix.error_message e))
         in
         let* stats_m =
           Result.map_error (fun m -> Usage m)
             (Shard.merge_journals
                ~inputs:(List.init n (fun k -> jnl (k + 1)))
                ~output:merged_path)
         in
         Printf.printf "sweep: %d worker journal%s -> %s: %d entries (%d duplicates)\n"
           stats_m.Shard.journals
           (if stats_m.Shard.journals = 1 then "" else "s")
           merged_path stats_m.Shard.entries stats_m.Shard.duplicates;
         let* () = fleet_artifacts ~dir ~workers:wl o in
         if not o.Dispatch.complete then
           Error
             (Interrupted
                (Printf.sprintf
                   "distributed sweep stopped (%s): %d of %d points are merged \
                    into %s; finish with hlsc explore ... --resume %s"
                   (Option.value ~default:"interrupted" o.Dispatch.abort)
                   (List.length keys) total_points merged_path merged_path))
         else
           let* entries = load_merged () in
           Ok (Some entries)
     in
     match corpus with
     | None -> (
       (* Single-design mode: shard-run the explore grid of one design via
          N [hlsc explore --shard i/N] processes, merge, fold. *)
       let* () =
         match shard with
         | None -> Ok ()
         | Some _ ->
           Error (Usage "--shard without --corpus: run hlsc explore --shard instead")
       in
       let* name, base_clock, build = load_builder ~source ~builtin ~clock in
       let* clocks_l =
         if clocks = "auto" then
           Ok (List.init 8 (fun k -> base_clock *. (0.8 +. (0.1 *. float_of_int k))))
         else grid_axis "--clocks" Explore_grid.parse_clocks clocks
       in
       let* grid =
         Result.map_error (fun m -> Usage m)
           (Explore_grid.make ~clocks:clocks_l ~flows:flows_l ~iis:iis_l
              ~recover:recover_l ())
       in
       let local () =
         mkdir_p dir;
         let children =
           List.init shards (fun k ->
               let i = k + 1 in
               let argv =
                 [ Sys.executable_name; "explore" ]
                 @ (match source with Some s -> [ s ] | None -> [])
                 @ (match builtin with Some b -> [ "--design"; b ] | None -> [])
                 @ (match clock with
                   | Some c -> [ "--clock"; Printf.sprintf "%h" c ]
                   | None -> [])
                 @ [
                     "--library"; lib_s; "--validate"; validate; "--max-recoveries";
                     string_of_int max_recoveries; "--clocks"; clocks_spec_of clocks_l;
                     "--flows"; flows; "--ii"; iis; "--recover"; recover; "--jobs";
                     string_of_int jobs; "--shard";
                     Printf.sprintf "%d/%d" i shards; "--journal"; jnl i;
                   ]
               in
               (i, Filename.concat dir (Printf.sprintf "shard-%d.log" i), argv))
         in
         let* () = run_children children in
         let* stats_m = merge () in
         Printf.printf "sweep: %d shards -> %s: %d entries (%d duplicates)\n"
           stats_m.Shard.journals merged_path stats_m.Shard.entries
           stats_m.Shard.duplicates;
         load_merged ()
       in
       let* resume =
         match workers_l with
         | None -> local ()
         | Some wl -> (
           let* () =
             match source with
             | Some _ ->
               Error
                 (Usage
                    "--workers needs a --design name the remote daemons can \
                     resolve, not a source file")
             | None -> Ok ()
           in
           let digest = Dfg.digest (build ()) in
           let job =
             {
               Dispatch.design = name;
               clocks = clocks_spec_of clocks_l;
               flows;
               iis;
               recover;
               point_deadline = None;
               keys =
                 List.map Explore_grid.point_key (Explore_grid.points grid);
               key_of = (fun pk -> full_key digest pk);
             }
           in
           let* dispatched = dispatch_merged wl [ job ] in
           match dispatched with
           | Some entries -> Ok entries
           | None -> local ())
       in
       (* The fold: every point is answered by the merged journal, so this
          renders — byte-identically — what one process would have. *)
       let* outcome =
         match Explore.run ~jobs:1 ~resume ~lib ~config ~name ~build grid with
         | o -> Ok o
         | exception e ->
           Error (Internal (Printf.sprintf "fold crashed: %s" (Printexc.to_string e)))
       in
       let* () =
         match csv with
         | Some path -> write_rendering ~what:"CSV" path (Explore.to_csv outcome)
         | None -> Ok ()
       in
       let* () =
         match json with
         | Some path -> write_rendering ~what:"JSON" path (Explore.to_json outcome)
         | None -> Ok ()
       in
       print_string (Explore.render_summary outcome);
       if outcome.Explore.total > 0 && outcome.Explore.frontier = [] then
         Error
           (Flow_failed
              (Printf.sprintf "all %d grid points failed; frontier is empty"
                 outcome.Explore.total))
       else Ok ())
     | Some manifest -> (
       let* _mseed, entries =
         Result.map_error (fun m -> Usage (manifest ^ ": " ^ m))
           (Corpus.load ~path:manifest)
       in
       let entries =
         match take with None -> entries | Some k -> take_n k entries
       in
       let* () =
         if entries = [] then Error (Usage "corpus selection is empty") else Ok ()
       in
       (* Resolve every design once: grid, digest and builder.  Key order
          is what the shard plan ranges over, identically in parent and
          children. *)
       let* specs =
         List.fold_left
           (fun acc (e : Corpus.entry) ->
             let* acc = acc in
             let* grid =
               corpus_grid ~clocks_spec:clocks ~flows:flows_l ~iis:iis_l
                 ~recover:recover_l e
             in
             let build () = (Corpus.design e).Random_design.dfg in
             let digest = Dfg.digest (build ()) in
             Ok ((e, grid, digest, build) :: acc))
           (Ok []) entries
       in
       let specs = List.rev specs in
       let all_keys =
         List.concat_map
           (fun (_, grid, digest, _) ->
             List.map
               (fun p -> full_key digest (Explore_grid.point_key p))
               (Explore_grid.points grid))
           specs
       in
       match shard with
       | Some (rank, n) ->
         (* Child mode: evaluate this shard's key range across every design
            it touches, all into one journal. *)
         let* jpath =
           match journal_file with
           | Some p -> Ok p
           | None -> Error (Usage "--shard needs --journal FILE")
         in
         let plan = Shard.plan ~shards:n all_keys in
         let mine = Hashtbl.create 256 in
         List.iter (fun k -> Hashtbl.replace mine k ()) plan.(rank - 1);
         let* w =
           match Journal.start ~path:jpath ~fresh:true with
           | w -> Ok w
           | exception Unix.Unix_error (e, _, _) ->
             Error (Internal (jpath ^ ": " ^ Unix.error_message e))
         in
         Fun.protect
           ~finally:(fun () -> Journal.close w)
           (fun () ->
             List.iter
               (fun ((e : Corpus.entry), grid, digest, build) ->
                 let select pkey = Hashtbl.mem mine (full_key digest pkey) in
                 let owned =
                   List.exists
                     (fun p -> select (Explore_grid.point_key p))
                     (Explore_grid.points grid)
                 in
                 if owned then begin
                   let o =
                     Explore.run
                       ?jobs:(if jobs = 0 then None else Some jobs)
                       ~select ~journal:w ~lib ~config ~name:e.Corpus.name ~build
                       grid
                   in
                   Printf.printf "shard %d/%d %s: %d points, %d ok\n" rank n
                     e.Corpus.name o.Explore.total
                     (o.Explore.total - o.Explore.failed - o.Explore.timed_out
                    - o.Explore.crashed)
                 end)
               specs;
             Ok ())
       | None ->
         (* Parent: spawn one child per shard, merge, fold the corpus. *)
         let local () =
           mkdir_p dir;
           let children =
             List.init shards (fun k ->
                 let i = k + 1 in
                 let argv =
                   [
                     Sys.executable_name; "sweep"; "--corpus"; manifest; "--library";
                     lib_s; "--validate"; validate; "--max-recoveries";
                     string_of_int max_recoveries; "--clocks"; clocks; "--flows";
                     flows; "--ii"; iis; "--recover"; recover; "--jobs";
                     string_of_int jobs; "--shards"; string_of_int shards; "--shard";
                     Printf.sprintf "%d/%d" i shards; "--journal"; jnl i;
                   ]
                   @ (match take with
                     | Some t -> [ "--take"; string_of_int t ]
                     | None -> [])
                 in
                 (i, Filename.concat dir (Printf.sprintf "shard-%d.log" i), argv))
           in
           let* () = run_children children in
           let* stats_m = merge () in
           Printf.printf "sweep: %d shards -> %s: %d entries (%d duplicates)\n"
             stats_m.Shard.journals merged_path stats_m.Shard.entries
             stats_m.Shard.duplicates;
           load_merged ()
         in
         let* resume =
           match workers_l with
           | None -> local ()
           | Some wl -> (
             (* One job per corpus design: the remote daemons resolve the
                design names through their own --corpus manifest. *)
             let* jobs_l =
               List.fold_left
                 (fun acc ((e : Corpus.entry), grid, digest, _build) ->
                   let* acc = acc in
                   let* clocks_le =
                     if clocks = "auto" then
                       Ok
                         (List.init 8 (fun k ->
                              e.Corpus.clock_ps *. (0.8 +. (0.1 *. float_of_int k))))
                     else grid_axis "--clocks" Explore_grid.parse_clocks clocks
                   in
                   let iis_s =
                     if e.Corpus.ii > 0 then string_of_int e.Corpus.ii else iis
                   in
                   Ok
                     ({
                        Dispatch.design = e.Corpus.name;
                        clocks = clocks_spec_of clocks_le;
                        flows;
                        iis = iis_s;
                        recover;
                        point_deadline = None;
                        keys =
                          List.map Explore_grid.point_key (Explore_grid.points grid);
                        key_of = (fun pk -> full_key digest pk);
                      }
                     :: acc))
                 (Ok []) specs
             in
             let* dispatched = dispatch_merged wl (List.rev jobs_l) in
             match dispatched with
             | Some entries -> Ok entries
             | None -> local ())
         in
         let* outcomes =
           List.fold_left
             (fun acc ((e : Corpus.entry), grid, _digest, build) ->
               let* acc = acc in
               match
                 Explore.run ~jobs:1 ~resume ~lib ~config ~name:e.Corpus.name
                   ~build grid
               with
               | o -> Ok ((e, o) :: acc)
               | exception exn ->
                 Error
                   (Internal
                      (Printf.sprintf "fold of %s crashed: %s" e.Corpus.name
                         (Printexc.to_string exn))))
             (Ok []) specs
         in
         let outcomes = List.rev outcomes in
         (* The corpus summary: frontier size and feasibility rate by design
            class — EXPERIMENTS.md's table. *)
         let row k =
           let of_k =
             List.filter (fun ((e : Corpus.entry), _) -> e.Corpus.klass = k) outcomes
           in
           if of_k = [] then None
           else
             let designs = List.length of_k in
             let points =
               List.fold_left (fun a (_, o) -> a + o.Explore.total) 0 of_k
             in
             let ok =
               List.fold_left
                 (fun a (_, o) ->
                   a + o.Explore.total - o.Explore.failed - o.Explore.timed_out
                   - o.Explore.crashed)
                 0 of_k
             in
             let frontier =
               List.fold_left
                 (fun a (_, o) -> a + List.length o.Explore.frontier)
                 0 of_k
             in
             Some (designs, points, ok, frontier)
         in
         let t =
           Text_table.create
             ~headers:
               [ "class"; "designs"; "points"; "feasible %"; "frontier"; "mean" ]
         in
         let csv_buf = Buffer.create 256 in
         Buffer.add_string csv_buf "class,designs,points,ok,feasible_pct,frontier,frontier_mean\n";
         List.iter
           (fun k ->
             match row k with
             | None -> ()
             | Some (designs, points, ok, frontier) ->
               let pct =
                 if points = 0 then 0.0
                 else 100.0 *. float_of_int ok /. float_of_int points
               in
               let mean = float_of_int frontier /. float_of_int designs in
               Text_table.add_row t
                 [
                   Corpus.klass_name k; string_of_int designs; string_of_int points;
                   Printf.sprintf "%.1f" pct; string_of_int frontier;
                   Printf.sprintf "%.1f" mean;
                 ];
               Buffer.add_string csv_buf
                 (Printf.sprintf "%s,%d,%d,%d,%.1f,%d,%.1f\n" (Corpus.klass_name k)
                    designs points ok pct frontier mean))
           Corpus.all_klasses;
         Printf.printf "corpus sweep: %d designs, %d points\n" (List.length outcomes)
           (List.length all_keys);
         print_string (Text_table.render t);
         let* () =
           match csv with
           | Some path ->
             write_rendering ~what:"corpus summary CSV" path (Buffer.contents csv_buf)
           | None -> Ok ()
         in
         let* () =
           match json with
           | Some path ->
             let open Obs.Json in
             let body =
               to_string
                 (Obj
                    [
                      ("designs", Int (List.length outcomes));
                      ("points", Int (List.length all_keys));
                      ( "frontier_total",
                        Int
                          (List.fold_left
                             (fun a (_, o) -> a + List.length o.Explore.frontier)
                             0 outcomes) );
                    ])
             in
             write_rendering ~what:"JSON" path body
           | None -> Ok ()
         in
         Ok ()))

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run one scheduling flow and print the result")
    Term.(const run_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg
          $ validate_arg $ max_recoveries_arg $ stats_arg $ trace_arg $ events_arg
          $ force_arg $ crash_arg)

let compare_t =
  Cmd.v (Cmd.info "compare" ~doc:"Conventional vs slack-based, side by side")
    Term.(const compare_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg
          $ validate_arg $ max_recoveries_arg $ stats_arg $ trace_arg $ events_arg
          $ force_arg $ crash_arg)

let slack_t =
  Cmd.v (Cmd.info "slack" ~doc:"Pre-schedule sequential-slack report")
    Term.(const slack_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg
          $ validate_arg $ max_recoveries_arg $ stats_arg $ trace_arg $ events_arg
          $ force_arg $ crash_arg)

let output_arg =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Output Verilog path.")

let emit_t =
  Cmd.v (Cmd.info "emit" ~doc:"Run a flow and write the Verilog rendering")
    Term.(const emit_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg
          $ validate_arg $ max_recoveries_arg $ output_arg $ stats_arg $ trace_arg
          $ events_arg $ force_arg $ crash_arg)

let clocks_arg =
  Arg.(value & opt string "auto" & info [ "clocks" ] ~docv:"SPEC"
         ~doc:"Clock-period axis: comma-separated periods and/or LO:HI:STEP ranges in \
               ps (e.g. 2000,2500:3500:250), or 'auto' for 8 points spanning \
               0.8x-1.5x the design's base clock.")

let grid_flows_arg =
  Arg.(value & opt string "conv,slack" & info [ "flows" ] ~docv:"SPEC"
         ~doc:"Flow axis: comma-separated conv, slowest, slack, or 'all'.")

let iis_arg =
  Arg.(value & opt string "none" & info [ "ii" ] ~docv:"SPEC"
         ~doc:"Initiation-interval axis: comma-separated 'none', N, or LO:HI[:STEP] \
               ranges (e.g. none,4:8:2).")

let recover_arg =
  Arg.(value & opt string "on" & info [ "recover" ] ~docv:"POLICY"
         ~doc:"Area-recovery axis: on, off, or both.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for point evaluation; 0 (default) uses the \
               recommended domain count.  Results are identical for every value.")

let cache_arg =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
         ~doc:"Evaluation cache: load before the sweep (missing file = empty), skip \
               already-evaluated points, save back after.")

let point_deadline_arg =
  Arg.(value & opt (some float) None & info [ "point-deadline" ] ~docv:"SECONDS"
         ~doc:"Per-point evaluation deadline.  A point that exceeds it is \
               reported with status timed_out (the pipeline polls the deadline \
               cooperatively at phase boundaries) — data, not an error.")

let deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
         ~doc:"Sweep-level deadline.  When it fires, workers stop claiming \
               points, in-flight evaluations drain, and the partial results \
               are flushed; the sweep exits 5 and can be finished with \
               --resume.")

let retries_arg =
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
         ~doc:"Re-run a point whose evaluation raised up to N extra times \
               before quarantining it with status crashed.")

let strict_arg =
  Arg.(value & flag & info [ "strict" ]
         ~doc:"Abort the sweep (exit 1) on the first point whose evaluation \
               still raises after --retries attempts, instead of quarantining \
               it.  Completed points are journaled before aborting.")

let journal_arg =
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
         ~doc:"Start a fresh checkpoint journal: every completed point is \
               appended and fsync'd, so an interrupted sweep can be finished \
               with --resume.")

let resume_arg =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
         ~doc:"Resume an interrupted sweep from its checkpoint journal: \
               recorded points are not re-evaluated, new completions keep \
               being appended, and the final outputs are byte-identical to an \
               uninterrupted run.")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
         ~doc:"Write every grid point as CSV ('-' for stdout).")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write sweep stats and the Pareto frontier as JSON ('-' for stdout).")

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Print periodic progress lines (completed/total points, per-worker \
               utilization, ETA) to stderr while the sweep runs, fed by \
               Worker_sample provenance events.  With --shard the lines carry \
               the shard identity and a merged-sweep ETA estimate.")

let shard_arg =
  Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"I/N"
         ~doc:"Evaluate only shard I of N (1-based): the grid's canonically \
               sorted point keys are split into N contiguous disjoint ranges, \
               and this process takes range I.  Run all N shards (any mix of \
               machines), each with its own --journal, then reassemble with \
               $(b,hlsc merge-journals) — the merged frontier is byte-identical \
               to a single-process sweep.")

let explore_t =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Parallel design-space exploration with an area/delay Pareto frontier")
    Term.(const explore_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg
          $ validate_arg $ max_recoveries_arg $ clocks_arg $ grid_flows_arg
          $ iis_arg $ recover_arg $ jobs_arg $ cache_arg $ point_deadline_arg
          $ deadline_arg $ retries_arg $ strict_arg $ journal_arg $ resume_arg
          $ shard_arg $ csv_arg $ json_arg $ stats_arg $ trace_arg $ events_arg
          $ force_arg $ crash_arg $ progress_arg)

let corpus_out_arg =
  Arg.(value & opt string "corpus/manifest.tsv" & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Manifest path (default corpus/manifest.tsv).")

let corpus_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Master seed the whole population derives from (default 42).")

let corpus_count_arg =
  Arg.(value & opt int Corpus.default_count & info [ "count"; "n" ] ~docv:"N"
         ~doc:"Number of designs (default 100, the paper's corpus size).")

let corpus_verify_arg =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"Regenerate the population from the manifest's own header and \
               check every recorded digest reproduces bit-exactly; exit 3 on \
               any drift.  CI runs this so generator changes cannot silently \
               invalidate committed results.")

let corpus_t =
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Generate or verify the seeded 100-design validation corpus manifest")
    Term.(const corpus_cmd $ corpus_out_arg $ corpus_seed_arg $ corpus_count_arg
          $ corpus_verify_arg $ stats_arg $ trace_arg $ events_arg $ force_arg $ crash_arg)

let merge_inputs_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"JOURNAL"
         ~doc:"Shard journals to merge (shard-1.jnl shard-2.jnl ...).")

let merge_output_arg =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Merged journal path.")

let merge_journals_t =
  Cmd.v
    (Cmd.info "merge-journals"
       ~doc:"Validate and merge disjoint shard journals into one resumable journal")
    Term.(const merge_journals_cmd $ merge_inputs_arg $ merge_output_arg
          $ stats_arg $ trace_arg $ events_arg $ force_arg $ crash_arg)

let sweep_corpus_arg =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"MANIFEST"
         ~doc:"Sweep every design of a corpus manifest (written by \
               $(b,hlsc corpus)) instead of a single design.")

let sweep_take_arg =
  Arg.(value & opt (some int) None & info [ "take" ] ~docv:"K"
         ~doc:"Only sweep the first K corpus designs (smoke tests).")

let shards_arg =
  Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N"
         ~doc:"Number of shard processes to spawn (default 3).")

let sweep_dir_arg =
  Arg.(value & opt string "sweep-out" & info [ "dir" ] ~docv:"DIR"
         ~doc:"Directory for shard journals, logs and the merged journal \
               (default sweep-out).")

let workers_arg =
  Arg.(value & opt (some string) None & info [ "workers" ] ~docv:"LIST"
         ~doc:"Comma-separated hlsc serve daemons (HOST:PORT or unix:PATH) to \
               lease shard key-ranges to instead of spawning local shard \
               processes.  Dead, partitioned or stalled workers are detected, \
               their durable progress salvaged, and their leases reassigned; \
               if no worker is reachable at all the sweep degrades to local \
               shard processes.")

let lease_points_arg =
  Arg.(value & opt int 8 & info [ "lease-points" ] ~docv:"N"
         ~doc:"Maximum grid points per lease (default 8): smaller leases \
               lose less work per worker failure and balance better, at more \
               round trips.")

let lease_deadline_arg =
  Arg.(value & opt float 60.0 & info [ "lease-deadline" ] ~docv:"SECONDS"
         ~doc:"Deadline per lease (default 60): the worker cancels and \
               reports partial results at the deadline, and the supervisor \
               reassigns a lease it has heard nothing about for this long.")

let heartbeat_arg =
  Arg.(value & opt float 1.0 & info [ "heartbeat" ] ~docv:"SECONDS"
         ~doc:"Health-probe period (default 1.0; 0 disables).  Probes carry \
               each lease's durably recorded lines — the salvage source when \
               a worker dies mid-lease.  Three consecutive misses declare \
               the worker stalled.")

let steal_arg =
  Arg.(value & flag & info [ "steal" ]
         ~doc:"Let idle workers split the unfinished tail off straggler \
               leases.  Duplicated evaluations are byte-identical by the \
               determinism contract, so stealing never changes the result.")

let sweep_progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"With --workers: print live dispatch progress (points done, \
               live workers, active leases, reassignments) to stderr.")

let sweep_t =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sharded exploration driver: spawn N shard processes, merge their \
             journals, fold the frontier"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Partitions the explore grid (single design) or grid x corpus \
              (--corpus) by canonical key range into N disjoint shards, runs \
              each shard as an independent process journaling to \
              DIR/shard-i.jnl, merges with the merge-journals semantics, and \
              folds the merged journal into the frontier a single process \
              would have produced — byte-identically.  The same partition can \
              be run across machines instead: hlsc explore --shard i/N \
              --journal shard-i.jnl on each, then hlsc merge-journals.";
         ])
    Term.(const sweep_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg
          $ validate_arg $ max_recoveries_arg $ clocks_arg $ grid_flows_arg
          $ iis_arg $ recover_arg $ sweep_corpus_arg $ sweep_take_arg
          $ shards_arg $ shard_arg $ journal_arg $ sweep_dir_arg $ jobs_arg
          $ workers_arg $ lease_points_arg $ lease_deadline_arg $ heartbeat_arg
          $ steal_arg $ sweep_progress_arg $ csv_arg $ json_arg $ stats_arg
          $ trace_arg $ events_arg $ force_arg $ crash_arg)

let count_arg =
  Arg.(value & opt int 25 & info [ "count"; "n" ] ~docv:"N"
         ~doc:"Number of random designs.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Master seed for the random-design suite.")

let fuzz_validate_arg =
  Arg.(value & opt string "paranoid" & info [ "validate" ] ~docv:"LEVEL"
         ~doc:"Phase-boundary invariant checking: off, boundary or paranoid (default).")

let grids_fuzz_arg =
  Arg.(value & opt int 0 & info [ "grids" ] ~docv:"N"
         ~doc:"Also fuzz N random exploration-grid specs (including degenerate \
               ranges) through the grid parsers, sweeping a few of the small \
               accepted grids end to end.")

let fuzz_t =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Random designs through every flow under invariant validation")
    Term.(const fuzz_cmd $ count_arg $ seed_arg $ lib_arg $ fuzz_validate_arg
          $ max_recoveries_arg $ grids_fuzz_arg $ stats_arg $ trace_arg $ events_arg
          $ force_arg $ crash_arg)

let dot_t =
  Cmd.v
    (Cmd.info "dot" ~doc:"Dump Graphviz renderings (CFG, DFG+spans, timed DFG, schedule)")
    Term.(const dot_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg
          $ validate_arg $ max_recoveries_arg $ output_arg $ stats_arg $ trace_arg
          $ events_arg $ force_arg $ crash_arg)

let explain_t =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay a provenance event file into one operation's decision timeline")
    Term.(const explain_cmd $ explain_file_arg $ explain_op_arg $ stats_arg
          $ trace_arg $ events_arg $ force_arg $ crash_arg)

let diff_events_t =
  Cmd.v
    (Cmd.info "diff-events"
       ~doc:"Localize the first divergence between two provenance event files")
    Term.(const diff_events_cmd $ diff_a_arg $ diff_b_arg $ diff_context_arg
          $ stats_arg $ trace_arg $ events_arg $ force_arg $ crash_arg)

let serve_t =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Supervised synthesis daemon: concurrent requests over a socket, \
             with admission control, load shedding and graceful drain")
    Term.(const serve_cmd $ socket_arg $ port_arg $ lib_arg $ validate_arg
          $ max_recoveries_arg $ serve_jobs_arg $ high_water_arg
          $ drain_deadline_arg $ read_timeout_arg $ serve_deadline_arg
          $ point_deadline_arg $ serve_retries_arg $ backoff_arg $ journal_arg
          $ cache_arg $ serve_corpus_arg $ once_arg $ request_script_arg
          $ drain_after_points_arg $ metrics_arg $ serve_telemetry_arg
          $ stats_arg $ trace_arg $ events_arg $ force_arg $ crash_arg)

let req_retry_arg =
  Arg.(value & opt int 0 & info [ "retry" ] ~docv:"N"
         ~doc:"When the daemon sheds the request with an 'overloaded' \
               response, honor its retry_after_s hint: sleep that long and \
               resend, up to N times, before giving up with exit 5.")

let request_t =
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request to a running synthesis daemon and print the \
             response")
    Term.(const request_cmd $ socket_arg $ req_host_arg $ port_arg $ req_op_arg
          $ req_json_arg $ req_id_arg $ req_design_arg $ clock_arg $ flow_arg
          $ clocks_arg $ grid_flows_arg $ iis_arg $ recover_arg
          $ serve_deadline_arg $ point_deadline_arg $ req_retry_arg $ stats_arg
          $ trace_arg $ events_arg $ force_arg $ crash_arg)

let top_workers_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ADDR"
         ~doc:"Daemon addresses to poll (HOST:PORT or unix:PATH).")

let top_interval_arg =
  Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS"
         ~doc:"Seconds between polls (default 1.0).")

let top_iterations_arg =
  Arg.(value & opt int 0 & info [ "iterations"; "n" ] ~docv:"N"
         ~doc:"Stop after N polls; 0 (default) runs until interrupted.")

let top_t =
  Cmd.v
    (Cmd.info "top"
       ~doc:"Poll a fleet of synthesis daemons and render a once-per-interval \
             dashboard: inflight/queue depth, shed and completed requests, \
             active leases, cache hit rate, wasted-work ratio and \
             shard-lease latency p95 per worker")
    Term.(const top_cmd $ top_workers_arg $ top_interval_arg
          $ top_iterations_arg $ stats_arg $ trace_arg $ events_arg $ force_arg
          $ crash_arg)

let () =
  let doc = "slack-budgeting high-level synthesis (DATE 2012 reproduction)" in
  let man =
    [
      `S "EXIT CODES";
      `P "Every subcommand uses the same contract:";
      `I ("0", "success.");
      `I
        ( "1",
          "internal error (I/O, trace or event emission); for diff-events: \
           the two event streams diverge." );
      `I
        ( "2",
          "usage error (bad flags, malformed source, invalid configuration — \
           including a bad explore grid spec, a corrupt evaluation cache, or an \
           unknown --op name passed to explain)." );
      `I ("3", "validation failure (a pipeline invariant was violated).");
      `I
        ( "4",
          "unrecoverable flow failure (scheduling failed after the full recovery \
           ladder; for explore: every grid point failed, so the sweep produced an \
           empty frontier)." );
      `I
        ( "5",
          "interrupted sweep (SIGINT/SIGTERM or --deadline fired before every \
           point completed; the journal and partial renderings were flushed — \
           re-run with --resume to finish).  For serve: the daemon drained \
           with resumable work left in its journal.  For request: the daemon \
           answered overloaded, draining or partial — retry or resume." );
    ]
  in
  let info = Cmd.info "hlsc" ~version:"1.0.0" ~doc ~man in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_t; compare_t; slack_t; emit_t; explore_t; corpus_t; sweep_t;
            merge_journals_t; explain_t; diff_events_t; fuzz_t; dot_t; serve_t;
            request_t; top_t;
          ]))
