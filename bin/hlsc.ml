(* hlsc — command-line front end for the slackhls library.

   Subcommands:
     run      parse a behavioral source (or pick a built-in design), run a
              flow, print the schedule, allocation and area breakdown
     compare  run conventional and slack-based flows side by side
     slack    print the pre-schedule sequential-slack report
     emit     run a flow and write the Verilog rendering
     explore  IDCT design-space exploration (the paper's Table 4)
     dot      dump Graphviz renderings

   Every subcommand accepts --stats (per-phase telemetry report on stderr)
   and --trace FILE (Chrome trace-event JSON, loadable in Perfetto or
   chrome://tracing).  Any failing flow exits non-zero with the scheduler's
   failure diagnosis on stderr. *)

open Cmdliner

let lib_of = function
  | "default" | "virt90" -> Ok Library.default
  | "ideal" | "idealized" -> Ok Library.idealized
  | s -> Error (Printf.sprintf "unknown library %S (try: default, ideal)" s)

let builtin_designs =
  [
    ("interpolation", fun () ->
        let ip = Interpolation.unrolled () in
        (ip.Interpolation.dfg, Interpolation.clock));
    ("resizer", fun () ->
        let r = Resizer.full () in
        (r.Resizer.dfg, 4000.0));
    ("idct", fun () ->
        let d = Idct.build ~latency:12 ~passes:1 () in
        (d.Idct.dfg, 2500.0));
    ("fir8", fun () ->
        let f = Fir.build ~taps:8 ~latency:6 () in
        (f.Fir.dfg, 2500.0));
  ]

let load_design ~source ~builtin ~clock =
  match (source, builtin) with
  | Some path, None -> (
    try
      let p = Parser.parse_file path in
      let e = Elaborate.elaborate p in
      let clock = Option.value ~default:2500.0 clock in
      Ok (Hls.design ~name:p.Ast.proc_name ~clock e.Elaborate.dfg)
    with
    | Parser.Error { line; message } ->
      Error (Printf.sprintf "%s:%d: parse error: %s" path line message)
    | Lexer.Error { line; message } ->
      Error (Printf.sprintf "%s:%d: lex error: %s" path line message)
    | Elaborate.Error m -> Error (Printf.sprintf "%s: elaboration error: %s" path m)
    | Sys_error m -> Error m)
  | None, Some name -> (
    match List.assoc_opt name builtin_designs with
    | Some mk ->
      let dfg, default_clock = mk () in
      Ok (Hls.design ~name ~clock:(Option.value ~default:default_clock clock) dfg)
    | None ->
      Error
        (Printf.sprintf "unknown builtin %S (try: %s)" name
           (String.concat ", " (List.map fst builtin_designs))))
  | Some _, Some _ -> Error "pass either a source file or --design, not both"
  | None, None -> Error "pass a source file or --design NAME"

let flow_of = function
  | "conventional" | "conv" -> Ok Flows.Conventional
  | "slowest" | "slowest-first" -> Ok Flows.Slowest_first
  | "slack" | "slack-based" -> Ok Flows.Slack_based
  | s -> Error (Printf.sprintf "unknown flow %S (try: conventional, slowest, slack)" s)

(* Common options *)

let source_arg =
  Arg.(value & pos ~rev:false 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"Behavioral source file.")

let design_arg =
  Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Built-in design: interpolation, resizer, idct, fir8.")

let clock_arg =
  Arg.(value & opt (some float) None & info [ "clock"; "c" ] ~docv:"PS"
         ~doc:"Clock period in picoseconds.")

let lib_arg =
  Arg.(value & opt string "default" & info [ "library"; "l" ] ~docv:"LIB"
         ~doc:"Technology library: default (with interconnect overheads) or ideal.")

let flow_arg =
  Arg.(value & opt string "slack" & info [ "flow"; "f" ] ~docv:"FLOW"
         ~doc:"Scheduling flow: conventional, slowest or slack (default).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print a per-phase telemetry report (timings, counters, distributions) to stderr on exit.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON file on exit (open in Perfetto or chrome://tracing).")

(* Enable the requested telemetry sinks, run [k], then emit the report
   and/or trace file.  Emission happens even when [k] fails, so a failing
   flow still leaves its telemetry behind for diagnosis. *)
let with_obs ~stats ~trace k =
  if stats then Obs.enable_stats ();
  (match trace with Some _ -> Obs.enable_trace () | None -> ());
  let code = k () in
  if stats then prerr_string (Obs.report ());
  match trace with
  | None -> code
  | Some path -> (
    try
      Obs.write_trace ~path;
      Printf.eprintf "hlsc: wrote trace to %s\n" path;
      code
    with Sys_error m ->
      Printf.eprintf "hlsc: cannot write trace: %s\n" m;
      if code = 0 then 1 else code)

let ( let* ) = Result.bind

let fail m =
  Printf.eprintf "hlsc: %s\n" m;
  1

let report_result r =
  let sched = r.Hls.report.Flows.schedule in
  Format.printf "design %s: flow %s, clock %.0f ps@." r.Hls.design.Hls.design_name
    (Flows.flow_name r.Hls.report.Flows.flow)
    r.Hls.design.Hls.clock;
  Format.printf "%a@." Schedule.pp sched;
  Format.printf "%a@." Alloc.pp sched.Schedule.alloc;
  Format.printf "area: %a@." Area_model.pp_breakdown r.Hls.area;
  Format.printf "netlist: %a@." Netlist.pp_stats (Netlist.stats r.Hls.netlist);
  Format.printf "relaxations: %d, recovery re-grades: %d@." r.Hls.report.Flows.relaxations
    r.Hls.report.Flows.regrades

let run_cmd source builtin clock lib flow stats trace =
  with_obs ~stats ~trace @@ fun () ->
  let result =
    let* lib = lib_of lib in
    let* flow = flow_of flow in
    let* d = load_design ~source ~builtin ~clock in
    let* r = Result.map_error Flows.error_message (Hls.run ~lib flow d) in
    Ok (report_result r)
  in
  match result with Ok () -> 0 | Error m -> fail m

let compare_cmd source builtin clock lib stats trace =
  with_obs ~stats ~trace @@ fun () ->
  let result =
    let* lib = lib_of lib in
    let* d = load_design ~source ~builtin ~clock in
    let c = Hls.compare_flows ~lib d in
    let show label = function
      | Ok r ->
        Printf.printf "%s total area %.0f\n" label (Hls.total_area r);
        true
      | Error e ->
        Printf.printf "%s FAILED\n" label;
        Format.eprintf "hlsc: %s@." (Flows.error_message e);
        false
    in
    let ok_c = show "conventional:" c.Hls.conventional in
    let ok_s = show "slack-based: " c.Hls.slack_based in
    (match c.Hls.saving_pct with
    | Some s -> Printf.printf "saving: %.1f%%\n" s
    | None -> ());
    if ok_c && ok_s then Ok () else Error "one or more flows failed"
  in
  match result with Ok () -> 0 | Error m -> fail m

let slack_cmd source builtin clock lib stats trace =
  with_obs ~stats ~trace @@ fun () ->
  let result =
    let* lib = lib_of lib in
    let* d = load_design ~source ~builtin ~clock in
    let del o =
      let op = Dfg.op d.Hls.dfg o in
      match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
      | Some c -> Curve.min_delay c
      | None -> 0.0
    in
    let res = Hls.analyze_slack ~aligned:true d ~del in
    Printf.printf "aligned sequential slack at fastest grades (clock %.0f ps):\n"
      d.Hls.clock;
    Dfg.iter_ops d.Hls.dfg (fun op ->
        match op.Dfg.kind with
        | Dfg.Const _ -> ()
        | _ ->
          let i = Dfg.Op_id.to_int op.Dfg.id in
          Printf.printf "  %-16s arr %8.1f  req %8.1f  slack %8.1f\n" op.Dfg.name
            res.Slack.arr.(i) res.Slack.req.(i) res.Slack.slack.(i));
    Printf.printf "min slack: %.1f ps -> %s\n" res.Slack.min_slack
      (if Slack.feasible res then "feasible (Prop. 1)" else "INFEASIBLE: relax latency or clock");
    Ok ()
  in
  match result with Ok () -> 0 | Error m -> fail m

let emit_cmd source builtin clock lib flow output stats trace =
  with_obs ~stats ~trace @@ fun () ->
  let result =
    let* lib = lib_of lib in
    let* flow = flow_of flow in
    let* d = load_design ~source ~builtin ~clock in
    let* r = Result.map_error Flows.error_message (Hls.run ~lib flow d) in
    let path =
      Option.value ~default:(d.Hls.design_name ^ ".v") output
    in
    Verilog.write_file ~module_name:d.Hls.design_name r.Hls.netlist ~path;
    Printf.printf "wrote %s\n" path;
    Ok ()
  in
  match result with Ok () -> 0 | Error m -> fail m

let dot_cmd source builtin clock lib flow output stats trace =
  with_obs ~stats ~trace @@ fun () ->
  let result =
    let* lib = lib_of lib in
    let* flow = flow_of flow in
    let* d = load_design ~source ~builtin ~clock in
    let* r = Result.map_error Flows.error_message (Hls.run ~lib flow d) in
    let sched = r.Hls.report.Flows.schedule in
    let spans = Dfg.compute_spans d.Hls.dfg in
    let base = Option.value ~default:d.Hls.design_name output in
    let dump suffix contents =
      let path = base ^ suffix in
      Dot.write_file contents ~path;
      Printf.printf "wrote %s\n" path
    in
    dump ".cfg.dot" (Dot.cfg (Dfg.cfg d.Hls.dfg));
    dump ".dfg.dot" (Dot.dfg ~spans d.Hls.dfg);
    dump ".timed.dot" (Dot.timed_dfg (Timed_dfg.build d.Hls.dfg ~spans));
    dump ".sched.dot" (Dot.schedule sched);
    Ok ()
  in
  match result with Ok () -> 0 | Error m -> fail m

let explore_cmd lib stats trace =
  with_obs ~stats ~trace @@ fun () ->
  match lib_of lib with
  | Error m -> fail m
  | Ok lib ->
    let points =
      List.map
        (fun (p : Idct.design_point) ->
          let d = Idct.instantiate p in
          (p.Idct.id, Hls.design ?ii:p.Idct.ii ~name:d.Idct.name ~clock:p.Idct.clock d.Idct.dfg))
        Idct.table4_points
    in
    let rows = Hls.explore ~lib points in
    print_string (Hls.render_dse rows);
    let failed =
      List.filter (fun r -> r.Hls.a_conv = None || r.Hls.a_slack = None) rows
    in
    if failed = [] then 0
    else
      fail
        (Printf.sprintf "%d of %d exploration points failed (see table)"
           (List.length failed) (List.length rows))

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run one scheduling flow and print the result")
    Term.(const run_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg
          $ stats_arg $ trace_arg)

let compare_t =
  Cmd.v (Cmd.info "compare" ~doc:"Conventional vs slack-based, side by side")
    Term.(const compare_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg
          $ stats_arg $ trace_arg)

let slack_t =
  Cmd.v (Cmd.info "slack" ~doc:"Pre-schedule sequential-slack report")
    Term.(const slack_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg
          $ stats_arg $ trace_arg)

let output_arg =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Output Verilog path.")

let emit_t =
  Cmd.v (Cmd.info "emit" ~doc:"Run a flow and write the Verilog rendering")
    Term.(const emit_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg
          $ output_arg $ stats_arg $ trace_arg)

let explore_t =
  Cmd.v (Cmd.info "explore" ~doc:"IDCT design-space exploration (paper Table 4)")
    Term.(const explore_cmd $ lib_arg $ stats_arg $ trace_arg)

let dot_t =
  Cmd.v
    (Cmd.info "dot" ~doc:"Dump Graphviz renderings (CFG, DFG+spans, timed DFG, schedule)")
    Term.(const dot_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg
          $ output_arg $ stats_arg $ trace_arg)

let () =
  let doc = "slack-budgeting high-level synthesis (DATE 2012 reproduction)" in
  let info = Cmd.info "hlsc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ run_t; compare_t; slack_t; emit_t; explore_t; dot_t ]))
