(* Timed DFG construction, sequential slack (paper Table 3, numeric and
   symbolic), aligned slack, and the Bellman-Ford baseline agreement. *)

let rz = lazy (Resizer.table3 ())

let tdfg_of r =
  let spans = Dfg.compute_spans r.Resizer.dfg in
  Timed_dfg.build r.Resizer.dfg ~spans

(* Delay model of the Table 3 example: I/O ops take d, others take D. *)
let is_io r o =
  List.exists (Dfg.Op_id.equal o) [ r.Resizer.rd_a; r.Resizer.rd_b; r.Resizer.wr ]

let numeric_del r ~dd ~d o = if is_io r o then d else dd

let test_timed_dfg_weights () =
  let r = Lazy.force rz in
  let tdfg = tdfg_of r in
  let weight_between o1 o2 =
    List.assoc_opt (Timed_dfg.Op o2)
      (List.map (fun (n, w) -> (n, w)) (Timed_dfg.succs tdfg (Timed_dfg.Op o1)))
  in
  (* Figure 5(b): add->mul carries 1, sub->mux carries 1, mux->wr carries 1,
     same-frame edges carry 0. *)
  Alcotest.(check (option int)) "add->div" (Some 0) (weight_between r.Resizer.add r.Resizer.div);
  Alcotest.(check (option int)) "add->mul" (Some 1) (weight_between r.Resizer.add r.Resizer.mul);
  Alcotest.(check (option int)) "div->sub" (Some 0) (weight_between r.Resizer.div r.Resizer.sub);
  Alcotest.(check (option int)) "sub->mux" (Some 1) (weight_between r.Resizer.sub r.Resizer.mux);
  Alcotest.(check (option int)) "mul->mux" (Some 0) (weight_between r.Resizer.mul r.Resizer.mux);
  Alcotest.(check (option int)) "mux->wr" (Some 1) (weight_between r.Resizer.mux r.Resizer.wr);
  (* Every op has a sink. *)
  List.iter
    (fun o ->
      let has_sink =
        List.exists
          (fun (n, _) -> Timed_dfg.node_equal n (Timed_dfg.Sink o))
          (Timed_dfg.succs tdfg (Timed_dfg.Op o))
      in
      Alcotest.(check bool) "op has sink" true has_sink)
    (Timed_dfg.active_ops tdfg)

let test_table3_numeric () =
  let r = Lazy.force rz in
  let tdfg = tdfg_of r in
  let t = 10.0 and dd = 6.0 and d = 1.0 in
  (* Constraint D + d < T < 2D holds: 7 < 10 < 12. *)
  let res = Slack.analyze tdfg ~clock:t ~del:(numeric_del r ~dd ~d) in
  let check o expected msg =
    Alcotest.(check (float 1e-9)) msg expected (Slack.op_slack res o)
  in
  let s_main = (2. *. t) -. (4. *. dd) -. d in
  check r.Resizer.rd_a s_main "slack rd_a = 2T-4D-d";
  check r.Resizer.add s_main "slack add = 2T-4D-d";
  check r.Resizer.div s_main "slack div = 2T-4D-d";
  check r.Resizer.sub s_main "slack sub = 2T-4D-d";
  check r.Resizer.mux s_main "slack mux = 2T-4D-d";
  check r.Resizer.rd_b (t -. (2. *. dd) -. d) "slack rd_b = T-2D-d";
  check r.Resizer.mul (t -. (2. *. dd) -. d) "slack mul = T-2D-d";
  check r.Resizer.wr ((3. *. t) -. (4. *. dd) -. (2. *. d)) "slack wr = 3T-4D-2d";
  (* Arrival spot checks from Table 3. *)
  let arr o = res.Slack.arr.(Dfg.Op_id.to_int o) in
  Alcotest.(check (float 1e-9)) "arr rd_a" 0.0 (arr r.Resizer.rd_a);
  Alcotest.(check (float 1e-9)) "arr add" d (arr r.Resizer.add);
  Alcotest.(check (float 1e-9)) "arr sub" (d +. (2. *. dd)) (arr r.Resizer.sub);
  Alcotest.(check (float 1e-9)) "arr mux" (d +. (3. *. dd) -. t) (arr r.Resizer.mux);
  Alcotest.(check (float 1e-9)) "arr wr" (d +. (4. *. dd) -. (2. *. t)) (arr r.Resizer.wr)

let test_table3_critical_path () =
  let r = Lazy.force rz in
  let tdfg = tdfg_of r in
  let res = Slack.analyze tdfg ~clock:10.0 ~del:(numeric_del r ~dd:6.0 ~d:1.0) in
  let critical = Slack.critical_ops tdfg res in
  let names = List.map (fun o -> (Dfg.op r.Resizer.dfg o).Dfg.name) critical in
  Alcotest.(check (list string)) "critical path rd_a add div sub mux"
    [ "add"; "div"; "mux"; "rd_a"; "sub" ]
    (List.sort compare names);
  Alcotest.(check int) "five critical ops" 5 (List.length critical);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " critical") true (List.mem n names))
    [ "rd_a"; "add"; "div"; "sub"; "mux" ]

let test_table3_symbolic () =
  let r = Lazy.force rz in
  let tdfg = tdfg_of r in
  let tT = Affine.param "T" and dD = Affine.param "D" and dd = Affine.param "d" in
  let del o = if is_io r o then dd else dD in
  let res = Parametric.analyze tdfg ~clock:tT ~del ~samples:Resizer.table3_samples in
  let comb coefs =
    (* coefs = (cT, cD, cd) *)
    let ct, cd_, cdd = coefs in
    Affine.add
      (Affine.add (Affine.scale ct tT) (Affine.scale cd_ dD))
      (Affine.scale cdd dd)
  in
  let check_slack o coefs msg =
    let got = res.Parametric.slack.(Dfg.Op_id.to_int o) in
    let expected = comb coefs in
    Alcotest.(check string) msg
      (Affine.to_string ~order:[ "T"; "D"; "d" ] expected)
      (Affine.to_string ~order:[ "T"; "D"; "d" ] got)
  in
  check_slack r.Resizer.rd_a (2., -4., -1.) "slack(rd_a) = 2T - 4D - d";
  check_slack r.Resizer.add (2., -4., -1.) "slack(add) = 2T - 4D - d";
  check_slack r.Resizer.div (2., -4., -1.) "slack(div) = 2T - 4D - d";
  check_slack r.Resizer.sub (2., -4., -1.) "slack(sub) = 2T - 4D - d";
  check_slack r.Resizer.rd_b (1., -2., -1.) "slack(rd_b) = T - 2D - d";
  check_slack r.Resizer.mul (1., -2., -1.) "slack(mul) = T - 2D - d";
  check_slack r.Resizer.mux (2., -4., -1.) "slack(mux) = 2T - 4D - d";
  check_slack r.Resizer.wr (3., -4., -2.) "slack(wr) = 3T - 4D - 2d";
  (* Table 3 arrival formulas. *)
  let check_arr o coefs msg =
    let got = res.Parametric.arr.(Dfg.Op_id.to_int o) in
    Alcotest.(check string) msg
      (Affine.to_string ~order:[ "T"; "D"; "d" ] (comb coefs))
      (Affine.to_string ~order:[ "T"; "D"; "d" ] got)
  in
  check_arr r.Resizer.add (0., 0., 1.) "arr(add) = d";
  check_arr r.Resizer.div (0., 1., 1.) "arr(div) = D + d";
  check_arr r.Resizer.sub (0., 2., 1.) "arr(sub) = 2D + d";
  check_arr r.Resizer.mux (-1., 3., 1.) "arr(mux) = 3D + d - T";
  check_arr r.Resizer.wr (-2., 4., 1.) "arr(wr) = 4D + d - 2T";
  (* Symbolic critical path matches the paper. *)
  let critical = Parametric.critical_ops tdfg res ~samples:Resizer.table3_samples in
  Alcotest.(check int) "five critical ops" 5 (List.length critical)

let test_bf_agrees () =
  let r = Lazy.force rz in
  let tdfg = tdfg_of r in
  let del = numeric_del r ~dd:6.0 ~d:1.0 in
  let seq = Slack.analyze tdfg ~clock:10.0 ~del in
  let bf = Bf_timing.analyze tdfg ~clock:10.0 ~del in
  List.iter
    (fun o ->
      let i = Dfg.Op_id.to_int o in
      Alcotest.(check (float 1e-6)) "arr agrees" seq.Slack.arr.(i) bf.Slack.arr.(i);
      Alcotest.(check (float 1e-6)) "req agrees" seq.Slack.req.(i) bf.Slack.req.(i);
      Alcotest.(check (float 1e-6)) "slack agrees" seq.Slack.slack.(i) bf.Slack.slack.(i))
    (Timed_dfg.active_ops tdfg)

let test_alignment_primitives () =
  let t = 10.0 in
  Alcotest.(check (float 1e-9)) "push across boundary" 10.0
    (Slack.align_start ~clock:t ~delay:4.0 7.0);
  Alcotest.(check (float 1e-9)) "exact fit stays" 6.0
    (Slack.align_start ~clock:t ~delay:4.0 6.0);
  Alcotest.(check (float 1e-9)) "negative arrival pushes to zero" 0.0
    (Slack.align_start ~clock:t ~delay:4.0 (-3.0));
  Alcotest.(check (float 1e-9)) "required pulled back" 16.0
    (Slack.align_finish_constraint ~clock:t ~delay:4.0 17.0);
  Alcotest.(check (float 1e-9)) "required exact stays" 16.0
    (Slack.align_finish_constraint ~clock:t ~delay:4.0 16.0)

let test_aligned_slack_is_conservative () =
  let r = Lazy.force rz in
  let tdfg = tdfg_of r in
  let del = numeric_del r ~dd:6.0 ~d:1.0 in
  let raw = Slack.analyze tdfg ~clock:10.0 ~del in
  let ali = Slack.analyze ~aligned:true tdfg ~clock:10.0 ~del in
  List.iter
    (fun o ->
      let i = Dfg.Op_id.to_int o in
      Alcotest.(check bool) "aligned arr >= raw arr" true
        (ali.Slack.arr.(i) +. 1e-9 >= raw.Slack.arr.(i));
      Alcotest.(check bool) "aligned req <= raw req" true
        (ali.Slack.req.(i) -. 1e-9 <= raw.Slack.req.(i)))
    (Timed_dfg.active_ops tdfg)

let test_interpolation_aligned_chain () =
  (* With all muls at 550 and adds at 550, the unrolled interpolation fits
     its three cycles; at 560 it does not (two chained muls cross the
     boundary).  This is the crux of the Figure 2(d) optimum. *)
  let ip = Interpolation.unrolled () in
  let spans = Dfg.compute_spans ip.Interpolation.dfg in
  let tdfg = Timed_dfg.build ip.Interpolation.dfg ~spans in
  let del_at mul_delay o =
    let op = Dfg.op ip.Interpolation.dfg o in
    match op.Dfg.kind with
    | Dfg.Mul -> mul_delay
    | Dfg.Add -> 550.0
    | Dfg.Write _ | Dfg.Read _ -> 50.0
    | _ -> 100.0
  in
  let res550 =
    Slack.analyze ~aligned:true tdfg ~clock:Interpolation.clock ~del:(del_at 550.0)
  in
  Alcotest.(check bool) "550ps multipliers feasible" true (Slack.feasible res550);
  let res560 =
    Slack.analyze ~aligned:true tdfg ~clock:Interpolation.clock ~del:(del_at 560.0)
  in
  Alcotest.(check bool) "560ps multipliers infeasible" false (Slack.feasible res560);
  (* Without alignment the 560ps point looks (wrongly) feasible. *)
  let raw560 = Slack.analyze tdfg ~clock:Interpolation.clock ~del:(del_at 560.0) in
  Alcotest.(check bool) "raw slack misses the boundary effect" true
    (Slack.feasible raw560)

let prop_critical_path_equal_slack =
  (* Paper property: all ops on the critical path share the minimal slack.
     Check on the resizer across random delay assignments. *)
  QCheck.Test.make ~name:"critical ops share minimal slack" ~count:100
    QCheck.(pair (float_range 1.0 8.0) (float_range 0.1 2.0))
    (fun (dd, d) ->
      let r = Lazy.force rz in
      let tdfg = tdfg_of r in
      let t = Float.max (dd +. d +. 1.0) (1.6 *. dd) in
      let res = Slack.analyze tdfg ~clock:t ~del:(numeric_del r ~dd ~d) in
      let critical = Slack.critical_ops tdfg res in
      critical <> []
      && List.for_all
           (fun o -> Float.abs (Slack.op_slack res o -. res.Slack.min_slack) < 1e-6)
           critical)

let prop_slack_antimonotone_in_delay =
  (* Raising any single delay never increases any slack. *)
  QCheck.Test.make ~name:"slack anti-monotone in delays" ~count:100
    QCheck.(pair (int_range 0 7) (float_range 0.1 3.0))
    (fun (idx, bump) ->
      let r = Lazy.force rz in
      let tdfg = tdfg_of r in
      let base = numeric_del r ~dd:5.0 ~d:1.0 in
      let bumped o = if Dfg.Op_id.to_int o = idx then base o +. bump else base o in
      let res0 = Slack.analyze tdfg ~clock:12.0 ~del:base in
      let res1 = Slack.analyze tdfg ~clock:12.0 ~del:bumped in
      List.for_all
        (fun o ->
          Slack.op_slack res1 o <= Slack.op_slack res0 o +. 1e-9)
        (Timed_dfg.active_ops tdfg))

let suite =
  [
    Alcotest.test_case "timed DFG weights (fig 5b)" `Quick test_timed_dfg_weights;
    Alcotest.test_case "table 3 numeric slack" `Quick test_table3_numeric;
    Alcotest.test_case "table 3 critical path" `Quick test_table3_critical_path;
    Alcotest.test_case "table 3 symbolic slack" `Quick test_table3_symbolic;
    Alcotest.test_case "bellman-ford agrees with two-pass" `Quick test_bf_agrees;
    Alcotest.test_case "alignment primitives" `Quick test_alignment_primitives;
    Alcotest.test_case "aligned slack conservative" `Quick test_aligned_slack_is_conservative;
    Alcotest.test_case "interpolation aligned chain" `Quick test_interpolation_aligned_chain;
    QCheck_alcotest.to_alcotest prop_critical_path_equal_slack;
    QCheck_alcotest.to_alcotest prop_slack_antimonotone_in_delay;
  ]

let () = Alcotest.run "timing" [ ("timing", suite) ]
