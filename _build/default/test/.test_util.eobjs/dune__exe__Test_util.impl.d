test/test_util.ml: Alcotest Array Fun Id Interval List QCheck QCheck_alcotest Splitmix String Text_table Vec
