test/test_sched.ml: Alcotest Alloc Area_recovery Array Cfg Curve Dfg Float Flows Interpolation Library List Printf QCheck QCheck_alcotest Resizer Resource_kind Schedule String
