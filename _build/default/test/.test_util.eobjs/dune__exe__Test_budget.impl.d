test/test_budget.ml: Alcotest Array Budget Curve Dfg Float Interpolation Interval Library List Printf QCheck QCheck_alcotest Resizer Slack Timed_dfg
