test/test_tech.ml: Alcotest Curve Dfg Library List Printf QCheck QCheck_alcotest Resource_kind
