test/test_rtl.ml: Alcotest Alloc Area_model Dfg Filename Flows Interpolation Library List Netlist Resource_kind Schedule String Sys Verilog
