test/test_cfg.ml: Alcotest Array Cfg Gen Lazy List Printf QCheck QCheck_alcotest Resizer
