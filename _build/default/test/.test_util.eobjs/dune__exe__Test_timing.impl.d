test/test_timing.ml: Affine Alcotest Array Bf_timing Dfg Float Interpolation Lazy List Parametric QCheck QCheck_alcotest Resizer Slack Timed_dfg
