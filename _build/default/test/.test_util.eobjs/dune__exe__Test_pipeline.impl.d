test/test_pipeline.ml: Alcotest Alloc Area_model Array Dfg Fir Flows Idct Library List Printf QCheck QCheck_alcotest Resource_kind Schedule String
