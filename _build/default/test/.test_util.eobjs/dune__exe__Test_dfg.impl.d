test/test_dfg.ml: Alcotest Array Cfg Dfg Format Hashtbl Interpolation List QCheck QCheck_alcotest Resizer Splitmix
