test/test_workloads.ml: Alcotest Array Cfg Dfg Fir Flows Idct Interpolation Library List Printf QCheck QCheck_alcotest Random_design Schedule String Timed_dfg
