test/test_core.ml: Alcotest Cosim Elaborate Float Flows Hls Idct Library List Netlist Parser Printf Schedule Slack String
