test/test_frontend.ml: Alcotest Ast Cfg Dfg Elaborate Format Lexer List Parser QCheck QCheck_alcotest Splitmix Transform
