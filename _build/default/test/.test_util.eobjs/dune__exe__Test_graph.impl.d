test/test_graph.ml: Alcotest Array Bellman_ford Dag_paths Digraph Float Hashtbl List QCheck QCheck_alcotest Splitmix Traverse
