test/test_sim.ml: Alcotest Ast Behav_sim Cosim Dfg Dfg_sim Elaborate Flows Hashtbl Library List Parser QCheck QCheck_alcotest Wordops
