(* DFG construction, validation and operation spans (paper Figure 5(a)). *)

let span_testable =
  Alcotest.testable
    (fun ppf (e, l) -> Format.fprintf ppf "{e%d..e%d}" (Cfg.Edge_id.to_int e) (Cfg.Edge_id.to_int l))
    (fun (a, b) (c, d) -> Cfg.Edge_id.equal a c && Cfg.Edge_id.equal b d)

let check_span spans o ~early ~late msg =
  let s = spans.(Dfg.Op_id.to_int o) in
  Alcotest.check span_testable msg (early, late) (s.Dfg.early, s.Dfg.late)

let test_figure5_spans () =
  let r = Resizer.table3 () in
  let spans = Dfg.compute_spans r.Resizer.dfg in
  (* Paper: span(rd_a) = {e1}, span(add) = {e1}, span(div) = {e1,e2,e4},
     span(sub) = {e1,e2,e4}, span(rd_b) = {e5}, span(mul) = {e5},
     span(mux) = {e6}, span(wr) = {e7}. *)
  check_span spans r.Resizer.rd_a ~early:r.Resizer.e1 ~late:r.Resizer.e1 "rd_a";
  check_span spans r.Resizer.add ~early:r.Resizer.e1 ~late:r.Resizer.e1 "add";
  check_span spans r.Resizer.div ~early:r.Resizer.e1 ~late:r.Resizer.e4 "div";
  check_span spans r.Resizer.sub ~early:r.Resizer.e1 ~late:r.Resizer.e4 "sub";
  check_span spans r.Resizer.rd_b ~early:r.Resizer.e5 ~late:r.Resizer.e5 "rd_b";
  check_span spans r.Resizer.mul ~early:r.Resizer.e5 ~late:r.Resizer.e5 "mul";
  check_span spans r.Resizer.mux ~early:r.Resizer.e6 ~late:r.Resizer.e6 "mux";
  check_span spans r.Resizer.wr ~early:r.Resizer.e7 ~late:r.Resizer.e7 "wr";
  (* span(div) as an edge set. *)
  let div_edges = Dfg.span_edges r.Resizer.dfg spans.(Dfg.Op_id.to_int r.Resizer.div) in
  Alcotest.(check (list int)) "div span edges"
    (List.map Cfg.Edge_id.to_int [ r.Resizer.e1; r.Resizer.e2; r.Resizer.e4 ])
    (List.map Cfg.Edge_id.to_int div_edges)

let test_spans_with_pin () =
  let r = Resizer.table3 () in
  (* Pinning div on e4 shrinks nothing else here, but pinning it on e1
     constrains nothing upstream; pin sub on e4 and div's late stays e4. *)
  let pin o =
    if Dfg.Op_id.equal o r.Resizer.div then Some r.Resizer.e2 else None
  in
  let spans = Dfg.compute_spans ~pin r.Resizer.dfg in
  check_span spans r.Resizer.div ~early:r.Resizer.e2 ~late:r.Resizer.e2 "pinned div";
  (* sub's early must now respect div's pinned position. *)
  let s = spans.(Dfg.Op_id.to_int r.Resizer.sub) in
  Alcotest.(check bool) "sub early not before e2" true
    (Cfg.reaches r.Resizer.cfg r.Resizer.e2 s.Dfg.early)

let test_topo_order () =
  let r = Resizer.table3 () in
  let order = Dfg.topo_order r.Resizer.dfg in
  Alcotest.(check int) "all ops in order" (Dfg.op_count r.Resizer.dfg) (List.length order);
  let pos = Hashtbl.create 16 in
  List.iteri (fun i o -> Hashtbl.replace pos (Dfg.Op_id.to_int o) i) order;
  let p o = Hashtbl.find pos (Dfg.Op_id.to_int o) in
  Alcotest.(check bool) "rd_a before add" true (p r.Resizer.rd_a < p r.Resizer.add);
  Alcotest.(check bool) "mux before wr" true (p r.Resizer.mux < p r.Resizer.wr)

let test_loop_carried_excluded () =
  let r = Resizer.full () in
  (* The loop-carried i -> i dependency must not appear among forward
     deps, and the forward DFG must stay acyclic. *)
  let order = Dfg.topo_order r.Resizer.dfg in
  Alcotest.(check int) "topo covers all" (Dfg.op_count r.Resizer.dfg) (List.length order);
  Dfg.iter_ops r.Resizer.dfg (fun o ->
      List.iter
        (fun p -> if Dfg.Op_id.equal p o.Dfg.id then Alcotest.fail "forward self dep")
        (Dfg.preds r.Resizer.dfg o.Dfg.id))

let test_cyclic_forward_rejected () =
  let r = Resizer.table3 () in
  Dfg.add_dep r.Resizer.dfg ~src:r.Resizer.wr ~dst:r.Resizer.rd_a ();
  (match Dfg.validate r.Resizer.dfg with
  | () -> Alcotest.fail "cyclic forward DFG must be rejected"
  | exception Dfg.Malformed _ -> ())

let test_unrealizable_dep_rejected () =
  let r = Resizer.table3 () in
  (* mul (else branch) feeding sub (then branch) crosses no forward path. *)
  Dfg.add_dep r.Resizer.dfg ~src:r.Resizer.mul ~dst:r.Resizer.sub ();
  (match Dfg.validate r.Resizer.dfg with
  | () -> Alcotest.fail "cross-branch dep must be rejected"
  | exception Dfg.Malformed _ -> ())

let test_fixedness_defaults () =
  let r = Resizer.table3 () in
  let check o expected msg =
    Alcotest.(check bool) msg expected (Dfg.op r.Resizer.dfg o).Dfg.fixed
  in
  check r.Resizer.rd_a true "read fixed";
  check r.Resizer.wr true "write fixed";
  check r.Resizer.mux true "mux fixed";
  check r.Resizer.add false "add movable";
  check r.Resizer.div false "div movable"

let test_interpolation_spans () =
  let ip = Interpolation.unrolled () in
  let spans = Dfg.compute_spans ip.Interpolation.dfg in
  let e1 = ip.Interpolation.step_edges.(0) and e3 = ip.Interpolation.step_edges.(2) in
  (* First x multiplication can be anywhere in the three steps; the write
     is fixed on the last step edge. *)
  check_span spans ip.Interpolation.wr ~early:e3 ~late:e3 "wr fixed";
  let s0 = spans.(Dfg.Op_id.to_int ip.Interpolation.muls_x.(0)) in
  Alcotest.(check int) "mx1 early is step 0" (Cfg.Edge_id.to_int e1)
    (Cfg.Edge_id.to_int s0.Dfg.early);
  Alcotest.(check int) "mx1 late is step 2" (Cfg.Edge_id.to_int e3)
    (Cfg.Edge_id.to_int s0.Dfg.late);
  (* Last add must not move past the write's edge. *)
  let s_a4 = spans.(Dfg.Op_id.to_int ip.Interpolation.adds.(3)) in
  Alcotest.(check int) "a4 late bounded by wr" (Cfg.Edge_id.to_int e3)
    (Cfg.Edge_id.to_int s_a4.Dfg.late)

let prop_span_contains_consistent_window =
  (* On random linear-chain DFGs over a linear CFG, every span satisfies
     early reaches late, and spans of dependent ops are ordered. *)
  QCheck.Test.make ~name:"span windows are ordered along chains" ~count:60
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let rng = Splitmix.create seed in
      let n_states = 2 + Splitmix.int rng 4 in
      let cfg = Cfg.create () in
      let prev = ref (Cfg.start cfg) in
      let edges = ref [] in
      for _ = 1 to n_states do
        let s = Cfg.add_node cfg Cfg.State in
        edges := Cfg.add_edge cfg !prev s :: !edges;
        prev := s
      done;
      let ex = Cfg.add_node cfg Cfg.Exit in
      edges := Cfg.add_edge cfg !prev ex :: !edges;
      Cfg.seal cfg;
      let edges = Array.of_list (List.rev !edges) in
      let dfg = Dfg.create cfg in
      let n_ops = 2 + Splitmix.int rng 8 in
      let ops =
        Array.init n_ops (fun i ->
            let birth = edges.(Splitmix.int rng (Array.length edges)) in
            let fixed = i = 0 || i = n_ops - 1 in
            Dfg.add_op dfg ~kind:Dfg.Add ~width:8 ~birth ~fixed ())
      in
      (* Chain deps in birth-step order to stay realizable. *)
      let by_step =
        Array.to_list ops
        |> List.sort (fun a b ->
               compare
                 (Cfg.state_of_edge cfg (Dfg.op dfg a).Dfg.birth)
                 (Cfg.state_of_edge cfg (Dfg.op dfg b).Dfg.birth))
      in
      let rec chain = function
        | a :: (b :: _ as rest) ->
          Dfg.add_dep dfg ~src:a ~dst:b ();
          chain rest
        | [ _ ] | [] -> ()
      in
      chain by_step;
      Dfg.validate dfg;
      let spans = Dfg.compute_spans dfg in
      Array.for_all
        (fun s -> Cfg.reaches cfg s.Dfg.early s.Dfg.late)
        spans
      &&
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          let sa = spans.(Dfg.Op_id.to_int a) and sb = spans.(Dfg.Op_id.to_int b) in
          Cfg.reaches cfg sa.Dfg.early sb.Dfg.early && ordered rest
        | [ _ ] | [] -> true
      in
      ordered by_step)

let suite =
  [
    Alcotest.test_case "figure 5(a) spans" `Quick test_figure5_spans;
    Alcotest.test_case "spans with pinning" `Quick test_spans_with_pin;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "loop-carried deps excluded" `Quick test_loop_carried_excluded;
    Alcotest.test_case "cyclic forward DFG rejected" `Quick test_cyclic_forward_rejected;
    Alcotest.test_case "unrealizable dep rejected" `Quick test_unrealizable_dep_rejected;
    Alcotest.test_case "fixedness defaults" `Quick test_fixedness_defaults;
    Alcotest.test_case "interpolation spans" `Quick test_interpolation_spans;
    QCheck_alcotest.to_alcotest prop_span_contains_consistent_window;
  ]

let () = Alcotest.run "dfg" [ ("dfg", suite) ]
