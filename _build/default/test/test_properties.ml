(* Cross-module properties: random behavioral programs are generated,
   compiled through the whole pipeline, and checked against system-level
   invariants — the fuzzing counterpart to the per-module suites. *)

(* ------------------------------------------------------------------ *)
(* Random program generator. *)

let gen_program seed =
  let rng = Splitmix.create seed in
  let n_vars = 2 + Splitmix.int rng 3 in
  let vars = List.init n_vars (fun i -> Printf.sprintf "v%d" i) in
  let in_ports = [ "pa"; "pb" ] and out_ports = [ "qa"; "qb" ] in
  let rec gen_expr depth =
    if depth = 0 || Splitmix.int rng 4 = 0 then
      match Splitmix.int rng 3 with
      | 0 -> Ast.Int (Splitmix.int rng 200)
      | 1 -> Ast.Var (Splitmix.choose rng (Array.of_list vars))
      | _ -> Ast.Read (Splitmix.choose rng (Array.of_list in_ports))
    else begin
      let ops =
        [| Ast.Badd; Ast.Bsub; Ast.Bmul; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Blt; Ast.Bgt;
           Ast.Bdiv |]
      in
      Ast.Binop (Splitmix.choose rng ops, gen_expr (depth - 1), gen_expr (depth - 1))
    end
  in
  let rec gen_stmts depth budget =
    if budget <= 0 then []
    else begin
      let s =
        match Splitmix.int rng (if depth > 0 then 6 else 4) with
        | 0 | 1 ->
          Ast.Assign (Splitmix.choose rng (Array.of_list vars), gen_expr 2)
        | 2 -> Ast.Write (Splitmix.choose rng (Array.of_list out_ports), gen_expr 2)
        | 3 -> Ast.Wait
        | 4 ->
          Ast.If
            ( gen_expr 1,
              Ast.Wait :: gen_stmts (depth - 1) (budget / 2),
              Ast.Wait :: gen_stmts (depth - 1) (budget / 2) )
        | _ ->
          Ast.For
            {
              index = "k";
              from_ = 0;
              below = 1 + Splitmix.int rng 2;
              body = gen_stmts (depth - 1) (budget / 2) @ [ Ast.Wait ];
            }
      in
      s :: gen_stmts depth (budget - 1)
    end
  in
  {
    Ast.proc_name = Printf.sprintf "fuzz%d" seed;
    ports =
      List.map (fun p -> { Ast.port = p; width = 12; is_input = true }) in_ports
      @ List.map (fun p -> { Ast.port = p; width = 16; is_input = false }) out_ports;
    vars = List.map (fun v -> { Ast.var = v; vwidth = 14 }) vars;
    (* Guarantee at least one state and one observable write per iteration. *)
    body =
      gen_stmts 2 (3 + Splitmix.int rng 6)
      @ [ Ast.Wait; Ast.Write ("qa", gen_expr 2) ];
  }

let try_elaborate p =
  match Elaborate.elaborate p with
  | e -> Some e
  | exception Elaborate.Error _ -> None (* e.g. constant division by zero *)

(* ------------------------------------------------------------------ *)
(* Properties. *)

let prop_fuzz_cosim =
  QCheck.Test.make ~name:"random programs: interpreter == elaborated design" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match try_elaborate (gen_program seed) with
      | None -> true
      | Some e -> (Cosim.check ~iterations:24 ~seed e).Cosim.mismatches = [])

let prop_fuzz_schedule_cosim =
  QCheck.Test.make ~name:"random programs: schedules preserve semantics" ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match try_elaborate (gen_program seed) with
      | None -> true
      | Some e -> (
        match Flows.run Flows.Slack_based e.Elaborate.dfg ~lib:Library.default ~clock:5000.0 with
        | Error _ -> true (* some fuzz programs are legitimately overconstrained *)
        | Ok r ->
          (Cosim.check ~schedule:r.Flows.schedule ~iterations:16 ~seed e).Cosim.mismatches = []))

let prop_fuzz_spans_well_formed =
  QCheck.Test.make ~name:"random programs: spans are consistent windows" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match try_elaborate (gen_program seed) with
      | None -> true
      | Some e ->
        let cfg = e.Elaborate.cfg in
        let spans = Dfg.compute_spans e.Elaborate.dfg in
        Array.for_all
          (fun s ->
            Cfg.reaches cfg s.Dfg.early s.Dfg.late
            && (not (Cfg.is_backward cfg s.Dfg.early))
            && not (Cfg.is_backward cfg s.Dfg.late))
          spans)

let prop_fuzz_slack_bf_agree =
  QCheck.Test.make ~name:"random programs: two-pass == bellman-ford slack" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match try_elaborate (gen_program seed) with
      | None -> true
      | Some e ->
        let spans = Dfg.compute_spans e.Elaborate.dfg in
        let tdfg = Timed_dfg.build e.Elaborate.dfg ~spans in
        let del o = float_of_int (50 + (Dfg.Op_id.to_int o * 7 mod 300)) in
        let a = Slack.analyze tdfg ~clock:1000.0 ~del in
        let b = Bf_timing.analyze tdfg ~clock:1000.0 ~del in
        List.for_all
          (fun o ->
            Float.abs (Slack.op_slack a o -. Slack.op_slack b o) < 1e-6)
          (Timed_dfg.active_ops tdfg))

let prop_fuzz_budget_verifies =
  QCheck.Test.make ~name:"random programs: budgets verify when feasible" ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match try_elaborate (gen_program seed) with
      | None -> true
      | Some e ->
        let lib = Library.default in
        let dfg = e.Elaborate.dfg in
        let clock = 3000.0 in
        let spans = Dfg.compute_spans dfg in
        let tdfg = Timed_dfg.build dfg ~spans in
        let ranges o =
          let op = Dfg.op dfg o in
          match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
          | Some c ->
            let lo = Curve.min_delay c in
            Interval.make lo (Float.max lo (Float.min (Curve.max_delay c) clock))
          | None -> Interval.point 0.0
        in
        let sens o d =
          let op = Dfg.op dfg o in
          match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
          | Some c -> Curve.sensitivity c d
          | None -> 0.0
        in
        (match Budget.run tdfg ~clock ~ranges ~sensitivity:sens with
        | Budget.Infeasible _ -> true
        | Budget.Feasible delays ->
          Slack.feasible
            (Slack.analyze ~aligned:true tdfg ~clock ~del:(fun o ->
                 delays.(Dfg.Op_id.to_int o)))))

let prop_fuzz_area_recovery_monotone =
  QCheck.Test.make ~name:"random programs: area recovery never grows area" ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match try_elaborate (gen_program seed) with
      | None -> true
      | Some e -> (
        let config = { Flows.default_config with Flows.recover_area = false } in
        match Flows.run ~config Flows.Conventional e.Elaborate.dfg ~lib:Library.default ~clock:4000.0 with
        | Error _ -> true
        | Ok r ->
          let before = Alloc.fu_area r.Flows.schedule.Schedule.alloc in
          ignore (Area_recovery.run r.Flows.schedule);
          let after = Alloc.fu_area r.Flows.schedule.Schedule.alloc in
          after <= before +. 1e-6))

let prop_fuzz_verilog_emits =
  QCheck.Test.make ~name:"random programs: verilog emission total" ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match try_elaborate (gen_program seed) with
      | None -> true
      | Some e -> (
        match Flows.run Flows.Slack_based e.Elaborate.dfg ~lib:Library.default ~clock:5000.0 with
        | Error _ -> true
        | Ok r ->
          let v = Verilog.emit (Netlist.build r.Flows.schedule) in
          String.length v > 100))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fuzz_cosim;
    QCheck_alcotest.to_alcotest prop_fuzz_schedule_cosim;
    QCheck_alcotest.to_alcotest prop_fuzz_spans_well_formed;
    QCheck_alcotest.to_alcotest prop_fuzz_slack_bf_agree;
    QCheck_alcotest.to_alcotest prop_fuzz_budget_verifies;
    QCheck_alcotest.to_alcotest prop_fuzz_area_recovery_monotone;
    QCheck_alcotest.to_alcotest prop_fuzz_verilog_emits;
  ]

let () = Alcotest.run "properties" [ ("properties", suite) ]
