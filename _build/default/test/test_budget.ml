(* Slack budgeting (paper Figure 7): feasibility detection, range respect,
   and the interpolation optimum (Figure 2(d): 550 ps muls and adds). *)

let lib = Library.idealized

let interpolation_setup () =
  let ip = Interpolation.unrolled () in
  let dfg = ip.Interpolation.dfg in
  let spans = Dfg.compute_spans dfg in
  let tdfg = Timed_dfg.build dfg ~spans in
  let clock = Interpolation.clock in
  let ranges o =
    let op = Dfg.op dfg o in
    match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
    | Some c ->
      let lo = Curve.min_delay c in
      let hi = Float.min (Curve.max_delay c) clock in
      Interval.make lo (Float.max lo hi)
    | None -> Interval.point 0.0
  in
  let sensitivity o d =
    let op = Dfg.op dfg o in
    match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
    | Some c -> Curve.sensitivity c d
    | None -> 0.0
  in
  (ip, tdfg, clock, ranges, sensitivity)

let test_interpolation_budget_finds_550 () =
  let ip, tdfg, clock, ranges, sensitivity = interpolation_setup () in
  match Budget.run tdfg ~clock ~ranges ~sensitivity with
  | Budget.Infeasible _ -> Alcotest.fail "interpolation is feasible"
  | Budget.Feasible delays ->
    (* Every x-chain multiplication must have been slowed well off the
       430 ps fastest point (the budget exploits the 3-cycle window), and
       the adders settle at the paper's 550 ps grade: the accumulation
       chain a1..a4 leaves exactly two adds per cycle. *)
    let dx i = delays.(Dfg.Op_id.to_int ip.Interpolation.muls_x.(i)) in
    for i = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "mx%d at %.0f in (470, 610]" (i + 1) (dx i))
        true
        (dx i > 470.0 && dx i <= 610.0)
    done;
    Array.iter
      (fun o ->
        let d = delays.(Dfg.Op_id.to_int o) in
        Alcotest.(check (float 56.0)) "adder near 550 ps" 550.0 d)
      ip.Interpolation.adds;
    (* Verification: the budgeted delays must be aligned-feasible. *)
    let res =
      Slack.analyze ~aligned:true tdfg ~clock ~del:(fun o ->
          delays.(Dfg.Op_id.to_int o))
    in
    Alcotest.(check bool) "budget verifies" true (Slack.feasible res);
    (* Area at the budget should be close to the paper's 2180-unit optimum
       (FU area only, interpolated curves): strictly below the fastest
       allocation's 3408. *)
    let area =
      List.fold_left
        (fun acc o ->
          let op = Dfg.op ip.Interpolation.dfg o in
          match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
          | Some c -> acc +. Curve.area_at c delays.(Dfg.Op_id.to_int o)
          | None -> acc)
        0.0
        (Interpolation.all_muls ip @ Interpolation.all_adds ip)
    in
    (* 7 muls + 4 adds at budgeted delays; the paper's Table 2 counts only
       the 3+2 shared instances, so compare against per-op bounds: fastest
       would be 7*878 + 4*556 = 8370. *)
    Alcotest.(check bool)
      (Printf.sprintf "budgeted FU area %.0f well below fastest 8370" area)
      true (area < 6500.0)

let test_budget_respects_ranges () =
  let _, tdfg, clock, ranges, sensitivity = interpolation_setup () in
  match Budget.run tdfg ~clock ~ranges ~sensitivity with
  | Budget.Infeasible _ -> Alcotest.fail "feasible design"
  | Budget.Feasible delays ->
    List.iter
      (fun o ->
        let d = delays.(Dfg.Op_id.to_int o) in
        let r = ranges o in
        Alcotest.(check bool) "delay within range" true (Interval.mem d r))
      (Timed_dfg.active_ops tdfg)

let test_budget_infeasible_reported () =
  let _, tdfg, _, ranges, sensitivity = interpolation_setup () in
  (* A 600 ps clock cannot fit even the fastest resources: the write chain
     needs 4 muls in 3 cycles -> two muls chained in one 600 ps cycle is
     impossible at 430 ps each. *)
  match Budget.run tdfg ~clock:600.0 ~ranges ~sensitivity with
  | Budget.Feasible _ -> Alcotest.fail "600 ps must be infeasible"
  | Budget.Infeasible inf ->
    Alcotest.(check bool) "critical ops reported" true (inf.Budget.critical <> []);
    Alcotest.(check bool) "negative slack recorded" true
      (inf.Budget.slack_at_min.Slack.min_slack < 0.0)

let test_lambda_knob_monotone () =
  let _, tdfg, clock, ranges, _ = interpolation_setup () in
  let feasible_at lambda =
    let delays = Budget.delays_at ~lambda tdfg ~ranges in
    Slack.feasible
      (Slack.analyze ~aligned:true tdfg ~clock ~del:(fun o ->
           delays.(Dfg.Op_id.to_int o)))
  in
  (* Once infeasible, stays infeasible as lambda grows. *)
  let states = List.map feasible_at [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  let rec no_flip_back seen_false = function
    | [] -> true
    | true :: _ when seen_false -> false
    | b :: rest -> no_flip_back (seen_false || not b) rest
  in
  Alcotest.(check bool) "feasibility monotone in lambda" true (no_flip_back false states);
  Alcotest.(check bool) "lambda=0 feasible" true (List.hd states)

let test_resizer_budget_full_range () =
  (* With a very generous clock the budget should push every movable op to
     its slowest implementation. *)
  let r = Resizer.table3 () in
  let dfg = r.Resizer.dfg in
  let spans = Dfg.compute_spans dfg in
  let tdfg = Timed_dfg.build dfg ~spans in
  let clock = 50000.0 in
  let ranges o =
    let op = Dfg.op dfg o in
    match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
    | Some c -> Curve.delay_range c
    | None -> Interval.point 0.0
  in
  let sensitivity o d =
    let op = Dfg.op dfg o in
    match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
    | Some c -> Curve.sensitivity c d
    | None -> 0.0
  in
  match Budget.run tdfg ~clock ~ranges ~sensitivity with
  | Budget.Infeasible _ -> Alcotest.fail "huge clock must be feasible"
  | Budget.Feasible delays ->
    List.iter
      (fun o ->
        let d = delays.(Dfg.Op_id.to_int o) in
        let r' = ranges o in
        Alcotest.(check (float 1.0))
          ((Dfg.op dfg o).Dfg.name ^ " at slowest")
          (Interval.hi r') d)
      (Timed_dfg.active_ops tdfg)

let prop_budget_always_verifies =
  (* Budgeting output must always pass aligned verification, across clocks. *)
  QCheck.Test.make ~name:"budget output verifies" ~count:25
    QCheck.(float_range 900.0 4000.0)
    (fun clock ->
      let _, tdfg, _, _, sensitivity = interpolation_setup () in
      let dfg = Timed_dfg.dfg tdfg in
      let ranges o =
        let op = Dfg.op dfg o in
        match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
        | Some c ->
          let lo = Curve.min_delay c in
          Interval.make lo (Float.max lo (Float.min (Curve.max_delay c) clock))
        | None -> Interval.point 0.0
      in
      match Budget.run tdfg ~clock ~ranges ~sensitivity with
      | Budget.Infeasible _ -> true
      | Budget.Feasible delays ->
        Slack.feasible
          (Slack.analyze ~aligned:true tdfg ~clock ~del:(fun o ->
               delays.(Dfg.Op_id.to_int o))))

let suite =
  [
    Alcotest.test_case "interpolation budget ~550ps" `Quick test_interpolation_budget_finds_550;
    Alcotest.test_case "ranges respected" `Quick test_budget_respects_ranges;
    Alcotest.test_case "infeasible reported" `Quick test_budget_infeasible_reported;
    Alcotest.test_case "lambda knob monotone" `Quick test_lambda_knob_monotone;
    Alcotest.test_case "generous clock slows everything" `Quick test_resizer_budget_full_range;
    QCheck_alcotest.to_alcotest prop_budget_always_verifies;
  ]

let () = Alcotest.run "budget" [ ("budget", suite) ]
