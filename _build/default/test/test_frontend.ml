(* Front end: lexer, parser, transforms, and elaboration structure. *)

let resizer_src = {|
process resizer {
  port in a : 16;
  port in b : 16;
  port out y : 16;
  var x : 16;
  var r : 16;
  loop {
    x = read(a) + 100;
    if (x > 50) { wait; r = x / 3 - 100; }
    else { wait; r = x * read(b); }
    wait;
    write(y, r);
  }
}
|}

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "process p { var x : 16; loop { x = x + 1; } }") in
  Alcotest.(check bool) "starts with process" true (List.hd toks = Lexer.KW_PROCESS);
  Alcotest.(check bool) "ends with eof" true (List.nth toks (List.length toks - 1) = Lexer.EOF)

let test_lexer_comments () =
  let toks = Lexer.tokenize "// line\n/* block\nspanning */ process" in
  Alcotest.(check int) "comments skipped" 2 (List.length toks);
  (match Lexer.tokenize "/* unterminated" with
  | _ -> Alcotest.fail "unterminated comment"
  | exception Lexer.Error _ -> ());
  (match Lexer.tokenize "process @ x" with
  | _ -> Alcotest.fail "illegal char"
  | exception Lexer.Error { line = 1; _ } -> ()
  | exception Lexer.Error _ -> Alcotest.fail "wrong line")

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\nc" in
  match toks with
  | [ (_, 1); (_, 2); (_, 3); (Lexer.EOF, _) ] -> ()
  | _ -> Alcotest.fail "line numbers wrong"

let test_parser_roundtrip () =
  let p = Parser.parse resizer_src in
  Alcotest.(check string) "name" "resizer" p.Ast.proc_name;
  Alcotest.(check int) "ports" 3 (List.length p.Ast.ports);
  Alcotest.(check int) "vars" 2 (List.length p.Ast.vars);
  (* Re-print and re-parse: must round-trip structurally. *)
  let printed = Format.asprintf "%a" Ast.pp_process p in
  let p2 = Parser.parse printed in
  Alcotest.(check string) "round-trip name" p.Ast.proc_name p2.Ast.proc_name;
  Alcotest.(check int) "round-trip stmt count"
    (Transform.count_statements p.Ast.body)
    (Transform.count_statements p2.Ast.body)

let test_parser_precedence () =
  let p = Parser.parse
      "process p { port out o : 16; loop { write(o, 1 + 2 * 3 < 4 | 5); wait; } }"
  in
  match p.Ast.body with
  | [ Ast.Write (_, e); Ast.Wait ] ->
    (* | binds loosest: (((1 + (2*3)) < 4) | 5) *)
    (match e with
    | Ast.Binop (Ast.Bor, Ast.Binop (Ast.Blt, Ast.Binop (Ast.Badd, _, _), _), Ast.Int 5) -> ()
    | _ -> Alcotest.failf "wrong parse: %s" (Format.asprintf "%a" Ast.pp_expr e))
  | _ -> Alcotest.fail "unexpected body"

let test_parser_errors () =
  let bad = [
    "process { }";                         (* missing name *)
    "process p { loop { x = ; } }";        (* missing expr *)
    "process p { loop { wait } }";         (* missing semicolon *)
    "process p { loop { for (i = 0; j < 3; i++) {} } }"; (* index mismatch *)
  ] in
  List.iter
    (fun src ->
      match Parser.parse src with
      | _ -> Alcotest.failf "should fail: %s" src
      | exception Parser.Error _ -> ()
      | exception Lexer.Error _ -> ())
    bad

let test_unroll () =
  let body =
    [ Ast.For
        { index = "i"; from_ = 0; below = 3;
          body = [ Ast.Assign ("x", Ast.Binop (Ast.Badd, Ast.Var "x", Ast.Var "i")) ] } ]
  in
  match Transform.unroll body with
  | [ Ast.Assign (_, e0); Ast.Assign (_, e1); Ast.Assign (_, e2) ] ->
    let expect k e =
      match e with
      | Ast.Binop (Ast.Badd, Ast.Var "x", Ast.Int v) -> Alcotest.(check int) "index" k v
      | _ -> Alcotest.fail "bad substitution"
    in
    expect 0 e0;
    expect 1 e1;
    expect 2 e2
  | _ -> Alcotest.fail "unroll shape"

let test_unroll_nested () =
  let body =
    [ Ast.For
        { index = "i"; from_ = 0; below = 2;
          body =
            [ Ast.For
                { index = "j"; from_ = 0; below = 2;
                  body = [ Ast.Assign ("x", Ast.Binop (Ast.Bmul, Ast.Var "i", Ast.Var "j")) ] } ] } ]
  in
  Alcotest.(check int) "4 copies" 4 (List.length (Transform.unroll body))

let test_unroll_empty_rejected () =
  let body = [ Ast.For { index = "i"; from_ = 3; below = 3; body = [ Ast.Wait ] } ] in
  match Transform.unroll body with
  | _ -> Alcotest.fail "empty loop must be rejected"
  | exception Invalid_argument _ -> ()

let test_states_in () =
  let p = Parser.parse resizer_src in
  Alcotest.(check int) "two states per iteration" 2 (Transform.states_in p.Ast.body)

let test_elaborate_structure () =
  let e = Elaborate.elaborate (Parser.parse resizer_src) in
  (* Figure 4 structure: fork, join, three states (one per branch + final). *)
  let kinds = ref [] in
  for i = 0 to Cfg.node_count e.Elaborate.cfg - 1 do
    kinds := Cfg.node_kind e.Elaborate.cfg (Cfg.Node_id.of_int i) :: !kinds
  done;
  let count k = List.length (List.filter (( = ) k) !kinds) in
  Alcotest.(check int) "one fork" 1 (count Cfg.Fork);
  Alcotest.(check int) "one join" 1 (count Cfg.Join);
  Alcotest.(check int) "three states" 3 (count Cfg.State);
  (* One mux for r (the only divergent variable). *)
  let muxes = ref 0 in
  Dfg.iter_ops e.Elaborate.dfg (fun o -> if o.Dfg.kind = Dfg.Mux then incr muxes);
  Alcotest.(check int) "one mux" 1 !muxes;
  (* The branch condition is fixed. *)
  Dfg.iter_ops e.Elaborate.dfg (fun o ->
      match o.Dfg.kind with
      | Dfg.Cmp _ -> Alcotest.(check bool) "cmp fixed" true o.Dfg.fixed
      | _ -> ())

let test_elaborate_errors () =
  let cases =
    [
      ("undeclared var", "process p { port out o:8; loop { x = 1; wait; } }");
      ("undeclared port", "process p { var x:8; loop { x = read(q); wait; } }");
      ("write to input", "process p { port in i:8; loop { write(i, 1); wait; } }");
      ("read from output", "process p { port out o:8; var x:8; loop { x = read(o); wait; } }");
      ("no state in loop", "process p { port out o:8; loop { write(o, 1); } }");
      ("const div by zero", "process p { port out o:8; loop { write(o, 1 / 0); wait; } }");
      ("duplicate var", "process p { var x:8; var x:8; port out o:8; loop { wait; write(o,1); } }");
    ]
  in
  List.iter
    (fun (name, src) ->
      match Elaborate.elaborate (Parser.parse src) with
      | _ -> Alcotest.failf "%s must fail" name
      | exception Elaborate.Error _ -> ())
    cases

let test_operand_table () =
  let e = Elaborate.elaborate (Parser.parse resizer_src) in
  (* Every non-read op has as many operands recorded as its arity. *)
  Dfg.iter_ops e.Elaborate.dfg (fun o ->
      let n = List.length (Elaborate.operands_of e o.Dfg.id) in
      match o.Dfg.kind with
      | Dfg.Read _ -> Alcotest.(check int) "read has no operands" 0 n
      | Dfg.Write _ -> Alcotest.(check int) "write has one" 1 n
      | Dfg.Mux -> Alcotest.(check int) "mux has three" 3 n
      | Dfg.Add | Dfg.Sub | Dfg.Mul | Dfg.Div | Dfg.Cmp _ ->
        Alcotest.(check int) (o.Dfg.name ^ " binary") 2 n
      | _ -> ())

let test_step_edges_recorded () =
  let e = Elaborate.elaborate (Parser.parse resizer_src) in
  Alcotest.(check bool) "step edges recorded" true (e.Elaborate.step_edges <> [])

let prop_random_exprs_parse =
  (* Printing a random expression and parsing it back preserves structure
     (tests the precedence table both ways). *)
  let rec gen_expr rng depth =
    if depth = 0 || Splitmix.int rng 3 = 0 then
      if Splitmix.bool rng then Ast.Int (Splitmix.int rng 100) else Ast.Var "x"
    else begin
      let ops =
        [| Ast.Badd; Ast.Bsub; Ast.Bmul; Ast.Bdiv; Ast.Blt; Ast.Band; Ast.Bor; Ast.Bxor;
           Ast.Bshl |]
      in
      Ast.Binop (Splitmix.choose rng ops, gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    end
  in
  QCheck.Test.make ~name:"expression print/parse round-trip" ~count:100
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let rng = Splitmix.create seed in
      let e = gen_expr rng 4 in
      let src =
        Format.asprintf
          "process p { port out o : 16; var x : 16; loop { write(o, %a); wait; } }"
          Ast.pp_expr e
      in
      let p = Parser.parse src in
      match p.Ast.body with
      | [ Ast.Write (_, e'); Ast.Wait ] -> e = e'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer comments and errors" `Quick test_lexer_comments;
    Alcotest.test_case "lexer line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "parser round-trip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "unroll" `Quick test_unroll;
    Alcotest.test_case "unroll nested" `Quick test_unroll_nested;
    Alcotest.test_case "unroll empty rejected" `Quick test_unroll_empty_rejected;
    Alcotest.test_case "states_in" `Quick test_states_in;
    Alcotest.test_case "elaborate structure (fig 4)" `Quick test_elaborate_structure;
    Alcotest.test_case "elaborate errors" `Quick test_elaborate_errors;
    Alcotest.test_case "operand table" `Quick test_operand_table;
    Alcotest.test_case "step edges recorded" `Quick test_step_edges_recorded;
    QCheck_alcotest.to_alcotest prop_random_exprs_parse;
  ]

let () = Alcotest.run "frontend" [ ("frontend", suite) ]
