(* Digraph, traversal, DAG paths and Bellman-Ford. *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = Digraph.create () in
  let a = Digraph.add_node g in
  let b = Digraph.add_node g in
  let c = Digraph.add_node g in
  let d = Digraph.add_node g in
  Digraph.add_edge g a b;
  Digraph.add_edge g a c;
  Digraph.add_edge g b d;
  Digraph.add_edge g c d;
  (g, a, b, c, d)

let test_digraph_basics () =
  let g, a, b, c, d = diamond () in
  Alcotest.(check int) "nodes" 4 (Digraph.node_count g);
  Alcotest.(check int) "edges" 4 (Digraph.edge_count g);
  Alcotest.(check (list int)) "succs a" [ b; c ] (Digraph.succs g a);
  Alcotest.(check (list int)) "preds d" [ b; c ] (Digraph.preds g d);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g a b);
  Alcotest.(check bool) "not mem" false (Digraph.mem_edge g b a);
  let r = Digraph.reverse g in
  Alcotest.(check (list int)) "reverse succs d" [ b; c ] (Digraph.succs r d)

let test_topo_sort () =
  let g, a, b, c, d = diamond () in
  match Traverse.topo_sort g with
  | Error _ -> Alcotest.fail "diamond is a DAG"
  | Ok order ->
    let pos = Array.make 4 0 in
    List.iteri (fun i v -> pos.(v) <- i) order;
    Alcotest.(check bool) "a before b" true (pos.(a) < pos.(b));
    Alcotest.(check bool) "a before c" true (pos.(a) < pos.(c));
    Alcotest.(check bool) "b before d" true (pos.(b) < pos.(d));
    Alcotest.(check bool) "c before d" true (pos.(c) < pos.(d))

let test_cycle_detection () =
  let g = Digraph.create () in
  let a = Digraph.add_node g in
  let b = Digraph.add_node g in
  Digraph.add_edge g a b;
  Digraph.add_edge g b a;
  Alcotest.(check bool) "cycle found" false (Traverse.is_dag g);
  (match Traverse.topo_sort g with
  | Error cyc -> Alcotest.(check int) "both nodes cyclic" 2 (List.length cyc)
  | Ok _ -> Alcotest.fail "cycle not detected")

let test_back_edges () =
  let g = Digraph.create () in
  let a = Digraph.add_node g in
  let b = Digraph.add_node g in
  let c = Digraph.add_node g in
  Digraph.add_edge g a b;
  Digraph.add_edge g b c;
  Digraph.add_edge g c b;
  (* loop back *)
  Alcotest.(check (list (pair int int))) "one back edge" [ (c, b) ]
    (Traverse.back_edges g ~roots:[ a ])

let test_reachable () =
  let g, a, b, _, d = diamond () in
  let r = Traverse.reachable g b in
  Alcotest.(check bool) "b reaches d" true r.(d);
  Alcotest.(check bool) "b not reaches a" false r.(a);
  Alcotest.(check bool) "self" true r.(b);
  ignore a

let test_min_node_weight () =
  (* weights: 0:0 1:5 2:1 3:0 — min path 0->3 goes through 2. *)
  let g, a, b, c, d = diamond () in
  let weight v = if v = b then 5 else if v = c then 1 else 0 in
  let dist = Dag_paths.min_node_weight_paths g ~weight ~source:a in
  Alcotest.(check (option int)) "dist to d" (Some 1) dist.(d);
  Alcotest.(check (option int)) "dist to b" (Some 5) dist.(b);
  Alcotest.(check (option int)) "dist to self" (Some 0) dist.(a)

let test_all_pairs () =
  let g, a, _, c, d = diamond () in
  let m = Dag_paths.all_pairs_min_node_weight g ~weight:(fun _ -> 1) in
  Alcotest.(check (option int)) "a->d three nodes" (Some 3) m.(a).(d);
  Alcotest.(check (option int)) "c->a unreachable" None m.(c).(a)

let test_longest_paths () =
  let g, a, b, c, d = diamond () in
  let ew u v = if u = a && v = b then 10.0 else 1.0 in
  let dist = Dag_paths.longest_paths g ~edge_weight:ew ~sources:[ a ] in
  (match dist.(d) with
  | Some x -> Alcotest.(check (float 1e-9)) "longest a->d" 11.0 x
  | None -> Alcotest.fail "d reachable");
  ignore c

let test_bellman_ford_solution () =
  let edges =
    [
      { Bellman_ford.src = 0; dst = 1; weight = 2.0 };
      { Bellman_ford.src = 1; dst = 2; weight = -1.0 };
      { Bellman_ford.src = 0; dst = 2; weight = 0.5 };
    ]
  in
  match Bellman_ford.solve ~node_count:3 ~edges ~sources:[ 0 ] () with
  | Bellman_ford.Positive_cycle _ -> Alcotest.fail "acyclic graph"
  | Bellman_ford.Solution d ->
    Alcotest.(check (float 1e-9)) "longest to 2" 1.0 d.(2);
    Alcotest.(check (float 1e-9)) "longest to 1" 2.0 d.(1)

let test_bellman_ford_positive_cycle () =
  let edges =
    [
      { Bellman_ford.src = 0; dst = 1; weight = 1.0 };
      { Bellman_ford.src = 1; dst = 0; weight = 1.0 };
    ]
  in
  match Bellman_ford.solve ~node_count:2 ~edges ~sources:[ 0 ] () with
  | Bellman_ford.Positive_cycle ws -> Alcotest.(check bool) "witnesses" true (ws <> [])
  | Bellman_ford.Solution _ -> Alcotest.fail "positive cycle must be reported"

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order respects random DAG edges" ~count:100
    QCheck.(pair (int_range 2 20) (int_range 0 1000000))
    (fun (n, seed) ->
      let rng = Splitmix.create seed in
      let g = Digraph.create () in
      for _ = 1 to n do
        ignore (Digraph.add_node g)
      done;
      (* Random DAG: edges only from lower to higher index. *)
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Splitmix.int rng 100 < 30 then Digraph.add_edge g u v
        done
      done;
      match Traverse.topo_sort g with
      | Error _ -> false
      | Ok order ->
        let pos = Array.make n 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        let ok = ref true in
        Digraph.iter_edges g (fun u v -> if pos.(u) >= pos.(v) then ok := false);
        !ok)

let prop_bf_agrees_with_dag_longest =
  QCheck.Test.make ~name:"bellman-ford equals DAG longest path" ~count:60
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let rng = Splitmix.create seed in
      let n = 2 + Splitmix.int rng 15 in
      let g = Digraph.create () in
      for _ = 1 to n do
        ignore (Digraph.add_node g)
      done;
      let weights = Hashtbl.create 16 in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Splitmix.int rng 100 < 35 then begin
            Digraph.add_edge g u v;
            Hashtbl.replace weights (u, v) (Splitmix.float rng 10.0 -. 5.0)
          end
        done
      done;
      let ew u v = Hashtbl.find weights (u, v) in
      let dag = Dag_paths.longest_paths g ~edge_weight:ew ~sources:[ 0 ] in
      let edges = ref [] in
      Digraph.iter_edges g (fun u v ->
          edges := { Bellman_ford.src = u; dst = v; weight = ew u v } :: !edges);
      match Bellman_ford.solve ~shuffle_seed:7 ~node_count:n ~edges:!edges ~sources:[ 0 ] () with
      | Bellman_ford.Positive_cycle _ -> false
      | Bellman_ford.Solution bf ->
        let ok = ref true in
        for v = 0 to n - 1 do
          match dag.(v) with
          | Some x -> if Float.abs (bf.(v) -. x) > 1e-6 then ok := false
          | None -> if bf.(v) > neg_infinity then ok := false
        done;
        !ok)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "topo sort" `Quick test_topo_sort;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "back edge classification" `Quick test_back_edges;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "min node-weight paths" `Quick test_min_node_weight;
    Alcotest.test_case "all-pairs min node-weight" `Quick test_all_pairs;
    Alcotest.test_case "longest paths" `Quick test_longest_paths;
    Alcotest.test_case "bellman-ford solution" `Quick test_bellman_ford_solution;
    Alcotest.test_case "bellman-ford positive cycle" `Quick test_bellman_ford_positive_cycle;
    QCheck_alcotest.to_alcotest prop_topo_respects_edges;
    QCheck_alcotest.to_alcotest prop_bf_agrees_with_dag_longest;
  ]

let () = Alcotest.run "graph" [ ("graph", suite) ]
