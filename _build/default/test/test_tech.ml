(* Technology library: curve algebra, Table 1 data, width scaling, and the
   interconnect overhead models. *)

let mul8 = Library.table1_multiplier_8x8
let add16 = Library.table1_adder_16

let test_table1_embedded () =
  Alcotest.(check (float 1e-9)) "mul fastest delay" 430.0 (Curve.min_delay mul8);
  Alcotest.(check (float 1e-9)) "mul fastest area" 878.0 (Curve.fastest mul8).Curve.area;
  Alcotest.(check (float 1e-9)) "mul slowest delay" 610.0 (Curve.max_delay mul8);
  Alcotest.(check (float 1e-9)) "mul slowest area" 510.0 (Curve.slowest mul8).Curve.area;
  Alcotest.(check (float 1e-9)) "add fastest" 556.0 (Curve.fastest add16).Curve.area;
  Alcotest.(check (float 1e-9)) "add slowest" 206.0 (Curve.slowest add16).Curve.area

let test_area_interpolation () =
  (* Between 540/575 and 570/545: at 550 -> 575 + (10/30)*(545-575) = 565. *)
  Alcotest.(check (float 1e-6)) "mul at 550" 565.0 (Curve.area_at mul8 550.0);
  (* Clamped outside the range. *)
  Alcotest.(check (float 1e-6)) "below range" 878.0 (Curve.area_at mul8 100.0);
  Alcotest.(check (float 1e-6)) "above range" 510.0 (Curve.area_at mul8 9999.0)

let test_snapping () =
  Alcotest.(check (float 1e-9)) "snap down mid" 540.0 (Curve.snap_down mul8 550.0).Curve.delay;
  Alcotest.(check (float 1e-9)) "snap down exact" 510.0 (Curve.snap_down mul8 510.0).Curve.delay;
  Alcotest.(check (float 1e-9)) "snap down below" 430.0 (Curve.snap_down mul8 100.0).Curve.delay;
  Alcotest.(check (float 1e-9)) "snap up mid" 570.0 (Curve.snap_up mul8 550.0).Curve.delay;
  Alcotest.(check (float 1e-9)) "snap up above" 610.0 (Curve.snap_up mul8 5000.0).Curve.delay;
  Alcotest.(check (float 1e-9)) "point_at exact delay" 555.0 (Curve.point_at mul8 555.0).Curve.delay

let test_curve_validation () =
  (match Curve.of_pairs [] with
  | _ -> Alcotest.fail "empty curve rejected"
  | exception Invalid_argument _ -> ());
  (match Curve.of_pairs [ (100.0, 50.0); (100.0, 40.0) ] with
  | _ -> Alcotest.fail "non-increasing delay rejected"
  | exception Invalid_argument _ -> ());
  (match Curve.of_pairs [ (100.0, 50.0); (200.0, 60.0) ] with
  | _ -> Alcotest.fail "increasing area rejected"
  | exception Invalid_argument _ -> ())

let test_sensitivity () =
  (* Between 430/878 and 470/662: (878-662)/40 = 5.4 area per ps. *)
  Alcotest.(check (float 1e-6)) "steep at the fast end" 5.4 (Curve.sensitivity mul8 440.0);
  Alcotest.(check (float 1e-9)) "flat past the slow end" 0.0 (Curve.sensitivity mul8 700.0)

let test_width_scaling_identity () =
  (* At the characterised width, the derived curve equals Table 1. *)
  let m8 = Library.curve Library.default Resource_kind.Multiplier ~width:8 in
  Alcotest.(check bool) "mul w8 is Table 1" true (Curve.equal m8 mul8);
  let a16 = Library.curve Library.default Resource_kind.Adder ~width:16 in
  Alcotest.(check bool) "add w16 is Table 1" true (Curve.equal a16 add16)

let test_width_scaling_monotone () =
  List.iter
    (fun rk ->
      let a = Library.curve Library.default rk ~width:8 in
      let b = Library.curve Library.default rk ~width:16 in
      let c = Library.curve Library.default rk ~width:32 in
      let fa = (Curve.fastest a).Curve.area
      and fb = (Curve.fastest b).Curve.area
      and fc = (Curve.fastest c).Curve.area in
      Alcotest.(check bool)
        (Resource_kind.name rk ^ " area grows with width")
        true
        (fa < fb && fb < fc);
      Alcotest.(check bool)
        (Resource_kind.name rk ^ " delay grows with width")
        true
        (Curve.min_delay a <= Curve.min_delay b && Curve.min_delay b <= Curve.min_delay c))
    [ Resource_kind.Multiplier; Resource_kind.Adder; Resource_kind.Divider ]

let test_tradeoff_spread () =
  (* The paper's premise: 2-3x area and 1.5-6x delay spread. *)
  List.iter
    (fun (rk, w) ->
      let c = Library.curve Library.default rk ~width:w in
      let dspread = Curve.max_delay c /. Curve.min_delay c in
      let aspread = (Curve.fastest c).Curve.area /. (Curve.slowest c).Curve.area in
      (* Table 1 shows 1.5-6x at the characterised widths; the log-vs-linear
         width scaling stretches the spread a little at wider words. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s w%d delay spread %.1f in [1.3, 10]" (Resource_kind.name rk) w dspread)
        true
        (dspread >= 1.3 && dspread <= 10.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s w%d area spread %.1f in [1.2, 4]" (Resource_kind.name rk) w aspread)
        true
        (aspread >= 1.2 && aspread <= 4.0))
    [ (Resource_kind.Multiplier, 8); (Resource_kind.Multiplier, 16);
      (Resource_kind.Adder, 16); (Resource_kind.Adder, 32);
      (Resource_kind.Subtractor, 16) ]

let test_resource_kind_mapping () =
  Alcotest.(check bool) "add -> adder" true
    (Resource_kind.of_op_kind Dfg.Add = Some Resource_kind.Adder);
  Alcotest.(check bool) "const -> none" true (Resource_kind.of_op_kind (Dfg.Const 3) = None);
  Alcotest.(check bool) "add_sub runs add" true
    (Resource_kind.can_execute Resource_kind.Add_sub Dfg.Add);
  Alcotest.(check bool) "add_sub runs sub" true
    (Resource_kind.can_execute Resource_kind.Add_sub Dfg.Sub);
  Alcotest.(check bool) "add_sub not mul" false
    (Resource_kind.can_execute Resource_kind.Add_sub Dfg.Mul);
  Alcotest.(check bool) "adder not sub" false
    (Resource_kind.can_execute Resource_kind.Adder Dfg.Sub)

let test_overheads () =
  let lib = Library.default in
  Alcotest.(check (float 1e-9)) "no mux for single input" 0.0 (Library.mux_delay lib ~inputs:1);
  Alcotest.(check bool) "mux delay grows" true
    (Library.mux_delay lib ~inputs:4 > Library.mux_delay lib ~inputs:2);
  Alcotest.(check bool) "mux area grows with width" true
    (Library.mux_area lib ~inputs:3 ~width:32 > Library.mux_area lib ~inputs:3 ~width:16);
  Alcotest.(check (float 1e-9)) "ideal library has no overheads" 0.0
    (Library.mux_delay Library.idealized ~inputs:8
    +. Library.register_overhead Library.idealized
    +. Library.fsm_area_per_state Library.idealized)

let prop_area_at_monotone =
  QCheck.Test.make ~name:"interpolated area non-increasing in delay" ~count:200
    QCheck.(pair (float_range 200.0 1400.0) (float_range 0.0 300.0))
    (fun (d, bump) ->
      Curve.area_at add16 (d +. bump) <= Curve.area_at add16 d +. 1e-9)

let prop_snap_brackets =
  QCheck.Test.make ~name:"snap_down <= d <= snap_up within range" ~count:200
    QCheck.(float_range 430.0 610.0)
    (fun d ->
      (Curve.snap_down mul8 d).Curve.delay <= d +. 1e-9
      && (Curve.snap_up mul8 d).Curve.delay >= d -. 1e-9)

let suite =
  [
    Alcotest.test_case "table 1 embedded data" `Quick test_table1_embedded;
    Alcotest.test_case "area interpolation" `Quick test_area_interpolation;
    Alcotest.test_case "snapping" `Quick test_snapping;
    Alcotest.test_case "curve validation" `Quick test_curve_validation;
    Alcotest.test_case "sensitivity" `Quick test_sensitivity;
    Alcotest.test_case "width scaling identity" `Quick test_width_scaling_identity;
    Alcotest.test_case "width scaling monotone" `Quick test_width_scaling_monotone;
    Alcotest.test_case "tradeoff spread" `Quick test_tradeoff_spread;
    Alcotest.test_case "resource kind mapping" `Quick test_resource_kind_mapping;
    Alcotest.test_case "interconnect overheads" `Quick test_overheads;
    QCheck_alcotest.to_alcotest prop_area_at_monotone;
    QCheck_alcotest.to_alcotest prop_snap_brackets;
  ]

let () = Alcotest.run "tech" [ ("tech", suite) ]
