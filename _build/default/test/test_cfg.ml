(* CFG structure, edge classification, latency (paper §V Definition 1
   examples), reachability and dominance. *)

let eid = Cfg.Edge_id.to_int

let check_latency cfg e1 e2 expected msg =
  Alcotest.(check (option int)) msg expected (Cfg.latency cfg e1 e2)

(* The resizer CFG of Figure 4(a). *)
let rz = lazy (Resizer.table3 ())

let test_paper_latencies () =
  let r = Lazy.force rz in
  (* latency(e4, e6) = 0; latency(e1, e7) = 2; latency(e3, e4) undefined. *)
  check_latency r.Resizer.cfg r.Resizer.e4 r.Resizer.e6 (Some 0) "latency(e4,e6)";
  check_latency r.Resizer.cfg r.Resizer.e1 r.Resizer.e7 (Some 2) "latency(e1,e7)";
  check_latency r.Resizer.cfg r.Resizer.e3 r.Resizer.e4 None "latency(e3,e4)";
  (* Same edge: zero states. *)
  check_latency r.Resizer.cfg r.Resizer.e1 r.Resizer.e1 (Some 0) "latency(e,e)";
  (* Crossing one state. *)
  check_latency r.Resizer.cfg r.Resizer.e1 r.Resizer.e4 (Some 1) "latency(e1,e4)";
  check_latency r.Resizer.cfg r.Resizer.e6 r.Resizer.e7 (Some 1) "latency(e6,e7)";
  check_latency r.Resizer.cfg r.Resizer.e1 r.Resizer.e6 (Some 1) "latency(e1,e6)"

let test_backward_edges () =
  let r = Lazy.force rz in
  let cfg = r.Resizer.cfg in
  let backs = ref [] in
  Cfg.iter_edges cfg (fun e -> if Cfg.is_backward cfg e then backs := e :: !backs);
  Alcotest.(check int) "exactly one backward edge" 1 (List.length !backs);
  (match !backs with
  | [ e ] ->
    Alcotest.(check bool) "loop back goes bottom -> top" true
      (Cfg.node_kind cfg (Cfg.edge_dst cfg e) = Cfg.Plain)
  | _ -> Alcotest.fail "expected one backward edge");
  (* Forward edge order excludes the back edge and respects reachability. *)
  let topo = Cfg.forward_edges_topo cfg in
  Alcotest.(check int) "forward edges" (Cfg.edge_count cfg - 1) (List.length topo);
  List.iteri
    (fun i e ->
      List.iteri
        (fun j f -> if i < j && not (Cfg.Edge_id.equal e f) then
            Alcotest.(check bool)
              (Printf.sprintf "no back reach e%d<-e%d" (eid e) (eid f))
              false
              (Cfg.reaches cfg f e && not (Cfg.reaches cfg e f)))
        topo)
    topo

let test_reachability () =
  let r = Lazy.force rz in
  let cfg = r.Resizer.cfg in
  Alcotest.(check bool) "e1 reaches e7" true (Cfg.reaches cfg r.Resizer.e1 r.Resizer.e7);
  Alcotest.(check bool) "e2 reaches e4" true (Cfg.reaches cfg r.Resizer.e2 r.Resizer.e4);
  Alcotest.(check bool) "branches are exclusive" false
    (Cfg.reaches cfg r.Resizer.e2 r.Resizer.e5);
  Alcotest.(check bool) "no reach against flow" false
    (Cfg.reaches cfg r.Resizer.e7 r.Resizer.e1)

let test_sink_reachability () =
  let r = Lazy.force rz in
  let cfg = r.Resizer.cfg in
  (* Sinking from a branch edge across the join is forbidden... *)
  Alcotest.(check bool) "e4 cannot sink past join" false
    (Cfg.sink_reaches cfg r.Resizer.e4 r.Resizer.e6);
  Alcotest.(check bool) "e5 cannot sink past join" false
    (Cfg.sink_reaches cfg r.Resizer.e5 r.Resizer.e6);
  (* ... but within a branch and across plain states it is fine. *)
  Alcotest.(check bool) "e2 sinks to e4" true
    (Cfg.sink_reaches cfg r.Resizer.e2 r.Resizer.e4);
  Alcotest.(check bool) "e6 sinks to e7 across a state" true
    (Cfg.sink_reaches cfg r.Resizer.e6 r.Resizer.e7);
  Alcotest.(check bool) "same edge" true (Cfg.sink_reaches cfg r.Resizer.e1 r.Resizer.e1)

let test_dominance () =
  let r = Lazy.force rz in
  let cfg = r.Resizer.cfg in
  Alcotest.(check bool) "e1 dominates e4" true
    (Cfg.edge_dominates cfg r.Resizer.e1 r.Resizer.e4);
  Alcotest.(check bool) "e2 dominates e4" true
    (Cfg.edge_dominates cfg r.Resizer.e2 r.Resizer.e4);
  Alcotest.(check bool) "e3 does not dominate e4" false
    (Cfg.edge_dominates cfg r.Resizer.e3 r.Resizer.e4);
  Alcotest.(check bool) "e2 does not dominate e6" false
    (Cfg.edge_dominates cfg r.Resizer.e2 r.Resizer.e6);
  Alcotest.(check bool) "e1 dominates e6" true
    (Cfg.edge_dominates cfg r.Resizer.e1 r.Resizer.e6);
  Alcotest.(check bool) "self dominance" true
    (Cfg.edge_dominates cfg r.Resizer.e5 r.Resizer.e5)

let test_state_index () =
  let r = Lazy.force rz in
  let cfg = r.Resizer.cfg in
  Alcotest.(check int) "e1 in step 0" 0 (Cfg.state_of_edge cfg r.Resizer.e1);
  Alcotest.(check int) "e2 in step 0" 0 (Cfg.state_of_edge cfg r.Resizer.e2);
  Alcotest.(check int) "e4 in step 1" 1 (Cfg.state_of_edge cfg r.Resizer.e4);
  Alcotest.(check int) "e6 in step 1" 1 (Cfg.state_of_edge cfg r.Resizer.e6);
  Alcotest.(check int) "e7 in step 2" 2 (Cfg.state_of_edge cfg r.Resizer.e7);
  Alcotest.(check int) "max step" 2 (Cfg.max_state_index cfg)

let test_malformed_unreachable () =
  let cfg = Cfg.create () in
  let a = Cfg.add_node cfg Cfg.State in
  let b = Cfg.add_node cfg Cfg.State in
  ignore (Cfg.add_edge cfg (Cfg.start cfg) a);
  (* b is disconnected *)
  ignore b;
  Alcotest.check_raises "unreachable node rejected"
    (Cfg.Malformed "node 2 unreachable from start")
    (fun () -> Cfg.seal cfg)

let test_malformed_combinational_loop () =
  let cfg = Cfg.create () in
  let a = Cfg.add_node cfg Cfg.Plain in
  let b = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg (Cfg.start cfg) a);
  ignore (Cfg.add_edge cfg a b);
  ignore (Cfg.add_edge cfg b a);
  (match Cfg.seal cfg with
  | () -> Alcotest.fail "stateless cycle must be rejected"
  | exception Cfg.Malformed _ -> ())

let test_mutation_after_seal () =
  let r = Lazy.force rz in
  (match Cfg.add_node r.Resizer.cfg Cfg.State with
  | _ -> Alcotest.fail "mutation after seal must fail"
  | exception Invalid_argument _ -> ())

let test_single_start () =
  let cfg = Cfg.create () in
  (match Cfg.add_node cfg Cfg.Start with
  | _ -> Alcotest.fail "second start must be rejected"
  | exception Invalid_argument _ -> ())

let linear_cfg n_states =
  (* start -> s1 -> s2 ... -> exit, one edge between consecutive nodes *)
  let cfg = Cfg.create () in
  let prev = ref (Cfg.start cfg) in
  let edges = ref [] in
  for _ = 1 to n_states do
    let s = Cfg.add_node cfg Cfg.State in
    edges := Cfg.add_edge cfg !prev s :: !edges;
    prev := s
  done;
  let ex = Cfg.add_node cfg Cfg.Exit in
  edges := Cfg.add_edge cfg !prev ex :: !edges;
  Cfg.seal cfg;
  (cfg, List.rev !edges)

let test_linear_latencies () =
  let cfg, edges = linear_cfg 5 in
  let arr = Array.of_list edges in
  for i = 0 to 5 do
    for j = i to 5 do
      check_latency cfg arr.(i) arr.(j) (Some (j - i))
        (Printf.sprintf "linear latency %d->%d" i j)
    done
  done

let prop_latency_triangle =
  (* On random linear chains with random state/plain nodes, latency is the
     count of state nodes between edges and is additive. *)
  QCheck.Test.make ~name:"latency additivity on chains" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 12) bool)
    (fun pattern ->
      let cfg = Cfg.create () in
      let prev = ref (Cfg.start cfg) in
      let edges = ref [] in
      List.iter
        (fun is_state ->
          let n = Cfg.add_node cfg (if is_state then Cfg.State else Cfg.Plain) in
          edges := Cfg.add_edge cfg !prev n :: !edges;
          prev := n)
        pattern;
      let ex = Cfg.add_node cfg Cfg.Exit in
      edges := Cfg.add_edge cfg !prev ex :: !edges;
      Cfg.seal cfg;
      let arr = Array.of_list (List.rev !edges) in
      let n = Array.length arr in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          for k = j to n - 1 do
            match
              (Cfg.latency cfg arr.(i) arr.(j), Cfg.latency cfg arr.(j) arr.(k),
               Cfg.latency cfg arr.(i) arr.(k))
            with
            | Some a, Some b, Some c -> if a + b <> c then ok := false
            | _ -> ok := false
          done
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "paper latency examples" `Quick test_paper_latencies;
    Alcotest.test_case "backward edge classification" `Quick test_backward_edges;
    Alcotest.test_case "edge reachability" `Quick test_reachability;
    Alcotest.test_case "join-free sink reachability" `Quick test_sink_reachability;
    Alcotest.test_case "edge dominance" `Quick test_dominance;
    Alcotest.test_case "control-step indices" `Quick test_state_index;
    Alcotest.test_case "unreachable node rejected" `Quick test_malformed_unreachable;
    Alcotest.test_case "combinational loop rejected" `Quick test_malformed_combinational_loop;
    Alcotest.test_case "mutation after seal rejected" `Quick test_mutation_after_seal;
    Alcotest.test_case "single start enforced" `Quick test_single_start;
    Alcotest.test_case "linear chain latencies" `Quick test_linear_latencies;
    QCheck_alcotest.to_alcotest prop_latency_triangle;
  ]

let () = Alcotest.run "cfg" [ ("cfg", suite) ]
