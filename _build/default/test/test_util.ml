(* Utility-layer tests: ids, intervals, vectors, RNG, table rendering. *)

module Tid = Id.Make ()

let test_id_roundtrip () =
  Alcotest.(check int) "roundtrip" 42 (Tid.to_int (Tid.of_int 42));
  Alcotest.(check bool) "equal" true (Tid.equal (Tid.of_int 3) (Tid.of_int 3));
  (match Tid.of_int (-1) with
  | _ -> Alcotest.fail "negative id must be rejected"
  | exception Invalid_argument _ -> ())

let test_id_containers () =
  let s = Tid.Set.of_list [ Tid.of_int 1; Tid.of_int 2; Tid.of_int 1 ] in
  Alcotest.(check int) "set dedups" 2 (Tid.Set.cardinal s);
  let m = Tid.Map.singleton (Tid.of_int 7) "x" in
  Alcotest.(check (option string)) "map find" (Some "x") (Tid.Map.find_opt (Tid.of_int 7) m)

let test_interval () =
  let i = Interval.make 2.0 5.0 in
  Alcotest.(check bool) "mem" true (Interval.mem 3.0 i);
  Alcotest.(check bool) "not mem" false (Interval.mem 5.5 i);
  Alcotest.(check (float 1e-9)) "clamp low" 2.0 (Interval.clamp i 0.0);
  Alcotest.(check (float 1e-9)) "clamp high" 5.0 (Interval.clamp i 9.0);
  Alcotest.(check (float 1e-9)) "width" 3.0 (Interval.width i);
  (match Interval.make 5.0 2.0 with
  | _ -> Alcotest.fail "inverted interval must be rejected"
  | exception Invalid_argument _ -> ());
  (match Interval.intersect (Interval.make 0.0 1.0) (Interval.make 2.0 3.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "disjoint intervals intersect to None");
  (match Interval.intersect (Interval.make 0.0 2.0) (Interval.make 1.0 3.0) with
  | Some r ->
    Alcotest.(check (float 1e-9)) "intersect lo" 1.0 (Interval.lo r);
    Alcotest.(check (float 1e-9)) "intersect hi" 2.0 (Interval.hi r)
  | None -> Alcotest.fail "overlapping intervals must intersect")

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Vec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Vec.set v 42 0;
  Alcotest.(check int) "set" 0 (Vec.get v 42);
  Alcotest.(check int) "fold" (List.length (Vec.to_list v)) 100;
  (match Vec.get v 100 with
  | _ -> Alcotest.fail "out of range get must fail"
  | exception Invalid_argument _ -> ())

let test_splitmix_determinism () =
  let a = Splitmix.create 12345 and b = Splitmix.create 12345 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done;
  let c = Splitmix.create 54321 in
  Alcotest.(check bool) "different seed, different stream" true
    (Splitmix.next_int64 a <> Splitmix.next_int64 c)

let test_splitmix_bounds () =
  let rng = Splitmix.create 7 in
  for _ = 1 to 1000 do
    let v = Splitmix.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let f = Splitmix.float rng 3.0 in
    if f < 0.0 || f >= 3.0 then Alcotest.fail "float out of bounds"
  done

let test_splitmix_shuffle_permutes () =
  let rng = Splitmix.create 99 in
  let arr = Array.init 20 Fun.id in
  Splitmix.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_text_table () =
  let t = Text_table.create ~headers:[ "Des"; "A" ] in
  Text_table.add_row t [ "D1"; "90085" ];
  Text_table.add_row t [ "D2" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (String.length s >= String.length "D1  90085");
  (match Text_table.add_row t [ "a"; "b"; "c" ] with
  | _ -> Alcotest.fail "too many cells must be rejected"
  | exception Invalid_argument _ -> ())

let prop_interval_clamp =
  QCheck.Test.make ~name:"clamp is in interval" ~count:200
    QCheck.(triple (float_range (-100.) 100.) (float_range 0. 50.) (float_range (-200.) 200.))
    (fun (lo, w, x) ->
      let i = Interval.make lo (lo +. w) in
      Interval.mem (Interval.clamp i x) i)

let suite =
  [
    Alcotest.test_case "id roundtrip" `Quick test_id_roundtrip;
    Alcotest.test_case "id containers" `Quick test_id_containers;
    Alcotest.test_case "interval basics" `Quick test_interval;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "splitmix determinism" `Quick test_splitmix_determinism;
    Alcotest.test_case "splitmix bounds" `Quick test_splitmix_bounds;
    Alcotest.test_case "splitmix shuffle" `Quick test_splitmix_shuffle_permutes;
    Alcotest.test_case "text table" `Quick test_text_table;
    QCheck_alcotest.to_alcotest prop_interval_clamp;
  ]

let () = Alcotest.run "util" [ ("util", suite) ]
