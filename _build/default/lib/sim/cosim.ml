type mismatch = {
  mport : string;
  iteration : int;
  expected : int;
  got : int;
}

type result = {
  iterations : int;
  checked_values : int;
  mismatches : mismatch list;
}

(* Deterministic per-(port, index) stimulus so both simulators observe the
   same streams regardless of consumption interleaving. *)
let stimulus ~seed =
  let cache = Hashtbl.create 64 in
  fun port k ->
    match Hashtbl.find_opt cache (port, k) with
    | Some v -> v
    | None ->
      let h = Hashtbl.hash (seed, port, k) in
      let rng = Splitmix.create h in
      let v = Int64.to_int (Int64.logand (Splitmix.next_int64 rng) 0x3FFFFFFFFFFFFFFFL) in
      Hashtbl.replace cache (port, k) v;
      v

let check ?schedule ?(iterations = 32) ?(seed = 1) (elab : Elaborate.t) =
  let inputs = stimulus ~seed in
  let reference = Behav_sim.run elab.Elaborate.process ~iterations ~inputs in
  let dut = Dfg_sim.run ?schedule elab ~iterations ~inputs in
  let checked = ref 0 and mismatches = ref [] in
  List.iter
    (fun (port, expected_trace) ->
      let got_trace = Option.value ~default:[] (List.assoc_opt port dut) in
      let rec cmp i es gs =
        match (es, gs) with
        | [], [] -> ()
        | e :: es', g :: gs' ->
          incr checked;
          if e <> g then
            mismatches := { mport = port; iteration = i; expected = e; got = g } :: !mismatches;
          cmp (i + 1) es' gs'
        | e :: _, [] ->
          mismatches := { mport = port; iteration = i; expected = e; got = -1 } :: !mismatches
        | [], g :: _ ->
          mismatches := { mport = port; iteration = i; expected = -1; got = g } :: !mismatches
      in
      cmp 0 expected_trace got_trace)
    reference;
  { iterations; checked_values = !checked; mismatches = List.rev !mismatches }

let check_exn ?schedule ?iterations ?seed elab =
  let r = check ?schedule ?iterations ?seed elab in
  match r.mismatches with
  | [] -> ()
  | m :: _ ->
    failwith
      (Printf.sprintf "cosim mismatch on port %s at write %d: expected %d, got %d" m.mport
         m.iteration m.expected m.got)
