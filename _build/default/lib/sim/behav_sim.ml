let run (p : Ast.process) ~iterations ~inputs =
  let widths = Hashtbl.create 16 in
  List.iter (fun (d : Ast.var_decl) -> Hashtbl.replace widths d.Ast.var d.Ast.vwidth) p.Ast.vars;
  let port_width = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.port_decl) -> Hashtbl.replace port_width d.Ast.port d.Ast.width)
    p.Ast.ports;
  let env = Hashtbl.create 16 in
  List.iter (fun (d : Ast.var_decl) -> Hashtbl.replace env d.Ast.var 0) p.Ast.vars;
  let read_idx = Hashtbl.create 8 in
  let outputs = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.port_decl) ->
      if not d.Ast.is_input then Hashtbl.replace outputs d.Ast.port [])
    p.Ast.ports;
  let consume port =
    let k = Option.value ~default:0 (Hashtbl.find_opt read_idx port) in
    Hashtbl.replace read_idx port (k + 1);
    let w = Option.value ~default:16 (Hashtbl.find_opt port_width port) in
    Wordops.mask ~width:w (inputs port k)
  in
  ignore widths;
  let rec eval = function
    | Ast.Int v -> v
    | Ast.Var x -> Option.value ~default:0 (Hashtbl.find_opt env x)
    | Ast.Read port -> consume port
    | Ast.Binop (op, a, b) ->
      (* Evaluation order matters for read consumption: left to right, the
         same order elaboration creates the read operations in. *)
      let va = eval a in
      let vb = eval b in
      Wordops.binop op ~width:62 va vb
    | Ast.Unop (op, a) -> Wordops.unop op ~width:62 (eval a)
  in
  let rec exec = function
    | Ast.Assign (x, e) -> Hashtbl.replace env x (eval e)
    | Ast.Write (port, e) ->
      let w = Option.value ~default:16 (Hashtbl.find_opt port_width port) in
      let v = Wordops.mask ~width:w (eval e) in
      Hashtbl.replace outputs port (v :: Option.value ~default:[] (Hashtbl.find_opt outputs port))
    | Ast.Wait -> ()
    | Ast.If (c, t, e) -> List.iter exec (if eval c <> 0 then t else e)
    | Ast.For { index; from_; below; body } ->
      for i = from_ to below - 1 do
        Hashtbl.replace env index i;
        List.iter exec body
      done
  in
  for _ = 1 to iterations do
    List.iter exec p.Ast.body
  done;
  List.filter_map
    (fun (d : Ast.port_decl) ->
      if d.Ast.is_input then None
      else
        Some
          ( d.Ast.port,
            List.rev (Option.value ~default:[] (Hashtbl.find_opt outputs d.Ast.port)) ))
    p.Ast.ports
