exception Sim_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

let run ?schedule (elab : Elaborate.t) ~iterations ~inputs =
  let cfg = elab.Elaborate.cfg and dfg = elab.Elaborate.dfg in
  let p = elab.Elaborate.process in
  let port_width = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.port_decl) -> Hashtbl.replace port_width d.Ast.port d.Ast.width)
    p.Ast.ports;
  let pw port = Option.value ~default:16 (Hashtbl.find_opt port_width port) in
  (* Loop entry: the target of the (unique) backward edge. *)
  let loop_top = ref None in
  Cfg.iter_edges cfg (fun e ->
      if Cfg.is_backward cfg e && !loop_top = None then loop_top := Some (Cfg.edge_dst cfg e));
  let loop_top =
    match !loop_top with Some n -> n | None -> err "design has no loop-back edge"
  in
  let n = Dfg.op_count dfg in
  let topo_pos = Array.make n 0 in
  List.iteri (fun i o -> topo_pos.(Dfg.Op_id.to_int o) <- i) (Dfg.topo_order dfg);
  let ops_on_edge = Hashtbl.create 16 in
  Dfg.iter_ops dfg (fun op ->
      let k = Cfg.Edge_id.to_int op.Dfg.birth in
      Hashtbl.replace ops_on_edge k
        (op.Dfg.id :: Option.value ~default:[] (Hashtbl.find_opt ops_on_edge k)));
  let edge_ops e =
    Option.value ~default:[] (Hashtbl.find_opt ops_on_edge (Cfg.Edge_id.to_int e))
    |> List.sort (fun a b ->
           Int.compare topo_pos.(Dfg.Op_id.to_int a) topo_pos.(Dfg.Op_id.to_int b))
  in
  let prev_env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let out_traces : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.port_decl) ->
      if not d.Ast.is_input then Hashtbl.replace out_traces d.Ast.port [])
    p.Ast.ports;
  (* Reads consume sequentially in program order; only executed (active)
     reads consume, exactly as the interpreter's taken-branch execution. *)
  let read_counters : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let next_read port =
    let c =
      match Hashtbl.find_opt read_counters port with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.replace read_counters port c;
        c
    in
    let k = !c in
    incr c;
    k
  in
  for _iter = 1 to iterations do
    let values : int option array = Array.make n None in
    let iter_writes : (Dfg.Op_id.t * int) list ref = ref [] in
    let resolve ~ctx = function
      | Elaborate.Sop id -> (
        match values.(Dfg.Op_id.to_int id) with
        | Some v -> v
        | None -> err "%s: operand %s consumed before being produced" ctx (Dfg.op dfg id).Dfg.name)
      | Elaborate.Sconst c -> c
      | Elaborate.Sprev x -> Option.value ~default:0 (Hashtbl.find_opt prev_env x)
    in
    let eval_op oid =
      let op = Dfg.op dfg oid in
      let i = Dfg.Op_id.to_int oid in
      if values.(i) = None then begin
        let operands = Elaborate.operands_of elab oid in
        let v =
          match op.Dfg.kind with
          | Dfg.Const c -> c
          | Dfg.Read port ->
            Wordops.mask ~width:(pw port) (inputs port (next_read port))
          | Dfg.Write port ->
            let v =
              match List.map (resolve ~ctx:op.Dfg.name) operands with
              | [ v ] -> Wordops.mask ~width:(pw port) v
              | _ -> err "write arity"
            in
            iter_writes := (oid, v) :: !iter_writes;
            v
          | Dfg.Mux -> (
            (* Resolve the condition first: the value from the untaken
               branch was never computed and must not be touched. *)
            match operands with
            | [ t; e; c ] ->
              if resolve ~ctx:op.Dfg.name c <> 0 then resolve ~ctx:op.Dfg.name t
              else resolve ~ctx:op.Dfg.name e
            | _ -> err "mux arity in %s" op.Dfg.name)
          | kind ->
            Wordops.op_kind kind ~width:62 (List.map (resolve ~ctx:op.Dfg.name) operands)
        in
        values.(i) <- Some v
      end
    in
    (* Control walk: decide the active edges and (in dataflow mode)
       evaluate each active edge's operations in dependency order. *)
    let active_nodes = Hashtbl.create 16 in
    Hashtbl.replace active_nodes (Cfg.Node_id.to_int loop_top) ();
    let active_edges = Hashtbl.create 16 in
    let fork_choice = Hashtbl.create 4 in
    List.iter
      (fun e ->
        let src = Cfg.edge_src cfg e in
        if Hashtbl.mem active_nodes (Cfg.Node_id.to_int src) then begin
          let selected =
            match Cfg.node_kind cfg src with
            | Cfg.Fork -> (
              let choice =
                match Hashtbl.find_opt fork_choice (Cfg.Node_id.to_int src) with
                | Some c -> c
                | None ->
                  let cond =
                    match Elaborate.branch_cond elab src with
                    | Some c -> c
                    | None -> err "fork without a recorded branch condition"
                  in
                  let taken = resolve ~ctx:"branch" cond <> 0 in
                  let outs =
                    List.filter (fun e' -> not (Cfg.is_backward cfg e')) (Cfg.out_edges cfg src)
                  in
                  let chosen =
                    match (outs, taken) with
                    | e1 :: _, true -> e1
                    | _ :: e2 :: _, false -> e2
                    | _ -> err "fork with fewer than two out-edges"
                  in
                  Hashtbl.replace fork_choice (Cfg.Node_id.to_int src) chosen;
                  chosen
              in
              Cfg.Edge_id.equal choice e)
            | Cfg.Start | Cfg.State | Cfg.Join | Cfg.Plain | Cfg.Exit -> true
          in
          if selected && not (Cfg.is_backward cfg e) then begin
            Hashtbl.replace active_edges (Cfg.Edge_id.to_int e) ();
            List.iter eval_op (edge_ops e);
            Hashtbl.replace active_nodes (Cfg.Node_id.to_int (Cfg.edge_dst cfg e)) ()
          end
        end)
      (Cfg.forward_edges_topo cfg);
    (* Scheduled mode: audit that executing the active ops in the
       schedule's (step, start-time) order never consumes a value before
       its producer has run.  (Values themselves come from the dataflow
       evaluation above and are order-independent.) *)
    (match schedule with
    | None -> ()
    | Some sched ->
      let key o =
        match Schedule.placement sched o with
        | Some pl -> (pl.Schedule.step, pl.Schedule.start, topo_pos.(Dfg.Op_id.to_int o))
        | None -> err "active op %s unplaced in schedule" (Dfg.op dfg o).Dfg.name
      in
      let active_ops =
        Dfg.ops dfg
        |> List.filter (fun o ->
               Hashtbl.mem active_edges (Cfg.Edge_id.to_int (Dfg.op dfg o).Dfg.birth))
        |> List.sort (fun a b -> compare (key a) (key b))
      in
      let produced = Hashtbl.create 16 in
      List.iter
        (fun o ->
          List.iter
            (function
              | Elaborate.Sop src ->
                let s_active =
                  Hashtbl.mem active_edges
                    (Cfg.Edge_id.to_int (Dfg.op dfg src).Dfg.birth)
                in
                if s_active && not (Hashtbl.mem produced (Dfg.Op_id.to_int src)) then
                  err "schedule consumes %s in %s before it is produced"
                    (Dfg.op dfg src).Dfg.name (Dfg.op dfg o).Dfg.name
              | Elaborate.Sconst _ | Elaborate.Sprev _ -> ())
            (Elaborate.operands_of elab o);
          Hashtbl.replace produced (Dfg.Op_id.to_int o) ())
        active_ops);
    (* Emit writes in program order. *)
    let writes = List.sort (fun (a, _) (b, _) -> Dfg.Op_id.compare a b) !iter_writes in
    List.iter
      (fun (oid, v) ->
        match (Dfg.op dfg oid).Dfg.kind with
        | Dfg.Write port ->
          Hashtbl.replace out_traces port
            (v :: Option.value ~default:[] (Hashtbl.find_opt out_traces port))
        | _ -> ())
      writes;
    (* Advance the loop state. *)
    let updates =
      List.map
        (fun (x, sop) ->
          let v =
            match sop with
            | Elaborate.Sop id -> (
              match values.(Dfg.Op_id.to_int id) with
              | Some v -> v
              | None -> Option.value ~default:0 (Hashtbl.find_opt prev_env x))
            | Elaborate.Sconst c -> c
            | Elaborate.Sprev y -> Option.value ~default:0 (Hashtbl.find_opt prev_env y)
          in
          (x, v))
        elab.Elaborate.final_env
    in
    List.iter (fun (x, v) -> Hashtbl.replace prev_env x v) updates
  done;
  List.filter_map
    (fun (d : Ast.port_decl) ->
      if d.Ast.is_input then None
      else
        Some
          ( d.Ast.port,
            List.rev (Option.value ~default:[] (Hashtbl.find_opt out_traces d.Ast.port)) ))
    p.Ast.ports
