lib/sim/dfg_sim.ml: Array Ast Cfg Dfg Elaborate Hashtbl Int List Option Printf Schedule Wordops
