lib/sim/dfg_sim.mli: Elaborate Schedule
