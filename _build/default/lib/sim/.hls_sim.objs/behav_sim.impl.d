lib/sim/behav_sim.ml: Ast Hashtbl List Option Wordops
