lib/sim/cosim.ml: Behav_sim Dfg_sim Elaborate Hashtbl Int64 List Option Printf Splitmix
