lib/sim/cosim.mli: Elaborate Schedule
