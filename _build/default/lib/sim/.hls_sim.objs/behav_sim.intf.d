lib/sim/behav_sim.mli: Ast
