(** Co-simulation: check that elaboration (and optionally a schedule)
    preserves the behavioral semantics.

    Drives {!Behav_sim} (the language interpreter) and {!Dfg_sim} (the
    elaborated-design simulator, optionally under a schedule) with the same
    pseudo-random input streams and compares the output traces. *)

type mismatch = {
  mport : string;
  iteration : int;   (** index in the write trace *)
  expected : int;
  got : int;
}

type result = {
  iterations : int;
  checked_values : int;
  mismatches : mismatch list;   (** empty = equivalent on this stimulus *)
}

val check :
  ?schedule:Schedule.t -> ?iterations:int -> ?seed:int -> Elaborate.t -> result
(** [iterations] defaults to 32, [seed] to 1.  Inputs are uniform random
    words of each input port's width. *)

val check_exn : ?schedule:Schedule.t -> ?iterations:int -> ?seed:int -> Elaborate.t -> unit
(** Raises [Failure] with a description of the first mismatch. *)
