(** Simulator for elaborated designs (CFG + DFG + operand tables).

    Executes one loop iteration at a time:

    - {e control}: walks the CFG from the loop top; at a fork the recorded
      branch condition selects the first out-edge when true, the second
      when false; only operations on active edges have architectural
      effects (reads consume, writes emit), and mux operations select by
      their condition operand;
    - {e data}: operations evaluate in data-dependency order with
      full-width arithmetic, masked at port boundaries, exactly like
      {!Behav_sim};
    - {e loop state}: each variable's end-of-iteration value feeds the next
      iteration's previous-value reads ([Sprev]); conditionally skipped
      updates leave the previous value in place.

    Passing a {!Schedule.t} makes execution follow the schedule's
    (step, start-time) order instead of plain dependency order, checking
    on the way that every consumed value was already produced — a dynamic
    audit of schedule correctness; the outputs must be identical. *)

exception Sim_error of string

val run :
  ?schedule:Schedule.t ->
  Elaborate.t ->
  iterations:int ->
  inputs:(string -> int -> int) ->
  (string * int list) list
(** Output traces per output port, in declaration order.  Raises
    {!Sim_error} on structural problems (missing branch condition, a
    schedule consuming a value before it is produced, ...). *)
