(** Reference interpreter for the behavioral language.

    Executes the process body for a number of iterations of the implicit
    outer loop.  Arithmetic is computed at full native width and masked at
    the port boundaries (reads to the input port's width, writes to the
    output port's), exactly as the DFG simulator does, so the two agree
    bit-for-bit.  Variables persist across iterations (initially 0); each
    [read(p)] consumes the next element of port [p]'s input stream;
    [write(p, e)] appends to port [p]'s output trace.  This is the
    semantic reference the DFG and schedule simulators are checked
    against. *)

val run :
  Ast.process ->
  iterations:int ->
  inputs:(string -> int -> int) ->
  (string * int list) list
(** [inputs port k] is the [k]-th value read from [port] (0-based, across
    all iterations).  Returns the per-output-port write traces in
    declaration order. *)
