(** 8-point IDCT dataflow (the paper's Table 4 design-space benchmark).

    The kernel is the classic Chen even/odd-decomposed 8-point inverse DCT:
    16 multiplications by cosine constants and 26 additions/subtractions
    per 1-D transform, arranged in the usual butterfly stages.  The 2-D
    transform of an 8x8 block is row-column separable; [passes] chains that
    many 1-D transforms back to back (the output of pass [k] feeds pass
    [k+1]) for heavier workloads.

    The CFG is a loop whose body spans [latency] control steps; spectral
    inputs are read on the first step edge and spatial outputs written on
    the last.  All computation is free to move across the steps.
    ([passes > 1] chains kernels and remains available as a heavier
    workload; the Table 4 pipelined points use true initiation-interval
    pipelining instead.) *)

type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  step_edges : Cfg.Edge_id.t array;  (** one per control step, in order *)
  name : string;
}

val build : ?width:int -> latency:int -> passes:int -> unit -> t
(** [latency >= 2], [passes >= 1], [width] defaults to 16 bits. *)

val mul_count : t -> int
val add_count : t -> int

(** {1 The paper's Table 4 design points}

    Fifteen configurations: D1-D8 are the single-pass kernel at latencies
    32 down to 8 (the paper's non-pipelined sweep); D9-D15 pipeline the
    latency-16 kernel at initiation intervals 12 down to 3 (the paper's
    pipelined implementations; overlapped iterations raise resource
    pressure). *)

type design_point = {
  id : string;
  latency : int;
  passes : int;
  ii : int option;  (** pipelining initiation interval *)
  clock : float;
}

val table4_points : design_point list
val instantiate : design_point -> t
