type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  e1 : Cfg.Edge_id.t;
  e2 : Cfg.Edge_id.t;
  e3 : Cfg.Edge_id.t;
  e4 : Cfg.Edge_id.t;
  e5 : Cfg.Edge_id.t;
  e6 : Cfg.Edge_id.t;
  e7 : Cfg.Edge_id.t;
  rd_a : Dfg.Op_id.t;
  add : Dfg.Op_id.t;
  div : Dfg.Op_id.t;
  sub : Dfg.Op_id.t;
  rd_b : Dfg.Op_id.t;
  mul : Dfg.Op_id.t;
  mux : Dfg.Op_id.t;
  wr : Dfg.Op_id.t;
}

let build ~with_control () =
  let cfg = Cfg.create () in
  let loop_top = Cfg.add_node cfg Cfg.Plain in
  let if_top = Cfg.add_node cfg Cfg.Fork in
  let s0 = Cfg.add_node cfg Cfg.State in
  let s1 = Cfg.add_node cfg Cfg.State in
  let if_bottom = Cfg.add_node cfg Cfg.Join in
  let s2 = Cfg.add_node cfg Cfg.State in
  let loop_bottom = Cfg.add_node cfg Cfg.Plain in
  let _e0 = Cfg.add_edge cfg (Cfg.start cfg) loop_top in
  let e1 = Cfg.add_edge cfg loop_top if_top in
  let e2 = Cfg.add_edge cfg if_top s0 in
  let e3 = Cfg.add_edge cfg if_top s1 in
  let e4 = Cfg.add_edge cfg s0 if_bottom in
  let e5 = Cfg.add_edge cfg s1 if_bottom in
  let e6 = Cfg.add_edge cfg if_bottom s2 in
  let e7 = Cfg.add_edge cfg s2 loop_bottom in
  let _e_back = Cfg.add_edge cfg loop_bottom loop_top in
  Cfg.seal cfg;
  let dfg = Dfg.create cfg in
  let w = 16 in
  let rd_a = Dfg.add_op dfg ~kind:(Dfg.Read "a") ~width:w ~birth:e1 ~name:"rd_a" () in
  let add = Dfg.add_op dfg ~kind:Dfg.Add ~width:w ~birth:e1 ~name:"add" () in
  let div = Dfg.add_op dfg ~kind:Dfg.Div ~width:w ~birth:e4 ~name:"div" () in
  let sub = Dfg.add_op dfg ~kind:Dfg.Sub ~width:w ~birth:e4 ~name:"sub" () in
  let rd_b = Dfg.add_op dfg ~kind:(Dfg.Read "b") ~width:w ~birth:e5 ~name:"rd_b" () in
  let mul = Dfg.add_op dfg ~kind:Dfg.Mul ~width:w ~birth:e5 ~name:"mul" () in
  let mux = Dfg.add_op dfg ~kind:Dfg.Mux ~width:w ~birth:e6 ~name:"mux" () in
  let wr = Dfg.add_op dfg ~kind:(Dfg.Write "out") ~width:w ~birth:e7 ~name:"wr" () in
  Dfg.add_dep dfg ~src:rd_a ~dst:add ();
  Dfg.add_dep dfg ~src:add ~dst:div ();
  Dfg.add_dep dfg ~src:div ~dst:sub ();
  Dfg.add_dep dfg ~src:add ~dst:mul ();
  Dfg.add_dep dfg ~src:rd_b ~dst:mul ();
  Dfg.add_dep dfg ~src:sub ~dst:mux ();
  Dfg.add_dep dfg ~src:mul ~dst:mux ();
  Dfg.add_dep dfg ~src:mux ~dst:wr ();
  if with_control then begin
    (* x > th feeds the fork: fixed on e1. *)
    let cmp =
      Dfg.add_op dfg ~kind:(Dfg.Cmp Dfg.Gt) ~width:w ~birth:e1 ~fixed:true ~name:"cmp_th" ()
    in
    Dfg.add_dep dfg ~src:add ~dst:cmp ();
    (* Loop index computation: i = i + 1; i < 1024 (loop-carried). *)
    let one = Dfg.add_op dfg ~kind:(Dfg.Const 1) ~width:11 ~birth:e1 ~name:"one" () in
    let i_add = Dfg.add_op dfg ~kind:Dfg.Add ~width:11 ~birth:e1 ~name:"i_add" () in
    let i_cmp =
      Dfg.add_op dfg ~kind:(Dfg.Cmp Dfg.Lt) ~width:11 ~birth:e1 ~fixed:true ~name:"i_cmp" ()
    in
    Dfg.add_dep dfg ~src:one ~dst:i_add ();
    Dfg.add_dep dfg ~src:i_add ~dst:i_add ~loop_carried:true ();
    Dfg.add_dep dfg ~src:i_add ~dst:i_cmp ()
  end;
  Dfg.validate dfg;
  { cfg; dfg; e1; e2; e3; e4; e5; e6; e7; rd_a; add; div; sub; rd_b; mul; mux; wr }

let table3 () = build ~with_control:false ()
let full () = build ~with_control:true ()

let table3_samples =
  let mk t dd d = fun x ->
    match x with
    | "T" -> t
    | "D" -> dd
    | "d" -> d
    | _ -> invalid_arg ("Resizer.table3_samples: unknown parameter " ^ x)
  in
  (* All satisfy D + d < T < 2D. *)
  [ mk 10.0 6.0 1.0; mk 11.0 6.5 2.0; mk 10.2 9.0 0.3; mk 19.0 10.0 8.0 ]
