(** The paper's resizer/filter example (Figures 3–5, Table 3).

    {v
    for (int i = 0; i < 1024; i++) {
      int x = a.read() + offset;
      if (x > th) { wait(); /* s0 */ y = x / scale - offset; }
      else        { wait(); /* s1 */ y = x * b.read(); }
      wait(); /* s2 */
      out.write(y);
    }
    v}

    The CFG has a fork after the comparison, one state per branch, a join,
    and a final state before the write; the loop-back edge is backward.
    [table3] builds exactly the "main computation" DFG of Figure 5(a) —
    eight operations — whose symbolic slack the paper tabulates. *)

type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  (* Edges, numbered as in Figure 4(a). *)
  e1 : Cfg.Edge_id.t;  (** loop top -> if fork: carries rd_a, add *)
  e2 : Cfg.Edge_id.t;  (** fork -> s0 (then branch) *)
  e3 : Cfg.Edge_id.t;  (** fork -> s1 (else branch) *)
  e4 : Cfg.Edge_id.t;  (** s0 -> join: carries div, sub *)
  e5 : Cfg.Edge_id.t;  (** s1 -> join: carries rd_b, mul *)
  e6 : Cfg.Edge_id.t;  (** join -> s2: carries mux *)
  e7 : Cfg.Edge_id.t;  (** s2 -> loop bottom: carries wr *)
  (* Operations of the main computation. *)
  rd_a : Dfg.Op_id.t;
  add : Dfg.Op_id.t;
  div : Dfg.Op_id.t;
  sub : Dfg.Op_id.t;
  rd_b : Dfg.Op_id.t;
  mul : Dfg.Op_id.t;
  mux : Dfg.Op_id.t;
  wr : Dfg.Op_id.t;
}

val table3 : unit -> t
(** The eight-op main computation, CFG sealed and DFG validated. *)

val full : unit -> t
(** [table3] plus the comparison feeding the branch and the loop index
    computation (increment and bound check, with the loop-carried
    dependency), for integration tests.  The extra ops are reachable via
    {!Dfg.ops}. *)

val table3_samples : (string -> float) list
(** Valuations of [T], [D], [d] satisfying the paper's constraint
    [D + d < T < 2D], for resolving symbolic max/min. *)
