type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  step_edges : Cfg.Edge_id.t array;
  name : string;
}

let build ?(width = 16) ~taps ~latency () =
  if taps < 2 then invalid_arg "Fir.build: taps must be >= 2";
  if latency < 2 then invalid_arg "Fir.build: latency must be >= 2";
  let cfg = Cfg.create () in
  let loop_top = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg (Cfg.start cfg) loop_top);
  let step_edges = Array.make latency (Cfg.Edge_id.of_int 0) in
  let prev = ref loop_top in
  for s = 0 to latency - 1 do
    let st = Cfg.add_node cfg Cfg.State in
    step_edges.(s) <- Cfg.add_edge cfg !prev st;
    prev := st
  done;
  let loop_bottom = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg !prev loop_bottom);
  ignore (Cfg.add_edge cfg loop_bottom loop_top);
  Cfg.seal cfg;
  let dfg = Dfg.create cfg in
  let first = step_edges.(0) and last = step_edges.(latency - 1) in
  let rd = Dfg.add_op dfg ~kind:(Dfg.Read "x") ~width ~birth:first ~name:"rd_x" () in
  (* Shift line: z.(0) is the fresh sample; z.(k) holds x[n-k].  Each shift
     op copies the previous stage; its consumers in the next iteration use
     the value through a loop-carried dependency.  Model the copy as an OR
     with a folded zero (a pass-through logic op). *)
  let shifts = Array.make taps rd in
  for k = 1 to taps - 1 do
    let sh =
      Dfg.add_op dfg ~kind:Dfg.Lor ~width ~birth:first
        ~name:(Printf.sprintf "shift_%d" k)
        ()
    in
    (* This iteration's z[k] copies the previous iteration's z[k-1]. *)
    Dfg.add_dep dfg ~src:shifts.(k - 1) ~dst:sh ~loop_carried:true ();
    shifts.(k) <- sh
  done;
  (* Tap products: coefficient constants folded, so each mul has a single
     data dependency. *)
  let prods =
    Array.mapi
      (fun k z ->
        let m =
          Dfg.add_op dfg ~kind:Dfg.Mul ~width ~birth:first
            ~name:(Printf.sprintf "tap_%d" k)
            ()
        in
        (if k = 0 then Dfg.add_dep dfg ~src:z ~dst:m ()
         else Dfg.add_dep dfg ~src:z ~dst:m ~loop_carried:true ());
        m)
      shifts
  in
  (* Balanced adder tree. *)
  let rec reduce level = function
    | [] -> invalid_arg "Fir.build: empty reduction"
    | [ x ] -> x
    | xs ->
      let rec pair acc i = function
        | a :: b :: rest ->
          let s =
            Dfg.add_op dfg ~kind:Dfg.Add ~width ~birth:first
              ~name:(Printf.sprintf "acc_%d_%d" level i)
              ()
          in
          Dfg.add_dep dfg ~src:a ~dst:s ();
          Dfg.add_dep dfg ~src:b ~dst:s ();
          pair (s :: acc) (i + 1) rest
        | [ a ] -> pair (a :: acc) (i + 1) []
        | [] -> List.rev acc
      in
      reduce (level + 1) (pair [] 0 xs)
  in
  let sum = reduce 0 (Array.to_list prods) in
  let wr = Dfg.add_op dfg ~kind:(Dfg.Write "y") ~width ~birth:last ~name:"wr_y" () in
  Dfg.add_dep dfg ~src:sum ~dst:wr ();
  Dfg.validate dfg;
  { cfg; dfg; step_edges; name = Printf.sprintf "fir%d-L%d" taps latency }
