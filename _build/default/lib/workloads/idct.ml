type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  step_edges : Cfg.Edge_id.t array;
  name : string;
}

(* One 1-D Chen 8-point IDCT stage: inputs are 8 op ids producing the
   spectral coefficients; returns the 8 spatial outputs.  16 muls, 26
   add/subs. *)
let chen_1d dfg ~width ~birth ~tag inputs =
  let op kind a b name =
    let id = Dfg.add_op dfg ~kind ~width ~birth ~name:(tag ^ name) () in
    Dfg.add_dep dfg ~src:a ~dst:id ();
    (match b with Some b -> Dfg.add_dep dfg ~src:b ~dst:id () | None -> ());
    id
  in
  let mul a name = op Dfg.Mul a None name in
  let add a b name = op Dfg.Add a (Some b) name in
  let sub a b name = op Dfg.Sub a (Some b) name in
  match inputs with
  | [| x0; x1; x2; x3; x4; x5; x6; x7 |] ->
    (* Even part. *)
    let m0 = mul x0 "m_x0c4" and m4 = mul x4 "m_x4c4" in
    let e0 = add m0 m4 "e0" and e1 = sub m0 m4 "e1" in
    let m2a = mul x2 "m_x2c2" and m6a = mul x6 "m_x6c6" in
    let m2b = mul x2 "m_x2c6" and m6b = mul x6 "m_x6c2" in
    let e2 = add m2a m6a "e2" and e3 = sub m2b m6b "e3" in
    let f0 = add e0 e2 "f0" and f3 = sub e0 e2 "f3" in
    let f1 = add e1 e3 "f1" and f2 = sub e1 e3 "f2" in
    (* Odd part. *)
    let m1a = mul x1 "m_x1c1" and m7a = mul x7 "m_x7c7" in
    let m1b = mul x1 "m_x1c7" and m7b = mul x7 "m_x7c1" in
    let m5a = mul x5 "m_x5c5" and m3a = mul x3 "m_x3c3" in
    let m5b = mul x5 "m_x5c3" and m3b = mul x3 "m_x3c5" in
    let o0 = add m1a m7a "o0" and o1 = sub m1b m7b "o1" in
    let o2 = add m5a m3a "o2" and o3 = sub m5b m3b "o3" in
    let g0 = add o0 o2 "g0" and g1 = sub o0 o2 "g1" in
    let g3 = add o1 o3 "g3" and g2 = sub o1 o3 "g2" in
    let h1s = add g1 g2 "h1s" and h2s = sub g2 g1 "h2s" in
    let h1 = mul h1s "h1c4" and h2 = mul h2s "h2c4" in
    (* Recombination. *)
    [|
      add f0 g0 "y0"; add f1 h1 "y1"; add f2 h2 "y2"; add f3 g3 "y3";
      sub f3 g3 "y4"; sub f2 h2 "y5"; sub f1 h1 "y6"; sub f0 g0 "y7";
    |]
  | _ -> invalid_arg "Idct.chen_1d: expected 8 inputs"

let build ?(width = 16) ~latency ~passes () =
  if latency < 2 then invalid_arg "Idct.build: latency must be >= 2";
  if passes < 1 then invalid_arg "Idct.build: passes must be >= 1";
  let cfg = Cfg.create () in
  let loop_top = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg (Cfg.start cfg) loop_top);
  let step_edges = Array.make latency (Cfg.Edge_id.of_int 0) in
  let prev = ref loop_top in
  for s = 0 to latency - 1 do
    let st = Cfg.add_node cfg Cfg.State in
    step_edges.(s) <- Cfg.add_edge cfg !prev st;
    prev := st
  done;
  let loop_bottom = Cfg.add_node cfg Cfg.Plain in
  ignore (Cfg.add_edge cfg !prev loop_bottom);
  ignore (Cfg.add_edge cfg loop_bottom loop_top);
  Cfg.seal cfg;
  let dfg = Dfg.create cfg in
  let first = step_edges.(0) and last = step_edges.(latency - 1) in
  let reads =
    Array.init 8 (fun i ->
        Dfg.add_op dfg
          ~kind:(Dfg.Read (Printf.sprintf "x%d" i))
          ~width ~birth:first
          ~name:(Printf.sprintf "rd_x%d" i)
          ())
  in
  let outs = ref reads in
  for p = 1 to passes do
    let tag = if passes = 1 then "" else Printf.sprintf "p%d_" p in
    outs := chen_1d dfg ~width ~birth:first ~tag !outs
  done;
  Array.iteri
    (fun i v ->
      let wr =
        Dfg.add_op dfg
          ~kind:(Dfg.Write (Printf.sprintf "y%d" i))
          ~width ~birth:last
          ~name:(Printf.sprintf "wr_y%d" i)
          ()
      in
      Dfg.add_dep dfg ~src:v ~dst:wr ())
    !outs;
  Dfg.validate dfg;
  {
    cfg;
    dfg;
    step_edges;
    name = Printf.sprintf "idct8x%d-L%d" passes latency;
  }

let count_kind t k =
  let n = ref 0 in
  Dfg.iter_ops t.dfg (fun o -> if o.Dfg.kind = k then incr n);
  !n

let mul_count t = count_kind t Dfg.Mul
let add_count t = count_kind t Dfg.Add + count_kind t Dfg.Sub

type design_point = {
  id : string;
  latency : int;
  passes : int;
  ii : int option;
  clock : float;
}

let table4_points =
  let clock = 2500.0 in
  let single = [ 32; 28; 24; 20; 16; 12; 10; 8 ] in
  let pipelined = [ 12; 10; 8; 6; 5; 4; 3 ] in
  List.mapi
    (fun i latency ->
      { id = Printf.sprintf "D%d" (i + 1); latency; passes = 1; ii = None; clock })
    single
  @ List.mapi
      (fun i ii ->
        { id = Printf.sprintf "D%d" (i + 9); latency = 16; passes = 1; ii = Some ii; clock })
      pipelined

let instantiate p = build ~latency:p.latency ~passes:p.passes ()
