lib/workloads/interpolation.ml: Array Cfg Dfg
