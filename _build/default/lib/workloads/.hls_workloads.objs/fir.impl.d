lib/workloads/fir.ml: Array Cfg Dfg List Printf
