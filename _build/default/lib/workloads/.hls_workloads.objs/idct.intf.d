lib/workloads/idct.mli: Cfg Dfg
