lib/workloads/idct.ml: Array Cfg Dfg List Printf
