lib/workloads/resizer.mli: Cfg Dfg
