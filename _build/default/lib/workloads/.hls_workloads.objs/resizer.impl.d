lib/workloads/resizer.ml: Cfg Dfg
