lib/workloads/interpolation.mli: Cfg Dfg
