lib/workloads/random_design.mli: Cfg Dfg
