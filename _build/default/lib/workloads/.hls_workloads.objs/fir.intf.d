lib/workloads/fir.mli: Cfg Dfg
