lib/workloads/random_design.ml: Array Cfg Dfg Int64 List Printf Splitmix
