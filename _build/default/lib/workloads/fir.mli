(** N-tap FIR filter workload.

    y[n] = sum_k c_k * x[n-k]: one multiply per tap (the coefficient is a
    constant, folded away from timing) feeding an adder tree of logarithmic
    depth.  Tap inputs beyond the current sample are previous-iteration
    values held in the shift line, so they carry loop-carried dependencies
    from the shift assignments.  A useful mid-size design between the
    interpolation toy and the IDCT. *)

type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  step_edges : Cfg.Edge_id.t array;
  name : string;
}

val build : ?width:int -> taps:int -> latency:int -> unit -> t
(** [taps >= 2], [latency >= 2]. *)
