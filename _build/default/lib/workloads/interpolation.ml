type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  step_edges : Cfg.Edge_id.t array;
  muls_x : Dfg.Op_id.t array;
  muls_d : Dfg.Op_id.t array;
  adds : Dfg.Op_id.t array;
  wr : Dfg.Op_id.t;
}

let clock = 1100.0

let unrolled () =
  let cfg = Cfg.create () in
  let loop_top = Cfg.add_node cfg Cfg.Plain in
  let s1 = Cfg.add_node cfg Cfg.State in
  let s2 = Cfg.add_node cfg Cfg.State in
  let s3 = Cfg.add_node cfg Cfg.State in
  let loop_bottom = Cfg.add_node cfg Cfg.Plain in
  let _e0 = Cfg.add_edge cfg (Cfg.start cfg) loop_top in
  let e1 = Cfg.add_edge cfg loop_top s1 in
  let e2 = Cfg.add_edge cfg s1 s2 in
  let e3 = Cfg.add_edge cfg s2 s3 in
  let _e4 = Cfg.add_edge cfg s3 loop_bottom in
  let _e_back = Cfg.add_edge cfg loop_bottom loop_top in
  Cfg.seal cfg;
  let dfg = Dfg.create cfg in
  (* x-chain: x1 = x0*dX0, x2 = x1*dX1, x3 = x2*dX2, x4 = x3*dX3(d-chain
     only has three live updates).  All births on the first step edge. *)
  let mul i name = Dfg.add_op dfg ~kind:Dfg.Mul ~width:8 ~birth:e1 ~name:(name ^ string_of_int i) () in
  let muls_x = Array.init 4 (fun i -> mul (i + 1) "mx") in
  let muls_d = Array.init 3 (fun i -> mul (i + 1) "md") in
  let adds =
    Array.init 4 (fun i ->
        Dfg.add_op dfg ~kind:Dfg.Add ~width:16 ~birth:e1 ~name:("a" ^ string_of_int (i + 1)) ())
  in
  let wr = Dfg.add_op dfg ~kind:(Dfg.Write "fx") ~width:16 ~birth:e3 ~name:"wr" () in
  (* x_{i+1} = x_i * dX_i: mx.(i) consumes mx.(i-1) and md.(i-1). *)
  for i = 1 to 3 do
    Dfg.add_dep dfg ~src:muls_x.(i - 1) ~dst:muls_x.(i) ();
    Dfg.add_dep dfg ~src:muls_d.(i - 1) ~dst:muls_x.(i) ()
  done;
  (* deltaX chain: dX_{i+1} = dX_i * scale (scale constant). *)
  for i = 1 to 2 do
    Dfg.add_dep dfg ~src:muls_d.(i - 1) ~dst:muls_d.(i) ()
  done;
  (* sum chain: a_i = a_{i-1} + x_i. *)
  for i = 0 to 3 do
    Dfg.add_dep dfg ~src:muls_x.(i) ~dst:adds.(i) ();
    if i > 0 then Dfg.add_dep dfg ~src:adds.(i - 1) ~dst:adds.(i) ()
  done;
  Dfg.add_dep dfg ~src:adds.(3) ~dst:wr ();
  Dfg.validate dfg;
  { cfg; dfg; step_edges = [| e1; e2; e3 |]; muls_x; muls_d; adds; wr }

let all_muls t = Array.to_list t.muls_x @ Array.to_list t.muls_d
let all_adds t = Array.to_list t.adds
