(** The paper's §II interpolation example (Figures 1–2, Table 2).

    {v
    while (true) {
      for (int i = 0; i < 4; i++) {   // unrolled: 4 iterations / 3 cycles
        x *= deltaX; deltaX *= scale; sum += x;
      }
      wait(); fx.write(sum);
    }
    v}

    Unrolling yields the Figure 2(a) DFG: seven multiplications (four on
    the [x] chain, three on the [deltaX] chain — the last [deltaX] update
    is dead) and four additions accumulating [sum], closed by the write.
    The CFG provides the three control steps of the paper's target
    throughput; all computation is born on the first step's edge and is
    free to move, while the write is fixed on the last step's edge.

    Clock period: 1100 ps.  Multipliers are the paper's 8x8 Table 1 curve
    and adders the 16-bit one. *)

type t = {
  cfg : Cfg.t;
  dfg : Dfg.t;
  step_edges : Cfg.Edge_id.t array;  (** the three control-step edges *)
  muls_x : Dfg.Op_id.t array;  (** x-chain multiplications, length 4 *)
  muls_d : Dfg.Op_id.t array;  (** deltaX-chain multiplications, length 3 *)
  adds : Dfg.Op_id.t array;    (** sum accumulation, length 4 *)
  wr : Dfg.Op_id.t;
}

val clock : float
(** 1100 ps. *)

val unrolled : unit -> t

val all_muls : t -> Dfg.Op_id.t list
val all_adds : t -> Dfg.Op_id.t list
