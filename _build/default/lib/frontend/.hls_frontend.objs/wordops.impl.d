lib/frontend/wordops.ml: Ast Dfg
