lib/frontend/elaborate.ml: Ast Cfg Dfg Hashtbl List Printf String Transform Wordops
