lib/frontend/lexer.mli:
