lib/frontend/transform.ml: Ast List Printf
