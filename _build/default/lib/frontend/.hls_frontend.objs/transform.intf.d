lib/frontend/transform.mli: Ast
