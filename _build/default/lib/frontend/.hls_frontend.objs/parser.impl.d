lib/frontend/parser.ml: Ast Fun Lexer List Printf String
