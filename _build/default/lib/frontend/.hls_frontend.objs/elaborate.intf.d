lib/frontend/elaborate.mli: Ast Cfg Dfg
