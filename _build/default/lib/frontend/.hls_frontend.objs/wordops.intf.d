lib/frontend/wordops.mli: Ast Dfg
