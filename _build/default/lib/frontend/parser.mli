(** Recursive-descent parser for the behavioral input language.

    {v
    process resizer {
      port in  a   : 16;
      port in  b   : 16;
      port out y   : 16;
      var x : 16;  var r : 16;
      loop {
        x = read(a) + 100;
        if (x > 50) { wait; r = x / 3 - 100; }
        else        { wait; r = x * read(b); }
        wait;
        write(y, r);
      }
    }
    v} *)

exception Error of { line : int; message : string }

val parse : string -> Ast.process
(** Raises {!Error} (or {!Lexer.Error}) on malformed input. *)

val parse_file : string -> Ast.process
