(** Source-level transformations applied before elaboration. *)

val unroll : Ast.stmt list -> Ast.stmt list
(** Fully unroll every statically bounded [For] loop (recursively),
    substituting the index by its constant value in each copy.  Raises
    [Invalid_argument] when a loop bound is non-positive or the expansion
    exceeds a sanity limit (100k statements). *)

val unroll_process : Ast.process -> Ast.process

val count_statements : Ast.stmt list -> int
(** Total statements, including nested ones. *)

val states_in : Ast.stmt list -> int
(** Number of [Wait] statements on the longest path (ifs take the max of
    their branches) — the latency in cycles of one body iteration. *)
