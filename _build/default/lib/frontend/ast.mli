(** Behavioral input language (a small SystemC-thread-like subset).

    A {e process} is an infinite loop of statements; [Wait] statements mark
    clock-state boundaries (SystemC [wait()]), [If] forks control flow, and
    bounded [For] loops can be unrolled by {!Transform.unroll}.  Ports are
    blocking channel reads/writes fixed at their program point. *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bshl | Bshr | Band | Bor | Bxor
  | Blt | Ble | Beq | Bne | Bge | Bgt

type unop = Unot | Uneg

type expr =
  | Int of int
  | Var of string
  | Read of string         (** [read(port)] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt =
  | Assign of string * expr
  | Write of string * expr  (** [write(port, e)] *)
  | Wait
  | If of expr * stmt list * stmt list
  | For of { index : string; from_ : int; below : int; body : stmt list }
      (** [for (index = from_; index < below; index++) body] *)

type port_decl = { port : string; width : int; is_input : bool }
type var_decl = { var : string; vwidth : int }

type process = {
  proc_name : string;
  ports : port_decl list;
  vars : var_decl list;
  body : stmt list;  (** the body of the implicit [while(true)] loop *)
}

val binop_name : binop -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_process : Format.formatter -> process -> unit

val subst_var : string -> expr -> expr -> expr
(** [subst_var x v e] replaces free occurrences of [Var x] in [e] by [v]. *)

val stmt_subst_index : string -> int -> stmt -> stmt
(** Substitute a loop index by a constant throughout a statement (used by
    unrolling).  Assignments to the index itself are dropped. *)
