let limit = 100_000

let rec count_statements stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Ast.Assign _ | Ast.Write _ | Ast.Wait -> 1
      | Ast.If (_, t, e) -> 1 + count_statements t + count_statements e
      | Ast.For { body; _ } -> 1 + count_statements body)
    0 stmts

let rec unroll stmts =
  List.concat_map
    (fun s ->
      match s with
      | Ast.Assign _ | Ast.Write _ | Ast.Wait -> [ s ]
      | Ast.If (c, t, e) -> [ Ast.If (c, unroll t, unroll e) ]
      | Ast.For { index; from_; below; body } ->
        if below <= from_ then
          invalid_arg
            (Printf.sprintf "Transform.unroll: empty loop on %s (%d..%d)" index from_ below);
        let copies = ref [] in
        for i = below - 1 downto from_ do
          let copy = List.map (Ast.stmt_subst_index index i) body in
          copies := unroll copy @ !copies
        done;
        if count_statements !copies > limit then
          invalid_arg "Transform.unroll: expansion exceeds statement limit";
        !copies)
    stmts

let unroll_process p = { p with Ast.body = unroll p.Ast.body }

let rec states_in stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Ast.Wait -> 1
      | Ast.Assign _ | Ast.Write _ -> 0
      | Ast.If (_, t, e) -> max (states_in t) (states_in e)
      | Ast.For { body; from_; below; _ } -> max 0 (below - from_) * states_in body)
    0 stmts
