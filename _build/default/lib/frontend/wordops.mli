(** Fixed-width integer semantics shared by every simulator: values are
    unsigned words of the operation's declared width, wrapping on overflow.
    Division and modulo by zero yield zero (hardware-friendly total
    semantics, also what speculative evaluation of untaken branches
    needs). *)

val mask : width:int -> int -> int
(** Truncate to the low [width] bits (width capped at 62 to stay within
    OCaml's native int). *)

val binop : Ast.binop -> width:int -> int -> int -> int
val unop : Ast.unop -> width:int -> int -> int

val op_kind : Dfg.op_kind -> width:int -> int list -> int
(** Evaluate a DFG operation on its operand values (in positional order).
    [Mux] expects [then_v; else_v; cond].  [Read]/[Write]/[Const] are the
    caller's business and raise [Invalid_argument]. *)
