let mask ~width v =
  let w = min width 62 in
  v land ((1 lsl w) - 1)

let bool_int b = if b then 1 else 0

let binop (op : Ast.binop) ~width a b =
  let m = mask ~width in
  match op with
  | Ast.Badd -> m (a + b)
  | Ast.Bsub -> m (a - b)
  | Ast.Bmul -> m (a * b)
  | Ast.Bdiv -> if b = 0 then 0 else m (a / b)
  | Ast.Bmod -> if b = 0 then 0 else m (a mod b)
  | Ast.Bshl -> m (a lsl (b land 63))
  | Ast.Bshr -> m (a lsr (b land 63))
  | Ast.Band -> m (a land b)
  | Ast.Bor -> m (a lor b)
  | Ast.Bxor -> m (a lxor b)
  | Ast.Blt -> bool_int (a < b)
  | Ast.Ble -> bool_int (a <= b)
  | Ast.Beq -> bool_int (a = b)
  | Ast.Bne -> bool_int (a <> b)
  | Ast.Bge -> bool_int (a >= b)
  | Ast.Bgt -> bool_int (a > b)

let unop (op : Ast.unop) ~width a =
  match op with
  | Ast.Unot -> mask ~width (lnot a)
  | Ast.Uneg -> mask ~width (-a)

let op_kind (kind : Dfg.op_kind) ~width args =
  let bin op = match args with
    | [ a; b ] -> binop op ~width a b
    | [ a ] -> binop op ~width a 0
    | _ -> invalid_arg "Wordops.op_kind: bad arity"
  in
  match kind with
  | Dfg.Add -> bin Ast.Badd
  | Dfg.Sub -> bin Ast.Bsub
  | Dfg.Mul -> bin Ast.Bmul
  | Dfg.Div -> bin Ast.Bdiv
  | Dfg.Modulo -> bin Ast.Bmod
  | Dfg.Shl -> bin Ast.Bshl
  | Dfg.Shr -> bin Ast.Bshr
  | Dfg.Land -> bin Ast.Band
  | Dfg.Lor -> bin Ast.Bor
  | Dfg.Lxor -> bin Ast.Bxor
  | Dfg.Lnot -> ( match args with [ a ] -> unop Ast.Unot ~width a | _ -> invalid_arg "lnot arity")
  | Dfg.Cmp Dfg.Lt -> bin Ast.Blt
  | Dfg.Cmp Dfg.Le -> bin Ast.Ble
  | Dfg.Cmp Dfg.Eq -> bin Ast.Beq
  | Dfg.Cmp Dfg.Ne -> bin Ast.Bne
  | Dfg.Cmp Dfg.Ge -> bin Ast.Bge
  | Dfg.Cmp Dfg.Gt -> bin Ast.Bgt
  | Dfg.Mux -> (
    match args with
    | [ t; e; c ] -> if c <> 0 then t else e
    | [ t; e ] -> if t <> 0 then t else e (* degenerate: constant condition folded *)
    | _ -> invalid_arg "Wordops.op_kind: mux arity")
  | Dfg.Read _ | Dfg.Write _ | Dfg.Const _ ->
    invalid_arg "Wordops.op_kind: I/O and constants are caller-handled"
