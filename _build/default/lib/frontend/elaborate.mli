(** Elaboration: behavioral AST -> CFG + DFG (the paper's §IV compilation
    step).

    The process body becomes the body of an infinite loop between
    [loop_top] and [loop_bottom] (closed by a backward edge); [wait]
    statements become state nodes; [if] becomes fork/join with a {e fixed}
    mux (phi) operation per divergent variable on the join's outgoing
    edge; bounded [for] loops are fully unrolled first.

    Values are tracked SSA-style: each variable maps to the operation that
    produced it.  A variable read before its first assignment of the
    iteration refers to the previous iteration's value: the producing
    operation (if any) is connected by a {e loop-carried} dependency,
    which timing analysis excludes per the timed-DFG construction. *)

exception Error of string

type sim_operand =
  | Sop of Dfg.Op_id.t       (** value produced this iteration *)
  | Sconst of int            (** literal *)
  | Sprev of string          (** previous iteration's value of a variable *)

type t = {
  cfg : Cfg.t;       (** sealed *)
  dfg : Dfg.t;       (** validated *)
  process : Ast.process;  (** after unrolling *)
  step_edges : Cfg.Edge_id.t list;
      (** edges opening each control step of the main path, in order *)
  operands : (Dfg.Op_id.t * sim_operand list) list;
      (** per op: its operands in positional order, constants included —
          the DFG itself folds constants away from timing, so simulators
          need this side table *)
  branch_conds : (Cfg.Node_id.t * sim_operand) list;
      (** per fork node: the condition selecting its {e first} out-edge *)
  final_env : (string * sim_operand) list;
      (** value of each assigned variable at the end of one body iteration
          (the source of next iteration's [Sprev] values) *)
}

val elaborate : Ast.process -> t
(** Raises {!Error} on malformed input (undeclared identifiers, bodies
    with a stateless control cycle, division by a constant zero, ...). *)

val operands_of : t -> Dfg.Op_id.t -> sim_operand list
val branch_cond : t -> Cfg.Node_id.t -> sim_operand option
