type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bshl | Bshr | Band | Bor | Bxor
  | Blt | Ble | Beq | Bne | Bge | Bgt

type unop = Unot | Uneg

type expr =
  | Int of int
  | Var of string
  | Read of string
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt =
  | Assign of string * expr
  | Write of string * expr
  | Wait
  | If of expr * stmt list * stmt list
  | For of { index : string; from_ : int; below : int; body : stmt list }

type port_decl = { port : string; width : int; is_input : bool }
type var_decl = { var : string; vwidth : int }

type process = {
  proc_name : string;
  ports : port_decl list;
  vars : var_decl list;
  body : stmt list;
}

let binop_name = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "%"
  | Bshl -> "<<"
  | Bshr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Blt -> "<"
  | Ble -> "<="
  | Beq -> "=="
  | Bne -> "!="
  | Bge -> ">="
  | Bgt -> ">"

let rec pp_expr ppf = function
  | Int v -> Format.pp_print_int ppf v
  | Var x -> Format.pp_print_string ppf x
  | Read p -> Format.fprintf ppf "read(%s)" p
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Unop (Unot, a) -> Format.fprintf ppf "~%a" pp_expr a
  | Unop (Uneg, a) -> Format.fprintf ppf "-%a" pp_expr a

let rec pp_stmt ppf = function
  | Assign (x, e) -> Format.fprintf ppf "%s = %a;" x pp_expr e
  | Write (p, e) -> Format.fprintf ppf "write(%s, %a);" p pp_expr e
  | Wait -> Format.pp_print_string ppf "wait;"
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t;
    if e <> [] then Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_block e
  | For { index; from_; below; body } ->
    Format.fprintf ppf "@[<v 2>for (%s = %d; %s < %d; %s++) {@,%a@]@,}" index from_ index
      below index pp_block body

and pp_block ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_process ppf p =
  Format.fprintf ppf "@[<v 2>process %s {@," p.proc_name;
  List.iter
    (fun d ->
      Format.fprintf ppf "port %s %s : %d;@,"
        (if d.is_input then "in" else "out")
        d.port d.width)
    p.ports;
  List.iter (fun d -> Format.fprintf ppf "var %s : %d;@," d.var d.vwidth) p.vars;
  Format.fprintf ppf "@[<v 2>loop {@,%a@]@,}@]@,}" pp_block p.body

let rec subst_var x v = function
  | Int _ as e -> e
  | Var y when String.equal x y -> v
  | Var _ as e -> e
  | Read _ as e -> e
  | Binop (op, a, b) -> Binop (op, subst_var x v a, subst_var x v b)
  | Unop (op, a) -> Unop (op, subst_var x v a)

let rec stmt_subst_index x v stmt =
  let se = subst_var x (Int v) in
  match stmt with
  | Assign (y, _) when String.equal x y -> Assign (y, Int v) (* dropped by unroll *)
  | Assign (y, e) -> Assign (y, se e)
  | Write (p, e) -> Write (p, se e)
  | Wait -> Wait
  | If (c, t, e) ->
    If (se c, List.map (stmt_subst_index x v) t, List.map (stmt_subst_index x v) e)
  | For ({ index; body; _ } as f) when not (String.equal index x) ->
    For { f with body = List.map (stmt_subst_index x v) body }
  | For _ as s -> s (* inner loop shadows the index *)
