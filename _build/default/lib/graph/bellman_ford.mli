(** Bellman–Ford longest-path solver on a weighted constraint graph.

    This implements the prior-work timing-analysis formulation of
    Chandrachoodan et al. (hierarchical timing pairs), which the paper uses
    as its runtime baseline in Table 5: arrival times are the fixed point of
    relaxation over {e all} edges, iterated up to V times, with no reliance
    on a topological order (so it also accepts cyclic constraint graphs). *)

type edge = { src : int; dst : int; weight : float }

type result =
  | Solution of float array
      (** Longest distance from the virtual source to every node;
          [neg_infinity] when unreachable. *)
  | Positive_cycle of int list
      (** Witness nodes on a positive-weight cycle: the constraint system is
          infeasible. *)

val solve : ?shuffle_seed:int -> node_count:int -> edges:edge list -> sources:int list -> unit -> result
(** [solve ~node_count ~edges ~sources] relaxes until fixpoint or
    [node_count] iterations.  O(V * E).

    [shuffle_seed] permutes the relaxation order deterministically.  A
    generic constraint-graph solver (the prior-work setting this baseline
    models) receives its edges in no particular order — and with cyclic
    constraint graphs no topological order exists — so benchmarks pass a
    seed to avoid gifting the baseline an accidentally near-topological
    order that converges in two sweeps. *)
