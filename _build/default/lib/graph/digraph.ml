type t = {
  mutable n : int;
  mutable m : int;
  mutable succ : int list array; (* stored reversed; exposed in insertion order *)
  mutable pred : int list array;
}

let create ?(initial_capacity = 16) () =
  let cap = max initial_capacity 1 in
  { n = 0; m = 0; succ = Array.make cap []; pred = Array.make cap [] }

let grow t =
  let cap = Array.length t.succ in
  if t.n >= cap then begin
    let ncap = 2 * cap in
    let nsucc = Array.make ncap [] and npred = Array.make ncap [] in
    Array.blit t.succ 0 nsucc 0 cap;
    Array.blit t.pred 0 npred 0 cap;
    t.succ <- nsucc;
    t.pred <- npred
  end

let add_node t =
  grow t;
  let id = t.n in
  t.n <- t.n + 1;
  id

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Digraph: node %d out of range" v)

let add_edge t u v =
  check_node t u;
  check_node t v;
  t.succ.(u) <- v :: t.succ.(u);
  t.pred.(v) <- u :: t.pred.(v);
  t.m <- t.m + 1

let node_count t = t.n
let edge_count t = t.m

let succs t v =
  check_node t v;
  List.rev t.succ.(v)

let preds t v =
  check_node t v;
  List.rev t.pred.(v)

let out_degree t v =
  check_node t v;
  List.length t.succ.(v)

let in_degree t v =
  check_node t v;
  List.length t.pred.(v)

let iter_nodes t f =
  for v = 0 to t.n - 1 do
    f v
  done

let iter_edges t f =
  for u = 0 to t.n - 1 do
    List.iter (fun v -> f u v) (List.rev t.succ.(u))
  done

let fold_nodes t ~init ~f =
  let acc = ref init in
  for v = 0 to t.n - 1 do
    acc := f !acc v
  done;
  !acc

let mem_edge t u v =
  check_node t u;
  check_node t v;
  List.exists (Int.equal v) t.succ.(u)

let copy t =
  { n = t.n; m = t.m; succ = Array.copy t.succ; pred = Array.copy t.pred }

let reverse t =
  let r = create ~initial_capacity:(max t.n 1) () in
  for _ = 1 to t.n do
    ignore (add_node r)
  done;
  iter_edges t (fun u v -> add_edge r v u);
  r
