type edge_class = Tree | Back | Forward_or_cross

(* Iterative DFS with explicit colour marking: white = unvisited, grey = on
   the current DFS stack, black = finished.  An edge into a grey node is a
   back edge. *)
type colour = White | Grey | Black

let dfs_classify g ~roots f =
  let n = Digraph.node_count g in
  let colour = Array.make n White in
  let rec visit u =
    colour.(u) <- Grey;
    List.iter
      (fun v ->
        match colour.(v) with
        | White ->
          f u v Tree;
          visit v
        | Grey -> f u v Back
        | Black -> f u v Forward_or_cross)
      (Digraph.succs g u);
    colour.(u) <- Black
  in
  List.iter (fun r -> if colour.(r) = White then visit r) roots

let back_edges g ~roots =
  let acc = ref [] in
  dfs_classify g ~roots (fun u v cls -> if cls = Back then acc := (u, v) :: !acc);
  List.rev !acc

let reachable g v =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter go (Digraph.succs g u)
    end
  in
  go v;
  seen

let topo_sort g =
  let n = Digraph.node_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr count;
    order := u :: !order;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (Digraph.succs g u)
  done;
  if !count = n then Ok (List.rev !order)
  else begin
    let cyc = ref [] in
    for v = n - 1 downto 0 do
      if indeg.(v) > 0 then cyc := v :: !cyc
    done;
    Error !cyc
  end

let is_dag g = match topo_sort g with Ok _ -> true | Error _ -> false

let topo_sort_exn g =
  match topo_sort g with
  | Ok order -> order
  | Error cyc ->
    failwith
      (Printf.sprintf "Traverse.topo_sort_exn: graph has a cycle through %d node(s)"
         (List.length cyc))
