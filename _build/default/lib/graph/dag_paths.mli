(** Shortest/longest path computations on DAGs.

    These back the CFG latency computation (minimum number of state nodes on
    any forward path) and arrival/required-time propagation. *)

val min_node_weight_paths :
  Digraph.t -> weight:(int -> int) -> source:int -> int option array
(** [min_node_weight_paths g ~weight ~source] returns, for every node [v],
    the minimum over all paths [source ->* v] of the sum of node weights
    along the path, {e including both endpoints}.  [None] when [v] is
    unreachable.  Requires [g] acyclic. *)

val all_pairs_min_node_weight :
  Digraph.t -> weight:(int -> int) -> int option array array
(** [all_pairs_min_node_weight g ~weight] computes the matrix of
    {!min_node_weight_paths} for every source.  O(V * (V + E)).  Requires
    [g] acyclic. *)

val longest_paths :
  Digraph.t -> edge_weight:(int -> int -> float) -> sources:int list -> float option array
(** Longest (critical) path lengths from any of [sources] on a DAG with real
    edge weights; [Some 0.] at the sources themselves. *)
