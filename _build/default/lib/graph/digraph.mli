(** Growable mutable directed graph over dense integer nodes.

    Nodes are integers [0 .. node_count - 1] assigned in creation order.
    Parallel edges and self-loops are permitted (callers that forbid them
    check at a higher level). *)

type t

val create : ?initial_capacity:int -> unit -> t
val add_node : t -> int
(** Returns the new node's index. *)

val add_edge : t -> int -> int -> unit
val node_count : t -> int
val edge_count : t -> int
val succs : t -> int -> int list
(** Successors in insertion order. *)

val preds : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val iter_nodes : t -> (int -> unit) -> unit
val iter_edges : t -> (int -> int -> unit) -> unit
val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val mem_edge : t -> int -> int -> bool
val copy : t -> t

val reverse : t -> t
(** A fresh graph with every edge flipped. *)
