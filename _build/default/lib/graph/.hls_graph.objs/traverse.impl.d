lib/graph/traverse.ml: Array Digraph List Printf Queue
