lib/graph/bellman_ford.ml: Array Int List Splitmix
