lib/graph/dag_paths.mli: Digraph
