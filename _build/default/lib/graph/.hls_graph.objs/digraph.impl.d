lib/graph/digraph.ml: Array Int List Printf
