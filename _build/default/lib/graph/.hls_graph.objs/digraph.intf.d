lib/graph/digraph.mli:
