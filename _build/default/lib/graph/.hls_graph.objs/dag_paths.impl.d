lib/graph/dag_paths.ml: Array Digraph List Traverse
