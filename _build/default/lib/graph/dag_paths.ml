let min_node_weight_paths g ~weight ~source =
  let order = Traverse.topo_sort_exn g in
  let n = Digraph.node_count g in
  let dist = Array.make n None in
  dist.(source) <- Some (weight source);
  List.iter
    (fun v ->
      match dist.(v) with
      | None -> ()
      | Some dv ->
        List.iter
          (fun w ->
            let cand = dv + weight w in
            match dist.(w) with
            | Some dw when dw <= cand -> ()
            | Some _ | None -> dist.(w) <- Some cand)
          (Digraph.succs g v))
    order;
  dist

let all_pairs_min_node_weight g ~weight =
  (* Share one topological order across all sources. *)
  let order = Traverse.topo_sort_exn g in
  let n = Digraph.node_count g in
  Array.init n (fun source ->
      let dist = Array.make n None in
      dist.(source) <- Some (weight source);
      List.iter
        (fun v ->
          match dist.(v) with
          | None -> ()
          | Some dv ->
            List.iter
              (fun w ->
                let cand = dv + weight w in
                match dist.(w) with
                | Some dw when dw <= cand -> ()
                | Some _ | None -> dist.(w) <- Some cand)
              (Digraph.succs g v))
        order;
      dist)

let longest_paths g ~edge_weight ~sources =
  let order = Traverse.topo_sort_exn g in
  let n = Digraph.node_count g in
  let dist = Array.make n None in
  List.iter (fun s -> dist.(s) <- Some 0.0) sources;
  List.iter
    (fun v ->
      match dist.(v) with
      | None -> ()
      | Some dv ->
        List.iter
          (fun w ->
            let cand = dv +. edge_weight v w in
            match dist.(w) with
            | Some dw when dw >= cand -> ()
            | Some _ | None -> dist.(w) <- Some cand)
          (Digraph.succs g v))
    order;
  dist
