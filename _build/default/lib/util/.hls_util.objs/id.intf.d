lib/util/id.mli: Format Hashtbl Map Set
