lib/util/vec.mli:
