lib/util/id.ml: Format Hashtbl Int Map Set
