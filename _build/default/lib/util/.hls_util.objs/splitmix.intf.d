lib/util/splitmix.mli:
