type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 8) () = { data = [||]; len = 0 } |> fun t ->
  ignore capacity;
  t

let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let ncap = max 8 (2 * cap) in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec.%s: index %d out of range" name i)

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len
let to_list t = Array.to_list (to_array t)

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0
