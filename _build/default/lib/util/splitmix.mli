(** Deterministic splitmix64 pseudo-random number generator.

    Used wherever the library needs reproducible randomness (workload
    generation, property-test corpora, shuffles).  Never uses the global
    [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a generator from an integer seed. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for parallel substreams). *)
