(** Closed floating-point intervals [lo, hi].

    Used for per-operation delay ranges during slack budgeting. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi] requires [lo <= hi]. *)

val point : float -> t
val lo : t -> float
val hi : t -> float
val width : t -> float
val mem : float -> t -> bool
val clamp : t -> float -> float
(** [clamp t x] projects [x] into [t]. *)

val intersect : t -> t -> t option
val shift : t -> float -> t
val scale : t -> float -> t
(** [scale t k] multiplies both bounds by [k >= 0]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
