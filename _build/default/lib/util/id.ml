module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t

  module Tbl : sig
    include Hashtbl.S with type key = t
  end
end

module Make () : S = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg "Id.of_int: negative id";
    i

  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash i = i
  let pp ppf i = Format.fprintf ppf "#%d" i

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Set.Make (Ord)
  module Map = Map.Make (Ord)

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end
