(** Growable arrays (amortised O(1) push). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the element's index. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
