type t = { lo : float; hi : float }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x = { lo = x; hi = x }
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let mem x t = t.lo <= x && x <= t.hi
let clamp t x = if x < t.lo then t.lo else if x > t.hi then t.hi else x

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let shift t dx = { lo = t.lo +. dx; hi = t.hi +. dx }

let scale t k =
  if k < 0.0 then invalid_arg "Interval.scale: negative factor";
  { lo = t.lo *. k; hi = t.hi *. k }

let equal a b = Float.equal a.lo b.lo && Float.equal a.hi b.hi
let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
