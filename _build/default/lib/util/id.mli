(** Typed integer identifiers.

    Each instantiation of {!Make} produces a distinct abstract id type, so
    that e.g. CFG edge ids cannot be confused with DFG operation ids at
    compile time.  Ids are dense non-negative integers assigned by the
    owning container. *)

module type S = sig
  type t

  val of_int : int -> t
  (** [of_int i] views [i] as an id.  Raises [Invalid_argument] if [i < 0]. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t

  module Tbl : sig
    include Hashtbl.S with type key = t
  end
end

module Make () : S
