type align = Left | Right
type row = Cells of string list | Separator

type t = {
  headers : string list;
  ncols : int;
  mutable rows : row list; (* reversed *)
  aligns : align array;
}

let create ~headers =
  let ncols = List.length headers in
  if ncols = 0 then invalid_arg "Text_table.create: no headers";
  let aligns = Array.init ncols (fun i -> if i = 0 then Left else Right) in
  { headers; ncols; rows = []; aligns }

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Text_table.add_row: too many cells";
  let padded = cells @ List.init (t.ncols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let set_align t i align =
  if i < 0 || i >= t.ncols then invalid_arg "Text_table.set_align: bad column";
  t.aligns.(i) <- align

let widths t =
  let w = Array.make t.ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let line cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad t.aligns.(i) w.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let sep () =
    let total = Array.fold_left ( + ) 0 w + (2 * (t.ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  line t.headers;
  sep ();
  List.iter (function Cells c -> line c | Separator -> sep ()) (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x
let cell_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals x
