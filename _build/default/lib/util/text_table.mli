(** Minimal ASCII table rendering, used by the benchmark harness and CLI to
    print paper-style tables. *)

type align = Left | Right

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_separator : t -> unit
val set_align : t -> int -> align -> unit
(** Default alignment is [Left] for column 0 and [Right] otherwise. *)

val render : t -> string
val print : t -> unit

val cell_float : ?decimals:int -> float -> string
val cell_pct : ?decimals:int -> float -> string
