module Smap = Map.Make (String)

type t = { c : float; terms : float Smap.t }

let normalize t = { t with terms = Smap.filter (fun _ v -> Float.abs v > 1e-12) t.terms }
let const c = { c; terms = Smap.empty }
let param x = { c = 0.0; terms = Smap.singleton x 1.0 }
let zero = const 0.0

let add a b =
  normalize
    {
      c = a.c +. b.c;
      terms =
        Smap.union (fun _ x y -> Some (x +. y)) a.terms b.terms;
    }

let scale k a = normalize { c = k *. a.c; terms = Smap.map (fun v -> k *. v) a.terms }
let neg a = scale (-1.0) a
let sub a b = add a (neg b)
let coeff t x = match Smap.find_opt x t.terms with Some v -> v | None -> 0.0
let const_part t = t.c
let eval t valu = Smap.fold (fun x v acc -> acc +. (v *. valu x)) t.terms t.c

let equal a b =
  Float.abs (a.c -. b.c) < 1e-9
  && Smap.equal (fun x y -> Float.abs (x -. y) < 1e-9) (normalize a).terms (normalize b).terms

let compare_at valu a b = Float.compare (eval a valu) (eval b valu)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then string_of_int (int_of_float v)
  else Printf.sprintf "%g" v

let pp ?(order = []) ppf t =
  let t = normalize t in
  let listed, rest =
    List.fold_left
      (fun (acc, terms) x ->
        match Smap.find_opt x terms with
        | Some v -> ((x, v) :: acc, Smap.remove x terms)
        | None -> (acc, terms))
      ([], t.terms) order
  in
  let ordered = List.rev listed @ Smap.bindings rest in
  let buf = Buffer.create 16 in
  let first = ref true in
  let emit_term sign body =
    if !first then begin
      if sign < 0 then Buffer.add_string buf "-";
      Buffer.add_string buf body;
      first := false
    end
    else begin
      Buffer.add_string buf (if sign < 0 then " - " else " + ");
      Buffer.add_string buf body
    end
  in
  List.iter
    (fun (x, v) ->
      let mag = Float.abs v in
      let body = if Float.abs (mag -. 1.0) < 1e-12 then x else float_str mag ^ x in
      emit_term (if v < 0.0 then -1 else 1) body)
    ordered;
  if Float.abs t.c > 1e-12 || !first then
    emit_term (if t.c < 0.0 then -1 else 1) (float_str (Float.abs t.c));
  Format.pp_print_string ppf (Buffer.contents buf)

let to_string ?order t = Format.asprintf "%a" (pp ?order) t
