(** Affine expressions over named parameters: [c0 + sum ci * xi].

    Used by {!Parametric} to reproduce the paper's Table 3, whose entries
    are symbolic in the clock period [T], the operation delay [D] and the
    I/O delay [d]. *)

type t

val const : float -> t
val param : string -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val coeff : t -> string -> float
val const_part : t -> float
val eval : t -> (string -> float) -> float
val equal : t -> t -> bool
val compare_at : (string -> float) -> t -> t -> int
(** Numeric comparison under a valuation. *)

val pp : ?order:string list -> Format.formatter -> t -> unit
(** Renders e.g. [2T - 4D - d]; [order] fixes the parameter print order
    (unlisted parameters follow alphabetically). *)

val to_string : ?order:string list -> t -> string
