lib/timing/parametric.mli: Affine Dfg Timed_dfg
