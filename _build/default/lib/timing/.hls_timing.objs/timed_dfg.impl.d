lib/timing/timed_dfg.ml: Array Cfg Dfg Format List Printf
