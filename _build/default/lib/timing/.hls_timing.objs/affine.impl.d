lib/timing/affine.ml: Buffer Float Format List Map Printf String
