lib/timing/slack.mli: Dfg Timed_dfg
