lib/timing/affine.mli: Format
