lib/timing/timed_dfg.mli: Dfg Format
