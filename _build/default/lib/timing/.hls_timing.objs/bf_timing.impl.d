lib/timing/bf_timing.ml: Array Bellman_ford Dfg List Slack Timed_dfg
