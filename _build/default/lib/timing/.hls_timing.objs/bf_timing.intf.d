lib/timing/bf_timing.mli: Dfg Slack Timed_dfg
