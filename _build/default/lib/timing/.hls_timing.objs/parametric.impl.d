lib/timing/parametric.ml: Affine Array Dfg Float Format List Printf Timed_dfg
