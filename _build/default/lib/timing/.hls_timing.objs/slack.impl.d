lib/timing/slack.ml: Array Dfg Float List Timed_dfg
