(** Symbolic sequential-slack analysis with affine delays.

    Reproduces the paper's Table 3: with [del] returning affine expressions
    (e.g. [d] for I/O operations and [D] for everything else) and the clock
    period an affine parameter [T], arrival, required and slack come out as
    affine expressions such as [2T - 4D - d].

    The max/min in the propagation rules cannot always be resolved
    symbolically; they are resolved by evaluating the candidates under a
    set of sample valuations of the parameter region (for Table 3:
    [D + d < T < 2D]).  If two samples disagree about which candidate
    dominates, the region is genuinely split and {!Ambiguous} is raised. *)

exception Ambiguous of string

type result = {
  arr : Affine.t array;   (** by op index; {!Affine.zero} for inactive ops *)
  req : Affine.t array;
  slack : Affine.t array;
}

val analyze :
  Timed_dfg.t ->
  clock:Affine.t ->
  del:(Dfg.Op_id.t -> Affine.t) ->
  samples:(string -> float) list ->
  result
(** [samples] must be non-empty; every valuation should satisfy the
    intended parameter constraints. *)

val critical_ops : Timed_dfg.t -> result -> samples:(string -> float) list -> Dfg.Op_id.t list
(** Ops whose slack equals the symbolic minimum (resolved by sampling). *)
