exception Ambiguous of string

type result = {
  arr : Affine.t array;
  req : Affine.t array;
  slack : Affine.t array;
}

(* Select the extremal candidate under every sample; candidates that tie
   everywhere are merged (they are equal on the region of interest). *)
let select ~what ~better samples = function
  | [] -> invalid_arg ("Parametric.select: no candidates for " ^ what)
  | first :: _ as candidates ->
    let best_at valu =
      List.fold_left
        (fun best c -> if better (Affine.compare_at valu c best) then c else best)
        first candidates
    in
    (match samples with
    | [] -> invalid_arg "Parametric: empty sample list"
    | s0 :: rest ->
      let b0 = best_at s0 in
      List.iter
        (fun s ->
          let b = best_at s in
          if not (Affine.equal b b0) then begin
            (* Equal-valued distinct representations are fine. *)
            let v0 = Affine.eval b0 s and v = Affine.eval b s in
            if Float.abs (v0 -. v) > 1e-6 then
              raise
                (Ambiguous
                   (Printf.sprintf "%s: dominance flips between samples (%s vs %s)" what
                      (Affine.to_string b0) (Affine.to_string b)))
          end)
        rest;
      b0)

let select_max ~what samples cands = select ~what ~better:(fun c -> c > 0) samples cands
let select_min ~what samples cands = select ~what ~better:(fun c -> c < 0) samples cands

let analyze tdfg ~clock ~del ~samples =
  let dfg = Timed_dfg.dfg tdfg in
  let n = Dfg.op_count dfg in
  let arr = Array.make n Affine.zero and req = Array.make n Affine.zero in
  let sink_arr = Array.make n Affine.zero and sink_req = Array.make n Affine.zero in
  let get_arr = function
    | Timed_dfg.Op o -> arr.(Dfg.Op_id.to_int o)
    | Timed_dfg.Sink o -> sink_arr.(Dfg.Op_id.to_int o)
  in
  let get_req = function
    | Timed_dfg.Op o -> req.(Dfg.Op_id.to_int o)
    | Timed_dfg.Sink o -> sink_req.(Dfg.Op_id.to_int o)
  in
  let node_del = function Timed_dfg.Op o -> del o | Timed_dfg.Sink _ -> Affine.zero in
  let node_name = Format.asprintf "%a" Timed_dfg.pp_node in
  let order = Timed_dfg.topo tdfg in
  List.iter
    (fun node ->
      let preds = Timed_dfg.preds tdfg node in
      let a =
        if preds = [] then Affine.zero
        else begin
          let cands =
            List.map
              (fun (p, lat) ->
                Affine.add (get_arr p)
                  (Affine.sub (node_del p) (Affine.scale (float_of_int lat) clock)))
              preds
          in
          select_max ~what:("arr of " ^ node_name node) samples cands
        end
      in
      match node with
      | Timed_dfg.Op o -> arr.(Dfg.Op_id.to_int o) <- a
      | Timed_dfg.Sink o -> sink_arr.(Dfg.Op_id.to_int o) <- a)
    order;
  List.iter
    (fun node ->
      let succs = Timed_dfg.succs tdfg node in
      let d = node_del node in
      let r =
        if succs = [] then clock
        else begin
          let cands =
            List.map
              (fun (s, lat) ->
                Affine.add
                  (Affine.sub (get_req s) d)
                  (Affine.scale (float_of_int lat) clock))
              succs
          in
          select_min ~what:("req of " ^ node_name node) samples cands
        end
      in
      match node with
      | Timed_dfg.Op o -> req.(Dfg.Op_id.to_int o) <- r
      | Timed_dfg.Sink o -> sink_req.(Dfg.Op_id.to_int o) <- r)
    (List.rev order);
  let slack = Array.init n (fun i -> Affine.sub req.(i) arr.(i)) in
  { arr; req; slack }

let critical_ops tdfg result ~samples =
  let ops = Timed_dfg.active_ops tdfg in
  match (ops, samples) with
  | [], _ -> []
  | _, [] -> invalid_arg "Parametric.critical_ops: empty sample list"
  | first :: _, s0 :: _ ->
    let min_slack =
      List.fold_left
        (fun best o ->
          let s = result.slack.(Dfg.Op_id.to_int o) in
          if Affine.compare_at s0 s best < 0 then s else best)
        result.slack.(Dfg.Op_id.to_int first)
        ops
    in
    List.filter
      (fun o ->
        let s = result.slack.(Dfg.Op_id.to_int o) in
        List.for_all
          (fun valu -> Float.abs (Affine.eval s valu -. Affine.eval min_slack valu) < 1e-6)
          samples)
      ops
