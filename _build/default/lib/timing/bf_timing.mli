(** Bellman–Ford timing-analysis baseline (prior work, paper ref. [10]).

    Computes the same arrival/required/slack values as {!Slack.analyze}
    (non-aligned) but by fixpoint relaxation over the full constraint edge
    list instead of a single topologically ordered pass — O(V*E) versus
    O(E).  The paper's Table 5 measures this formulation at roughly 10x the
    scheduling time of the sequential-slack formulation; the benchmark
    harness reproduces that comparison. *)

val analyze : Timed_dfg.t -> clock:float -> del:(Dfg.Op_id.t -> float) -> Slack.result
