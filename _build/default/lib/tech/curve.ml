type point = { delay : float; area : float }
type t = { pts : point array }

let make pts =
  match pts with
  | [] -> invalid_arg "Curve.make: empty curve"
  | first :: rest ->
    let _ =
      List.fold_left
        (fun prev p ->
          if p.delay <= prev.delay then
            invalid_arg "Curve.make: delays must be strictly increasing";
          if p.area > prev.area then
            invalid_arg "Curve.make: areas must be non-increasing";
          p)
        first rest
    in
    List.iter
      (fun p ->
        if p.delay < 0.0 || p.area < 0.0 then
          invalid_arg "Curve.make: negative delay or area")
      pts;
    { pts = Array.of_list pts }

let of_pairs l = make (List.map (fun (delay, area) -> { delay; area }) l)
let points t = Array.to_list t.pts
let fastest t = t.pts.(0)
let slowest t = t.pts.(Array.length t.pts - 1)
let min_delay t = (fastest t).delay
let max_delay t = (slowest t).delay
let delay_range t = Interval.make (min_delay t) (max_delay t)

(* Index of the last point with delay <= d, or -1. *)
let last_at_or_below t d =
  let n = Array.length t.pts in
  let rec go lo hi =
    (* invariant: pts.(lo).delay <= d < pts.(hi).delay, conceptually *)
    if lo + 1 >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.pts.(mid).delay <= d then go mid hi else go lo mid
    end
  in
  if d < t.pts.(0).delay then -1 else go 0 n

let area_at t d =
  let n = Array.length t.pts in
  if d <= t.pts.(0).delay then t.pts.(0).area
  else if d >= t.pts.(n - 1).delay then t.pts.(n - 1).area
  else begin
    let i = last_at_or_below t d in
    let p = t.pts.(i) and q = t.pts.(i + 1) in
    let f = (d -. p.delay) /. (q.delay -. p.delay) in
    p.area +. (f *. (q.area -. p.area))
  end

let sensitivity t d =
  let n = Array.length t.pts in
  if n = 1 || d >= t.pts.(n - 1).delay then 0.0
  else begin
    let i = max 0 (last_at_or_below t d) in
    let i = min i (n - 2) in
    let p = t.pts.(i) and q = t.pts.(i + 1) in
    (p.area -. q.area) /. (q.delay -. p.delay)
  end

let point_at t d =
  let n = Array.length t.pts in
  let d = Float.max t.pts.(0).delay (Float.min d t.pts.(n - 1).delay) in
  { delay = d; area = area_at t d }

let snap_down t d =
  let i = last_at_or_below t d in
  if i < 0 then t.pts.(0) else t.pts.(i)

let snap_up t d =
  let n = Array.length t.pts in
  let i = last_at_or_below t d in
  if i >= 0 && t.pts.(i).delay = d then t.pts.(i)
  else if i + 1 < n then t.pts.(i + 1)
  else t.pts.(n - 1)

let scale ~delay ~area t =
  if delay <= 0.0 || area <= 0.0 then invalid_arg "Curve.scale: factors must be positive";
  { pts = Array.map (fun p -> { delay = p.delay *. delay; area = p.area *. area }) t.pts }

let equal a b =
  Array.length a.pts = Array.length b.pts
  && Array.for_all2
       (fun p q -> Float.equal p.delay q.delay && Float.equal p.area q.area)
       a.pts b.pts

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%g/%g" p.delay p.area)
    t.pts;
  Format.fprintf ppf "@]"
