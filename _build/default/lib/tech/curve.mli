(** Area/delay tradeoff curve of a resource (paper Table 1).

    A curve is a finite set of implementation points of one resource kind at
    one bit width, ordered by increasing delay and decreasing area (slower
    implementations are smaller).  Budgeting treats the delay axis as
    continuous: areas between points are interpolated linearly, which is how
    the paper's Table 2 obtains e.g. a 550 ps / 572-unit multiplier from the
    430–610 ps grid. *)

type point = { delay : float; area : float }

type t

val make : point list -> t
(** Requires at least one point, strictly increasing non-negative delays
    and non-increasing areas; raises [Invalid_argument] otherwise.  A
    zero-delay point models interface artefacts (port latches) that consume
    no combinational time. *)

val of_pairs : (float * float) list -> t
val points : t -> point list
val fastest : t -> point
val slowest : t -> point
val delay_range : t -> Interval.t
val min_delay : t -> float
val max_delay : t -> float

val area_at : t -> float -> float
(** [area_at c d]: linearly interpolated area of an implementation with
    delay [d], clamped to the curve's delay range. *)

val sensitivity : t -> float -> float
(** Local area decrease per unit of added delay at delay [d] (a
    non-negative number; 0 beyond the slow end).  Budgeting gives more of
    the slack to high-sensitivity operations. *)

val point_at : t -> float -> point
(** Continuous implementation point: delay clamped to the curve's range,
    area linearly interpolated.  Models a library with fine-grained sizing
    (the paper's Table 2 uses e.g. a 550 ps / 572-unit multiplier that sits
    between Table 1 grid points). *)

val snap_down : t -> float -> point
(** Slowest discrete point with [delay <= d]; the fastest point when [d] is
    below the whole curve.  Used when a continuous delay budget must be
    realised by an actual resource. *)

val snap_up : t -> float -> point
(** Fastest discrete point with [delay >= d]; the slowest point when [d] is
    above the whole curve. *)

val scale : delay:float -> area:float -> t -> t
(** Multiply all delays/areas by the given factors (> 0). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
