(** Resource (functional-unit) kinds and the mapping from DFG operations. *)

type t =
  | Adder
  | Subtractor
  | Add_sub        (** combined adder/subtractor *)
  | Multiplier
  | Divider
  | Shifter
  | Logic_unit
  | Comparator
  | Mux_unit       (** control-merge multiplexer *)
  | Io_port        (** channel read/write interface *)

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val of_op_kind : Dfg.op_kind -> t option
(** [None] for constants, which consume no resource. *)

val can_execute : t -> Dfg.op_kind -> bool
(** Whether a unit of this kind can implement the operation; e.g. an
    [Add_sub] executes both [Add] and [Sub]. *)
