type t =
  | Adder
  | Subtractor
  | Add_sub
  | Multiplier
  | Divider
  | Shifter
  | Logic_unit
  | Comparator
  | Mux_unit
  | Io_port

let all =
  [ Adder; Subtractor; Add_sub; Multiplier; Divider; Shifter; Logic_unit; Comparator;
    Mux_unit; Io_port ]

let name = function
  | Adder -> "adder"
  | Subtractor -> "subtractor"
  | Add_sub -> "add_sub"
  | Multiplier -> "multiplier"
  | Divider -> "divider"
  | Shifter -> "shifter"
  | Logic_unit -> "logic"
  | Comparator -> "comparator"
  | Mux_unit -> "mux"
  | Io_port -> "io"

let pp ppf t = Format.pp_print_string ppf (name t)
let equal = ( = )
let compare = Stdlib.compare

let of_op_kind : Dfg.op_kind -> t option = function
  | Dfg.Add -> Some Adder
  | Dfg.Sub -> Some Subtractor
  | Dfg.Mul -> Some Multiplier
  | Dfg.Div | Dfg.Modulo -> Some Divider
  | Dfg.Shl | Dfg.Shr -> Some Shifter
  | Dfg.Land | Dfg.Lor | Dfg.Lxor | Dfg.Lnot -> Some Logic_unit
  | Dfg.Cmp _ -> Some Comparator
  | Dfg.Mux -> Some Mux_unit
  | Dfg.Read _ | Dfg.Write _ -> Some Io_port
  | Dfg.Const _ -> None

let can_execute t (k : Dfg.op_kind) =
  match (t, k) with
  | Add_sub, (Dfg.Add | Dfg.Sub) -> true
  | Add_sub, _ -> false
  | _, _ -> ( match of_op_kind k with Some t' -> t = t' | None -> false)
