lib/tech/resource_kind.ml: Dfg Format Stdlib
