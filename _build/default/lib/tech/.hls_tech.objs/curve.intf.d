lib/tech/curve.mli: Format Interval
