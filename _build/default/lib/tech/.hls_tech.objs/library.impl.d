lib/tech/library.ml: Curve Float Hashtbl List Option Resource_kind
