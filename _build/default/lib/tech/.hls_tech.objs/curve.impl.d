lib/tech/curve.ml: Array Float Format Interval List
