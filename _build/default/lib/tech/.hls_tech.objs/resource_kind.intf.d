lib/tech/resource_kind.mli: Dfg Format
