lib/tech/library.mli: Curve Dfg Interval Resource_kind
