(** Characterised technology library.

    The paper uses a TSMC 90 nm library; its Table 1 curves for an 8x8
    multiplier and a 16-bit adder are embedded verbatim here.  Curves for
    other widths and kinds come from a width-scaling model: the fast end of
    a curve scales like a logarithmic-depth implementation (carry lookahead,
    Wallace tree), the slow end like a linear-depth one (ripple carry,
    array), and areas scale linearly (adders, logic) or quadratically
    (multipliers, dividers) with width.  The exact constants are not claimed
    to match TSMC 90 nm; only the {e spread} of the tradeoff (2-3x area,
    1.5-6x delay per Table 1) matters to the algorithms. *)

type t

val default : t
(** The virtual 90 nm library with realistic interconnect overheads. *)

val idealized : t
(** Same functional-unit curves, but zero mux/register overheads — the
    simplification the paper's §II example makes ("ignore the delays of
    multiplexors and registers"). *)

val name : t -> string

val table1_multiplier_8x8 : Curve.t
(** Paper Table 1, top: delays 430..610 ps, areas 878..510. *)

val table1_adder_16 : Curve.t
(** Paper Table 1, bottom: delays 220..1220 ps, areas 556..206. *)

val curve : t -> Resource_kind.t -> width:int -> Curve.t
(** Memoized.  Width must be in [1, 512]. *)

val op_curve : t -> Dfg.op_kind -> width:int -> Curve.t option
(** Curve of the default resource kind for an op; [None] for constants. *)

val op_delay_range : t -> Dfg.op_kind -> width:int -> Interval.t option

(** {1 Interconnect and control overheads} *)

val mux_delay : t -> inputs:int -> float
(** Steering delay in front of a shared unit with [inputs] sources. *)

val mux_area : t -> inputs:int -> width:int -> float
val register_area : t -> width:int -> float
val register_overhead : t -> float
(** Setup + clock-to-q margin charged at each state boundary. *)

val fsm_area_per_state : t -> float
