lib/rtl/dot.mli: Cfg Dfg Schedule Timed_dfg
