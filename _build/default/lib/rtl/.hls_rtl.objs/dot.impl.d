lib/rtl/dot.ml: Alloc Array Buffer Cfg Dfg Format Fun List Printf Schedule String Timed_dfg
