lib/rtl/verilog.ml: Alloc Buffer Dfg Fun List Netlist Printf Schedule String
