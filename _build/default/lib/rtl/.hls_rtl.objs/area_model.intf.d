lib/rtl/area_model.mli: Format Resource_kind Schedule
