lib/rtl/netlist.ml: Alloc Dfg Format Hashtbl List Schedule
