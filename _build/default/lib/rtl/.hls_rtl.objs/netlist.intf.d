lib/rtl/netlist.mli: Alloc Dfg Format Schedule
