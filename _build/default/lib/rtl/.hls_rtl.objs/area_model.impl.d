lib/rtl/area_model.ml: Alloc Curve Dfg Format Library List Resource_kind Schedule
