(** Graphviz (DOT) renderings of the intermediate representations, for
    debugging and documentation (the paper's Figures 4 and 5 are exactly
    these drawings). *)

val cfg : Cfg.t -> string
(** Control-flow graph; state nodes shaded, backward edges dashed. *)

val dfg : ?spans:Dfg.span array -> Dfg.t -> string
(** Data-flow graph; loop-carried dependencies dashed; with [spans], node
    labels carry each op's early..late edge window (Figure 5a). *)

val timed_dfg : Timed_dfg.t -> string
(** Timed DFG with latency weights on edges and explicit sink nodes
    (Figure 5b). *)

val schedule : Schedule.t -> string
(** DFG clustered by control step, annotated with instance bindings. *)

val write_file : string -> path:string -> unit
