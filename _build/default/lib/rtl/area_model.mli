(** Post-"logic synthesis" area model.

    The paper reports cell area after running logic synthesis on the RTL
    produced by HLS.  This model stands in for that step: it prices the
    datapath implied by a schedule —

    - functional units at their final speed grades (only instances that
      actually execute at least one operation are counted);
    - steering multiplexers in front of shared units (two operand ports,
      fan-in = number of bound operations);
    - registers for every value that crosses a control-step boundary or
      flows around the loop;
    - the FSM controller, proportional to the number of control steps.

    Both competing flows are priced by the same model, which preserves the
    relative comparison the paper makes. *)

type breakdown = {
  fu : float;
  mux : float;
  registers : float;
  fsm : float;
  total : float;
}

val of_schedule : Schedule.t -> breakdown

val fu_only : Schedule.t -> float
(** Functional units only (used instances), the quantity the paper's
    Table 2 tabulates for the interpolation example. *)

val fu_of_kind : Schedule.t -> Resource_kind.t -> float

val power : Schedule.t -> cycles_per_sample:int -> float
(** Relative power estimate, used to reproduce the paper's §VII claim that
    the IDCT exploration spans a ~20x power range: dynamic power is the
    energy of one sample (every operation toggles its instance once, energy
    proportional to the instance's area) times the sample rate
    (1 / (cycles_per_sample * clock)), plus a leakage term proportional to
    total area.  Units are arbitrary but consistent across designs priced
    by the same library. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
