(** Verilog emission.

    Produces a synthesisable-style RTL rendering of a netlist: one module
    with a one-hot-encoded FSM, a wire per operation value, a register per
    step-crossing value, and behavioral expressions for the operations.
    The emitted text is an {e inspection artifact} (it is not re-simulated
    by this library); its purpose is to make schedules concrete and
    reviewable, mirroring what the paper's tool hands to logic synthesis. *)

val emit : ?module_name:string -> Netlist.t -> string
val write_file : ?module_name:string -> Netlist.t -> path:string -> unit
