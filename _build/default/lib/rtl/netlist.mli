(** Structural datapath + controller view of a schedule.

    The netlist enumerates the hardware a schedule implies: functional
    units with the operations they execute (and hence their input steering
    muxes), registers for step-crossing values, and I/O ports.  It backs
    the Verilog emitter and gives tests a concrete object to audit. *)

type fu = { inst : Alloc.inst; ops : Dfg.Op_id.t list }

type register = {
  reg_name : string;
  reg_width : int;
  source : Dfg.Op_id.t;
  written_in_step : int;
}

type port = { port_name : string; port_width : int; input : bool }

type t = {
  schedule : Schedule.t;
  fus : fu list;                (** used instances only *)
  registers : register list;
  ports : port list;
  n_states : int;
}

val build : Schedule.t -> t

type stats = {
  n_fus : int;
  n_registers : int;
  n_ports : int;
  total_mux_inputs : int;  (** sum over shared FUs of their fan-in *)
  states : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
