let buf_printf = Printf.bprintf

let esc s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let cfg g =
  let b = Buffer.create 1024 in
  buf_printf b "digraph cfg {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  for i = 0 to Cfg.node_count g - 1 do
    let n = Cfg.Node_id.of_int i in
    let kind = Cfg.node_kind g n in
    let shape, style =
      match kind with
      | Cfg.State -> ("circle", "style=filled fillcolor=gray80")
      | Cfg.Fork -> ("diamond", "")
      | Cfg.Join -> ("invtriangle", "")
      | Cfg.Start -> ("doublecircle", "")
      | Cfg.Exit -> ("doublecircle", "style=filled fillcolor=gray90")
      | Cfg.Plain -> ("box", "")
    in
    buf_printf b "  n%d [label=\"n%d\\n%s\" shape=%s %s];\n" i i
      (Format.asprintf "%a" Cfg.pp_node_kind kind)
      shape style
  done;
  Cfg.iter_edges g (fun e ->
      let s = Cfg.Node_id.to_int (Cfg.edge_src g e) in
      let d = Cfg.Node_id.to_int (Cfg.edge_dst g e) in
      let back = Cfg.is_sealed g && Cfg.is_backward g e in
      buf_printf b "  n%d -> n%d [label=\"e%d\"%s];\n" s d (Cfg.Edge_id.to_int e)
        (if back then " style=dashed constraint=false" else ""));
  buf_printf b "}\n";
  Buffer.contents b

let dfg ?spans d =
  let b = Buffer.create 1024 in
  buf_printf b "digraph dfg {\n  rankdir=TB;\n  node [fontname=\"monospace\" shape=ellipse];\n";
  Dfg.iter_ops d (fun op ->
      let i = Dfg.Op_id.to_int op.Dfg.id in
      let span_label =
        match spans with
        | Some sp ->
          let s = sp.(i) in
          Printf.sprintf "\\n{e%d..e%d}" (Cfg.Edge_id.to_int s.Dfg.early)
            (Cfg.Edge_id.to_int s.Dfg.late)
        | None -> ""
      in
      let style =
        match op.Dfg.kind with
        | Dfg.Read _ | Dfg.Write _ -> " style=filled fillcolor=lightblue"
        | Dfg.Mux -> " shape=trapezium"
        | Dfg.Const _ -> " shape=plaintext"
        | _ -> ""
      in
      buf_printf b "  o%d [label=\"%s%s\"%s];\n" i (esc op.Dfg.name) span_label style);
  Dfg.iter_ops d (fun op ->
      List.iter
        (fun (succ, lc) ->
          buf_printf b "  o%d -> o%d%s;\n" (Dfg.Op_id.to_int op.Dfg.id)
            (Dfg.Op_id.to_int succ)
            (if lc then " [style=dashed label=\"loop\"]" else ""))
        (Dfg.all_succs d op.Dfg.id));
  buf_printf b "}\n";
  Buffer.contents b

let timed_dfg t =
  let d = Timed_dfg.dfg t in
  let b = Buffer.create 1024 in
  buf_printf b "digraph timed_dfg {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  let node_id = function
    | Timed_dfg.Op o -> Printf.sprintf "o%d" (Dfg.Op_id.to_int o)
    | Timed_dfg.Sink o -> Printf.sprintf "s%d" (Dfg.Op_id.to_int o)
  in
  List.iter
    (fun n ->
      match n with
      | Timed_dfg.Op o ->
        buf_printf b "  %s [label=\"%s\"];\n" (node_id n) (esc (Dfg.op d o).Dfg.name)
      | Timed_dfg.Sink _ ->
        buf_printf b "  %s [label=\"s\" shape=point width=0.15];\n" (node_id n))
    (Timed_dfg.topo t);
  List.iter
    (fun n ->
      List.iter
        (fun (succ, w) ->
          buf_printf b "  %s -> %s [label=\"%d\"%s];\n" (node_id n) (node_id succ) w
            (if w > 0 then " color=red" else ""))
        (Timed_dfg.succs t n))
    (Timed_dfg.topo t);
  buf_printf b "}\n";
  Buffer.contents b

let schedule sched =
  let d = sched.Schedule.dfg in
  let b = Buffer.create 1024 in
  buf_printf b "digraph schedule {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  for s = 0 to Schedule.steps_used sched - 1 do
    buf_printf b "  subgraph cluster_step%d {\n    label=\"step %d\";\n" s s;
    Dfg.iter_ops d (fun op ->
        match Schedule.placement sched op.Dfg.id with
        | Some p
          when p.Schedule.step = s
               && (match op.Dfg.kind with Dfg.Const _ -> false | _ -> true) ->
          let binding =
            match p.Schedule.inst with
            | Some id -> Printf.sprintf "\\nfu%d @ %.0f..%.0f" (Alloc.Inst_id.to_int id)
                           p.Schedule.start (p.Schedule.start +. p.Schedule.eff_delay)
            | None -> ""
          in
          buf_printf b "    o%d [label=\"%s%s\"];\n" (Dfg.Op_id.to_int op.Dfg.id)
            (esc op.Dfg.name) binding
        | _ -> ());
    buf_printf b "  }\n"
  done;
  Dfg.iter_ops d (fun op ->
      List.iter
        (fun succ ->
          buf_printf b "  o%d -> o%d;\n" (Dfg.Op_id.to_int op.Dfg.id)
            (Dfg.Op_id.to_int succ))
        (Dfg.succs d op.Dfg.id));
  buf_printf b "}\n";
  Buffer.contents b

let write_file contents ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
