(** Post-scheduling area recovery.

    This is the logic-synthesis-style pass the paper contrasts against: it
    can only exploit slack {e within} a control step.  Each resource
    instance is slowed (re-graded down its area/delay curve) by the minimum
    combinational slack of the operations bound to it; every re-grade is
    verified by a full {!Schedule.retime} and rolled back if it breaks
    timing.  Runs to a fix point.

    Both the conventional flow (where it is the only area optimisation) and
    the slack-based flow (where budgeting has already spread delays across
    states and this pass mops up residue) call it. *)

val latest_starts : Schedule.t -> float array
(** Within-step latest feasible start per op index ([nan] for unplaced or
    constant ops): the latest the op could begin without pushing itself or
    any same-step transitively chained consumer past the step budget. *)

val run : ?max_iters:int -> Schedule.t -> int
(** Downsize instances until fix point (at most [max_iters] sweeps,
    default 20).  Returns the number of re-grades applied.  The schedule is
    left retimed and feasible. *)
