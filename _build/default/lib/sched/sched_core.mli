(** The resource- and timing-constrained schedule pass (paper Figure 8).

    CFG edges are visited in topological order; at each edge the ready
    operations (span contains the edge, every forward predecessor placed
    with its value available here) are scheduled in priority order onto
    compatible, conflict-free resource instances whose effective delay
    (grade + mux steering penalty) fits the remaining step budget.  An
    operation that does not fit is deferred to a later edge of its span;
    if the current edge is the {e last} of its span, the pass fails with a
    diagnosis that drives the relaxation loop.

    After every edge, optional hooks recompute operation spans with the
    placements pinned and re-run slack budgeting (paper Schedule_pass
    steps c-d) — sharing merges critical paths, so criticality must be
    refreshed. *)

type failure_reason =
  | No_resource of { op : Dfg.Op_id.t; rk : Resource_kind.t; width : int }
      (** every compatible instance is busy in this step *)
  | Too_slow of { op : Dfg.Op_id.t; window : float; blame : (Resource_kind.t * int) option }
      (** instances exist but none (even upgraded) fits the remaining
          combinational window; [blame] names the resource group whose
          starvation pushed the chain this late (found by walking the
          latest-finishing producer chain) *)
  | No_time of { op : Dfg.Op_id.t; blame : (Resource_kind.t * int) option }
      (** the operation's ready time already exceeds the step budget:
          relax by widening the blamed group, or add a state *)
  | Retime_failed of string
      (** final retiming with exact mux fan-ins found a violation *)

type failure = { reason : failure_reason; message : string }

val pp_failure : Format.formatter -> failure -> unit

type params = {
  clock : float;
  ii : int option;
      (** pipelining initiation interval (see {!Schedule.create}); loop
          pipelining adds the recurrence constraint that a loop-carried
          producer lands within [ii] steps of its consumer, and folds
          resource booking modulo [ii] *)
  priority : Dfg.Op_id.t -> float;
      (** lower schedules first (criticality) *)
  target : Dfg.Op_id.t -> float;
      (** budgeted delay: instance selection prefers the cheapest fitting
          instance not slower than needed *)
  upgrade_on_miss : bool;
      (** speed up an existing instance when nothing fits (slowest-first
          and slack-based flows) *)
  respan : bool;
      (** recompute spans with pinned placements after every edge *)
  rebudget : (Schedule.t -> (Dfg.Op_id.t -> Cfg.Edge_id.t option) -> unit) option;
      (** after-edge hook: re-run budgeting with the given pin function *)
}

val run : Dfg.t -> alloc:Alloc.t -> params -> (Schedule.t, failure) result
(** Requires a validated DFG over a sealed CFG.  On success the returned
    schedule has passed {!Schedule.retime} with final fan-ins. *)
