lib/sched/flows.ml: Alloc Area_recovery Array Budget Cfg Curve Dfg Float Hashtbl Interval Library List Option Resource_kind Sched_core Schedule Slack Timed_dfg
