lib/sched/area_recovery.mli: Schedule
