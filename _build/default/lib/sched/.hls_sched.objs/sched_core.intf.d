lib/sched/sched_core.mli: Alloc Cfg Dfg Format Resource_kind Schedule
