lib/sched/sched_core.ml: Alloc Array Cfg Curve Dfg Float Format Hashtbl Int Library List Option Printf Resource_kind Schedule Sys
