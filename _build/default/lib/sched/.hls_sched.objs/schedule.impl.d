lib/sched/schedule.ml: Alloc Array Cfg Curve Dfg Float Format Hashtbl Library List Option Printf
