lib/sched/schedule.mli: Alloc Cfg Dfg Format
