lib/sched/area_recovery.ml: Alloc Array Curve Dfg Float Hashtbl List Schedule
