lib/sched/flows.mli: Alloc Budget Dfg Library Schedule
