(** A complete schedule: every operation assigned to a CFG edge (hence a
    control step), a start offset within its step, and a resource instance.

    Start offsets are {e derived} data: {!retime} recomputes them from the
    placement (edges + instance binding) with the final mux fan-ins, and is
    the single source of truth for timing legality.  The scheduling engine
    keeps placements it believes legal; flows must call {!retime} before
    trusting a schedule. *)

type placement = {
  edge : Cfg.Edge_id.t;
  step : int;                      (** control step of [edge] *)
  mutable start : float;           (** within-step start time *)
  mutable eff_delay : float;       (** instance delay + mux steering penalty *)
  inst : Alloc.Inst_id.t option;   (** [None] only for constants *)
}

type t = {
  dfg : Dfg.t;
  clock : float;
  alloc : Alloc.t;
  ii : int option;
      (** pipelining initiation interval: successive loop iterations start
          [ii] steps apart, so steps congruent modulo [ii] execute
          concurrently and share nothing *)
  placements : placement option array;  (** by op index *)
}

val create : ?ii:int -> Dfg.t -> clock:float -> alloc:Alloc.t -> t
(** All placements empty except constants, which are pre-placed on their
    birth edges with zero delay.  [ii], when given, must be positive. *)

val placement : t -> Dfg.Op_id.t -> placement option
val is_placed : t -> Dfg.Op_id.t -> bool
val place :
  t -> Dfg.Op_id.t -> edge:Cfg.Edge_id.t -> start:float -> eff_delay:float ->
  inst:Alloc.Inst_id.t option -> unit
(** Raises [Invalid_argument] if already placed. *)

val step_budget : t -> float
(** Usable combinational time per step: clock minus the library's register
    overhead. *)

val ops_of_inst : t -> Alloc.Inst_id.t -> Dfg.Op_id.t list
(** Operations currently bound to an instance (its mux fan-in). *)

val conflicts : t -> Alloc.Inst_id.t -> edge:Cfg.Edge_id.t -> bool
(** Whether binding one more op executing on [edge] to the instance would
    double-book it: some already-bound op shares the control step and is
    not on a mutually exclusive branch.  Under pipelining, steps congruent
    modulo the initiation interval overlap across iterations, so any two
    such steps conflict (branch exclusivity only helps within one step:
    different iterations may take different branches). *)

val lc_step_ok : t -> producer_step:int -> consumer_step:int -> bool
(** Pipelining recurrence constraint for a loop-carried dependency: the
    producer of iteration [k] must finish (its step end) before the
    consumer of iteration [k+1] starts, i.e.
    [producer_step < consumer_step + ii].  Always true when not
    pipelining. *)

val effective_delay : t -> inst:Alloc.inst -> fanin:int -> float
(** Instance delay plus the library mux penalty at the given fan-in. *)

type violation = {
  culprit : Dfg.Op_id.t option;  (** op that missed its step budget *)
  overshoot : float;             (** ps past the budget (0 for structural errors) *)
  detail : string;
}

val retime : t -> (unit, violation) result
(** Recompute every start and effective delay (with the final fan-ins) in
    dependency order, and check: chaining legality, step-budget fits and
    dependency availability.  Updates placements in place on success.  On
    failure the first (topologically) violating op is reported so callers
    can repair by speeding up the instances on its chain. *)

val validate : t -> (unit, string list) result
(** Full structural audit, for tests: all active ops placed, placements
    inside spans, dependencies respected, no resource double-booking,
    timing fits (calls {!retime} on a copy of the start data). *)

val steps_used : t -> int
val pp : Format.formatter -> t -> unit
