(** Control flow graph (paper Definition 1).

    A CFG is a directed graph [G = (V, E, v0, S)]: [v0] is the unique start
    node and [S] the set of {e state} nodes, which correspond to [wait()]
    calls in the behavioral source.  The remaining nodes fork and join
    control flow.  Operations of the companion DFG live on {e edges} of the
    CFG.

    A CFG is built imperatively ([add_node] / [add_edge]) and then
    {!seal}ed, which classifies backward edges (loop backs), checks
    structural sanity and precomputes:

    - [latency e1 e2]: the minimum number of state nodes over all forward
      paths between edges [e1] and [e2] (paper §V Definition 1);
    - forward edge-to-edge reachability, used for operation spans;
    - join-free reachability ("sink reachability"): reachability along
      forward paths whose interior never crosses a [Join] node.  Moving an
      operation {e down} past a join would speculate it on the merged
      control flow, so spans never extend past joins. *)

module Node_id : Id.S
module Edge_id : Id.S

type node_kind =
  | Start  (** unique entry *)
  | State  (** clock-cycle boundary, a [wait()] *)
  | Fork   (** conditional / loop branch *)
  | Join   (** control-flow merge *)
  | Plain  (** straight-line glue node *)
  | Exit   (** terminal node *)

val pp_node_kind : Format.formatter -> node_kind -> unit

type t

(** {1 Construction} *)

val create : unit -> t
(** A fresh CFG containing only the start node ({!start}). *)

val start : t -> Node_id.t

val add_node : t -> node_kind -> Node_id.t
(** Adding a second [Start] raises [Invalid_argument]. *)

val add_edge : t -> Node_id.t -> Node_id.t -> Edge_id.t

exception Malformed of string

val seal : t -> unit
(** Validates and freezes the CFG; queries below require a sealed CFG.
    Raises {!Malformed} when: some node is unreachable from the start, or
    some cycle contains no state node (a combinational control loop).
    Mutation after sealing raises [Invalid_argument]. *)

val is_sealed : t -> bool

(** {1 Structure queries} *)

val node_count : t -> int
val edge_count : t -> int
val node_kind : t -> Node_id.t -> node_kind
val edge_src : t -> Edge_id.t -> Node_id.t
val edge_dst : t -> Edge_id.t -> Node_id.t
val out_edges : t -> Node_id.t -> Edge_id.t list
val in_edges : t -> Node_id.t -> Edge_id.t list
val states : t -> Node_id.t list
val iter_edges : t -> (Edge_id.t -> unit) -> unit

(** {1 Sealed queries} *)

val is_backward : t -> Edge_id.t -> bool
(** Loop-back edges: from DFS ancestors-to-descendants classification. *)

val forward_edges_topo : t -> Edge_id.t list
(** All forward edges, in a linear extension of edge reachability. *)

val edge_topo_index : t -> Edge_id.t -> int
(** Position of a forward edge in {!forward_edges_topo}.  Backward edges
    raise [Invalid_argument]. *)

val compare_edges_topo : t -> Edge_id.t -> Edge_id.t -> int

val reaches : t -> Edge_id.t -> Edge_id.t -> bool
(** [reaches t e1 e2]: [e2] lies on some forward path starting at [e1]
    ([e1 = e2] included). *)

val sink_reaches : t -> Edge_id.t -> Edge_id.t -> bool
(** Like {!reaches} but the connecting node path may not touch a [Join]
    node; this is the legality relation for moving operations later than
    their birth edge. *)

val edge_dominates : t -> Edge_id.t -> Edge_id.t -> bool
(** [edge_dominates t e f]: every forward path from the start node to edge
    [f] passes through edge [e] ([e = f] included).  Used to restrict
    hoisting an operation above its birth edge to edges that execute on
    every run reaching the birth edge. *)

val latency : t -> Edge_id.t -> Edge_id.t -> int option
(** Minimum number of state nodes over forward paths from [e1] to [e2];
    [Some 0] when [e1 = e2]; [None] when [e2] is not forward-reachable. *)

val state_of_edge : t -> Edge_id.t -> int
(** Control-step index of a forward edge: number of state nodes on the
    fewest-states forward path from the start to this edge.  Edges separated
    by zero latency share a control step (they chain combinationally). *)

val max_state_index : t -> int

val pp_edge : t -> Format.formatter -> Edge_id.t -> unit
val pp : Format.formatter -> t -> unit
