
module Node_id = Id.Make ()
module Edge_id = Id.Make ()

type node_kind = Start | State | Fork | Join | Plain | Exit

let pp_node_kind ppf = function
  | Start -> Format.pp_print_string ppf "start"
  | State -> Format.pp_print_string ppf "state"
  | Fork -> Format.pp_print_string ppf "fork"
  | Join -> Format.pp_print_string ppf "join"
  | Plain -> Format.pp_print_string ppf "plain"
  | Exit -> Format.pp_print_string ppf "exit"

type sealed = {
  back : bool array; (* indexed by edge id *)
  edge_topo : Edge_id.t list;
  edge_topo_pos : int array; (* -1 for backward edges *)
  state_dist : int option array array; (* node x node, endpoints included *)
  node_reach : bool array array; (* forward reachability *)
  node_reach_nojoin : bool array array; (* forward, avoiding Join nodes *)
  state_index : int array; (* per forward edge: control step from start *)
  max_state : int;
  edge_dom : bool array array; (* edge_dom.(f).(e): e dominates f *)
}


type t = {
  kinds : node_kind Vec.t;
  edges : (int * int) Vec.t; (* by edge id *)
  mutable sealed_info : sealed option;
}

exception Malformed of string

let create () =
  let kinds = Vec.create () in
  ignore (Vec.push kinds Start);
  { kinds; edges = Vec.create (); sealed_info = None }

let start _t = Node_id.of_int 0

let check_unsealed t what =
  if t.sealed_info <> None then invalid_arg ("Cfg." ^ what ^ ": CFG already sealed")

let add_node t kind =
  check_unsealed t "add_node";
  if kind = Start then invalid_arg "Cfg.add_node: a CFG has a single start node";
  Node_id.of_int (Vec.push t.kinds kind)

let node_count t = Vec.length t.kinds
let edge_count t = Vec.length t.edges

let add_edge t src dst =
  check_unsealed t "add_edge";
  let s = Node_id.to_int src and d = Node_id.to_int dst in
  let n = node_count t in
  if s < 0 || s >= n || d < 0 || d >= n then
    invalid_arg "Cfg.add_edge: node out of range";
  Edge_id.of_int (Vec.push t.edges (s, d))

let node_kind t n = Vec.get t.kinds (Node_id.to_int n)
let edge_pair t e = Vec.get t.edges (Edge_id.to_int e)

let edge_src t e = Node_id.of_int (fst (edge_pair t e))
let edge_dst t e = Node_id.of_int (snd (edge_pair t e))

let out_edges t n =
  let ni = Node_id.to_int n in
  let acc = ref [] in
  Vec.iteri (fun i (s, _) -> if s = ni then acc := Edge_id.of_int i :: !acc) t.edges;
  List.rev !acc

let in_edges t n =
  let ni = Node_id.to_int n in
  let acc = ref [] in
  Vec.iteri (fun i (_, d) -> if d = ni then acc := Edge_id.of_int i :: !acc) t.edges;
  List.rev !acc

let states t =
  let acc = ref [] in
  Vec.iteri (fun i k -> if k = State then acc := Node_id.of_int i :: !acc) t.kinds;
  List.rev !acc

let iter_edges t f =
  for i = 0 to edge_count t - 1 do
    f (Edge_id.of_int i)
  done

let is_sealed t = t.sealed_info <> None

(* Build the full digraph including backward edges, remembering which edge id
   produced each (src, dst) pair.  Parallel edges get distinct ids but the
   DFS classification is per-adjacency entry, so we classify by scanning edge
   ids grouped by endpoints after DFS on nodes. *)
let seal t =
  check_unsealed t "seal";
  let kinds = Vec.to_array t.kinds in
  let edges = Vec.to_array t.edges in
  let n = node_count t in
  let g = Digraph.create ~initial_capacity:(max n 1) () in
  for _ = 1 to n do
    ignore (Digraph.add_node g)
  done;
  Array.iter (fun (s, d) -> Digraph.add_edge g s d) edges;
  (* Classify backward edges with a DFS over nodes.  Because parallel edges
     between the same pair receive identical classification, we classify
     node pairs and map back to edge ids. *)
  let back_pairs = Hashtbl.create 16 in
  Traverse.dfs_classify g ~roots:[ 0 ] (fun u v cls ->
      if cls = Traverse.Back then Hashtbl.replace back_pairs (u, v) ());
  let back = Array.make (edge_count t) false in
  Array.iteri (fun i (s, d) -> if Hashtbl.mem back_pairs (s, d) then back.(i) <- true) edges;
  (* Forward subgraph. *)
  let fwd = Digraph.create ~initial_capacity:(max n 1) () in
  for _ = 1 to n do
    ignore (Digraph.add_node fwd)
  done;
  Array.iteri (fun i (s, d) -> if not back.(i) then Digraph.add_edge fwd s d) edges;
  (* Reachability from the start covers every node (using all edges). *)
  let reach_from_start = Traverse.reachable g 0 in
  Array.iteri
    (fun i r ->
      if not r then
        raise (Malformed (Printf.sprintf "node %d unreachable from start" i)))
    reach_from_start;
  let topo =
    match Traverse.topo_sort fwd with
    | Ok order -> order
    | Error _ -> raise (Malformed "forward subgraph is cyclic (internal error)")
  in
  let topo_pos = Array.make n 0 in
  List.iteri (fun pos v -> topo_pos.(v) <- pos) topo;
  (* Edge topological order: sorting forward edges by the topological
     position of their source (then target, then id) linearizes edge
     reachability. *)
  let fwd_edge_ids = ref [] in
  Array.iteri (fun i _ -> if not back.(i) then fwd_edge_ids := i :: !fwd_edge_ids) edges;
  let fwd_edge_ids = List.rev !fwd_edge_ids in
  let cmp a b =
    let sa, da = edges.(a) and sb, db = edges.(b) in
    match Int.compare topo_pos.(sa) topo_pos.(sb) with
    | 0 -> ( match Int.compare topo_pos.(da) topo_pos.(db) with 0 -> Int.compare a b | c -> c)
    | c -> c
  in
  let sorted = List.sort cmp fwd_edge_ids in
  let edge_topo = List.map Edge_id.of_int sorted in
  let edge_topo_pos = Array.make (edge_count t) (-1) in
  List.iteri (fun pos i -> edge_topo_pos.(i) <- pos) sorted;
  (* Minimum state-node count over forward paths (endpoints included). *)
  let weight v = if kinds.(v) = State then 1 else 0 in
  let state_dist = Dag_paths.all_pairs_min_node_weight fwd ~weight in
  (* Every cycle (backward edge u -> v plus forward path v ->* u) must
     contain at least one state node. *)
  Array.iteri
    (fun i (u, v) ->
      if back.(i) then
        match state_dist.(v).(u) with
        | None ->
          raise
            (Malformed (Printf.sprintf "backward edge %d->%d closes no forward path" u v))
        | Some states ->
          if states = 0 then
            raise
              (Malformed
                 (Printf.sprintf "combinational loop: cycle through %d->%d has no state node"
                    u v)))
    edges;
  (* Node-level forward reachability. *)
  let node_reach = Array.init n (fun v -> Traverse.reachable fwd v) in
  (* Join-free reachability: drop Join nodes entirely. *)
  let fwd_nojoin = Digraph.create ~initial_capacity:(max n 1) () in
  for _ = 1 to n do
    ignore (Digraph.add_node fwd_nojoin)
  done;
  Array.iteri
    (fun i (s, d) ->
      if (not back.(i)) && kinds.(s) <> Join && kinds.(d) <> Join then
        Digraph.add_edge fwd_nojoin s d)
    edges;
  let node_reach_nojoin =
    Array.init n (fun v ->
        if kinds.(v) = Join then Array.make n false else Traverse.reachable fwd_nojoin v)
  in
  (* Edge dominance over the forward subgraph: e dominates f iff every
     start-to-f path passes through e.  Single pass in edge topological
     order suffices on a DAG because all predecessor edges of f (the
     in-edges of f's source) precede f in that order. *)
  let ne = edge_count t in
  let edge_dom = Array.make ne [||] in
  let fwd_in_edges = Array.make n [] in
  Array.iteri
    (fun i (s', d') ->
      ignore s';
      if not back.(i) then fwd_in_edges.(d') <- i :: fwd_in_edges.(d'))
    edges;
  List.iter
    (fun eid ->
      let f = Edge_id.to_int eid in
      let sf, _ = edges.(f) in
      let dom = Array.make ne false in
      let pred_edges = fwd_in_edges.(sf) in
      (match pred_edges with
      | [] -> () (* source edge: dominated only by itself *)
      | first :: rest ->
        Array.blit edge_dom.(first) 0 dom 0 ne;
        List.iter
          (fun p ->
            let dp = edge_dom.(p) in
            for k = 0 to ne - 1 do
              dom.(k) <- dom.(k) && dp.(k)
            done)
          rest);
      dom.(f) <- true;
      edge_dom.(f) <- dom)
    edge_topo;
  (* Backward edges keep empty dominance rows. *)
  for f = 0 to ne - 1 do
    if Array.length edge_dom.(f) = 0 then edge_dom.(f) <- Array.make ne false
  done;
  (* Control step of each forward edge: states from the start to the edge's
     source, source included. *)
  let state_index = Array.make (edge_count t) (-1) in
  let max_state = ref 0 in
  Array.iteri
    (fun i (s, _) ->
      if not back.(i) then begin
        match state_dist.(0).(s) with
        | Some d ->
          state_index.(i) <- d;
          if d > !max_state then max_state := d
        | None -> raise (Malformed (Printf.sprintf "edge %d source unreachable" i))
      end)
    edges;
  t.sealed_info <-
    Some
      {
        back;
        edge_topo;
        edge_topo_pos;
        state_dist;
        node_reach;
        node_reach_nojoin;
        state_index;
        max_state = !max_state;
        edge_dom;
      }

let sealed t what =
  match t.sealed_info with
  | Some s -> s
  | None -> invalid_arg ("Cfg." ^ what ^ ": CFG not sealed")

let is_backward t e = (sealed t "is_backward").back.(Edge_id.to_int e)
let forward_edges_topo t = (sealed t "forward_edges_topo").edge_topo

let edge_topo_index t e =
  let pos = (sealed t "edge_topo_index").edge_topo_pos.(Edge_id.to_int e) in
  if pos < 0 then invalid_arg "Cfg.edge_topo_index: backward edge";
  pos

let compare_edges_topo t a b = Int.compare (edge_topo_index t a) (edge_topo_index t b)

let reaches t e1 e2 =
  if Edge_id.equal e1 e2 then true
  else begin
    let s = sealed t "reaches" in
    if s.back.(Edge_id.to_int e1) || s.back.(Edge_id.to_int e2) then false
    else begin
      let _, d1 = edge_pair t e1 and s2, _ = edge_pair t e2 in
      s.node_reach.(d1).(s2)
    end
  end

let sink_reaches t e1 e2 =
  if Edge_id.equal e1 e2 then true
  else begin
    let s = sealed t "sink_reaches" in
    if s.back.(Edge_id.to_int e1) || s.back.(Edge_id.to_int e2) then false
    else begin
      let _, d1 = edge_pair t e1 and s2, _ = edge_pair t e2 in
      s.node_reach_nojoin.(d1).(s2)
    end
  end

let latency t e1 e2 =
  if Edge_id.equal e1 e2 then Some 0
  else begin
    let s = sealed t "latency" in
    if s.back.(Edge_id.to_int e1) || s.back.(Edge_id.to_int e2) then None
    else begin
      let _, d1 = edge_pair t e1 and s2, _ = edge_pair t e2 in
      s.state_dist.(d1).(s2)
    end
  end

let state_of_edge t e =
  let s = sealed t "state_of_edge" in
  let idx = s.state_index.(Edge_id.to_int e) in
  if idx < 0 then invalid_arg "Cfg.state_of_edge: backward edge";
  idx

let max_state_index t = (sealed t "max_state_index").max_state

let edge_dominates t e f =
  (sealed t "edge_dominates").edge_dom.(Edge_id.to_int f).(Edge_id.to_int e)

let pp_edge t ppf e =
  let s, d = edge_pair t e in
  Format.fprintf ppf "e%d(%d->%d)" (Edge_id.to_int e) s d

let pp ppf t =
  Format.fprintf ppf "@[<v>CFG: %d nodes, %d edges@," (node_count t) (edge_count t);
  Vec.iteri (fun i k -> Format.fprintf ppf "  n%d: %a@," i pp_node_kind k) t.kinds;
  Vec.iteri
    (fun i (s, d) ->
      let tag =
        match t.sealed_info with
        | Some info when info.back.(i) -> " (back)"
        | Some _ | None -> ""
      in
      Format.fprintf ppf "  e%d: n%d -> n%d%s@," i s d tag)
    t.edges;
  Format.fprintf ppf "@]"
