(** Resource allocation: a multiset of functional-unit instances, each at a
    concrete speed grade (a point on its area/delay curve).

    The allocation is mutable on purpose: the paper's scheduling framework
    upgrades instance speed grades on the fly (slowest-first flow), adds
    instances during constraint relaxation, and downsizes grades during
    area recovery. *)

module Inst_id : Id.S

type inst = private {
  id : Inst_id.t;
  rk : Resource_kind.t;
  width : int;
  curve : Curve.t;
  mutable point : Curve.point;
}

type grading =
  | Continuous  (** any delay in the curve's range, interpolated area *)
  | Discrete    (** only the characterised curve points (Table 1 grid) *)

type t

val create : ?grading:grading -> Library.t -> t
(** [grading] defaults to [Continuous]. *)

val library : t -> Library.t
val grading : t -> grading

val add_instance : t -> rk:Resource_kind.t -> width:int -> delay:float -> inst
(** Creates an instance graded at the requested delay: the exact
    (interpolated) point under [Continuous] grading, or
    [Curve.snap_down curve delay] under [Discrete] (the slowest
    characterised point not slower than requested; the fastest point when
    [delay] is below the whole curve). *)

val instance : t -> Inst_id.t -> inst
val instances : t -> inst list
val count : t -> int

val compatible : inst -> op_kind:Dfg.op_kind -> width:int -> bool
(** The instance's kind can execute the op and its width suffices. *)

val candidates : t -> op_kind:Dfg.op_kind -> width:int -> inst list
(** All compatible instances, slowest grade first (cheapest-first policy). *)

val set_grade : t -> Inst_id.t -> delay:float -> unit
(** Re-grade to the requested delay (snapped per the grading mode). *)

val upgrade_to_fit : t -> Inst_id.t -> max_delay:float -> bool
(** Speed the instance up just enough that its delay is [<= max_delay]
    (snap down on the curve).  Returns [false] when even the fastest point
    is too slow; the grade is then left unchanged. *)

val fu_area : t -> float
(** Sum of instance areas at their current grades. *)

val copy : t -> t
(** Deep copy (fresh instances with the same ids and grades); used by
    relaxation loops to roll back failed attempts. *)

val pp : Format.formatter -> t -> unit
