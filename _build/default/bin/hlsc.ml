(* hlsc — command-line front end for the slackhls library.

   Subcommands:
     run      parse a behavioral source (or pick a built-in design), run a
              flow, print the schedule, allocation and area breakdown
     compare  run conventional and slack-based flows side by side
     slack    print the pre-schedule sequential-slack report
     emit     run a flow and write the Verilog rendering
     explore  IDCT design-space exploration (the paper's Table 4) *)

open Cmdliner

let lib_of = function
  | "default" | "virt90" -> Ok Library.default
  | "ideal" | "idealized" -> Ok Library.idealized
  | s -> Error (Printf.sprintf "unknown library %S (try: default, ideal)" s)

let builtin_designs =
  [
    ("interpolation", fun () ->
        let ip = Interpolation.unrolled () in
        (ip.Interpolation.dfg, Interpolation.clock));
    ("resizer", fun () ->
        let r = Resizer.full () in
        (r.Resizer.dfg, 4000.0));
    ("idct", fun () ->
        let d = Idct.build ~latency:12 ~passes:1 () in
        (d.Idct.dfg, 2500.0));
    ("fir8", fun () ->
        let f = Fir.build ~taps:8 ~latency:6 () in
        (f.Fir.dfg, 2500.0));
  ]

let load_design ~source ~builtin ~clock =
  match (source, builtin) with
  | Some path, None -> (
    try
      let p = Parser.parse_file path in
      let e = Elaborate.elaborate p in
      let clock = Option.value ~default:2500.0 clock in
      Ok (Hls.design ~name:p.Ast.proc_name ~clock e.Elaborate.dfg)
    with
    | Parser.Error { line; message } ->
      Error (Printf.sprintf "%s:%d: parse error: %s" path line message)
    | Lexer.Error { line; message } ->
      Error (Printf.sprintf "%s:%d: lex error: %s" path line message)
    | Elaborate.Error m -> Error (Printf.sprintf "%s: elaboration error: %s" path m)
    | Sys_error m -> Error m)
  | None, Some name -> (
    match List.assoc_opt name builtin_designs with
    | Some mk ->
      let dfg, default_clock = mk () in
      Ok (Hls.design ~name ~clock:(Option.value ~default:default_clock clock) dfg)
    | None ->
      Error
        (Printf.sprintf "unknown builtin %S (try: %s)" name
           (String.concat ", " (List.map fst builtin_designs))))
  | Some _, Some _ -> Error "pass either a source file or --design, not both"
  | None, None -> Error "pass a source file or --design NAME"

let flow_of = function
  | "conventional" | "conv" -> Ok Flows.Conventional
  | "slowest" | "slowest-first" -> Ok Flows.Slowest_first
  | "slack" | "slack-based" -> Ok Flows.Slack_based
  | s -> Error (Printf.sprintf "unknown flow %S (try: conventional, slowest, slack)" s)

(* Common options *)

let source_arg =
  Arg.(value & pos ~rev:false 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"Behavioral source file.")

let design_arg =
  Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Built-in design: interpolation, resizer, idct, fir8.")

let clock_arg =
  Arg.(value & opt (some float) None & info [ "clock"; "c" ] ~docv:"PS"
         ~doc:"Clock period in picoseconds.")

let lib_arg =
  Arg.(value & opt string "default" & info [ "library"; "l" ] ~docv:"LIB"
         ~doc:"Technology library: default (with interconnect overheads) or ideal.")

let flow_arg =
  Arg.(value & opt string "slack" & info [ "flow"; "f" ] ~docv:"FLOW"
         ~doc:"Scheduling flow: conventional, slowest or slack (default).")

let ( let* ) = Result.bind

let report_result r =
  let sched = r.Hls.report.Flows.schedule in
  Format.printf "design %s: flow %s, clock %.0f ps@." r.Hls.design.Hls.design_name
    (Flows.flow_name r.Hls.report.Flows.flow)
    r.Hls.design.Hls.clock;
  Format.printf "%a@." Schedule.pp sched;
  Format.printf "%a@." Alloc.pp sched.Schedule.alloc;
  Format.printf "area: %a@." Area_model.pp_breakdown r.Hls.area;
  Format.printf "netlist: %a@." Netlist.pp_stats (Netlist.stats r.Hls.netlist);
  Format.printf "relaxations: %d, recovery re-grades: %d@." r.Hls.report.Flows.relaxations
    r.Hls.report.Flows.regrades

let run_cmd source builtin clock lib flow =
  let result =
    let* lib = lib_of lib in
    let* flow = flow_of flow in
    let* d = load_design ~source ~builtin ~clock in
    let* r = Hls.run ~lib flow d in
    Ok (report_result r)
  in
  match result with
  | Ok () -> 0
  | Error m ->
    Printf.eprintf "hlsc: %s\n" m;
    1

let compare_cmd source builtin clock lib =
  let result =
    let* lib = lib_of lib in
    let* d = load_design ~source ~builtin ~clock in
    let c = Hls.compare_flows ~lib d in
    (match c.Hls.conventional with
    | Ok r -> Printf.printf "conventional: total area %.0f\n" (Hls.total_area r)
    | Error m -> Printf.printf "conventional: FAILED (%s)\n" m);
    (match c.Hls.slack_based with
    | Ok r -> Printf.printf "slack-based:  total area %.0f\n" (Hls.total_area r)
    | Error m -> Printf.printf "slack-based:  FAILED (%s)\n" m);
    (match c.Hls.saving_pct with
    | Some s -> Printf.printf "saving: %.1f%%\n" s
    | None -> ());
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error m ->
    Printf.eprintf "hlsc: %s\n" m;
    1

let slack_cmd source builtin clock lib =
  let result =
    let* lib = lib_of lib in
    let* d = load_design ~source ~builtin ~clock in
    let del o =
      let op = Dfg.op d.Hls.dfg o in
      match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
      | Some c -> Curve.min_delay c
      | None -> 0.0
    in
    let res = Hls.analyze_slack ~aligned:true d ~del in
    Printf.printf "aligned sequential slack at fastest grades (clock %.0f ps):\n"
      d.Hls.clock;
    Dfg.iter_ops d.Hls.dfg (fun op ->
        match op.Dfg.kind with
        | Dfg.Const _ -> ()
        | _ ->
          let i = Dfg.Op_id.to_int op.Dfg.id in
          Printf.printf "  %-16s arr %8.1f  req %8.1f  slack %8.1f\n" op.Dfg.name
            res.Slack.arr.(i) res.Slack.req.(i) res.Slack.slack.(i));
    Printf.printf "min slack: %.1f ps -> %s\n" res.Slack.min_slack
      (if Slack.feasible res then "feasible (Prop. 1)" else "INFEASIBLE: relax latency or clock");
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error m ->
    Printf.eprintf "hlsc: %s\n" m;
    1

let emit_cmd source builtin clock lib flow output =
  let result =
    let* lib = lib_of lib in
    let* flow = flow_of flow in
    let* d = load_design ~source ~builtin ~clock in
    let* r = Hls.run ~lib flow d in
    let path =
      Option.value ~default:(d.Hls.design_name ^ ".v") output
    in
    Verilog.write_file ~module_name:d.Hls.design_name r.Hls.netlist ~path;
    Printf.printf "wrote %s\n" path;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error m ->
    Printf.eprintf "hlsc: %s\n" m;
    1

let dot_cmd source builtin clock lib flow output =
  let result =
    let* lib = lib_of lib in
    let* flow = flow_of flow in
    let* d = load_design ~source ~builtin ~clock in
    let* r = Hls.run ~lib flow d in
    let sched = r.Hls.report.Flows.schedule in
    let spans = Dfg.compute_spans d.Hls.dfg in
    let base = Option.value ~default:d.Hls.design_name output in
    let dump suffix contents =
      let path = base ^ suffix in
      Dot.write_file contents ~path;
      Printf.printf "wrote %s
" path
    in
    dump ".cfg.dot" (Dot.cfg (Dfg.cfg d.Hls.dfg));
    dump ".dfg.dot" (Dot.dfg ~spans d.Hls.dfg);
    dump ".timed.dot" (Dot.timed_dfg (Timed_dfg.build d.Hls.dfg ~spans));
    dump ".sched.dot" (Dot.schedule sched);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error m ->
    Printf.eprintf "hlsc: %s
" m;
    1

let explore_cmd lib =
  match lib_of lib with
  | Error m ->
    Printf.eprintf "hlsc: %s\n" m;
    1
  | Ok lib ->
    let points =
      List.map
        (fun (p : Idct.design_point) ->
          let d = Idct.instantiate p in
          (p.Idct.id, Hls.design ?ii:p.Idct.ii ~name:d.Idct.name ~clock:p.Idct.clock d.Idct.dfg))
        Idct.table4_points
    in
    let rows = Hls.explore ~lib points in
    print_string (Hls.render_dse rows);
    0

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run one scheduling flow and print the result")
    Term.(const run_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg)

let compare_t =
  Cmd.v (Cmd.info "compare" ~doc:"Conventional vs slack-based, side by side")
    Term.(const compare_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg)

let slack_t =
  Cmd.v (Cmd.info "slack" ~doc:"Pre-schedule sequential-slack report")
    Term.(const slack_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg)

let output_arg =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Output Verilog path.")

let emit_t =
  Cmd.v (Cmd.info "emit" ~doc:"Run a flow and write the Verilog rendering")
    Term.(const emit_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg $ output_arg)

let explore_t =
  Cmd.v (Cmd.info "explore" ~doc:"IDCT design-space exploration (paper Table 4)")
    Term.(const explore_cmd $ lib_arg)

let dot_t =
  Cmd.v
    (Cmd.info "dot" ~doc:"Dump Graphviz renderings (CFG, DFG+spans, timed DFG, schedule)")
    Term.(const dot_cmd $ source_arg $ design_arg $ clock_arg $ lib_arg $ flow_arg $ output_arg)

let () =
  let doc = "slack-budgeting high-level synthesis (DATE 2012 reproduction)" in
  let info = Cmd.info "hlsc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ run_t; compare_t; slack_t; emit_t; explore_t; dot_t ]))
