examples/resizer_slack.ml: Affine Array Cfg Dfg List Parametric Printf Resizer Slack String Timed_dfg
