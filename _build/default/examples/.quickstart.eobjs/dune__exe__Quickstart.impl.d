examples/quickstart.ml: Area_model Cfg Dfg Flows Format Hls Schedule
