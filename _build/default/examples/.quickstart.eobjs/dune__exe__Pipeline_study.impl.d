examples/pipeline_study.ml: Area_model Flows Idct Library List Printf
