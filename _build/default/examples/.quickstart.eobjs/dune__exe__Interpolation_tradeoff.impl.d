examples/interpolation_tradeoff.ml: Alloc Area_model Curve Dfg Flows Interpolation Library List Printf Resource_kind Schedule Slack Timed_dfg
