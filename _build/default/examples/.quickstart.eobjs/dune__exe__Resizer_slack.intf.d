examples/resizer_slack.mli:
