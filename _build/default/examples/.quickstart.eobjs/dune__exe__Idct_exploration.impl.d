examples/idct_exploration.ml: Alloc Area_model Flows Format Hls Idct List Printf Schedule
