examples/custom_design.ml: Ast Cfg Dfg Elaborate Filename Flows Hls List Parser Printf String Transform Verilog
