examples/interpolation_tradeoff.mli:
