examples/idct_exploration.mli:
