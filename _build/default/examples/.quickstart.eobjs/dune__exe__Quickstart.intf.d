examples/quickstart.mli:
