(* The paper's timing-analysis walkthrough (§IV-V): the resizer kernel,
   its operation spans (Figure 5a), and the sequential slack of every
   operation — symbolically, exactly as the paper's Table 3 states it.

     dune exec examples/resizer_slack.exe *)

let () =
  let r = Resizer.table3 () in
  let dfg = r.Resizer.dfg in
  (* Operation spans: where each op may legally be scheduled. *)
  print_endline "operation spans (paper Figure 5a):";
  let spans = Dfg.compute_spans dfg in
  Dfg.iter_ops dfg (fun op ->
      let s = spans.(Dfg.Op_id.to_int op.Dfg.id) in
      Printf.printf "  span(%-4s) = {%s}\n" op.Dfg.name
        (String.concat ","
           (List.map
              (fun e -> Printf.sprintf "e%d" (Cfg.Edge_id.to_int e))
              (Dfg.span_edges dfg s))));
  (* Symbolic slack: delays d (I/O) and D (compute), clock T, with the
     paper's region constraint D + d < T < 2D resolved by sampling. *)
  print_endline "\nsymbolic sequential slack (paper Table 3):";
  let tdfg = Timed_dfg.build dfg ~spans in
  let tT = Affine.param "T" and dD = Affine.param "D" and dd = Affine.param "d" in
  let is_io o =
    List.exists (Dfg.Op_id.equal o) [ r.Resizer.rd_a; r.Resizer.rd_b; r.Resizer.wr ]
  in
  let res =
    Parametric.analyze tdfg ~clock:tT
      ~del:(fun o -> if is_io o then dd else dD)
      ~samples:Resizer.table3_samples
  in
  let order = [ "T"; "D"; "d" ] in
  Dfg.iter_ops dfg (fun op ->
      let i = Dfg.Op_id.to_int op.Dfg.id in
      Printf.printf "  %-4s arr = %-14s req = %-12s slack = %s\n" op.Dfg.name
        (Affine.to_string ~order res.Parametric.arr.(i))
        (Affine.to_string ~order res.Parametric.req.(i))
        (Affine.to_string ~order res.Parametric.slack.(i)));
  let critical = Parametric.critical_ops tdfg res ~samples:Resizer.table3_samples in
  Printf.printf "\ncritical path: %s\n"
    (String.concat " -> " (List.map (fun o -> (Dfg.op dfg o).Dfg.name) critical));
  (* Numeric check at one point of the region. *)
  let t = 10.0 and dd_v = 6.0 and d_v = 1.0 in
  let num =
    Slack.analyze tdfg ~clock:t ~del:(fun o -> if is_io o then d_v else dd_v)
  in
  Printf.printf "\nnumeric check at T=%.0f, D=%.0f, d=%.0f: min slack %.1f (= 2T-4D-d = %.1f)\n"
    t dd_v d_v num.Slack.min_slack
    ((2. *. t) -. (4. *. dd_v) -. d_v)
