(* Loop pipelining study: the IDCT kernel at a fixed latency, swept over
   initiation intervals.  Lower II = higher throughput = more overlapped
   iterations = more resource pressure (steps congruent modulo II share
   nothing); the slack-based flow adapts grades to each point.

     dune exec examples/pipeline_study.exe *)

let () =
  let latency = 16 and clock = 2500.0 in
  Printf.printf "IDCT 8-point kernel, latency %d, clock %.0f ps\n" latency clock;
  Printf.printf "%-6s %-12s %-10s %-10s %-8s\n" "II" "throughput" "A_conv" "A_slack" "save";
  List.iter
    (fun ii ->
      let run flow =
        let d = Idct.build ~latency ~passes:1 () in
        match Flows.run ?ii flow d.Idct.dfg ~lib:Library.default ~clock with
        | Ok r -> Some (Area_model.of_schedule r.Flows.schedule).Area_model.total
        | Error _ -> None
      in
      let conv = run Flows.Conventional and slack = run Flows.Slack_based in
      let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "fail" in
      let save =
        match (conv, slack) with
        | Some c, Some s -> Printf.sprintf "%+.1f%%" (100.0 *. (c -. s) /. c)
        | _ -> "-"
      in
      let ii_label = match ii with Some k -> string_of_int k | None -> "none" in
      let cycles = match ii with Some k -> k | None -> latency in
      Printf.printf "%-6s %-12s %-10s %-10s %-8s\n" ii_label
        (Printf.sprintf "1/%d cycles" cycles)
        (cell conv) (cell slack) save)
    [ None; Some 12; Some 8; Some 6; Some 4; Some 3; Some 2 ]
