(* Ablations of the design decisions DESIGN.md calls out:
   - slack binning margin (paper: 5% of the clock),
   - per-edge re-budgeting (paper Schedule_pass step d),
   - aligned vs raw sequential slack in budgeting,
   - continuous vs discrete (Table 1 grid) resource grading. *)

open Bench_common

let idct_point latency = Idct.build ~latency ~passes:1 ()

let slack_area ?(lib = realistic) ?(recover = true) ~config dfg clock =
  let config = { config with Flows.recover_area = recover } in
  match Flows.run ~config Flows.Slack_based dfg ~lib ~clock with
  | Ok r -> Some (Area_model.of_schedule r.Flows.schedule).Area_model.total
  | Error _ -> None

let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "fail"

let binning_margin () =
  subsection "slack binning margin (fraction of clock)";
  let t =
    Text_table.create ~headers:[ "margin"; "IDCT L12 area"; "pre-recovery"; "budget time" ]
  in
  List.iter
    (fun margin ->
      let config =
        {
          Flows.default_config with
          budget_config = { Budget.default_config with Budget.margin_frac = margin };
        }
      in
      let area =
        let d = idct_point 12 in
        slack_area ~config d.Idct.dfg 2500.0
      in
      let raw_area =
        let d = idct_point 12 in
        slack_area ~recover:false ~config d.Idct.dfg 2500.0
      in
      let time =
        let d = idct_point 12 in
        let spans = Dfg.compute_spans d.Idct.dfg in
        let tdfg = Timed_dfg.build d.Idct.dfg ~spans in
        let ranges o =
          let op = Dfg.op d.Idct.dfg o in
          match Library.op_curve realistic op.Dfg.kind ~width:op.Dfg.width with
          | Some c ->
            let lo = Curve.min_delay c in
            Interval.make lo (Float.max lo (Float.min (Curve.max_delay c) 2500.0))
          | None -> Interval.point 0.0
        in
        let sens o d' =
          let op = Dfg.op d.Idct.dfg o in
          match Library.op_curve realistic op.Dfg.kind ~width:op.Dfg.width with
          | Some c -> Curve.sensitivity c d'
          | None -> 0.0
        in
        measure_ns ~quota:0.5
          (Printf.sprintf "budget-%.2f" margin)
          (fun () ->
            ignore
              (Budget.run
                 ~config:{ Budget.default_config with Budget.margin_frac = margin }
                 tdfg ~clock:2500.0 ~ranges ~sensitivity:sens))
      in
      Text_table.add_row t
        [ Printf.sprintf "%.0f%%" (margin *. 100.0); cell area; cell raw_area; pp_ns time ])
    [ 0.005; 0.01; 0.05; 0.10 ];
  Text_table.print t;
  print_endline "(paper: a 5% margin speeds convergence with negligible quality effect)"

let rebudget_toggle () =
  subsection "per-edge re-budgeting during scheduling (paper step d)";
  let t =
    Text_table.create
      ~headers:[ "design"; "with rebudget"; "without"; "with (pre-rec)"; "without (pre-rec)" ]
  in
  List.iter
    (fun latency ->
      let run ?recover config =
        let d = idct_point latency in
        slack_area ?recover ~config d.Idct.dfg 2500.0
      in
      let no_rb = { Flows.default_config with Flows.rebudget_config = None } in
      Text_table.add_row t
        [
          Printf.sprintf "IDCT L%d" latency;
          cell (run Flows.default_config);
          cell (run no_rb);
          cell (run ~recover:false Flows.default_config);
          cell (run ~recover:false no_rb);
        ])
    [ 16; 12; 10 ];
  Text_table.print t

let alignment_toggle () =
  subsection "aligned vs raw sequential slack in budgeting";
  let t =
    Text_table.create
      ~headers:[ "design"; "aligned (paper)"; "raw"; "aligned (pre-rec)"; "raw (pre-rec)" ]
  in
  List.iter
    (fun (name, dfg, clock, lib) ->
      let run ?recover aligned =
        let config =
          {
            Flows.default_config with
            budget_config = { Budget.default_config with Budget.aligned };
            rebudget_config =
              Option.map
                (fun c -> { c with Budget.aligned })
                Flows.default_config.Flows.rebudget_config;
          }
        in
        slack_area ?recover ~lib ~config dfg clock
      in
      Text_table.add_row t
        [
          name;
          cell (run true);
          cell (run false);
          cell (run ~recover:false true);
          cell (run ~recover:false false);
        ])
    [
      (let ip = Interpolation.unrolled () in
       ("interpolation", ip.Interpolation.dfg, Interpolation.clock, ideal));
      (let d = idct_point 12 in
       ("IDCT L12", d.Idct.dfg, 2500.0, realistic));
    ];
  Text_table.print t;
  print_endline
    "(raw slack ignores clock boundaries, so its budgets can overshoot; the\n\
    \ scheduler's upgrade-on-miss then repairs them.  On these designs the\n\
    \ repaired result is competitive, but only aligned budgets are verified\n\
    \ feasible before scheduling -- see the 560 ps case in test_timing)"

let grading_toggle () =
  subsection "continuous vs discrete (Table 1 grid) resource grading";
  let t = Text_table.create ~headers:[ "design"; "continuous"; "discrete" ] in
  List.iter
    (fun (name, mk, clock, lib) ->
      let run grading =
        let dfg = mk () in
        slack_area ~lib ~config:{ Flows.default_config with Flows.grading } dfg clock
      in
      Text_table.add_row t
        [ name; cell (run Alloc.Continuous); cell (run Alloc.Discrete) ])
    [
      ( "interpolation",
        (fun () -> (Interpolation.unrolled ()).Interpolation.dfg),
        Interpolation.clock,
        ideal );
      ("IDCT L12", (fun () -> (idct_point 12).Idct.dfg), 2500.0, realistic);
    ];
  Text_table.print t

let sharing_toggle () =
  subsection "allocation sharing: add/sub merging and width bucketing";
  let t =
    Text_table.create
      ~headers:[ "design"; "exact groups"; "+add_sub merge"; "+width buckets"; "both" ]
  in
  let variants =
    [
      { Flows.merge_add_sub = false; width_buckets = false };
      { Flows.merge_add_sub = true; width_buckets = false };
      { Flows.merge_add_sub = false; width_buckets = true };
      { Flows.merge_add_sub = true; width_buckets = true };
    ]
  in
  List.iter
    (fun (name, mk, clock) ->
      let cells =
        List.map
          (fun sharing ->
            let dfg = mk () in
            cell (slack_area ~config:{ Flows.default_config with Flows.sharing } dfg clock))
          variants
      in
      Text_table.add_row t (name :: cells))
    [
      ("IDCT L12", (fun () -> (idct_point 12).Idct.dfg), 2500.0);
      ("IDCT L16", (fun () -> (idct_point 16).Idct.dfg), 2500.0);
      ( "random-77",
        (fun () -> (Random_design.generate ~seed:77 ()).Random_design.dfg),
        2200.0 );
    ];
  Text_table.print t;
  print_endline
    "(the paper's SII motivation: adds can run on adder_subtractors and\n\
    \ near-width operations can share wider units; both trade unit count\n\
    \ against per-unit size)"

let run () =
  section "Ablations";
  binning_margin ();
  rebudget_toggle ();
  alignment_toggle ();
  grading_toggle ();
  sharing_toggle ()
