bench/main.mli:
