bench/ablations.ml: Alloc Area_model Bench_common Budget Curve Dfg Float Flows Idct Interpolation Interval Library List Option Printf Random_design Text_table Timed_dfg
