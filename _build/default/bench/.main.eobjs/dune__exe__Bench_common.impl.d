bench/bench_common.ml: Analyze Bechamel Benchmark Hashtbl Library Measure Printf Staged String Test Time Toolkit
