bench/main.ml: Ablations Array String Sys Tables
