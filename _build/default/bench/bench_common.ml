(* Shared helpers for the benchmark harness. *)

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

(* One Bechamel measurement: nanoseconds per call, by OLS over the run
   predictor on the monotonic clock. *)
let measure_ns ?(quota = 1.0) name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some (e :: _) -> e | Some [] | None -> acc)
    results nan

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let ideal = Library.idealized
let realistic = Library.default
