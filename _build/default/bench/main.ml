(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), then runs the
   ablation sweeps.  `dune exec bench/main.exe` prints everything;
   `dune exec bench/main.exe -- --quick` skips the slow sections. *)

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  print_endline "slackhls benchmark harness";
  print_endline "reproducing: Kondratyev et al., 'Exploiting area/delay tradeoffs";
  print_endline "in high-level synthesis', DATE 2012";
  Tables.table1 ();
  Tables.table2 ();
  Tables.table3 ();
  Tables.table4 ();
  Tables.customer ~count:(if quick then 20 else 100) ();
  if not quick then Tables.table5 ()
  else print_endline "\n(table 5 timing skipped in --quick mode)";
  if not quick then Ablations.run ()
  else print_endline "(ablations skipped in --quick mode)";
  print_newline ();
  print_endline "done."
