(* The Hls façade and whole-pipeline integration: language source to area
   report, feasibility checks, DSE driver. *)

let src = {|
process kernel {
  port in a : 16;
  port in b : 16;
  port out y : 16;
  var t : 16;
  var u : 16;
  loop {
    t = read(a) * read(b);
    u = t + u;
    wait;
    wait;
    write(y, u);
  }
}
|}

let elab () = Elaborate.elaborate (Parser.parse src)

let test_run_and_report () =
  let e = elab () in
  let d = Hls.design ~name:"kernel" ~clock:2500.0 e.Elaborate.dfg in
  match Hls.run Flows.Slack_based d with
  | Error e -> Alcotest.fail (Flows.error_message e)
  | Ok r ->
    Alcotest.(check bool) "positive area" true (Hls.total_area r > 0.0);
    Alcotest.(check bool) "fu <= total" true (Hls.fu_area r <= Hls.total_area r);
    let stats = Netlist.stats r.Hls.netlist in
    Alcotest.(check bool) "netlist has FUs" true (stats.Netlist.n_fus > 0);
    (match Schedule.validate r.Hls.report.Flows.schedule with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

let test_compare_flows () =
  let e = elab () in
  let d = Hls.design ~name:"kernel" ~clock:2500.0 e.Elaborate.dfg in
  let c = Hls.compare_flows d in
  (match (c.Hls.conventional, c.Hls.slack_based) with
  | Ok _, Ok _ -> ()
  | Error e, _ | _, Error e -> Alcotest.fail (Flows.error_message e));
  match c.Hls.saving_pct with
  | Some s -> Alcotest.(check bool) "saving computed" true (s > -100.0 && s < 100.0)
  | None -> Alcotest.fail "saving missing"

let test_feasibility_check () =
  let e = elab () in
  let ok_design = Hls.design ~name:"kernel" ~clock:3000.0 e.Elaborate.dfg in
  (match Hls.feasibility_check ok_design with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "generous clock must be feasible");
  let e2 = elab () in
  let tight = Hls.design ~name:"kernel" ~clock:300.0 e2.Elaborate.dfg in
  match Hls.feasibility_check tight with
  | Ok () -> Alcotest.fail "300 ps cannot fit a 16-bit multiply"
  | Error critical -> Alcotest.(check bool) "critical ops named" true (critical <> [])

let test_explore_and_render () =
  let points =
    List.map
      (fun latency ->
        let d = Idct.build ~latency ~passes:1 () in
        (Printf.sprintf "L%d" latency, Hls.design ~name:d.Idct.name ~clock:2500.0 d.Idct.dfg))
      [ 16; 12 ]
  in
  let rows = Hls.explore points in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Hls.point_name ^ " both flows ok") true
        (r.Hls.a_conv <> None && r.Hls.a_slack <> None))
    rows;
  (match Hls.average_saving rows with
  | Some avg -> Alcotest.(check bool) "average in range" true (avg > -50.0 && avg < 60.0)
  | None -> Alcotest.fail "no average");
  let rendered = Hls.render_dse rows in
  Alcotest.(check bool) "render mentions rows" true (String.length rendered > 40)

let test_design_validation () =
  let e = elab () in
  match Hls.design ~name:"x" ~clock:(-5.0) e.Elaborate.dfg with
  | _ -> Alcotest.fail "negative clock rejected"
  | exception Invalid_argument _ -> ()

let test_pipeline_cosim_integration () =
  (* Full pipeline: source -> schedule (both flows) -> co-simulate. *)
  let e = elab () in
  List.iter
    (fun flow ->
      match Flows.run flow e.Elaborate.dfg ~lib:Library.default ~clock:2500.0 with
      | Error e -> Alcotest.fail (Flows.error_message e)
      | Ok r ->
        let res = Cosim.check ~schedule:r.Flows.schedule ~iterations:32 ~seed:3 e in
        Alcotest.(check int)
          (Flows.flow_name flow ^ " cosim clean")
          0
          (List.length res.Cosim.mismatches))
    [ Flows.Conventional; Flows.Slowest_first; Flows.Slack_based ]

let test_analyze_slack_facade () =
  let e = elab () in
  let d = Hls.design ~name:"kernel" ~clock:2500.0 e.Elaborate.dfg in
  let res = Hls.analyze_slack d ~del:(fun _ -> 100.0) in
  Alcotest.(check bool) "finite min slack" true (Float.is_finite res.Slack.min_slack)

let suite =
  [
    Alcotest.test_case "run and report" `Quick test_run_and_report;
    Alcotest.test_case "compare flows" `Quick test_compare_flows;
    Alcotest.test_case "feasibility check (prop 1)" `Quick test_feasibility_check;
    Alcotest.test_case "explore and render" `Quick test_explore_and_render;
    Alcotest.test_case "design validation" `Quick test_design_validation;
    Alcotest.test_case "pipeline cosim integration" `Quick test_pipeline_cosim_integration;
    Alcotest.test_case "analyze_slack facade" `Quick test_analyze_slack_facade;
  ]

let () = Alcotest.run "core" [ ("core", suite) ]
