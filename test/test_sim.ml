(* Simulation subsystem: interpreter vs elaborated-DFG co-simulation, with
   and without schedules, across language features. *)

let resizer_src = {|
process resizer {
  port in a : 16;
  port in b : 16;
  port out y : 16;
  var x : 16;
  var r : 16;
  loop {
    x = read(a) + 100;
    if (x > 30000) { wait; r = x / 3 - 100; }
    else { wait; r = x * read(b); }
    wait;
    write(y, r);
  }
}
|}

let accumulator_src = {|
process acc {
  port in d : 12;
  port out s : 16;
  var total : 16;
  var n : 8;
  loop {
    total = total + read(d);
    n = n + 1;
    wait;
    write(s, total + n);
  }
}
|}

let unrolled_src = {|
process unrolled {
  port in d : 8;
  port out q : 16;
  var acc : 16;
  loop {
    acc = 0;
    for (k = 0; k < 3; k++) {
      acc = acc + read(d) * (k + 1);
      wait;
    }
    write(q, acc);
  }
}
|}

let nested_if_src = {|
process nested {
  port in a : 8;
  port out y : 16;
  var v : 16;
  loop {
    v = read(a);
    if (v > 128) {
      if (v > 200) { v = v * 3; } else { v = v * 2; }
      wait;
    } else {
      v = v + 7;
      wait;
    }
    wait;
    write(y, v);
  }
}
|}

let elab src = Elaborate.elaborate (Parser.parse src)

let test_cosim src name () =
  let e = elab src in
  let r = Cosim.check ~iterations:64 ~seed:7 e in
  Alcotest.(check int) (name ^ ": no mismatches") 0 (List.length r.Cosim.mismatches);
  Alcotest.(check bool) (name ^ ": checked something") true (r.Cosim.checked_values > 0)

let test_cosim_under_schedules src name () =
  let e = elab src in
  List.iter
    (fun flow ->
      match Flows.run flow e.Elaborate.dfg ~lib:Library.default ~clock:6000.0 with
      | Error e -> Alcotest.failf "%s: %s failed: %s" name (Flows.flow_name flow) (Flows.error_message e)
      | Ok rep ->
        let r = Cosim.check ~schedule:rep.Flows.schedule ~iterations:48 ~seed:11 e in
        (match r.Cosim.mismatches with
        | [] -> ()
        | m :: _ ->
          Alcotest.failf "%s under %s: port %s write %d expected %d got %d" name
            (Flows.flow_name flow) m.Cosim.mport m.Cosim.iteration m.Cosim.expected
            m.Cosim.got))
    [ Flows.Conventional; Flows.Slack_based ]

let test_branch_sides_exercised () =
  (* The stimulus must cover both branch sides of the resizer; count write
     values produced by each side. *)
  let e = elab resizer_src in
  let inputs port k = Hashtbl.hash (port, k, "side") land 0xFFFF in
  let outs = Dfg_sim.run e ~iterations:200 ~inputs in
  match List.assoc_opt "y" outs with
  | Some trace ->
    Alcotest.(check int) "200 writes" 200 (List.length trace);
    let distinct = List.sort_uniq compare trace in
    Alcotest.(check bool) "non-degenerate traces" true (List.length distinct > 10)
  | None -> Alcotest.fail "no y trace"

let test_loop_state_progresses () =
  (* The accumulator's output must strictly increase as long as no wrap
     occurs: loop-carried state works. *)
  let e = elab accumulator_src in
  let inputs _ _ = 5 in
  let outs = Dfg_sim.run e ~iterations:10 ~inputs in
  match List.assoc_opt "s" outs with
  | Some (x0 :: x1 :: x2 :: _) ->
    Alcotest.(check bool) "increasing" true (x0 < x1 && x1 < x2);
    (* total = 5k, n = k -> s = 6k *)
    Alcotest.(check int) "first value" 6 x0;
    Alcotest.(check int) "second value" 12 x1
  | _ -> Alcotest.fail "missing trace"

let test_wordops_mask () =
  Alcotest.(check int) "mask 8" 0xAB (Wordops.mask ~width:8 0x1AB);
  Alcotest.(check int) "mul wraps" 0 (Wordops.binop Ast.Bmul ~width:8 16 16);
  Alcotest.(check int) "div by zero is zero" 0 (Wordops.binop Ast.Bdiv ~width:16 5 0);
  Alcotest.(check int) "mod by zero is zero" 0 (Wordops.binop Ast.Bmod ~width:16 5 0);
  Alcotest.(check int) "cmp true" 1 (Wordops.binop Ast.Blt ~width:16 3 4);
  Alcotest.(check int) "mux picks then" 42 (Wordops.op_kind Dfg.Mux ~width:16 [ 42; 7; 1 ]);
  Alcotest.(check int) "mux picks else" 7 (Wordops.op_kind Dfg.Mux ~width:16 [ 42; 7; 0 ])

let test_behav_interpreter_for_loop () =
  let p = Parser.parse unrolled_src in
  (* acc = d0*1 + d1*2 + d2*3 per iteration *)
  let inputs _ k = k + 1 in
  match Behav_sim.run p ~iterations:2 ~inputs with
  | [ ("q", [ a; b ]) ] ->
    Alcotest.(check int) "iteration 1" ((1 * 1) + (2 * 2) + (3 * 3)) a;
    Alcotest.(check int) "iteration 2" ((4 * 1) + (5 * 2) + (6 * 3)) b
  | _ -> Alcotest.fail "unexpected trace shape"

let prop_cosim_random_seeds =
  QCheck.Test.make ~name:"cosim equivalence across random seeds" ~count:20
    QCheck.(int_range 0 100000)
    (fun seed ->
      let e = elab resizer_src in
      (Cosim.check ~iterations:40 ~seed e).Cosim.mismatches = [])

let prop_cosim_nested_if =
  QCheck.Test.make ~name:"cosim equivalence on nested ifs" ~count:20
    QCheck.(int_range 0 100000)
    (fun seed ->
      let e = elab nested_if_src in
      (Cosim.check ~iterations:40 ~seed e).Cosim.mismatches = [])

let suite =
  [
    Alcotest.test_case "wordops semantics" `Quick test_wordops_mask;
    Alcotest.test_case "interpreter for-loop" `Quick test_behav_interpreter_for_loop;
    Alcotest.test_case "cosim resizer" `Quick (test_cosim resizer_src "resizer");
    Alcotest.test_case "cosim accumulator" `Quick (test_cosim accumulator_src "acc");
    Alcotest.test_case "cosim unrolled loop" `Quick (test_cosim unrolled_src "unrolled");
    Alcotest.test_case "cosim nested ifs" `Quick (test_cosim nested_if_src "nested");
    Alcotest.test_case "cosim resizer under schedules" `Quick
      (test_cosim_under_schedules resizer_src "resizer");
    Alcotest.test_case "cosim accumulator under schedules" `Quick
      (test_cosim_under_schedules accumulator_src "acc");
    Alcotest.test_case "branch sides exercised" `Quick test_branch_sides_exercised;
    Alcotest.test_case "loop state progresses" `Quick test_loop_state_progresses;
    QCheck_alcotest.to_alcotest prop_cosim_random_seeds;
    QCheck_alcotest.to_alcotest prop_cosim_nested_if;
  ]

let () = Alcotest.run "sim" [ ("sim", suite) ]
