(* The corpus generator: deterministic planning, shaped designs, manifest
   round-trip, and drift detection — the contract `hlsc corpus --verify`
   enforces in CI. *)

let entry_eq (a : Corpus.entry) (b : Corpus.entry) =
  a.Corpus.name = b.Corpus.name
  && a.Corpus.seed = b.Corpus.seed
  && a.Corpus.shape = b.Corpus.shape
  && a.Corpus.klass = b.Corpus.klass
  && a.Corpus.ii = b.Corpus.ii
  && a.Corpus.clock_ps = b.Corpus.clock_ps
  && a.Corpus.ops = b.Corpus.ops
  && a.Corpus.digest = b.Corpus.digest

let test_plan_deterministic () =
  let a = Corpus.plan ~count:20 ~seed:42 () in
  let b = Corpus.plan ~count:20 ~seed:42 () in
  Alcotest.(check int) "count" 20 (List.length a);
  Alcotest.(check bool) "identical plans" true (List.for_all2 entry_eq a b);
  let c = Corpus.plan ~count:20 ~seed:43 () in
  Alcotest.(check bool) "different seed differs" false (List.for_all2 entry_eq a c)

let test_plan_covers_shapes_and_classes () =
  let entries = Corpus.plan ~count:40 ~seed:42 () in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "shape %s present" (Random_design.shape_name s))
        true
        (List.exists (fun (e : Corpus.entry) -> e.Corpus.shape = s) entries))
    Random_design.all_shapes;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "class %s present" (Corpus.klass_name k))
        true
        (List.exists (fun (e : Corpus.entry) -> e.Corpus.klass = k) entries))
    Corpus.all_klasses;
  Alcotest.(check bool) "some designs carry an II constraint" true
    (List.exists (fun (e : Corpus.entry) -> e.Corpus.ii > 0) entries);
  let names = List.map (fun (e : Corpus.entry) -> e.Corpus.name) entries in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_shapes_change_digest_only_structurally () =
  (* Same (profile, seed) under different shapes draws the same op stream
     but different CFGs: distinct digests, and the default is Loop. *)
  let seed = 12345 in
  let digests =
    List.map
      (fun s -> Random_design.digest (Random_design.generate ~shape:s ~seed ()))
      Random_design.all_shapes
  in
  Alcotest.(check int) "four distinct digests" 4
    (List.length (List.sort_uniq String.compare digests));
  let default_d = Random_design.digest (Random_design.generate ~seed ()) in
  let loop_d =
    Random_design.digest (Random_design.generate ~shape:Random_design.Loop ~seed ())
  in
  Alcotest.(check string) "default shape is Loop, byte-identical" loop_d default_d

let test_shaped_designs_schedule () =
  (* Every shape must survive the full flow: sealed CFG, valid DFG, and a
     feasible schedule at its own suggested clock. *)
  List.iter
    (fun shape ->
      let d = Random_design.generate ~shape ~seed:777 () in
      let design =
        Hls.design ~name:d.Random_design.name ~clock:d.Random_design.suggested_clock
          d.Random_design.dfg
      in
      match Hls.run ~lib:Library.default ~config:Flows.default_config
              Flows.Slack_based design
      with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "shape %s failed: %s" (Random_design.shape_name shape)
          (Flows.error_message e))
    Random_design.all_shapes

let with_temp_manifest f =
  let path = Filename.temp_file "corpus" ".tsv" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_manifest_roundtrip () =
  with_temp_manifest @@ fun path ->
  let entries = Corpus.plan ~count:15 ~seed:9 () in
  Corpus.save ~path ~seed:9 entries;
  match Corpus.load ~path with
  | Error m -> Alcotest.fail m
  | Ok (seed, loaded) ->
    Alcotest.(check int) "seed" 9 seed;
    Alcotest.(check int) "count" 15 (List.length loaded);
    Alcotest.(check bool) "entries round-trip" true
      (List.for_all2 entry_eq entries loaded)

let test_verify_ok_and_drift () =
  with_temp_manifest @@ fun path ->
  let entries = Corpus.plan ~count:10 ~seed:5 () in
  Corpus.save ~path ~seed:5 entries;
  (match Corpus.verify ~path with
  | Ok n -> Alcotest.(check int) "verified count" 10 n
  | Error m -> Alcotest.fail m);
  (* Flip one digest: verify must localize the drift. *)
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let tampered =
    List.map
      (fun l ->
        match String.index_opt l '\t' with
        | Some _ when String.length l > 32 && l.[0] = 'c' ->
          String.sub l 0 (String.length l - 32) ^ String.make 32 '0'
        | _ -> l)
      lines
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) tampered);
  match Corpus.verify ~path with
  | Ok _ -> Alcotest.fail "tampered manifest verified"
  | Error m ->
    Alcotest.(check bool) "names the drifting design" true
      (String.length m > 0
      && String.sub m 0 12 = "digest drift")

let test_load_rejects_garbage () =
  with_temp_manifest @@ fun path ->
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "not a manifest\n");
  (match Corpus.load ~path with
  | Ok _ -> Alcotest.fail "foreign header accepted"
  | Error _ -> ());
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "# slackhls-corpus v1\tseed=1\tcount=2\nname\tseed\tshape\tclass\tii\tclock_ps\tops\tdigest\nonly-one-column\n");
  match Corpus.load ~path with
  | Ok _ -> Alcotest.fail "malformed row accepted"
  | Error _ -> ()

let () =
  Alcotest.run "corpus"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_plan_deterministic;
          Alcotest.test_case "covers shapes, classes, IIs" `Quick
            test_plan_covers_shapes_and_classes;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "distinct digests, Loop default" `Quick
            test_shapes_change_digest_only_structurally;
          Alcotest.test_case "every shape schedules" `Quick
            test_shaped_designs_schedule;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "save/load round-trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "verify ok + digest drift" `Quick
            test_verify_ok_and_drift;
          Alcotest.test_case "garbage rejected" `Quick test_load_rejects_garbage;
        ] );
    ]
