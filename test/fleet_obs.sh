#!/usr/bin/env bash
# Fleet observability, end to end (invoked from the dune runtest rule).
#
#   phase 1: two --telemetry daemons drive a distributed sweep twice
#            (fresh daemons each time, so the evaluation caches are cold
#            and every lease re-emits its decision events).  Checks:
#            - the merged frontier CSV is byte-identical to the
#              single-process run,
#            - merged-events.jsonl is byte-identical across the two runs,
#            - fleet-trace.json has a lane (process_name metadata) per
#              worker plus the supervisor, and the worker request spans
#              carry the supervisor's sweep-<pid> trace id,
#            - fleet-counters.json namespaces worker.* and sums fleet.*,
#            - hlsc explain and hlsc diff-events accept the merged file.
#   phase 2: --metrics scrape smoke plus hlsc top against a live daemon.
#   phase 3: the crash flight recorder writes hlsc-crash-<pid>.json on a
#            flow-failure exit, and --no-crash-dump suppresses it.
set -eu

HLSC=$1
# The dune rule hands us a build-relative path; phase 3 cd's into the
# scratch dir, so resolve it to an absolute one up front.
case "$HLSC" in /*) ;; *) HLSC=$(pwd)/$HLSC ;; esac
DIR=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

GRID="--design fir8 --clocks 2400:2600:100 --flows conv,slack --ii none,4"

wait_sock() {
  for _ in $(seq 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "worker socket $1 never appeared" >&2
  return 1
}

# Single-process reference frontier.
# shellcheck disable=SC2086
"$HLSC" explore $GRID --jobs 2 --csv "$DIR/ref.csv" >"$DIR/ref.out"

# ---- phase 1: merged telemetry, twice, byte-identical ----

run_fleet() {
  out=$1
  "$HLSC" serve --socket "$DIR/a.sock" --jobs 1 --telemetry \
    >"$DIR/a.log" 2>&1 &
  "$HLSC" serve --socket "$DIR/b.sock" --jobs 1 --telemetry \
    >"$DIR/b.log" 2>&1 &
  wait_sock "$DIR/a.sock"
  wait_sock "$DIR/b.sock"
  # shellcheck disable=SC2086
  "$HLSC" sweep $GRID \
    --workers "unix:$DIR/a.sock,unix:$DIR/b.sock" \
    --dir "$DIR/$out" --csv "$DIR/$out.csv" >"$DIR/$out.out" 2>&1
  "$HLSC" request --socket "$DIR/a.sock" shutdown >/dev/null 2>&1 || true
  "$HLSC" request --socket "$DIR/b.sock" shutdown >/dev/null 2>&1 || true
  wait
  rm -f "$DIR/a.sock" "$DIR/b.sock"
}

run_fleet fleet1
run_fleet fleet2

cmp "$DIR/ref.csv" "$DIR/fleet1.csv"
cmp "$DIR/fleet1/merged-events.jsonl" "$DIR/fleet2/merged-events.jsonl"
test -s "$DIR/fleet1/merged-events.jsonl"
grep -q '"worker":"L0"' "$DIR/fleet1/merged-events.jsonl"

# A lane per worker plus the supervisor, spans stamped with the trace id.
grep -q '"name":"supervisor"' "$DIR/fleet1/fleet-trace.json"
grep -q "a.sock" "$DIR/fleet1/fleet-trace.json"
grep -q "b.sock" "$DIR/fleet1/fleet-trace.json"
grep -q '"trace_id":"sweep-' "$DIR/fleet1/fleet-trace.json"
grep -q '"name":"serve.shard_explore"' "$DIR/fleet1/fleet-trace.json"

# Namespaced counters plus fleet sums.
grep -q '"fleet.serve.requests"' "$DIR/fleet1/fleet-counters.json"
grep -q '"worker.unix:' "$DIR/fleet1/fleet-counters.json"

# The merged provenance file is a first-class explain/diff input.
"$HLSC" explain --op rd_x "$DIR/fleet1/merged-events.jsonl" \
  >"$DIR/explain.out"
grep -q "worker streams" "$DIR/explain.out"
grep -q "final grade:" "$DIR/explain.out"
"$HLSC" diff-events "$DIR/fleet1/merged-events.jsonl" \
  "$DIR/fleet2/merged-events.jsonl" >"$DIR/diffev.out"
grep -q "identical:" "$DIR/diffev.out"

# ---- phase 2: metrics scrape + top dashboard ----

PORT=7913
"$HLSC" serve --socket "$DIR/m.sock" --jobs 1 --telemetry --metrics $PORT \
  >"$DIR/m.log" 2>&1 &
wait_sock "$DIR/m.sock"
"$HLSC" request --socket "$DIR/m.sock" ping >/dev/null

scrape() {
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || return 1
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  cat <&3
  exec 3<&-
}
scrape >"$DIR/metrics.out"
grep -q "serve_requests_total" "$DIR/metrics.out"
grep -q "serve_latency_ping" "$DIR/metrics.out"

"$HLSC" top "unix:$DIR/m.sock" --iterations 1 >"$DIR/top.out"
grep -q "cache%" "$DIR/top.out"
grep -q "m.sock" "$DIR/top.out"

"$HLSC" request --socket "$DIR/m.sock" shutdown >/dev/null 2>&1 || true
wait

# ---- phase 3: crash flight recorder ----

(cd "$DIR" && "$HLSC" run --design interpolation --clock 600 \
  >crash.out 2>crash.err) && {
  echo "infeasible run unexpectedly succeeded" >&2
  exit 1
}
dump=$(ls "$DIR"/hlsc-crash-*.json)
grep -q '"exit_code":4' "$dump"
grep -q '"open_spans"' "$dump"
grep -q '"telemetry"' "$dump"
rm -f "$DIR"/hlsc-crash-*.json

(cd "$DIR" && "$HLSC" run --design interpolation --clock 600 \
  --no-crash-dump >/dev/null 2>&1) || true
if ls "$DIR"/hlsc-crash-*.json >/dev/null 2>&1; then
  echo "--no-crash-dump still wrote a dump" >&2
  exit 1
fi

echo "fleet obs: ok"
