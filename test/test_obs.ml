(* Telemetry (lib/obs) tests: span nesting, counter monotonicity,
   distribution percentiles, snapshot determinism across identical flow
   runs, and the paper's linear-complexity claim for slack passes
   (relaxation work = 2.E per analysis, vs the Bellman-Ford baseline's
   dynamic edge-scan count). *)

let lookup name snap = Option.value ~default:0 (List.assoc_opt name snap)

(* Counter deltas caused by [f], from the global cumulative snapshot. *)
let deltas f =
  let before = Obs.counters_snapshot () in
  let x = f () in
  let after = Obs.counters_snapshot () in
  let d =
    List.filter_map
      (fun (name, v) ->
        let dv = v - lookup name before in
        if dv <> 0 then Some (name, dv) else None)
      after
  in
  (x, d)

let test_counter_monotone () =
  let c = Obs.counter "test.obs.monotone" in
  let v0 = Obs.value c in
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "incr/add accumulate" (v0 + 42) (Obs.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.add: counters are monotone") (fun () ->
      Obs.add c (-1));
  Alcotest.(check int) "value unchanged after rejected add" (v0 + 42)
    (Obs.value c);
  let c' = Obs.counter "test.obs.monotone" in
  Obs.incr c';
  Alcotest.(check int) "same name -> same interned counter" (v0 + 43)
    (Obs.value c)

let test_dist_percentiles () =
  let d = Obs.dist "test.obs.percentiles" in
  Alcotest.(check bool) "empty dist has no stats" true (Obs.dist_stats d = None);
  for i = 1 to 100 do
    Obs.observe d (float_of_int i)
  done;
  match Obs.dist_stats d with
  | None -> Alcotest.fail "stats expected after 100 observations"
  | Some s ->
    Alcotest.(check int) "n" 100 s.Obs.n;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Obs.dmin;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Obs.dmax;
    Alcotest.(check (float 1e-9)) "mean" 50.5 s.Obs.mean;
    Alcotest.(check (float 1e-9)) "p50" 50.0 s.Obs.p50;
    Alcotest.(check (float 1e-9)) "p95" 95.0 s.Obs.p95

let test_span_nesting () =
  Obs.enable_stats ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let v =
    Obs.span "test.outer" (fun () ->
        let a = Obs.span "test.inner" (fun () -> 20) in
        let b = Obs.span "test.inner" (fun () -> 1) in
        a + b + Obs.span "test.other" (fun () -> 21))
  in
  Alcotest.(check int) "span returns the body's value" 42 v;
  let stats = Obs.span_stats () in
  let count path =
    List.fold_left
      (fun acc (p, n, _) -> if String.equal p path then acc + n else acc)
      0 stats
  in
  Alcotest.(check int) "outer span recorded" 1 (count "test.outer");
  Alcotest.(check int) "inner spans aggregate under their parent path" 2
    (count "test.outer/test.inner");
  Alcotest.(check int) "sibling path distinct" 1 (count "test.outer/test.other");
  Alcotest.(check int) "no bare inner path" 0 (count "test.inner")

let test_span_disabled () =
  Obs.disable ();
  Alcotest.(check bool) "not collecting by default" false (Obs.collecting ());
  let v = Obs.span "test.off" (fun () -> 7) in
  Alcotest.(check int) "disabled span still runs the body" 7 v

let idct_design () =
  let d = Idct.build ~latency:12 ~passes:1 () in
  Hls.design ~name:"idct" ~clock:2500.0 d.Idct.dfg

let test_snapshot_determinism () =
  let run () =
    match Hls.run Flows.Slack_based (idct_design ()) with
    | Ok r -> r
    | Error e -> Alcotest.fail (Flows.error_message e)
  in
  let r1, d1 = deltas run in
  let r2, d2 = deltas run in
  Alcotest.(check (float 1e-9))
    "identical runs produce identical areas" (Hls.total_area r1)
    (Hls.total_area r2);
  Alcotest.(check (list (pair string int)))
    "identical runs produce identical counter deltas" d1 d2;
  Alcotest.(check bool) "the run bumps slack.analyses" true
    (lookup "slack.analyses" d1 > 0);
  Alcotest.(check bool) "the run bumps sched.placements" true
    (lookup "sched.placements" d1 > 0)

(* Paper §IV-V: one slack analysis is two linear passes, each relaxing
   every timed-DFG edge exactly once — so the relaxation counter must grow
   as 2.E per analysis, at every design size.  The Bellman-Ford baseline's
   dynamically counted edge scans can only be >= that. *)
let test_slack_pass_linearity () =
  List.iter
    (fun n ->
      let profile =
        { Random_design.default_profile with min_ops = n; max_ops = n }
      in
      let d = Random_design.generate ~profile ~seed:(7 * n) () in
      let spans = Dfg.compute_spans d.Random_design.dfg in
      let tdfg = Timed_dfg.build d.Random_design.dfg ~spans in
      let e = Timed_dfg.edge_count tdfg in
      let del _ = 100.0 in
      let analyses = 3 in
      let (), dl =
        deltas (fun () ->
            for _ = 1 to analyses do
              ignore (Slack.analyze ~aligned:true tdfg ~clock:d.Random_design.suggested_clock ~del)
            done)
      in
      Alcotest.(check int)
        (Printf.sprintf "2.E relaxations per analysis at %d ops" n)
        (2 * e * analyses)
        (lookup "slack.edge_relaxations" dl);
      Alcotest.(check int)
        (Printf.sprintf "one forward pass per analysis at %d ops" n)
        analyses
        (lookup "slack.forward_passes" dl);
      let (), db =
        deltas (fun () ->
            ignore (Bf_timing.analyze tdfg ~clock:d.Random_design.suggested_clock ~del))
      in
      Alcotest.(check bool)
        (Printf.sprintf "BF baseline scans at least E edges at %d ops" n)
        true
        (lookup "graph.bf.edge_scans" db >= e))
    [ 16; 32; 64; 128 ]

(* Edge cases around the distribution percentile estimator: 0 samples has
   no stats at all, 1 sample pins every statistic to that sample. *)
let test_dist_degenerate () =
  let d0 = Obs.dist "test.obs.dist.empty" in
  Alcotest.(check bool) "0 samples -> None" true (Obs.dist_stats d0 = None);
  let d1 = Obs.dist "test.obs.dist.single" in
  Obs.observe d1 42.0;
  match Obs.dist_stats d1 with
  | None -> Alcotest.fail "stats expected after one observation"
  | Some s ->
    Alcotest.(check int) "n" 1 s.Obs.n;
    Alcotest.(check (float 1e-9)) "min" 42.0 s.Obs.dmin;
    Alcotest.(check (float 1e-9)) "max" 42.0 s.Obs.dmax;
    Alcotest.(check (float 1e-9)) "mean" 42.0 s.Obs.mean;
    Alcotest.(check (float 1e-9)) "p50" 42.0 s.Obs.p50;
    Alcotest.(check (float 1e-9)) "p95" 42.0 s.Obs.p95

(* Ring wraparound: capacity 8, 20 events emitted -> the 12 oldest drop
   (counted in obs.events.dropped), the survivors are the last 8 in seq
   order. *)
let test_events_wraparound () =
  let (), d =
    deltas (fun () ->
        Obs.Events.enable ~capacity:8 ();
        Fun.protect ~finally:Obs.Events.disable @@ fun () ->
        for k = 0 to 19 do
          Obs.Events.emit (Obs.Events.Budget_round { round = k; updates = k })
        done)
  in
  let evs = Obs.Events.events () in
  Alcotest.(check int) "ring holds capacity events" 8 (List.length evs);
  Alcotest.(check int) "dropped counter bumped per overwrite" 12
    (lookup "obs.events.dropped" d);
  Alcotest.(check (list int)) "oldest dropped, order kept"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun e -> e.Obs.Events.seq) evs);
  (match (List.hd evs).Obs.Events.payload with
  | Obs.Events.Budget_round { round; _ } ->
    Alcotest.(check int) "payload survives the wrap" 12 round
  | _ -> Alcotest.fail "unexpected payload");
  Obs.Events.clear ();
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Obs.Events.events ()))

(* Every payload constructor round-trips through its JSONL line. *)
let test_events_roundtrip () =
  let open Obs.Events in
  let payloads =
    [
      Slack_computed { op = "m_x0c4"; phase = "budget"; round = 1; slack_ps = -12.5 };
      Delay_update
        { op = "e\"0"; phase = "rebudget"; round = 0; from_ps = 573.333; to_ps = 1220.0 };
      Budget_round { round = 3; updates = 17 };
      Edge_scheduled { edge = 4; step = 2; placed = 5; deferred = 1 };
      Op_picked { op = "h1s"; edge = 0; step = 0; priority = 24400.0; ready_set_size = 8 };
      Recovery_step { rung = "relax-budget"; outcome = "recovered" };
      Worker_sample
        {
          domain = 3;
          tasks_done = 7;
          utilization = 0.875;
          minor_words = 123456.0;
          major_words = 2048.0;
        };
    ]
  in
  List.iteri
    (fun i payload ->
      let e = { seq = i; payload } in
      let line = to_jsonl_line e in
      match Obs.Json.parse line with
      | Error m -> Alcotest.fail ("emitted line does not parse: " ^ m)
      | Ok j -> (
        match of_json j with
        | Error m -> Alcotest.fail ("parsed line does not decode: " ^ m)
        | Ok e' ->
          Alcotest.(check bool)
            (Printf.sprintf "payload %d round-trips" i)
            true (e = e')))
    payloads

(* JSONL sink validity under concurrency: 4 domains emitting into the
   shared ring; the file must be valid line-delimited JSON with every
   sequence number unique. *)
let test_events_concurrent_jsonl () =
  Obs.Events.enable ~capacity:8192 ();
  Fun.protect ~finally:Obs.Events.disable @@ fun () ->
  let per_domain = 500 in
  let emitter w () =
    for k = 1 to per_domain do
      Obs.Events.emit
        (Obs.Events.Worker_sample
           {
             domain = w;
             tasks_done = k;
             utilization = 0.5;
             minor_words = 0.0;
             major_words = 0.0;
           })
    done
  in
  let domains = Array.init 4 (fun w -> Domain.spawn (emitter w)) in
  Array.iter Domain.join domains;
  let path = Filename.temp_file "obs_events" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Events.write_jsonl ~path;
  (* Every line parses on its own... *)
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Obs.Json.parse line with
       | Ok (Obs.Json.Obj _) -> ()
       | Ok _ -> Alcotest.fail "line is not a JSON object"
       | Error m -> Alcotest.fail ("invalid JSONL line: " ^ m)
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "all events written" (4 * per_domain) !lines;
  (* ...and the typed loader agrees, with unique ordered seqs. *)
  match Obs.Events.load_jsonl ~path with
  | Error m -> Alcotest.fail m
  | Ok evs ->
    Alcotest.(check int) "loader sees every line" (4 * per_domain)
      (List.length evs);
    let seqs = List.map (fun e -> e.Obs.Events.seq) evs in
    Alcotest.(check bool) "seqs strictly increasing" true
      (List.for_all2 (fun a b -> a < b)
         (List.filteri (fun i _ -> i < List.length seqs - 1) seqs)
         (List.tl seqs))

(* mark/since/renumber: the per-lease shipping window a worker daemon
   uses — events after the mark, deterministic ones only, re-stamped from
   0 so the stream is a pure function of the lease. *)
let test_events_mark_since_renumber () =
  Obs.Events.enable ~capacity:64 ();
  Fun.protect ~finally:Obs.Events.disable @@ fun () ->
  Obs.Events.clear ();
  for k = 0 to 2 do
    Obs.Events.emit (Obs.Events.Budget_round { round = k; updates = 0 })
  done;
  let mark = Obs.Events.mark () in
  Obs.Events.emit (Obs.Events.Budget_round { round = 99; updates = 1 });
  Obs.Events.emit
    (Obs.Events.Serve_sample
       { queue_depth = 1; inflight = 1; admitted = 1; shed = 0 });
  Obs.Events.emit (Obs.Events.Recovery_step { rung = "r"; outcome = "ok" });
  let window = Obs.Events.since ~mark in
  Alcotest.(check int) "window holds post-mark events" 3 (List.length window);
  let shipped =
    window |> List.filter Obs.Events.deterministic |> Obs.Events.renumber
  in
  Alcotest.(check (list int)) "renumbered from 0, samples excluded" [ 0; 1 ]
    (List.map (fun e -> e.Obs.Events.seq) shipped);
  (match (List.hd shipped).Obs.Events.payload with
  | Obs.Events.Budget_round { round; _ } ->
    Alcotest.(check int) "payload kept through renumbering" 99 round
  | _ -> Alcotest.fail "unexpected payload");
  Obs.Events.clear ()

(* Tagged multi-worker files: two interleaved streams load (per-stream
   monotonicity holds even though the global seq sequence restarts), and
   a violation names the offending stream. *)
let test_events_tagged_streams () =
  let open Obs.Events in
  let line stream seq round =
    tagged_to_jsonl_line ~stream { seq; payload = Budget_round { round; updates = 0 } }
  in
  let write lines =
    let path = Filename.temp_file "obs_tagged" ".jsonl" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let good = write [ line "L0" 0 1; line "L1" 0 5; line "L0" 1 2; line "L1" 1 6 ] in
  Fun.protect ~finally:(fun () -> Sys.remove good) (fun () ->
      match load_tagged ~path:good with
      | Error m -> Alcotest.fail m
      | Ok tevs ->
        Alcotest.(check int) "all lines load" 4 (List.length tevs);
        Alcotest.(check (list string)) "stream tags kept"
          [ "L0"; "L1"; "L0"; "L1" ]
          (List.map
             (fun te -> Option.value ~default:"?" te.stream)
             tevs));
  let bad = write [ line "L0" 0 1; line "L1" 3 5; line "L1" 2 6 ] in
  Fun.protect ~finally:(fun () -> Sys.remove bad) (fun () ->
      match load_tagged ~path:bad with
      | Ok _ -> Alcotest.fail "non-monotone stream must be rejected"
      | Error m ->
        Alcotest.(check bool) "error names the offending stream" true
          (let nl = String.length "L1" and jl = String.length m in
           let rec go i =
             i + nl <= jl && (String.sub m i nl = "L1" || go (i + 1))
           in
           go 0))

(* The shippable snapshot round-trips through JSON with its counters,
   spans and event tail intact, and renders as a Chrome lane whose first
   record is the process_name metadata. *)
let test_telemetry_roundtrip () =
  Obs.enable_trace ();
  Obs.Events.enable ~capacity:64 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Events.disable ())
  @@ fun () ->
  ignore (Obs.span "tele.work" (fun () -> Obs.incr (Obs.counter "tele.test")));
  Obs.Events.emit (Obs.Events.Budget_round { round = 7; updates = 7 });
  let snap = Obs.Telemetry.capture () in
  Alcotest.(check bool) "pid present" true (snap.Obs.Telemetry.pid > 0);
  match Obs.Telemetry.of_json (Obs.Telemetry.to_json snap) with
  | Error m -> Alcotest.fail ("snapshot does not round-trip: " ^ m)
  | Ok snap' ->
    Alcotest.(check int) "pid survives" snap.Obs.Telemetry.pid
      snap'.Obs.Telemetry.pid;
    Alcotest.(check bool) "counter survives" true
      (List.mem_assoc "tele.test" (Obs.Telemetry.counters snap'));
    Alcotest.(check int) "event tail survives"
      (List.length snap.Obs.Telemetry.events)
      (List.length snap'.Obs.Telemetry.events);
    let lane =
      Obs.Telemetry.lane_events ~pid:42 ~offset_ns:1_000 ~process_name:"w0" snap'
    in
    (match lane with
    | Obs.Json.Obj fields :: _ ->
      Alcotest.(check bool) "lane leads with process_name metadata" true
        (List.assoc_opt "ph" fields = Some (Obs.Json.String "M"))
    | _ -> Alcotest.fail "lane must start with a metadata record");
    Alcotest.(check bool) "lane carries the span slice" true
      (List.exists
         (function
           | Obs.Json.Obj fields ->
             List.assoc_opt "name" fields = Some (Obs.Json.String "tele.work")
           | _ -> false)
         lane)

(* Prometheus exposition: sanitized metric names, counters as _total,
   distributions as quantile summaries. *)
let test_expo_render () =
  let body =
    Obs.Expo.render_into
      ~counters:[ ("serve.requests", 17); ("weird-name!", 1) ]
      ~dists:
        [
          ( "serve.latency.ping",
            { Obs.n = 4; dmin = 1.0; dmax = 9.0; mean = 4.0; p50 = 3.0; p95 = 9.0 }
          );
        ]
  in
  let has needle =
    let nl = String.length needle and jl = String.length body in
    let rec go i = i + nl <= jl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter rendered as _total" true
    (has "serve_requests_total 17");
  Alcotest.(check bool) "names sanitized" true (has "weird_name__total 1");
  Alcotest.(check bool) "dist p95 quantile" true
    (has "quantile=\"0.95\"");
  Alcotest.(check bool) "dist count" true (has "serve_latency_ping_count 4")

let test_trace_json_shape () =
  Obs.enable_trace ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  ignore (Obs.span "test.trace" ~attrs:[ ("k", "v\"q") ] (fun () -> 0));
  let j = Obs.trace_json () in
  let has needle =
    let nl = String.length needle and jl = String.length j in
    let rec go i = i + nl <= jl && (String.sub j i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "traceEvents key" true (has "\"traceEvents\"");
  Alcotest.(check bool) "complete event" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "span name present" true (has "\"test.trace\"");
  Alcotest.(check bool) "attr escaped" true (has "v\\\"q")

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "counters are monotone and interned" `Quick
            test_counter_monotone;
          Alcotest.test_case "distribution percentiles" `Quick
            test_dist_percentiles;
          Alcotest.test_case "span nesting and aggregation" `Quick
            test_span_nesting;
          Alcotest.test_case "disabled spans are transparent" `Quick
            test_span_disabled;
          Alcotest.test_case "counter snapshots are deterministic" `Quick
            test_snapshot_determinism;
          Alcotest.test_case "slack passes are linear in edges" `Quick
            test_slack_pass_linearity;
          Alcotest.test_case "chrome trace JSON shape" `Quick
            test_trace_json_shape;
          Alcotest.test_case "distribution 0- and 1-sample edge cases" `Quick
            test_dist_degenerate;
          Alcotest.test_case "event ring wraparound drops oldest" `Quick
            test_events_wraparound;
          Alcotest.test_case "event payloads round-trip through JSONL" `Quick
            test_events_roundtrip;
          Alcotest.test_case "JSONL sink valid under 4 domains" `Quick
            test_events_concurrent_jsonl;
          Alcotest.test_case "mark/since/renumber shipping window" `Quick
            test_events_mark_since_renumber;
          Alcotest.test_case "tagged multi-worker streams load and verify" `Quick
            test_events_tagged_streams;
          Alcotest.test_case "telemetry snapshot round-trips and renders a lane"
            `Quick test_telemetry_roundtrip;
          Alcotest.test_case "prometheus exposition format" `Quick
            test_expo_render;
        ] );
    ]
